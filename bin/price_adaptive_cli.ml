(* Command-line front end over the reproduction.

     dune exec bin/price_adaptive_cli.exe -- <command> ...

   Commands:
     list                          the lock zoo
     lock <name> [...]             run a lock, print its cost profile
     adversary <name> [...]        run the lower-bound construction
     bounds [...]                  Theorem 1 forced-fence computation
     verify <name> [...]           exhaustive schedule exploration (small n)
     campaign [...]                cached batch verification over a scenario
                                   grid, with adaptive frontier bracketing
     replay <name> FILE [...]      replay a saved schedule file
     stats <name> FILE [...]       replay a schedule, print the cost breakdown
     trace <name> -o FILE [...]    save an execution trace artifact
     analyze FILE                  metrics + IN-set verdict of a saved trace
     profile diff A B              compare two saved search profiles
     litmus [--pso]                store-buffering litmus

   Exit codes for verify: 0 verified, 1 violation found, 2 bad input,
   3 partial (a budget stopped the search with no violation found).

   Telemetry: verify and adversary accept --obs FILE.ndjson (stream
   events), --chrome-trace FILE.json (chrome://tracing / Perfetto) and
   --obs-console (summary table on stderr). verify additionally takes
   --progress (live one-line progress with estimated total and ETA) and
   --profile FILE.json (node/time attribution per depth band, move
   class, section and program location; diffable). *)

open Cmdliner

let model_conv =
  let parse = function
    | "dsm" -> Ok Tsim.Config.Dsm
    | "cc-wt" | "wt" -> Ok Tsim.Config.Cc_wt
    | "cc-wb" | "wb" -> Ok Tsim.Config.Cc_wb
    | s -> Error (`Msg (Printf.sprintf "unknown memory model %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt (Tsim.Config.mem_model_name m)
  in
  Arg.conv (parse, print)

let crash_semantics_conv =
  let parse = function
    | "drop-buffer" | "drop" -> Ok Tsim.Config.Drop_buffer
    | "flush-buffer" | "flush" -> Ok Tsim.Config.Flush_buffer
    | "atomic-prefix" | "prefix" -> Ok Tsim.Config.Atomic_prefix
    | s -> Error (`Msg (Printf.sprintf "unknown crash semantics %S" s))
  in
  let print fmt c =
    Format.pp_print_string fmt (Tsim.Config.crash_semantics_name c)
  in
  Arg.conv (parse, print)

let find_lock name =
  match Locks.Zoo.find name with
  | Some fam -> Ok fam
  | None ->
      Error
        (Printf.sprintf "unknown lock %S; try one of: %s" name
           (String.concat ", "
              (List.map
                 (fun f -> f.Locks.Lock_intf.family_name)
                 (Locks.Zoo.all @ Locks.Zoo.two_process
                @ Locks.Zoo.recoverable @ Locks.Zoo.abortable))))

(* Exit code 2 with a one-line diagnostic: the contract for bad input
   (unknown lock names, malformed schedule files) on verify/replay. *)
let die2 fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* --- telemetry options (shared by verify and adversary) ----------------- *)

let obs_term =
  let ndjson =
    Arg.(
      value & opt (some string) None
      & info [ "obs" ] ~docv:"FILE"
          ~doc:"stream telemetry events to $(docv) as NDJSON")
  in
  let chrome =
    Arg.(
      value & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "write a Chrome trace-event JSON file to $(docv), loadable in \
             chrome://tracing or Perfetto")
  in
  let console =
    Arg.(
      value & flag
      & info [ "obs-console" ]
          ~doc:"print a telemetry summary table to stderr on exit")
  in
  Term.(
    const (fun ndjson chrome console -> (ndjson, chrome, console))
    $ ndjson $ chrome $ console)

(* Build a hub from the options, run [f] with it, and always flush/close
   the sinks and their files — verdict exits go through the returned
   code, not mid-stream [exit], so traces are complete even on
   violations. [extra] lets a command attach its own sinks (verify's
   --progress line) on top of the shared telemetry options. *)
let with_obs ?(extra = []) (ndjson, chrome, console) f =
  let chans = ref [] in
  let file p =
    let oc = open_out p in
    chans := oc :: !chans;
    oc
  in
  let sinks =
    (match ndjson with Some p -> [ Obs.Sink.ndjson (file p) ] | None -> [])
    @ (match chrome with
      | Some p -> [ Obs.Sink.chrome_trace (file p) ]
      | None -> [])
    @ (if console then [ Obs.Sink.console () ] else [])
    @ extra
  in
  if sinks = [] then f Obs.Telemetry.null
  else
    let obs = Obs.Telemetry.create ~sinks () in
    Fun.protect
      ~finally:(fun () ->
        Obs.Telemetry.close obs;
        List.iter close_out !chans)
      (fun () -> f obs)

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let doc = "List the lock zoo and object-based mutexes." in
  let run () =
    print_endline "locks:";
    List.iter
      (fun (f : Locks.Lock_intf.family) ->
        let l = f.Locks.Lock_intf.instantiate ~n:2 in
        Printf.printf "  %-15s %s%s\n" f.Locks.Lock_intf.family_name
          (if l.Locks.Lock_intf.uses_rmw then "rmw " else "r/w ")
          (if l.Locks.Lock_intf.one_time then "(one-time)" else ""))
      Locks.Zoo.all;
    print_endline "object-based (Lemma 9):";
    List.iter
      (fun (f : Locks.Lock_intf.family) ->
        Printf.printf "  %s\n" f.Locks.Lock_intf.family_name)
      Objects.Mutex_from_object.families
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- lock -------------------------------------------------------------- *)

let lock_cmd =
  let doc = "Run a lock on the simulator and print its cost profile." in
  let lock_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"LOCK") in
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"number of processes") in
  let k =
    Arg.(value & opt (some int) None & info [ "k" ] ~doc:"contending processes")
  in
  let model =
    Arg.(value & opt model_conv Tsim.Config.Cc_wb
        & info [ "model" ] ~doc:"memory model: dsm, cc-wt, cc-wb")
  in
  let passages =
    Arg.(value & opt int 1 & info [ "passages" ] ~doc:"passages per process")
  in
  let seed =
    Arg.(value & opt (some int) None
        & info [ "seed" ] ~doc:"random schedule seed (default: round robin)")
  in
  let run name n k model passages seed =
    match find_lock name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok fam ->
        let k = Option.value ~default:n k in
        let lock = fam.Locks.Lock_intf.instantiate ~n in
        let passages = if lock.Locks.Lock_intf.one_time then 1 else passages in
        let schedule =
          match seed with
          | None -> Locks.Harness.Rr
          | Some s -> Locks.Harness.Rand s
        in
        let _, stats =
          Locks.Harness.run_contended ~model ~max_passages:passages ~schedule
            lock ~n ~k
        in
        Printf.printf "%s  n=%d k=%d model=%s passages=%d\n"
          stats.Locks.Harness.lock_name n k
          (Tsim.Config.mem_model_name model)
          passages;
        (* the same key/value data a JSON export would carry, rendered
           through the shared table printer *)
        print_string
          (Obs.Json.pp_kv_table
             [
               ("exclusion_ok", Obs.Json.Bool stats.Locks.Harness.exclusion_ok);
               ("completed", Obs.Json.Bool stats.Locks.Harness.completed);
               ("cs_entries", Obs.Json.Int stats.Locks.Harness.cs_entries);
               ( "rmrs_per_passage_avg",
                 Obs.Json.Float stats.Locks.Harness.avg_rmrs_per_passage );
               ( "rmrs_per_passage_max",
                 Obs.Json.Int stats.Locks.Harness.max_rmrs_per_passage );
               ( "fences_per_passage_avg",
                 Obs.Json.Float stats.Locks.Harness.avg_fences_per_passage );
               ( "fences_per_passage_max",
                 Obs.Json.Int stats.Locks.Harness.max_fences_per_passage );
               ( "max_interval_contention",
                 Obs.Json.Int stats.Locks.Harness.max_interval_contention );
               ( "max_point_contention",
                 Obs.Json.Int stats.Locks.Harness.max_point_contention );
             ])
  in
  Cmd.v (Cmd.info "lock" ~doc)
    Term.(const run $ lock_arg $ n $ k $ model $ passages $ seed)

(* --- adversary ---------------------------------------------------------- *)

let adversary_cmd =
  let doc =
    "Run the lower-bound construction (Section 4) against a lock."
  in
  let lock_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"LOCK") in
  let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"number of processes") in
  let audit =
    Arg.(value & flag & info [ "audit" ] ~doc:"check IN-set invariants")
  in
  let ablate_is =
    Arg.(value & flag
        & info [ "no-independent-sets" ] ~doc:"ablate Turán selection")
  in
  let ablate_reg =
    Arg.(value & flag
        & info [ "no-regularization" ] ~doc:"ablate the regularization phase")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"print per-round details")
  in
  let run name n audit no_is no_reg verbose obs_opts =
    match find_lock name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok fam ->
        let lock = fam.Locks.Lock_intf.instantiate ~n in
        let c, report =
          with_obs obs_opts (fun obs ->
              let c =
                Adversary.Construction.create ~audit
                  ~no_independent_sets:no_is ~no_regularization:no_reg ~obs
                  lock ~n
              in
              (c, Adversary.Construction.run ~min_act:1 c))
        in
        (if verbose then Format.printf "%a" Adversary.Report.pp_verbose report
         else Format.printf "%a" Adversary.Report.pp report);
        (match Adversary.Witness.extract c with
        | Some w -> Printf.printf "witness: %s\n" w.Adversary.Witness.detail
        | None -> print_endline "witness: none (all finished or erased)");
        if audit then begin
          match Adversary.Construction.audit_failures c with
          | [] -> print_endline "audit: all IN-set invariants held"
          | fails ->
              Printf.printf "audit: %d violations\n" (List.length fails);
              List.iter (fun f -> Printf.printf "  %s\n" f) fails
        end
  in
  Cmd.v (Cmd.info "adversary" ~doc)
    Term.(
      const run $ lock_arg $ n $ audit $ ablate_is $ ablate_reg $ verbose
      $ obs_term)

(* --- bounds -------------------------------------------------------------- *)

let bounds_cmd =
  let doc = "Evaluate the Theorem 1 condition and forced-fence bound." in
  let family =
    Arg.(value & opt string "linear"
        & info [ "family" ] ~doc:"adaptivity family: linear or exp")
  in
  let c = Arg.(value & opt float 1.0 & info [ "c" ] ~doc:"constant c") in
  let log2n =
    Arg.(value & opt float 1024.0 & info [ "log2n" ] ~doc:"log2 of N")
  in
  let run family c log2_n =
    let f =
      match family with
      | "exp" | "exponential" -> Bounds.Adaptivity.exponential c
      | _ -> Bounds.Adaptivity.linear c
    in
    let forced = Bounds.Theorem1.max_forced_fences ~f ~log2_n () in
    Printf.printf
      "%s, log2 N = %g\n\
       max forced fences (Theorem 1): %d\n\
       closed form: Cor.2 (1/3c)loglogN = %.2f, Cor.3 (1/c)(lllN-1) = %.2f\n"
      (Bounds.Adaptivity.name f) log2_n forced
      (Bounds.Corollaries.cor2_closed_form ~c ~log2_n)
      (Bounds.Corollaries.cor3_closed_form ~c ~log2_n)
  in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(const run $ family $ c $ log2n)

(* --- trace / analyze ----------------------------------------------------- *)

let trace_cmd =
  let doc = "Run a lock and save its execution trace as a text artifact." in
  let lock_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOCK")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE")
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"number of processes") in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"random schedule")
  in
  let run name out n seed =
    match find_lock name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok fam ->
        let lock = fam.Locks.Lock_intf.instantiate ~n in
        let schedule =
          match seed with
          | None -> Locks.Harness.Rr
          | Some s -> Locks.Harness.Rand s
        in
        let m, stats =
          Locks.Harness.run_contended ~model:Tsim.Config.Cc_wb ~schedule lock
            ~n ~k:n
        in
        let tr = Execution.Trace.of_machine m in
        Execution.Serial.save out tr;
        Printf.printf "%s: %d events, %d passages -> %s\n"
          stats.Locks.Harness.lock_name (Execution.Trace.length tr)
          stats.Locks.Harness.passages out
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ lock_arg $ out $ n $ seed)

let analyze_cmd =
  let doc = "Analyze a saved trace: metrics, Act/Fin sets, IN-set verdict." in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let run file =
    let tr = Execution.Serial.load file in
    Printf.printf "%d events, total contention %d\n"
      (Execution.Trace.length tr)
      (Execution.Trace.total_contention tr);
    let act = Execution.Trace.active tr in
    let fin = Execution.Trace.finished tr in
    Format.printf "Act = %a, Fin = %a@." Tsim.Ids.Pidset.pp act
      Tsim.Ids.Pidset.pp fin;
    Format.printf "%a" Execution.Metrics.pp (Execution.Metrics.compute tr);
    let v = Analysis.Inset.check_regular ~in3:false tr in
    if v.Analysis.Inset.ok then
      print_endline "Act(E) is an IN-set: the execution is regular"
    else begin
      print_endline "execution is not regular:";
      List.iter
        (fun viol -> Format.printf "  %a@." Analysis.Inset.pp_violation viol)
        v.Analysis.Inset.violations
    end
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ file)

let show_cmd =
  let doc = "Render a saved trace as an ASCII swimlane diagram." in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let limit =
    Arg.(value & opt int 200 & info [ "limit" ] ~doc:"max events to render")
  in
  let run file limit =
    Execution.Render.print ~limit (Execution.Serial.load file)
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ file $ limit)

(* --- verify -------------------------------------------------------------- *)

let verify_cmd =
  let doc =
    "Exhaustively explore every schedule of a lock at small n (bounded \
     model checking)."
  in
  let lock_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOCK")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"number of processes") in
  let max_nodes =
    Arg.(value & opt int 2_000_000 & info [ "max-nodes" ] ~doc:"node budget")
  in
  let spin_fuel =
    Arg.(value & opt int 6 & info [ "spin-fuel" ] ~doc:"busy-wait bound")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "parallel search domains (one shared lock-free fingerprint \
             store, work-stealing load balancing)")
  in
  let store =
    let store_conv =
      Arg.enum [ ("exact", `Exact); ("bitstate", `Bitstate); ("bounded", `Bounded) ]
    in
    Arg.(
      value & opt store_conv `Exact
      & info [ "store" ]
          ~doc:
            "seen-state memory policy: exact (every state stored, the \
             default), bitstate (SPIN-style supertrace hashing — bounded \
             memory, verdicts carry a measured omission probability), or \
             bounded (fixed slot count with eviction — exhaustive, pays \
             re-exploration)")
  in
  let store_bits =
    Arg.(
      value & opt (some int) None
      & info [ "store-bits" ]
          ~doc:
            "log2 of the store size: bits of the bitstate array (default \
             26 = 8 MiB) or slots of the bounded table (default 20)")
  in
  let store_hashes =
    Arg.(
      value & opt int 3
      & info [ "store-hashes" ]
          ~doc:"bitstate mode: hash functions per state (1-8, default 3)")
  in
  let no_por =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "disable the partial-order reduction (explore every \
             interleaving; same verdicts, more states)")
  in
  let save_schedule =
    Arg.(
      value & opt (some string) None
      & info [ "save-schedule" ] ~docv:"FILE"
          ~doc:
            "write the first violating schedule to FILE (replayable with \
             the replay command)")
  in
  let max_crashes =
    Arg.(
      value & opt int 0
      & info [ "max-crashes" ]
          ~doc:"crash faults the adversary may inject (default 0)")
  in
  let max_aborts =
    Arg.(
      value & opt int 0
      & info [ "max-aborts" ]
          ~doc:
            "abort faults the adversary may inject at declared wait points \
             (default 0; requires a lock with an abort cleanup section)")
  in
  let max_millis =
    Arg.(
      value & opt (some int) None
      & info [ "max-millis" ] ~doc:"wall-clock budget in milliseconds")
  in
  let crash_semantics =
    Arg.(
      value & opt crash_semantics_conv Tsim.Config.Drop_buffer
      & info [ "crash-semantics" ]
          ~doc:
            "write-buffer fate on crash: drop-buffer, flush-buffer, or \
             atomic-prefix")
  in
  let search_stats =
    Arg.(
      value & flag
      & info [ "search-stats" ]
          ~doc:
            "print search-internals tallies (dedup hits, sleep-set and \
             ample-set prunes, fingerprint-store occupancy, per-domain \
             nodes, steals, evictions/drops/omission probability of the \
             memory-bounded stores, journal depth)")
  in
  let engine =
    let engine_conv =
      Arg.enum
        [ ("journal", `Journal); ("clone", `Clone); ("compiled", `Compiled) ]
    in
    Arg.(
      value & opt engine_conv `Journal
      & info [ "engine" ]
          ~doc:
            "child-expansion engine: journal (in-place step/undo, the \
             default), clone (copy the machine per child), or compiled \
             (journal plus compile-ahead program execution; locks whose \
             programs are not declared pure fall back to the journal \
             interpreter); identical verdicts and node counts")
  in
  let profile_out =
    Arg.(
      value & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "profile the search and write the result to $(docv) as JSON: \
             nodes, wall time, undo records and RMR events attributed per \
             depth band, move class, lock section and program location \
             (compare two files with the profile diff command). \
             Attribution is sampled (one node in 16): node and RMR \
             counts are scaled estimates, time and undo totals are \
             exact. Written even on partial verdicts (ctrl-C, budget)")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "print a live progress line (~1 Hz): nodes, rate, and — via \
             the online tree-size estimator — progress %, estimated \
             total and ETA. Rewrites in place when stdout is a TTY, \
             appends log lines otherwise")
  in
  let probes =
    Arg.(
      value & opt int 64
      & info [ "probes" ]
          ~doc:
            "probes for the tree-size estimator behind --progress (more \
             probes, tighter estimate; the cost fades to zero once all \
             probes are spent along a path)")
  in
  let run name n max_nodes spin_fuel domains no_por save_schedule max_crashes
      max_aborts max_millis crash_semantics search_stats engine store
      store_bits store_hashes profile_out progress probes obs_opts =
    if domains < 1 then die2 "--domains must be >= 1";
    if max_crashes < 0 then die2 "--max-crashes must be >= 0";
    if max_aborts < 0 then die2 "--max-aborts must be >= 0";
    let store_mode =
      (* the record update below bypasses Config.make's validation, so
         check the ranges it would enforce here *)
      match store with
      | `Exact -> Tsim.Config.Store_exact
      | `Bitstate ->
          let log2_bits = Option.value store_bits ~default:26 in
          if log2_bits < 10 || log2_bits > 36 then
            die2 "--store-bits must be in [10, 36] for bitstate";
          if store_hashes < 1 || store_hashes > 8 then
            die2 "--store-hashes must be in [1, 8]";
          Tsim.Config.Store_bitstate { log2_bits; hashes = store_hashes }
      | `Bounded ->
          let log2_slots = Option.value store_bits ~default:20 in
          if log2_slots < 8 || log2_slots > 30 then
            die2 "--store-bits must be in [8, 30] for bounded";
          Tsim.Config.Store_bounded { log2_slots }
    in
    match find_lock name with
    | Error e -> die2 "%s" e
    | Ok fam ->
        let lock = fam.Locks.Lock_intf.instantiate ~n in
        (if max_aborts > 0 && lock.Locks.Lock_intf.abort = None then
           die2 "%s has no abort cleanup section; try one of: %s"
             lock.Locks.Lock_intf.name
             (String.concat ", "
                (List.map
                   (fun f -> f.Locks.Lock_intf.family_name)
                   Locks.Zoo.abortable)));
        let cfg =
          Locks.Harness.config_of_lock ~model:Tsim.Config.Cc_wb
            ~crash_semantics lock ~n
        in
        let cfg =
          { cfg with Tsim.Config.engine; Tsim.Config.store = store_mode }
        in
        (* ctrl-C stops the search at the next budget poll: the explorer
           returns normally with a typed `Aborts partial verdict, so the
           stats below still print, the obs sinks still flush, and a
           requested --profile file is still written (carrying the
           partial reason and the estimator's last sample). *)
        let stop = Atomic.make false in
        Sys.set_signal Sys.sigint
          (Sys.Signal_handle (fun _ -> Atomic.set stop true));
        if probes < 1 then die2 "--probes must be >= 1";
        (* the estimator serves --progress; --profile attaches only the
           (strided) attribution accumulator, keeping the asserted ≤5%
           pay-for-use overhead — combine the flags to get both *)
        let estimator =
          if progress then Some { Obs.Estimator.probes; seed = 0 } else None
        in
        let prof =
          Option.map
            (fun _ ->
              Mcheck.Explore.new_profile
                ~every:Mcheck.Explore.default_profile_every ())
            profile_out
        in
        let extra =
          if progress then
            [ Obs.Sink.progress ~tty:(Unix.isatty Unix.stdout) () ]
          else []
        in
        let r =
          with_obs ~extra obs_opts (fun obs ->
              Mcheck.Explore.explore ~max_nodes ~spin_fuel ~domains
                ~por:(not no_por) ~max_crashes ~max_aborts ?max_millis ~stop
                ?estimator ?profile:prof ~obs cfg)
        in
        Printf.printf "%s n=%d%s%s%s: %d states, max depth %d\n"
          lock.Locks.Lock_intf.name n
          (if max_crashes > 0 then
             Printf.sprintf " crashes<=%d (%s)" max_crashes
               (Tsim.Config.crash_semantics_name crash_semantics)
           else "")
          (if max_aborts > 0 then Printf.sprintf " aborts<=%d" max_aborts
           else "")
          (if no_por then " (no por)" else "")
          r.Mcheck.Explore.nodes r.Mcheck.Explore.max_depth;
        (if search_stats then
           let s = r.Mcheck.Explore.stats in
           Printf.printf
             "search: dedup hits %d (resleeps %d), sleep prunes %d, ample \
              chains %d (+%d fused), seen entries %d, crashes applied %d, \
              aborts applied %d\n\
              domains: %d%s, merge stall %dus, steals %d\n\
              store: %s, evictions %d, drops %d%s\n\
              journal: peak %d records, %d undo records (%.1f/node)\n"
             s.Mcheck.Explore.dedup_hits s.Mcheck.Explore.resleeps
             s.Mcheck.Explore.sleep_prunes s.Mcheck.Explore.ample_chains
             s.Mcheck.Explore.ample_fused s.Mcheck.Explore.seen_entries
             s.Mcheck.Explore.crashes_applied
             s.Mcheck.Explore.aborts_applied s.Mcheck.Explore.domains_used
             (match s.Mcheck.Explore.domain_nodes with
             | [] | [ _ ] -> ""
             | ns ->
                 Printf.sprintf " (nodes %s)"
                   (String.concat "/" (List.map string_of_int ns)))
             s.Mcheck.Explore.merge_stall_us s.Mcheck.Explore.steals
             (Tsim.Config.store_mode_name store_mode)
             s.Mcheck.Explore.store_evictions s.Mcheck.Explore.store_drops
             (if s.Mcheck.Explore.omission_prob > 0.0 then
                Printf.sprintf ", omission probability %.2e"
                  s.Mcheck.Explore.omission_prob
              else "")
             s.Mcheck.Explore.journal_peak s.Mcheck.Explore.undo_records
             (float_of_int s.Mcheck.Explore.undo_records
             /. float_of_int (max 1 r.Mcheck.Explore.nodes)));
        List.iter
          (fun v ->
            (match v.Mcheck.Explore.kind with
            | `Exclusion (a, b) ->
                Printf.printf "EXCLUSION VIOLATION between p%d and p%d\n" a b
            | `Deadlock -> print_endline "DEADLOCK"
            | `Spin_exhausted -> print_endline "SPIN EXHAUSTED");
            Printf.printf "  schedule: %s\n"
              (String.concat "; "
                 (List.map Mcheck.Explore.move_to_string
                    v.Mcheck.Explore.schedule)))
          r.Mcheck.Explore.violations;
        (match (save_schedule, r.Mcheck.Explore.violations) with
        | Some file, v :: _ ->
            Mcheck.Explore.save_schedule file v.Mcheck.Explore.schedule;
            Printf.printf "schedule saved to %s\n" file
        | Some _, [] -> ()
        | None, _ -> ());
        (if estimator <> None then
           let s = r.Mcheck.Explore.stats in
           let est = s.Mcheck.Explore.est_nodes in
           if est > 0.0 then
             Printf.printf
               "estimated state space: ~%.0f states (probe progress %.1f%%)\n"
               est
               (100.0 *. s.Mcheck.Explore.est_progress));
        (* one-line verdict; its exit code is the verify contract
           (0 verified / 1 violation / 3 partial) *)
        let verdict, code = Mcheck.Explore.render_verdict r in
        (match (profile_out, prof) with
        | Some path, Some p ->
            let s = r.Mcheck.Explore.stats in
            let meta =
              [
                ("tool", Obs.Json.String "price_adaptive verify --profile");
                ("lock", Obs.Json.String lock.Locks.Lock_intf.name);
                ("config", Obs.Json.String (Tsim.Config.summary cfg));
                ("verdict", Obs.Json.String verdict);
                ("nodes", Obs.Json.Int r.Mcheck.Explore.nodes);
                ("sampled_every", Obs.Json.Int (Obs.Profile.every p));
              ]
              @ (if estimator <> None then
                   [
                     ("est_nodes", Obs.Json.Float s.Mcheck.Explore.est_nodes);
                     ( "est_progress",
                       Obs.Json.Float s.Mcheck.Explore.est_progress );
                   ]
                 else [])
              @
              match r.Mcheck.Explore.partial with
              | Some reason ->
                  [ ( "partial",
                      Obs.Json.String
                        (Mcheck.Explore.partial_reason_name reason) ) ]
              | None -> []
            in
            let oc = open_out path in
            output_string oc (Obs.Json.to_string (Obs.Profile.to_json ~meta p));
            output_char oc '\n';
            close_out oc;
            Printf.printf "profile -> %s\n" path
        | _ -> ());
        print_endline verdict;
        exit code
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const run $ lock_arg $ n $ max_nodes $ spin_fuel $ domains $ no_por
      $ save_schedule $ max_crashes $ max_aborts $ max_millis
      $ crash_semantics $ search_stats $ engine $ store $ store_bits
      $ store_hashes $ profile_out $ progress $ probes $ obs_term)

(* --- replay -------------------------------------------------------------- *)

let replay_cmd =
  let doc =
    "Replay a schedule file (one move per line, as saved by verify \
     --save-schedule) against a lock and report the outcome."
  in
  let lock_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOCK")
  in
  let file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"number of processes") in
  let spin_fuel =
    Arg.(value & opt int 6 & info [ "spin-fuel" ] ~doc:"busy-wait bound")
  in
  let crash_semantics =
    Arg.(
      value & opt crash_semantics_conv Tsim.Config.Drop_buffer
      & info [ "crash-semantics" ]
          ~doc:
            "write-buffer fate on crash moves: drop-buffer, flush-buffer, \
             or atomic-prefix (must match the exploring run)")
  in
  let run name file n spin_fuel crash_semantics =
    match find_lock name with
    | Error e -> die2 "%s" e
    | Ok fam -> (
        match Mcheck.Explore.load_schedule file with
        | Error msg ->
            (* Sys_error messages already lead with the path *)
            let prefixed =
              String.length msg >= String.length file
              && String.sub msg 0 (String.length file) = file
            in
            if prefixed then die2 "%s" msg else die2 "%s: %s" file msg
        | Ok schedule ->
            let lock = fam.Locks.Lock_intf.instantiate ~n in
            let cfg =
              Locks.Harness.config_of_lock ~model:Tsim.Config.Cc_wb
                ~crash_semantics lock ~n
            in
            (* outcome-only replay: the trace is never read, so don't pay
               for recording it (config_of_lock defaults it on). The
               stats command keeps recording on — it recomputes metrics
               from the trace. *)
            let cfg = { cfg with Tsim.Config.record_trace = false } in
            let saved = !Tsim.Prog.default_spin_fuel in
            Tsim.Prog.default_spin_fuel := spin_fuel;
            let _, outcome =
              Fun.protect
                ~finally:(fun () -> Tsim.Prog.default_spin_fuel := saved)
                (fun () -> Mcheck.Explore.replay cfg schedule)
            in
            (match outcome with
            | Mcheck.Explore.R_bad_pid (i, p) ->
                die2 "%s: move %d references p%d but the machine has n=%d"
                  file i p n
            | _ -> ());
            Printf.printf "%s n=%d: %d moves\n" lock.Locks.Lock_intf.name n
              (List.length schedule);
            (match outcome with
            | Mcheck.Explore.R_completed ->
                print_endline "schedule completed without violation"
            | Mcheck.Explore.R_exclusion (h, i) ->
                Printf.printf
                  "EXCLUSION VIOLATION: p%d in the critical section, p%d \
                   entered\n"
                  h i
            | Mcheck.Explore.R_spin v ->
                Printf.printf "SPIN EXHAUSTED on v%d\n" v
            | Mcheck.Explore.R_bad_pid (i, p) ->
                die2 "%s: move %d references p%d but the machine has n=%d"
                  file i p n
            | Mcheck.Explore.R_bad_abort (i, p) ->
                die2 "%s: move %d aborts p%d outside a declared wait point"
                  file i p
            | Mcheck.Explore.R_stuck (i, msg) ->
                Printf.printf "stuck at move %d: %s\n" i msg;
                exit 1))
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ lock_arg $ file $ n $ spin_fuel $ crash_semantics)

(* --- stats --------------------------------------------------------------- *)

let stats_cmd =
  let doc =
    "Replay a saved schedule with trace recording on and print the full \
     cost breakdown: per-process and per-passage fence / RMR / \
     critical-event totals (recomputed from the trace and cross-checked \
     against the machine's online counters)."
  in
  let lock_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOCK")
  in
  let file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"number of processes") in
  let spin_fuel =
    Arg.(value & opt int 6 & info [ "spin-fuel" ] ~doc:"busy-wait bound")
  in
  let crash_semantics =
    Arg.(
      value & opt crash_semantics_conv Tsim.Config.Drop_buffer
      & info [ "crash-semantics" ]
          ~doc:"write-buffer fate on crash moves (must match the explorer)")
  in
  let chrome =
    Arg.(
      value & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "also export the replayed execution as a Chrome trace-event \
             JSON file (one lane per process, passages and fences as \
             spans)")
  in
  let run name file n spin_fuel crash_semantics chrome =
    match find_lock name with
    | Error e -> die2 "%s" e
    | Ok fam -> (
        match Mcheck.Explore.load_schedule file with
        | Error msg -> die2 "%s: %s" file msg
        | Ok schedule ->
            let lock = fam.Locks.Lock_intf.instantiate ~n in
            let cfg =
              Locks.Harness.config_of_lock ~model:Tsim.Config.Cc_wb
                ~crash_semantics lock ~n
            in
            let cfg = { cfg with Tsim.Config.record_trace = true } in
            let saved = !Tsim.Prog.default_spin_fuel in
            Tsim.Prog.default_spin_fuel := spin_fuel;
            let m, outcome =
              Fun.protect
                ~finally:(fun () -> Tsim.Prog.default_spin_fuel := saved)
                (fun () -> Mcheck.Explore.replay cfg schedule)
            in
            (match outcome with
            | Mcheck.Explore.R_bad_pid (i, p) ->
                die2 "%s: move %d references p%d but the machine has n=%d"
                  file i p n
            | Mcheck.Explore.R_bad_abort (i, p) ->
                die2 "%s: move %d aborts p%d outside a declared wait point"
                  file i p
            | Mcheck.Explore.R_stuck (i, msg) ->
                die2 "%s: stuck at move %d: %s" file i msg
            | Mcheck.Explore.R_completed | Mcheck.Explore.R_exclusion _
            | Mcheck.Explore.R_spin _ ->
                ());
            let tr = Execution.Trace.of_machine m in
            let metrics = Execution.Metrics.compute tr in
            Printf.printf "%s n=%d: %d moves, %d events\n"
              lock.Locks.Lock_intf.name n (List.length schedule)
              (Execution.Trace.length tr);
            (match outcome with
            | Mcheck.Explore.R_exclusion (h, i) ->
                Printf.printf
                  "note: schedule ends in an exclusion violation (p%d \
                   holds, p%d enters)\n"
                  h i
            | Mcheck.Explore.R_spin v ->
                Printf.printf "note: schedule ends in spin exhaustion on \
                               v%d\n"
                  v
            | _ -> ());
            Format.printf "%a" Execution.Metrics.pp metrics;
            (* per-passage breakdown through the shared columnar
               renderer: one row per (process, passage) *)
            (match
               List.concat_map
                 (fun pp ->
                   List.map
                     (fun mp ->
                       [
                         ("pid", Obs.Json.Int pp.Execution.Metrics.pp_pid);
                         ( "passage",
                           Obs.Json.Int mp.Execution.Metrics.mp_index );
                         ("events", Obs.Json.Int mp.Execution.Metrics.mp_events);
                         ("rmrs", Obs.Json.Int mp.Execution.Metrics.mp_rmrs);
                         ("fences", Obs.Json.Int mp.Execution.Metrics.mp_fences);
                         ( "criticals",
                           Obs.Json.Int mp.Execution.Metrics.mp_criticals );
                       ])
                     pp.Execution.Metrics.pp_passage_log)
                 metrics.Execution.Metrics.processes
             with
            | [] -> ()
            | rows -> print_string (Obs.Json.pp_rows ~indent:4 rows));
            (match chrome with
            | Some out ->
                let oc = open_out out in
                Execution.Chrome.export oc tr;
                close_out oc;
                Printf.printf "chrome trace -> %s\n" out
            | None -> ());
            match Execution.Metrics.cross_check m metrics with
            | [] ->
                print_endline
                  "cross-check: online machine counters agree with the \
                   trace recomputation"
            | fails ->
                Printf.printf "cross-check: %d mismatches\n"
                  (List.length fails);
                List.iter (fun f -> Printf.printf "  %s\n" f) fails;
                exit 1)
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ lock_arg $ file $ n $ spin_fuel $ crash_semantics $ chrome)

(* --- profile ------------------------------------------------------------- *)

let load_profile path =
  let contents =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> die2 "%s" msg
  in
  match Obs.Json.parse contents with
  | Error e -> die2 "%s: not JSON: %s" path e
  | Ok j -> (
      match Obs.Profile.of_json j with
      | Error e -> die2 "%s: not a profile: %s" path e
      | Ok p -> p)

let profile_diff_cmd =
  let doc =
    "Compare two profile JSON files (as written by verify --profile): \
     per-node cost delta, attributed to the (section, move class) groups \
     that moved."
  in
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"CURRENT") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"print the structured report as JSON instead")
  in
  let run a b json =
    let pa = load_profile a and pb = load_profile b in
    let report, verdict =
      try Obs.Profile.diff pa pb
      with Invalid_argument msg -> die2 "%s" msg
    in
    if json then print_endline (Obs.Json.to_string report)
    else begin
      let rows =
        match Obs.Json.member "groups" report with
        | Some (Obs.Json.List gs) ->
            List.filter_map
              (function
                | Obs.Json.Obj kvs ->
                    (* re-key for the human table; values pass through *)
                    let pick k k' =
                      Option.map (fun v -> (k', v)) (List.assoc_opt k kvs)
                    in
                    Some
                      (List.filter_map Fun.id
                         [
                           pick "group" "group";
                           pick "a_ns_per_node" "a ns/node";
                           pick "b_ns_per_node" "b ns/node";
                           pick "delta_ns_per_node" "delta";
                           pick "a_node_share" "a share";
                           pick "b_node_share" "b share";
                         ])
                | _ -> None)
              gs
        | _ -> []
      in
      print_string (Obs.Json.pp_rows rows);
      print_endline verdict
    end;
    (* exit code mirrors the verdict: 0 unchanged/improved, 1 regressed *)
    if String.length verdict >= 9 && String.sub verdict 0 9 = "regressed" then
      exit 1
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ a $ b $ json)

let profile_cmd =
  let doc = "Operations on saved search profiles." in
  Cmd.group (Cmd.info "profile" ~doc) [ profile_diff_cmd ]

(* --- campaign ------------------------------------------------------------ *)

let campaign_cmd =
  let doc =
    "Run a batch verification campaign: a scenario grid of whole \
     searches scheduled across domains, a persistent result cache that \
     makes re-runs and resumes skip completed cells, and adaptive \
     bracketing of phase-transition frontiers (smallest n forcing k \
     fences, largest exhaustively-checkable n, smallest fault budget \
     refuting a lock)."
  in
  let grids =
    Arg.(
      value & opt_all string []
      & info [ "grid" ] ~docv:"SPEC"
          ~doc:
            "scenario grid: field=v1,v2,... tokens separated by spaces \
             or ';', integer fields accepting a-b ranges; the grid is \
             the cartesian product of all dimensions. Fields: kind \
             (verify, adversary), lock, n, model, ord, pass, crashes, \
             aborts, csem, store, por. Example: 'lock=tas,ticket n=2-3 \
             crashes=0,1'. Repeatable")
  in
  let brackets =
    Arg.(
      value & opt_all string []
      & info [ "bracket" ] ~docv:"SPEC"
          ~doc:
            "frontier search: a goal (min-n-fences with k=, \
             max-exhaustive-n, min-crashes-refute, min-aborts-refute) \
             followed by base-cell fields and lo=/hi= bounds. Example: \
             'min-n-fences lock=tournament k=6 lo=2 hi=17'. Probes are \
             ordinary cells and land in the cache. Repeatable")
  in
  let cache_path =
    Arg.(
      value & opt string "campaign.cache.ndjson"
      & info [ "cache" ] ~docv:"FILE"
          ~doc:"persistent result cache (NDJSON, appended as cells finish)")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "load completed cells from the cache file and skip them; \
             without this flag the cache is truncated (cold run). \
             Corrupt lines are skipped, a version/salt mismatch discards \
             the whole file — never trusted silently")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "worker domains; cells are dealt onto per-worker \
             work-stealing deques and each cell runs as one sequential \
             search, so reports are identical at any job count")
  in
  let max_nodes =
    Arg.(
      value & opt int 200_000
      & info [ "max-nodes" ]
          ~doc:
            "per-cell node budget cap; cells start at a small slice and \
             escalate 4x on budget-limited partial verdicts")
  in
  let max_millis =
    Arg.(
      value & opt (some int) None
      & info [ "max-millis" ]
          ~doc:
            "per-cell wall-clock budget in milliseconds (outcomes cut \
             by it are reported but never cached)")
  in
  let spin_fuel =
    Arg.(
      value & opt int 6
      & info [ "spin-fuel" ]
          ~doc:
            "busy-wait bound, one value for the whole campaign (cells \
             share the simulator's spin-fuel setting)")
  in
  let report =
    Arg.(
      value & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "write the machine-readable JSON report to $(docv): \
             versioned, cells in canonical key order, free of timings \
             and cache provenance — byte-identical across cold/warm \
             runs and job counts. Written (marked incomplete) on \
             interrupt too")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "list the planned cells in schedule order with budgets and \
             exit without running anything")
  in
  let validate =
    Arg.(
      value & opt (some string) None
      & info [ "validate-report" ] ~docv:"FILE"
          ~doc:
            "validate $(docv) against the report schema and exit (0 \
             valid, 2 invalid); no cells are run")
  in
  let run grids brackets cache_path resume jobs max_nodes max_millis
      spin_fuel report dry_run validate obs_opts =
    (match validate with
    | Some path ->
        let contents =
          try
            let ic = open_in path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with Sys_error msg -> die2 "%s" msg
        in
        (match Obs.Json.parse contents with
        | Error e -> die2 "%s: not JSON: %s" path e
        | Ok j -> (
            match Campaign.Driver.validate_report j with
            | Ok () ->
                Printf.printf "%s: valid campaign report\n" path;
                exit 0
            | Error m -> die2 "%s: %s" path m))
    | None -> ());
    if jobs < 1 then die2 "--jobs must be >= 1";
    if max_nodes < 1 then die2 "--max-nodes must be >= 1";
    if grids = [] && brackets = [] then
      die2 "nothing to do: give at least one --grid or --bracket";
    let grid =
      List.concat_map
        (fun spec ->
          match Campaign.Driver.parse_grid spec with
          | Ok cells -> cells
          | Error m -> die2 "--grid %S: %s" spec m)
        grids
    in
    let brackets =
      List.map
        (fun spec ->
          match Campaign.Driver.parse_bracket spec with
          | Ok b -> b
          | Error m -> die2 "--bracket %S: %s" spec m)
        brackets
    in
    let plan = { Campaign.Driver.grid; brackets } in
    let planned = Campaign.Driver.planned grid in
    if dry_run then begin
      (try List.iter Campaign.Runner.resolve planned with
      | Campaign.Runner.Bad_cell m -> die2 "%s" m);
      Printf.printf "%d cells, %d brackets, cap %d nodes/cell:\n"
        (List.length planned) (List.length brackets) max_nodes;
      List.iter
        (fun c ->
          Printf.printf "  %-72s cost~%.0f\n" (Campaign.Cell.key c)
            (Campaign.Cell.cost_hint c))
        planned;
      List.iter
        (fun (b : Campaign.Driver.bracket_spec) ->
          Printf.printf "  bracket %s over [%d, %d] of %s\n"
            (Campaign.Driver.goal_name b.Campaign.Driver.goal)
            b.Campaign.Driver.lo b.Campaign.Driver.hi
            (Campaign.Cell.key b.Campaign.Driver.base))
        brackets;
      exit 0
    end;
    let cache, cstats = Campaign.Cache.open_file ~resume cache_path in
    if resume then begin
      Printf.printf "cache: %d cells loaded from %s%s\n"
        cstats.Campaign.Cache.loaded cache_path
        (if cstats.Campaign.Cache.skipped > 0 then
           Printf.sprintf " (%d corrupt lines skipped)"
             cstats.Campaign.Cache.skipped
         else "");
      if cstats.Campaign.Cache.invalid_header then
        print_endline
          "cache: header missing or version/salt mismatch — discarded, \
           recomputing everything"
    end;
    (* ctrl-C finishes the cells in flight, flushes the cache, and exits
       3 with a partial (complete=false) report *)
    let stop = Atomic.make false in
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Atomic.set stop true));
    let t0 = Unix.gettimeofday () in
    let r =
      Fun.protect
        ~finally:(fun () -> Campaign.Cache.close cache)
        (fun () ->
          try
            with_obs obs_opts (fun obs ->
                Campaign.Driver.run ~jobs ~max_nodes ?max_millis ~spin_fuel
                  ~stop ~obs ~cache plan)
          with Campaign.Runner.Bad_cell m -> die2 "%s" m)
    in
    let dt = Unix.gettimeofday () -. t0 in
    let tally pred =
      List.length
        (List.filter
           (fun cr -> pred cr.Campaign.Driver.outcome.Campaign.Cell.verdict)
           r.Campaign.Driver.cells)
    in
    Printf.printf
      "campaign: %d cells in %.2fs (%d executed, %d from cache) — %d \
       verified, %d violations, %d partial, %d fence counts\n"
      (List.length r.Campaign.Driver.cells)
      dt r.Campaign.Driver.executed r.Campaign.Driver.hits
      (tally (function Campaign.Cell.Verified -> true | _ -> false))
      (tally (function Campaign.Cell.Violation _ -> true | _ -> false))
      (tally (function Campaign.Cell.Partial _ -> true | _ -> false))
      (tally (function Campaign.Cell.Fences _ -> true | _ -> false));
    List.iter
      (fun (br : Campaign.Driver.bracket_result) ->
        Printf.printf "bracket %s of %s over [%d, %d]: %s (%d probes)\n"
          (Campaign.Driver.goal_name br.Campaign.Driver.spec.Campaign.Driver.goal)
          (Campaign.Cell.key br.Campaign.Driver.spec.Campaign.Driver.base)
          br.Campaign.Driver.spec.Campaign.Driver.lo
          br.Campaign.Driver.spec.Campaign.Driver.hi
          (match br.Campaign.Driver.answer with
          | Some a -> string_of_int a
          | None -> "no frontier in range")
          br.Campaign.Driver.evals)
      r.Campaign.Driver.brackets;
    (match report with
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Obs.Json.to_string (Campaign.Driver.report_json r));
        output_char oc '\n';
        close_out oc;
        Printf.printf "report -> %s\n" path
    | None -> ());
    if r.Campaign.Driver.interrupted then begin
      print_endline "interrupted: partial results cached and reported";
      exit 3
    end
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ grids $ brackets $ cache_path $ resume $ jobs $ max_nodes
      $ max_millis $ spin_fuel $ report $ dry_run $ validate $ obs_term)

(* --- litmus -------------------------------------------------------------- *)

let litmus_cmd =
  let doc = "Run the SB and MP litmus tests under TSO or PSO." in
  let pso = Arg.(value & flag & info [ "pso" ] ~doc:"use PSO ordering") in
  let run pso =
    let ordering = if pso then Tsim.Config.Pso else Tsim.Config.Tso in
    Printf.printf "ordering: %s\n" (Tsim.Config.ordering_name ordering);
    (* store buffering *)
    let open Tsim in
    let open Tsim.Prog in
    let layout = Layout.create () in
    let x = Layout.var layout "x" and y = Layout.var layout "y" in
    let res = Array.make 2 (-1) in
    let cfg =
      Config.make ~model:Config.Cc_wb ~ordering ~check_exclusion:false ~n:2
        ~layout
        ~entry:(fun p ->
          let mine = if p = 0 then x else y in
          let other = if p = 0 then y else x in
          let* () = write mine 1 in
          let* r = read other in
          res.(p) <- r;
          unit)
        ~exit_section:(fun _ -> Prog.unit)
        ()
    in
    let m = Machine.create cfg in
    for p = 0 to 1 do
      ignore (Machine.step m p);
      (* Enter *)
      ignore (Machine.step m p);
      (* issue *)
      ignore (Machine.step m p)
      (* read *)
    done;
    Printf.printf "SB (delayed commits): r0=%d r1=%d  (0/0 = TSO anomaly)\n"
      res.(0) res.(1)
  in
  Cmd.v (Cmd.info "litmus" ~doc) Term.(const run $ pso)

let () =
  let doc =
    "Reproduction of 'The Price of being Adaptive' (Ben-Baruch & Hendler, \
     PODC 2015)"
  in
  let info = Cmd.info "price_adaptive" ~version:"1.0.0" ~doc in
  (* Bad input must always surface as a one-line diagnostic with exit
     code 2, never a backtrace: catch anything the commands let through
     (unreadable files, Invalid_argument from deep in the stack). *)
  let code =
    try
      Cmd.eval
        (Cmd.group info
           [ list_cmd; lock_cmd; adversary_cmd; bounds_cmd; verify_cmd;
             campaign_cmd; replay_cmd; stats_cmd; trace_cmd; analyze_cmd;
             show_cmd; profile_cmd; litmus_cmd ])
    with
    | Sys_error msg ->
        prerr_endline msg;
        2
    | Invalid_argument msg | Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        2
  in
  exit code
