(* Benchmark & experiment harness.

     dune exec bench/main.exe                 run every experiment + timings
     dune exec bench/main.exe -- e3 e6        run selected experiments
     dune exec bench/main.exe -- time         run only the Bechamel timings
     dune exec bench/main.exe -- --json F     timings only, also write the
                                              rows to F as JSON
                                              [{"name":.., "value":.., "unit":..}]
     dune exec bench/main.exe -- --obs F      timings only, also stream the
                                              rows as NDJSON telemetry
                                              (one bench.row instant each)

   Experiment ids map to the paper's artefacts (DESIGN.md §3):
     e1 Figure 1 · e2 Theorems 1/3 · e3 Corollary 1 · e4 Corollary 2 ·
     e5 Corollary 3 · e6 lock zoo table · e7 PSO frontier (Ineq. 3) ·
     e8 Lemma 9 · e9 invariant audit *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json file rows =
  let oc = open_out file in
  output_string oc "[\n";
  List.iteri
    (fun i (name, value, unit) ->
      Printf.fprintf oc
        "  {\"name\": \"%s\", \"value\": %.1f, \"unit\": \"%s\"}%s\n"
        (json_escape name) value (json_escape unit)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) file

(* Stream the rows through the telemetry layer itself: one [bench.run]
   instant with run metadata, then one [bench.row] instant per result —
   the same NDJSON encoding the explorer emits, so CI can archive bench
   output and live telemetry as a single artifact format. *)
let write_obs file rows =
  let oc = open_out file in
  let obs = Obs.Telemetry.create ~sinks:[ Obs.Sink.ndjson oc ] () in
  Obs.Telemetry.instant obs "bench.run"
    ~args:[ ("rows", Obs.Json.Int (List.length rows)) ];
  List.iter
    (fun (name, value, unit) ->
      Obs.Telemetry.instant obs "bench.row"
        ~args:
          [
            ("bench", Obs.Json.String name);
            ("value", Obs.Json.Float value);
            ("unit", Obs.Json.String unit);
          ])
    rows;
  Obs.Telemetry.close obs;
  close_out oc;
  Printf.printf "wrote NDJSON telemetry for %d rows to %s\n"
    (List.length rows) file

let () =
  let rec parse json obs args =
    match args with
    | "--json" :: file :: rest -> parse (Some file) obs rest
    | "--obs" :: file :: rest -> parse json (Some file) rest
    | [ "--json" ] | [ "--obs" ] ->
        prerr_endline "bench: --json/--obs require a file argument";
        exit 2
    | a :: rest ->
        let json, obs, sel = parse json obs rest in
        (json, obs, a :: sel)
    | [] -> (json, obs, [])
  in
  let json_file, obs_file, args =
    parse None None (List.tl (Array.to_list Sys.argv))
  in
  (* --json/--obs imply timings-only unless experiments were also selected *)
  let run_timings =
    args = [] || List.mem "time" args || json_file <> None
    || obs_file <> None
  in
  let selected id =
    (args = [] && json_file = None && obs_file = None) || List.mem id args
  in
  Printf.printf
    "Reproduction harness: \"The Price of being Adaptive\" (Ben-Baruch & \
     Hendler, PODC 2015)\n";
  List.iter
    (fun (id, _desc, f) -> if selected id then f ())
    Experiments.all;
  if run_timings then begin
    Printf.printf "\nBechamel timings (simulator machinery)\n";
    Printf.printf "=====================================\n";
    let rows = Timings.run () in
    (match json_file with
    | Some file -> write_json file rows
    | None -> ());
    match obs_file with
    | Some file -> write_obs file rows
    | None -> ()
  end
