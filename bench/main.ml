(* Benchmark & experiment harness.

     dune exec bench/main.exe                 run every experiment + timings
     dune exec bench/main.exe -- e3 e6        run selected experiments
     dune exec bench/main.exe -- time         run only the Bechamel timings
     dune exec bench/main.exe -- --json F     timings only, also write the
                                              rows to F as JSON
                                              [{"name":.., "value":.., "unit":..,
                                                "domains"?:.., "nodes_per_sec"?:..}]
     dune exec bench/main.exe -- --obs F      timings only, also stream the
                                              rows as NDJSON telemetry
                                              (one bench.row instant each)
     dune exec bench/main.exe -- --compare B  timings only, compare the
                                              per-node rows against baseline
                                              JSON B; exit 1 on regression
     dune exec bench/main.exe -- --budget P   with --compare: allowed
                                              per-node regression in percent
                                              (default 5)
     dune exec bench/main.exe -- --profile F  timings only, also run the
                                              reference workload under the
                                              search profiler and write the
                                              profile to F as JSON (diffable
                                              with `price_adaptive profile
                                              diff`)

   Experiment ids map to the paper's artefacts (DESIGN.md §3):
     e1 Figure 1 · e2 Theorems 1/3 · e3 Corollary 1 · e4 Corollary 2 ·
     e5 Corollary 3 · e6 lock zoo table · e7 PSO frontier (Ineq. 3) ·
     e8 Lemma 9 · e9 invariant audit *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json file rows =
  let oc = open_out file in
  output_string oc "[\n";
  List.iteri
    (fun i (r : Timings.row) ->
      Printf.fprintf oc "  {\"name\": \"%s\", \"value\": %.1f, \"unit\": \"%s\"%s%s}%s\n"
        (json_escape r.Timings.r_name) r.Timings.r_value
        (json_escape r.Timings.r_unit)
        (match r.Timings.r_domains with
        | Some d -> Printf.sprintf ", \"domains\": %d" d
        | None -> "")
        (match r.Timings.r_nps with
        | Some nps -> Printf.sprintf ", \"nodes_per_sec\": %.1f" nps
        | None -> "")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) file

(* Regression gate: compare this run's per-node rows against a committed
   baseline JSON file (the [{"name":..,"value":..,"unit":..}] shape
   --json writes). Only [ns_per_node] rows at domains <= 1 are gated —
   wall-clock ns_per_run rows are too noisy on shared CI runners,
   node-count / gauge rows are covered exactly by the differential
   tests, and parallel-scaling rows depend on how many cores the runner
   happens to have. A row is a regression when it is more than [budget]
   percent slower than the baseline; rows missing on either side are
   reported but never fail. Returns [true] when every matched row fits
   the budget. *)
let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let baseline_rows file =
  let num = function
    | Obs.Json.Int i -> Some (float_of_int i)
    | Obs.Json.Float f -> Some f
    | _ -> None
  in
  match Obs.Json.parse (read_file file) with
  | Error e -> Error (Printf.sprintf "%s: JSON parse error: %s" file e)
  | Ok (Obs.Json.List rows) ->
      Ok
        (List.filter_map
           (fun row ->
             match
               ( Obs.Json.member "name" row,
                 Obs.Json.member "value" row,
                 Obs.Json.member "unit" row )
             with
             | Some (Obs.Json.String name), Some v, Some (Obs.Json.String u)
               -> (
                 match num v with Some v -> Some (name, v, u) | None -> None)
             | _ -> None)
           rows)
  | Ok _ -> Error (Printf.sprintf "%s: expected a JSON array of rows" file)

let compare_rows ~base_file ~budget rows =
  match baseline_rows base_file with
  | Error e ->
      prerr_endline ("bench: --compare: " ^ e);
      false
  | Ok base ->
      Printf.printf "\nPer-node comparison vs %s (budget %+.1f%%)\n"
        base_file budget;
      Printf.printf "%-62s %10s %10s %8s\n" "benchmark" "base" "now" "delta";
      let gated (r : Timings.row) =
        r.Timings.r_unit = "ns_per_node"
        && match r.Timings.r_domains with Some d -> d <= 1 | None -> true
      in
      let ok = ref true in
      List.iter
        (fun (r : Timings.row) ->
          if gated r then
            let name = r.Timings.r_name and now = r.Timings.r_value in
            match
              List.find_map
                (fun (n, v, u) ->
                  if n = name && u = "ns_per_node" then Some v else None)
                base
            with
            | None -> Printf.printf "%-62s %10s %10.1f %8s\n" name "-" now "new"
            | Some b ->
                let delta = (now -. b) /. b *. 100. in
                let fail = delta > budget in
                if fail then ok := false;
                Printf.printf "%-62s %10.1f %10.1f %+7.1f%%%s\n" name b now
                  delta
                  (if fail then "  REGRESSION" else ""))
        rows;
      List.iter
        (fun (name, _, u) ->
          if
            u = "ns_per_node"
            && not
                 (List.exists
                    (fun (r : Timings.row) ->
                      r.Timings.r_name = name
                      && r.Timings.r_unit = "ns_per_node")
                    rows)
          then Printf.printf "%-62s (baseline row missing from this run)\n" name)
        base;
      if not !ok then
        Printf.printf
          "bench: per-node regression beyond %.1f%% budget vs %s\n" budget
          base_file;
      !ok

(* Profile the reference exhaustive workload (the same Peterson space
   the per-node rows measure) and write the attribution as profile JSON
   — a committed-format artifact CI can archive per run and diff across
   runs with `price_adaptive profile diff`. *)
let write_profile file =
  let cfg = Timings.peterson_cfg () in
  let p =
    Mcheck.Explore.new_profile ~every:Mcheck.Explore.default_profile_every ()
  in
  let r =
    Mcheck.Explore.explore ~max_nodes:100_000
      ~estimator:{ Obs.Estimator.probes = 64; seed = 0 }
      ~profile:p cfg
  in
  assert r.Mcheck.Explore.verified;
  let s = r.Mcheck.Explore.stats in
  let meta =
    [
      ("tool", Obs.Json.String "price_adaptive bench --profile");
      ("workload", Obs.Json.String "mcheck/peterson n=2 exhaustive");
      ("nodes", Obs.Json.Int r.Mcheck.Explore.nodes);
      ("sampled_every", Obs.Json.Int (Obs.Profile.every p));
      ("est_nodes", Obs.Json.Float s.Mcheck.Explore.est_nodes);
      ("est_progress", Obs.Json.Float s.Mcheck.Explore.est_progress);
    ]
  in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string (Obs.Profile.to_json ~meta p));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote search profile (%d nodes) to %s\n"
    r.Mcheck.Explore.nodes file

(* Stream the rows through the telemetry layer itself: one [bench.run]
   instant with run metadata, then one [bench.row] instant per result —
   the same NDJSON encoding the explorer emits, so CI can archive bench
   output and live telemetry as a single artifact format. *)
let write_obs file rows =
  let oc = open_out file in
  let obs = Obs.Telemetry.create ~sinks:[ Obs.Sink.ndjson oc ] () in
  Obs.Telemetry.instant obs "bench.run"
    ~args:[ ("rows", Obs.Json.Int (List.length rows)) ];
  List.iter
    (fun (r : Timings.row) ->
      Obs.Telemetry.instant obs "bench.row"
        ~args:
          ([
             ("bench", Obs.Json.String r.Timings.r_name);
             ("value", Obs.Json.Float r.Timings.r_value);
             ("unit", Obs.Json.String r.Timings.r_unit);
           ]
          @ (match r.Timings.r_domains with
            | Some d -> [ ("domains", Obs.Json.Int d) ]
            | None -> [])
          @
          match r.Timings.r_nps with
          | Some nps -> [ ("nodes_per_sec", Obs.Json.Float nps) ]
          | None -> []))
    rows;
  Obs.Telemetry.close obs;
  close_out oc;
  Printf.printf "wrote NDJSON telemetry for %d rows to %s\n"
    (List.length rows) file

(* ctrl-C: raised from the signal handler, caught at the bottom of main.
   The run ends with a typed partial verdict on stdout (same wording and
   exit code 3 as the explorer's interrupt verdict), and any rows already
   measured are still flushed through the requested sinks so a cancelled
   CI job archives what it paid for. *)
exception Interrupted

let () =
  let rec parse json obs cmp budget prof args =
    match args with
    | "--json" :: file :: rest -> parse (Some file) obs cmp budget prof rest
    | "--obs" :: file :: rest -> parse json (Some file) cmp budget prof rest
    | "--compare" :: file :: rest ->
        parse json obs (Some file) budget prof rest
    | "--budget" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some b when b >= 0. -> parse json obs cmp b prof rest
        | _ ->
            prerr_endline "bench: --budget requires a non-negative percent";
            exit 2)
    | "--profile" :: file :: rest -> parse json obs cmp budget (Some file) rest
    | [ "--json" ] | [ "--obs" ] | [ "--compare" ] | [ "--budget" ]
    | [ "--profile" ] ->
        prerr_endline
          "bench: --json/--obs/--compare/--budget/--profile require an \
           argument";
        exit 2
    | a :: rest ->
        let json, obs, cmp, budget, prof, sel =
          parse json obs cmp budget prof rest
        in
        (json, obs, cmp, budget, prof, a :: sel)
    | [] -> (json, obs, cmp, budget, prof, [])
  in
  let json_file, obs_file, compare_file, budget, profile_file, args =
    parse None None None 5.0 None (List.tl (Array.to_list Sys.argv))
  in
  (* --json/--obs/--compare/--profile imply timings-only unless
     experiments were also selected *)
  let run_timings =
    args = [] || List.mem "time" args || json_file <> None
    || obs_file <> None || compare_file <> None || profile_file <> None
  in
  let selected id =
    (args = []
    && json_file = None
    && obs_file = None
    && compare_file = None
    && profile_file = None)
    || List.mem id args
  in
  Printf.printf
    "Reproduction harness: \"The Price of being Adaptive\" (Ben-Baruch & \
     Hendler, PODC 2015)\n";
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> raise Interrupted));
  let experiments_done = ref 0 in
  let rows_done = ref [] in
  try
    List.iter
      (fun (id, _desc, f) ->
        if selected id then begin
          f ();
          incr experiments_done
        end)
      Experiments.all;
    if run_timings then begin
      Printf.printf "\nBechamel timings (simulator machinery)\n";
      Printf.printf "=====================================\n";
      let rows = Timings.run () in
      rows_done := rows;
      (match json_file with
      | Some file -> write_json file rows
      | None -> ());
      (match obs_file with
      | Some file -> write_obs file rows
      | None -> ());
      (match profile_file with
      | Some file -> write_profile file
      | None -> ());
      match compare_file with
      | Some base_file ->
          if not (compare_rows ~base_file ~budget rows) then exit 1
      | None -> ()
    end
  with Interrupted ->
    (match obs_file with
    | Some file -> write_obs file !rows_done
    | None -> ());
    Printf.printf
      "PARTIAL: stopped by abort request (interrupt) after %d experiment(s), \
       %d timing row(s) — not a benchmark run\n"
      !experiments_done
      (List.length !rows_done);
    exit 3
