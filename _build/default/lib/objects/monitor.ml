(* Monitors: wrap any program in a ticket-lock critical section.

   Section 5's converse direction: "counter, stack and queue objects can
   be easily implemented using the mutual exclusion algorithm" — each
   operation acquires a lock, runs its sequential code, and releases.
   The resulting objects are linearizable by construction (checked by
   the lincheck suite) and inherit the lock's RMR/fence profile, which
   is how the paper's lower bound transfers back to objects. *)

open Tsim
open Tsim.Ids
open Prog

type t = { next : Var.t; serving : Var.t }

let make layout name =
  {
    next = Layout.var layout (name ^ ".next");
    serving = Layout.var layout (name ^ ".serving");
  }

(* Run [body] under mutual exclusion (ticket discipline, FIFO). The
   trailing fence publishes the critical section's writes together with
   the lock release. *)
let exec t (body : 'a Prog.t) : 'a Prog.t =
  let* ticket = faa t.next 1 in
  let* _ = spin_until t.serving (fun s -> s = ticket) in
  let* result = body in
  let* () = write t.serving (ticket + 1) in
  let* () = fence in
  return result

(* Lock-based objects: sequential code under a monitor. *)

type locked_counter = { c_monitor : t; c_value : Var.t }

let locked_counter layout name =
  { c_monitor = make layout name; c_value = Layout.var layout (name ^ ".v") }

let locked_fetch_inc (c : locked_counter) =
  exec c.c_monitor
    (let* v = read c.c_value in
     let* () = write c.c_value (v + 1) in
     return v)

type locked_stack = { s_monitor : t; s_top : Var.t; s_items : Var.t array }

let locked_stack layout name ~capacity =
  {
    s_monitor = make layout name;
    s_top = Layout.var layout (name ^ ".top");
    s_items = Layout.array layout (name ^ ".item") capacity;
  }

let locked_push (s : locked_stack) v =
  exec s.s_monitor
    (let* top = read s.s_top in
     if top >= Array.length s.s_items then
       invalid_arg "locked_push: capacity exceeded"
     else
       let* () = write s.s_items.(top) v in
       let* () = write s.s_top (top + 1) in
       return 0)

(* Returns -1 when empty. *)
let locked_pop (s : locked_stack) =
  exec s.s_monitor
    (let* top = read s.s_top in
     if top = 0 then return (-1)
     else
       let* v = read s.s_items.(top - 1) in
       let* () = write s.s_top (top - 1) in
       return v)

type locked_queue = {
  q_monitor : t;
  q_head : Var.t;
  q_tail : Var.t;
  q_items : Var.t array;
}

let locked_queue layout name ~capacity =
  {
    q_monitor = make layout name;
    q_head = Layout.var layout (name ^ ".head");
    q_tail = Layout.var layout (name ^ ".tail");
    q_items = Layout.array layout (name ^ ".item") capacity;
  }

let locked_enqueue (q : locked_queue) v =
  exec q.q_monitor
    (let* tail = read q.q_tail in
     if tail >= Array.length q.q_items then
       invalid_arg "locked_enqueue: capacity exceeded"
     else
       let* () = write q.q_items.(tail) v in
       let* () = write q.q_tail (tail + 1) in
       return 0)

(* Returns -1 when empty. *)
let locked_dequeue (q : locked_queue) =
  exec q.q_monitor
    (let* head = read q.q_head in
     let* tail = read q.q_tail in
     if head >= tail then return (-1)
     else
       let* v = read q.q_items.(head) in
       let* () = write q.q_head (head + 1) in
       return v)
