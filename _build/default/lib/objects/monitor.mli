(** Monitors (Section 5, converse direction): wrap any program in a
    ticket-lock critical section, and lock-based counter/stack/queue
    objects built that way — linearizable by construction and inheriting
    the lock's RMR/fence profile. *)

open Tsim
open Tsim.Ids

type t

val make : Layout.t -> string -> t

val exec : t -> 'a Prog.t -> 'a Prog.t
(** Run a program under mutual exclusion (FIFO ticket discipline). *)

type locked_counter

val locked_counter : Layout.t -> string -> locked_counter
val locked_fetch_inc : locked_counter -> Value.t Prog.t

type locked_stack

val locked_stack : Layout.t -> string -> capacity:int -> locked_stack
val locked_push : locked_stack -> Value.t -> Value.t Prog.t
val locked_pop : locked_stack -> Value.t Prog.t
(** [-1] when empty. *)

type locked_queue

val locked_queue : Layout.t -> string -> capacity:int -> locked_queue
val locked_enqueue : locked_queue -> Value.t -> Value.t Prog.t
val locked_dequeue : locked_queue -> Value.t Prog.t
(** [-1] when empty. *)
