(** Treiber stack with single-use nodes (no ABA without tags). For the
    Lemma 9 reduction the stack is pre-filled with N-1..0 so pops return
    0, 1, 2, ... — an N-limited-use counter, exactly the paper's
    construction. *)

open Tsim
open Tsim.Ids

type t

val empty_value : Value.t
(** Returned by {!pop} on an empty stack. *)

val make :
  ?name:string -> ?prefill:Value.t list -> Layout.t -> n:int
  -> ops_per_proc:int -> t
(** [prefill] is pushed bottom-to-top at creation; each process gets
    [ops_per_proc] single-use push nodes. *)

val push : t -> Pid.t -> Value.t -> unit Prog.t
(** @raise Invalid_argument (at program-construction time) when the
    process exceeds its node budget. *)

val pop : t -> Pid.t -> Value.t Prog.t

val pop_provider : Obj_intf.builder
(** A stack pre-filled with N-1..0, popped once per process. *)
