(* Object interfaces for Section 5.

   Lemma 9 builds a one-time mutual exclusion algorithm from any weak
   obstruction-free counter, stack or queue such that each passage invokes
   exactly one operation on the object. A [provider] packages what the
   reduction needs: variables declared into the *caller's* layout and a
   fetch&increment-like program (the object's dequeue/pop plays that role
   when the object is pre-filled with 0..N-1). *)

open Tsim
open Tsim.Ids

type provider = {
  provider_name : string;
  uses_rmw : bool;
  (* returns the next value of the logical counter: 0, 1, 2, ... *)
  fetch_inc : Pid.t -> Value.t Prog.t;
}

(* Builders declare their shared variables into the given layout (shared
   with the enclosing algorithm) for [n] processes performing at most one
   operation each. *)
type builder = Layout.t -> n:int -> provider
