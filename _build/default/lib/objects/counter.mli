(** Counters: the wait-free FAA counter and the lock-free CAS retry
    counter, whose fence complexity degrades under contention exactly as
    the paper's tradeoff predicts for adaptive objects. *)

open Tsim
open Tsim.Ids

type t = {
  var : Var.t;
  fetch_inc : Pid.t -> Value.t Prog.t;
  name : string;
}

val make_faa : Layout.t -> t
val make_cas : Layout.t -> t

val value : Machine.t -> t -> Value.t
(** Current counter value in shared memory. *)

val exhausted : Value.t
(** Returned by a limited-use counter past its budget. *)

val make_limited : Layout.t -> m:int -> t
(** m-limited-use counter (Section 5): at most [m] fetch&increments. *)

val faa_provider : Obj_intf.builder
val cas_provider : Obj_intf.builder

(** {1 Read/write weak counter}

    Per-process single-writer cells summed via an atomic snapshot:
    wait-free increments, obstruction-free reads, no fetch&increment
    (which would yield mutual exclusion and inherit the paper's fence
    lower bound). *)

type rw

val make_rw : Layout.t -> n:int -> rw

val rw_inc : rw -> Pid.t -> unit Prog.t
(** Increment the caller's own cell (one fence). *)

val rw_read : rw -> Value.t Prog.t
(** Sum of a consistent snapshot of all cells. *)
