(* Sense-reversing centralized barrier.

   Each arrival decrements [count] with FAA (one fence); the last arrival
   resets the count and flips the global [sense], releasing the others
   from their spin. Per-episode cost: one RMW and O(1) RMRs for the
   releaser, one RMW plus one invalidation-refill for each waiter in the
   CC models. A fence-bearing primitive that rounds out the substrate's
   coordination toolbox. *)

open Tsim
open Tsim.Ids
open Prog

type t = {
  n : int;
  count : Var.t;
  sense : Var.t;
  local_sense : int array;  (* per-process scratch *)
}

let make layout ~n =
  {
    n;
    count = Layout.var layout ~init:n "barrier.count";
    sense = Layout.var layout ~init:0 "barrier.sense";
    local_sense = Array.make n 0;
  }

(* Wait until all [n] processes have arrived at this episode. *)
let await t p =
  let my = 1 - t.local_sense.(p) in
  t.local_sense.(p) <- my;
  let* c = faa t.count (-1) in
  if c = 1 then
    (* last arrival: reset and release *)
    let* () = write t.count t.n in
    let* () = write t.sense my in
    fence
  else
    let* _ = spin_until t.sense (fun s -> s = my) in
    unit
