lib/objects/oqueue.ml: Array Fun Layout List Obj_intf Printf Prog Tsim Var
