lib/objects/snapshot.ml: Array Layout List Prog Tsim Var
