lib/objects/counter.ml: Array Layout List Machine Obj_intf Pid Printf Prog Snapshot Tsim Value Var
