lib/objects/ostack.ml: Array Layout List Obj_intf Printf Prog Tsim Var
