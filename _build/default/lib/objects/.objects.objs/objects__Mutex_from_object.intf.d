lib/objects/mutex_from_object.mli: Locks Obj_intf
