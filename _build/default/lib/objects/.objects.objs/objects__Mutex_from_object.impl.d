lib/objects/mutex_from_object.ml: Array Counter Layout Locks Obj_intf Oqueue Ostack Printf Prog Tsim Var
