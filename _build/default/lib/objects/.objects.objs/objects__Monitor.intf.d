lib/objects/monitor.mli: Layout Prog Tsim Value
