lib/objects/barrier.mli: Layout Pid Prog Tsim
