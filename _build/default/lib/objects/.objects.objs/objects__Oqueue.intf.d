lib/objects/oqueue.mli: Layout Obj_intf Prog Tsim Value
