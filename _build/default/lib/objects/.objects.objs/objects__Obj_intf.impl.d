lib/objects/obj_intf.ml: Layout Pid Prog Tsim Value
