lib/objects/obj_intf.mli: Layout Pid Prog Tsim Value
