lib/objects/ostack.mli: Layout Obj_intf Pid Prog Tsim Value
