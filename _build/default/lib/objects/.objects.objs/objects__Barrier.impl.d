lib/objects/barrier.ml: Array Layout Prog Tsim Var
