lib/objects/snapshot.mli: Layout Pid Prog Tsim Value
