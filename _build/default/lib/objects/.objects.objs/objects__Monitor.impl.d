lib/objects/monitor.ml: Array Layout Prog Tsim Var
