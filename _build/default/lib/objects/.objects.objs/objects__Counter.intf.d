lib/objects/counter.mli: Layout Machine Obj_intf Pid Prog Tsim Value Var
