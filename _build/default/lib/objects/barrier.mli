(** Sense-reversing centralized barrier: one FAA per arrival, the last
    arrival flips the sense and releases the spinners. *)

open Tsim
open Tsim.Ids

type t

val make : Layout.t -> n:int -> t

val await : t -> Pid.t -> unit Prog.t
(** Block (spin) until all [n] processes have arrived at this episode. *)
