(** Array-based FIFO queue with FAA slot reservation; slots are
    single-use (no ABA). For Lemma 9 the queue is pre-filled with
    0..N-1 and dequeued once per process. *)

open Tsim
open Tsim.Ids

type t

val empty_value : Value.t

val make :
  ?name:string -> ?prefill:Value.t list -> Layout.t -> capacity:int -> t

val enqueue : t -> Value.t -> unit Prog.t
(** @raise Invalid_argument (at simulation time) past capacity. *)

val dequeue_nonempty : t -> Value.t Prog.t
(** Claim a slot and wait for its item; for queues known to be non-empty
    (the pre-filled Lemma 9 counter). *)

val try_dequeue : t -> Value.t Prog.t
(** Returns {!empty_value} when no items are present at the linearization
    point; if a racing dequeuer steals the observed slot, waits for the
    claimed later slot instead (FIFO preserved). *)

val dequeue_provider : Obj_intf.builder
