(* Counters.

   - [faa]: the trivial wait-free counter over the FAA primitive (one
     implicit fence per operation).
   - [cas]: a CAS retry loop — lock-free, obstruction-free, and the
     canonical example of an operation whose *fence* complexity degrades
     under contention (each failed CAS costs a drain), which is exactly
     the behaviour the paper's tradeoff predicts for adaptive objects. *)

open Tsim
open Tsim.Ids
open Prog

type t = { var : Var.t; fetch_inc : Pid.t -> Value.t Prog.t; name : string }

let make_faa layout =
  let var = Layout.var layout "counter" in
  { var; name = "counter-faa"; fetch_inc = (fun _ -> faa var 1) }

let make_cas layout =
  let var = Layout.var layout "counter" in
  let rec incr () =
    let* x = read var in
    let* ok = cas var ~expected:x ~desired:(x + 1) in
    if ok then return x else incr ()
  in
  { var; name = "counter-cas"; fetch_inc = (fun _ -> incr ()) }

let value machine (t : t) = Machine.mem_value machine t.var

(* m-limited-use counter (paper, Section 5): permits at most [m]
   fetch&increment instances; the (m+1)'th returns [exhausted]. Any
   counter is an m-limited-use counter for any m, and the pre-filled
   queue/stack providers realize exactly the N-limited-use variant. *)

let exhausted = -2

let make_limited layout ~m =
  let var = Layout.var layout "counter" in
  {
    var;
    name = Printf.sprintf "counter-faa-limited-%d" m;
    fetch_inc =
      (fun _ ->
        let open Prog in
        let* v = faa var 1 in
        if v >= m then return exhausted else return v);
  }

(* Read/write weak counter: per-process single-writer cells, summed by an
   atomic snapshot scan. Increments are wait-free; reads are
   obstruction-free. This is the classic *weak* counter — it deliberately
   does NOT provide fetch&increment, which (per the paper's Section 5
   reduction) would yield mutual exclusion and inherit the fence lower
   bound. *)

type rw = { snap : Snapshot.t; cells : int array }

let make_rw layout ~n =
  { snap = Snapshot.make layout ~n; cells = Array.make n 0 }

(* Increment the caller's own cell (one fence). *)
let rw_inc (t : rw) p =
  t.cells.(p) <- t.cells.(p) + 1;
  Snapshot.update t.snap p t.cells.(p)

(* Sum a consistent snapshot of all cells. *)
let rw_read (t : rw) =
  Prog.map (Snapshot.scan t.snap) (List.fold_left ( + ) 0)

(* Providers for the Lemma 9 reduction. *)
let faa_provider : Obj_intf.builder =
 fun layout ~n ->
  ignore n;
  let c = make_faa layout in
  { Obj_intf.provider_name = c.name; uses_rmw = true; fetch_inc = c.fetch_inc }

let cas_provider : Obj_intf.builder =
 fun layout ~n ->
  ignore n;
  let c = make_cas layout in
  { Obj_intf.provider_name = c.name; uses_rmw = true; fetch_inc = c.fetch_inc }
