(** Algorithm 1 of the paper (Lemma 9): one-time mutual exclusion from an
    N-limited-use counter — and hence from a pre-filled queue or stack.
    Each passage performs exactly one object operation plus O(1)
    reads/writes and O(1) fences, so the mutex inherits the object's RMR
    and fence complexities up to an additive constant, transferring the
    fence lower bound to counters, stacks and queues (Corollary 1). *)

val make :
  ?name_suffix:string -> Obj_intf.builder -> n:int -> Locks.Lock_intf.t

val from_counter_faa : n:int -> Locks.Lock_intf.t
val from_counter_cas : n:int -> Locks.Lock_intf.t
val from_queue : n:int -> Locks.Lock_intf.t
val from_stack : n:int -> Locks.Lock_intf.t

val families : Locks.Lock_intf.family list
