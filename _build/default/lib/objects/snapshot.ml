(* Single-writer atomic snapshot via double collect.

   The classic read/write construction (Afek et al.): each process owns a
   segment (value, sequence number); [update] bumps its own segment and
   publishes with one fence; [scan] repeatedly collects all segments until
   two consecutive collects agree on every sequence number, which
   certifies the collected values existed simultaneously.

   Obstruction-free: a scan running alone terminates after two collects.
   Snapshots are the collect step of adaptive renaming-based algorithms,
   which is why the substrate carries one. *)

open Tsim
open Tsim.Ids
open Prog

type t = {
  n : int;
  value : Var.t array;  (* value.(i), owned by i *)
  seqno : Var.t array;  (* seqno.(i), owned by i *)
}

let make layout ~n =
  {
    n;
    value = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:0 "snap.val" n;
    seqno = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:0 "snap.seq" n;
  }

(* Update own segment: one fence per update. *)
let update t p v =
  let* s = read t.seqno.(p) in
  let* () = write t.value.(p) v in
  let* () = write t.seqno.(p) (s + 1) in
  fence

let collect t =
  let rec go i acc =
    if i >= t.n then return (List.rev acc)
    else
      let* s = read t.seqno.(i) in
      let* v = read t.value.(i) in
      go (i + 1) ((s, v) :: acc)
  in
  go 0 []

exception Scan_exhausted

(* Double collect; retries until two consecutive collects agree on all
   sequence numbers. [fuel] bounds the retries (concurrent updaters can
   starve a scanner — the construction is obstruction-free, not
   wait-free). *)
let scan ?(fuel = 10_000) t =
  let rec attempt budget prev =
    if budget <= 0 then raise Scan_exhausted
    else
      let* c = collect t in
      match prev with
      | Some c' when List.for_all2 (fun (s, _) (s', _) -> s = s') c c' ->
          return (List.map snd c)
      | _ -> attempt (budget - 1) (Some c)
  in
  attempt fuel None
