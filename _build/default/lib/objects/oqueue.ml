(* Array-based FIFO queue with fetch-and-increment slot reservation.

   Enqueuers reserve a slot with FAA on [tail] and publish the item into
   it; dequeuers claim a slot with FAA on [head] and (if an enqueuer has
   reserved but not yet published) wait for the item to appear. Slots are
   single-use, so no ABA arises. Items are stored biased by +1 (0 = slot
   still empty).

   [try_dequeue] gives the empty-returning variant of the paper's queue
   semantics (it reads [tail] first and only claims a slot when the queue
   is provably non-empty at that instant; under concurrent enqueues this
   is a legitimate linearizable "empty" answer).

   For the Lemma 9 reduction the queue is pre-filled with 0 .. N-1 and
   each process dequeues exactly once: an N-limited-use counter. *)

open Tsim
open Tsim.Ids
open Prog

type t = {
  items : Var.t array;
  head : Var.t;
  tail : Var.t;
  capacity : int;
  name : string;
}

let empty_value = -1

let make ?(name = "queue") ?(prefill = []) layout ~capacity =
  let npre = List.length prefill in
  if npre > capacity then invalid_arg (name ^ ": prefill exceeds capacity");
  let pre = Array.of_list prefill in
  let items =
    Array.init capacity (fun i ->
        let init = if i < npre then pre.(i) + 1 else 0 in
        Layout.var layout ~init (Printf.sprintf "%s.item[%d]" name i))
  in
  {
    items;
    head = Layout.var layout ~init:0 (name ^ ".head");
    tail = Layout.var layout ~init:npre (name ^ ".tail");
    capacity;
    name;
  }

let enqueue t v =
  let* slot = faa t.tail 1 in
  if slot >= t.capacity then
    invalid_arg (t.name ^ ": capacity exceeded")
  else
    let* () = write t.items.(slot) (v + 1) in
    fence

(* Claim a slot and wait for its item (used when the queue is known to be
   non-empty, e.g. the pre-filled Lemma 9 counter). *)
let dequeue_nonempty t =
  let* slot = faa t.head 1 in
  let* x = spin_until t.items.(slot) (fun x -> x <> 0) in
  return (x - 1)

(* Empty-aware dequeue: answer [empty_value] when no items are present. *)
let try_dequeue t =
  let* h = read t.head in
  let* tl = read t.tail in
  if h >= tl then return empty_value
  else
    (* claim atomically; a racing dequeuer may have beaten us to this slot,
       in which case our claim lands on a later slot and we wait for its
       item (FAA cannot hand a claim back) — FIFO is preserved either way *)
    let* slot = faa t.head 1 in
    let* x = spin_until t.items.(slot) (fun x -> x <> 0) in
    return (x - 1)

(* Lemma 9 provider: a queue pre-filled with 0 .. N-1, dequeued once per
   process. *)
let dequeue_provider : Obj_intf.builder =
 fun layout ~n ->
  let t = make ~name:"queue" ~prefill:(List.init n Fun.id) layout ~capacity:n in
  {
    Obj_intf.provider_name = "queue-dequeue";
    uses_rmw = true;
    fetch_inc = (fun _ -> dequeue_nonempty t);
  }
