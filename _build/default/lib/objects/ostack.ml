(* Treiber stack with single-use nodes.

   A lock-free stack: [top] holds the index+1 of the top node (0 = nil);
   a push links a fresh node with CAS, a pop unlinks the top node with
   CAS. Nodes are preallocated and never reused, which rules out the
   classic ABA hazard without needing tagged pointers.

   Node arena layout: indices [0, npre) hold the prefill chain (bottom to
   top), then [npre + p*ops_per_proc, ...) is process p's private block of
   single-use push nodes.

   For the Lemma 9 reduction the stack is pre-filled with N-1 .. 0 (so
   pops return 0, 1, 2, ... — an N-limited-use counter, exactly the
   construction in the paper's proof). *)

open Tsim
open Tsim.Ids
open Prog

type t = {
  top : Var.t;
  vals : Var.t array;  (* node payloads *)
  nexts : Var.t array;  (* node links: index+1 of the next node, 0 = nil *)
  name : string;
  npre : int;
  node_of : int array;  (* next free node offset per process *)
  nodes_per_proc : int;
}

let empty_value = -1

(* [prefill] items are pushed bottom-to-top at creation: the LAST element
   of [prefill] ends up on top. *)
let make ?(name = "stack") ?(prefill = []) layout ~n ~ops_per_proc =
  let npre = List.length prefill in
  let nnodes = max 1 (npre + (n * ops_per_proc)) in
  let pre = Array.of_list prefill in
  let vals =
    Array.init nnodes (fun i ->
        let init = if i < npre then pre.(i) else 0 in
        Layout.var layout ~init (Printf.sprintf "%s.val[%d]" name i))
  in
  let nexts =
    Array.init nnodes (fun i ->
        (* prefill node i sits on node i-1 (encoded i-1+1 = i); node 0 on nil *)
        let init = if i < npre && i > 0 then i else 0 in
        Layout.var layout ~init (Printf.sprintf "%s.next[%d]" name i))
  in
  let top = Layout.var layout ~init:npre (name ^ ".top") in
  { top; vals; nexts; name; npre; node_of = Array.make n 0; nodes_per_proc = ops_per_proc }

(* Allocate the next single-use node for process [p]. *)
let alloc t p =
  let k = t.node_of.(p) in
  if k >= t.nodes_per_proc then
    invalid_arg (t.name ^ ": process exceeded its node budget");
  t.node_of.(p) <- k + 1;
  t.npre + (p * t.nodes_per_proc) + k

let push t p v =
  let nd = alloc t p in
  let* () = write t.vals.(nd) v in
  let rec attempt () =
    let* old_top = read t.top in
    let* () = write t.nexts.(nd) old_top in
    let* ok = cas t.top ~expected:old_top ~desired:(nd + 1) in
    if ok then unit else attempt ()
  in
  attempt ()

(* Pop; returns [empty_value] if the stack is empty. Nodes are never
   reused, so reading the payload and link before the CAS is safe. *)
let pop t _p =
  let rec attempt () =
    let* old_top = read t.top in
    if old_top = 0 then return empty_value
    else
      let nd = old_top - 1 in
      let* v = read t.vals.(nd) in
      let* nxt = read t.nexts.(nd) in
      let* ok = cas t.top ~expected:old_top ~desired:nxt in
      if ok then return v else attempt ()
  in
  attempt ()

(* Lemma 9 provider: a stack pre-filled with N-1 .. 0, popped once per
   process, behaves as an N-limited-use fetch&increment. *)
let pop_provider : Obj_intf.builder =
 fun layout ~n ->
  let prefill = List.init n (fun i -> n - 1 - i) in
  let t = make ~name:"stack" ~prefill layout ~n ~ops_per_proc:0 in
  {
    Obj_intf.provider_name = "stack-pop";
    uses_rmw = true;
    fetch_inc = (fun p -> pop t p);
  }
