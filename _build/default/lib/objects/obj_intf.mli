(** Object interfaces for Section 5. A [provider] packages what the
    Lemma 9 reduction needs: variables declared into the caller's layout
    and a fetch&increment-like program (a pre-filled queue's dequeue or
    stack's pop plays that role). *)

open Tsim
open Tsim.Ids

type provider = {
  provider_name : string;
  uses_rmw : bool;
  fetch_inc : Pid.t -> Value.t Prog.t;
      (** returns the next counter value: 0, 1, 2, ... *)
}

type builder = Layout.t -> n:int -> provider
(** Declare shared state for [n] processes performing at most one
    operation each. *)
