(** Single-writer atomic snapshot via double collect (Afek et al.):
    read/write only, obstruction-free scans, one fence per update. The
    collect step of adaptive renaming-based algorithms. *)

open Tsim
open Tsim.Ids

type t

val make : Layout.t -> n:int -> t

val update : t -> Pid.t -> Value.t -> unit Prog.t
(** Publish a new value in the caller's own segment. *)

val collect : t -> (Value.t * Value.t) list Prog.t
(** One pass over all segments: (seqno, value) pairs. *)

exception Scan_exhausted

val scan : ?fuel:int -> t -> Value.t list Prog.t
(** Double collect until two consecutive collects agree on every
    sequence number. Raises {!Scan_exhausted} (at simulation time) after
    [fuel] retries. *)
