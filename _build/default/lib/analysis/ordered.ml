(* Ordered executions (Definition 6).

   Used by the write phase: an execution is ordered when every variable
   satisfies one of
     (a) its last writer is not active;
     (b) its last writer is the only active process to access it;
     (c) the trace contains a contiguous run of commit writes to it by all
         active processes in increasing ID order, and every active process
         is still inside the fence during which it committed that write. *)

open Tsim
open Execution
open Tsim.Ids

type clause = A | B | C

let clause_name = function A -> "a" | B -> "b" | C -> "c"

type var_verdict = { var : Var.t; clause : clause option; detail : string }

(* Does the trace contain a contiguous block of commit-writes to [v] by all
   of [act] in increasing ID order? *)
let find_ordered_block (t : Trace.t) v act =
  let ids = Pidset.elements act in
  let k = List.length ids in
  if k = 0 then None
  else
    let events = Trace.events t in
    let n = Array.length events in
    let is_commit_to_v (e : Event.t) =
      match e.Event.kind with
      | Event.Commit_write { var; _ } -> Var.equal var v
      | _ -> false
    in
    let rec try_at i =
      if i + k > n then None
      else if
        List.for_all2
          (fun j p ->
            let e = events.(i + j) in
            is_commit_to_v e && Pid.equal e.Event.pid p)
          (List.init k Fun.id) ids
      then Some i
      else try_at (i + 1)
    in
    try_at 0

(* Is [p] still executing, after the trace, the fence during which it
   committed event index [i]? True iff a BeginFence by [p] precedes [i] with
   no later EndFence by [p] anywhere after that BeginFence. *)
let still_in_commit_fence (t : Trace.t) p i =
  let events = Trace.events t in
  let begin_before = ref None in
  Array.iteri
    (fun j (e : Event.t) ->
      if Pid.equal e.Event.pid p && j <= i then
        match e.Event.kind with
        | Event.Begin_fence _ -> begin_before := Some j
        | _ -> ())
    events;
  match !begin_before with
  | None -> false
  | Some b ->
      let ended = ref false in
      Array.iteri
        (fun j (e : Event.t) ->
          if j > b && Pid.equal e.Event.pid p then
            match e.Event.kind with
            | Event.End_fence _ -> ended := true
            | _ -> ())
        events;
      not !ended

let check_var (t : Trace.t) (s : Flow.summary) act v : var_verdict =
  match Flow.get_writer s v with
  | None -> { var = v; clause = Some A; detail = "writer = ⊥" }
  | Some w when not (Pidset.mem w act) ->
      { var = v; clause = Some A; detail = Printf.sprintf "writer p%d not active" w }
  | Some w ->
      let accessors = Pidset.inter (Flow.get_accessed s v) act in
      if Pidset.equal accessors (Pidset.singleton w) then
        { var = v; clause = Some B;
          detail = Printf.sprintf "p%d is the only active accessor" w }
      else (
        match find_ordered_block t v act with
        | Some i ->
            let k = Pidset.cardinal act in
            let all_in_fence =
              List.for_all
                (fun (j, p) -> still_in_commit_fence t p (i + j))
                (List.mapi (fun j p -> (j, p)) (Pidset.elements act))
            in
            ignore k;
            if all_in_fence then
              { var = v; clause = Some C;
                detail = Printf.sprintf "ID-ordered commit block at #%d" i }
            else
              { var = v; clause = None;
                detail = "commit block found but some process completed its fence" }
        | None ->
            { var = v; clause = None;
              detail =
                Printf.sprintf
                  "writer p%d active, %d active accessors, no ordered block" w
                  (Pidset.cardinal accessors) })

type verdict = { ok : bool; failures : var_verdict list }

let check (t : Trace.t) : verdict =
  let s = Flow.analyze t in
  let act = Trace.active t in
  let layout = Trace.layout t in
  let failures = ref [] in
  for v = 0 to Layout.size layout - 1 do
    let vv = check_var t s act v in
    if vv.clause = None then failures := vv :: !failures
  done;
  { ok = !failures = []; failures = List.rev !failures }
