(** Wait-for diagnostics for stalled machines: what each unfinished
    process is about to do, whose value it is spinning on, and whether
    the wait-for relation contains a cycle. *)

open Tsim
open Tsim.Ids

type wait = {
  pid : Pid.t;
  pending : string;
  watching : Var.t option;
  current : Value.t option;
  last_writer : Pid.t option;
  var_owner : Pid.t option;
  in_fence : bool;
  section : string;
}

val observe : Machine.t -> wait list
(** One record per unfinished process. *)

val wait_edges : wait list -> (Pid.t * Pid.t) list
(** p -> q when p's pending access targets a variable last written by
    (or owned by) q. *)

val find_cycle : wait list -> Pid.t list option

val pp_wait : Layout.t -> Format.formatter -> wait -> unit
val report : Format.formatter -> Machine.t -> unit
