lib/analysis/flow.mli: Execution Hashtbl Pid Pidset Trace Tsim Var
