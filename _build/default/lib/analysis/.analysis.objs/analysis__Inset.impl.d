lib/analysis/inset.ml: Array Event Execution Flow Format Hashtbl Layout List Pid Pidset Printf String Trace Tsim
