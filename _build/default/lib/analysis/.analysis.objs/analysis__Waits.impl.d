lib/analysis/waits.ml: Config Format Fun Layout List Machine Option Pid Printf String Tsim Value Var
