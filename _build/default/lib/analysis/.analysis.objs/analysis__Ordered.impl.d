lib/analysis/ordered.ml: Array Event Execution Flow Fun Layout List Pid Pidset Printf Trace Tsim Var
