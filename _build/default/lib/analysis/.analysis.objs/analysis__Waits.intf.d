lib/analysis/waits.mli: Format Layout Machine Pid Tsim Value Var
