lib/analysis/flow.ml: Array Event Execution Hashtbl Layout List Option Pid Pidset Trace Tsim Var
