lib/analysis/ordered.mli: Execution Flow Pid Pidset Trace Tsim Var
