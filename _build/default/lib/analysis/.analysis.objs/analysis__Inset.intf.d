lib/analysis/inset.mli: Execution Flow Format Pidset Trace Tsim
