(** Information-flow reconstruction over a trace.

    Recomputes, from the event sequence alone, everything the paper
    derives from an execution: awareness sets (Definition 1),
    [writer(v, E)], [Accessed(v, E)], statuses, fence counts, and the
    criticality of every event (Definition 2). Criticality is relative to
    the containing execution, so analyses of erased executions must use
    this module; the machine's online flags are cross-checked against it
    in tests. *)

open Tsim.Ids
open Execution

type summary = {
  aw : (Pid.t, Pidset.t) Hashtbl.t;
  writer : (Var.t, Pid.t) Hashtbl.t;  (** absent key = ⊥ *)
  writer_aw : (Var.t, Pidset.t) Hashtbl.t;
      (** the writer's awareness at issue time *)
  accessed : (Var.t, Pidset.t) Hashtbl.t;
  status : (Pid.t, [ `Ncs | `Entry | `Exit ]) Hashtbl.t;
  critical : bool array;  (** recomputed criticality, per event index *)
  criticals_per_pid : (Pid.t, int) Hashtbl.t;
  fences_per_pid : (Pid.t, int) Hashtbl.t;
  in_fence : (Pid.t, bool) Hashtbl.t;
}

val get_aw : summary -> Pid.t -> Pidset.t
val get_writer : summary -> Var.t -> Pid.t option
val get_accessed : summary -> Var.t -> Pidset.t
val get_status : summary -> Pid.t -> [ `Ncs | `Entry | `Exit ]
val get_criticals : summary -> Pid.t -> int
val get_fences : summary -> Pid.t -> int
val get_mode : summary -> Pid.t -> [ `Read | `Write ]

val analyze : Trace.t -> summary

val criticality_disagreements : Trace.t -> summary -> int list
(** Event indices where the recomputed criticality differs from the
    online flag recorded in the event (must be empty on un-erased
    traces). *)
