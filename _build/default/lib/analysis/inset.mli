(** Invisible sets (Definition 4) and regularity (Definition 5).

    [check t inv] verifies the five IN properties of a candidate set
    [inv ⊆ Act(t)]. IN3 quantifies over all subsets of [inv]; checking
    every subset is exponential, so [check] verifies every singleton and
    the full set (catching the writer-chain situations where erasure can
    change criticality), and {!check_in3_subset} lets property tests
    sample arbitrary subsets. *)

open Tsim.Ids
open Execution

type violation = { property : string; detail : string }

val violation : string -> string -> violation
val pp_violation : Format.formatter -> violation -> unit

val check_in1 : Flow.summary -> Pidset.t -> violation list
val check_in2 : Flow.summary -> Pidset.t -> violation list

val check_in3_subset : Trace.t -> Flow.summary -> Pidset.t -> violation list
(** IN3 for one erased subset [y]: erasing [y] must not change the
    criticality of any remaining event. *)

val check_in3 : Trace.t -> Flow.summary -> Pidset.t -> violation list
val check_in4 : Trace.t -> Pidset.t -> violation list
val check_in5 : Flow.summary -> Pidset.t -> Pidset.t -> violation list

type verdict = { ok : bool; violations : violation list }

val check : ?in3:bool -> Trace.t -> Pidset.t -> verdict
(** Full IN-set check of a candidate set (IN3 as described above; pass
    [~in3:false] to skip the quadratic part). *)

val check_semi_regular : ?in3:bool -> Trace.t -> verdict
(** Act(E) satisfies IN1-IN4 (the write phase's relaxation). *)

val check_regular : ?in3:bool -> Trace.t -> verdict
(** Act(E) is an IN-set of E (Definition 5). *)
