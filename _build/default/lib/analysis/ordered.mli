(** Ordered executions (Definition 6), used by the write phase: every
    variable's last writer is inactive (a), or is the sole active accessor
    (b), or the trace has a contiguous run of commits to it by all active
    processes in increasing ID order, each still inside the fence during
    which it committed (c). *)

open Tsim.Ids
open Execution

type clause = A | B | C

val clause_name : clause -> string

type var_verdict = { var : Var.t; clause : clause option; detail : string }

val find_ordered_block : Trace.t -> Var.t -> Pidset.t -> int option
(** Index of a contiguous ID-ordered commit block to the variable by all
    of the given processes, if one exists. *)

val still_in_commit_fence : Trace.t -> Pid.t -> int -> bool
(** Is the process still executing, after the trace, the fence during
    which it performed the commit at event index [i]? *)

val check_var : Trace.t -> Flow.summary -> Pidset.t -> Var.t -> var_verdict

type verdict = { ok : bool; failures : var_verdict list }

val check : Trace.t -> verdict
