(* Wait-for diagnostics for live machines.

   When a run stalls (spin fuel exhausted, scheduler budget spent), this
   module explains why: for each unfinished process, what it is about to
   do; for processes spinning on a variable, who owns it and who last
   wrote it; and whether the "p waits on a variable last written by q"
   relation contains a cycle (a communication deadlock). *)

open Tsim
open Tsim.Ids

type wait = {
  pid : Pid.t;
  pending : string;
  watching : Var.t option;  (* the variable a pending read targets *)
  current : Value.t option;
  last_writer : Pid.t option;
  var_owner : Pid.t option;
  in_fence : bool;
  section : string;
}

let observe (m : Machine.t) : wait list =
  let layout = (Machine.config m).Config.layout in
  let one p =
    let pend = Machine.pending m p in
    let watching =
      match pend with
      | Machine.P_read v -> Some v
      | Machine.P_cas (v, _, _) | Machine.P_faa (v, _) | Machine.P_swap (v, _)
        ->
          Some v
      | _ -> None
    in
    {
      pid = p;
      pending = Machine.pending_to_string pend;
      watching;
      current = Option.map (Machine.mem_value m) watching;
      last_writer = Option.bind watching (Machine.writer_of m);
      var_owner = Option.bind watching (Layout.owner layout);
      in_fence = Machine.mode m p = `Write;
      section = Machine.section_name (Machine.section m p);
    }
  in
  List.filter_map
    (fun p ->
      match Machine.pending m p with
      | Machine.P_done -> None
      | _ -> Some (one p))
    (List.init (Machine.n_procs m) Fun.id)

(* Wait-for edges: p -> q if p's pending access targets a variable last
   written by q (or owned by q, when nobody wrote it yet). *)
let wait_edges waits =
  List.filter_map
    (fun w ->
      match (w.last_writer, w.var_owner) with
      | Some q, _ when not (Pid.equal q w.pid) -> Some (w.pid, q)
      | None, Some q when not (Pid.equal q w.pid) -> Some (w.pid, q)
      | _ -> None)
    waits

(* A cycle in the wait-for relation, if any (simple DFS). *)
let find_cycle waits =
  let edges = wait_edges waits in
  let succ p = List.filter_map (fun (a, b) -> if a = p then Some b else None) edges in
  let rec dfs path p =
    if List.mem p path then
      (* cycle found: cut the prefix *)
      let rec cut = function
        | [] -> []
        | x :: rest -> if x = p then x :: rest else cut rest
      in
      Some (List.rev (p :: cut (List.rev path)))
    else
      List.fold_left
        (fun acc q -> match acc with Some _ -> acc | None -> dfs (p :: path) q)
        None (succ p)
  in
  List.fold_left
    (fun acc (p, _) -> match acc with Some _ -> acc | None -> dfs [] p)
    None edges

let pp_wait layout fmt w =
  Format.fprintf fmt "%a [%s%s] pending %s%s" Pid.pp w.pid w.section
    (if w.in_fence then ", in fence" else "")
    w.pending
    (match (w.watching, w.current, w.last_writer) with
    | Some v, Some x, Some q ->
        Printf.sprintf " — %s = %d, last written by %s"
          (Layout.name layout v) x (Pid.to_string q)
    | Some v, Some x, None ->
        Printf.sprintf " — %s = %d (never written)" (Layout.name layout v) x
    | _ -> "")

let report fmt (m : Machine.t) =
  let layout = (Machine.config m).Config.layout in
  let waits = observe m in
  List.iter (fun w -> Format.fprintf fmt "%a@." (pp_wait layout) w) waits;
  match find_cycle waits with
  | Some cycle ->
      Format.fprintf fmt "wait-for cycle: %s@."
        (String.concat " -> " (List.map Pid.to_string cycle))
  | None -> Format.fprintf fmt "no wait-for cycle@."
