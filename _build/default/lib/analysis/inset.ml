(* Invisible sets (Definition 4) and regularity (Definition 5).

   Given an execution [E] and a candidate set [INV ⊆ Act(E)], check the
   five IN properties. IN3 quantifies over all subsets [Y ⊆ INV]; checking
   every subset is exponential, so [check] verifies the two informative
   extremes — every singleton and the full set — which catch exactly the
   writer-chain situations in which erasure can change criticality, and
   [check_in3_subset] lets property tests sample random subsets. *)

open Tsim
open Execution
open Tsim.Ids

type violation = {
  property : string;  (* "IN1" .. "IN5" *)
  detail : string;
}

let violation property detail = { property; detail }

let pp_violation fmt v =
  Format.fprintf fmt "%s: %s" v.property v.detail

(* IN1: no process is aware of an invisible process other than itself. *)
let check_in1 (s : Flow.summary) inv =
  Hashtbl.fold
    (fun p aw acc ->
      let bad = Pidset.remove p (Pidset.inter aw inv) in
      if Pidset.is_empty bad then acc
      else
        violation "IN1"
          (Printf.sprintf "p%d is aware of invisible %s" p
             (String.concat "," (List.map Pid.to_string (Pidset.elements bad))))
        :: acc)
    s.Flow.aw []

(* IN2: all invisible processes are in their entry section. *)
let check_in2 (s : Flow.summary) inv =
  Pidset.fold
    (fun p acc ->
      match Flow.get_status s p with
      | `Entry -> acc
      | `Ncs | `Exit ->
          violation "IN2" (Printf.sprintf "p%d is not in its entry section" p)
          :: acc)
    inv []

(* IN3 for one subset [y]: erasing [y] must not change the criticality of
   any remaining event. We recompute criticality on the erased trace and
   compare against the recomputation on the full trace, event by event
   (matching events by their original sequence numbers). *)
let check_in3_subset (t : Trace.t) (s : Flow.summary) y =
  let erased = Trace.erase_pids t y in
  let s' = Flow.analyze erased in
  let events = Trace.events t in
  (* map original seq -> index in full trace *)
  let idx_of_seq = Hashtbl.create (Array.length events) in
  Array.iteri (fun i (e : Event.t) -> Hashtbl.replace idx_of_seq e.Event.seq i) events;
  let bad = ref [] in
  Array.iteri
    (fun j (e : Event.t) ->
      match Hashtbl.find_opt idx_of_seq e.Event.seq with
      | None -> ()
      | Some i ->
          if s.Flow.critical.(i) <> s'.Flow.critical.(j) then
            bad :=
              violation "IN3"
                (Printf.sprintf
                   "event #%d by p%d changes criticality (%b -> %b) when erasing {%s}"
                   e.Event.seq e.Event.pid s.Flow.critical.(i)
                   s'.Flow.critical.(j)
                   (String.concat ","
                      (List.map Pid.to_string (Pidset.elements y))))
              :: !bad)
    (Trace.events erased);
  List.rev !bad

let check_in3 (t : Trace.t) (s : Flow.summary) inv =
  let singletons =
    Pidset.fold
      (fun p acc -> check_in3_subset t s (Pidset.singleton p) @ acc)
      inv []
  in
  let full =
    if Pidset.cardinal inv > 1 then check_in3_subset t s inv else []
  in
  singletons @ full

(* IN4: any remotely-accessed variable is owned by no active process. *)
let check_in4 (t : Trace.t) act =
  let layout = Trace.layout t in
  let bad = ref [] in
  Array.iter
    (fun (e : Event.t) ->
      match Event.accessed_var e with
      | None -> ()
      | Some v ->
          if Layout.is_remote layout e.Event.pid v then (
            match Layout.owner layout v with
            | Some q when Pidset.mem q act ->
                bad :=
                  violation "IN4"
                    (Printf.sprintf
                       "event #%d by p%d remotely accesses %s owned by active p%d"
                       e.Event.seq e.Event.pid
                       (Layout.name layout v) q)
                  :: !bad
            | _ -> ()))
    (Trace.events t);
  List.rev !bad

(* IN5: a variable accessed by more than one active process is not last
   written by an invisible process. *)
let check_in5 (s : Flow.summary) act inv =
  Hashtbl.fold
    (fun v pids acc ->
      if Pidset.cardinal (Pidset.inter pids act) > 1 then
        match Flow.get_writer s v with
        | Some w when Pidset.mem w inv ->
            violation "IN5"
              (Printf.sprintf
                 "v%d accessed by >1 active processes but last written by invisible p%d"
                 v w)
            :: acc
        | _ -> acc
      else acc)
    s.Flow.accessed []

type verdict = { ok : bool; violations : violation list }

(* Check IN1..IN5 (IN3 approximated as described above). *)
let check ?(in3 = true) (t : Trace.t) (inv : Pidset.t) : verdict =
  let s = Flow.analyze t in
  let act = Trace.active t in
  let not_active = Pidset.diff inv act in
  let pre =
    if Pidset.is_empty not_active then []
    else
      [ violation "IN0"
          (Printf.sprintf "INV must be a subset of Act: {%s} not active"
             (String.concat ","
                (List.map Pid.to_string (Pidset.elements not_active)))) ]
  in
  let vs =
    pre @ check_in1 s inv @ check_in2 s inv
    @ (if in3 then check_in3 t s inv else [])
    @ check_in4 t act @ check_in5 s act inv
  in
  { ok = vs = []; violations = vs }

(* Semi-regular: Act(E) satisfies IN1-IN4 (Definition 5, relaxed). *)
let check_semi_regular ?(in3 = true) (t : Trace.t) : verdict =
  let s = Flow.analyze t in
  let act = Trace.active t in
  let vs =
    check_in1 s act @ check_in2 s act
    @ (if in3 then check_in3 t s act else [])
    @ check_in4 t act
  in
  { ok = vs = []; violations = vs }

(* Regular: Act(E) is an IN-set of E (Definition 5). *)
let check_regular ?(in3 = true) (t : Trace.t) : verdict =
  check ~in3 t (Trace.active t)
