(** Dekker's algorithm (two processes, read/write only), fenced for TSO;
    the unfenced variant exhibits the store-buffering anomaly (E12). *)

val make : n:int -> Lock_intf.t
(** @raise Invalid_argument unless [n = 2]. *)

val family : Lock_intf.family
