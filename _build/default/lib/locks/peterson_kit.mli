(** Reusable Peterson building blocks (TSO-fenced): a 2-process node and a
    tournament over anonymous slots (at most one holder per slot at a
    time). *)

open Tsim

val peterson_node :
  Layout.t -> string -> (int -> unit Prog.t) * (int -> unit Prog.t)
(** [(acquire, release)] by side (0 or 1). *)

val tournament_over :
  Layout.t -> string -> leaves:int
  -> (int -> unit Prog.t) * (int -> unit Prog.t)
(** [(entry, exit)] by slot index. *)
