(** Announce-list adaptive lock (one-time, FIFO): O(k) RMRs at contention k via a CAS-built list — the linear-adaptive target the lower-bound adversary forces into Theta(k) fences (E3). *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
