(* Moir–Anderson splitters and the renaming grid.

   A splitter is the read/write building block of adaptive algorithms
   (Kim–Anderson's adaptive mutex is built from them, which is why it
   appears in this reproduction): of the k processes entering a splitter,
   at most one *stops*, at most k-1 move right and at most k-1 move down.
   A triangular grid of splitters therefore assigns each participant a
   distinct cell ("name") within diagonal 2(k-1) — adaptive renaming with
   read/writes only.

   Each splitter needs one fence after its announce write (x := me) and
   one after claiming (y := 1): under TSO an unpublished x would let two
   processes both see their own id and stop at the same splitter. *)

open Tsim
open Tsim.Ids
open Prog

type outcome = Stop | Right | Down

type splitter = { x : Var.t; y : Var.t }

let make_splitter layout name =
  { x = Layout.var layout ~init:0 (name ^ ".x");
    y = Layout.var layout ~init:0 (name ^ ".y") }

(* The classic splitter protocol. *)
let enter_splitter (s : splitter) p =
  let me = p + 1 in
  let* () = write s.x me in
  let* () = fence in
  let* y = read s.y in
  if y <> 0 then return Right
  else
    let* () = write s.y 1 in
    let* () = fence in
    let* x = read s.x in
    if x = me then return Stop else return Down

type grid = {
  side : int;
  cells : splitter array array;  (* cells.(r).(d) *)
  mark : Var.t array array;  (* visited marks, for adaptive collects *)
}

let make_grid layout ~side =
  {
    side;
    cells =
      Array.init side (fun r ->
          Array.init side (fun d ->
              make_splitter layout (Printf.sprintf "sp[%d][%d]" r d)));
    mark =
      Array.init side (fun r ->
          Array.init side (fun d ->
              Layout.var layout ~init:0 (Printf.sprintf "mark[%d][%d]" r d)));
  }

let cell_name g ~r ~d = (r * g.side) + d

(* Walk the grid from (0,0); returns the claimed cell's name, or None if
   the walk falls off the grid (more than [side] contenders on a path).
   Marks every visited cell so collects can detect the occupied region. *)
let rename g p =
  let rec walk r d =
    if r >= g.side || d >= g.side then return None
    else
      let* () = write g.mark.(r).(d) 1 in
      let* outcome = enter_splitter g.cells.(r).(d) p in
      match outcome with
      | Stop -> return (Some (cell_name g ~r ~d))
      | Right -> walk (r + 1) d
      | Down -> walk r (d + 1)
  in
  walk 0 0

(* Read the announce marks diagonal by diagonal; by the monotone-path
   argument, a fully unmarked diagonal means no process went beyond it.
   Returns the set of marked cells up to the first empty diagonal. *)
let collect_marked g =
  let rec diagonal dg acc =
    if dg > 2 * (g.side - 1) then return acc
    else
      let cells =
        List.filter
          (fun (r, d) -> r < g.side && d < g.side)
          (List.init (dg + 1) (fun r -> (r, dg - r)))
      in
      let rec scan cs any acc =
        match cs with
        | [] -> return (any, acc)
        | (r, d) :: rest ->
            let* mk = read g.mark.(r).(d) in
            if mk <> 0 then scan rest true ((r, d) :: acc)
            else scan rest any acc
      in
      let* any, acc = scan cells false acc in
      if any then diagonal (dg + 1) acc else return acc
  in
  diagonal 0 []
