(** CLH queue lock: swap-linked implicit queue, spinning on the predecessor's node; O(1) CC-RMRs, not DSM-local-spin. *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
