(** Ticket lock: FAA + spin on now_serving. The non-adaptive O(1)-fence, O(1)-CC-RMR baseline (stands in for Attiya-Hendler-Levy 2013; DESIGN.md §6). *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
