(** Moir-Anderson splitters and the renaming grid — the read/write
    building blocks of adaptive algorithms (Kim-Anderson's adaptive mutex
    is built from them).

    Splitter guarantee for k entrants: at most one stops, at most k-1
    leave right, at most k-1 leave down; a sole entrant stops. A
    triangular grid therefore assigns distinct names within diagonal
    2(k-1) — adaptive renaming from reads and writes only. Each splitter
    costs two fences on TSO (announce and claim must be published). *)

open Tsim
open Tsim.Ids

type outcome = Stop | Right | Down

type splitter = { x : Var.t; y : Var.t }

val make_splitter : Layout.t -> string -> splitter
val enter_splitter : splitter -> Pid.t -> outcome Prog.t

type grid = {
  side : int;
  cells : splitter array array;
  mark : Var.t array array;
      (** visited marks: a process marks every cell on its path, so an
          unmarked diagonal bounds the occupied region *)
}

val make_grid : Layout.t -> side:int -> grid

val cell_name : grid -> r:int -> d:int -> int
(** Dense encoding of a cell as a name. *)

val rename : grid -> Pid.t -> int option Prog.t
(** Walk from (0,0); [Some name] of the claimed cell, or [None] if the
    walk fell off the grid. *)

val collect_marked : grid -> (int * int) list Prog.t
(** Read marks diagonal by diagonal up to the first empty diagonal. *)
