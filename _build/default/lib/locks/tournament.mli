(** Peterson arbitration-tree (tournament) lock: read/write, O(log n)
    fences and O(log n) CC-RMRs per passage (stands in for Yang-Anderson;
    see the implementation comment). The [pso_safe] variant fences between
    the flag and turn writes — required under PSO, where FIFO commit order
    is not guaranteed (experiment E13) — doubling the fence count. *)

val make : ?pso_safe:bool -> n:int -> unit -> Lock_intf.t
val family : Lock_intf.family
val family_pso : Lock_intf.family
