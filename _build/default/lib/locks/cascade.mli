(** Cascade lock: unbounded-contention adaptive read/write one-time mutex
    (the full Kim-Anderson shape): geometrically growing renaming grids,
    one Peterson tournament per stage, and a final arbitration over the
    O(log n) stage winners. A passage at contention k costs
    O(k + log log n) RMRs and fences — the constructive counterpart of
    Corollary 2's Ω(log log N) fence floor for linear-adaptive locks. *)

val make : ?d0:int -> n:int -> unit -> Lock_intf.t
val family : Lock_intf.family
