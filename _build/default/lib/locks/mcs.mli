(** MCS queue lock: swap-linked queue, DSM-local spinning on the process's own flag; O(1) RMRs per passage in DSM and CC. *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
