(** Bounded-adaptive read/write one-time lock: splitter-grid renaming fast
    path (O(k + log d0) when contention k fits the grid), n-leaf
    tournament slow path (O(log n)), and a final 2-process Peterson
    arbitration — the shape of Kim-Anderson's adaptive mutex with a
    single renaming stage. Exclusion is compositional and read/write
    only. *)

val make : ?d0:int -> n:int -> unit -> Lock_intf.t
val family : Lock_intf.family
