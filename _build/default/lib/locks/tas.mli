(** Test-and-test-and-set lock: spin then CAS. Unbounded fences under contention (every CAS attempt drains the buffer). *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
