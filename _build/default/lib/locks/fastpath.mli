(** Lamport's fast mutual exclusion (1987): O(1) solo passages (seven accesses, two fences), Theta(n) slow path. *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
