(** Burns–Lamport one-bit two-process mutual exclusion (space optimal,
    read/write only; deadlock-free, p1 may starve as in the original). *)

val make : n:int -> Lock_intf.t
(** @raise Invalid_argument unless [n = 2]. *)

val family : Lock_intf.family
