(** Anderson array-based queue lock: FAA slot reservation, per-slot spinning with generation counts. *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
