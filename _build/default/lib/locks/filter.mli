(** Peterson filter lock: n-1 victim levels, read/write only, Theta(n) fences and Theta(n^2) reads per contended passage. *)

val make : n:int -> Lock_intf.t
val family : Lock_intf.family
