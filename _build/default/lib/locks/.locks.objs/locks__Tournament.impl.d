lib/locks/tournament.ml: Array Layout List Lock_intf Prog Tsim Var
