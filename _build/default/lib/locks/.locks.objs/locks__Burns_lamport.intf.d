lib/locks/burns_lamport.mli: Lock_intf
