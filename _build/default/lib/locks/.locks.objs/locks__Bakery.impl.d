lib/locks/bakery.ml: Array Layout Lock_intf Prog Tsim Var
