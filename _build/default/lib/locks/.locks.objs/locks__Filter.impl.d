lib/locks/filter.ml: Array Layout Lock_intf Prog Tsim Var
