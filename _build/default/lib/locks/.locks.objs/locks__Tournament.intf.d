lib/locks/tournament.mli: Lock_intf
