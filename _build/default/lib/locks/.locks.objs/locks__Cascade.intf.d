lib/locks/cascade.mli: Lock_intf
