lib/locks/dekker.ml: Array Layout Lock_intf Prog Tsim Var
