lib/locks/adaptive_tree.mli: Lock_intf
