lib/locks/tas.ml: Layout Lock_intf Prog Tsim
