lib/locks/adaptive_list.mli: Lock_intf
