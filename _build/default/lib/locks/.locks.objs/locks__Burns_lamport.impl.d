lib/locks/burns_lamport.ml: Array Layout Lock_intf Prog Tsim
