lib/locks/clh.ml: Array Fun Layout Lock_intf Prog Tsim Var
