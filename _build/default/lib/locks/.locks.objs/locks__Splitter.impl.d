lib/locks/splitter.ml: Array Layout List Printf Prog Tsim Var
