lib/locks/ticket.mli: Lock_intf
