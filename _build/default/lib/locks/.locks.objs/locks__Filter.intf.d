lib/locks/filter.mli: Lock_intf
