lib/locks/peterson_kit.ml: Array Layout List Option Printf Prog Tsim
