lib/locks/zoo.ml: Adaptive_list Adaptive_tree Anderson Bakery Burns_lamport Cascade Clh Dekker Fastpath Filter List Lock_intf Mcs String Tas Ticket Tournament
