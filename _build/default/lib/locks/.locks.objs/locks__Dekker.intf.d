lib/locks/dekker.mli: Lock_intf
