lib/locks/peterson_kit.mli: Layout Prog Tsim
