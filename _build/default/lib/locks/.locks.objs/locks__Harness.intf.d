lib/locks/harness.mli: Config Lock_intf Machine Tsim
