lib/locks/bakery.mli: Lock_intf
