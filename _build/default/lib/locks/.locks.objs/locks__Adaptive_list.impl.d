lib/locks/adaptive_list.ml: Array Layout Lock_intf Prog Tsim Var
