lib/locks/tas.mli: Lock_intf
