lib/locks/anderson.mli: Lock_intf
