lib/locks/anderson.ml: Array Layout Lock_intf Prog Tsim Var
