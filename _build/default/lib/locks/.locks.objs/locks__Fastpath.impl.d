lib/locks/fastpath.ml: Array Layout Lock_intf Prog Tsim Var
