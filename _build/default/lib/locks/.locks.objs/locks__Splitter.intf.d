lib/locks/splitter.mli: Layout Pid Prog Tsim Var
