lib/locks/harness.ml: Config Fun List Lock_intf Machine Printf Prog Rng Tsim Vec
