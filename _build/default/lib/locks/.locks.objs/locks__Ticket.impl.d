lib/locks/ticket.ml: Array Layout Lock_intf Prog Tsim Var
