lib/locks/adaptive_tree.ml: Array Layout Lock_intf Peterson_kit Prog Splitter Tsim
