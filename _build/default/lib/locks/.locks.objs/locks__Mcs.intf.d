lib/locks/mcs.mli: Lock_intf
