lib/locks/lock_intf.ml: Layout Pid Prog Tsim
