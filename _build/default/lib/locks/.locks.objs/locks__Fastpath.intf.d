lib/locks/fastpath.mli: Lock_intf
