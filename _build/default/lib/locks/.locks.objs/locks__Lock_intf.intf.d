lib/locks/lock_intf.mli: Layout Pid Prog Tsim
