lib/locks/zoo.mli: Lock_intf
