lib/locks/mcs.ml: Array Layout Lock_intf Prog Tsim Var
