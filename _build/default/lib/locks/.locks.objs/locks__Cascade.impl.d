lib/locks/cascade.ml: Array Layout List Lock_intf Peterson_kit Printf Prog Splitter Tsim
