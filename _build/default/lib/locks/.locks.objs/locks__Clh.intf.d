lib/locks/clh.mli: Lock_intf
