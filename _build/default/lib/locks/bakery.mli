(** Lamport bakery, fenced for TSO: pure read/write, Theta(n) RMRs, O(1)
    fences — the canonical non-adaptive read/write lock. The [pso_safe]
    variant adds a fence between the ticket write and the choosing reset,
    required under PSO ordering (experiment E13). *)

val make : ?pso_safe:bool -> n:int -> unit -> Lock_intf.t
val family : Lock_intf.family
val family_pso : Lock_intf.family
