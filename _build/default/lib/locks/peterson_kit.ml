(* Reusable Peterson building blocks: a 2-process node and a tournament
   over anonymous slots. Used by the tournament lock, the adaptive-tree
   lock and the cascade lock. *)

open Tsim
open Prog

(* A 2-process Peterson node, TSO-fenced. Returns (acquire, release) by
   side (0 or 1). *)
let peterson_node layout tag =
  let flag = Layout.array layout ~init:0 (tag ^ ".flag") 2 in
  let turn = Layout.var layout ~init:0 (tag ^ ".turn") in
  let acquire side =
    let* () = write flag.(side) 1 in
    let* () = write turn side in
    let* () = fence in
    let rec await fuel =
      if fuel <= 0 then raise (Prog.Spin_exhausted turn)
      else
        let* rival = read flag.(1 - side) in
        if rival = 0 then unit
        else
          let* t = read turn in
          if t <> side then unit else await (fuel - 1)
    in
    await !Prog.default_spin_fuel
  in
  let release side =
    let* () = write flag.(side) 0 in
    fence
  in
  (acquire, release)

(* A Peterson tournament over [leaves] anonymous slots: an entrant starts
   at the leaf matching its slot index and climbs to the root. At most one
   process may hold any slot at a time. Returns (entry, exit) by slot. *)
let tournament_over layout tag ~leaves =
  let next_pow2 n =
    let rec go x = if x >= n then x else go (2 * x) in
    go 1
  in
  let l = max 2 (next_pow2 leaves) in
  let nodes =
    Array.init l (fun i ->
        if i >= 1 then
          Some (peterson_node layout (Printf.sprintf "%s.%d" tag i))
        else None)
  in
  let node i = Option.get nodes.(i) in
  let path slot =
    let rec climb node_ acc =
      if node_ <= 1 then List.rev acc
      else climb (node_ / 2) ((node_ / 2, node_ mod 2) :: acc)
    in
    climb (l + slot) []
  in
  let entry slot =
    seq (List.map (fun (nd, side) -> (fst (node nd)) side) (path slot))
  in
  let exit_ slot =
    seq
      (List.map (fun (nd, side) -> (snd (node nd)) side) (List.rev (path slot)))
  in
  (entry, exit_)
