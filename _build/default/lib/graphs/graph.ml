(* Undirected graphs over an arbitrary vertex type.

   The read and write phases of the lower-bound construction build small
   conflict graphs over the active processes (edges connect processes whose
   next accesses could leak information) and then keep an independent set of
   the size guaranteed by Turán's theorem. *)

type 'v t = {
  vertices : 'v array;
  index : ('v, int) Hashtbl.t;
  adj : (int, unit) Hashtbl.t array;  (* adjacency as hash-sets *)
  mutable edges : int;
}

let create vertices =
  let vertices = Array.of_list vertices in
  let index = Hashtbl.create (Array.length vertices) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vertices;
  {
    vertices;
    index;
    adj = Array.init (Array.length vertices) (fun _ -> Hashtbl.create 4);
    edges = 0;
  }

let order t = Array.length t.vertices
let size t = t.edges
let mem_vertex t v = Hashtbl.mem t.index v

let add_edge t u v =
  match (Hashtbl.find_opt t.index u, Hashtbl.find_opt t.index v) with
  | Some i, Some j when i <> j ->
      if not (Hashtbl.mem t.adj.(i) j) then begin
        Hashtbl.replace t.adj.(i) j ();
        Hashtbl.replace t.adj.(j) i ();
        t.edges <- t.edges + 1
      end
  | _ -> ()  (* self-loops and edges to absent vertices are ignored *)

let has_edge t u v =
  match (Hashtbl.find_opt t.index u, Hashtbl.find_opt t.index v) with
  | Some i, Some j -> Hashtbl.mem t.adj.(i) j
  | _ -> false

let degree t v =
  match Hashtbl.find_opt t.index v with
  | Some i -> Hashtbl.length t.adj.(i)
  | None -> 0

let average_degree t =
  let n = order t in
  if n = 0 then 0.0 else 2.0 *. float_of_int t.edges /. float_of_int n

let neighbours t v =
  match Hashtbl.find_opt t.index v with
  | None -> []
  | Some i -> Hashtbl.fold (fun j () acc -> t.vertices.(j) :: acc) t.adj.(i) []

let is_independent t vs =
  let rec go = function
    | [] -> true
    | v :: rest -> (not (List.exists (has_edge t v) rest)) && go rest
  in
  go vs
