(* Turán's theorem, constructively (Theorem 2 in the paper).

   If a graph has average degree d, it contains an independent set of at
   least ceil(|V| / (d+1)) vertices. The classic greedy minimum-degree
   argument achieves this bound: repeatedly pick a vertex of minimum degree
   in the remaining graph and delete it together with its neighbours. Each
   round removes at most d_min + 1 vertices and the sum of (deg+1) over
   removed vertices is at most sum over all vertices, giving the bound
   (Caro–Wei / Turán). *)

let guaranteed_size ~order ~avg_degree =
  if order = 0 then 0
  else int_of_float (ceil (float_of_int order /. (avg_degree +. 1.0)))

(* Greedy minimum-degree independent set. Deterministic: ties broken by
   the order vertices were given in. O(V^2) with the simple representation,
   which is fine for the construction's phase-local graphs. *)
let independent_set (g : 'v Graph.t) : 'v list =
  let n = Graph.order g in
  let alive = Array.make n true in
  (* local adjacency copy as lists of ints *)
  let adj = Array.init n (fun i ->
      List.filter_map
        (fun v -> Hashtbl.find_opt g.Graph.index v)
        (Graph.neighbours g g.Graph.vertices.(i)))
  in
  let deg = Array.make n 0 in
  Array.iteri (fun i ns -> deg.(i) <- List.length ns) adj;
  let picked = ref [] in
  let remaining = ref n in
  while !remaining > 0 do
    (* find min-degree alive vertex *)
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if alive.(i) && (!best = -1 || deg.(i) < deg.(!best)) then best := i
    done;
    let b = !best in
    picked := g.Graph.vertices.(b) :: !picked;
    (* delete b and its alive neighbours *)
    let kill i =
      if alive.(i) then begin
        alive.(i) <- false;
        decr remaining;
        List.iter (fun j -> if alive.(j) then deg.(j) <- deg.(j) - 1) adj.(i)
      end
    in
    let victims = b :: List.filter (fun j -> alive.(j)) adj.(b) in
    List.iter kill victims
  done;
  List.rev !picked

(* Independent set with the Turán size guarantee checked; raises if the
   greedy result ever falls short (it cannot, by the Caro–Wei argument). *)
let independent_set_checked g =
  let s = independent_set g in
  let lower =
    guaranteed_size ~order:(Graph.order g) ~avg_degree:(Graph.average_degree g)
  in
  if List.length s < lower then
    failwith
      (Printf.sprintf "Turan.independent_set: got %d < guaranteed %d"
         (List.length s) lower);
  if not (Graph.is_independent g s) then
    failwith "Turan.independent_set: result is not independent";
  s
