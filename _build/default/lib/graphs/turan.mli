(** Turán's theorem, constructively (Theorem 2 in the paper): a graph with
    average degree d has an independent set of at least
    ⌈|V| / (d+1)⌉ vertices; the greedy minimum-degree algorithm achieves
    it (Caro-Wei). *)

val guaranteed_size : order:int -> avg_degree:float -> int

val independent_set : 'v Graph.t -> 'v list
(** Deterministic greedy minimum-degree independent set meeting the Turán
    bound. *)

val independent_set_checked : 'v Graph.t -> 'v list
(** Like {!independent_set} but verifies independence and the size bound.
    @raise Failure if either check fails (cannot happen). *)
