(** Undirected graphs over an arbitrary vertex type. The construction's
    read and write phases build small conflict graphs over active
    processes and keep a Turán independent set of them. *)

type 'v t = {
  vertices : 'v array;
  index : ('v, int) Hashtbl.t;
  adj : (int, unit) Hashtbl.t array;
  mutable edges : int;
}

val create : 'v list -> 'v t

val order : 'v t -> int
(** Number of vertices. *)

val size : 'v t -> int
(** Number of edges. *)

val mem_vertex : 'v t -> 'v -> bool

val add_edge : 'v t -> 'v -> 'v -> unit
(** Self-loops, duplicates and edges to absent vertices are ignored. *)

val has_edge : 'v t -> 'v -> 'v -> bool
val degree : 'v t -> 'v -> int
val average_degree : 'v t -> float
val neighbours : 'v t -> 'v -> 'v list
val is_independent : 'v t -> 'v list -> bool
