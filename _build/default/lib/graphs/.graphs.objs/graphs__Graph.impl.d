lib/graphs/graph.ml: Array Hashtbl List
