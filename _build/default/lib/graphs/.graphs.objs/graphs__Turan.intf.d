lib/graphs/turan.mli: Graph
