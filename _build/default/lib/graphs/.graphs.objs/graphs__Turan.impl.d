lib/graphs/turan.ml: Array Graph Hashtbl List Printf
