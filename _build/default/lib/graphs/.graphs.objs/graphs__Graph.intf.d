lib/graphs/graph.mli: Hashtbl
