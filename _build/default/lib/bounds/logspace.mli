(** Log2-space arithmetic. The Theorem 1 condition involves N^(2^-f(i))
    with log2 N in the thousands, so every quantity is carried as its
    base-2 logarithm; log2(n!) is exact by summation for small n and by
    Stirling's series beyond. *)

val log2e : float
val log2 : float -> float

val exact_limit : int
(** Largest n for which log2(n!) is computed by exact summation. *)

val stirling_ln_f : float -> float
(** Stirling series for ln x!. *)

val stirling_ln : int -> float

val log2_factorial : int -> float
(** @raise Invalid_argument on negative input. *)

val log2_factorial_f : float -> float
(** Float-domain variant for adaptivity values that overflow integers
    (e.g. f(i) = 2^(ci)). *)

val scale_down_pow2 : float -> float -> float
(** [scale_down_pow2 x e = x * 2^(-e)], safe for huge [e]. *)

val log2_add : float -> float -> float
(** log2 of a sum given log2 of the summands. *)
