lib/bounds/theorem3.mli: Adaptivity
