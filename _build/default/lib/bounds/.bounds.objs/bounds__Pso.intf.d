lib/bounds/pso.mli:
