lib/bounds/logspace.mli:
