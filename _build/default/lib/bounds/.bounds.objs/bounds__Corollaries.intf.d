lib/bounds/corollaries.mli: Adaptivity
