lib/bounds/adaptivity.mli:
