lib/bounds/theorem3.ml: Adaptivity Float Logspace
