lib/bounds/corollaries.ml: Adaptivity Float List Logspace Theorem1
