lib/bounds/pso.ml: Float List Logspace
