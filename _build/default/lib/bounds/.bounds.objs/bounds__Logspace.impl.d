lib/bounds/logspace.ml: Array Float Lazy
