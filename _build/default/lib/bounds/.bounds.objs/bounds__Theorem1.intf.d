lib/bounds/theorem1.mli: Adaptivity
