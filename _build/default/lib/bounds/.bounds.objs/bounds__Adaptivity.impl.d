lib/bounds/adaptivity.ml: Float Printf
