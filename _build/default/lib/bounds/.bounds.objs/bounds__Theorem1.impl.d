lib/bounds/theorem1.ml: Adaptivity Float Logspace
