(* Theorem 1: if f(i) <= N^(2^-f(i)) / (f(i)! * 4^(f(i)+2i)) then there is
   an execution of total contention i+1 in which some process executes i
   fences in one passage.

   In log2 space the condition reads

     log2 f(i) <= 2^(-f(i)) * log2 N - log2(f(i)!) - 2*(f(i) + 2i).

   [max_forced_fences] returns the largest i for which the condition
   holds; by Theorem 1 this is a lower bound on the worst-case fence
   complexity of any f-adaptive implementation on N processes. *)

let condition ~(f : Adaptivity.t) ~log2_n i =
  if i < 0 then invalid_arg "Theorem1.condition";
  let fi = Adaptivity.eval f i in
  if fi < 1.0 then true  (* degenerate: f(i) < 1 makes the LHS <= 0 *)
  else
    let lhs = Logspace.log2 fi in
    let fact = Logspace.log2_factorial_f (Float.round fi) in
    let rhs =
      Logspace.scale_down_pow2 log2_n fi
      -. fact
      -. (2.0 *. (fi +. (2.0 *. float_of_int i)))
    in
    lhs <= rhs

(* Largest i satisfying the condition (0 if none). The condition is
   monotonically falsified as i grows for the non-decreasing f we use, but
   we do not rely on that: we scan until [cap] consecutive failures. *)
let max_forced_fences ?(cap = 10_000) ~(f : Adaptivity.t) ~log2_n () =
  let rec go i best misses =
    if i > cap || misses > 64 then best
    else if condition ~f ~log2_n i then go (i + 1) i 0
    else go (i + 1) best (misses + 1)
  in
  go 1 0 0

(* The witness statement of Theorem 1 for reporting: at contention i+1,
   i fences are forced. *)
type witness_claim = { contention : int; forced_fences : int }

let claim ~f ~log2_n () =
  let i = max_forced_fences ~f ~log2_n () in
  { contention = i + 1; forced_fences = i }
