(** The PSO fence/RMR tradeoff of the Discussion section (Inequality 3,
    Attiya-Hendler-Woelfel 2015): f·log2(r/f) + 1 >= log2 n for any
    n-process PSO read/write lock, counter or queue. *)

val min_rmrs : n_log2:float -> fences:float -> float
(** RMRs required given a fence budget: f·2^((log2 n - 1)/f). *)

val feasible : n_log2:float -> fences:float -> rmrs:float -> bool

val tso_point : n_log2:float -> float * float
(** (O(1) fences, O(log n) RMRs) — achievable on TSO
    [Attiya-Hendler-Levy 2013], infeasible under the PSO bound: the
    memory-model separation. *)

type frontier_row = { fences : float; rmrs_min : float }

val frontier : n_log2:float -> float list -> frontier_row list
