(** Corollaries 1-3: no O(1)-fence adaptive implementation; linear
    adaptivity forces Ω(log log N) fences; exponential adaptivity forces
    Ω(log log log N). *)

val cor1_min_log2n :
  ?cap_log2n:float -> f:Adaptivity.t -> fences:int -> unit -> float option
(** Smallest log2 N (up to the cap) at which an f-adaptive algorithm is
    forced to execute at least [fences] fences — exhibiting, for every
    candidate constant, an N that defeats it (Corollary 1). *)

val cor2_closed_form : c:float -> log2_n:float -> float
(** (1/3c)·log2 log2 N, the witness value from Corollary 2's proof. *)

val cor3_closed_form : c:float -> log2_n:float -> float
(** (1/c)·(log2 log2 log2 N - 1), from Corollary 3's proof. *)

type row = { log2_n : float; forced : int; closed_form : float }

val sweep :
  f:Adaptivity.t -> closed_form:(log2_n:float -> float) -> float list
  -> row list
