(* The PSO fence/RMR tradeoff discussed in Section 6 (Inequality 3,
   Attiya–Hendler–Woelfel PODC 2015):

     f * log2(r / f) + 1 >= c * log2 n

   for any n-process PSO read/write implementation of locks, counters or
   queues performing f fences and r RMRs per operation. The frontier below
   takes c = 1 (the bound is asymptotic; the shape is what experiment E7
   reproduces): given f fences, at least r_min(f, n) = f * 2^((log2 n - 1)/f)
   RMRs are needed, exhibiting the separation from TSO where (f, r) =
   (O(1), O(log n)) is achievable [Attiya-Hendler-Levy 2013]. *)

let min_rmrs ~n_log2 ~fences =
  if fences <= 0.0 then Float.infinity
  else fences *. Float.pow 2.0 ((n_log2 -. 1.0) /. fences)

(* Check whether a given (fences, rmrs) point satisfies the bound. *)
let feasible ~n_log2 ~fences ~rmrs =
  (fences *. Logspace.log2 (rmrs /. fences)) +. 1.0 >= n_log2

(* The TSO point: O(1) fences with O(log n) RMRs, achievable on TSO but
   infeasible under the PSO bound — the memory-model separation. *)
let tso_point ~n_log2 = (1.0, n_log2)

type frontier_row = { fences : float; rmrs_min : float }

let frontier ~n_log2 fence_values =
  List.map
    (fun f -> { fences = f; rmrs_min = min_rmrs ~n_log2 ~fences:f })
    fence_values
