(* Corollaries 1-3: the headline consequences of Theorem 1.

   - Corollary 1: no weak obstruction-free adaptive lock/counter/stack/
     queue has O(1) fence complexity: for any candidate constant c there is
     an N where c fences are forced.
   - Corollary 2: linear adaptivity f(i) = c*i forces Omega(log log N)
     fences; the proof shows i = (1/3c) log log N satisfies Theorem 1's
     condition.
   - Corollary 3: exponential adaptivity f(i) = 2^(c*i) forces
     Omega(log log log N); i = (1/c)(log log log N - 1) works. *)

(* Corollary 1, constructively: the smallest log2 N for which an
   f-adaptive algorithm is forced to execute at least [c] fences in some
   passage. Returns None if not found below the search cap. *)
let cor1_min_log2n ?(cap_log2n = 1e18) ~(f : Adaptivity.t) ~fences () =
  (* exponential then binary search over log2 N *)
  let holds log2_n = Theorem1.condition ~f ~log2_n fences in
  let rec grow x = if holds x then Some x else if x > cap_log2n then None else grow (x *. 2.0) in
  match grow 4.0 with
  | None -> None
  | Some hi ->
      let rec shrink lo hi =
        (* invariant: not (holds lo) && holds hi *)
        if hi /. lo < 1.0001 then hi
        else
          let mid = Float.sqrt (lo *. hi) in
          if holds mid then shrink lo mid else shrink mid hi
      in
      if holds 4.0 then Some 4.0 else Some (shrink 4.0 hi)

(* Corollary 2 closed form: (1/3c) * log2 log2 N. *)
let cor2_closed_form ~c ~log2_n = Logspace.log2 log2_n /. (3.0 *. c)

(* Corollary 3 closed form: (1/c) * (log2 log2 log2 N - 1). *)
let cor3_closed_form ~c ~log2_n =
  (Logspace.log2 (Logspace.log2 log2_n) -. 1.0) /. c

(* Sweep: forced fences vs N for an adaptivity family. Each row compares
   the exact Theorem 1 maximum with the corollary's closed-form witness. *)
type row = {
  log2_n : float;
  forced : int;  (* exact: max i with the Theorem 1 condition *)
  closed_form : float;  (* the corollary's Omega(...) witness value *)
}

let sweep ~(f : Adaptivity.t) ~closed_form log2_ns =
  List.map
    (fun log2_n ->
      {
        log2_n;
        forced = Theorem1.max_forced_fences ~f ~log2_n ();
        closed_form = closed_form ~log2_n;
      })
    log2_ns
