(* Theorem 3: along the inductive construction,

     |Act(H_i)| >= N^(2^-l_i) / (l_i! * 4^(l_i + 2i)),

   provided i satisfies the Theorem 1 condition. This module evaluates the
   bound (in log2 space) and the per-phase recurrences of Lemmas 6-8, so
   the experiment E2 can print the theoretical trajectory next to the
   measured one. *)

(* log2 of the Act(H_i) lower bound, given l_i (critical events so far). *)
let log2_act_bound ~log2_n ~ell ~i =
  Logspace.scale_down_pow2 log2_n (float_of_int ell)
  -. Logspace.log2_factorial ell
  -. (2.0 *. float_of_int (ell + (2 * i)))

(* Phase recurrences (conditions (5) of Lemmas 6, 7 and (7) of Lemma 8),
   usable to replay the counting argument on concrete numbers. *)
let read_phase_step n_act = (n_act -. 1.0) /. 10.0

let write_phase_step ~delta ~k n_act =
  Float.sqrt n_act /. (4.0 *. float_of_int (delta + k))

let regularization_step n_act = n_act -. 1.0

(* How many induction steps can run before the Act lower bound drops below
   [floor_sz] (default 1: at least one active process must remain)? Uses
   ell_i <= f(i) as the paper does in Theorem 1's proof. *)
let max_steps ?(floor_sz = 1.0) ~(f : Adaptivity.t) ~log2_n () =
  let log2_floor = Logspace.log2 floor_sz in
  let rec go i =
    if i > 10_000 then i - 1
    else
      let ell = int_of_float (Float.round (Adaptivity.eval f i)) in
      if log2_act_bound ~log2_n ~ell ~i >= log2_floor then go (i + 1)
      else i - 1
  in
  go 1
