(** Theorem 3: the |Act(H_i)| >= N^(2^-l_i) / (l_i!·4^(l_i+2i)) trajectory
    of the inductive construction, plus the per-phase recurrences of
    Lemmas 6-8 for replaying the counting argument on concrete numbers. *)

val log2_act_bound : log2_n:float -> ell:int -> i:int -> float
(** log2 of the Act(H_i) lower bound given l_i. *)

val read_phase_step : float -> float
(** Lemma 6 (5): n ↦ (n-1)/10. *)

val write_phase_step : delta:int -> k:int -> float -> float
(** Lemma 7 (5): n ↦ sqrt(n)/(4(delta+k)). *)

val regularization_step : float -> float
(** Lemma 8 (7): n ↦ n-1. *)

val max_steps : ?floor_sz:float -> f:Adaptivity.t -> log2_n:float -> unit -> int
(** Induction steps before the bound drops below [floor_sz] (default 1),
    using l_i <= f(i) as in the paper. *)
