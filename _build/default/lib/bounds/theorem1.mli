(** Theorem 1: if f(i) <= N^(2^-f(i)) / (f(i)!·4^(f(i)+2i)) then some
    execution of total contention i+1 forces a process to execute i fences
    in a single passage. *)

val condition : f:Adaptivity.t -> log2_n:float -> int -> bool
(** The Theorem 1 inequality, evaluated in log2 space. *)

val max_forced_fences : ?cap:int -> f:Adaptivity.t -> log2_n:float -> unit -> int
(** Largest i satisfying the condition (0 if none) — a lower bound on the
    worst-case fence complexity of any f-adaptive implementation on N
    processes. *)

type witness_claim = { contention : int; forced_fences : int }

val claim : f:Adaptivity.t -> log2_n:float -> unit -> witness_claim
