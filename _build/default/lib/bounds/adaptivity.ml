(* Adaptivity functions f(k) as first-class values.

   The paper's tradeoff is parameterized by the growth rate of f; the
   corollaries instantiate f linear and exponential. Values of f are
   carried as floats because the exponential family overflows integers for
   the i-ranges the sweeps explore. *)

type t = { name : string; eval : int -> float }

let eval f i = f.eval i
let name f = f.name

let linear c =
  { name = Printf.sprintf "f(i) = %g*i" c; eval = (fun i -> c *. float_of_int i) }

let exponential c =
  {
    name = Printf.sprintf "f(i) = 2^(%g*i)" c;
    eval = (fun i -> Float.pow 2.0 (c *. float_of_int i));
  }

let polynomial ~c ~d =
  {
    name = Printf.sprintf "f(i) = %g*i^%g" c d;
    eval = (fun i -> c *. Float.pow (float_of_int i) d);
  }

let constant c = { name = Printf.sprintf "f(i) = %g" c; eval = (fun _ -> c) }

let custom name eval = { name; eval }
