(* Log2-space arithmetic.

   The Theorem 1 condition involves N^(2^-f(i)) with N far beyond any
   machine word (the interesting regimes have log2 N in the thousands), so
   every quantity is carried as its base-2 logarithm. The only non-trivial
   ingredient is log2(n!), computed exactly by summation for small n and by
   Stirling's series beyond. *)

let log2e = 1.4426950408889634  (* log2 e *)
let log2 x = log x /. log 2.0

(* exact prefix, memoized *)
let exact_limit = 100_000

let exact_table = lazy (
  let t = Array.make (exact_limit + 1) 0.0 in
  for i = 2 to exact_limit do
    t.(i) <- t.(i - 1) +. log2 (float_of_int i)
  done;
  t)

(* Stirling: ln x! = x ln x - x + 0.5 ln(2 pi x) + 1/(12x) - 1/(360 x^3) *)
let stirling_ln_f x =
  (x *. log x) -. x
  +. (0.5 *. log (2.0 *. Float.pi *. x))
  +. (1.0 /. (12.0 *. x))
  -. (1.0 /. (360.0 *. x *. x *. x))

let stirling_ln n = stirling_ln_f (float_of_int n)

let log2_factorial n =
  if n < 0 then invalid_arg "log2_factorial"
  else if n <= 1 then 0.0
  else if n <= exact_limit then (Lazy.force exact_table).(n)
  else stirling_ln n *. log2e

(* Float-domain variant for adaptivity functions whose values overflow
   machine integers (e.g. f(i) = 2^(c i)). Uses gamma-style Stirling for
   non-integral or huge arguments. *)
let log2_factorial_f x =
  if Float.is_nan x || x < 0.0 then invalid_arg "log2_factorial_f"
  else if x <= 1.0 then 0.0
  else if x <= float_of_int exact_limit && Float.is_integer x then
    (Lazy.force exact_table).(int_of_float x)
  else if Float.is_finite x then stirling_ln_f x *. log2e
  else Float.infinity

(* x * 2^(-e) computed safely for huge e: exp2 (log2 x - e). *)
let scale_down_pow2 x e =
  if x <= 0.0 then 0.0
  else
    let l = log2 x -. e in
    if l < -1000.0 then 0.0 else Float.pow 2.0 l

(* log2 of a sum given log2 of the summands (log-sum-exp in base 2). *)
let log2_add la lb =
  let hi = Float.max la lb and lo = Float.min la lb in
  if lo = Float.neg_infinity then hi
  else hi +. log2 (1.0 +. Float.pow 2.0 (lo -. hi))
