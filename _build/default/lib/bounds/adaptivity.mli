(** Adaptivity functions f(k) as first-class values. Values are floats
    because the exponential family overflows integers over the sweeps'
    i-ranges. *)

type t

val eval : t -> int -> float
val name : t -> string

val linear : float -> t
(** f(i) = c·i (Corollary 2's family). *)

val exponential : float -> t
(** f(i) = 2^(c·i) (Corollary 3's family). *)

val polynomial : c:float -> d:float -> t
val constant : float -> t
val custom : string -> (int -> float) -> t
