(** Textual trace serialization: traces as archivable research artifacts.
    One header, one line per variable, one line per event; round-trips
    exactly. *)

open Tsim

val event_to_line : Event.t -> string
val event_of_line : string -> Event.t

val to_string : Trace.t -> string
val of_string : string -> Trace.t
(** @raise Failure on malformed input. *)

val save : string -> Trace.t -> unit
val load : string -> Trace.t
