(* Erasure by deterministic replay — the executable form of Lemmas 1 and 4.

   The paper erases a set [Y] of invisible processes from an execution [E]
   and argues that [E^{-Y}] is again an execution. Operationally we rebuild
   a fresh machine from the same configuration and *drive* it with the
   filtered event sequence: at each trace event we let the corresponding
   process take one step (or commit) and check the event produced is
   congruent to the recorded one. If the erased processes were genuinely
   invisible (IN1), every remaining process reads the same values and the
   replay reproduces the erased execution verbatim; any divergence is
   reported as a [mismatch], which test suites treat as a violation of the
   erasure lemma's premises. *)

open Tsim
open Tsim.Ids

type mismatch = {
  at : int;  (* index in the filtered event list *)
  expected : Event.t;  (* recorded event *)
  got : Event.t option;  (* event produced on replay, if any *)
  reason : string;
}

type result = {
  machine : Machine.t;
  replayed : int;  (* events successfully replayed *)
  mismatches : mismatch list;
  value_divergences : int;
      (* congruent events whose read/observed values differed — allowed by
         congruence but indicative of information flow from erased
         processes *)
}

let values_agree (a : Event.t) (b : Event.t) =
  match (a.Event.kind, b.Event.kind) with
  | Event.Read { value = x; _ }, Event.Read { value = y; _ } -> x = y
  | Event.Commit_write { value = x; _ }, Event.Commit_write { value = y; _ }
    ->
      x = y
  | Event.Cas_ev { observed = x; success = sx; _ },
    Event.Cas_ev { observed = y; success = sy; _ } ->
      x = y && sx = sy
  | Event.Faa_ev { observed = x; _ }, Event.Faa_ev { observed = y; _ } ->
      x = y
  | Event.Swap_ev { observed = x; _ }, Event.Swap_ev { observed = y; _ } ->
      x = y
  | _ -> true

(* Replay [events] (already filtered) on a fresh machine built from [cfg].
   Stops at the first structural mismatch. *)
let replay_events (cfg : Config.t) (events : Event.t array) : result =
  let m = Machine.create cfg in
  let mismatches = ref [] in
  let divergences = ref 0 in
  let replayed = ref 0 in
  (try
     Array.iteri
       (fun i (e : Event.t) ->
         let p = e.Event.pid in
         let got =
           match e.Event.kind with
           | Event.Commit_write _ -> (
               (* the adversary may have committed outside a fence *)
               match Machine.pending m p with
               | Machine.P_commit _ -> Machine.step m p
               | _ ->
                   let pr = Machine.proc m p in
                   if Wbuf.is_empty pr.Machine.buf then
                     raise
                       (Failure
                          (Printf.sprintf
                             "replay: p%d has empty buffer at #%d" p i))
                   else Machine.commit m p)
           | _ -> Machine.step m p
         in
         if not (Event.congruent e got) then begin
           mismatches :=
             { at = i; expected = e; got = Some got;
               reason = "non-congruent event on replay" }
             :: !mismatches;
           raise Exit
         end;
         if not (values_agree e got) then incr divergences;
         incr replayed)
       events
   with
  | Exit -> ()
  | Failure msg ->
      mismatches :=
        { at = !replayed; expected = Event.dummy; got = None; reason = msg }
        :: !mismatches
  | Machine.Process_finished p ->
      mismatches :=
        { at = !replayed; expected = Event.dummy; got = None;
          reason = Printf.sprintf "process p%d already finished" p }
        :: !mismatches);
  { machine = m; replayed = !replayed; mismatches = List.rev !mismatches;
    value_divergences = !divergences }

(* [erase cfg trace erased] = replay of [trace^{-erased}]. *)
let erase (cfg : Config.t) (t : Trace.t) (erased : Pidset.t) : result =
  let keep (e : Event.t) = not (Pidset.mem e.Event.pid erased) in
  replay_events cfg (Array.of_list (List.filter keep (Array.to_list (Trace.events t))))

let erase_ok r = r.mismatches = [] && r.value_divergences = 0
