lib/trace/trace.mli: Event Format Layout Machine Pid Pidset Tsim
