lib/trace/serial.ml: Array Buffer Event Fun In_channel Layout List Printf String Trace Tsim
