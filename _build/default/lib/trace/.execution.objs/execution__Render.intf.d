lib/trace/render.mli: Trace
