lib/trace/metrics.mli: Format Pid Trace Tsim
