lib/trace/trace.ml: Array Config Event Format Hashtbl Layout List Machine Option Pid Pidset Tsim Vec
