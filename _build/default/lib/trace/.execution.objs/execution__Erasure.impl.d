lib/trace/erasure.ml: Array Config Event List Machine Pidset Printf Trace Tsim Wbuf
