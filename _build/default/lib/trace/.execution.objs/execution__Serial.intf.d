lib/trace/serial.mli: Event Trace Tsim
