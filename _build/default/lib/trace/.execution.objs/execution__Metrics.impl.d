lib/trace/metrics.ml: Event Format Hashtbl List Pid Trace Tsim
