lib/trace/erasure.mli: Config Event Machine Pidset Trace Tsim
