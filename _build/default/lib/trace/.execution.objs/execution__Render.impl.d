lib/trace/render.ml: Buffer Event Hashtbl Layout List Pid Pidset Printf String Trace Tsim
