(** Executions as first-class data: the event sequence together with the
    layout it was produced against. Provides the syntactic operations the
    lower-bound construction uses — erasure [E^{-Y}], projection [E | Y],
    sub-execution tests — plus derived sets (Act, Fin, participants).
    Semantic validity of erased executions is established by replay in
    {!Erasure}. *)

open Tsim
open Tsim.Ids

type t

val of_machine : Machine.t -> t
(** Snapshot the machine's trace. *)

val of_events : Layout.t -> Event.t array -> t

val length : t -> int
val events : t -> Event.t array
val layout : t -> Layout.t
val get : t -> int -> Event.t

val iter : (Event.t -> unit) -> t -> unit
val iteri : (int -> Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val erase_pids : t -> Pidset.t -> t
(** [E^{-Y}]: remove every event by a process in the set. *)

val project : t -> Pidset.t -> t
(** [E | Y]: keep only events by processes in the set. *)

val project_pid : t -> Pid.t -> t

val is_subexecution : t -> t -> bool
(** [is_subexecution f e]: is [f] a (possibly non-contiguous) subsequence
    of [e]'s events ([F ⪯ E])? *)

val participants : t -> Pidset.t
(** Processes that issued at least one event. *)

val total_contention : t -> int
(** Number of participants (the paper's total contention). *)

val finished : t -> Pidset.t
(** [Fin(E)]: processes that completed a passage. *)

val active : t -> Pidset.t
(** [Act(E)]: processes that started a passage and have not completed
    their last started one. *)

val fences_completed : t -> Pid.t -> int
(** EndFence events by the process. *)

val current_passage_events : t -> Pid.t -> Event.t list
(** The process's events since its last Enter (its unfinished passage). *)

val pp : Format.formatter -> t -> unit
