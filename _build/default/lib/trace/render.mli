(** ASCII swimlane rendering of executions: one column per process, one
    row per event; [$] marks RMRs and [!] critical events; fences appear
    as brackets around their commit runs. *)

val to_string : ?limit:int -> Trace.t -> string
val print : ?limit:int -> Trace.t -> unit
