(* Executions as first-class data.

   A trace is the event sequence of an execution together with the layout
   it was produced against. The lower-bound construction manipulates
   executions syntactically — erasing processes ([E^{-Y}]), projecting
   ([E | Y]), concatenating — and this module provides those operations.
   Semantic validity of an erased execution (Lemma 1 / Lemma 4) is
   established by *replay* in [Erasure]. *)

open Tsim
open Tsim.Ids

type t = {
  layout : Layout.t;
  events : Event.t array;
}

let of_machine m =
  { layout = Machine.(config m).Config.layout;
    events = Vec.to_array (Machine.trace m) }

let of_events layout events = { layout; events }

let length t = Array.length t.events
let events t = t.events
let layout t = t.layout
let get t i = t.events.(i)

let iter f t = Array.iter f t.events
let iteri f t = Array.iteri f t.events
let fold f acc t = Array.fold_left f acc t.events

(* [E^{-Y}]: remove every event by a process in [erased]. *)
let erase_pids t erased =
  { t with
    events =
      Array.of_list
        (List.filter
           (fun (e : Event.t) -> not (Pidset.mem e.Event.pid erased))
           (Array.to_list t.events)) }

(* [E | Y]: keep only events by processes in [kept]. *)
let project t kept =
  { t with
    events =
      Array.of_list
        (List.filter
           (fun (e : Event.t) -> Pidset.mem e.Event.pid kept)
           (Array.to_list t.events)) }

let project_pid t p = project t (Pidset.singleton p)

(* Is [a] a (possibly non-contiguous) subsequence of [b]?  [F ⪯ E]. *)
let is_subexecution a b =
  let na = Array.length a.events and nb = Array.length b.events in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if
      a.events.(i).Event.seq = b.events.(j).Event.seq
      && Event.congruent a.events.(i) b.events.(j)
    then go (i + 1) (j + 1)
    else go i (j + 1)
  in
  go 0 0

(* Processes that issued at least one event. *)
let participants t =
  fold (fun acc (e : Event.t) -> Pidset.add e.Event.pid acc) Pidset.empty t

(* Total contention: number of participating processes. *)
let total_contention t = Pidset.cardinal (participants t)

(* Processes that completed at least one passage (executed Exit). *)
let finished t =
  fold
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.Exit -> Pidset.add e.Event.pid acc
      | _ -> acc)
    Pidset.empty t

(* Processes that started a passage (executed Enter) and have not completed
   their last started passage. *)
let active t =
  let started = Hashtbl.create 16 and ended = Hashtbl.create 16 in
  let bump tbl p =
    Hashtbl.replace tbl p (1 + Option.value ~default:0 (Hashtbl.find_opt tbl p))
  in
  iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Enter -> bump started e.Event.pid
      | Event.Exit -> bump ended e.Event.pid
      | _ -> ())
    t;
  Hashtbl.fold
    (fun p s acc ->
      let f = Option.value ~default:0 (Hashtbl.find_opt ended p) in
      if s > f then Pidset.add p acc else acc)
    started Pidset.empty

(* Fences completed by [p] (EndFence events). *)
let fences_completed t p =
  fold
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.End_fence _ when Pid.equal e.Event.pid p -> acc + 1
      | _ -> acc)
    0 t

(* Events by [p] in its current (last started, unfinished) passage. *)
let current_passage_events t p =
  let evs = ref [] and in_passage = ref false in
  iter
    (fun (e : Event.t) ->
      if Pid.equal e.Event.pid p then
        match e.Event.kind with
        | Event.Enter ->
            in_passage := true;
            evs := [ e ]
        | Event.Exit ->
            in_passage := false;
            evs := []
        | _ -> if !in_passage then evs := e :: !evs)
    t;
  List.rev !evs

let pp fmt t =
  Array.iter (fun e -> Format.fprintf fmt "%a@." Event.pp e) t.events
