(** Erasure by deterministic replay — the executable form of Lemmas 1
    and 4.

    The paper erases a set of invisible processes from an execution [E]
    and argues [E^{-Y}] is again an execution. Operationally we rebuild a
    fresh machine from the same configuration and drive it with the
    filtered events, checking each produced event is congruent to the
    recorded one. If the erased processes were genuinely invisible (IN1),
    the replay reproduces the erased execution verbatim; divergences
    indicate the erasure lemma's premises were violated. *)

open Tsim
open Tsim.Ids

type mismatch = {
  at : int;  (** index in the filtered event list *)
  expected : Event.t;
  got : Event.t option;
  reason : string;
}

type result = {
  machine : Machine.t;  (** the machine after the replay *)
  replayed : int;
  mismatches : mismatch list;  (** structural divergences (fatal) *)
  value_divergences : int;
      (** congruent events whose values differed — allowed by congruence
          but evidence of information flow from the erased set *)
}

val replay_events : Config.t -> Event.t array -> result
(** Drive a fresh machine with an (already filtered) event sequence. *)

val erase : Config.t -> Trace.t -> Pidset.t -> result
(** Replay [trace^{-erased}] on a fresh machine. *)

val erase_ok : result -> bool
(** No mismatches and no value divergences. *)
