(** Per-process / per-passage cost aggregation recomputed from traces
    alone, cross-checkable against the machine's online counters. *)

open Tsim.Ids

type per_passage = {
  mp_pid : Pid.t;
  mp_index : int;
  mp_events : int;
  mp_rmrs : int;
  mp_fences : int;
  mp_criticals : int;
}

type per_process = {
  pp_pid : Pid.t;
  pp_events : int;
  pp_rmrs : int;
  pp_fences : int;
  pp_criticals : int;
  pp_passages : int;
  pp_passage_log : per_passage list;
}

type t = {
  processes : per_process list;
  total_events : int;
  total_rmrs : int;
  total_fences : int;
  total_criticals : int;
}

val compute : Trace.t -> t
val find : t -> Pid.t -> per_process option
val pp : Format.formatter -> t -> unit
