(** Telemetry for construction runs: one record per round and per
    induction step, mirroring the structure of the paper's Figure 1. *)

open Tsim.Ids

type round_kind =
  | Read_round  (** read phase, case II: interleaved critical reads *)
  | Fence_begin_round  (** read phase, case I *)
  | Write_low_round  (** write phase, case II: distinct variables *)
  | Write_high_round of Var.t  (** write phase, case III: one hot variable *)
  | Fence_end_round  (** write phase, case I; regularization follows *)
  | Rmw_round of Var.t  (** comparison-primitive contention *)
  | Cs_erase_round  (** a CS-ready process was erased (Lemma 5) *)

val round_kind_name : round_kind -> string

type round = {
  kind : round_kind;
  act_before : int;
  act_after : int;
  erased : Pidset.t;
  trace_len : int;
  detail : string;  (** conflict-graph sizes, hot variable, winner, ... *)
}

type step = {
  index : int;  (** this step built H_{index+1} *)
  rounds : round list;
  finished_process : Pid.t option;  (** p_max of the regularization phase *)
  regularization_erased : Pidset.t;
  act_size : int;
  fin_size : int;
  min_fences : int;  (** over the surviving active processes *)
  max_fences : int;
  min_criticals : int;
  max_criticals : int;
}

type outcome =
  | Exhausted_active_processes
  | Reached_step_limit
  | Stuck of string  (** an invariant broke (or an ablation was active) *)

type t = {
  target : string;
  n : int;
  steps : step list;
  outcome : outcome;
  best_fences : int;
      (** max fences completed by any single process in one passage *)
  best_fences_pid : Pid.t;
  total_contention : int;  (** participants of the final execution *)
}

val outcome_name : outcome -> string
val pp_step : Format.formatter -> step -> unit
val pp_step_rounds : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit

val pp_verbose : Format.formatter -> t -> unit
(** Like {!pp} but with one line per construction round, including the
    per-round detail strings. *)
