(** Theorem 1 witness extraction: erase all surviving active processes but
    the one with the most completed fences (Lemma 4); the result is an
    execution of total contention |Fin|+1 in which that process executed
    all its fences during a single passage. *)

open Tsim.Ids
open Execution

type t = {
  pid : Pid.t;
  fences_in_passage : int;
  total_contention : int;
  trace : Trace.t;  (** the witness execution H *)
  valid : bool;  (** the erasure replayed cleanly and counts agree *)
  detail : string;
}

val extract : Construction.t -> t option
(** [None] when no active process survived the run (use
    [Construction.run ~min_act:1]). *)
