lib/adversary/report.mli: Format Pid Pidset Tsim Var
