lib/adversary/witness.mli: Construction Execution Pid Trace Tsim
