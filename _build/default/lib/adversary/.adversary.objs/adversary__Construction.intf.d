lib/adversary/construction.mli: Locks Pidset Report Tsim
