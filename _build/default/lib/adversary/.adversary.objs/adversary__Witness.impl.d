lib/adversary/witness.ml: Construction Erasure Execution Machine Pid Pidset Printf Trace Tsim
