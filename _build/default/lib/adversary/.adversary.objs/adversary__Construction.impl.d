lib/adversary/construction.ml: Analysis Config Erasure Execution Fun Graphs Layout List Locks Machine Pid Pidset Printf Report String Trace Tsim Var Vec
