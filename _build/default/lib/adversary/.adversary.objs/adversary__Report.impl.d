lib/adversary/report.ml: Format List Pid Pidset Printf String Tsim Var
