(* Theorem 1 witness extraction.

   After a construction run, the surviving active process with the most
   completed fences is still mid-passage and unaware of every other active
   process, so erasing all other actives (Lemma 4) yields an execution H
   whose total contention is |Fin| + 1 in which that process has executed
   all its fences during a single passage — the exact statement of
   Theorem 1. *)

open Tsim
open Tsim.Ids
open Execution

type t = {
  pid : Pid.t;
  fences_in_passage : int;
  total_contention : int;
  trace : Trace.t;
  valid : bool;  (* erasure replayed cleanly and the counts agree *)
  detail : string;
}

let extract (c : Construction.t) : t option =
  let act = Construction.active c in
  if Pidset.is_empty act then None
  else begin
    let m = Construction.machine c in
    let p =
      Pidset.fold
        (fun q best ->
          if Machine.fences_completed m q > Machine.fences_completed m best
          then q
          else best)
        act (Pidset.min_elt act)
    in
    let fences = Machine.fences_completed m p in
    let tr = Trace.of_machine m in
    let others = Pidset.remove p act in
    let cfg = Machine.config m in
    let r = Erasure.erase cfg tr others in
    let ok =
      r.Erasure.mismatches = [] && r.Erasure.value_divergences = 0
    in
    let wtrace = Trace.of_machine r.Erasure.machine in
    let contention = Trace.total_contention wtrace in
    let fences' = Trace.fences_completed wtrace p in
    let valid = ok && fences' = fences in
    Some
      {
        pid = p;
        fences_in_passage = fences;
        total_contention = contention;
        trace = wtrace;
        valid;
        detail =
          Printf.sprintf
            "p%d executes %d fences in a single passage; contention %d%s" p
            fences contention
            (if valid then "" else " (REPLAY DIVERGED)");
      }
  end
