(* Telemetry for construction runs: one record per round, one per induction
   step, mirroring the structure of Figure 1. *)

open Tsim.Ids

type round_kind =
  | Read_round  (* read phase, case II: interleaved critical reads *)
  | Fence_begin_round  (* read phase, case I: everyone starts a fence *)
  | Write_low_round  (* write phase, case II: distinct variables *)
  | Write_high_round of Var.t  (* write phase, case III: one hot variable *)
  | Fence_end_round  (* write phase, case I: fences complete *)
  | Rmw_round of Var.t  (* comparison-primitive contention on one variable *)
  | Cs_erase_round  (* a process reached its CS and was erased *)

let round_kind_name = function
  | Read_round -> "read"
  | Fence_begin_round -> "fence-begin"
  | Write_low_round -> "write-low"
  | Write_high_round v -> Printf.sprintf "write-high(v%d)" v
  | Fence_end_round -> "fence-end"
  | Rmw_round v -> Printf.sprintf "rmw(v%d)" v
  | Cs_erase_round -> "cs-erase"

type round = {
  kind : round_kind;
  act_before : int;
  act_after : int;
  erased : Pidset.t;
  trace_len : int;
  detail : string;  (* free-form: conflict-graph sizes, hot variable, ... *)
}

type step = {
  index : int;  (* i: this step built H_{i+1} from H_i *)
  rounds : round list;
  finished_process : Pid.t option;  (* p_max of the regularization phase *)
  regularization_erased : Pidset.t;
  act_size : int;  (* |Act(H_{i+1})| *)
  fin_size : int;
  min_fences : int;  (* fences completed, min/max over active processes *)
  max_fences : int;
  min_criticals : int;
  max_criticals : int;
}

type outcome =
  | Exhausted_active_processes
  | Reached_step_limit
  | Stuck of string

type t = {
  target : string;
  n : int;
  steps : step list;
  outcome : outcome;
  (* headline numbers for Theorem 1 *)
  best_fences : int;  (* max fences completed by any single process *)
  best_fences_pid : Pid.t;
  total_contention : int;
}

let outcome_name = function
  | Exhausted_active_processes -> "exhausted active processes"
  | Reached_step_limit -> "reached step limit"
  | Stuck s -> "stuck: " ^ s

let pp_step fmt (s : step) =
  Format.fprintf fmt
    "H_%-3d |Act|=%-5d |Fin|=%-4d fences=[%d..%d] crit=[%d..%d] rounds=%s%s"
    (s.index + 1) s.act_size s.fin_size s.min_fences s.max_fences
    s.min_criticals s.max_criticals
    (String.concat ","
       (List.map (fun r -> round_kind_name r.kind) s.rounds))
    (match s.finished_process with
    | Some p -> Printf.sprintf " fin:%s" (Pid.to_string p)
    | None -> "")

let pp_step_rounds fmt (s : step) =
  List.iter
    (fun r ->
      Format.fprintf fmt "    %-18s |Act| %d -> %d%s%s@."
        (round_kind_name r.kind) r.act_before r.act_after
        (if Pidset.is_empty r.erased then ""
         else
           Printf.sprintf " erased {%s}"
             (String.concat ","
                (List.map Pid.to_string (Pidset.elements r.erased))))
        (if r.detail = "" then "" else " — " ^ r.detail))
    s.rounds

let pp_verbose fmt (t : t) =
  Format.fprintf fmt "construction vs %s (N=%d): %s@." t.target t.n
    (outcome_name t.outcome);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %a@." pp_step s;
      pp_step_rounds fmt s)
    t.steps;
  Format.fprintf fmt
    "  => process %s completed %d fences; total contention %d@."
    (Pid.to_string t.best_fences_pid)
    t.best_fences t.total_contention

let pp fmt (t : t) =
  Format.fprintf fmt "construction vs %s (N=%d): %s@." t.target t.n
    (outcome_name t.outcome);
  List.iter (fun s -> Format.fprintf fmt "  %a@." pp_step s) t.steps;
  Format.fprintf fmt
    "  => process %s completed %d fences; total contention %d@."
    (Pid.to_string t.best_fences_pid)
    t.best_fences t.total_contention
