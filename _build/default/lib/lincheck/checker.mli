(** Wing & Gong linearizability checking with dead-configuration
    memoization: find a total order extending real-time precedence that
    is legal under the spec. *)

type verdict = {
  linearizable : bool;
  witness : History.op list;  (** a legal linearization when found *)
  states_explored : int;
}

val check : Spec.t -> History.t -> verdict
(** @raise Invalid_argument beyond 62 operations. *)
