(** Recording object histories from the simulator: each of [n] processes
    runs [ops_per_proc] operations inside its entry section; monad
    continuations capture true invocation/response trace positions. *)

open Tsim
open Tsim.Ids

type op_spec = { label : string; arg : Value.t option; prog : Value.t Prog.t }

val op : ?arg:Value.t -> string -> Value.t Prog.t -> op_spec

type schedule = Rr | Rand of int

val run :
  ?model:Config.mem_model ->
  ?schedule:schedule ->
  layout:Layout.t ->
  n:int ->
  ops_per_proc:int ->
  (Pid.t -> int -> op_spec) ->
  History.t

val run_and_check :
  ?model:Config.mem_model ->
  ?schedule:schedule ->
  layout:Layout.t ->
  n:int ->
  ops_per_proc:int ->
  (Pid.t -> int -> op_spec) ->
  Spec.t ->
  History.t * Checker.verdict
