(* Recording object histories from the simulator.

   Each of [n] processes executes a sequence of object operations inside
   its entry section. The free monad's continuations fire exactly when
   the simulator executes the corresponding events, so closures around
   each operation capture its true invocation and response positions in
   the trace. The resulting history feeds the Wing & Gong checker. *)

open Tsim
open Tsim.Ids
open Prog

(* What one process does at step [i]: a label, an optional argument (for
   the spec), and the operation's program. *)
type op_spec = { label : string; arg : Value.t option; prog : Value.t Prog.t }

let op ?arg label prog = { label; arg; prog }

type schedule = Rr | Rand of int

let run ?(model = Config.Cc_wb) ?(schedule = Rr) ~layout ~n ~ops_per_proc
    (gen : Pid.t -> int -> op_spec) : History.t =
  let mref = ref None in
  let trace_len () =
    match !mref with
    | Some m -> Vec.length (Machine.trace m)
    | None -> 0
  in
  let recorded = ref [] in
  let entry p =
    let rec ops i =
      if i >= ops_per_proc then unit
      else begin
        (* this closure body runs when the previous operation finished,
           i.e. at the real invocation point *)
        let o = gen p i in
        let inv = trace_len () in
        let* r = o.prog in
        recorded :=
          { History.pid = p; label = o.label; arg = o.arg; result = Some r;
            inv; res = trace_len (); uid = 0 }
          :: !recorded;
        ops (i + 1)
      end
    in
    ops 0
  in
  let cfg =
    Config.make ~model ~check_exclusion:false ~n ~layout ~entry
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  mref := Some m;
  (match schedule with
  | Rr -> ignore (Sched.round_robin m)
  | Rand seed -> ignore (Sched.random ~seed m));
  History.of_list !recorded

(* Convenience: run and check in one go. *)
let run_and_check ?model ?schedule ~layout ~n ~ops_per_proc gen spec =
  let h = run ?model ?schedule ~layout ~n ~ops_per_proc gen in
  (h, Checker.check spec h)
