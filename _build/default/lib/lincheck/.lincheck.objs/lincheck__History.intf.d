lib/lincheck/history.mli: Format Pid Tsim Value
