lib/lincheck/workload.ml: Checker Config History Machine Pid Prog Sched Tsim Value Vec
