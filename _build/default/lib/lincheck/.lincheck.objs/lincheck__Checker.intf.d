lib/lincheck/checker.mli: History Spec
