lib/lincheck/workload.mli: Checker Config History Layout Pid Prog Spec Tsim Value
