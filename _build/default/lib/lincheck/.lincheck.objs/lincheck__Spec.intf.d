lib/lincheck/spec.mli: History
