lib/lincheck/history.ml: Array Format Pid Printf Tsim Value
