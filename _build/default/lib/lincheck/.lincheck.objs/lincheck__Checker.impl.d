lib/lincheck/checker.ml: Array Hashtbl History Int64 List Spec
