lib/lincheck/spec.ml: History
