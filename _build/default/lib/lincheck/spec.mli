(** Sequential specifications as deterministic state machines over
    int-list states. [apply state op] is the post-state when the op's
    recorded result is legal from [state]. *)

type state = int list

type t = {
  spec_name : string;
  initial : state;
  apply : state -> History.op -> state option;
}

val counter : t
(** fetch&increment; "faa" ops must return the current value. *)

val stack : t
(** "push"(arg) / "pop" returning the top or -1 when empty. *)

val queue : t
(** "enq"(arg) / "deq" returning the head or -1 when empty. *)

val register : t
(** "write"(arg) / "read" returning the current value. *)
