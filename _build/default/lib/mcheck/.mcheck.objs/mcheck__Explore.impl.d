lib/mcheck/explore.ml: Buffer Config Fun Hashtbl Layout List Machine Pid Printf Prog Tsim Var Wbuf
