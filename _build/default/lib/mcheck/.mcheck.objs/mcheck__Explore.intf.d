lib/mcheck/explore.mli: Config Machine Pid Tsim Var
