(** Bounded exhaustive schedule exploration over the TSO/PSO machine.

    At each state the enabled moves are "process p executes its next
    event" and "commit p's oldest buffered write" — the full power of the
    scheduling adversary. Reports exclusion violations (with a replayable
    schedule), deadlocks, and optionally spin exhaustion.

    Duplicate states are pruned by fingerprint (shared memory + buffers +
    pending ops + structural continuation hashes); verification verdicts
    are therefore "no violation in the full deduplicated space" — a
    high-confidence check, not a formal proof. Reported violations are
    always sound: their schedules replay on a fresh machine. *)

open Tsim
open Tsim.Ids

type move =
  | Step of Pid.t
  | Commit of Pid.t  (** oldest buffered write (TSO) *)
  | Commit_var of Pid.t * Var.t  (** any buffered write (PSO only) *)

val move_to_string : move -> string

type violation = {
  schedule : move list;
  kind : [ `Exclusion of Pid.t * Pid.t | `Deadlock | `Spin_exhausted ];
}

type result = {
  nodes : int;
  exhausted : bool;  (** the whole (pruned) space was explored *)
  verified : bool;  (** exhausted with no violations *)
  violations : violation list;
  max_depth : int;
}

val enabled_moves : Machine.t -> move list
val apply : Machine.t -> move -> unit
val fingerprint : Machine.t -> string

val explore :
  ?max_nodes:int ->
  ?max_violations:int ->
  ?dedup:bool ->
  ?on_spin:[ `Prune | `Violation ] ->
  ?spin_fuel:int ->
  Config.t ->
  result
(** Defaults: 500k nodes, stop at the first violation, dedup on, spin
    exhaustion prunes the branch (sound for exclusion checking: spin
    re-reads do not change shared state), busy-wait fuel 6. *)

val replay_schedule : Config.t -> move list -> Machine.t
(** Re-execute a (violating) schedule on a fresh machine. *)
