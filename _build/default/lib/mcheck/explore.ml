(* Bounded exhaustive schedule exploration.

   Explores EVERY scheduler decision sequence of a configuration up to a
   node budget: at each state the enabled moves are "let process p execute
   its next event" and "commit p's oldest buffered write" (the TSO
   adversary's full power; under PSO also any out-of-order commit).
   Reports exclusion violations (with the offending schedule), deadlocks
   (unfinished processes with no productive move), and whether the space
   was exhausted within budget.

   This is what makes the Laws-of-Order premise checkable here: removing
   the fence from a read/write mutex must produce a reachable exclusion
   violation, and the explorer exhibits the schedule (experiment E12). *)

open Tsim
open Tsim.Ids

type move = Step of Pid.t | Commit of Pid.t | Commit_var of Pid.t * Var.t

let move_to_string = function
  | Step p -> Printf.sprintf "step %s" (Pid.to_string p)
  | Commit p -> Printf.sprintf "commit %s" (Pid.to_string p)
  | Commit_var (p, v) ->
      Printf.sprintf "commit %s v%d" (Pid.to_string p) (Var.to_int v)

type violation = {
  schedule : move list;  (* the decision sequence reaching the bug *)
  kind : [ `Exclusion of Pid.t * Pid.t | `Deadlock | `Spin_exhausted ];
}

type result = {
  nodes : int;  (* states expanded *)
  exhausted : bool;  (* the whole space was explored within budget *)
  verified : bool;  (* exhausted with no violations *)
  violations : violation list;
  max_depth : int;
}

let enabled_moves m =
  let n = Machine.n_procs m in
  let pso = (Machine.config m).Config.ordering = Config.Pso in
  let moves = ref [] in
  for p = n - 1 downto 0 do
    (match Machine.pending m p with
    | Machine.P_done -> ()
    | _ -> moves := Step p :: !moves);
    (* explicit commits: under TSO only the oldest write may commit (and
       only outside fences — inside, Step already commits); under PSO the
       adversary may commit ANY buffered write at any time *)
    let pr = Machine.proc m p in
    if pso then
      List.iter
        (fun v -> moves := Commit_var (p, v) :: !moves)
        (Wbuf.vars pr.Machine.buf)
    else if (not pr.Machine.in_fence) && not (Wbuf.is_empty pr.Machine.buf)
    then moves := Commit p :: !moves
  done;
  !moves

let apply m = function
  | Step p -> ignore (Machine.step m p)
  | Commit p -> ignore (Machine.commit m p)
  | Commit_var (p, v) -> ignore (Machine.commit_var m p v)

(* Fingerprint a machine state for duplicate detection. Continuation
   positions are approximated by (passages, section, trace-free counters),
   which is sound for pruning only when combined with the exact shared
   state; to stay conservative we include each process's remaining-program
   identity via physical hashing of the continuation closure. *)
let fingerprint m =
  let n = Machine.n_procs m in
  let buf = Buffer.create 128 in
  let layout = (Machine.config m).Config.layout in
  for v = 0 to Layout.size layout - 1 do
    Buffer.add_string buf (string_of_int (Machine.mem_value m v));
    Buffer.add_char buf ','
  done;
  for p = 0 to n - 1 do
    let pr = Machine.proc m p in
    Buffer.add_string buf
      (Printf.sprintf "|%d:%s:%b:%d" p
         (Machine.pending_to_string (Machine.pending m p))
         pr.Machine.in_fence
         (Hashtbl.hash pr.Machine.cont));
    Wbuf.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf ";%d=%d" e.Wbuf.var e.Wbuf.value))
      pr.Machine.buf
  done;
  Buffer.contents buf

(* [dedup] prunes states with identical fingerprints. The fingerprint
   covers shared memory, every buffer, cache-relevant pending state and a
   structural hash of each continuation (which includes spin fuel
   counters), so pruning is exact up to hash collisions — verification
   results are "no violation in the full deduplicated space", a
   high-confidence check rather than a proof.

   [on_spin] decides what spin-fuel exhaustion means: [`Prune] (default)
   abandons the branch — sound for exclusion checking because spin
   re-reads do not change shared state, so longer spins revisit the same
   choice points — while [`Violation] reports it (livelock hunting). *)
(* [spin_fuel] temporarily lowers [Prog.default_spin_fuel] so algorithm
   busy-waits stay shallow during exploration. *)
let explore ?(max_nodes = 500_000) ?(max_violations = 1) ?(dedup = true)
    ?(on_spin = `Prune) ?(spin_fuel = 6) (cfg : Config.t) : result =
  let saved_fuel = !Prog.default_spin_fuel in
  Prog.default_spin_fuel := spin_fuel;
  Fun.protect ~finally:(fun () -> Prog.default_spin_fuel := saved_fuel)
  @@ fun () ->
  let nodes = ref 0 in
  let max_depth = ref 0 in
  let violations = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let budget_left () = !nodes < max_nodes in
  let exception Done in
  let rec go m schedule depth =
    if not (budget_left ()) then raise Done;
    incr nodes;
    max_depth := max !max_depth depth;
    let moves = enabled_moves m in
    let unfinished =
      List.exists
        (fun p -> Machine.pending m p <> Machine.P_done)
        (List.init (Machine.n_procs m) Fun.id)
    in
    if moves = [] then begin
      if unfinished then begin
        violations :=
          { schedule = List.rev schedule; kind = `Deadlock } :: !violations;
        if List.length !violations >= max_violations then raise Done
      end
    end
    else
      List.iter
        (fun mv ->
          let m' = Machine.clone m in
          match apply m' mv with
          | () ->
              let skip =
                dedup
                &&
                let fp = fingerprint m' in
                if Hashtbl.mem seen fp then true
                else begin
                  Hashtbl.replace seen fp ();
                  false
                end
              in
              if not skip then go m' (mv :: schedule) (depth + 1)
          | exception Machine.Exclusion_violation { holder; intruder } ->
              violations :=
                { schedule = List.rev (mv :: schedule);
                  kind = `Exclusion (holder, intruder) }
                :: !violations;
              if List.length !violations >= max_violations then raise Done
          | exception Prog.Spin_exhausted _ -> (
              match on_spin with
              | `Prune -> ()
              | `Violation ->
                  violations :=
                    { schedule = List.rev (mv :: schedule);
                      kind = `Spin_exhausted }
                    :: !violations;
                  if List.length !violations >= max_violations then raise Done))
        moves
  in
  let exhausted =
    try
      go (Machine.create cfg) [] 0;
      true
    with Done -> false
  in
  {
    nodes = !nodes;
    exhausted;
    verified = exhausted && !violations = [];
    violations = List.rev !violations;
    max_depth = !max_depth;
  }

(* Replay a violating schedule on a fresh machine, for display. *)
let replay_schedule (cfg : Config.t) (schedule : move list) =
  let m = Machine.create cfg in
  (try List.iter (apply m) schedule with
  | Machine.Exclusion_violation _ | Prog.Spin_exhausted _ -> ());
  m
