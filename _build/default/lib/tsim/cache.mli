(** Per-process cache directory for the CC cost models.

    The simulator keeps one authoritative value per variable (coherence
    never serves stale data), so the cache tracks only {e line states} for
    RMR accounting: write-through uses Invalid/Shared (valid), write-back
    uses Invalid/Shared/Exclusive. *)

open Ids

type state = Invalid | Shared | Exclusive

type t

val create : n:int -> nvars:int -> t
val get : t -> Pid.t -> Var.t -> state
val set : t -> Pid.t -> Var.t -> state -> unit

val invalidate_others : t -> Pid.t -> Var.t -> unit
(** Invalidate every copy of the line except the writer's. *)

val downgrade_exclusive : t -> Var.t -> unit
(** Demote any Exclusive holder of the line to Shared (read miss). *)

val copy : t -> t

val holders : t -> Var.t -> (Pid.t * state) list
(** Non-invalid holders of the line, with their states. *)

val coherent : t -> Var.t -> bool
(** An Exclusive holder excludes every other copy. *)

val coherence_ok : t -> bool
(** {!coherent} for every line. *)
