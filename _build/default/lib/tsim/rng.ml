(* Deterministic splitmix64 PRNG.

   Schedulers and property tests need reproducible randomness that does not
   depend on global [Random] state; a tiny self-contained generator keeps
   runs bit-identical across machines. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* mask to 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits mapped to [0,1) *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
