(** Deterministic splitmix64 PRNG, so schedules and property tests are
    reproducible independent of global [Random] state. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> 'a array
(** Fisher-Yates on a copy. *)
