(* Process, variable and value identifiers.

   Processes and variables are dense integers so that machine state can live
   in flat arrays. Values are plain integers; the model only needs equality
   and arithmetic (for fetch-and-add). *)

module Pid = struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let hash = Fun.id
  let to_int = Fun.id
  let of_int i = i
  let to_string p = "p" ^ string_of_int p
  let pp fmt p = Format.fprintf fmt "p%d" p
end

module Var = struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let hash = Fun.id
  let to_int = Fun.id
  let of_int i = i
  let pp fmt v = Format.fprintf fmt "v%d" v
end

module Value = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let zero = 0
  let pp fmt v = Format.fprintf fmt "%d" v
end

module Pidset = struct
  include Set.Make (Int)

  let pp fmt s =
    Format.fprintf fmt "{%s}"
      (String.concat "," (List.map Pid.to_string (elements s)))
end

module Varset = Set.Make (Int)
module Pidmap = Map.Make (Int)
module Varmap = Map.Make (Int)
