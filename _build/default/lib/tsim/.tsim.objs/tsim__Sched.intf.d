lib/tsim/sched.mli: Ids Machine Pid
