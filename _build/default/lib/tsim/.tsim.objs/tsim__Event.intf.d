lib/tsim/event.mli: Format Ids Pid Value Var
