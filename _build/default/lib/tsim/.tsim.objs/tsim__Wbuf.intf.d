lib/tsim/wbuf.mli: Ids Pidset Value Var
