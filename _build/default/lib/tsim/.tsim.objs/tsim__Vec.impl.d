lib/tsim/vec.ml: Array List
