lib/tsim/sched.ml: Config Ids Machine Pid Prog Rng Wbuf
