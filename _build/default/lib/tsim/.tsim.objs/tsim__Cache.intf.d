lib/tsim/cache.mli: Ids Pid Var
