lib/tsim/prog.ml: Ids Printf Value Var
