lib/tsim/ids.mli: Format Map Set
