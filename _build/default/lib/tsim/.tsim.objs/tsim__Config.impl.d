lib/tsim/config.ml: Ids Layout Pid Prog
