lib/tsim/cache.ml: Array Bytes Char Ids List Pid
