lib/tsim/layout.mli: Format Ids Pid Value Var
