lib/tsim/prog.mli: Ids Value Var
