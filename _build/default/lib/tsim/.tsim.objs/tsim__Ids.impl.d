lib/tsim/ids.ml: Format Fun Int List Map Set String
