lib/tsim/wbuf.ml: Ids List Pidset Value Var Vec
