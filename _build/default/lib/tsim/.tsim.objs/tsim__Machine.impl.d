lib/tsim/machine.ml: Array Cache Config Event Hashtbl Ids Layout Memmodel Pid Pidset Printf Prog Value Var Vec Wbuf
