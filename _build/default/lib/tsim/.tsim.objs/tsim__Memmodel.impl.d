lib/tsim/memmodel.ml: Cache Config Event
