lib/tsim/memmodel.mli: Cache Config Event Ids Pid Var
