lib/tsim/rng.mli:
