lib/tsim/layout.ml: Array Format Ids Pid Printf Value Vec
