lib/tsim/vec.mli:
