lib/tsim/config.mli: Ids Layout Pid Prog
