lib/tsim/event.ml: Format Ids Pid String Value Var
