lib/tsim/rng.ml: Array Int64 List
