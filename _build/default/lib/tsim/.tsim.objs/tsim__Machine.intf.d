lib/tsim/machine.mli: Cache Config Event Hashtbl Ids Pid Pidset Prog Value Var Vec Wbuf
