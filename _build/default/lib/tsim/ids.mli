(** Process, variable and value identifiers.

    Processes and variables are dense non-negative integers so machine
    state can live in flat arrays; values are plain integers (the model
    needs only equality and addition, for fetch-and-add). *)

(** Process identifiers. *)
module Pid : sig
  type t = int

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val to_int : t -> int
  val of_int : int -> t

  val to_string : t -> string
  (** ["p<i>"] *)

  val pp : Format.formatter -> t -> unit
end

(** Shared-variable identifiers (indices into a {!Layout.t}). *)
module Var : sig
  type t = int

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val to_int : t -> int
  val of_int : int -> t
  val pp : Format.formatter -> t -> unit
end

(** Values stored in shared variables. *)
module Value : sig
  type t = int

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val zero : t
  val pp : Format.formatter -> t -> unit
end

(** Sets of process ids, with a printer. *)
module Pidset : sig
  include Set.S with type elt = int

  val pp : Format.formatter -> t -> unit
end

module Varset : Set.S with type elt = int
module Pidmap : Map.S with type key = int
module Varmap : Map.S with type key = int
