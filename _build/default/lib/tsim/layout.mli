(** Shared-variable layout: names, initial values and DSM ownership.

    In the DSM model each variable is permanently local to at most one
    process; in the CC models every variable is remote to everybody
    ([owner = None]), following the paper. Algorithms declare their
    variables through this module so the machine, the trace analyzer and
    the adversary agree on ownership. *)

open Ids

type info = { name : string; init : Value.t; owner : Pid.t option }

type t

val create : unit -> t

val size : t -> int
(** Number of declared variables. *)

val var : t -> ?owner:Pid.t -> ?init:Value.t -> string -> Var.t
(** Declare one variable (default [init = 0], no owner). *)

val array : t -> ?owner_fn:(int -> Pid.t option) -> ?init:Value.t -> string
  -> int -> Var.t array
(** Declare [n] variables named ["name[i]"]; [owner_fn i] assigns DSM
    ownership per index (e.g. [fun i -> Some i] for per-process spin
    cells). *)

val matrix : t -> ?owner_fn:(int -> int -> Pid.t option) -> ?init:Value.t
  -> string -> int -> int -> Var.t array array

val info : t -> Var.t -> info
val name : t -> Var.t -> string
val init : t -> Var.t -> Value.t
val owner : t -> Var.t -> Pid.t option

val is_local : t -> Pid.t -> Var.t -> bool
val is_remote : t -> Pid.t -> Var.t -> bool

val pp_var : t -> Format.formatter -> Var.t -> unit
val iter : t -> (Var.t -> info -> unit) -> unit
