(** RMR accounting per memory model (paper, Section 2): decides whether an
    access incurs an RMR and updates the cache directory accordingly.

    - DSM: remote accesses are RMRs; no caches.
    - CC write-through: reads hit on a valid copy; every commit is an RMR
      and invalidates other copies.
    - CC write-back: reads hit on Shared/Exclusive (a miss downgrades the
      Exclusive holder); writes hit only on Exclusive (a miss invalidates
      the other copies and takes Exclusive). *)

open Ids

val read_rmr :
  Config.mem_model -> Cache.t -> Pid.t -> Var.t -> remote:bool
  -> bool * Event.read_src
(** Whether the read is an RMR, and where it was served from. *)

val write_rmr :
  Config.mem_model -> Cache.t -> Pid.t -> Var.t -> remote:bool -> bool
(** Whether a write commit is an RMR. *)

val rmw_rmr :
  Config.mem_model -> Cache.t -> Pid.t -> Var.t -> remote:bool -> bool
(** Whether an atomic read-modify-write is an RMR (needs Exclusive under
    CC write-back). *)
