(* RMR accounting per memory model (paper, Section 2).

   - DSM: an access to a variable remote to the process is an RMR; local
     accesses are free. There are no caches.
   - CC write-through: reads hit iff a valid copy is cached; every write
     commit is an RMR and invalidates all other copies.
   - CC write-back: reads hit on Shared or Exclusive copies; a read miss
     downgrades any Exclusive holder; writes hit only on an Exclusive copy,
     a write miss invalidates all other copies and takes Exclusive.

   The functions below both *decide* whether an access is an RMR and
   *update* the cache directory accordingly. In the CC models every
   variable is remote to every process (owner = ⊥), per the paper. *)

let read_rmr (model : Config.mem_model) cache p v ~remote :
    bool * Event.read_src =
  match model with
  | Config.Dsm -> (remote, Event.From_memory)
  | Config.Cc_wt -> (
      match Cache.get cache p v with
      | Cache.Shared | Cache.Exclusive -> (false, Event.From_cache)
      | Cache.Invalid ->
          Cache.set cache p v Cache.Shared;
          (true, Event.From_memory))
  | Config.Cc_wb -> (
      match Cache.get cache p v with
      | Cache.Shared | Cache.Exclusive -> (false, Event.From_cache)
      | Cache.Invalid ->
          Cache.downgrade_exclusive cache v;
          Cache.set cache p v Cache.Shared;
          (true, Event.From_memory))

let write_rmr (model : Config.mem_model) cache p v ~remote : bool =
  match model with
  | Config.Dsm -> remote
  | Config.Cc_wt ->
      (* write-through: always an RMR; writer keeps a valid copy *)
      Cache.invalidate_others cache p v;
      Cache.set cache p v Cache.Shared;
      true
  | Config.Cc_wb -> (
      match Cache.get cache p v with
      | Cache.Exclusive -> false
      | Cache.Shared | Cache.Invalid ->
          Cache.invalidate_others cache p v;
          Cache.set cache p v Cache.Exclusive;
          true)

(* Atomic RMWs read and write the line; under CC they need Exclusive, under
   DSM they are one remote access. Returns whether the op is an RMR. *)
let rmw_rmr (model : Config.mem_model) cache p v ~remote : bool =
  match model with
  | Config.Dsm -> remote
  | Config.Cc_wt ->
      Cache.invalidate_others cache p v;
      Cache.set cache p v Cache.Shared;
      true
  | Config.Cc_wb -> (
      match Cache.get cache p v with
      | Cache.Exclusive -> false
      | Cache.Shared | Cache.Invalid ->
          Cache.invalidate_others cache p v;
          Cache.set cache p v Cache.Exclusive;
          true)
