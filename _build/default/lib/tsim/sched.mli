(** Generic schedulers over the machine: round robin, seeded random, the
    paper's canonical commit-delaying schedule, and solo runs. The
    lower-bound adversary drives the machine directly instead. *)

open Ids

type outcome = {
  steps_taken : int;
  all_finished : bool;
  livelocked : Pid.t option;  (** a process whose spin fuel ran out *)
}

val runnable : Machine.t -> Pid.t -> bool
val live_pids : Machine.t -> Pid.t list

val round_robin : ?quantum:int -> ?max_steps:int -> Machine.t -> outcome
(** Cycle over live processes, [quantum] events each. *)

val random :
  ?seed:int -> ?commit_bias:float -> ?max_steps:int -> Machine.t -> outcome
(** Uniformly random process choice; with probability [commit_bias] commit
    a buffered write of the chosen process even outside fences. *)

val canonical_random : ?seed:int -> ?max_steps:int -> Machine.t -> outcome
(** The paper's canonical regime: commits happen only inside fences. *)

val solo : ?max_steps:int -> Machine.t -> Pid.t -> outcome
(** Run one process alone to completion (weak obstruction-freedom says it
    must finish). *)
