(* Shared-variable layout: names, initial values and DSM ownership.

   In the DSM model each variable is permanently local to at most one
   process ([owner v = Some p]); in the CC models every variable is remote
   to everybody ([owner v = None]), as in the paper. Locks declare their
   variables through this module so that the machine, the trace analyzer and
   the adversary all agree on ownership. *)

open Ids

type info = { name : string; init : Value.t; owner : Pid.t option }

type t = { infos : info Vec.t }

let dummy_info = { name = "?"; init = 0; owner = None }

let create () = { infos = Vec.create dummy_info }

let size t = Vec.length t.infos

let var t ?owner ?(init = 0) name =
  let id = Vec.length t.infos in
  Vec.push t.infos { name; init; owner };
  id

let array t ?owner_fn ?(init = 0) name n =
  Array.init n (fun i ->
      let owner = match owner_fn with None -> None | Some f -> f i in
      var t ?owner ~init (Printf.sprintf "%s[%d]" name i))

let matrix t ?owner_fn ?(init = 0) name rows cols =
  Array.init rows (fun i ->
      Array.init cols (fun j ->
          let owner = match owner_fn with None -> None | Some f -> f i j in
          var t ?owner ~init (Printf.sprintf "%s[%d][%d]" name i j)))

let info t v = Vec.get t.infos v
let name t v = (info t v).name
let init t v = (info t v).init
let owner t v = (info t v).owner

let is_local t p v = match owner t v with Some q -> Pid.equal p q | None -> false
let is_remote t p v = not (is_local t p v)

let pp_var t fmt v = Format.fprintf fmt "%s" (name t v)

let iter t f =
  for v = 0 to size t - 1 do
    f v (info t v)
  done
