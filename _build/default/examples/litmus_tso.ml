(* TSO litmus tests on the simulator.

     dune exec examples/litmus_tso.exe

   Demonstrates the operational model of Section 2: the store-buffering
   (SB) anomaly is observable without fences and vanishes with them, and
   store-to-load forwarding lets a process read its own buffered write. *)

open Tsim
open Prog

let sb ~fenced =
  let layout = Layout.create () in
  let x = Layout.var layout "x" and y = Layout.var layout "y" in
  let results = Array.make 2 (-1) in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:2 ~layout
      ~entry:(fun p ->
        let mine = if p = 0 then x else y in
        let other = if p = 0 then y else x in
        let* () = write mine 1 in
        let* () = if fenced then fence else unit in
        let* r = read other in
        results.(p) <- r;
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (* adversarial schedule: interleave both processes' reads before any
     commit (the canonical TSO scheduler delays commits) *)
  let rec to_read p fuel =
    if fuel = 0 then ()
    else
      match Machine.pending m p with
      | Machine.P_read _ ->
          ignore (Machine.step m p)
      | Machine.P_done | Machine.P_cs -> ()
      | _ ->
          ignore (Machine.step m p);
          to_read p (fuel - 1)
  in
  to_read 0 100;
  to_read 1 100;
  (results.(0), results.(1))

let () =
  let r0, r1 = sb ~fenced:false in
  Printf.printf
    "SB unfenced  : p0 read %d, p1 read %d   (r0 = r1 = 0 is the TSO \
     anomaly)\n"
    r0 r1;
  let r0, r1 = sb ~fenced:true in
  Printf.printf
    "SB fenced    : p0 read %d, p1 read %d   (a fence after each write \
     forbids 0/0)\n"
    r0 r1;
  (* store-to-load forwarding *)
  let layout = Layout.create () in
  let x = Layout.var layout "x" in
  let seen = ref (-1) in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:1 ~layout
      ~entry:(fun _ ->
        let* () = write x 42 in
        let* r = read x in
        seen := r;
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  ignore (Sched.round_robin m);
  Printf.printf
    "forwarding   : process reads %d from its own write buffer (memory \
     still %d)\n"
    !seen (Machine.mem_value m x)
