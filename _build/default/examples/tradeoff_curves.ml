(* The fence/adaptivity tradeoff, numerically.

     dune exec examples/tradeoff_curves.exe

   Prints, for linear and exponential adaptivity functions, the maximum
   number of fences Theorem 1 forces as N grows (Corollaries 2 and 3),
   together with the corollaries' closed-form witnesses, and the PSO
   fence/RMR frontier of the Discussion section. *)

let () =
  let log2_ns = [ 16.; 64.; 256.; 1024.; 4096.; 65536.; 1048576. ] in
  Printf.printf
    "Corollary 2 — linear adaptivity f(i) = i: forced fences vs N\n";
  Printf.printf "%12s  %14s  %18s\n" "log2 N" "forced fences"
    "(1/3c) loglog N";
  let f = Bounds.Adaptivity.linear 1.0 in
  List.iter
    (fun log2_n ->
      Printf.printf "%12.0f  %14d  %18.2f\n" log2_n
        (Bounds.Theorem1.max_forced_fences ~f ~log2_n ())
        (Bounds.Corollaries.cor2_closed_form ~c:1.0 ~log2_n))
    log2_ns;
  Printf.printf
    "\nCorollary 3 — exponential adaptivity f(i) = 2^i: forced fences vs N\n";
  Printf.printf "%12s  %14s  %22s\n" "log2 N" "forced fences"
    "(1/c)(logloglog N - 1)";
  let f = Bounds.Adaptivity.exponential 1.0 in
  List.iter
    (fun log2_n ->
      Printf.printf "%12.0f  %14d  %22.2f\n" log2_n
        (Bounds.Theorem1.max_forced_fences ~f ~log2_n ())
        (Bounds.Corollaries.cor3_closed_form ~c:1.0 ~log2_n))
    log2_ns;
  Printf.printf
    "\nPSO frontier (Ineq. 3): minimum RMRs per operation given a fence \
     budget, n = 2^20\n";
  Printf.printf "%8s  %14s\n" "fences" "min RMRs";
  List.iter
    (fun row ->
      Printf.printf "%8.0f  %14.1f\n" row.Bounds.Pso.fences
        row.Bounds.Pso.rmrs_min)
    (Bounds.Pso.frontier ~n_log2:20.0 [ 1.; 2.; 4.; 8.; 16.; 20. ]);
  let tso_f, tso_r = Bounds.Pso.tso_point ~n_log2:20.0 in
  Printf.printf
    "TSO achieves (fences, RMRs) = (%.0f, %.0f) [Attiya-Hendler-Levy 2013] \
     — infeasible under PSO: %b\n"
    tso_f tso_r
    (not (Bounds.Pso.feasible ~n_log2:20.0 ~fences:tso_f ~rmrs:tso_r))
