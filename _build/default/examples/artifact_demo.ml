(* Traces as artifacts: record, save, reload, analyze, diagnose.

     dune exec examples/artifact_demo.exe

   Runs a contended bakery execution, serializes its trace to a file,
   reloads it, recomputes all cost metrics from the events alone, checks
   regularity, and shows the wait-for diagnostics of a mid-flight
   machine. *)

open Tsim

let () =
  (* record *)
  let n = 5 in
  let lock = Locks.Bakery.family.Locks.Lock_intf.instantiate ~n in
  let m, stats =
    Locks.Harness.run_contended ~model:Config.Cc_wb
      ~schedule:(Locks.Harness.Rand 2024) lock ~n ~k:n
  in
  let tr = Execution.Trace.of_machine m in
  Printf.printf "recorded: %s, %d events, exclusion=%b\n"
    stats.Locks.Harness.lock_name (Execution.Trace.length tr)
    stats.Locks.Harness.exclusion_ok;
  (* save + reload *)
  let path = Filename.temp_file "bakery" ".trace" in
  Execution.Serial.save path tr;
  let tr' = Execution.Serial.load path in
  Printf.printf "saved to %s (%d bytes), reloaded %d events\n" path
    (In_channel.with_open_bin path (fun ic ->
         In_channel.length ic |> Int64.to_int))
    (Execution.Trace.length tr');
  (* analyze the artifact without the machine *)
  Format.printf "@.metrics recomputed from the file:@.%a" Execution.Metrics.pp
    (Execution.Metrics.compute tr');
  let v = Analysis.Inset.check_regular ~in3:false tr' in
  Printf.printf "execution regular (all passages finished): %b\n"
    v.Analysis.Inset.ok;
  Sys.remove path;
  (* wait-for diagnostics on a mid-flight machine *)
  print_newline ();
  print_endline "wait-for diagnostics of a paused ticket-lock machine:";
  let lock = Locks.Ticket.family.Locks.Lock_intf.instantiate ~n:3 in
  let m = Locks.Harness.machine_of_lock ~model:Config.Cc_wb lock ~n:3 in
  for _ = 1 to 12 do
    for p = 0 to 2 do
      match Machine.pending m p with
      | Machine.P_done -> ()
      | _ -> ignore (Machine.step m p)
    done
  done;
  Format.printf "%a" Analysis.Waits.report m
