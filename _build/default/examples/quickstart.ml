(* Quickstart: run a lock on the TSO simulator and read its cost profile.

     dune exec examples/quickstart.exe

   Eight processes contend for an MCS queue lock on a write-back
   cache-coherent machine; we print per-passage RMR, fence and
   critical-event counts, then replay the same workload under the DSM and
   write-through cost models. *)

open Tsim

let run model =
  let n = 8 in
  let lock = Locks.Mcs.family.Locks.Lock_intf.instantiate ~n in
  let _, stats =
    Locks.Harness.run_contended ~model ~max_passages:3 lock ~n ~k:n
  in
  Printf.printf
    "%-6s  passages=%2d  rmrs/passage avg=%5.2f max=%2d  fences/passage \
     avg=%4.2f max=%2d  exclusion=%b\n"
    (Config.mem_model_name model)
    stats.Locks.Harness.passages stats.Locks.Harness.avg_rmrs_per_passage
    stats.Locks.Harness.max_rmrs_per_passage
    stats.Locks.Harness.avg_fences_per_passage
    stats.Locks.Harness.max_fences_per_passage
    stats.Locks.Harness.exclusion_ok

let () =
  print_endline "MCS queue lock, 8 processes x 3 passages, round-robin:";
  List.iter run [ Config.Dsm; Config.Cc_wt; Config.Cc_wb ];
  print_newline ();
  (* peek at the first few events of an execution *)
  let lock = Locks.Ticket.family.Locks.Lock_intf.instantiate ~n:2 in
  let m = Locks.Harness.machine_of_lock ~model:Config.Cc_wb lock ~n:2 in
  ignore (Sched.round_robin m);
  print_endline "First 12 events of a 2-process ticket-lock execution:";
  let tr = Machine.trace m in
  for i = 0 to min 11 (Vec.length tr - 1) do
    Format.printf "  %a@." Event.pp (Vec.get tr i)
  done
