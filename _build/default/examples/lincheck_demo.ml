(* Linearizability checking of simulator object histories.

     dune exec examples/lincheck_demo.exe

   Records concurrent histories of the counter / stack / queue running on
   the TSO simulator under random schedules and checks them with the
   Wing & Gong algorithm; then shows the checker catching a deliberately
   non-atomic counter. *)

open Tsim
open Tsim.Prog

let check_counter seed =
  let layout = Layout.create () in
  let c = Objects.Counter.make_faa layout in
  Lincheck.Workload.run_and_check ~schedule:(Lincheck.Workload.Rand seed)
    ~layout ~n:4 ~ops_per_proc:3
    (fun p _ -> Lincheck.Workload.op "faa" (c.Objects.Counter.fetch_inc p))
    Lincheck.Spec.counter

let check_broken seed =
  let layout = Layout.create () in
  let v = Layout.var layout "broken" in
  let broken_faa _p =
    let* x = read v in
    let* () = write v (x + 1) in
    let* () = fence in
    return x
  in
  Lincheck.Workload.run_and_check ~schedule:(Lincheck.Workload.Rand seed)
    ~layout ~n:3 ~ops_per_proc:2
    (fun p _ -> Lincheck.Workload.op "faa" (broken_faa p))
    Lincheck.Spec.counter

let () =
  let h, v = check_counter 42 in
  Format.printf "FAA counter history (%d ops):@.%a" (Lincheck.History.length h)
    Lincheck.History.pp h;
  Printf.printf "linearizable: %b (%d states explored)\n\n"
    v.Lincheck.Checker.linearizable v.Lincheck.Checker.states_explored;
  Format.printf "witness linearization:@.";
  List.iter
    (fun o -> Format.printf "  %a@." Lincheck.History.pp_op o)
    v.Lincheck.Checker.witness;
  (* hunt for a schedule exposing the broken counter *)
  let rec hunt seed =
    if seed > 200 then None
    else
      let h, v = check_broken seed in
      if v.Lincheck.Checker.linearizable then hunt (seed + 1) else Some (seed, h)
  in
  match hunt 0 with
  | Some (seed, h) ->
      Format.printf
        "@.A non-atomic (read;write) counter is NOT linearizable under \
         schedule seed %d:@.%a"
        seed Lincheck.History.pp h
  | None -> print_endline "broken counter not caught (unexpected)"
