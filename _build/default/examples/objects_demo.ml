(* Section 5 in action: counters, stacks, queues and Algorithm 1.

     dune exec examples/objects_demo.exe

   Builds one-time mutual exclusion out of each object (Lemma 9) and shows
   that a passage costs exactly one object operation plus an additive
   constant, transferring the paper's lower bound to these objects. *)

open Tsim
open Tsim.Prog

let bare_faa_cost ~n =
  let layout = Layout.create () in
  let c = Objects.Counter.make_faa layout in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
      ~entry:(fun p ->
        let* _ = c.Objects.Counter.fetch_inc p in
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  ignore (Sched.round_robin m);
  List.fold_left max 0 (List.init n (fun p -> Machine.rmrs m p))

let () =
  let n = 8 in
  Printf.printf
    "Algorithm 1 (Lemma 9): one-time mutex from counter / queue / stack, \
     n = %d\n\n"
    n;
  Printf.printf "%-26s %10s %10s %10s %10s\n" "object" "rmr(avg)" "rmr(max)"
    "fence(max)" "excl";
  List.iter
    (fun (fam : Locks.Lock_intf.family) ->
      let lock = fam.Locks.Lock_intf.instantiate ~n in
      let _, stats =
        Locks.Harness.run_contended ~model:Config.Cc_wb lock ~n ~k:n
      in
      Printf.printf "%-26s %10.2f %10d %10d %10b\n"
        fam.Locks.Lock_intf.family_name
        stats.Locks.Harness.avg_rmrs_per_passage
        stats.Locks.Harness.max_rmrs_per_passage
        stats.Locks.Harness.max_fences_per_passage
        stats.Locks.Harness.exclusion_ok)
    Objects.Mutex_from_object.families;
  Printf.printf
    "\nA bare fetch&increment costs up to %d RMRs at the same contention —\n\
     the mutex passages above stay within an additive constant of the\n\
     single object operation they invoke, as Lemma 9 states.\n"
    (bare_faa_cost ~n);
  (* the objects standalone *)
  Printf.printf "\nStack pre-filled with 4..0 popped by 5 processes: ";
  let layout = Layout.create () in
  let sp = Objects.Ostack.pop_provider layout ~n:5 in
  let results = Array.make 5 (-1) in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:5 ~layout
      ~entry:(fun p ->
        let* v = sp.Objects.Obj_intf.fetch_inc p in
        results.(p) <- v;
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  ignore (Sched.round_robin m);
  Array.iter (Printf.printf "%d ") results;
  Printf.printf "(a 5-limited-use counter)\n"
