examples/artifact_demo.ml: Analysis Config Execution Filename Format In_channel Int64 Locks Machine Printf Sys Tsim
