examples/objects_demo.ml: Array Config Layout List Locks Machine Objects Printf Prog Sched Tsim
