examples/litmus_tso.mli:
