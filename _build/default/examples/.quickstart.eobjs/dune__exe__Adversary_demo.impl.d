examples/adversary_demo.ml: Adversary Array Format List Locks Sys
