examples/tradeoff_curves.mli:
