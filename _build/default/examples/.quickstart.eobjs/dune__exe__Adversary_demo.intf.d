examples/adversary_demo.mli:
