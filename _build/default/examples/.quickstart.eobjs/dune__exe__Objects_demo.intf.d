examples/objects_demo.mli:
