examples/quickstart.mli:
