examples/quickstart.ml: Config Event Format List Locks Machine Printf Sched Tsim Vec
