examples/lincheck_demo.ml: Format Layout Lincheck List Objects Printf Tsim
