examples/litmus_tso.ml: Array Config Layout Machine Printf Prog Sched Tsim
