examples/tradeoff_curves.ml: Bounds List Printf
