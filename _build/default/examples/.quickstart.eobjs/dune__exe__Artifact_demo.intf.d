examples/artifact_demo.mli:
