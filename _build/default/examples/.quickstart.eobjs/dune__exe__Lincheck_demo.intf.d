examples/lincheck_demo.mli:
