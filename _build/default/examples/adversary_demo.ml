(* Example: running the lower-bound adversary against real locks.

     dune exec examples/adversary_demo.exe [-- <n>]

   Reproduces the heart of the paper: the adversary forces the adaptive
   announce-list lock to execute Θ(k) fences in a single passage (Theorem 1
   with a linear adaptivity function), while the non-adaptive ticket lock
   and bakery cannot be pushed beyond their constant fence counts. *)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 24
  in
  let run (fam : Locks.Lock_intf.family) =
    let lock = fam.Locks.Lock_intf.instantiate ~n in
    let c = Adversary.Construction.create lock ~n in
    let report = Adversary.Construction.run ~min_act:1 c in
    Format.printf "%a@." Adversary.Report.pp report;
    (match Adversary.Witness.extract c with
    | Some w -> Format.printf "  witness: %s@." w.Adversary.Witness.detail
    | None -> Format.printf "  witness: all processes finished or erased@.");
    Format.printf "@."
  in
  Format.printf
    "=== Lower-bound adversary (Ben-Baruch & Hendler construction), N = %d \
     ===@.@."
    n;
  List.iter run
    [
      Locks.Adaptive_list.family;
      Locks.Ticket.family;
      Locks.Bakery.family;
      Locks.Tournament.family;
      Locks.Fastpath.family;
    ]
