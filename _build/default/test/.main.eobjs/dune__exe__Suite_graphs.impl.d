test/suite_graphs.ml: Alcotest Fun Graphs List QCheck QCheck_alcotest
