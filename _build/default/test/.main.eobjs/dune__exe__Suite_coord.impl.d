test/suite_coord.ml: Alcotest Analysis Array Config Layout List Locks Machine Objects Printf Prog Sched Tsim
