test/suite_twoproc.ml: Alcotest Config Dekker Harness List Lock_intf Locks Mcheck Printf Tsim Zoo
