test/suite_splitter.ml: Alcotest Array Config Layout List Locks Machine Option Printf Prog QCheck QCheck_alcotest Sched Splitter Tsim
