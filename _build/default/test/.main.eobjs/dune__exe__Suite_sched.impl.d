test/suite_sched.ml: Alcotest Array Config Event Layout List Machine Printf Prog QCheck QCheck_alcotest Rng Sched Tsim Vec
