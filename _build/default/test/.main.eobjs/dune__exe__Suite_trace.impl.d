test/suite_trace.ml: Alcotest Array Config Erasure Event Execution Fun Layout List Machine Pidset Printf Prog QCheck QCheck_alcotest Rng Trace Tsim Tutil
