test/suite_wbuf.ml: Alcotest List Pidset QCheck QCheck_alcotest Tsim Wbuf
