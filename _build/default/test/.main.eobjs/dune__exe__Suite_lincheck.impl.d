test/suite_lincheck.ml: Alcotest Checker Config History Layout Lincheck List Machine Objects Printf Prog QCheck QCheck_alcotest Sched Spec Tsim Workload
