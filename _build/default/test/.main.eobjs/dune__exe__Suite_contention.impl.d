test/suite_contention.ml: Adaptive_list Alcotest Config Harness List Lock_intf Locks Machine Printf QCheck QCheck_alcotest Ticket Tsim Vec Zoo
