test/suite_analysis.ml: Alcotest Analysis Array Config Execution Layout List Machine Pidset Printf Prog QCheck QCheck_alcotest Trace Tsim Tutil
