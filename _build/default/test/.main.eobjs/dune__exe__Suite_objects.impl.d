test/suite_objects.ml: Alcotest Array Config Counter Fun Layout List Locks Machine Mutex_from_object Obj_intf Objects Oqueue Ostack Printf Prog QCheck QCheck_alcotest Sched Tsim
