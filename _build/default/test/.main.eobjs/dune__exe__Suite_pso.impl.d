test/suite_pso.ml: Alcotest Array Cache Config Fun Layout List Locks Machine Printf Prog QCheck QCheck_alcotest Rng Sched Tsim
