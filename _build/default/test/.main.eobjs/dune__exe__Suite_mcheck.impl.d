test/suite_mcheck.ml: Alcotest Array Config Layout List Mcheck Printf Prog Tsim
