test/suite_bounds.ml: Adaptivity Alcotest Bounds Corollaries Float List Logspace Printf Pso QCheck QCheck_alcotest Theorem1 Theorem3
