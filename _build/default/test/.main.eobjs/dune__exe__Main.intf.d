test/main.mli:
