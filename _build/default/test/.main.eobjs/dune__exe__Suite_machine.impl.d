test/suite_machine.ml: Alcotest Array Config Event Layout List Machine Option Pidset Prog Tsim Tutil Vec Wbuf
