test/tutil.ml: Array Config Layout List Machine Pidset Printf Prog Tsim Vec
