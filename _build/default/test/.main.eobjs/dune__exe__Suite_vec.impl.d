test/suite_vec.ml: Alcotest List QCheck QCheck_alcotest Tsim Vec
