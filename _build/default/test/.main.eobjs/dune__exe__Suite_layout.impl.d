test/suite_layout.ml: Adversary Alcotest Analysis Array Bounds Config Execution Layout List Locks Machine Printf Prog Rng Tsim Vec
