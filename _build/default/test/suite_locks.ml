(* Lock correctness and complexity-profile tests.

   Every lock in the zoo must provide mutual exclusion and progress under
   round-robin and a battery of random schedules (the machine raises
   [Exclusion_violation] if two CS events are ever simultaneously enabled).
   The complexity tests pin the headline RMR/fence profiles the evaluation
   table (E6) relies on. *)

open Tsim
open Locks

let models = [ Config.Dsm; Config.Cc_wt; Config.Cc_wb ]

let check_run (stats : Harness.run_stats) =
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s exclusion" stats.Harness.lock_name
       (Config.mem_model_name stats.Harness.model))
    true stats.Harness.exclusion_ok;
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s completed" stats.Harness.lock_name
       (Config.mem_model_name stats.Harness.model))
    true stats.Harness.completed

let exclusion_case (fam : Lock_intf.family) =
  Alcotest.test_case
    (Printf.sprintf "%s: exclusion+progress (rr, random)" fam.Lock_intf.family_name)
    `Quick
    (fun () ->
      List.iter
        (fun model ->
          (* round robin *)
          let lock = fam.Lock_intf.instantiate ~n:6 in
          let _, stats = Harness.run_contended ~model lock ~n:6 ~k:6 in
          check_run stats;
          Alcotest.(check int) "all CSs happened" 6 stats.Harness.cs_entries;
          (* random schedules, several seeds *)
          List.iter
            (fun seed ->
              let lock = fam.Lock_intf.instantiate ~n:5 in
              let _, stats =
                Harness.run_contended ~model ~schedule:(Harness.Rand seed)
                  lock ~n:5 ~k:5
              in
              check_run stats;
              Alcotest.(check int) "all CSs happened" 5
                stats.Harness.cs_entries)
            [ 1; 7; 13; 99 ])
        models)

let multi_passage_case (fam : Lock_intf.family) =
  Alcotest.test_case
    (Printf.sprintf "%s: multi-passage" fam.Lock_intf.family_name)
    `Quick
    (fun () ->
      let lock = fam.Lock_intf.instantiate ~n:4 in
      let _, stats =
        Harness.run_contended ~model:Config.Cc_wb ~max_passages:3 lock ~n:4
          ~k:4
      in
      check_run stats;
      Alcotest.(check int) "12 passages" 12 stats.Harness.passages)

(* Solo passages must be cheap and always succeed (weak obstruction
   freedom: a process running alone finishes). *)
let solo_case (fam : Lock_intf.family) =
  Alcotest.test_case
    (Printf.sprintf "%s: solo passage" fam.Lock_intf.family_name)
    `Quick
    (fun () ->
      List.iter
        (fun model ->
          let lock = fam.Lock_intf.instantiate ~n:8 in
          let _, stats = Harness.run_contended ~model lock ~n:8 ~k:1 in
          check_run stats;
          Alcotest.(check int) "one CS" 1 stats.Harness.cs_entries)
        models)

(* --- complexity profiles (CC-WB, round robin) ------------------------- *)

let max_rmrs lock_fam ~n ~k =
  let lock = lock_fam.Lock_intf.instantiate ~n in
  let _, stats = Harness.run_contended ~model:Config.Cc_wb lock ~n ~k in
  check_run stats;
  stats.Harness.max_rmrs_per_passage

let max_fences lock_fam ~n ~k =
  let lock = lock_fam.Lock_intf.instantiate ~n in
  let _, stats = Harness.run_contended ~model:Config.Cc_wb lock ~n ~k in
  check_run stats;
  stats.Harness.max_fences_per_passage

(* Ticket lock: O(1) fences per passage regardless of contention. *)
let test_ticket_constant_fences () =
  let f8 = max_fences Ticket.family ~n:8 ~k:8 in
  let f32 = max_fences Ticket.family ~n:32 ~k:32 in
  Alcotest.(check bool) "<= 2 fences" true (f8 <= 2 && f32 <= 2)

(* Tournament: RMRs grow ~ log n, and stay well below n. *)
let test_tournament_log_rmrs () =
  let r4 = max_rmrs Tournament.family ~n:4 ~k:1 in
  let r64 = max_rmrs Tournament.family ~n:64 ~k:1 in
  (* solo passage: O(log n) with a small constant *)
  Alcotest.(check bool)
    (Printf.sprintf "solo rmrs grow slowly (%d -> %d)" r4 r64)
    true
    (r64 <= r4 * 4 && r64 < 64)

(* Bakery: Θ(n) RMRs even solo — non-adaptive. *)
let test_bakery_linear_rmrs () =
  let r8 = max_rmrs Bakery.family ~n:8 ~k:1 in
  let r64 = max_rmrs Bakery.family ~n:64 ~k:1 in
  Alcotest.(check bool)
    (Printf.sprintf "rmrs scale with n (%d -> %d)" r8 r64)
    true
    (r64 >= 60 && r8 >= 7 && r64 > 4 * r8)

(* Bakery: O(1) fences regardless of n (non-adaptive constant-fence). *)
let test_bakery_constant_fences () =
  let f8 = max_fences Bakery.family ~n:8 ~k:8 in
  let f32 = max_fences Bakery.family ~n:32 ~k:32 in
  Alcotest.(check bool)
    (Printf.sprintf "constant fences (%d, %d)" f8 f32)
    true
    (f8 <= 4 && f32 <= 4)

(* Fast-path lock: solo passage is O(1) in n. *)
let test_fastpath_solo_constant () =
  let r8 = max_rmrs Fastpath.family ~n:8 ~k:1 in
  let r128 = max_rmrs Fastpath.family ~n:128 ~k:1 in
  Alcotest.(check bool)
    (Printf.sprintf "solo O(1) (%d vs %d)" r8 r128)
    true (r128 <= r8 + 2)

(* Adaptive list lock: RMRs scale with contention k, not with n. *)
let test_adaptive_list_adaptivity () =
  let r_low = max_rmrs Adaptive_list.family ~n:128 ~k:2 in
  let r_high = max_rmrs Adaptive_list.family ~n:128 ~k:32 in
  Alcotest.(check bool)
    (Printf.sprintf "rmrs grow with k (%d -> %d)" r_low r_high)
    true
    (r_low <= 12 && r_high > r_low);
  (* and independent of n at fixed k *)
  let r_small_n = max_rmrs Adaptive_list.family ~n:8 ~k:2 in
  Alcotest.(check bool)
    (Printf.sprintf "independent of n (%d vs %d)" r_small_n r_low)
    true
    (abs (r_low - r_small_n) <= 2)

(* Adaptive tree: solo passages are O(1) independent of n (the fast path:
   stop at splitter (0,0), climb the constant-size fast tree), while the
   plain tournament's solo cost grows with n. *)
let test_adaptive_tree_solo_constant () =
  let r16 = max_rmrs Adaptive_tree.family ~n:16 ~k:1 in
  let r256 = max_rmrs Adaptive_tree.family ~n:256 ~k:1 in
  Alcotest.(check bool)
    (Printf.sprintf "solo O(1) in n (%d vs %d)" r16 r256)
    true
    (r256 <= r16 + 2);
  let t16 = max_rmrs Tournament.family ~n:16 ~k:1 in
  let t256 = max_rmrs Tournament.family ~n:256 ~k:1 in
  Alcotest.(check bool)
    (Printf.sprintf "tournament grows (%d -> %d) but adaptive-tree doesn't"
       t16 t256)
    true
    (t256 > t16 && r256 < t256)

(* Cascade: genuinely adaptive — per-passage RMRs at fixed contention k
   are (nearly) independent of n, with only the O(log log n) arbitration
   depth growing. *)
let test_cascade_adaptivity () =
  let r k n = max_rmrs Cascade.family ~n ~k in
  let r_small = r 2 16 and r_big = r 2 64 in
  Alcotest.(check bool)
    (Printf.sprintf "k=2: n=16 -> %d, n=64 -> %d (loglog growth only)"
       r_small r_big)
    true
    (r_big <= r_small + 6);
  (* and it grows with k at fixed n *)
  let r1 = r 1 32 and r8 = r 8 32 in
  Alcotest.(check bool)
    (Printf.sprintf "grows with k (%d -> %d)" r1 r8)
    true (r8 > r1)

(* MCS: local-spin — O(1) RMRs per passage in DSM under round robin. *)
let test_mcs_local_spin_dsm () =
  let lock = Mcs.family.Lock_intf.instantiate ~n:8 in
  let _, stats = Harness.run_contended ~model:Config.Dsm lock ~n:8 ~k:8 in
  check_run stats;
  Alcotest.(check bool)
    (Printf.sprintf "max %d rmrs" stats.Harness.max_rmrs_per_passage)
    true
    (stats.Harness.max_rmrs_per_passage <= 8)

(* Property: random schedules never violate exclusion, for any zoo lock. *)
let prop_random_schedules =
  QCheck.Test.make ~name:"zoo exclusion under random schedules" ~count:150
    QCheck.(pair (int_bound 100_000) (int_bound 9))
    (fun (seed, which) ->
      let fam = List.nth Zoo.all (which mod List.length Zoo.all) in
      let lock = fam.Lock_intf.instantiate ~n:4 in
      let _, stats =
        Harness.run_contended ~model:Config.Cc_wb
          ~schedule:(Harness.Rand seed) lock ~n:4 ~k:4
      in
      stats.Harness.exclusion_ok && stats.Harness.completed
      && stats.Harness.cs_entries = 4)

(* Property: same, multi-passage and across memory models (the stale-state
   hazards of tree locks show up on re-entry). *)
let prop_random_multipassage =
  QCheck.Test.make ~name:"zoo exclusion, multi-passage random" ~count:100
    QCheck.(triple (int_bound 100_000) (int_bound 8) (int_bound 2))
    (fun (seed, which, model_ix) ->
      let fam =
        List.nth Zoo.multi_passage (which mod List.length Zoo.multi_passage)
      in
      let model = List.nth models (model_ix mod 3) in
      let lock = fam.Lock_intf.instantiate ~n:3 in
      let _, stats =
        Harness.run_contended ~model ~max_passages:3
          ~schedule:(Harness.Rand seed) lock ~n:3 ~k:3
      in
      stats.Harness.exclusion_ok && stats.Harness.completed
      && stats.Harness.cs_entries = 9)

let suite =
  List.concat_map
    (fun fam -> [ exclusion_case fam; solo_case fam ])
    Zoo.all
  @ List.map multi_passage_case Zoo.multi_passage
  @ [
      Alcotest.test_case "ticket: constant fences" `Quick
        test_ticket_constant_fences;
      Alcotest.test_case "tournament: log RMRs" `Quick
        test_tournament_log_rmrs;
      Alcotest.test_case "bakery: linear RMRs" `Quick test_bakery_linear_rmrs;
      Alcotest.test_case "bakery: constant fences" `Quick
        test_bakery_constant_fences;
      Alcotest.test_case "fastpath: solo O(1)" `Quick
        test_fastpath_solo_constant;
      Alcotest.test_case "adaptive-list: adaptivity" `Quick
        test_adaptive_list_adaptivity;
      Alcotest.test_case "adaptive-tree: solo O(1)" `Quick
        test_adaptive_tree_solo_constant;
      Alcotest.test_case "cascade: adaptivity" `Quick test_cascade_adaptivity;
      Alcotest.test_case "mcs: local spin in DSM" `Quick
        test_mcs_local_spin_dsm;
      QCheck_alcotest.to_alcotest prop_random_schedules;
      QCheck_alcotest.to_alcotest prop_random_multipassage;
    ]

(* Ticket lock is FIFO: the CS entry order equals the FAA ticket order,
   under any schedule. *)
let test_ticket_fifo () =
  List.iter
    (fun seed ->
      let lock = Ticket.family.Lock_intf.instantiate ~n:5 in
      let m, stats =
        Harness.run_contended ~model:Config.Cc_wb
          ~schedule:(Harness.Rand seed) lock ~n:5 ~k:5
      in
      Alcotest.(check bool) "completed" true stats.Harness.completed;
      (* reconstruct orders from the trace *)
      let tr = Execution.Trace.of_machine m in
      let tickets = ref [] and css = ref [] in
      Execution.Trace.iter
        (fun (e : Event.t) ->
          match e.Event.kind with
          | Event.Faa_ev _ -> tickets := e.Event.pid :: !tickets
          | Event.Cs -> css := e.Event.pid :: !css
          | _ -> ())
        tr;
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: FIFO" seed)
        (List.rev !tickets) (List.rev !css))
    [ 1; 9; 42; 777 ]

(* Prog combinators. *)
let test_prog_combinators () =
  let layout = Config.Cc_wb in
  ignore layout;
  let l = Tsim.Layout.create () in
  let v = Tsim.Layout.var l "v" in
  let acc = ref [] in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:1 ~layout:l
      ~entry:(fun _ ->
        let open Prog in
        let* () = for_ 1 4 (fun i -> write v i) in
        let* x = repeat_until (faa v 1) (fun x -> x >= 6) in
        acc := [ x ];
        let+ y = read v in
        acc := y :: !acc)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  assert (Machine.run_until_passages m 0 ~target:1);
  (* for_ wrote 1..4 (buffered, coalesced to 4); faa drained (v=4) and
     looped 4,5,6 -> stops at 6 having incremented to 7 *)
  Alcotest.(check (list int)) "combinators" [ 7; 6 ] !acc;
  Alcotest.(check bool) "head_to_string" true
    (String.length (Prog.head_to_string (Prog.read v)) > 0)

(* Deep fuzz (runs in ~seconds): many random schedules across the whole
   zoo and all memory models; registered Slow so -q skips it. *)
let deep_fuzz_case =
  Alcotest.test_case "deep fuzz: zoo x models x 300 schedules" `Slow
    (fun () ->
      let rng = Rng.create 20260704 in
      for _ = 1 to 300 do
        let fam = List.nth Zoo.all (Rng.int rng (List.length Zoo.all)) in
        let model = List.nth models (Rng.int rng 3) in
        let lock = fam.Lock_intf.instantiate ~n:4 in
        let seed = Rng.int rng 1_000_000 in
        let _, stats =
          Harness.run_contended ~model ~schedule:(Harness.Rand seed) lock
            ~n:4 ~k:4
        in
        if not (stats.Harness.exclusion_ok && stats.Harness.completed) then
          Alcotest.fail
            (Printf.sprintf "%s/%s seed %d: exclusion=%b completed=%b"
               fam.Lock_intf.family_name
               (Config.mem_model_name model)
               seed stats.Harness.exclusion_ok stats.Harness.completed)
      done)

let suite =
  suite
  @ [
      Alcotest.test_case "ticket FIFO order" `Quick test_ticket_fifo;
      Alcotest.test_case "prog combinators" `Quick test_prog_combinators;
      deep_fuzz_case;
    ]
