(* Schedulers, the deterministic RNG, and event-level properties. *)

open Tsim
open Tsim.Prog

(* --- schedulers --------------------------------------------------------- *)

let trivial_machine n =
  let layout = Layout.create () in
  let vars = Layout.array layout "x" n in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
      ~entry:(fun p ->
        let* () = write vars.(p) (p + 1) in
        fence)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  Machine.create cfg

let test_round_robin_completes () =
  let m = trivial_machine 5 in
  let out = Sched.round_robin m in
  Alcotest.(check bool) "finished" true out.Sched.all_finished;
  Alcotest.(check (list int)) "no live pids" [] (Sched.live_pids m)

let test_random_completes () =
  List.iter
    (fun seed ->
      let m = trivial_machine 5 in
      let out = Sched.random ~seed m in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d finished" seed)
        true out.Sched.all_finished)
    [ 0; 1; 123456 ]

let test_solo_ignores_others () =
  let m = trivial_machine 4 in
  let out = Sched.solo m 2 in
  Alcotest.(check bool) "p2 done" true out.Sched.all_finished;
  Alcotest.(check int) "p2 finished" 1 (Machine.passages m 2);
  Alcotest.(check int) "p0 untouched" 0 (Machine.passages m 0)

(* Determinism: two round-robin runs over fresh machines produce
   identical traces. *)
let test_round_robin_deterministic () =
  let run () =
    let m = trivial_machine 4 in
    ignore (Sched.round_robin m);
    Vec.to_list (Machine.trace m)
    |> List.map (fun (e : Event.t) -> (e.Event.pid, Event.kind_tag e.Event.kind))
  in
  Alcotest.(check (list (pair int string))) "identical traces" (run ()) (run ())

let test_random_deterministic_per_seed () =
  let run seed =
    let m = trivial_machine 4 in
    ignore (Sched.random ~seed m);
    Vec.to_list (Machine.trace m)
    |> List.map (fun (e : Event.t) -> (e.Event.pid, Event.kind_tag e.Event.kind))
  in
  Alcotest.(check (list (pair int string))) "same seed, same trace" (run 7) (run 7);
  Alcotest.(check bool) "different seeds diverge (usually)" true
    (run 7 <> run 8)

(* --- RNG ----------------------------------------------------------------- *)

let test_rng_reproducible () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let prop_rng_in_range =
  QCheck.Test.make ~name:"Rng.int in range" ~count:500
    QCheck.(pair (int_bound 100000) (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair (int_bound 100000) (list small_int))
    (fun (seed, xs) ->
      let r = Rng.create seed in
      let a = Array.of_list xs in
      let b = Rng.shuffle r a in
      List.sort compare (Array.to_list b) = List.sort compare xs)

(* --- events -------------------------------------------------------------- *)

let mk kind = { Event.seq = 0; pid = 0; kind; remote = false; rmr = false; critical = false }

let test_congruence_basics () =
  let r1 = mk (Event.Read { var = 3; value = 5; src = Event.From_memory }) in
  let r2 = mk (Event.Read { var = 3; value = 9; src = Event.From_cache }) in
  let r3 = mk (Event.Read { var = 4; value = 5; src = Event.From_memory }) in
  let w = mk (Event.Commit_write { var = 3; value = 5 }) in
  Alcotest.(check bool) "same var reads congruent (values differ)" true
    (Event.congruent r1 r2);
  Alcotest.(check bool) "different var" false (Event.congruent r1 r3);
  Alcotest.(check bool) "read vs commit" false (Event.congruent r1 w);
  Alcotest.(check bool) "other pid" false
    (Event.congruent r1 { r2 with Event.pid = 1 })

let test_accessed_var () =
  Alcotest.(check (option int)) "buffer read accesses nothing" None
    (Event.accessed_var
       (mk (Event.Read { var = 3; value = 5; src = Event.From_buffer })));
  Alcotest.(check (option int)) "issue accesses nothing" None
    (Event.accessed_var (mk (Event.Issue_write { var = 3; value = 5 })));
  Alcotest.(check (option int)) "commit accesses" (Some 3)
    (Event.accessed_var (mk (Event.Commit_write { var = 3; value = 5 })));
  Alcotest.(check (option int)) "cas accesses" (Some 7)
    (Event.accessed_var
       (mk
          (Event.Cas_ev
             { var = 7; expected = 0; desired = 1; observed = 0; success = true })))

let test_published () =
  Alcotest.(check (option (pair int int))) "failed cas publishes nothing" None
    (Event.published
       (mk
          (Event.Cas_ev
             { var = 7; expected = 0; desired = 1; observed = 5; success = false })));
  Alcotest.(check (option (pair int int))) "faa publishes sum" (Some (7, 6))
    (Event.published (mk (Event.Faa_ev { var = 7; delta = 2; observed = 4 })))

let suite =
  [
    Alcotest.test_case "round robin completes" `Quick
      test_round_robin_completes;
    Alcotest.test_case "random completes" `Quick test_random_completes;
    Alcotest.test_case "solo ignores others" `Quick test_solo_ignores_others;
    Alcotest.test_case "round robin deterministic" `Quick
      test_round_robin_deterministic;
    Alcotest.test_case "random deterministic per seed" `Quick
      test_random_deterministic_per_seed;
    Alcotest.test_case "rng reproducible" `Quick test_rng_reproducible;
    Alcotest.test_case "event congruence" `Quick test_congruence_basics;
    Alcotest.test_case "accessed_var" `Quick test_accessed_var;
    Alcotest.test_case "published" `Quick test_published;
    QCheck_alcotest.to_alcotest prop_rng_in_range;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
  ]
