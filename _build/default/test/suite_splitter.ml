(* Moir-Anderson splitter properties and renaming-grid uniqueness — the
   read/write building blocks of adaptive algorithms. *)

open Tsim
open Tsim.Prog
open Locks

(* Run n processes through one splitter under a schedule; collect
   outcomes. *)
let run_splitter ~n ~schedule =
  let layout = Layout.create () in
  let s = Splitter.make_splitter layout "s" in
  let outcomes = Array.make n Splitter.Right in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
      ~entry:(fun p ->
        let* o = Splitter.enter_splitter s p in
        outcomes.(p) <- o;
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (match schedule with
  | `Rr -> ignore (Sched.round_robin m)
  | `Rand seed -> ignore (Sched.random ~seed m));
  outcomes

let count o outcomes =
  Array.fold_left (fun acc x -> if x = o then acc + 1 else acc) 0 outcomes

let test_splitter_solo_stops () =
  let outcomes = run_splitter ~n:1 ~schedule:`Rr in
  Alcotest.(check bool) "solo stops" true (outcomes.(0) = Splitter.Stop)

(* The splitter guarantees: <= 1 stop, <= k-1 right, <= k-1 down. *)
let prop_splitter_guarantees =
  QCheck.Test.make ~name:"splitter guarantees" ~count:150
    QCheck.(pair (int_range 2 8) (int_bound 100_000))
    (fun (n, seed) ->
      let o = run_splitter ~n ~schedule:(`Rand seed) in
      count Splitter.Stop o <= 1
      && count Splitter.Right o <= n - 1
      && count Splitter.Down o <= n - 1)

(* Renaming grid: distinct names, all within the first 2(k-1)+1 diagonals. *)
let run_grid ~n ~side ~schedule =
  let layout = Layout.create () in
  let g = Splitter.make_grid layout ~side in
  let names = Array.make n None in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
      ~entry:(fun p ->
        let* name = Splitter.rename g p in
        names.(p) <- name;
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (match schedule with
  | `Rr -> ignore (Sched.round_robin m)
  | `Rand seed -> ignore (Sched.random ~seed m));
  (g, names, m)

let test_grid_solo_gets_origin () =
  let _, names, _ = run_grid ~n:1 ~side:4 ~schedule:`Rr in
  Alcotest.(check (option int)) "origin" (Some 0) names.(0)

let prop_grid_unique_names =
  QCheck.Test.make ~name:"renaming grid: distinct names in k diagonals"
    ~count:100
    QCheck.(pair (int_range 2 6) (int_bound 100_000))
    (fun (n, seed) ->
      let side = n + 1 in
      let g, names, _ = run_grid ~n ~side ~schedule:(`Rand seed) in
      let got = Array.to_list names in
      (* everyone got a name (grid large enough) *)
      List.for_all Option.is_some got
      &&
      let vals = List.map Option.get got in
      List.length (List.sort_uniq compare vals) = n
      && List.for_all
           (fun name ->
             let r = name / g.Splitter.side
             and d = name mod g.Splitter.side in
             r + d <= 2 * (n - 1))
           vals)

(* The marks let a collect find every claimed cell: each name's cell is
   marked and lies before the first empty diagonal. *)
let test_collect_marked_covers_names () =
  let n = 4 in
  let g, names, m = run_grid ~n ~side:6 ~schedule:(`Rand 7) in
  (* run the collect as a fresh process program on the same machine is not
     possible (config fixed); instead read marks directly from memory *)
  let marked r d = Machine.mem_value m g.Splitter.mark.(r).(d) <> 0 in
  Array.iter
    (fun name ->
      match name with
      | None -> Alcotest.fail "missing name"
      | Some nm ->
          let r = nm / g.Splitter.side and d = nm mod g.Splitter.side in
          Alcotest.(check bool)
            (Printf.sprintf "cell (%d,%d) marked" r d)
            true (marked r d))
    names

let suite =
  [
    Alcotest.test_case "solo stops" `Quick test_splitter_solo_stops;
    Alcotest.test_case "grid solo gets origin" `Quick
      test_grid_solo_gets_origin;
    Alcotest.test_case "collect covers names" `Quick
      test_collect_marked_covers_names;
    QCheck_alcotest.to_alcotest prop_splitter_guarantees;
    QCheck_alcotest.to_alcotest prop_grid_unique_names;
  ]
