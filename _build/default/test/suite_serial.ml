(* Trace serialization round-trips and metrics cross-checks. *)

open Tsim
open Execution
open Locks

let sample_trace ?(seed = 11) ?(fam = Mcs.family) ~n () =
  let lock = fam.Lock_intf.instantiate ~n in
  let m, stats =
    Harness.run_contended ~model:Config.Cc_wb ~schedule:(Harness.Rand seed)
      lock ~n ~k:n
  in
  assert stats.Harness.exclusion_ok;
  (m, Trace.of_machine m)

let events_equal (a : Event.t) (b : Event.t) =
  a.Event.seq = b.Event.seq && a.Event.pid = b.Event.pid
  && a.Event.kind = b.Event.kind && a.Event.remote = b.Event.remote
  && a.Event.rmr = b.Event.rmr && a.Event.critical = b.Event.critical

let test_roundtrip_exact () =
  let _, tr = sample_trace ~n:4 () in
  let tr' = Serial.of_string (Serial.to_string tr) in
  Alcotest.(check int) "length" (Trace.length tr) (Trace.length tr');
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d" i)
        true
        (events_equal e (Trace.get tr' i)))
    (Trace.events tr);
  (* layout round-trips too *)
  let l = Trace.layout tr and l' = Trace.layout tr' in
  Alcotest.(check int) "vars" (Layout.size l) (Layout.size l');
  for v = 0 to Layout.size l - 1 do
    Alcotest.(check string) "name" (Layout.name l v) (Layout.name l' v);
    Alcotest.(check int) "init" (Layout.init l v) (Layout.init l' v);
    Alcotest.(check (option int)) "owner" (Layout.owner l v)
      (Layout.owner l' v)
  done

let test_file_roundtrip () =
  let _, tr = sample_trace ~n:3 ~fam:Bakery.family () in
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save path tr;
      let tr' = Serial.load path in
      Alcotest.(check int) "length" (Trace.length tr) (Trace.length tr'))

(* Serialized traces remain analyzable: flow and IN-set checks agree. *)
let test_loaded_trace_analyzable () =
  let _, tr = sample_trace ~n:4 ~fam:Ticket.family () in
  let tr' = Serial.of_string (Serial.to_string tr) in
  let s = Analysis.Flow.analyze tr and s' = Analysis.Flow.analyze tr' in
  let disagreements =
    List.filteri
      (fun i _ ->
        s.Analysis.Flow.critical.(i) <> s'.Analysis.Flow.critical.(i))
      (Array.to_list s.Analysis.Flow.critical)
  in
  Alcotest.(check int) "criticality identical" 0 (List.length disagreements)

(* Metrics recomputed from the trace match the machine's online counters. *)
let test_metrics_crosscheck () =
  List.iter
    (fun (fam : Lock_intf.family) ->
      let m, tr = sample_trace ~n:4 ~fam () in
      let metrics = Metrics.compute tr in
      for p = 0 to 3 do
        match Metrics.find metrics p with
        | None -> Alcotest.fail "missing process"
        | Some pp ->
            Alcotest.(check int)
              (Printf.sprintf "%s p%d rmrs" fam.Lock_intf.family_name p)
              (Machine.rmrs m p) pp.Metrics.pp_rmrs;
            Alcotest.(check int)
              (Printf.sprintf "%s p%d fences" fam.Lock_intf.family_name p)
              (Machine.fences_completed m p)
              pp.Metrics.pp_fences;
            Alcotest.(check int)
              (Printf.sprintf "%s p%d criticals" fam.Lock_intf.family_name p)
              (Machine.criticals m p) pp.Metrics.pp_criticals;
            Alcotest.(check int)
              (Printf.sprintf "%s p%d passages" fam.Lock_intf.family_name p)
              (Machine.passages m p) pp.Metrics.pp_passages
      done)
    [ Mcs.family; Bakery.family; Tournament.family ]

(* Per-passage metrics agree with the machine's passage log. *)
let test_metrics_passages () =
  let m, tr = sample_trace ~n:3 ~fam:Ticket.family () in
  let metrics = Metrics.compute tr in
  for p = 0 to 2 do
    let log = Machine.passage_log m p in
    match Metrics.find metrics p with
    | None -> Alcotest.fail "missing"
    | Some pp ->
        List.iteri
          (fun i (mp : Metrics.per_passage) ->
            let s = Vec.get log i in
            Alcotest.(check int)
              (Printf.sprintf "p%d passage %d rmrs" p i)
              s.Machine.p_rmrs mp.Metrics.mp_rmrs;
            Alcotest.(check int)
              (Printf.sprintf "p%d passage %d fences" p i)
              s.Machine.p_fences mp.Metrics.mp_fences)
          pp.Metrics.pp_passage_log
  done

(* The renderer produces one row per event (plus 2 header lines), every
   row at the full width, and honors the limit. *)
let test_render_shape () =
  let _, tr = sample_trace ~n:3 ~fam:Ticket.family () in
  let s = Render.to_string tr in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  Alcotest.(check int) "rows" (Trace.length tr + 2) (List.length lines);
  let limited = Render.to_string ~limit:5 tr in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' limited) in
  Alcotest.(check int) "limited rows" (5 + 3) (List.length lines);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions CS" true (contains s "*CS*")

(* Property: round-trip identity over random lock runs. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"serialize/parse identity" ~count:40
    QCheck.(pair (int_bound 100_000) (int_bound 3))
    (fun (seed, which) ->
      let fam = List.nth [ Mcs.family; Ticket.family; Bakery.family; Fastpath.family ] which in
      let _, tr = sample_trace ~seed ~fam ~n:3 () in
      let tr' = Serial.of_string (Serial.to_string tr) in
      Trace.length tr = Trace.length tr'
      && Array.for_all2 events_equal (Trace.events tr) (Trace.events tr'))

let suite =
  [
    Alcotest.test_case "roundtrip exact" `Quick test_roundtrip_exact;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "loaded trace analyzable" `Quick
      test_loaded_trace_analyzable;
    Alcotest.test_case "metrics cross-check" `Quick test_metrics_crosscheck;
    Alcotest.test_case "metrics per passage" `Quick test_metrics_passages;
    Alcotest.test_case "render shape" `Quick test_render_shape;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
