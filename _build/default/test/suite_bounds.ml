(* Bound arithmetic: Theorem 1 condition, Theorem 3 trajectory,
   Corollaries 1-3, PSO frontier. *)

open Bounds

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let test_log2_factorial () =
  (* exact small values *)
  Alcotest.(check bool) "0! = 1" true (feq (Logspace.log2_factorial 0) 0.0);
  Alcotest.(check bool) "5! = 120" true
    (feq (Logspace.log2_factorial 5) (Logspace.log2 120.0));
  Alcotest.(check bool) "10!" true
    (feq (Logspace.log2_factorial 10) (Logspace.log2 3628800.0));
  (* Stirling matches the exact sum around the crossover *)
  let exact = Logspace.log2_factorial 100_000 in
  let stirling = Logspace.stirling_ln 100_000 *. Logspace.log2e in
  Alcotest.(check bool) "stirling crossover" true
    (Float.abs (exact -. stirling) < 1e-6 *. exact)

let test_scale_down_pow2 () =
  Alcotest.(check bool) "8 * 2^-2 = 2" true
    (feq (Logspace.scale_down_pow2 8.0 2.0) 2.0);
  Alcotest.(check bool) "huge exponent -> 0" true
    (Logspace.scale_down_pow2 1e300 5000.0 = 0.0)

(* Theorem 1 condition: for f(i) = i, small i and astronomically large N
   the condition holds; for tiny N it fails quickly. *)
let test_theorem1_condition () =
  let f = Adaptivity.linear 1.0 in
  Alcotest.(check bool) "holds: i=2, log2 N = 64" true
    (Theorem1.condition ~f ~log2_n:64.0 2);
  Alcotest.(check bool) "fails: i=20, log2 N = 64" false
    (Theorem1.condition ~f ~log2_n:64.0 20);
  (* monotone in N: more processes, more forced fences *)
  let forced n = Theorem1.max_forced_fences ~f ~log2_n:n () in
  Alcotest.(check bool) "monotone in N" true
    (forced 16.0 <= forced 256.0 && forced 256.0 <= forced 65536.0)

(* Corollary 2: for linear f the exact forced-fence count scales like
   log log N: doubling log2 N adds ~a constant. *)
let test_cor2_growth_shape () =
  let f = Adaptivity.linear 1.0 in
  (* log2 log2 N = 10, 20, 40 at these three N; the exact forced-fence
     count must sit between the corollary's (1/3) log log N witness and
     log log N itself. *)
  List.iter
    (fun ll ->
      let v = Theorem1.max_forced_fences ~f ~log2_n:(Float.pow 2.0 ll) () in
      Alcotest.(check bool)
        (Printf.sprintf "loglog shape: forced %d at loglogN=%g" v ll)
        true
        (float_of_int v >= ll /. 3.0 && float_of_int v <= ll))
    [ 10.0; 20.0; 40.0 ];
  (* exact value dominates the closed-form witness (the closed form is a
     sufficient condition, hence a lower bound) *)
  List.iter
    (fun log2_n ->
      let exact = Theorem1.max_forced_fences ~f ~log2_n () in
      let closed = Corollaries.cor2_closed_form ~c:1.0 ~log2_n in
      Alcotest.(check bool)
        (Printf.sprintf "exact %d >= closed %.1f at log2N=%g" exact closed
           log2_n)
        true
        (float_of_int exact >= closed -. 1.0))
    [ 1024.; 65536.; 1048576. ]

(* Corollary 3: exponential f still forced, but triple-log slow. *)
let test_cor3_growth_shape () =
  let f = Adaptivity.exponential 1.0 in
  let lin = Adaptivity.linear 1.0 in
  List.iter
    (fun log2_n ->
      let e = Theorem1.max_forced_fences ~f ~log2_n () in
      let l = Theorem1.max_forced_fences ~f:lin ~log2_n () in
      Alcotest.(check bool)
        (Printf.sprintf "exp %d <= linear %d at log2N=%g" e l log2_n)
        true (e <= l && e >= 1))
    [ 1024.; 1048576. ];
  List.iter
    (fun log2_n ->
      let exact = Theorem1.max_forced_fences ~f ~log2_n () in
      let closed = Corollaries.cor3_closed_form ~c:1.0 ~log2_n in
      Alcotest.(check bool) "exact >= closed - 1" true
        (float_of_int exact >= closed -. 1.0))
    [ 65536.; 1048576. ]

(* Corollary 1: for every fence budget c there is an N forcing c fences —
   i.e. no O(1)-fence adaptive implementation exists. *)
let test_cor1_no_constant_fences () =
  let f = Adaptivity.linear 1.0 in
  List.iter
    (fun c ->
      match Corollaries.cor1_min_log2n ~f ~fences:c () with
      | None -> Alcotest.fail (Printf.sprintf "no N found for c=%d" c)
      | Some log2_n ->
          Alcotest.(check bool)
            (Printf.sprintf "condition holds at found N (c=%d)" c)
            true
            (Theorem1.condition ~f ~log2_n c))
    [ 1; 2; 4; 8; 16 ]

(* Theorem 3: the Act bound decreases in i and increases in N; at i
   within the Theorem-1 range it stays >= 1. *)
let test_theorem3_trajectory () =
  let log2_n = 4096.0 in
  let f = Adaptivity.linear 1.0 in
  let steps = Theorem3.max_steps ~f ~log2_n () in
  Alcotest.(check bool) "some steps survive" true (steps >= 3);
  let b i = Theorem3.log2_act_bound ~log2_n ~ell:i ~i in
  Alcotest.(check bool) "decreasing" true (b 1 > b 2 && b 2 > b 3);
  Alcotest.(check bool) "bigger N, bigger bound" true
    (Theorem3.log2_act_bound ~log2_n:8192.0 ~ell:2 ~i:2 > b 2)

(* PSO frontier: feasibility boundary behaves as Inequality 3 dictates. *)
let test_pso_frontier () =
  let n_log2 = 20.0 in
  (* the frontier point itself is feasible; half the RMRs is not *)
  List.iter
    (fun f ->
      let r = Pso.min_rmrs ~n_log2 ~fences:f in
      Alcotest.(check bool)
        (Printf.sprintf "frontier feasible (f=%g)" f)
        true
        (Pso.feasible ~n_log2 ~fences:f ~rmrs:r);
      Alcotest.(check bool)
        (Printf.sprintf "below frontier infeasible (f=%g)" f)
        false
        (Pso.feasible ~n_log2 ~fences:f ~rmrs:(r /. 4.0)))
    [ 1.0; 2.0; 4.0 ];
  (* the TSO point (O(1) fences, log n RMRs) violates the PSO bound *)
  let tf, tr = Pso.tso_point ~n_log2 in
  Alcotest.(check bool) "TSO point infeasible under PSO" false
    (Pso.feasible ~n_log2 ~fences:tf ~rmrs:tr)

(* Property: the Theorem 1 condition is antitone in i for nondecreasing f
   (once false it stays false). *)
let prop_condition_antitone =
  QCheck.Test.make ~name:"Theorem1 condition antitone in i" ~count:100
    QCheck.(pair (int_range 4 64) (int_range 1 40))
    (fun (log2n_exp, i) ->
      let f = Adaptivity.linear 1.0 in
      let log2_n = Float.pow 2.0 (float_of_int log2n_exp /. 2.0) in
      let c1 = Theorem1.condition ~f ~log2_n i in
      let c2 = Theorem1.condition ~f ~log2_n (i + 1) in
      (not c2) || c1)

(* Property: log2_add agrees with direct addition for moderate values. *)
let prop_log2_add =
  QCheck.Test.make ~name:"log2_add correct" ~count:200
    QCheck.(pair (float_range 0.001 1e6) (float_range 0.001 1e6))
    (fun (a, b) ->
      let l = Logspace.log2_add (Logspace.log2 a) (Logspace.log2 b) in
      Float.abs (Float.pow 2.0 l -. (a +. b)) < 1e-6 *. (a +. b))

let suite =
  [
    Alcotest.test_case "log2 factorial" `Quick test_log2_factorial;
    Alcotest.test_case "scale_down_pow2" `Quick test_scale_down_pow2;
    Alcotest.test_case "Theorem 1 condition" `Quick test_theorem1_condition;
    Alcotest.test_case "Corollary 2 shape" `Quick test_cor2_growth_shape;
    Alcotest.test_case "Corollary 3 shape" `Quick test_cor3_growth_shape;
    Alcotest.test_case "Corollary 1: no O(1) fences" `Quick
      test_cor1_no_constant_fences;
    Alcotest.test_case "Theorem 3 trajectory" `Quick test_theorem3_trajectory;
    Alcotest.test_case "PSO frontier" `Quick test_pso_frontier;
    QCheck_alcotest.to_alcotest prop_condition_antitone;
    QCheck_alcotest.to_alcotest prop_log2_add;
  ]
