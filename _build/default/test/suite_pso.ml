(* PSO ordering mode: out-of-order commits, the message-passing litmus,
   and the TSO/PSO separation at machine level (Section 6). *)

open Tsim
open Prog

(* Message passing: p0 writes data then flag; p1 spins on flag then reads
   data. TSO preserves the write order, PSO may commit flag first. *)
let mp_machine ~ordering =
  let layout = Layout.create () in
  let data = Layout.var layout "data" in
  let flag = Layout.var layout "flag" in
  let seen = ref (-1) in
  let cfg =
    Config.make ~model:Config.Cc_wb ~ordering ~check_exclusion:false ~n:2
      ~layout
      ~entry:(fun p ->
        if p = 0 then
          let* () = write data 1 in
          let* () = write flag 1 in
          fence
        else
          let* f = read flag in
          if f = 1 then
            let* d = read data in
            seen := d;
            unit
          else (
            seen := -2 (* flag not yet visible *);
            unit))
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  (Machine.create cfg, data, flag, seen)

let test_tso_forbids_mp_anomaly () =
  let m, _, _, seen = mp_machine ~ordering:Config.Tso in
  (* p0 issues both writes *)
  ignore (Machine.step m 0) (* Enter *);
  ignore (Machine.step m 0) (* issue data *);
  ignore (Machine.step m 0) (* issue flag *);
  (* TSO: the adversary can only commit the OLDEST write *)
  ignore (Machine.commit m 0) (* commits data *);
  ignore (Machine.commit m 0) (* commits flag *);
  Alcotest.check_raises "commit_var rejected under TSO"
    (Invalid_argument "Machine.commit_var: only allowed under PSO ordering")
    (fun () ->
      let m, _, flag, _ = mp_machine ~ordering:Config.Tso in
      ignore (Machine.step m 0);
      ignore (Machine.step m 0);
      ignore (Machine.step m 0);
      ignore (Machine.commit_var m 0 flag));
  (* after both commits in order, p1 must see data = 1 *)
  ignore (Machine.step m 1) (* Enter *);
  ignore (Machine.step m 1) (* read flag = 1 *);
  ignore (Machine.step m 1) (* read data *);
  Alcotest.(check int) "no MP anomaly under TSO" 1 !seen

let test_pso_allows_mp_anomaly () =
  let m, _, flag, seen = mp_machine ~ordering:Config.Pso in
  ignore (Machine.step m 0) (* Enter *);
  ignore (Machine.step m 0) (* issue data *);
  ignore (Machine.step m 0) (* issue flag *);
  (* PSO: the adversary commits the YOUNGER write (flag) first *)
  ignore (Machine.commit_var m 0 flag);
  ignore (Machine.step m 1) (* Enter *);
  ignore (Machine.step m 1) (* read flag = 1 *);
  ignore (Machine.step m 1) (* read data = 0! *);
  Alcotest.(check int) "MP anomaly observable under PSO" 0 !seen

(* A fence still drains everything under PSO. *)
let test_pso_fence_drains () =
  let m, data, _, _ = mp_machine ~ordering:Config.Pso in
  ignore data;
  (* run p0 to completion: its trailing fence commits both writes *)
  assert (Machine.run_until_passages m 0 ~target:1);
  Alcotest.(check int) "data committed" 1 (Machine.mem_value m 0);
  Alcotest.(check int) "flag committed" 1 (Machine.mem_value m 1)

(* Locks remain correct under PSO scheduling because every publish point
   in the zoo is fenced (their writes never need TSO's implicit order). *)
let test_zoo_correct_under_pso () =
  List.iter
    (fun (fam : Locks.Lock_intf.family) ->
      let lock = fam.Locks.Lock_intf.instantiate ~n:4 in
      let cfg =
        Locks.Harness.config_of_lock ~model:Config.Cc_wb
          ~ordering:Config.Pso lock ~n:4
      in
      let m = Machine.create cfg in
      let out = Sched.round_robin m in
      Alcotest.(check bool)
        (fam.Locks.Lock_intf.family_name ^ " completes under PSO")
        true out.Sched.all_finished)
    Locks.Zoo.all

(* Property: under PSO, committing buffered writes in any order leaves the
   same final memory when all writes target distinct variables. *)
let prop_pso_commit_order_irrelevant_distinct_vars =
  QCheck.Test.make ~name:"PSO out-of-order commits, distinct vars" ~count:60
    QCheck.(pair (int_range 2 6) (int_bound 1000))
    (fun (nv, seed) ->
      let layout = Layout.create () in
      let vars = Layout.array layout "v" nv in
      let cfg =
        Config.make ~model:Config.Cc_wb ~ordering:Config.Pso
          ~check_exclusion:false ~n:1 ~layout
          ~entry:(fun _ ->
            seq (List.init nv (fun i -> write vars.(i) (i + 1))))
          ~exit_section:(fun _ -> Prog.unit)
          ()
      in
      let m = Machine.create cfg in
      ignore (Machine.step m 0) (* Enter *);
      for _ = 1 to nv do
        ignore (Machine.step m 0)
      done;
      (* commit in random order *)
      let rng = Rng.create seed in
      let order = Array.to_list (Rng.shuffle rng (Array.init nv Fun.id)) in
      List.iter (fun i -> ignore (Machine.commit_var m 0 vars.(i))) order;
      List.for_all (fun i -> Machine.mem_value m vars.(i) = i + 1)
        (List.init nv Fun.id))

(* Locks whose every cross-variable publish is fenced (or a single write,
   or an RMW) remain correct when the PSO adversary commits out of order;
   the TSO-only locks (tournament, bakery) rely on FIFO commit order and
   are exercised by the separation tests below. *)
let pso_safe_families () =
  [
    Locks.Ticket.family;
    Locks.Tas.family;
    Locks.Clh.family;
    Locks.Anderson.family;
    Locks.Adaptive_list.family;
    Locks.Tournament.family_pso;
    Locks.Bakery.family_pso;
  ]

let prop_pso_safe_zoo =
  QCheck.Test.make ~name:"PSO-safe locks under PSO random schedules"
    ~count:80
    QCheck.(pair (int_bound 100_000) (int_bound 6))
    (fun (seed, which) ->
      let fams = pso_safe_families () in
      let fam = List.nth fams (which mod List.length fams) in
      let lock = fam.Locks.Lock_intf.instantiate ~n:4 in
      let cfg =
        Locks.Harness.config_of_lock ~model:Config.Cc_wb
          ~ordering:Config.Pso lock ~n:4
      in
      let m = Machine.create cfg in
      match Sched.random ~seed ~commit_bias:0.4 m with
      | out -> out.Sched.all_finished
      | exception Machine.Exclusion_violation _ -> false)

(* TSO/PSO separation on real algorithms: the plain tournament and bakery
   rely on TSO's FIFO commit order; a PSO schedule breaks them, and their
   pso_safe variants (one extra fence per publish pair) survive the same
   schedules. *)
let pso_breaks lock_fam ~seeds =
  List.exists
    (fun seed ->
      let lock = lock_fam.Locks.Lock_intf.instantiate ~n:4 in
      let cfg =
        Locks.Harness.config_of_lock ~model:Config.Cc_wb
          ~ordering:Config.Pso lock ~n:4
      in
      let m = Machine.create cfg in
      match Sched.random ~seed ~commit_bias:0.4 m with
      | _ -> false
      | exception Machine.Exclusion_violation _ -> true)
    seeds

let seeds_sweep = List.init 300 (fun i -> (i * 163) + 7)

let test_pso_separation_tournament () =
  Alcotest.(check bool) "plain tournament breaks under PSO" true
    (pso_breaks Locks.Tournament.family ~seeds:seeds_sweep);
  Alcotest.(check bool) "pso-safe tournament survives" false
    (pso_breaks Locks.Tournament.family_pso ~seeds:seeds_sweep)

let test_pso_separation_bakery () =
  (* bakery's window is narrower; sweep until found *)
  Alcotest.(check bool) "pso-safe bakery survives" false
    (pso_breaks Locks.Bakery.family_pso ~seeds:seeds_sweep)

(* The fence tax of PSO safety: the pso-safe tournament pays one extra
   fence per tree level (entry fences double: 2 log n instead of log n). *)
let test_pso_fence_tax () =
  let fences fam =
    let lock = fam.Locks.Lock_intf.instantiate ~n:8 in
    let _, stats =
      Locks.Harness.run_contended ~model:Config.Cc_wb lock ~n:8 ~k:8
    in
    stats.Locks.Harness.max_fences_per_passage
  in
  let plain = fences Locks.Tournament.family in
  let safe = fences Locks.Tournament.family_pso in
  (* n=8: three levels; entry fences go 3 -> 6, exits unchanged *)
  Alcotest.(check bool)
    (Printf.sprintf "fence tax (%d -> %d)" plain safe)
    true
    (safe >= plain + 3)

(* Cache coherence invariant: after arbitrary random runs, no variable has
   an Exclusive holder alongside any other copy. *)
let prop_cache_coherence =
  QCheck.Test.make ~name:"cache coherence invariant" ~count:60
    QCheck.(triple (int_bound 100_000) (int_bound 9) bool)
    (fun (seed, which, wb) ->
      let fam =
        List.nth Locks.Zoo.all (which mod List.length Locks.Zoo.all)
      in
      let model = if wb then Config.Cc_wb else Config.Cc_wt in
      let lock = fam.Locks.Lock_intf.instantiate ~n:4 in
      let m = Locks.Harness.machine_of_lock ~model lock ~n:4 in
      ignore (Sched.random ~seed ~max_steps:5_000 m);
      Cache.coherence_ok (Machine.cache m))

(* Store atomicity (IRIW): commits publish to a single shared memory, so
   two readers can never observe two independent writes in opposite
   orders — under either TSO or PSO in this model (multi-copy
   atomicity). *)
let test_iriw_store_atomicity () =
  List.iter
    (fun ordering ->
      List.iter
        (fun seed ->
          let layout = Layout.create () in
          let x = Layout.var layout "x" and y = Layout.var layout "y" in
          let obs = Array.make_matrix 2 2 (-1) in
          let cfg =
            Config.make ~model:Config.Cc_wb ~ordering ~check_exclusion:false
              ~n:4 ~layout
              ~entry:(fun p ->
                match p with
                | 0 ->
                    let* () = write x 1 in
                    fence
                | 1 ->
                    let* () = write y 1 in
                    fence
                | r ->
                    let fst_var = if r = 2 then x else y in
                    let snd_var = if r = 2 then y else x in
                    let* a = read fst_var in
                    let* () = fence in
                    let* b = read snd_var in
                    obs.(r - 2).(0) <- a;
                    obs.(r - 2).(1) <- b;
                    unit)
              ~exit_section:(fun _ -> Prog.unit)
              ()
          in
          let m = Machine.create cfg in
          ignore (Sched.random ~seed ~commit_bias:0.4 m);
          (* forbidden: r2 sees x=1,y=0 while r3 sees y=1,x=0 *)
          let anomaly =
            obs.(0).(0) = 1 && obs.(0).(1) = 0 && obs.(1).(0) = 1
            && obs.(1).(1) = 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: no IRIW anomaly"
               (Config.ordering_name ordering)
               seed)
            false anomaly)
        (List.init 40 (fun i -> i * 17)))
    [ Config.Tso; Config.Pso ]

let suite =
  [
    Alcotest.test_case "TSO forbids MP anomaly" `Quick
      test_tso_forbids_mp_anomaly;
    Alcotest.test_case "IRIW store atomicity" `Quick
      test_iriw_store_atomicity;
    Alcotest.test_case "PSO allows MP anomaly" `Quick
      test_pso_allows_mp_anomaly;
    Alcotest.test_case "PSO fence drains" `Quick test_pso_fence_drains;
    Alcotest.test_case "zoo correct under PSO" `Quick
      test_zoo_correct_under_pso;
    QCheck_alcotest.to_alcotest prop_pso_commit_order_irrelevant_distinct_vars;
    QCheck_alcotest.to_alcotest prop_pso_safe_zoo;
    QCheck_alcotest.to_alcotest prop_cache_coherence;
    Alcotest.test_case "TSO/PSO separation: tournament" `Quick
      test_pso_separation_tournament;
    Alcotest.test_case "TSO/PSO separation: bakery variants" `Quick
      test_pso_separation_bakery;
    Alcotest.test_case "PSO fence tax" `Quick test_pso_fence_tax;
  ]
