(* Interval and point contention accounting (paper, Introduction), and the
   adaptivity of the adaptive lock with respect to them. *)

open Tsim
open Locks

let test_solo_contention_is_one () =
  let lock = Ticket.family.Lock_intf.instantiate ~n:8 in
  let _, stats = Harness.run_contended ~model:Config.Cc_wb lock ~n:8 ~k:1 in
  Alcotest.(check int) "interval" 1 stats.Harness.max_interval_contention;
  Alcotest.(check int) "point" 1 stats.Harness.max_point_contention

let test_full_contention () =
  let lock = Ticket.family.Lock_intf.instantiate ~n:6 in
  let _, stats = Harness.run_contended ~model:Config.Cc_wb lock ~n:6 ~k:6 in
  (* round-robin: everyone enters before anyone exits *)
  Alcotest.(check int) "interval" 6 stats.Harness.max_interval_contention;
  Alcotest.(check int) "point" 6 stats.Harness.max_point_contention

(* point <= interval <= total contention, always. *)
let prop_contention_ordering =
  QCheck.Test.make ~name:"point <= interval <= k" ~count:60
    QCheck.(triple (int_range 1 6) (int_bound 10_000) (int_bound 8))
    (fun (k, seed, which) ->
      let fam =
        List.nth Zoo.multi_passage (which mod List.length Zoo.multi_passage)
      in
      let lock = fam.Lock_intf.instantiate ~n:6 in
      let _, stats =
        Harness.run_contended ~model:Config.Cc_wb
          ~schedule:(Harness.Rand seed) lock ~n:6 ~k
      in
      stats.Harness.max_point_contention
      <= stats.Harness.max_interval_contention
      && stats.Harness.max_interval_contention <= k)

(* Sequential passages: point contention stays 1 even with many total
   participants. *)
let test_sequential_point_contention () =
  let lock = Ticket.family.Lock_intf.instantiate ~n:5 in
  let cfg = Harness.config_of_lock ~model:Config.Cc_wb lock ~n:5 in
  let m = Machine.create cfg in
  for p = 0 to 4 do
    assert (Machine.run_until_passages m p ~target:1)
  done;
  for p = 0 to 4 do
    let log = Machine.passage_log m p in
    let s = Vec.get log 0 in
    Alcotest.(check int)
      (Printf.sprintf "p%d point" p)
      1 s.Machine.p_point;
    Alcotest.(check int)
      (Printf.sprintf "p%d interval" p)
      1 s.Machine.p_interval
  done

(* The adaptive-list lock's per-passage RMRs are bounded by a linear
   function of its *interval contention*, not of n. *)
let test_adaptive_rmrs_vs_contention () =
  List.iter
    (fun k ->
      let lock = Adaptive_list.family.Lock_intf.instantiate ~n:64 in
      let m, stats =
        Harness.run_contended ~model:Config.Cc_wb lock ~n:64 ~k
      in
      ignore m;
      Alcotest.(check bool)
        (Printf.sprintf "rmrs (%d) <= 4*interval (%d) + 6 at k=%d"
           stats.Harness.max_rmrs_per_passage
           stats.Harness.max_interval_contention k)
        true
        (stats.Harness.max_rmrs_per_passage
        <= (4 * stats.Harness.max_interval_contention) + 6))
    [ 1; 2; 8; 24 ]

let suite =
  [
    Alcotest.test_case "solo contention = 1" `Quick
      test_solo_contention_is_one;
    Alcotest.test_case "full contention" `Quick test_full_contention;
    Alcotest.test_case "sequential point contention" `Quick
      test_sequential_point_contention;
    Alcotest.test_case "adaptive RMRs vs interval contention" `Quick
      test_adaptive_rmrs_vs_contention;
    QCheck_alcotest.to_alcotest prop_contention_ordering;
  ]
