(* Two-process classics (Dekker, Burns-Lamport): random testing plus
   exhaustive model checking at shrunken spin fuel. *)

open Tsim
open Locks

let run_lock fam schedule =
  let lock = fam.Lock_intf.instantiate ~n:2 in
  Harness.run_contended ~model:Config.Cc_wb ~schedule lock ~n:2 ~k:2

let random_case fam =
  Alcotest.test_case
    (Printf.sprintf "%s: random schedules" fam.Lock_intf.family_name)
    `Quick
    (fun () ->
      List.iter
        (fun seed ->
          let _, stats = run_lock fam (Harness.Rand seed) in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d exclusion" seed)
            true stats.Harness.exclusion_ok;
          Alcotest.(check int)
            (Printf.sprintf "seed %d both passed" seed)
            2 stats.Harness.cs_entries)
        [ 1; 5; 17; 23; 99; 1234 ])

let rr_case fam =
  Alcotest.test_case
    (Printf.sprintf "%s: round robin, multi-passage" fam.Lock_intf.family_name)
    `Quick
    (fun () ->
      let lock = fam.Lock_intf.instantiate ~n:2 in
      let _, stats =
        Harness.run_contended ~model:Config.Cc_wb ~max_passages:3 lock ~n:2
          ~k:2
      in
      Alcotest.(check bool) "exclusion" true stats.Harness.exclusion_ok;
      Alcotest.(check int) "6 passages" 6 stats.Harness.passages)

let verify_case fam =
  Alcotest.test_case
    (Printf.sprintf "%s: exhaustively verified" fam.Lock_intf.family_name)
    `Quick
    (fun () ->
      let lock = fam.Lock_intf.instantiate ~n:2 in
      let cfg = Harness.config_of_lock ~model:Config.Cc_wb lock ~n:2 in
      let r = Mcheck.Explore.explore ~max_nodes:3_000_000 ~spin_fuel:5 cfg in
      Alcotest.(check bool)
        (Printf.sprintf "verified (%d states)" r.Mcheck.Explore.nodes)
        true r.Mcheck.Explore.verified)

let test_dekker_requires_two () =
  Alcotest.check_raises "n=3 rejected"
    (Invalid_argument "Dekker.make: exactly 2 processes") (fun () ->
      ignore (Dekker.make ~n:3))

let suite =
  List.concat_map
    (fun fam -> [ random_case fam; rr_case fam; verify_case fam ])
    Zoo.two_process
  @ [ Alcotest.test_case "arity check" `Quick test_dekker_requires_two ]
