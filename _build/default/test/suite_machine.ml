(* TSO machine semantics: litmus tests, RMR accounting per memory model,
   criticality, awareness, fences, transitions. *)

open Tsim
open Tsim.Ids
open Prog

(* --- store-buffering litmus (the TSO signature) ----------------------- *)

(* p0: x := 1; r0 := y     p1: y := 1; r1 := x
   Under TSO both r0 and r1 may be 0 when commits are delayed. *)
let test_store_buffering () =
  let results = Array.make 2 (-1) in
  let m, v, _ =
    Tutil.machine ~n:2 ~nvars:2 (fun vars p ->
        let mine = vars.(p) and other = vars.(1 - p) in
        let* () = write mine 1 in
        let* r = read other in
        results.(p) <- r;
        unit)
  in
  ignore v;
  (* interleave without ever committing: both processes read 0 *)
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Alcotest.(check int) "p0 reads 0" 0 results.(0);
  Alcotest.(check int) "p1 reads 0" 0 results.(1)

(* With a fence between write and read, at least one process must see the
   other's write in any schedule where both fences complete first. *)
let test_store_buffering_fenced () =
  let results = Array.make 2 (-1) in
  let m, _, _ =
    Tutil.machine ~n:2 ~nvars:2 (fun vars p ->
        let mine = vars.(p) and other = vars.(1 - p) in
        let* () = write mine 1 in
        let* () = fence in
        let* r = read other in
        results.(p) <- r;
        unit)
  in
  (* run p0 fully, then p1: p1 must observe p0's committed write *)
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Alcotest.(check int) "p1 sees p0's write" 1 results.(1)

let test_forwarding_src () =
  let m, _, _ =
    Tutil.machine ~n:1 ~nvars:1 (fun vars _ ->
        let* () = write vars.(0) 7 in
        let* r = read vars.(0) in
        assert (r = 7);
        unit)
  in
  Tutil.run_entry m 0;
  let reads =
    Tutil.find_events m (fun e ->
        match e.Event.kind with Event.Read _ -> true | _ -> false)
  in
  match reads with
  | [ e ] -> (
      match e.Event.kind with
      | Event.Read { src = Event.From_buffer; value = 7; _ } -> ()
      | _ -> Alcotest.fail "expected buffer-forwarded read of 7")
  | _ -> Alcotest.fail "expected exactly one read"

(* A buffered write is invisible to other processes until committed. *)
let test_write_invisible_until_commit () =
  let seen = ref (-1) in
  let m, _, _ =
    Tutil.machine ~n:2 ~nvars:1 (fun vars p ->
        if p = 0 then write vars.(0) 5
        else
          let* r = read vars.(0) in
          seen := r;
          unit)
  in
  (* p0 issues its write (still buffered) *)
  ignore (Machine.step m 0) (* Enter *);
  ignore (Machine.step m 0) (* issue *);
  ignore (Machine.step m 1) (* Enter *);
  ignore (Machine.step m 1) (* read *);
  Alcotest.(check int) "invisible" 0 !seen;
  (* now commit and have a fresh look: use writer/mem *)
  ignore (Machine.commit m 0);
  Alcotest.(check int) "memory updated" 5 (Machine.mem_value m 0);
  Alcotest.(check (option int)) "writer set" (Some 0) (Machine.writer_of m 0)

(* Fence: step-driving a process inside a fence commits its buffer in
   order, then EndFence completes the fence. *)
let test_fence_drains_in_order () =
  let m, _, _ =
    Tutil.machine ~n:1 ~nvars:3 (fun vars _ ->
        let* () = write vars.(2) 1 in
        let* () = write vars.(0) 2 in
        let* () = write vars.(1) 3 in
        fence)
  in
  Tutil.run_entry m 0;
  let commits =
    Tutil.find_events m (fun e -> Event.is_commit e)
    |> List.map (fun e ->
           match e.Event.kind with
           | Event.Commit_write { var; _ } -> var
           | _ -> assert false)
  in
  Alcotest.(check (list int)) "commit order" [ 2; 0; 1 ] commits;
  Alcotest.(check int) "one fence completed" 1 (Machine.fences_completed m 0);
  Alcotest.(check bool) "buffer empty" true
    (Wbuf.is_empty (Machine.proc m 0).Machine.buf)

(* mode(p, E) = write while executing a fence. *)
let test_mode_during_fence () =
  let m, _, _ =
    Tutil.machine ~n:1 ~nvars:1 (fun vars _ ->
        let* () = write vars.(0) 1 in
        fence)
  in
  ignore (Machine.step m 0) (* Enter *);
  ignore (Machine.step m 0) (* issue *);
  Alcotest.(check bool) "read mode" true (Machine.mode m 0 = `Read);
  ignore (Machine.step m 0) (* BeginFence *);
  Alcotest.(check bool) "write mode" true (Machine.mode m 0 = `Write);
  ignore (Machine.step m 0) (* commit *);
  ignore (Machine.step m 0) (* EndFence *);
  Alcotest.(check bool) "read mode again" true (Machine.mode m 0 = `Read)

(* --- RMR accounting --------------------------------------------------- *)

let rmr_count m p = Machine.rmrs m p

(* DSM: local accesses free, remote reads always RMRs. *)
let test_dsm_rmrs () =
  let m, _, _ =
    Tutil.machine ~model:Config.Dsm
      ~owner:(fun i -> if i = 0 then Some 0 else None)
      ~n:2 ~nvars:2
      (fun vars p ->
        if p = 0 then
          (* reads own variable twice: no RMRs *)
          let* _ = read vars.(0) in
          let* _ = read vars.(0) in
          unit
        else
          (* remote variable: every read is an RMR in DSM *)
          let* _ = read vars.(0) in
          let* _ = read vars.(0) in
          unit)
  in
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Alcotest.(check int) "owner free" 0 (rmr_count m 0);
  Alcotest.(check int) "remote pays per read" 2 (rmr_count m 1)

(* CC-WB: first read misses, subsequent reads hit until invalidation. *)
let test_ccwb_read_caching () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:2 ~nvars:1 (fun vars p ->
        if p = 0 then
          let* _ = read vars.(0) in
          let* _ = read vars.(0) in
          let* _ = read vars.(0) in
          unit
        else
          let* () = write vars.(0) 9 in
          fence)
  in
  (* p0: miss, hit, hit *)
  ignore (Machine.step m 0);
  ignore (Machine.step m 0);
  ignore (Machine.step m 0);
  Alcotest.(check int) "one miss" 1 (rmr_count m 0);
  ignore (Machine.step m 0);
  Alcotest.(check int) "still one" 1 (rmr_count m 0)

(* CC-WB: a committed write invalidates other copies; the next read pays. *)
let test_ccwb_invalidation () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:2 ~nvars:1 (fun vars p ->
        if p = 0 then
          let* _ = read vars.(0) in
          let* _ = read vars.(0) in
          unit
        else
          let* () = write vars.(0) 9 in
          fence)
  in
  ignore (Machine.step m 0) (* enter *);
  ignore (Machine.step m 0) (* read: miss *);
  Tutil.run_entry m 1 (* write + fence commits, invalidates p0 *);
  ignore (Machine.step m 0) (* read: miss again *);
  Alcotest.(check int) "two misses" 2 (rmr_count m 0)

(* CC-WB: writer holding Exclusive pays nothing for further writes. *)
let test_ccwb_exclusive_writes () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:1 ~nvars:1 (fun vars _ ->
        let* () = write vars.(0) 1 in
        let* () = fence in
        let* () = write vars.(0) 2 in
        fence)
  in
  Tutil.run_entry m 0;
  Alcotest.(check int) "only first commit pays" 1 (rmr_count m 0)

(* CC-WT: every commit is an RMR. *)
let test_ccwt_writes_always_rmr () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wt ~n:1 ~nvars:1 (fun vars _ ->
        let* () = write vars.(0) 1 in
        let* () = fence in
        let* () = write vars.(0) 2 in
        fence)
  in
  Tutil.run_entry m 0;
  Alcotest.(check int) "both commits pay" 2 (rmr_count m 0)

(* --- criticality (Definition 2) --------------------------------------- *)

let test_critical_reads () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:1 ~nvars:2 (fun vars _ ->
        let* _ = read vars.(0) in
        let* _ = read vars.(0) in
        let* _ = read vars.(1) in
        unit)
  in
  Tutil.run_entry m 0;
  let crits =
    Tutil.find_events m (fun e -> e.Event.critical)
    |> List.map (fun e -> Option.get (Event.accessed_var e))
  in
  (* first read of each variable is critical, the repeat is not *)
  Alcotest.(check (list int)) "critical reads" [ 0; 1 ] crits

let test_critical_writes () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:2 ~nvars:1 (fun vars p ->
        if p = 0 then
          let* () = write vars.(0) 1 in
          let* () = fence in
          (* second commit overwrites own value: non-critical *)
          let* () = write vars.(0) 2 in
          fence
        else
          let* () = write vars.(0) 3 in
          fence)
  in
  Tutil.run_entry m 0;
  Alcotest.(check int) "first commit critical only" 1 (Machine.criticals m 0);
  Tutil.run_entry m 1;
  (* p1 overwrites p0's value: critical *)
  Alcotest.(check int) "overwrite is critical" 1 (Machine.criticals m 1)

(* --- awareness (Definition 1) ----------------------------------------- *)

let test_awareness_direct_and_transitive () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:3 ~nvars:2 (fun vars p ->
        match p with
        | 0 ->
            let* () = write vars.(0) 1 in
            fence
        | 1 ->
            (* read v0 (learn of p0), then write v1 *)
            let* _ = read vars.(0) in
            let* () = write vars.(1) 2 in
            fence
        | _ ->
            let* _ = read vars.(1) in
            unit)
  in
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Tutil.run_entry m 2;
  let aw2 = Machine.awareness m 2 in
  Alcotest.(check bool) "p2 aware of p1" true (Pidset.mem 1 aw2);
  Alcotest.(check bool) "p2 aware of p0 transitively" true (Pidset.mem 0 aw2)

(* Awareness snapshots are taken at *issue* time: information a writer
   gains after issuing a write does not flow through that write. *)
let test_awareness_issue_time () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:3 ~nvars:3 (fun vars p ->
        match p with
        | 0 ->
            let* () = write vars.(0) 1 in
            fence
        | 1 ->
            (* issue write to v1 BEFORE learning about p0 *)
            let* () = write vars.(1) 2 in
            let* _ = read vars.(0) in
            (* p1 is now aware of p0, but the buffered write predates it *)
            fence
        | _ ->
            let* _ = read vars.(1) in
            unit)
  in
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Tutil.run_entry m 2;
  let aw2 = Machine.awareness m 2 in
  Alcotest.(check bool) "p2 aware of p1" true (Pidset.mem 1 aw2);
  Alcotest.(check bool) "p2 NOT aware of p0" false (Pidset.mem 0 aw2)

(* --- RMW semantics ----------------------------------------------------- *)

let test_cas_success_failure () =
  let got = ref [] in
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:2 ~nvars:1 (fun vars _ ->
        let* ok = cas vars.(0) ~expected:0 ~desired:1 in
        got := ok :: !got;
        unit)
  in
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Alcotest.(check (list bool)) "first wins" [ false; true ] !got;
  Alcotest.(check int) "value" 1 (Machine.mem_value m 0)

let test_rmw_drains_buffer () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:1 ~nvars:2 (fun vars _ ->
        let* () = write vars.(1) 5 in
        let* _ = faa vars.(0) 1 in
        unit)
  in
  Tutil.run_entry m 0;
  (* the FAA forced the pending write to commit, and counted one fence *)
  Alcotest.(check int) "buffered write committed" 5 (Machine.mem_value m 1);
  Alcotest.(check int) "one implicit fence" 1 (Machine.fences_completed m 0);
  Alcotest.(check int) "faa applied" 1 (Machine.mem_value m 0)

let test_faa_returns_previous () =
  let seen = ref [] in
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:3 ~nvars:1 (fun vars _ ->
        let* x = faa vars.(0) 1 in
        seen := x :: !seen;
        unit)
  in
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Tutil.run_entry m 2;
  Alcotest.(check (list int)) "tickets" [ 2; 1; 0 ] !seen

let test_swap () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:1 ~nvars:1 (fun vars _ ->
        let* old = swap vars.(0) 42 in
        assert (old = 0);
        unit)
  in
  Tutil.run_entry m 0;
  Alcotest.(check int) "stored" 42 (Machine.mem_value m 0)

(* --- transitions and passages ------------------------------------------ *)

let test_transitions_and_passage_log () =
  let layout = Layout.create () in
  let v = Layout.var layout "x" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~max_passages:2 ~check_exclusion:false
      ~n:1 ~layout
      ~entry:(fun _ ->
        let* () = write v 1 in
        fence)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  assert (Machine.run_until_passages m 0 ~target:2);
  Alcotest.(check int) "two passages" 2 (Machine.passages m 0);
  Alcotest.(check int) "two log entries" 2
    (Vec.length (Machine.passage_log m 0));
  Alcotest.(check bool) "finished" true (Machine.pending m 0 = Machine.P_done);
  let enters = Tutil.count_events m (fun e -> e.Event.kind = Event.Enter) in
  let css = Tutil.count_events m (fun e -> e.Event.kind = Event.Cs) in
  let exits = Tutil.count_events m (fun e -> e.Event.kind = Event.Exit) in
  Alcotest.(check (list int)) "transition counts" [ 2; 2; 2 ]
    [ enters; css; exits ]

(* Criticality is relative to the whole execution, not the passage: the
   first remote read of a variable in a SECOND passage is non-critical if
   the first passage already read it (Definition 2 counts per execution). *)
let test_criticality_across_passages () =
  let layout = Layout.create () in
  let v = Layout.var layout "x" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~max_passages:2 ~check_exclusion:false
      ~n:1 ~layout
      ~entry:(fun _ ->
        let* _ = read v in
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  assert (Machine.run_until_passages m 0 ~target:2);
  Alcotest.(check int) "only the first read is critical" 1
    (Machine.criticals m 0);
  let log = Machine.passage_log m 0 in
  Alcotest.(check int) "passage 1 critical" 1 (Vec.get log 0).Machine.p_criticals;
  Alcotest.(check int) "passage 2 non-critical" 0
    (Vec.get log 1).Machine.p_criticals

(* run_until_special stops exactly at special events *)
let test_run_until_special () =
  let m, _, _ =
    Tutil.machine ~model:Config.Cc_wb ~n:1 ~nvars:2 (fun vars _ ->
        let* () = write vars.(0) 1 in
        (* issue: not special *)
        let* _ = read vars.(0) in
        (* buffer-forwarded: not special *)
        let* _ = read vars.(1) in
        (* first remote read: special *)
        fence)
  in
  ignore (Machine.step m 0) (* Enter, transition, special — get past it *);
  let steps, reason = Machine.run_until_special m 0 in
  Alcotest.(check int) "two non-special events" 2 steps;
  Alcotest.(check bool) "stopped at special" true
    (reason = Machine.At_special);
  Alcotest.(check bool) "pending is the critical read" true
    (Machine.pending m 0 = Machine.P_read 1)

let suite =
  [
    Alcotest.test_case "store buffering litmus" `Quick test_store_buffering;
    Alcotest.test_case "fenced store buffering" `Quick
      test_store_buffering_fenced;
    Alcotest.test_case "store-to-load forwarding" `Quick test_forwarding_src;
    Alcotest.test_case "writes invisible until commit" `Quick
      test_write_invisible_until_commit;
    Alcotest.test_case "fence drains in order" `Quick
      test_fence_drains_in_order;
    Alcotest.test_case "mode during fence" `Quick test_mode_during_fence;
    Alcotest.test_case "DSM RMR accounting" `Quick test_dsm_rmrs;
    Alcotest.test_case "CC-WB read caching" `Quick test_ccwb_read_caching;
    Alcotest.test_case "CC-WB invalidation" `Quick test_ccwb_invalidation;
    Alcotest.test_case "CC-WB exclusive writes" `Quick
      test_ccwb_exclusive_writes;
    Alcotest.test_case "CC-WT writes always RMR" `Quick
      test_ccwt_writes_always_rmr;
    Alcotest.test_case "critical reads" `Quick test_critical_reads;
    Alcotest.test_case "critical writes" `Quick test_critical_writes;
    Alcotest.test_case "awareness direct+transitive" `Quick
      test_awareness_direct_and_transitive;
    Alcotest.test_case "awareness is issue-time" `Quick
      test_awareness_issue_time;
    Alcotest.test_case "cas success/failure" `Quick test_cas_success_failure;
    Alcotest.test_case "rmw drains buffer" `Quick test_rmw_drains_buffer;
    Alcotest.test_case "faa returns previous" `Quick test_faa_returns_previous;
    Alcotest.test_case "swap" `Quick test_swap;
    Alcotest.test_case "transitions and passage log" `Quick
      test_transitions_and_passage_log;
    Alcotest.test_case "criticality across passages" `Quick
      test_criticality_across_passages;
    Alcotest.test_case "run_until_special" `Quick test_run_until_special;
  ]
