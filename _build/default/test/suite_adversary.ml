(* The lower-bound construction: soundness (IN-set invariants hold at every
   step boundary, erasures replay cleanly, exclusion is never violated) and
   effectiveness (forced fences grow linearly with contention for the
   adaptive target; non-adaptive targets saturate at their constant). *)

open Tsim.Ids
open Locks

let run_construction ?(audit = false) ?(min_act = 1) fam ~n =
  let lock = fam.Lock_intf.instantiate ~n in
  let c = Adversary.Construction.create ~audit lock ~n in
  let report = Adversary.Construction.run ~min_act c in
  (c, report)

(* Theorem 1 realized: against the linear-adaptive announce-list lock the
   adversary forces ~k fences at total contention k. *)
let test_adaptive_forced_fences () =
  List.iter
    (fun n ->
      let c, report = run_construction Adaptive_list.family ~n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d no stuck" n)
        true
        (match report.Adversary.Report.outcome with
        | Adversary.Report.Stuck _ -> false
        | _ -> true);
      match Adversary.Witness.extract c with
      | None -> Alcotest.fail "expected a surviving witness"
      | Some w ->
          Alcotest.(check bool)
            (Printf.sprintf "witness valid (n=%d)" n)
            true w.Adversary.Witness.valid;
          Alcotest.(check int)
            (Printf.sprintf "contention = n (n=%d)" n)
            n w.Adversary.Witness.total_contention;
          (* linear in contention: at least contention - 1 fences *)
          Alcotest.(check bool)
            (Printf.sprintf "fences >= n-1 (n=%d, got %d)" n
               w.Adversary.Witness.fences_in_passage)
            true
            (w.Adversary.Witness.fences_in_passage >= n - 1))
    [ 4; 8; 16; 32 ]

(* The read/write adaptive target (splitter fast path) is forced through
   the paper's full three-phase pipeline: forced fences grow linearly with
   contention (about two fences — one per splitter publish — per step). *)
let test_adaptive_tree_forced_fences () =
  List.iter
    (fun n ->
      let _, report = run_construction Adaptive_tree.family ~n in
      (match report.Adversary.Report.outcome with
      | Adversary.Report.Stuck m -> Alcotest.fail ("stuck: " ^ m)
      | _ -> ());
      let contention = report.Adversary.Report.total_contention in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: fences %d >= contention %d" n
           report.Adversary.Report.best_fences contention)
        true
        (report.Adversary.Report.best_fences >= contention
        && contention >= 3);
      (* the pipeline includes genuine read and write rounds *)
      let kinds =
        List.concat_map
          (fun (s : Adversary.Report.step) ->
            List.map
              (fun (r : Adversary.Report.round) -> r.Adversary.Report.kind)
              s.Adversary.Report.rounds)
          report.Adversary.Report.steps
      in
      Alcotest.(check bool) "has read rounds" true
        (List.mem Adversary.Report.Read_round kinds);
      Alcotest.(check bool) "has write rounds" true
        (List.exists
           (function
             | Adversary.Report.Write_low_round
             | Adversary.Report.Write_high_round _ ->
                 true
             | _ -> false)
           kinds))
    [ 12; 24 ]

(* The ticket lock (one FAA, O(1) fences, non-adaptive) cannot be forced:
   the adversary's best is O(1) fences for any N. *)
let test_ticket_not_forceable () =
  List.iter
    (fun n ->
      let _, report = run_construction Ticket.family ~n in
      Alcotest.(check bool)
        (Printf.sprintf "ticket fences O(1) at n=%d (got %d)" n
           report.Adversary.Report.best_fences)
        true
        (report.Adversary.Report.best_fences <= 3))
    [ 8; 32; 64 ]

(* Bakery: constant fences regardless of N (non-adaptive read/write). *)
let test_bakery_not_forceable () =
  List.iter
    (fun n ->
      let _, report = run_construction Bakery.family ~n in
      Alcotest.(check bool)
        (Printf.sprintf "bakery fences O(1) at n=%d (got %d)" n
           report.Adversary.Report.best_fences)
        true
        (report.Adversary.Report.best_fences <= 4))
    [ 8; 32 ]

(* Tournament: forced fences bounded by its O(log n) per-passage fences. *)
let test_tournament_log_bounded () =
  let _, r16 = run_construction Tournament.family ~n:16 in
  let _, r64 = run_construction Tournament.family ~n:64 in
  Alcotest.(check bool)
    (Printf.sprintf "log-ish growth (%d, %d)" r16.Adversary.Report.best_fences
       r64.Adversary.Report.best_fences)
    true
    (r16.Adversary.Report.best_fences <= 16
    && r64.Adversary.Report.best_fences <= 24
    && r64.Adversary.Report.best_fences < 64)

(* Soundness: with auditing on, the IN-set properties (IN1..IN5, IN3 via
   singleton+full-set erasure checks disabled for speed here but covered
   below) hold at every step boundary, for every target. *)
let audit_case fam n =
  Alcotest.test_case
    (Printf.sprintf "%s: IN-set audit (n=%d)" fam.Lock_intf.family_name n)
    `Quick
    (fun () ->
      let c, report = run_construction ~audit:true fam ~n in
      (match report.Adversary.Report.outcome with
      | Adversary.Report.Stuck m -> Alcotest.fail ("stuck: " ^ m)
      | _ -> ());
      Alcotest.(check (list string))
        "no audit failures" []
        (Adversary.Construction.audit_failures c))

(* Per-step structure: fences of the active survivors grow by one per
   induction step against the adaptive target. *)
let test_fence_growth_per_step () =
  let _, report = run_construction Adaptive_list.family ~n:10 in
  let fences =
    List.filter_map
      (fun (s : Adversary.Report.step) ->
        if s.Adversary.Report.act_size > 0 then
          Some s.Adversary.Report.max_fences
        else None)
      report.Adversary.Report.steps
  in
  let rec increasing = function
    | a :: (b :: _ as tl) -> a < b && increasing tl
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "monotone fence growth: %s"
       (String.concat "," (List.map string_of_int fences)))
    true (increasing fences);
  (* exactly one process finishes per step (Fin(H_{i+1}) grows by one) *)
  List.iteri
    (fun i (s : Adversary.Report.step) ->
      Alcotest.(check int)
        (Printf.sprintf "fin after step %d" i)
        (i + 1) s.Adversary.Report.fin_size)
    report.Adversary.Report.steps

(* The witness execution itself satisfies the paper's statement, and its
   trace passes the full IN-set check including IN3 (erasure-stability of
   criticality). *)
let test_witness_trace_sound () =
  let c, _ = run_construction Adaptive_list.family ~n:8 in
  match Adversary.Witness.extract c with
  | None -> Alcotest.fail "no witness"
  | Some w ->
      Alcotest.(check bool) "valid" true w.Adversary.Witness.valid;
      let tr = w.Adversary.Witness.trace in
      Alcotest.(check int) "one active process" 1
        (Pidset.cardinal (Execution.Trace.active tr));
      let act = Execution.Trace.active tr in
      let verdict = Analysis.Inset.check ~in3:true tr act in
      Alcotest.(check bool) "witness trace IN-set (incl. IN3)" true
        verdict.Analysis.Inset.ok

(* Erasing the active processes of the final execution of a construction
   run replays cleanly (Lemma 4 end-to-end). *)
let test_final_erasure_lemma4 () =
  let c, _ = run_construction ~min_act:3 Adaptive_list.family ~n:12 in
  let m = Adversary.Construction.machine c in
  let act = Adversary.Construction.active c in
  Alcotest.(check bool) "at least 3 survivors" true (Pidset.cardinal act >= 3);
  let tr = Execution.Trace.of_machine m in
  (* erase each single active, then all active: all replay cleanly *)
  Pidset.iter
    (fun p ->
      let r = Execution.Erasure.erase (Tsim.Machine.config m) tr (Pidset.singleton p) in
      Alcotest.(check bool)
        (Printf.sprintf "erase p%d ok" p)
        true
        (Execution.Erasure.erase_ok r))
    act;
  let r = Execution.Erasure.erase (Tsim.Machine.config m) tr act in
  Alcotest.(check bool) "erase all actives ok" true (Execution.Erasure.erase_ok r)

(* Ablation (E10): disabling the regularization phase must be *detected* —
   either the step audit reports IN1/IN5 violations or an erasure replay
   diverges. The full construction reports neither (tested above), so this
   pins that the checks are sensitive, not vacuous. *)
let test_ablation_detected () =
  let n = 10 in
  let lock = Adaptive_list.family.Lock_intf.instantiate ~n in
  let c =
    Adversary.Construction.create ~audit:true ~no_regularization:true lock ~n
  in
  let report = Adversary.Construction.run ~min_act:1 c in
  let stuck =
    match report.Adversary.Report.outcome with
    | Adversary.Report.Stuck _ -> true
    | _ -> false
  in
  let violations = Adversary.Construction.audit_failures c in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "breakage detected" true (stuck || violations <> []);
  Alcotest.(check bool) "IN1 violations reported" true
    (List.exists (fun s -> contains_sub s "IN1") violations || stuck)

(* Property: the construction never gets stuck and never breaks exclusion,
   across targets and sizes. *)
let prop_construction_never_stuck =
  QCheck.Test.make ~name:"construction sound across targets and sizes"
    ~count:30
    QCheck.(pair (int_range 2 20) (int_bound 4))
    (fun (n, which) ->
      let fams =
        [
          Adaptive_list.family;
          Ticket.family;
          Bakery.family;
          Tournament.family;
          Fastpath.family;
        ]
      in
      let fam = List.nth fams which in
      let _, report = run_construction fam ~n in
      match report.Adversary.Report.outcome with
      | Adversary.Report.Stuck _ -> false
      | _ -> true)

let suite =
  [
    Alcotest.test_case "adaptive target: forced fences ~ contention" `Quick
      test_adaptive_forced_fences;
    Alcotest.test_case "r/w adaptive-tree: full 3-phase pipeline" `Quick
      test_adaptive_tree_forced_fences;
    Alcotest.test_case "ticket cannot be forced" `Quick
      test_ticket_not_forceable;
    Alcotest.test_case "bakery cannot be forced" `Quick
      test_bakery_not_forceable;
    Alcotest.test_case "tournament log-bounded" `Quick
      test_tournament_log_bounded;
    audit_case Adaptive_list.family 10;
    audit_case Adaptive_tree.family 12;
    audit_case Cascade.family 12;
    audit_case Bakery.family 8;
    audit_case Tournament.family 8;
    audit_case Fastpath.family 8;
    audit_case Ticket.family 8;
    Alcotest.test_case "fence growth per step" `Quick
      test_fence_growth_per_step;
    Alcotest.test_case "witness trace sound (incl. IN3)" `Quick
      test_witness_trace_sound;
    Alcotest.test_case "final erasure (Lemma 4)" `Quick
      test_final_erasure_lemma4;
    Alcotest.test_case "ablation is detected (E10)" `Quick
      test_ablation_detected;
    QCheck_alcotest.to_alcotest prop_construction_never_stuck;
  ]
