(* Write-buffer semantics: FIFO commits, per-variable replacement,
   store-to-load forwarding. *)

open Tsim
open Tsim.Ids

let entry var value = { Wbuf.var; value; aw = Pidset.empty }

let test_fifo () =
  let b = Wbuf.create () in
  Wbuf.push b (entry 0 10);
  Wbuf.push b (entry 1 11);
  Wbuf.push b (entry 2 12);
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Wbuf.vars b);
  Alcotest.(check int) "pop oldest" 0 (Wbuf.pop b).Wbuf.var;
  Alcotest.(check int) "then next" 1 (Wbuf.pop b).Wbuf.var

let test_replacement_in_place () =
  let b = Wbuf.create () in
  Wbuf.push b (entry 0 10);
  Wbuf.push b (entry 1 11);
  Wbuf.push b (entry 0 99);
  (* at most one write per variable, position retained *)
  Alcotest.(check int) "size" 2 (Wbuf.size b);
  Alcotest.(check (list int)) "order kept" [ 0; 1 ] (Wbuf.vars b);
  Alcotest.(check (option int)) "newest value" (Some 99) (Wbuf.find b 0)

let test_forwarding () =
  let b = Wbuf.create () in
  Alcotest.(check (option int)) "miss" None (Wbuf.find b 7);
  Wbuf.push b (entry 7 42);
  Alcotest.(check (option int)) "hit" (Some 42) (Wbuf.find b 7)

(* Property: after any sequence of pushes, the buffer holds at most one
   entry per variable and [find] returns the latest value pushed. *)
let prop_one_per_var =
  QCheck.Test.make ~name:"at most one buffered write per variable" ~count:300
    QCheck.(list (pair (int_bound 5) (int_bound 100)))
    (fun writes ->
      let b = Wbuf.create () in
      List.iter (fun (v, x) -> Wbuf.push b (entry v x)) writes;
      let vars = Wbuf.vars b in
      let distinct = List.sort_uniq compare vars in
      List.length vars = List.length distinct
      && List.for_all
           (fun v ->
             let latest =
               List.fold_left
                 (fun acc (w, x) -> if w = v then Some x else acc)
                 None writes
             in
             Wbuf.find b v = latest)
           distinct)

(* Property: pop order is issue order of the *surviving* writes. *)
let prop_fifo_order =
  QCheck.Test.make ~name:"pop order = first-issue order" ~count:300
    QCheck.(list (int_bound 4))
    (fun vars ->
      let b = Wbuf.create () in
      List.iteri (fun i v -> Wbuf.push b (entry v i)) vars;
      let expected =
        List.sort_uniq compare vars
        |> List.map (fun v ->
               (* first position where v appears *)
               let rec first i = function
                 | [] -> assert false
                 | w :: _ when w = v -> i
                 | _ :: tl -> first (i + 1) tl
               in
               (first 0 vars, v))
        |> List.sort compare |> List.map snd
      in
      let rec drain acc =
        if Wbuf.is_empty b then List.rev acc
        else drain ((Wbuf.pop b).Wbuf.var :: acc)
      in
      drain [] = expected)

let suite =
  [
    Alcotest.test_case "fifo commits" `Quick test_fifo;
    Alcotest.test_case "replacement in place" `Quick test_replacement_in_place;
    Alcotest.test_case "store-to-load forwarding" `Quick test_forwarding;
    QCheck_alcotest.to_alcotest prop_one_per_var;
    QCheck_alcotest.to_alcotest prop_fifo_order;
  ]
