(* Shared helpers for the test suites. *)

open Tsim
open Tsim.Ids

(* A machine whose processes run arbitrary entry programs (trivial exit
   sections, one passage, no exclusion checking) over [nvars] fresh
   variables. [owner i] optionally assigns DSM ownership to variable i. *)
let machine ?(model = Config.Dsm) ?owner ?(rmw_drains = true) ~n ~nvars entry
    =
  let layout = Layout.create () in
  let vars =
    Array.init nvars (fun i ->
        let o = match owner with None -> None | Some f -> f i in
        Layout.var layout ?owner:o (Printf.sprintf "x%d" i))
  in
  let cfg =
    Config.make ~model ~max_passages:1 ~rmw_drains ~check_exclusion:false ~n
      ~layout
      ~entry:(fun p -> entry vars p)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  (Machine.create cfg, vars, cfg)

(* Step process [p] until its pending event is [P_cs] (entry finished) or it
   runs out of fuel. *)
let run_entry ?(fuel = 100_000) m p =
  let rec go fuel =
    if fuel <= 0 then failwith "run_entry: out of fuel"
    else
      match Machine.pending m p with
      | Machine.P_cs | Machine.P_done -> ()
      | _ ->
          ignore (Machine.step m p);
          go (fuel - 1)
  in
  go fuel

(* Drive process [p] through its full passage. *)
let run_passage ?(fuel = 100_000) m p =
  assert (Machine.run_until_passages ~fuel m p ~target:(Machine.passages m p + 1))

let find_events m pred =
  Vec.fold
    (fun acc e -> if pred e then e :: acc else acc)
    [] (Machine.trace m)
  |> List.rev

let count_events m pred = List.length (find_events m pred)

let pidset xs = List.fold_left (fun s p -> Pidset.add p s) Pidset.empty xs
