(* Shared objects (Section 5): counter/stack/queue semantics and the
   Algorithm 1 reduction (Lemma 9). *)

open Tsim
open Prog
open Objects

(* --- plumbing: run n processes each executing one program ------------- *)

let run_programs ?(model = Config.Cc_wb) ?(schedule = `Rr) ~layout ~n progs =
  let cfg =
    Config.make ~model ~check_exclusion:false ~n ~layout
      ~entry:(fun p -> progs p)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (match schedule with
  | `Rr -> ignore (Sched.round_robin m)
  | `Rand seed -> ignore (Sched.random ~seed m));
  m

(* --- counters --------------------------------------------------------- *)

let counter_distinct_values make_counter name =
  List.iter
    (fun (schedule, tag) ->
      let layout = Layout.create () in
      let c = make_counter layout in
      let n = 8 in
      let results = Array.make n (-1) in
      let m =
        run_programs ~schedule ~layout ~n (fun p ->
            let* v = c.Counter.fetch_inc p in
            results.(p) <- v;
            unit)
      in
      let sorted = List.sort compare (Array.to_list results) in
      Alcotest.(check (list int))
        (Printf.sprintf "%s %s: distinct 0..7" name tag)
        (List.init n Fun.id) sorted;
      Alcotest.(check int)
        (Printf.sprintf "%s %s: final value" name tag)
        n (Counter.value m c))
    [ (`Rr, "rr"); (`Rand 3, "rand3"); (`Rand 77, "rand77") ]

let test_counter_faa () = counter_distinct_values Counter.make_faa "faa"
let test_counter_cas () = counter_distinct_values Counter.make_cas "cas"

(* m-limited-use counter: exactly m values then [exhausted]. *)
let test_limited_counter () =
  let layout = Layout.create () in
  let c = Counter.make_limited layout ~m:3 in
  let results = Array.make 5 (-9) in
  let _ =
    run_programs ~layout ~n:5 (fun p ->
        let* v = c.Counter.fetch_inc p in
        results.(p) <- v;
        unit)
  in
  let sorted = List.sort compare (Array.to_list results) in
  Alcotest.(check (list int)) "3 values then exhausted"
    [ Counter.exhausted; Counter.exhausted; 0; 1; 2 ]
    sorted

(* Negative paths: node budget / capacity errors. *)
let test_object_limits () =
  let layout = Layout.create () in
  let st = Ostack.make layout ~n:1 ~ops_per_proc:1 in
  (* second push exceeds the node budget at program-construction time *)
  let _ = Ostack.push st 0 1 in
  Alcotest.check_raises "stack node budget"
    (Invalid_argument "stack: process exceeded its node budget") (fun () ->
      ignore (Ostack.push st 0 2));
  let layout = Layout.create () in
  Alcotest.check_raises "queue prefill"
    (Invalid_argument "queue: prefill exceeds capacity") (fun () ->
      ignore (Oqueue.make ~prefill:[ 1; 2; 3 ] layout ~capacity:2))

(* --- stack ------------------------------------------------------------ *)

let test_stack_lifo_sequential () =
  let layout = Layout.create () in
  let st = Ostack.make layout ~n:1 ~ops_per_proc:8 in
  let popped = ref [] in
  let _ =
    run_programs ~layout ~n:1 (fun p ->
        let* () = seq (List.map (fun v -> Ostack.push st p v) [ 1; 2; 3 ]) in
        let rec drain k =
          if k = 0 then unit
          else
            let* v = Ostack.pop st p in
            popped := v :: !popped;
            drain (k - 1)
        in
        drain 4)
  in
  Alcotest.(check (list int)) "LIFO + empty" [ 3; 2; 1; Ostack.empty_value ]
    (List.rev !popped)

let test_stack_concurrent_push_pop () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let n = 6 in
      let st = Ostack.make layout ~n ~ops_per_proc:4 in
      let popped = ref [] in
      let _ =
        run_programs ~schedule:(`Rand seed) ~layout ~n (fun p ->
            if p < 3 then
              (* pushers: each pushes 4 distinct values *)
              seq (List.map (fun k -> Ostack.push st p ((p * 10) + k)) [ 1; 2; 3; 4 ])
            else
              let rec drain k acc =
                if k = 0 then (
                  popped := acc @ !popped;
                  unit)
                else
                  let* v = Ostack.pop st p in
                  drain (k - 1) (if v = Ostack.empty_value then acc else v :: acc)
              in
              drain 6 [])
      in
      (* every popped value was pushed exactly once (no duplication/loss
         among popped items) *)
      let popped = !popped in
      let distinct = List.sort_uniq compare popped in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: no duplicates" seed)
        (List.length popped) (List.length distinct);
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: %d was pushed" seed v)
            true
            (List.mem v [ 1; 2; 3; 4; 11; 12; 13; 14; 21; 22; 23; 24 ]))
        popped)
    [ 5; 23; 42 ]

(* --- queue ------------------------------------------------------------ *)

let test_queue_fifo_sequential () =
  let layout = Layout.create () in
  let q = Oqueue.make layout ~capacity:8 in
  let out = ref [] in
  let _ =
    run_programs ~layout ~n:1 (fun _ ->
        let* () = seq (List.map (fun v -> Oqueue.enqueue q v) [ 5; 6; 7 ]) in
        let rec drain k =
          if k = 0 then unit
          else
            let* v = Oqueue.try_dequeue q in
            out := v :: !out;
            drain (k - 1)
        in
        drain 4)
  in
  Alcotest.(check (list int)) "FIFO + empty" [ 5; 6; 7; Oqueue.empty_value ]
    (List.rev !out)

let test_queue_concurrent () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let n = 6 in
      let q = Oqueue.make layout ~capacity:32 in
      let got = Array.make n [] in
      let _ =
        run_programs ~schedule:(`Rand seed) ~layout ~n (fun p ->
            if p < 3 then
              seq
                (List.map (fun k -> Oqueue.enqueue q ((p * 10) + k)) [ 1; 2; 3 ])
            else
              let rec drain k =
                if k = 0 then unit
                else
                  let* v = Oqueue.dequeue_nonempty q in
                  got.(p) <- v :: got.(p);
                  drain (k - 1)
              in
              drain 3)
      in
      let all = List.concat (Array.to_list got) in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: 9 dequeues" seed)
        9 (List.length all);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: distinct" seed)
        9
        (List.length (List.sort_uniq compare all));
      (* per-producer FIFO: each dequeuer receives any one producer's
         values in increasing order globally (queue is FIFO per slot) *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: values legal" seed)
        true
        (List.for_all
           (fun v -> List.mem v [ 1; 2; 3; 11; 12; 13; 21; 22; 23 ])
           all))
    [ 2; 19; 101 ]

(* Pre-filled queue/stack behave as N-limited-use counters. *)
let test_prefilled_objects_as_counters () =
  let layout = Layout.create () in
  let n = 5 in
  let qp = Oqueue.dequeue_provider layout ~n in
  let results = Array.make n (-1) in
  let _ =
    run_programs ~schedule:(`Rand 9) ~layout ~n (fun p ->
        let* v = qp.Obj_intf.fetch_inc p in
        results.(p) <- v;
        unit)
  in
  Alcotest.(check (list int)) "queue f&i" (List.init n Fun.id)
    (List.sort compare (Array.to_list results));
  let layout = Layout.create () in
  let sp = Ostack.pop_provider layout ~n in
  let results = Array.make n (-1) in
  let _ =
    run_programs ~schedule:(`Rand 11) ~layout ~n (fun p ->
        let* v = sp.Obj_intf.fetch_inc p in
        results.(p) <- v;
        unit)
  in
  Alcotest.(check (list int)) "stack f&i" (List.init n Fun.id)
    (List.sort compare (Array.to_list results))

(* --- Lemma 9: Algorithm 1 --------------------------------------------- *)

let reduction_case (fam : Locks.Lock_intf.family) =
  Alcotest.test_case
    (Printf.sprintf "%s: exclusion+progress" fam.Locks.Lock_intf.family_name)
    `Quick
    (fun () ->
      List.iter
        (fun model ->
          let lock = fam.Locks.Lock_intf.instantiate ~n:6 in
          let _, stats =
            Locks.Harness.run_contended ~model lock ~n:6 ~k:6
          in
          Alcotest.(check bool) "exclusion" true stats.Locks.Harness.exclusion_ok;
          Alcotest.(check bool) "completed" true stats.Locks.Harness.completed;
          Alcotest.(check int) "all CSs" 6 stats.Locks.Harness.cs_entries;
          (* random schedules too *)
          List.iter
            (fun seed ->
              let lock = fam.Locks.Lock_intf.instantiate ~n:5 in
              let _, stats =
                Locks.Harness.run_contended ~model
                  ~schedule:(Locks.Harness.Rand seed) lock ~n:5 ~k:5
              in
              Alcotest.(check bool) "exclusion (rand)" true
                stats.Locks.Harness.exclusion_ok;
              Alcotest.(check int) "all CSs (rand)" 5
                stats.Locks.Harness.cs_entries)
            [ 3; 31 ])
        [ Config.Dsm; Config.Cc_wt; Config.Cc_wb ])

(* Lemma 9's complexity statement: the mutex's passage complexity equals
   the object operation's complexity up to an additive constant. We verify
   the additive-constant gap between the FAA-counter mutex passage and a
   bare FAA operation. *)
let test_lemma9_complexity_transfer () =
  let n = 8 in
  (* bare object operation cost *)
  let layout = Layout.create () in
  let c = Counter.make_faa layout in
  let m =
    run_programs ~layout ~n (fun p ->
        let* _ = c.Counter.fetch_inc p in
        unit)
  in
  let bare_max =
    List.fold_left max 0
      (List.init n (fun p -> Machine.rmrs m p))
  in
  (* mutex passage cost *)
  let lock = Mutex_from_object.from_counter_faa ~n in
  let _, stats =
    Locks.Harness.run_contended ~model:Config.Cc_wb lock ~n ~k:n
  in
  Alcotest.(check bool)
    (Printf.sprintf "additive constant (bare %d, passage max %d)" bare_max
       stats.Locks.Harness.max_rmrs_per_passage)
    true
    (stats.Locks.Harness.max_rmrs_per_passage <= bare_max + 8);
  Alcotest.(check bool)
    (Printf.sprintf "fences O(1) (max %d)" stats.Locks.Harness.max_fences_per_passage)
    true
    (stats.Locks.Harness.max_fences_per_passage <= 5)

(* Property: the counter from any provider hands out distinct values under
   random schedules. *)
let prop_provider_distinct =
  QCheck.Test.make ~name:"providers are linearizable counters" ~count:40
    QCheck.(pair (int_range 2 8) (int_bound 10_000))
    (fun (n, seed) ->
      List.for_all
        (fun builder ->
          let layout = Layout.create () in
          let p = builder layout ~n in
          let results = Array.make n (-1) in
          let _ =
            run_programs ~schedule:(`Rand seed) ~layout ~n (fun q ->
                let* v = p.Obj_intf.fetch_inc q in
                results.(q) <- v;
                unit)
          in
          List.sort compare (Array.to_list results) = List.init n Fun.id)
        [
          Counter.faa_provider;
          Counter.cas_provider;
          Oqueue.dequeue_provider;
          Ostack.pop_provider;
        ])

let suite =
  [
    Alcotest.test_case "counter faa" `Quick test_counter_faa;
    Alcotest.test_case "counter cas" `Quick test_counter_cas;
    Alcotest.test_case "limited-use counter" `Quick test_limited_counter;
    Alcotest.test_case "object limits" `Quick test_object_limits;
    Alcotest.test_case "stack LIFO" `Quick test_stack_lifo_sequential;
    Alcotest.test_case "stack concurrent" `Quick
      test_stack_concurrent_push_pop;
    Alcotest.test_case "queue FIFO" `Quick test_queue_fifo_sequential;
    Alcotest.test_case "queue concurrent" `Quick test_queue_concurrent;
    Alcotest.test_case "prefilled objects = counters" `Quick
      test_prefilled_objects_as_counters;
  ]
  @ List.map reduction_case Mutex_from_object.families
  @ [
      Alcotest.test_case "Lemma 9 complexity transfer" `Quick
        test_lemma9_complexity_transfer;
      QCheck_alcotest.to_alcotest prop_provider_distinct;
    ]
