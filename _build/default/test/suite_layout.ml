(* Layout and config edge cases, plus additional bounds coverage. *)

open Tsim

let test_layout_basics () =
  let l = Layout.create () in
  Alcotest.(check int) "empty" 0 (Layout.size l);
  let a = Layout.var l ~owner:2 ~init:7 "a" in
  let arr = Layout.array l ~owner_fn:(fun i -> Some i) "b" 3 in
  let m = Layout.matrix l ~init:1 "c" 2 2 in
  Alcotest.(check int) "size" 8 (Layout.size l);
  Alcotest.(check string) "name" "a" (Layout.name l a);
  Alcotest.(check int) "init" 7 (Layout.init l a);
  Alcotest.(check (option int)) "owner" (Some 2) (Layout.owner l a);
  Alcotest.(check string) "array naming" "b[1]" (Layout.name l arr.(1));
  Alcotest.(check string) "matrix naming" "c[1][0]" (Layout.name l m.(1).(0));
  Alcotest.(check int) "matrix init" 1 (Layout.init l m.(0).(1));
  Alcotest.(check bool) "local" true (Layout.is_local l 2 a);
  Alcotest.(check bool) "remote" true (Layout.is_remote l 0 a);
  Alcotest.(check bool) "unowned remote to all" true
    (Layout.is_remote l 0 m.(0).(0))

let test_machine_initial_values () =
  let l = Layout.create () in
  let v = Layout.var l ~init:42 "v" in
  let cfg =
    Config.make ~check_exclusion:false ~n:1 ~layout:l
      ~entry:(fun _ -> Prog.unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  Alcotest.(check int) "initial value" 42 (Machine.mem_value m v);
  Alcotest.(check (option int)) "no writer" None (Machine.writer_of m v)

let test_config_rejects_zero_procs () =
  let l = Layout.create () in
  Alcotest.check_raises "n=0" (Invalid_argument "Config.make: n must be positive")
    (fun () ->
      ignore
        (Config.make ~n:0 ~layout:l
           ~entry:(fun _ -> Prog.unit)
           ~exit_section:(fun _ -> Prog.unit)
           ()))

let test_n1_machine_full_passage () =
  (* a single process, no variables at all *)
  let l = Layout.create () in
  let cfg =
    Config.make ~n:1 ~layout:l
      ~entry:(fun _ -> Prog.unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  Alcotest.(check bool) "finishes" true (Machine.run_until_passages m 0 ~target:1);
  Alcotest.(check int) "3 transition events" 3 (Vec.length (Machine.trace m))

(* Theorem1.claim and Theorem3 recurrences. *)
let test_bounds_claim_and_recurrences () =
  let f = Bounds.Adaptivity.linear 1.0 in
  let c = Bounds.Theorem1.claim ~f ~log2_n:65536.0 () in
  Alcotest.(check int) "claim consistent"
    (c.Bounds.Theorem1.forced_fences + 1)
    c.Bounds.Theorem1.contention;
  (* recurrences decrease Act as the paper's conditions dictate *)
  Alcotest.(check bool) "read step" true
    (Bounds.Theorem3.read_phase_step 100.0 < 100.0);
  Alcotest.(check bool) "write step" true
    (Bounds.Theorem3.write_phase_step ~delta:2 ~k:1 100.0 < 100.0);
  Alcotest.(check bool) "reg step" true
    (Bounds.Theorem3.regularization_step 100.0 = 99.0);
  (* polynomial / constant adaptivity families are usable *)
  let p = Bounds.Adaptivity.polynomial ~c:1.0 ~d:2.0 in
  Alcotest.(check bool) "poly eval" true (Bounds.Adaptivity.eval p 3 = 9.0);
  let k = Bounds.Adaptivity.constant 5.0 in
  Alcotest.(check bool) "const eval" true (Bounds.Adaptivity.eval k 99 = 5.0)

(* Corollaries.sweep structure. *)
let test_corollaries_sweep () =
  let f = Bounds.Adaptivity.linear 1.0 in
  let rows =
    Bounds.Corollaries.sweep ~f
      ~closed_form:(fun ~log2_n ->
        Bounds.Corollaries.cor2_closed_form ~c:1.0 ~log2_n)
      [ 64.; 1024. ]
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Bounds.Corollaries.row) ->
      Alcotest.(check bool) "forced >= closed - 1" true
        (float_of_int r.Bounds.Corollaries.forced
        >= r.Bounds.Corollaries.closed_form -. 1.0))
    rows

(* Random-subset IN3 sampling over a real construction run (the full
   exponential check is infeasible; this samples it). *)
let test_in3_random_subsets_on_construction () =
  let lock = Locks.Adaptive_list.family.Locks.Lock_intf.instantiate ~n:10 in
  let c = Adversary.Construction.create lock ~n:10 in
  ignore (Adversary.Construction.run ~min_act:4 c);
  let tr = Execution.Trace.of_machine (Adversary.Construction.machine c) in
  let act = Adversary.Construction.active c in
  let s = Analysis.Flow.analyze tr in
  let rng = Rng.create 7 in
  for _ = 1 to 12 do
    let subset =
      Tsim.Ids.Pidset.filter (fun _ -> Rng.bool rng) act
    in
    let viols = Analysis.Inset.check_in3_subset tr s subset in
    Alcotest.(check int)
      (Printf.sprintf "IN3 holds for random subset (|Y|=%d)"
         (Tsim.Ids.Pidset.cardinal subset))
      0 (List.length viols)
  done

let suite =
  [
    Alcotest.test_case "layout basics" `Quick test_layout_basics;
    Alcotest.test_case "machine initial values" `Quick
      test_machine_initial_values;
    Alcotest.test_case "config rejects n=0" `Quick
      test_config_rejects_zero_procs;
    Alcotest.test_case "n=1 trivial passage" `Quick
      test_n1_machine_full_passage;
    Alcotest.test_case "bounds claim + recurrences" `Quick
      test_bounds_claim_and_recurrences;
    Alcotest.test_case "corollaries sweep" `Quick test_corollaries_sweep;
    Alcotest.test_case "IN3 random subsets (construction)" `Quick
      test_in3_random_subsets_on_construction;
  ]
