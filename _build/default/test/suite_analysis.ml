(* Flow reconstruction, IN-set predicates and ordered-execution checks. *)

open Tsim
open Tsim.Ids
open Execution
open Prog

(* Scenario machine: n processes, each writes its own announce cell then
   optionally reads somebody else's. *)
let scenario ~n ~reads entry_extra =
  let layout = Layout.create () in
  let cells = Layout.array layout ~owner_fn:(fun i -> Some i) "cell" n in
  let cfg =
    Config.make ~model:Config.Dsm ~check_exclusion:false ~n ~layout
      ~entry:(fun p ->
        let* () = write cells.(p) (p + 1) in
        let* () = fence in
        let* () =
          match List.assoc_opt p reads with
          | Some q ->
              let* _ = read cells.(q) in
              unit
          | None -> unit
        in
        entry_extra cells p)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  (cfg, Machine.create cfg, cells)

let test_flow_matches_machine () =
  let _, m, _ = scenario ~n:4 ~reads:[ (1, 0); (3, 2) ] (fun _ _ -> Prog.unit) in
  for p = 0 to 3 do
    Tutil.run_entry m p
  done;
  let t = Trace.of_machine m in
  let s = Analysis.Flow.analyze t in
  (* recomputed criticality agrees with the machine's online flags *)
  Alcotest.(check (list int)) "criticality agrees" []
    (Analysis.Flow.criticality_disagreements t s);
  (* awareness agrees *)
  for p = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "awareness of p%d agrees" p)
      true
      (Pidset.equal
         (Pidset.add p (Analysis.Flow.get_aw s p))
         (Machine.awareness m p))
  done;
  Alcotest.(check bool) "p1 aware of p0" true
    (Pidset.mem 0 (Analysis.Flow.get_aw s 1));
  Alcotest.(check bool) "p1 not aware of p2" false
    (Pidset.mem 2 (Analysis.Flow.get_aw s 1))

let test_inset_accepts_independent () =
  (* all processes write their own cell, nobody reads anybody: everyone
     active and mutually invisible -> Act(E) is an IN-set, E regular *)
  let _, m, _ = scenario ~n:4 ~reads:[] (fun _ _ -> Prog.unit) in
  for p = 0 to 3 do
    ignore (Machine.step m p) (* Enter *);
    ignore (Machine.step m p) (* issue *)
  done;
  let t = Trace.of_machine m in
  let v = Analysis.Inset.check_regular t in
  Alcotest.(check bool) "regular" true v.Analysis.Inset.ok

let test_inset_rejects_awareness () =
  (* p1 reads p0's committed cell: p1 is aware of p0, so a set containing
     p0 (with p1 present) violates IN1 *)
  let _, m, _ = scenario ~n:2 ~reads:[ (1, 0) ] (fun _ _ -> Prog.unit) in
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  let t = Trace.of_machine m in
  let v = Analysis.Inset.check t (Tutil.pidset [ 0; 1 ]) in
  Alcotest.(check bool) "IN1 violated" false v.Analysis.Inset.ok;
  Alcotest.(check bool) "names IN1" true
    (List.exists
       (fun viol -> viol.Analysis.Inset.property = "IN1")
       v.Analysis.Inset.violations)

let test_inset_in2_rejects_finished () =
  let _, m, _ = scenario ~n:2 ~reads:[] (fun _ _ -> Prog.unit) in
  assert (Machine.run_until_passages m 0 ~target:1);
  ignore (Machine.step m 1);
  ignore (Machine.step m 1);
  let t = Trace.of_machine m in
  (* p0 finished: not even in Act, flagged via IN0 *)
  let v = Analysis.Inset.check t (Tutil.pidset [ 0 ]) in
  Alcotest.(check bool) "rejected" false v.Analysis.Inset.ok

let test_inset_in4_remote_owned_by_active () =
  (* p1 reads p0's DSM-local cell while p0 is active: IN4 violation *)
  let _, m, _ = scenario ~n:2 ~reads:[ (1, 0) ] (fun _ _ -> Prog.unit) in
  ignore (Machine.step m 0) (* p0 Enter: active *);
  ignore (Machine.step m 0) (* issue *);
  Tutil.run_entry m 1;
  let t = Trace.of_machine m in
  let v = Analysis.Inset.check ~in3:false t (Tutil.pidset [ 1 ]) in
  Alcotest.(check bool) "IN4 violated" true
    (List.exists
       (fun viol -> viol.Analysis.Inset.property = "IN4")
       v.Analysis.Inset.violations)

let test_in5_violation () =
  (* two active processes access a shared variable last written by an
     invisible candidate *)
  let layout = Layout.create () in
  let v = Layout.var layout "shared" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:3 ~layout
      ~entry:(fun p ->
        if p = 0 then
          let* () = write v 1 in
          fence
        else
          let* _ = read v in
          unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  Tutil.run_entry m 0;
  Tutil.run_entry m 1;
  Tutil.run_entry m 2;
  let t = Trace.of_machine m in
  let verdict = Analysis.Inset.check ~in3:false t (Tutil.pidset [ 0 ]) in
  Alcotest.(check bool) "IN5 violated" true
    (List.exists
       (fun viol -> viol.Analysis.Inset.property = "IN5")
       verdict.Analysis.Inset.violations)

let test_in3_detects_writer_chain () =
  (* p0 commits to v, then invisible p1 commits to v, then p0 commits
     again: in E p0's second commit is critical (writer = p1); erasing p1
     makes it non-critical. *)
  let layout = Layout.create () in
  let v = Layout.var layout "shared" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:2 ~layout
      ~entry:(fun p ->
        if p = 0 then
          let* () = write v 1 in
          let* () = fence in
          let* () = write v 2 in
          fence
        else
          let* () = write v 9 in
          fence)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (* interleave: p0 first commit, p1 commit, p0 second commit *)
  ignore (Machine.step m 0) (* Enter *);
  ignore (Machine.step m 0) (* issue v:=1 *);
  ignore (Machine.step m 0) (* BeginFence *);
  ignore (Machine.step m 0) (* commit *);
  ignore (Machine.step m 0) (* EndFence *);
  ignore (Machine.step m 1);
  ignore (Machine.step m 1);
  ignore (Machine.step m 1);
  ignore (Machine.step m 1);
  ignore (Machine.step m 1) (* p1 committed 9 *);
  Tutil.run_entry m 0 (* p0 commits 2, critical *);
  let t = Trace.of_machine m in
  let s = Analysis.Flow.analyze t in
  let viols = Analysis.Inset.check_in3_subset t s (Pidset.singleton 1) in
  Alcotest.(check bool) "IN3 violation found" true (viols <> [])

let test_ordered_clauses () =
  (* Build a trace where v0 satisfies (a), v1 satisfies (b). *)
  let layout = Layout.create () in
  let v0 = Layout.var layout "v0" in
  let v1 = Layout.var layout "v1" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:2 ~layout
      ~entry:(fun p ->
        if p = 0 then
          let* () = write v0 1 in
          fence
        else
          let* () = write v1 2 in
          let* () = fence in
          let* _ = read v1 in
          unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  assert (Machine.run_until_passages m 0 ~target:1) (* p0 finished: (a) *);
  Tutil.run_entry m 1 (* p1 active, sole accessor of v1: (b) *);
  let t = Trace.of_machine m in
  let verdict = Analysis.Ordered.check t in
  Alcotest.(check bool) "ordered" true verdict.Analysis.Ordered.ok

let test_ordered_clause_c () =
  (* Both processes committed to the same variable, in ID order, inside
     still-open fences: clause (c). *)
  let layout = Layout.create () in
  let v = Layout.var layout "v" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:2 ~layout
      ~entry:(fun _ ->
        let* () = write v 1 in
        let* () = fence in
        let* () = write v 2 in
        fence)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (* both processes: Enter, issue, BeginFence *)
  for p = 0 to 1 do
    ignore (Machine.step m p);
    ignore (Machine.step m p);
    ignore (Machine.step m p)
  done;
  (* commits in ID order, fences left open *)
  ignore (Machine.step m 0);
  ignore (Machine.step m 1);
  let t = Trace.of_machine m in
  let verdict = Analysis.Ordered.check t in
  Alcotest.(check bool) "clause (c) holds" true verdict.Analysis.Ordered.ok;
  (* close p0's fence: p0 no longer "executing the fence in which it
     committed" — clause (c) must now fail *)
  ignore (Machine.step m 0) (* EndFence *);
  let t = Trace.of_machine m in
  let verdict = Analysis.Ordered.check t in
  Alcotest.(check bool) "violated after EndFence" false
    verdict.Analysis.Ordered.ok

(* Property: for machines whose processes only touch private variables,
   any subset of active processes forms an IN-set. *)
let prop_private_vars_inset =
  QCheck.Test.make ~name:"private-variable processes form IN-sets" ~count:40
    QCheck.(int_range 2 6)
    (fun n ->
      let _, m, _ = scenario ~n ~reads:[] (fun _ _ -> Prog.unit) in
      for p = 0 to n - 1 do
        ignore (Machine.step m p);
        ignore (Machine.step m p)
      done;
      let t = Trace.of_machine m in
      (Analysis.Inset.check_regular t).Analysis.Inset.ok)

let suite =
  [
    Alcotest.test_case "flow matches machine" `Quick test_flow_matches_machine;
    Alcotest.test_case "IN-set accepts independent" `Quick
      test_inset_accepts_independent;
    Alcotest.test_case "IN1 rejects awareness" `Quick
      test_inset_rejects_awareness;
    Alcotest.test_case "IN0/IN2 rejects finished" `Quick
      test_inset_in2_rejects_finished;
    Alcotest.test_case "IN4 remote-owned-by-active" `Quick
      test_inset_in4_remote_owned_by_active;
    Alcotest.test_case "IN5 invisible last writer" `Quick test_in5_violation;
    Alcotest.test_case "IN3 writer chain" `Quick test_in3_detects_writer_chain;
    Alcotest.test_case "ordered clauses a/b" `Quick test_ordered_clauses;
    Alcotest.test_case "ordered clause c" `Quick test_ordered_clause_c;
    QCheck_alcotest.to_alcotest prop_private_vars_inset;
  ]
