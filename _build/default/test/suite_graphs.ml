(* Graphs and the constructive Turán bound. *)

let test_basic_graph () =
  let g = Graphs.Graph.create [ 1; 2; 3; 4 ] in
  Graphs.Graph.add_edge g 1 2;
  Graphs.Graph.add_edge g 2 3;
  Graphs.Graph.add_edge g 1 2;
  (* duplicate ignored *)
  Graphs.Graph.add_edge g 3 3;
  (* self-loop ignored *)
  Alcotest.(check int) "order" 4 (Graphs.Graph.order g);
  Alcotest.(check int) "size" 2 (Graphs.Graph.size g);
  Alcotest.(check bool) "edge" true (Graphs.Graph.has_edge g 2 1);
  Alcotest.(check bool) "no edge" false (Graphs.Graph.has_edge g 1 4);
  Alcotest.(check int) "degree" 2 (Graphs.Graph.degree g 2)

let test_turan_on_clique () =
  let vs = List.init 6 Fun.id in
  let g = Graphs.Graph.create vs in
  List.iter (fun u -> List.iter (fun v -> Graphs.Graph.add_edge g u v) vs) vs;
  let s = Graphs.Turan.independent_set_checked g in
  Alcotest.(check int) "clique -> singleton" 1 (List.length s)

let test_turan_on_empty_graph () =
  let vs = List.init 10 Fun.id in
  let g = Graphs.Graph.create vs in
  let s = Graphs.Turan.independent_set_checked g in
  Alcotest.(check int) "all vertices" 10 (List.length s)

let test_turan_on_path () =
  (* path of 7 vertices: independence number 4, avg degree 12/7 *)
  let vs = List.init 7 Fun.id in
  let g = Graphs.Graph.create vs in
  for i = 0 to 5 do
    Graphs.Graph.add_edge g i (i + 1)
  done;
  let s = Graphs.Turan.independent_set_checked g in
  Alcotest.(check bool) "at least ceil(7/(12/7+1)) = 3" true
    (List.length s >= 3);
  Alcotest.(check bool) "independent" true (Graphs.Graph.is_independent g s)

(* Property: on random graphs, the greedy set is independent and meets the
   Turán bound. *)
let prop_turan_bound =
  QCheck.Test.make ~name:"greedy meets Turán bound on random graphs"
    ~count:100
    QCheck.(pair (int_range 1 30) (list (pair (int_bound 29) (int_bound 29))))
    (fun (n, edges) ->
      let vs = List.init n Fun.id in
      let g = Graphs.Graph.create vs in
      List.iter
        (fun (u, v) -> if u < n && v < n then Graphs.Graph.add_edge g u v)
        edges;
      let s = Graphs.Turan.independent_set g in
      Graphs.Graph.is_independent g s
      && List.length s
         >= Graphs.Turan.guaranteed_size ~order:n
              ~avg_degree:(Graphs.Graph.average_degree g))

let suite =
  [
    Alcotest.test_case "basic graph ops" `Quick test_basic_graph;
    Alcotest.test_case "Turán: clique" `Quick test_turan_on_clique;
    Alcotest.test_case "Turán: empty graph" `Quick test_turan_on_empty_graph;
    Alcotest.test_case "Turán: path" `Quick test_turan_on_path;
    QCheck_alcotest.to_alcotest prop_turan_bound;
  ]
