(* Coordination substrate: atomic snapshots, barriers, and the wait-for
   diagnostics. *)

open Tsim
open Tsim.Prog

(* --- snapshot ----------------------------------------------------------- *)

(* A scan must never observe a "torn" state. Updaters write paired values
   (each process writes v to its segment while a ghost variable records
   committed updates); we check every scan output was a reachable state:
   for single-writer segments it suffices that each scanned value is one
   the owner actually wrote, and that scans are monotone (a later scan
   never observes an older segment value than an earlier scan did). *)
let test_snapshot_monotone_scans () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let n = 4 in
      let snap = Objects.Snapshot.make layout ~n in
      let scans = ref [] in
      let cfg =
        Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
          ~entry:(fun p ->
            if p < 2 then
              (* updaters: bump own segment 3 times *)
              seq
                (List.init 3 (fun i ->
                     Objects.Snapshot.update snap p ((10 * (i + 1)) + p)))
            else
              (* scanners: two scans each *)
              let* s1 = Objects.Snapshot.scan snap in
              let* s2 = Objects.Snapshot.scan snap in
              scans := (p, s1, s2) :: !scans;
              unit)
          ~exit_section:(fun _ -> Prog.unit)
          ()
      in
      let m = Machine.create cfg in
      ignore (Sched.random ~seed m);
      List.iter
        (fun (_, s1, s2) ->
          (* values come from the writers' actual write sequences *)
          List.iteri
            (fun i v ->
              let legal =
                if i < 2 then List.mem v [ 0; 10 + i; 20 + i; 30 + i ]
                else v = 0
              in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: segment %d value %d legal" seed i v)
                true legal)
            s1;
          (* per-process monotonicity between the two scans *)
          List.iter2
            (fun v1 v2 ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: scan monotone (%d -> %d)" seed v1 v2)
                true (v2 >= v1))
            s1 s2)
        !scans)
    [ 1; 9; 33; 101 ]

(* Sequential sanity: scan sees exactly what was updated. *)
let test_snapshot_sequential () =
  let layout = Layout.create () in
  let snap = Objects.Snapshot.make layout ~n:3 in
  let result = ref [] in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:3 ~layout
      ~entry:(fun p ->
        let* () = Objects.Snapshot.update snap p (p + 100) in
        let* s = Objects.Snapshot.scan snap in
        result := s;
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (* run processes sequentially *)
  for p = 0 to 2 do
    assert (Machine.run_until_passages m p ~target:1)
  done;
  Alcotest.(check (list int)) "final scan" [ 100; 101; 102 ] !result

(* --- barrier ------------------------------------------------------------ *)

(* No process may enter phase k+1 before all have finished phase k. *)
let test_barrier_phases () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let n = 4 and phases = 3 in
      let barrier = Objects.Barrier.make layout ~n in
      let log = ref [] in
      let cfg =
        Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
          ~entry:(fun p ->
            let rec phase k =
              if k >= phases then unit
              else begin
                log := (`Arrive (p, k)) :: !log;
                let* () = Objects.Barrier.await barrier p in
                log := (`Depart (p, k)) :: !log;
                phase (k + 1)
              end
            in
            phase 0)
          ~exit_section:(fun _ -> Prog.unit)
          ()
      in
      let m = Machine.create cfg in
      let out = Sched.random ~seed m in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: all finished" seed)
        true out.Sched.all_finished;
      (* check: no Depart(_, k) before every Arrive(_, k) *)
      let events = List.rev !log in
      let arrived = Array.make phases 0 in
      List.iter
        (fun e ->
          match e with
          | `Arrive (_, k) -> arrived.(k) <- arrived.(k) + 1
          | `Depart (_, k) ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: depart after full arrival (phase %d)"
                   seed k)
                true
                (arrived.(k) = n))
        events)
    [ 4; 18; 77 ]

(* --- read/write weak counter -------------------------------------------- *)

let test_rw_counter () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let n = 4 in
      let c = Objects.Counter.make_rw layout ~n in
      let finals = ref [] in
      let cfg =
        Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
          ~entry:(fun p ->
            if p < 3 then
              (* incrementers: 3 increments each *)
              seq (List.init 3 (fun _ -> Objects.Counter.rw_inc c p))
            else
              let* v1 = Objects.Counter.rw_read c in
              let* v2 = Objects.Counter.rw_read c in
              finals := (v1, v2) :: !finals;
              unit)
          ~exit_section:(fun _ -> Prog.unit)
          ()
      in
      let m = Machine.create cfg in
      let out = Sched.random ~seed m in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d finished" seed)
        true out.Sched.all_finished;
      List.iter
        (fun (v1, v2) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: monotone reads %d <= %d" seed v1 v2)
            true
            (0 <= v1 && v1 <= v2 && v2 <= 9))
        !finals;
      (* final sequential read sees all increments *)
      let layout2 = Layout.create () in
      let c2 = Objects.Counter.make_rw layout2 ~n:2 in
      let final = ref (-1) in
      let cfg2 =
        Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:2
          ~layout:layout2
          ~entry:(fun p ->
            if p = 0 then seq (List.init 5 (fun _ -> Objects.Counter.rw_inc c2 0))
            else
              let* v = Objects.Counter.rw_read c2 in
              final := v;
              unit)
          ~exit_section:(fun _ -> Prog.unit)
          ()
      in
      let m2 = Machine.create cfg2 in
      assert (Machine.run_until_passages m2 0 ~target:1);
      assert (Machine.run_until_passages m2 1 ~target:1);
      Alcotest.(check int) "sequential read sees all" 5 !final)
    [ 3; 14; 159 ]

(* --- wait diagnostics ---------------------------------------------------- *)

(* Build a genuine cross-wait: p0 spins on a var only p1 writes and vice
   versa, with both writes stuck in buffers. *)
let test_waits_detects_cycle () =
  let layout = Layout.create () in
  let a = Layout.var layout "a" in
  let b = Layout.var layout "b" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:2 ~layout
      ~entry:(fun p ->
        let mine = if p = 0 then a else b in
        let theirs = if p = 0 then b else a in
        let* () = write mine 1 in
        let* () = fence in
        let* _ = spin_until ~fuel:50 theirs (fun x -> x = 2) in
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  (* advance both to their spins (fences drain, then they read) *)
  (try ignore (Sched.round_robin ~max_steps:300 m) with Prog.Spin_exhausted _ -> ());
  let waits = Analysis.Waits.observe m in
  Alcotest.(check int) "two waiting processes" 2 (List.length waits);
  match Analysis.Waits.find_cycle waits with
  | Some cycle ->
      Alcotest.(check bool) "cycle of length >= 2" true
        (List.length cycle >= 2)
  | None -> Alcotest.fail "expected a wait-for cycle"

let test_waits_no_cycle_when_progressing () =
  let lock = Locks.Ticket.family.Locks.Lock_intf.instantiate ~n:3 in
  let m = Locks.Harness.machine_of_lock ~model:Config.Cc_wb lock ~n:3 in
  (* stop mid-run: one holder, two waiters — waiters wait on the holder,
     no cycle *)
  for _ = 1 to 12 do
    List.iter
      (fun p ->
        match Machine.pending m p with
        | Machine.P_done -> ()
        | _ -> ignore (Machine.step m p))
      [ 0; 1; 2 ]
  done;
  let waits = Analysis.Waits.observe m in
  Alcotest.(check bool) "no cycle" true
    (Analysis.Waits.find_cycle waits = None)

let suite =
  [
    Alcotest.test_case "snapshot: sequential" `Quick test_snapshot_sequential;
    Alcotest.test_case "snapshot: monotone scans" `Quick
      test_snapshot_monotone_scans;
    Alcotest.test_case "barrier: phase separation" `Quick test_barrier_phases;
    Alcotest.test_case "rw weak counter" `Quick test_rw_counter;
    Alcotest.test_case "waits: detects cycle" `Quick test_waits_detects_cycle;
    Alcotest.test_case "waits: no false cycle" `Quick
      test_waits_no_cycle_when_progressing;
  ]
