(* Trace operations and erasure-by-replay (Lemmas 1 & 4, executable). *)

open Tsim
open Tsim.Ids
open Execution
open Prog

(* Three processes; p0 and p1 touch disjoint variables, p2 reads p0's
   variable. Erasing p1 (invisible to everyone) must replay cleanly;
   erasing p0 after p2 has read its committed value must diverge. *)
let disjoint_setup () =
  let layout = Layout.create () in
  let a = Layout.var layout "a" in
  let b = Layout.var layout "b" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n:3 ~layout
      ~entry:(fun p ->
        match p with
        | 0 ->
            let* () = write a 1 in
            fence
        | 1 ->
            let* () = write b 2 in
            fence
        | _ ->
            let* x = read a in
            let* () = write b (x + 10) in
            fence)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  (cfg, Machine.create cfg)

let run_all m =
  for p = 0 to Machine.n_procs m - 1 do
    assert (Machine.run_until_passages m p ~target:1)
  done

let test_erase_invisible_ok () =
  let cfg, m = disjoint_setup () in
  run_all m;
  let t = Trace.of_machine m in
  let r = Erasure.erase cfg t (Pidset.singleton 1) in
  Alcotest.(check bool) "clean replay" true (Erasure.erase_ok r);
  Alcotest.(check int) "a unchanged" 1 (Machine.mem_value r.Erasure.machine 0)

let test_erase_visible_diverges () =
  let cfg, m = disjoint_setup () in
  run_all m;
  let t = Trace.of_machine m in
  (* p2 read a=1 written by p0; erasing p0 changes what p2 reads *)
  let r = Erasure.erase cfg t (Pidset.singleton 0) in
  Alcotest.(check bool) "divergence detected" true
    (r.Erasure.value_divergences > 0 || r.Erasure.mismatches <> [])

let test_project_and_subexecution () =
  let _, m = disjoint_setup () in
  run_all m;
  let t = Trace.of_machine m in
  let only0 = Trace.project_pid t 0 in
  Alcotest.(check bool) "projection is a sub-execution" true
    (Trace.is_subexecution only0 t);
  Alcotest.(check bool) "all events by p0" true
    (Array.for_all (fun (e : Event.t) -> e.Event.pid = 0) (Trace.events only0));
  let erased = Trace.erase_pids t (Pidset.singleton 0) in
  Alcotest.(check int) "erase + project partition the trace"
    (Trace.length t)
    (Trace.length only0 + Trace.length erased)

let test_active_finished () =
  let _, m = disjoint_setup () in
  (* let p0 finish, p1 only enter *)
  assert (Machine.run_until_passages m 0 ~target:1);
  ignore (Machine.step m 1) (* Enter *);
  ignore (Machine.step m 1) (* issue write *);
  let t = Trace.of_machine m in
  Alcotest.(check bool) "p0 finished" true (Pidset.mem 0 (Trace.finished t));
  Alcotest.(check bool) "p1 active" true (Pidset.mem 1 (Trace.active t));
  Alcotest.(check bool) "p2 neither" true
    ((not (Pidset.mem 2 (Trace.active t)))
    && not (Pidset.mem 2 (Trace.finished t)));
  Alcotest.(check int) "total contention 2" 2 (Trace.total_contention t)

let test_fences_completed () =
  let _, m = disjoint_setup () in
  run_all m;
  let t = Trace.of_machine m in
  Alcotest.(check int) "p0 one fence" 1 (Trace.fences_completed t 0);
  Alcotest.(check int) "machine agrees" (Machine.fences_completed m 0)
    (Trace.fences_completed t 0)

(* Fact 1(2): (E^{-Y})^{-Z} = E^{-(Y u Z)} — erasure composes. *)
let test_fact1_erasure_composes () =
  let _, m = disjoint_setup () in
  run_all m;
  let t = Trace.of_machine m in
  let y = Pidset.singleton 0 and z = Pidset.singleton 1 in
  let lhs = Trace.erase_pids (Trace.erase_pids t y) z in
  let rhs = Trace.erase_pids t (Pidset.union y z) in
  Alcotest.(check int) "same length" (Trace.length lhs) (Trace.length rhs);
  Array.iteri
    (fun i e ->
      Alcotest.(check int)
        (Printf.sprintf "event %d" i)
        e.Event.seq
        (Trace.get rhs i).Event.seq)
    (Trace.events lhs)

(* Erasure of a random subset of "spectator" processes (each touching its
   own private variable) always replays cleanly. *)
let prop_spectator_erasure =
  QCheck.Test.make ~name:"erasing disjoint-variable processes replays"
    ~count:50
    QCheck.(pair (int_range 2 6) (int_bound 1000))
    (fun (n, seed) ->
      let layout = Layout.create () in
      let vars = Layout.array layout "x" n in
      let cfg =
        Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
          ~entry:(fun p ->
            let* () = write vars.(p) (p + 1) in
            let* () = fence in
            let* x = read vars.(p) in
            assert (x = p + 1);
            unit)
          ~exit_section:(fun _ -> Prog.unit)
          ()
      in
      let m = Machine.create cfg in
      let rng = Rng.create seed in
      (* random fair schedule *)
      let rec loop fuel =
        if fuel = 0 then ()
        else
          let live =
            List.filter
              (fun p -> Machine.pending m p <> Machine.P_done)
              (List.init n Fun.id)
          in
          match live with
          | [] -> ()
          | pids ->
              ignore (Machine.step m (Rng.pick rng pids));
              loop (fuel - 1)
      in
      loop 10_000;
      let t = Trace.of_machine m in
      let erased =
        List.filter (fun _ -> Rng.bool rng) (List.init n Fun.id)
      in
      let r = Erasure.erase cfg t (Tutil.pidset erased) in
      Erasure.erase_ok r)

let suite =
  [
    Alcotest.test_case "erase invisible process" `Quick
      test_erase_invisible_ok;
    Alcotest.test_case "erase visible process diverges" `Quick
      test_erase_visible_diverges;
    Alcotest.test_case "project / sub-execution" `Quick
      test_project_and_subexecution;
    Alcotest.test_case "active / finished" `Quick test_active_finished;
    Alcotest.test_case "fences per trace" `Quick test_fences_completed;
    Alcotest.test_case "Fact 1: erasure composes" `Quick
      test_fact1_erasure_composes;
    QCheck_alcotest.to_alcotest prop_spectator_erasure;
  ]
