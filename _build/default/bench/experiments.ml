(* Experiment printers E1-E9 (see DESIGN.md §3).

   The paper has one figure (Fig. 1) and a set of theorems/corollaries as
   its "evaluation"; each experiment regenerates one of them from the
   implementation. EXPERIMENTS.md records the outputs. *)

open Tsim
open Tsim.Ids

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---------------------------------------------------------------------- *)
(* E1 — Figure 1: structure of the inductive construction                  *)
(* ---------------------------------------------------------------------- *)

let e1_fig1_construction_trace () =
  hr "E1 (Figure 1): structure of the inductive construction";
  Printf.printf
    "Per induction step: surviving |Act|, |Fin|, fence range over active\n\
     processes, and the sequence of construction rounds (read / fence /\n\
     write-low / write-high / rmw), for two targets.\n";
  List.iter
    (fun ((fam : Locks.Lock_intf.family), n) ->
      let lock = fam.Locks.Lock_intf.instantiate ~n in
      let c = Adversary.Construction.create lock ~n in
      let report = Adversary.Construction.run ~min_act:1 c in
      Format.printf "@.%a" Adversary.Report.pp report)
    [
      (Locks.Adaptive_list.family, 16);
      (Locks.Adaptive_tree.family, 16);
      (Locks.Tournament.family, 16);
    ]

(* ---------------------------------------------------------------------- *)
(* E2 — Theorems 1 and 3: Act trajectory and the forced-fence witness      *)
(* ---------------------------------------------------------------------- *)

let e2_trajectory_for (fam : Locks.Lock_intf.family) ~n =
  let lock = fam.Locks.Lock_intf.instantiate ~n in
  let c = Adversary.Construction.create lock ~n in
  let report = Adversary.Construction.run ~min_act:1 c in
  let log2_n = Bounds.Logspace.log2 (float_of_int n) in
  Printf.printf
    "\n%s, N = %d. Theorem 3 bound uses l_i = max criticals.\n"
    fam.Locks.Lock_intf.family_name n;
  Printf.printf "%4s %12s %22s %14s\n" "i" "|Act(H_i)|"
    "Thm3 bound (log2)" "fences/active";
  List.iter
    (fun (s : Adversary.Report.step) ->
      let i = s.Adversary.Report.index + 1 in
      let ell = max 1 s.Adversary.Report.max_criticals in
      let bound = Bounds.Theorem3.log2_act_bound ~log2_n ~ell ~i in
      Printf.printf "%4d %12d %22.2f %14s\n" i s.Adversary.Report.act_size
        bound
        (Printf.sprintf "[%d..%d]" s.Adversary.Report.min_fences
           s.Adversary.Report.max_fences))
    report.Adversary.Report.steps;
  match Adversary.Witness.extract c with
  | Some w ->
      Printf.printf "Theorem 1 witness: %s\n" w.Adversary.Witness.detail
  | None -> Printf.printf "Theorem 1 witness: (none — all finished)\n"

let e2_thm1_act_trajectory () =
  hr "E2 (Theorems 1 & 3): |Act(H_i)| trajectory and the fence witness";
  e2_trajectory_for Locks.Adaptive_list.family ~n:48;
  e2_trajectory_for Locks.Cascade.family ~n:48;
  Printf.printf
    "\nPaper: at total contention i+1 a process executes i fences (linear\n\
     adaptivity); measured above: fences = contention - 1 for the\n\
     announce list, and ~2 fences per step against the read/write\n\
     cascade (each splitter publish costs a fence pair).\n"

(* ---------------------------------------------------------------------- *)
(* E3 — Corollary 1: forced fences, adaptive vs non-adaptive               *)
(* ---------------------------------------------------------------------- *)

let e3_cor1_forced_fences () =
  hr "E3 (Corollary 1): forced fences vs contention, per target";
  let ks = [ 2; 4; 8; 16; 32; 64 ] in
  let targets =
    [
      Locks.Adaptive_list.family;
      Locks.Adaptive_tree.family;
      Locks.Cascade.family;
      Locks.Ticket.family;
      Locks.Bakery.family;
      Locks.Tournament.family;
      Locks.Fastpath.family;
    ]
  in
  Printf.printf "%-15s" "target \\ k";
  List.iter (fun k -> Printf.printf "%8d" k) ks;
  Printf.printf "\n";
  List.iter
    (fun (fam : Locks.Lock_intf.family) ->
      Printf.printf "%-15s" fam.Locks.Lock_intf.family_name;
      List.iter
        (fun k ->
          let lock = fam.Locks.Lock_intf.instantiate ~n:k in
          let c = Adversary.Construction.create lock ~n:k in
          let report = Adversary.Construction.run ~min_act:1 c in
          Printf.printf "%8d" report.Adversary.Report.best_fences)
        ks;
      Printf.printf "\n")
    targets;
  Printf.printf
    "\nThe adaptive target's forced fences grow linearly with total\n\
     contention k (no O(1)-fence adaptive algorithm, Corollary 1); the\n\
     non-adaptive ticket/bakery rows stay constant, and the tournament\n\
     grows only with its log-depth fence count. The cascade row is the\n\
     headline: a genuine READ/WRITE linear-adaptive lock (Kim-Anderson\n\
     shape) forced into Theta(k) fences through the paper's full\n\
     three-phase pipeline; adaptive-tree (single renaming stage) pays its\n\
     fences up front and saturates.\n"

(* ---------------------------------------------------------------------- *)
(* E4 / E5 — Corollaries 2 and 3: tradeoff sweeps                          *)
(* ---------------------------------------------------------------------- *)

let sweep_rows f closed log2_ns =
  List.iter
    (fun log2_n ->
      Printf.printf "%14.0f %10d %14.2f\n" log2_n
        (Bounds.Theorem1.max_forced_fences ~f ~log2_n ())
        (closed ~log2_n))
    log2_ns

let e4_cor2_linear_tradeoff () =
  hr "E4 (Corollary 2): linear adaptivity forces Omega(log log N) fences";
  List.iter
    (fun c ->
      Printf.printf "\nf(i) = %g i:\n%14s %10s %14s\n" c "log2 N" "forced"
        "(1/3c)loglogN";
      sweep_rows
        (Bounds.Adaptivity.linear c)
        (fun ~log2_n -> Bounds.Corollaries.cor2_closed_form ~c ~log2_n)
        [ 16.; 64.; 256.; 1024.; 4096.; 65536.; 1048576.; 1073741824. ])
    [ 1.0; 2.0 ]

let e5_cor3_exp_tradeoff () =
  hr "E5 (Corollary 3): exponential adaptivity forces Omega(logloglog N)";
  List.iter
    (fun c ->
      Printf.printf "\nf(i) = 2^(%g i):\n%14s %10s %14s\n" c "log2 N"
        "forced" "(1/c)(lll N-1)";
      sweep_rows
        (Bounds.Adaptivity.exponential c)
        (fun ~log2_n -> Bounds.Corollaries.cor3_closed_form ~c ~log2_n)
        [ 16.; 64.; 256.; 1024.; 4096.; 65536.; 1048576.; 1073741824. ])
    [ 1.0 ]

(* ---------------------------------------------------------------------- *)
(* E6 — lock zoo evaluation: RMRs and fences per passage                   *)
(* ---------------------------------------------------------------------- *)

let e6_eval_lock_zoo () =
  hr "E6: lock zoo — RMRs and fences per passage (round-robin schedule)";
  let n = 16 in
  let ks = [ 1; 4; 16 ] in
  List.iter
    (fun model ->
      Printf.printf "\n[%s]  n = %d\n" (Config.mem_model_name model) n;
      Printf.printf "%-15s" "lock \\ k";
      List.iter
        (fun k -> Printf.printf "   %12s" (Printf.sprintf "k=%d r/f" k))
        ks;
      Printf.printf "\n";
      List.iter
        (fun (fam : Locks.Lock_intf.family) ->
          Printf.printf "%-15s" fam.Locks.Lock_intf.family_name;
          List.iter
            (fun k ->
              let lock = fam.Locks.Lock_intf.instantiate ~n in
              let _, stats =
                Locks.Harness.run_contended ~model lock ~n ~k
              in
              Printf.printf "   %12s"
                (Printf.sprintf "%d/%d" stats.Locks.Harness.max_rmrs_per_passage
                   stats.Locks.Harness.max_fences_per_passage))
            ks;
          Printf.printf "\n")
        Locks.Zoo.all)
    [ Config.Dsm; Config.Cc_wt; Config.Cc_wb ];
  Printf.printf
    "\n(max RMRs / max fences per passage; tournament = O(log n) RMR\n\
     read/write baseline, ticket = O(1)-fence non-adaptive baseline,\n\
     bakery = Theta(n) RMR with O(1) fences, adaptive-list = O(k).)\n"

(* ---------------------------------------------------------------------- *)
(* E7 — PSO tradeoff frontier (Discussion, Inequality 3)                   *)
(* ---------------------------------------------------------------------- *)

let e7_pso_frontier () =
  hr "E7 (Ineq. 3): PSO fence/RMR frontier vs the TSO point";
  List.iter
    (fun n_log2 ->
      Printf.printf "\nn = 2^%g:\n%8s %16s\n" n_log2 "fences" "min RMRs";
      List.iter
        (fun (row : Bounds.Pso.frontier_row) ->
          Printf.printf "%8.0f %16.1f\n" row.Bounds.Pso.fences
            row.Bounds.Pso.rmrs_min)
        (Bounds.Pso.frontier ~n_log2 [ 1.; 2.; 4.; 8.; 16.; n_log2 ]);
      let tf, tr = Bounds.Pso.tso_point ~n_log2 in
      Printf.printf
        "TSO point (fences=%g, RMRs=%g) feasible under PSO bound: %b\n" tf tr
        (Bounds.Pso.feasible ~n_log2 ~fences:tf ~rmrs:tr))
    [ 10.0; 20.0; 30.0 ]

(* ---------------------------------------------------------------------- *)
(* E8 — Lemma 9 reduction                                                  *)
(* ---------------------------------------------------------------------- *)

let e8_lemma9_reduction () =
  hr "E8 (Lemma 9): mutex from counter / queue / stack";
  let n = 12 in
  Printf.printf "%-26s %10s %10s %10s %6s %6s\n" "object" "rmr(avg)"
    "rmr(max)" "fence(max)" "excl" "CSs";
  List.iter
    (fun (fam : Locks.Lock_intf.family) ->
      let lock = fam.Locks.Lock_intf.instantiate ~n in
      let _, stats =
        Locks.Harness.run_contended ~model:Config.Cc_wb lock ~n ~k:n
      in
      Printf.printf "%-26s %10.2f %10d %10d %6b %6d\n"
        fam.Locks.Lock_intf.family_name
        stats.Locks.Harness.avg_rmrs_per_passage
        stats.Locks.Harness.max_rmrs_per_passage
        stats.Locks.Harness.max_fences_per_passage
        stats.Locks.Harness.exclusion_ok stats.Locks.Harness.cs_entries)
    Objects.Mutex_from_object.families;
  (* converse direction: objects FROM mutex (monitors) *)
  Printf.printf
    "\nConverse direction (objects from mutex, via a ticket monitor):\n";
  Printf.printf "%-26s %10s %10s\n" "object" "rmr(max)" "fence(max)";
  let run_locked name mk_op =
    let layout = Tsim.Layout.create () in
    let op = mk_op layout in
    let nn = 8 in
    let cfg =
      Tsim.Config.make ~model:Tsim.Config.Cc_wb ~check_exclusion:false ~n:nn
        ~layout
        ~entry:(fun p -> Tsim.Prog.bind (op p) (fun _ -> Tsim.Prog.unit))
        ~exit_section:(fun _ -> Tsim.Prog.unit)
        ()
    in
    let machine = Tsim.Machine.create cfg in
    ignore (Tsim.Sched.round_robin machine);
    let max_r = ref 0 and max_f = ref 0 in
    for p = 0 to nn - 1 do
      max_r := max !max_r (Tsim.Machine.rmrs machine p);
      max_f := max !max_f (Tsim.Machine.fences_completed machine p)
    done;
    Printf.printf "%-26s %10d %10d\n" name !max_r !max_f
  in
  run_locked "locked-counter" (fun layout ->
      let c = Objects.Monitor.locked_counter layout "lc" in
      fun _ -> Objects.Monitor.locked_fetch_inc c);
  run_locked "locked-stack push" (fun layout ->
      let st = Objects.Monitor.locked_stack layout "ls" ~capacity:16 in
      fun p -> Objects.Monitor.locked_push st p);
  run_locked "locked-queue enq" (fun layout ->
      let q = Objects.Monitor.locked_queue layout "lq" ~capacity:16 in
      fun p -> Objects.Monitor.locked_enqueue q p);
  Printf.printf
    "\nEach passage = one object operation + O(1) extra steps, so the\n\
     fence lower bound for adaptive locks transfers to adaptive counters,\n\
     stacks and queues (Corollary 1); conversely each object op above is\n\
     one lock passage + O(1) sequential steps.\n"

(* ---------------------------------------------------------------------- *)
(* E9 — invariant audit (Lemmas of Section 4, dynamically checked)         *)
(* ---------------------------------------------------------------------- *)

let e9_lemma_invariant_audit () =
  hr "E9: IN-set invariant audit across construction runs";
  let targets =
    [
      (Locks.Adaptive_list.family, 12);
      (Locks.Bakery.family, 10);
      (Locks.Tournament.family, 10);
      (Locks.Fastpath.family, 10);
      (Locks.Ticket.family, 10);
    ]
  in
  Printf.printf "%-15s %6s %8s %10s %12s\n" "target" "n" "steps"
    "violations" "outcome";
  List.iter
    (fun ((fam : Locks.Lock_intf.family), n) ->
      let lock = fam.Locks.Lock_intf.instantiate ~n in
      let c = Adversary.Construction.create ~audit:true lock ~n in
      let report = Adversary.Construction.run ~min_act:1 c in
      let fails = Adversary.Construction.audit_failures c in
      Printf.printf "%-15s %6d %8d %10d %12s\n"
        fam.Locks.Lock_intf.family_name n
        (List.length report.Adversary.Report.steps)
        (List.length fails)
        (Adversary.Report.outcome_name report.Adversary.Report.outcome);
      List.iter (fun f -> Printf.printf "    !! %s\n" f) fails)
    targets;
  (* erasure determinism spot-check (Lemma 4) *)
  let lock = Locks.Adaptive_list.family.Locks.Lock_intf.instantiate ~n:10 in
  let c = Adversary.Construction.create lock ~n:10 in
  ignore (Adversary.Construction.run ~min_act:3 c);
  let m = Adversary.Construction.machine c in
  let act = Adversary.Construction.active c in
  let tr = Execution.Trace.of_machine m in
  let ok =
    Pidset.for_all
      (fun p ->
        Execution.Erasure.erase_ok
          (Execution.Erasure.erase (Machine.config m) tr (Pidset.singleton p)))
      act
  in
  Printf.printf
    "\nLemma 4 spot-check: erasing each surviving active process replays \
     deterministically: %b\n"
    ok

(* ---------------------------------------------------------------------- *)
(* E10 — ablation: the construction without Turán independent sets         *)
(* ---------------------------------------------------------------------- *)

let e10_ablation_no_independent_sets () =
  hr "E10 (ablation): which parts of the construction are load-bearing?";
  Printf.printf
    "Two design choices the proof depends on are switched off in turn:\n\
     (a) the Turán independent sets of the read/write phases, and\n\
     (b) the regularization phase (finishing the visible max-ID process\n\
         after a high-contention write / RMW round — the paper's Lemma 8\n\
         and the 'essential for obtaining our tradeoff' scheduling rule).\n\
     Breakage is detected by the per-step IN-set audit and by divergent\n\
     erasure replays.\n\n";
  Printf.printf "%-15s %-22s %10s %30s\n" "target" "variant" "violations"
    "outcome";
  let run_variant fam n label ~no_is ~no_reg =
    let lock = fam.Locks.Lock_intf.instantiate ~n in
    let c =
      Adversary.Construction.create ~audit:true ~no_independent_sets:no_is
        ~no_regularization:no_reg lock ~n
    in
    let report = Adversary.Construction.run ~min_act:1 c in
    Printf.printf "%-15s %-22s %10d %30s\n"
      fam.Locks.Lock_intf.family_name label
      (List.length (Adversary.Construction.audit_failures c))
      (Adversary.Report.outcome_name report.Adversary.Report.outcome)
  in
  List.iter
    (fun ((fam : Locks.Lock_intf.family), n) ->
      run_variant fam n "full" ~no_is:false ~no_reg:false;
      run_variant fam n "no-independent-sets" ~no_is:true ~no_reg:false;
      run_variant fam n "no-regularization" ~no_is:false ~no_reg:true)
    [ (Locks.Adaptive_list.family, 10); (Locks.Tournament.family, 10) ];
  Printf.printf
    "\nWithout regularization, every survivor is aware of the still-active\n\
     visible process (IN1 violations), and erasing it diverges — exactly\n\
     the failure Lemma 8 exists to prevent.\n"

(* ---------------------------------------------------------------------- *)
(* E11 — object linearizability sweep                                      *)
(* ---------------------------------------------------------------------- *)

let e11_linearizability_sweep () =
  hr "E11: linearizability of the Section 5 objects (Wing & Gong)";
  let sweep name mk =
    let ok = ref 0 and total = 20 in
    for seed = 1 to total do
      let layout = Tsim.Layout.create () in
      let gen, spec = mk layout in
      let _, v =
        Lincheck.Workload.run_and_check
          ~schedule:(Lincheck.Workload.Rand (seed * 31)) ~layout ~n:4
          ~ops_per_proc:3 gen spec
      in
      if v.Lincheck.Checker.linearizable then incr ok
    done;
    Printf.printf "%-14s %d/%d random schedules linearizable\n" name !ok total
  in
  sweep "counter-faa" (fun layout ->
      let c = Objects.Counter.make_faa layout in
      ( (fun p _ -> Lincheck.Workload.op "faa" (c.Objects.Counter.fetch_inc p)),
        Lincheck.Spec.counter ));
  sweep "counter-cas" (fun layout ->
      let c = Objects.Counter.make_cas layout in
      ( (fun p _ -> Lincheck.Workload.op "faa" (c.Objects.Counter.fetch_inc p)),
        Lincheck.Spec.counter ));
  sweep "stack" (fun layout ->
      let st = Objects.Ostack.make layout ~n:4 ~ops_per_proc:4 in
      ( (fun p i ->
          if p < 2 then
            let v = (p * 100) + i in
            Lincheck.Workload.op ~arg:v "push"
              (Tsim.Prog.bind (Objects.Ostack.push st p v) (fun () ->
                   Tsim.Prog.return 0))
          else Lincheck.Workload.op "pop" (Objects.Ostack.pop st p)),
        Lincheck.Spec.stack ));
  sweep "queue" (fun layout ->
      let q = Objects.Oqueue.make layout ~capacity:32 in
      ( (fun p i ->
          if p < 3 then
            let v = (p * 100) + i in
            Lincheck.Workload.op ~arg:v "enq"
              (Tsim.Prog.bind (Objects.Oqueue.enqueue q v) (fun () ->
                   Tsim.Prog.return 0))
          else Lincheck.Workload.op "deq" (Objects.Oqueue.dequeue_nonempty q)),
        Lincheck.Spec.queue ));
  Printf.printf
    "\n(a non-atomic read;write counter fails the same sweep — see the\n\
     lincheck test suite and examples/lincheck_demo.ml)\n"

(* ---------------------------------------------------------------------- *)
(* E12 — the Laws-of-Order premise: fences are unavoidable                 *)
(* ---------------------------------------------------------------------- *)

let e12_fences_unavoidable () =
  hr "E12: fences are unavoidable for read/write mutex on TSO ([5])";
  Printf.printf
    "The paper builds on Attiya et al.'s Laws of Order: every read/write\n\
     mutex must fence. The bounded model checker explores every schedule\n\
     of 2-process Peterson with and without its fence:\n\n";
  let open Tsim in
  let open Tsim.Prog in
  let peterson ~fenced =
    let layout = Layout.create () in
    let flag = Layout.array layout ~init:0 "flag" 2 in
    let turn = Layout.var layout ~init:0 "turn" in
    Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
      ~entry:(fun p ->
        let* () = write flag.(p) 1 in
        let* () = write turn p in
        let* () = if fenced then fence else unit in
        let rec await fuel =
          if fuel <= 0 then raise (Prog.Spin_exhausted turn)
          else
            let* f = read flag.(1 - p) in
            if f = 0 then unit
            else
              let* t = read turn in
              if t <> p then unit else await (fuel - 1)
        in
        await 4)
      ~exit_section:(fun p ->
        let* () = write flag.(p) 0 in
        fence)
      ()
  in
  List.iter
    (fun fenced ->
      let r = Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced) in
      Printf.printf "Peterson %-9s: %7d states, %s\n"
        (if fenced then "fenced" else "unfenced")
        r.Mcheck.Explore.nodes
        (if r.Mcheck.Explore.verified then "exclusion VERIFIED over all schedules"
         else
           match r.Mcheck.Explore.violations with
           | { kind = `Exclusion (a, b); schedule } :: _ ->
               Printf.sprintf
                 "exclusion VIOLATED (p%d/p%d) after %d scheduler moves" a b
                 (List.length schedule)
           | _ -> "no exclusion violation (bounded)"))
    [ true; false ];
  (* show the violating schedule *)
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced:false) in
  (match r.Mcheck.Explore.violations with
  | { kind = `Exclusion _; schedule } :: _ ->
      Printf.printf "\nviolating schedule: %s\n"
        (String.concat "; "
           (List.map Mcheck.Explore.move_to_string schedule))
  | _ -> ());
  Printf.printf
    "\nThe anomaly is the store-buffering reordering the paper's Section 2\n\
     model permits: both entries read the rival's flag before either\n\
     flag-write commits.\n"

(* ---------------------------------------------------------------------- *)
(* E13 — TSO/PSO separation on real algorithms                             *)
(* ---------------------------------------------------------------------- *)

let e13_tso_pso_separation () =
  hr "E13: TSO/PSO separation on real algorithms (Discussion section)";
  Printf.printf
    "Peterson-style locks rely on TSO's FIFO commit order (flag visible no\n\
     later than turn). A PSO adversary commits out of order and breaks\n\
     them; restoring correctness costs one extra fence per publish pair —\n\
     the concrete face of the PSO fence tax (Inequality 3).\n\n";
  let breaks fam =
    let seeds = List.init 400 (fun i -> (i * 163) + 7) in
    List.exists
      (fun seed ->
        let lock = fam.Locks.Lock_intf.instantiate ~n:4 in
        let cfg =
          Locks.Harness.config_of_lock ~model:Tsim.Config.Cc_wb
            ~ordering:Tsim.Config.Pso lock ~n:4
        in
        let m = Tsim.Machine.create cfg in
        match Tsim.Sched.random ~seed ~commit_bias:0.4 m with
        | _ -> false
        | exception Tsim.Machine.Exclusion_violation _ -> true)
      seeds
  in
  let fences fam =
    let lock = fam.Locks.Lock_intf.instantiate ~n:8 in
    let _, stats =
      Locks.Harness.run_contended ~model:Tsim.Config.Cc_wb lock ~n:8 ~k:8
    in
    stats.Locks.Harness.max_fences_per_passage
  in
  Printf.printf "%-18s %22s %16s\n" "lock" "PSO exclusion broken?"
    "fences/passage";
  List.iter
    (fun (fam : Locks.Lock_intf.family) ->
      Printf.printf "%-18s %22b %16d\n" fam.Locks.Lock_intf.family_name
        (breaks fam) (fences fam))
    [
      Locks.Tournament.family;
      Locks.Tournament.family_pso;
      Locks.Bakery.family;
      Locks.Bakery.family_pso;
      Locks.Ticket.family;
    ];
  Printf.printf
    "\nThe pso-safe tournament pays one extra fence per tree level — under\n\
     PSO, read/write algorithms cannot keep both fence and RMR counts low\n\
     (Attiya-Hendler-Woelfel's bound, experiment E7).\n"

let all =
  [
    ("e1", "Figure 1 construction trace", e1_fig1_construction_trace);
    ("e2", "Theorem 1/3 Act trajectory + witness", e2_thm1_act_trajectory);
    ("e3", "Corollary 1 forced fences", e3_cor1_forced_fences);
    ("e4", "Corollary 2 linear tradeoff", e4_cor2_linear_tradeoff);
    ("e5", "Corollary 3 exponential tradeoff", e5_cor3_exp_tradeoff);
    ("e6", "Lock zoo evaluation", e6_eval_lock_zoo);
    ("e7", "PSO frontier", e7_pso_frontier);
    ("e8", "Lemma 9 reduction", e8_lemma9_reduction);
    ("e9", "Invariant audit", e9_lemma_invariant_audit);
    ("e10", "Ablation: no independent sets", e10_ablation_no_independent_sets);
    ("e11", "Object linearizability sweep", e11_linearizability_sweep);
    ("e12", "Laws of Order: fences unavoidable", e12_fences_unavoidable);
    ("e13", "TSO/PSO separation", e13_tso_pso_separation);
  ]
