(* Benchmark & experiment harness.

     dune exec bench/main.exe            run every experiment + timings
     dune exec bench/main.exe -- e3 e6   run selected experiments
     dune exec bench/main.exe -- time    run only the Bechamel timings

   Experiment ids map to the paper's artefacts (DESIGN.md §3):
     e1 Figure 1 · e2 Theorems 1/3 · e3 Corollary 1 · e4 Corollary 2 ·
     e5 Corollary 3 · e6 lock zoo table · e7 PSO frontier (Ineq. 3) ·
     e8 Lemma 9 · e9 invariant audit *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_timings = args = [] || List.mem "time" args in
  let selected id = args = [] || List.mem id args in
  Printf.printf
    "Reproduction harness: \"The Price of being Adaptive\" (Ben-Baruch & \
     Hendler, PODC 2015)\n";
  List.iter
    (fun (id, _desc, f) -> if selected id then f ())
    Experiments.all;
  if run_timings then begin
    Printf.printf "\nBechamel timings (simulator machinery)\n";
    Printf.printf "=====================================\n";
    Timings.run ()
  end
