bench/experiments.ml: Adversary Array Bounds Config Execution Format Layout Lincheck List Locks Machine Mcheck Objects Pidset Printf Prog String Tsim
