bench/timings.ml: Adversary Analysis Analyze Array Bechamel Benchmark Bounds Execution Hashtbl Instance Lincheck List Locks Mcheck Measure Objects Printf Staged Test Time Toolkit Tsim
