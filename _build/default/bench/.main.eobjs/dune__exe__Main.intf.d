bench/main.mli:
