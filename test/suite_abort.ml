(* Timeout/abort fault injection, end to end.

   Machine level: an abort delivered at a declared wait point keeps the
   write buffer (unlike a crash), clears the abortable marker and fence
   flags, runs the configured cleanup section and returns the process to
   its NCS without counting a passage; aborts anywhere else are typed
   errors. Explorer level: the abort adversary proves the abortable TAS
   and abortable queue locks safe under an abort budget, refutes the
   deliberately buggy cleanup (which frees a lock the aborting process
   does not hold), and composes with crash faults — all three engines,
   por on and off, agreeing on verdicts and fingerprint multisets.
   Replay level: abort schedules replay bit-identically, ill-timed abort
   lines are a typed outcome, walk/undo restores abort transitions
   exactly, and the schedule codec round-trips Abort moves. Lincheck
   level: aborted object operations stay strictly linearizable. Metrics
   level: trace recomputation counts aborts and cross-checks against the
   machine's online counters. *)

open Tsim
open Tsim.Prog
module E = Mcheck.Explore

(* --- machine-level abort semantics -------------------------------------- *)

(* One process, one buffered write, then an abortable wait on a gate
   nobody opens. *)
let one_waiter ?abort_section () =
  let layout = Layout.create () in
  let x = Layout.var layout "x" in
  let gate = Layout.var layout "gate" in
  let cleaned = Layout.var layout "cleaned" in
  let abort_section =
    match abort_section with
    | Some s -> s
    | None ->
        Some
          (fun _ ->
            let* () = write cleaned 7 in
            fence)
  in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ?abort_section
      ~n:1 ~layout
      ~entry:(fun _ ->
        let* () = write x 1 in
        let* _ = abortable_spin_until gate (fun g -> g = 1) in
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  (Machine.create cfg, x, cleaned)

let step_until ?(fuel = 50) m pred =
  let fuel = ref fuel in
  while (not (pred ())) && !fuel > 0 do
    decr fuel;
    ignore (Machine.step m 0)
  done;
  Alcotest.(check bool) "target machine state reached" true (pred ())

let test_abort_semantics () =
  let m, x, cleaned = one_waiter () in
  step_until m (fun () -> Machine.abort_deliverable m 0);
  Alcotest.(check bool) "abortable marker up" true (Machine.abortable m 0);
  Alcotest.(check int) "write still buffered" 0 (Machine.mem_value m x);
  (match Machine.abort m 0 with
  | { Event.kind = Event.Abort; _ } -> ()
  | e ->
      Alcotest.failf "unexpected abort event: %s" (Event.kind_tag e.Event.kind));
  (* unlike a crash, the write buffer survives the fault *)
  Alcotest.(check int) "buffered write kept" 1
    (Wbuf.size (Machine.proc m 0).Machine.buf);
  Alcotest.(check bool) "section is aborting" true
    ((Machine.proc m 0).Machine.sec = Machine.Aborting);
  Alcotest.(check bool) "marker lowered by the fault" false
    (Machine.abortable m 0);
  Alcotest.(check bool) "no longer deliverable" false
    (Machine.abort_deliverable m 0);
  Alcotest.(check int) "abort counted" 1 (Machine.aborts m 0);
  Alcotest.(check int) "total counted" 1 (Machine.aborts_total m);
  (* run the cleanup to completion: back to NCS, no passage counted *)
  step_until m (fun () -> (Machine.proc m 0).Machine.sec = Machine.Ncs);
  Alcotest.(check int) "cleanup section ran" 7 (Machine.mem_value m cleaned);
  Alcotest.(check int) "cleanup fence drained the kept buffer" 1
    (Machine.mem_value m x);
  Alcotest.(check int) "no passage counted" 0 (Machine.passages m 0)

let test_abort_illegal_states () =
  (* in the NCS: not in the entry section *)
  let m, _, _ = one_waiter () in
  Alcotest.check_raises "abort in NCS"
    (Invalid_argument "Machine.abort: process is not in its entry section")
    (fun () -> ignore (Machine.abort m 0));
  (* in the entry section but before the declared wait point *)
  ignore (Machine.step m 0);
  Alcotest.(check bool) "entered the entry section" true
    ((Machine.proc m 0).Machine.sec = Machine.Entry);
  Alcotest.check_raises "abort before the wait point"
    (Invalid_argument "Machine.abort: process is not at a wait point")
    (fun () -> ignore (Machine.abort m 0));
  (* marker up, but the configuration declares no cleanup section *)
  let m2, _, _ = one_waiter ~abort_section:None () in
  step_until m2 (fun () -> Machine.abortable m2 0);
  Alcotest.(check bool) "marker up is not enough" false
    (Machine.abort_deliverable m2 0);
  Alcotest.check_raises "no abort section configured"
    (Invalid_argument "Machine.abort: configuration has no abort section")
    (fun () -> ignore (Machine.abort m2 0));
  (* double abort: the cleanup section itself is not abortable *)
  let m3, _, _ = one_waiter () in
  step_until m3 (fun () -> Machine.abort_deliverable m3 0);
  ignore (Machine.abort m3 0);
  Alcotest.check_raises "abort while aborting"
    (Invalid_argument "Machine.abort: process is not in its entry section")
    (fun () -> ignore (Machine.abort m3 0))

(* --- the acceptance scenario: abortable locks under abort faults -------- *)

let atas_cfg ~n =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    (Locks.Abortable_tas.make ~n) ~n

let buggy_cfg ~n =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    (Locks.Abortable_tas.make_buggy ~n) ~n

let aqueue_cfg ~n =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    (Locks.Abortable_queue.make () ~n) ~n

let has_abort_move schedule =
  List.exists (function E.Abort _ -> true | _ -> false) schedule

(* The properly-stamped cleanup survives the abort adversary: both
   abortable locks verify with and without the budget, and abort moves
   are genuinely exercised. *)
let test_abortable_locks_safe () =
  List.iter
    (fun (name, cfg) ->
      let abort_free = E.explore ~max_nodes:500_000 (cfg ()) in
      Alcotest.(check bool) (name ^ ": abort-free verifies") true
        abort_free.E.verified;
      Alcotest.(check int) (name ^ ": no aborts without a budget") 0
        abort_free.E.stats.E.aborts_applied;
      let r = E.explore ~max_nodes:500_000 ~max_aborts:1 (cfg ()) in
      Alcotest.(check bool) (name ^ ": verified under one abort") true
        r.E.verified;
      Alcotest.(check bool) (name ^ ": abort moves exercised") true
        (r.E.stats.E.aborts_applied > 0);
      Alcotest.(check bool)
        (name ^ ": the budget enlarges the space") true
        (r.E.nodes > abort_free.E.nodes))
    [
      ("abortable-tas", fun () -> atas_cfg ~n:2);
      ("abortable-queue", fun () -> aqueue_cfg ~n:2);
    ]

(* The unconditional cleanup frees a lock the aborter does not hold: the
   owner keeps running while the freed word lets a third acquisition in.
   One injected abort refutes it; the witness schedule replays
   deterministically. *)
let test_buggy_cleanup_refuted () =
  let abort_free = E.explore ~max_nodes:500_000 (buggy_cfg ~n:2) in
  Alcotest.(check bool) "abort-free the buggy variant verifies" true
    abort_free.E.verified;
  let r = E.explore ~max_nodes:500_000 ~max_aborts:1 (buggy_cfg ~n:2) in
  Alcotest.(check bool) "violation found" false r.E.verified;
  match r.E.violations with
  | [] -> Alcotest.fail "no violation reported"
  | v :: _ -> (
      (match v.E.kind with
      | `Exclusion _ -> ()
      | `Deadlock -> Alcotest.fail "expected exclusion, got deadlock"
      | `Spin_exhausted -> Alcotest.fail "expected exclusion, got spin");
      Alcotest.(check bool) "schedule injects an abort" true
        (has_abort_move v.E.schedule);
      let m1, o1 = E.replay (buggy_cfg ~n:2) v.E.schedule in
      let m2, o2 = E.replay (buggy_cfg ~n:2) v.E.schedule in
      Alcotest.(check bool) "same outcome" true (o1 = o2);
      Alcotest.(check int) "same fingerprint" (E.fingerprint m1)
        (E.fingerprint m2);
      match o1 with
      | E.R_exclusion _ -> ()
      | _ -> Alcotest.fail "replay did not reproduce the exclusion")

(* --- abort × crash composition across all three engines ----------------- *)

let atas_crashy_cfg () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    ~crash_semantics:Config.Drop_buffer
    (Locks.Abortable_tas.make ~n:2) ~n:2

let fp_multiset ~engine ~por ~max_crashes ~max_aborts cfg =
  let tbl = Hashtbl.create 1024 in
  let r =
    E.explore ~max_nodes:500_000 ~por ~max_crashes ~max_aborts
      ~on_fingerprint:(fun fp ->
        Hashtbl.replace tbl fp
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
      (Suite_mcheck_equiv.with_engine engine cfg)
  in
  (r, tbl)

(* Both fault budgets at once: exclusion still holds (crashes may land
   inside abort cleanup sections), both fault kinds are exercised, and
   the clone / journal / compiled engines visit identical fingerprint
   multisets with and without the reduction. *)
let test_abort_crash_composition () =
  List.iter
    (fun por ->
      let tag engine =
        Printf.sprintf "%s por=%b" (Config.engine_name engine) por
      in
      let rj, tj =
        fp_multiset ~engine:`Journal ~por ~max_crashes:1 ~max_aborts:1
          (atas_crashy_cfg ())
      in
      Alcotest.(check bool) (tag `Journal ^ ": verified") true rj.E.verified;
      Alcotest.(check bool)
        (tag `Journal ^ ": crashes exercised")
        true
        (rj.E.stats.E.crashes_applied > 0);
      Alcotest.(check bool)
        (tag `Journal ^ ": aborts exercised")
        true
        (rj.E.stats.E.aborts_applied > 0);
      List.iter
        (fun engine ->
          let r, t =
            fp_multiset ~engine ~por ~max_crashes:1 ~max_aborts:1
              (atas_crashy_cfg ())
          in
          Alcotest.(check bool) (tag engine ^ ": verified") true r.E.verified;
          Alcotest.(check int) (tag engine ^ ": nodes") rj.E.nodes r.E.nodes;
          Suite_mcheck_equiv.check_fp_multisets
            (tag engine ^ " vs journal")
            tj t)
        [ `Clone; `Compiled ])
    [ true; false ]

(* --- typed partial verdict for an external interrupt --------------------- *)

(* The CLI's SIGINT handler only flips this flag; the verdict typing is
   the explorer's. A pre-raised flag trips at the first 1024-node poll. *)
let test_stop_flag_partial () =
  let stop = Atomic.make true in
  let r =
    E.explore ~max_nodes:10_000_000 ~max_crashes:1 ~max_aborts:1 ~stop
      (atas_crashy_cfg ())
  in
  Alcotest.(check bool) "not exhausted" false r.E.exhausted;
  (match r.E.partial with
  | Some `Aborts -> ()
  | Some reason ->
      Alcotest.failf "wrong partial reason: %s" (E.partial_reason_name reason)
  | None -> Alcotest.fail "partial reason missing");
  let line, code = E.render_verdict r in
  Alcotest.(check int) "partial exit code" 3 code;
  Alcotest.(check bool) "verdict names the interrupt" true
    (String.length line >= 7 && String.sub line 0 7 = "PARTIAL")

(* --- replay hardening ---------------------------------------------------- *)

let test_replay_bad_abort () =
  (* p0 has entered but not reached a declared wait point *)
  let schedule = [ E.Step 0; E.Abort 0 ] in
  let _, outcome = E.replay (atas_cfg ~n:2) schedule in
  (match outcome with
  | E.R_bad_abort (1, 0) -> ()
  | E.R_bad_abort (i, p) -> Alcotest.failf "wrong position: move %d, p%d" i p
  | _ -> Alcotest.fail "ill-timed abort not detected");
  (* a configuration with no abort section rejects every abort line *)
  let plain =
    Locks.Harness.config_of_lock ~model:Config.Cc_wb (Locks.Tas.make ~n:2)
      ~n:2
  in
  let _, outcome = E.replay plain [ E.Abort 0 ] in
  match outcome with
  | E.R_bad_abort (0, 0) -> ()
  | _ -> Alcotest.fail "abort without an abort section not detected"

(* --- qcheck: explorer-found abort schedules replay bit-identically ------- *)

(* The random straight-line programs of the POR differential suite, made
   abortable wholesale: the entry section runs inside one abortable
   window with a trivial cleanup, so the adversary may cancel it at any
   scheduling point. Every reported violation's schedule must replay
   twice to the same outcome and final-state fingerprint. *)
let aborty_config progs =
  let cfg = Suite_mcheck_equiv.config_of_rops progs in
  {
    cfg with
    Config.entry = (fun p -> abortably (cfg.Config.entry p));
    abort_section = Some (fun _ -> Prog.unit);
  }

let prop_abort_replay_deterministic =
  QCheck.Test.make ~count:40
    ~name:"abort schedules replay bit-identically (verdict + fingerprint)"
    Suite_mcheck_equiv.arb_prog2 (fun progs ->
      let r =
        E.explore ~max_nodes:200_000 ~max_violations:8 ~on_spin:`Violation
          ~max_aborts:1 (aborty_config progs)
      in
      List.for_all
        (fun v ->
          let m1, o1 = E.replay (aborty_config progs) v.E.schedule in
          let m2, o2 = E.replay (aborty_config progs) v.E.schedule in
          let violated = function
            | E.R_completed | E.R_bad_pid _ | E.R_bad_abort _ | E.R_stuck _
              ->
                false
            | E.R_exclusion _ | E.R_spin _ -> true
          in
          o1 = o2
          && E.fingerprint m1 = E.fingerprint m2
          && violated o1)
        r.E.violations)

(* --- qcheck: step;undo over abort transitions ---------------------------- *)

(* suite_journal's walk/undo law with Abort in the move alphabet: from
   any reachable state, applying an enabled move (including Abort and
   Crash) and rolling it back through the journal must restore the state
   exactly, with both fingerprints agreeing. *)
let walk_restores ~engine cfg seed =
  let rng = Random.State.make [| seed |] in
  let m = Machine.create { cfg with Config.engine } in
  Machine.Journal.enable m;
  let steps = ref 0 and continue = ref true in
  while !continue && !steps < 60 do
    incr steps;
    match E.enabled_moves ~max_crashes:1 ~max_aborts:2 m with
    | [] -> continue := false
    | moves ->
        let mv = List.nth moves (Random.State.int rng (List.length moves)) in
        let snap = Machine.clone m in
        let fp_before = Machine.fingerprint m in
        if Machine.fingerprint_fast m <> fp_before then
          Alcotest.failf "incremental fingerprint drifted before %s"
            (E.move_to_string mv);
        let mark = Machine.Journal.mark m in
        let raised =
          try
            E.apply m mv;
            false
          with Machine.Exclusion_violation _ | Prog.Spin_exhausted _ -> true
        in
        Machine.Journal.undo_to m mark;
        if not (Machine.equal m snap) then
          Alcotest.failf "undo after %s did not restore the state (step %d)"
            (E.move_to_string mv) !steps;
        Alcotest.(check int) "full fingerprint restored" fp_before
          (Machine.fingerprint m);
        Alcotest.(check int) "incremental fingerprint restored" fp_before
          (Machine.fingerprint_fast m);
        if raised then continue := false else E.apply m mv
  done;
  true

(* Only on the pure abortable TAS: the queue lock passes per-passage
   scratch through a mutable OCaml array (pure_programs = false), which
   the journal cannot roll back, so the strict restore law does not
   apply to it — the same reason suite_journal's walks stick to pure
   configurations. *)
let walk_props =
  [
    QCheck.Test.make ~count:60 ~name:"walk/undo over aborts (journal)"
      QCheck.small_nat (fun seed ->
        walk_restores ~engine:`Journal (atas_crashy_cfg ()) seed);
    QCheck.Test.make ~count:60 ~name:"walk/undo over aborts (compiled)"
      QCheck.small_nat (fun seed ->
        walk_restores ~engine:`Compiled (atas_crashy_cfg ()) seed);
  ]

(* --- schedule codec ------------------------------------------------------ *)

let test_codec_abort_roundtrip () =
  (match E.move_of_string "abort p1" with
  | Some (E.Abort 1) -> ()
  | Some mv -> Alcotest.failf "wrong parse: %s" (E.move_to_string mv)
  | None -> Alcotest.fail "abort p1 did not parse");
  Alcotest.(check string) "prints canonically" "abort p0"
    (E.move_to_string (E.Abort 0));
  let sched =
    [ E.Step 0; E.Abort 1; E.Crash (0, 0); E.Recover 0; E.Step 1 ]
  in
  (match E.schedule_of_string (E.schedule_to_string sched) with
  | Ok s -> Alcotest.(check bool) "schedule round-trips" true (s = sched)
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (E.move_of_string s = None))
    [ "abort"; "abort q0"; "abort p0 3"; "abort p-1"; "abort pp1" ]

(* --- lincheck: aborted operations stay strictly linearizable ------------- *)

(* Atomic FAA wrapped in an abortable window under abort injection: an
   aborted op is recorded as an aborted history record that the strict
   checker may keep (its effect landed) or drop (it never took effect) —
   both covered, like the crash-injection analogue in suite_lincheck. *)
let test_faa_linearizable_under_aborts () =
  let saw_abort = ref false in
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let c = Objects.Counter.make_faa layout in
      let h, v =
        Lincheck.Workload.run_and_check
          ~schedule:(Lincheck.Workload.Rand seed) ~abort_prob:0.2
          ~max_aborts:2 ~layout ~n:3 ~ops_per_proc:2
          (fun p _ ->
            Lincheck.Workload.op "faa"
              (abortably (c.Objects.Counter.fetch_inc p)))
          Lincheck.Spec.counter
      in
      if Array.exists (fun o -> o.Lincheck.History.aborted) h then
        saw_abort := true;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d (%d ops)" seed (Lincheck.History.length h))
        true v.Lincheck.Checker.linearizable)
    (List.init 20 (fun i -> (i * 29) + 3));
  Alcotest.(check bool) "some schedule actually aborted mid-op" true
    !saw_abort

(* --- metrics: aborts in the trace recomputation -------------------------- *)

let test_metrics_count_aborts () =
  let m, _, _ = one_waiter () in
  step_until m (fun () -> Machine.abort_deliverable m 0);
  ignore (Machine.abort m 0);
  step_until m (fun () -> (Machine.proc m 0).Machine.sec = Machine.Ncs);
  let metrics = Execution.Metrics.compute (Execution.Trace.of_machine m) in
  Alcotest.(check int) "total aborts" 1 metrics.Execution.Metrics.total_aborts;
  (match Execution.Metrics.find metrics 0 with
  | Some pp ->
      Alcotest.(check int) "per-process aborts" 1
        pp.Execution.Metrics.pp_aborts
  | None -> Alcotest.fail "p0 missing from the aggregation");
  match Execution.Metrics.cross_check m metrics with
  | [] -> ()
  | ms -> Alcotest.failf "cross-check mismatches: %s" (String.concat "; " ms)

let suite =
  [
    Alcotest.test_case "abort keeps the buffer, runs cleanup, no passage"
      `Quick test_abort_semantics;
    Alcotest.test_case "illegal aborts rejected" `Quick
      test_abort_illegal_states;
    Alcotest.test_case "abortable locks verified under one abort" `Quick
      test_abortable_locks_safe;
    Alcotest.test_case "buggy cleanup refuted under one abort" `Quick
      test_buggy_cleanup_refuted;
    Alcotest.test_case "abort x crash composition agrees across engines"
      `Quick test_abort_crash_composition;
    Alcotest.test_case "stop flag yields the typed partial verdict" `Quick
      test_stop_flag_partial;
    Alcotest.test_case "ill-timed abort lines replay as typed outcomes"
      `Quick test_replay_bad_abort;
    Alcotest.test_case "abort moves round-trip through the codec" `Quick
      test_codec_abort_roundtrip;
    Alcotest.test_case "aborted FAA ops stay strictly linearizable" `Quick
      test_faa_linearizable_under_aborts;
    Alcotest.test_case "metrics count aborts and cross-check" `Quick
      test_metrics_count_aborts;
    QCheck_alcotest.to_alcotest prop_abort_replay_deterministic;
  ]
  @ List.map QCheck_alcotest.to_alcotest walk_props
