(* Unit + property tests for the growable vector. *)

open Tsim

let test_push_get () =
  let v = Vec.create 0 in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" i (Vec.get v i)
  done

let test_pop () =
  let v = Vec.create 0 in
  Vec.push v 1;
  Vec.push v 2;
  Alcotest.(check int) "pop" 2 (Vec.pop v);
  Alcotest.(check int) "len" 1 (Vec.length v);
  Alcotest.(check int) "pop" 1 (Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop v))

let test_remove () =
  let v = Vec.of_list 0 [ 10; 20; 30; 40 ] in
  Alcotest.(check int) "removed" 20 (Vec.remove v 1);
  Alcotest.(check (list int)) "rest" [ 10; 30; 40 ] (Vec.to_list v)

let test_filter_map () =
  let v = Vec.of_list 0 [ 1; 2; 3; 4; 5 ] in
  let evens = Vec.filter (fun x -> x mod 2 = 0) v in
  Alcotest.(check (list int)) "filter" [ 2; 4 ] (Vec.to_list evens);
  let doubled = Vec.map (fun x -> 2 * x) v ~dummy:0 in
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8; 10 ] (Vec.to_list doubled)

let test_copy_independent () =
  let v = Vec.of_list 0 [ 1; 2 ] in
  let w = Vec.copy v in
  Vec.push w 3;
  Alcotest.(check int) "orig" 2 (Vec.length v);
  Alcotest.(check int) "copy" 3 (Vec.length w)

let test_misc_api () =
  let v = Vec.of_list 0 [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (option int)) "last" (Some 5) (Vec.last v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 4) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  Alcotest.(check bool) "for_all" true (Vec.for_all (fun x -> x < 6) v);
  Alcotest.(check (option int)) "find" (Some 4) (Vec.find_opt (fun x -> x > 3) v);
  Vec.set v 0 9;
  Alcotest.(check int) "set" 9 (Vec.get v 0);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v);
  Alcotest.(check (option int)) "last empty" None (Vec.last v)

let test_insert_truncate () =
  let v = Vec.of_list 0 [ 10; 30 ] in
  Vec.insert v 1 20;
  Vec.insert v 3 40;
  Alcotest.(check (list int)) "insert" [ 10; 20; 30; 40 ] (Vec.to_list v);
  Alcotest.check_raises "insert oob" (Invalid_argument "Vec.insert")
    (fun () -> Vec.insert v 9 0);
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncate" [ 10; 20 ] (Vec.to_list v);
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncate noop" [ 10; 20 ] (Vec.to_list v);
  Alcotest.check_raises "truncate oob" (Invalid_argument "Vec.truncate")
    (fun () -> Vec.truncate v 3)

(* The shrink policy: capacity is released exactly when the live prefix
   drops strictly below a quarter of it, to [max (2 * length) 16] — so a
   vector hovering around the boundary does not thrash (hysteresis: after
   a shrink it is half full), and small vectors never shrink below the
   16-slot floor. *)
let test_shrink_threshold () =
  let v = Vec.create 0 in
  for i = 1 to 1024 do
    Vec.push v i
  done;
  let cap = Vec.capacity v in
  Alcotest.(check bool) "capacity >= length" true (cap >= 1024);
  (* drain to exactly a quarter: no shrink yet (strict inequality) *)
  while 4 * Vec.length v > cap do
    ignore (Vec.pop v)
  done;
  Alcotest.(check int) "at exactly 1/4: kept" cap (Vec.capacity v);
  (* one more pop crosses the threshold *)
  ignore (Vec.pop v);
  let len = Vec.length v in
  Alcotest.(check int) "below 1/4: shrunk to 2*len" (2 * len)
    (Vec.capacity v);
  (* half-full after the shrink: the next pop must not shrink again *)
  ignore (Vec.pop v);
  Alcotest.(check int) "hysteresis" (2 * len) (Vec.capacity v);
  (* the floor: draining to empty stops at the 16-slot minimum *)
  Vec.clear v;
  Alcotest.(check int) "floor" 16 (Vec.capacity v);
  (* truncate shrinks too *)
  let w = Vec.create 0 in
  for i = 1 to 1024 do
    Vec.push w i
  done;
  Vec.truncate w 3;
  Alcotest.(check int) "truncate shrinks" 16 (Vec.capacity w);
  Alcotest.(check (list int)) "truncate keeps prefix" [ 1; 2; 3 ]
    (Vec.to_list w)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list 0 xs) = xs)

let prop_fold_sum =
  QCheck.Test.make ~name:"fold computes sum" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      Vec.fold ( + ) 0 (Vec.of_list 0 xs) = List.fold_left ( + ) 0 xs)

let suite =
  [
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "pop" `Quick test_pop;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "filter/map" `Quick test_filter_map;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "misc api" `Quick test_misc_api;
    Alcotest.test_case "insert/truncate" `Quick test_insert_truncate;
    Alcotest.test_case "shrink threshold" `Quick test_shrink_threshold;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_fold_sum;
  ]
