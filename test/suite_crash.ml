(* Crash–recovery fault injection, end to end.

   Machine level: the three crash semantics do what they claim to the
   write buffer, recovery restarts at the recovery section, and crash
   state is visible through the accessors. Explorer level: the crash
   adversary finds the canonical lost-release livelock of a
   non-recoverable TAS lock and the exclusion violation of a botched
   recovery section, while proving the properly-stamped recoverable TAS
   safe — the acceptance scenario of the crash-injection work. Replay
   level: crash schedules replay bit-identically (outcome and final
   state fingerprint), including explorer-found ones under QCheck. *)

open Tsim
open Tsim.Prog

(* --- machine-level crash semantics ------------------------------------- *)

(* One process, one buffered write, then a crash. *)
let one_writer ~crash_semantics ?recovery () =
  let layout = Layout.create () in
  let x = Layout.var layout "x" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false ~crash_semantics
      ?recovery ~n:1 ~layout
      ~entry:(fun _ ->
        let* () = write x 1 in
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  (Machine.create cfg, x)

let step_until_buffered m =
  (* Enter, then issue the write (stays in the buffer: no fence) *)
  ignore (Machine.step m 0);
  ignore (Machine.step m 0)

let test_drop_buffer () =
  let m, x = one_writer ~crash_semantics:Config.Drop_buffer () in
  step_until_buffered m;
  Alcotest.(check int) "write still buffered" 0 (Machine.mem_value m x);
  (match Machine.crash m 0 with
  | { Event.kind = Event.Crash { committed = 0; dropped = 1 }; _ } -> ()
  | e -> Alcotest.failf "unexpected crash event: %s" (Event.kind_tag e.Event.kind));
  Alcotest.(check int) "buffered write dropped" 0 (Machine.mem_value m x);
  Alcotest.(check bool) "buffer empty" true
    (Wbuf.is_empty (Machine.proc m 0).Machine.buf);
  Alcotest.(check int) "crash counted" 1 (Machine.crashes m 0);
  Alcotest.(check int) "total counted" 1 (Machine.crashes_total m);
  Alcotest.(check bool) "needs recovery" true (Machine.needs_recovery m 0)

let test_flush_buffer () =
  let m, x = one_writer ~crash_semantics:Config.Flush_buffer () in
  step_until_buffered m;
  (match Machine.crash m 0 with
  | { Event.kind = Event.Crash { committed = 1; dropped = 0 }; _ } -> ()
  | e -> Alcotest.failf "unexpected crash event: %s" (Event.kind_tag e.Event.kind));
  Alcotest.(check int) "buffered write committed" 1 (Machine.mem_value m x)

let test_atomic_prefix () =
  (* two buffered writes to distinct vars; commit exactly the first *)
  let layout = Layout.create () in
  let x = Layout.var layout "x" and y = Layout.var layout "y" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false
      ~crash_semantics:Config.Atomic_prefix ~n:1 ~layout
      ~entry:(fun _ ->
        let* () = write x 1 in
        let* () = write y 2 in
        unit)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  ignore (Machine.step m 0);
  ignore (Machine.step m 0);
  ignore (Machine.step m 0);
  (match Machine.crash ~commit_prefix:1 m 0 with
  | { Event.kind = Event.Crash { committed = 1; dropped = 1 }; _ } -> ()
  | e -> Alcotest.failf "unexpected crash event: %s" (Event.kind_tag e.Event.kind));
  Alcotest.(check int) "first write committed" 1 (Machine.mem_value m x);
  Alcotest.(check int) "second write dropped" 0 (Machine.mem_value m y);
  (* prefixes beyond the buffer are rejected *)
  let m2, _ = one_writer ~crash_semantics:Config.Atomic_prefix () in
  step_until_buffered m2;
  Alcotest.check_raises "oversized prefix"
    (Invalid_argument "Machine.crash: prefix exceeds buffer size") (fun () ->
      ignore (Machine.crash ~commit_prefix:2 m2 0))

let test_recovery_section_runs () =
  let ran = ref [] in
  let layout = Layout.create () in
  let x = Layout.var layout "x" in
  let marker = Layout.var layout "marker" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:false
      ~crash_semantics:Config.Drop_buffer
      ~recovery:(fun p ->
        ran := p :: !ran;
        let* () = write marker 7 in
        fence)
      ~n:1 ~layout
      ~entry:(fun _ ->
        let* () = write x 1 in
        fence)
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  step_until_buffered m;
  ignore (Machine.crash m 0);
  Alcotest.(check string) "pending is recover" "recover"
    (Machine.pending_to_string (Machine.pending m 0));
  (match Machine.step m 0 with
  | { Event.kind = Event.Recover; _ } -> ()
  | e -> Alcotest.failf "expected Recover, got %s" (Event.kind_tag e.Event.kind));
  Alcotest.(check bool) "recovery still pending until re-entry" true
    (Machine.needs_recovery m 0);
  (* run the process to completion: recovery then entry *)
  while Machine.pending m 0 <> Machine.P_done do
    ignore (Machine.step m 0)
  done;
  Alcotest.(check (list int)) "recovery section ran once, for p0" [ 0 ] !ran;
  Alcotest.(check int) "recovery write landed" 7 (Machine.mem_value m marker);
  Alcotest.(check int) "entry re-ran after recovery" 1 (Machine.mem_value m x);
  Alcotest.(check bool) "recovery consumed" false (Machine.needs_recovery m 0)

let test_crash_illegal_states () =
  let m, _ = one_writer ~crash_semantics:Config.Drop_buffer () in
  step_until_buffered m;
  ignore (Machine.crash m 0);
  Alcotest.check_raises "double crash"
    (Invalid_argument "Machine.crash: process already crashed") (fun () ->
      ignore (Machine.crash m 0));
  Alcotest.check_raises "drop-buffer cannot commit a prefix"
    (Invalid_argument "Machine.crash: Drop_buffer commits no prefix")
    (fun () ->
      let m2, _ = one_writer ~crash_semantics:Config.Drop_buffer () in
      step_until_buffered m2;
      ignore (Machine.crash ~commit_prefix:1 m2 0))

(* --- the acceptance scenario: TAS under crash faults -------------------- *)

let tas_cfg ~n =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    ~crash_semantics:Config.Drop_buffer
    (Locks.Tas.make ~n) ~n

let rtas_cfg ~n =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    ~crash_semantics:Config.Drop_buffer
    (Locks.Recoverable_tas.make ~n) ~n

let naive_cfg ~n =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    ~crash_semantics:Config.Drop_buffer
    (Locks.Recoverable_tas.make_naive ~n) ~n

let has_crash_move schedule =
  List.exists
    (function Mcheck.Explore.Crash _ -> true | _ -> false)
    schedule

(* Non-recoverable TAS, one process, one crash: the release write is
   dropped from the buffer, the lock word is stuck at 1, and the
   recovered process spins on a lock nobody holds — the lost-release
   (lost-update) violation. Crash-free, the same configuration
   verifies. *)
let test_tas_lost_release () =
  let crash_free =
    Mcheck.Explore.explore ~max_nodes:100_000 ~on_spin:`Violation
      (tas_cfg ~n:1)
  in
  Alcotest.(check bool) "crash-free TAS n=1 verifies" true
    crash_free.Mcheck.Explore.verified;
  let r =
    Mcheck.Explore.explore ~max_nodes:100_000 ~on_spin:`Violation
      ~max_crashes:1 (tas_cfg ~n:1)
  in
  Alcotest.(check bool) "violation found" false r.Mcheck.Explore.verified;
  match r.Mcheck.Explore.violations with
  | [] -> Alcotest.fail "no violation reported"
  | v :: _ ->
      (match v.Mcheck.Explore.kind with
      | `Spin_exhausted -> ()
      | `Exclusion _ -> Alcotest.fail "expected spin exhaustion, got exclusion"
      | `Deadlock -> Alcotest.fail "expected spin exhaustion, got deadlock");
      Alcotest.(check bool) "schedule injects a crash" true
        (has_crash_move v.Mcheck.Explore.schedule);
      (* the violating schedule replays to the same verdict (under the
         explorer's spin fuel — replay itself honours the global
         default) *)
      let saved = !Prog.default_spin_fuel in
      Prog.default_spin_fuel := 6;
      let _, outcome =
        Fun.protect
          ~finally:(fun () -> Prog.default_spin_fuel := saved)
          (fun () ->
            Mcheck.Explore.replay (tas_cfg ~n:1) v.Mcheck.Explore.schedule)
      in
      (match outcome with
      | Mcheck.Explore.R_spin _ -> ()
      | _ -> Alcotest.fail "replay did not reproduce the spin exhaustion")

(* The recoverable variant repairs exactly that scenario. *)
let test_recoverable_tas_safe () =
  let r =
    Mcheck.Explore.explore ~max_nodes:100_000 ~on_spin:`Violation
      ~max_crashes:1 (rtas_cfg ~n:1)
  in
  Alcotest.(check bool) "recoverable TAS n=1 verified under crashes" true
    r.Mcheck.Explore.verified;
  (* two processes: no exclusion violation or deadlock either (spin
     exhaustion is pruned — reachable even crash-free under contention) *)
  let r2 =
    Mcheck.Explore.explore ~max_nodes:500_000 ~max_crashes:1 (rtas_cfg ~n:2)
  in
  Alcotest.(check bool) "recoverable TAS n=2 verified under crashes" true
    r2.Mcheck.Explore.verified

(* The naive recovery section (unconditionally frees the lock) lets a
   crashed process hand itself somebody else's critical section. *)
let test_naive_recovery_exclusion () =
  let crash_free =
    Mcheck.Explore.explore ~max_nodes:500_000 (naive_cfg ~n:2)
  in
  Alcotest.(check bool) "crash-free naive variant verifies" true
    crash_free.Mcheck.Explore.verified;
  let r =
    Mcheck.Explore.explore ~max_nodes:500_000 ~max_crashes:1 (naive_cfg ~n:2)
  in
  match r.Mcheck.Explore.violations with
  | [] -> Alcotest.fail "naive recovery not caught"
  | v :: _ -> (
      (match v.Mcheck.Explore.kind with
      | `Exclusion _ -> ()
      | _ -> Alcotest.fail "expected an exclusion violation");
      Alcotest.(check bool) "schedule injects a crash" true
        (has_crash_move v.Mcheck.Explore.schedule);
      (* deterministic replay: same outcome, same final fingerprint *)
      let m1, o1 =
        Mcheck.Explore.replay (naive_cfg ~n:2) v.Mcheck.Explore.schedule
      in
      let m2, o2 =
        Mcheck.Explore.replay (naive_cfg ~n:2) v.Mcheck.Explore.schedule
      in
      Alcotest.(check bool) "same outcome" true (o1 = o2);
      Alcotest.(check int) "same fingerprint"
        (Mcheck.Explore.fingerprint m1)
        (Mcheck.Explore.fingerprint m2);
      match o1 with
      | Mcheck.Explore.R_exclusion _ -> ()
      | _ -> Alcotest.fail "replay did not reproduce the exclusion")

(* Atomic_prefix subsumes both fixed semantics: everything the explorer
   can reach under Drop_buffer or Flush_buffer it can reach under
   Atomic_prefix (the adversary picks the prefix), so the naive-recovery
   exclusion must also be found there. *)
let test_atomic_prefix_finds_naive_exclusion () =
  let cfg =
    Locks.Harness.config_of_lock ~model:Config.Cc_wb
      ~crash_semantics:Config.Atomic_prefix
      (Locks.Recoverable_tas.make_naive ~n:2) ~n:2
  in
  let r = Mcheck.Explore.explore ~max_nodes:500_000 ~max_crashes:1 cfg in
  Alcotest.(check bool) "exclusion found under atomic-prefix" true
    (List.exists
       (fun v ->
         match v.Mcheck.Explore.kind with `Exclusion _ -> true | _ -> false)
       r.Mcheck.Explore.violations)

(* --- resource bounds ---------------------------------------------------- *)

let test_node_budget_partial () =
  let r = Mcheck.Explore.explore ~max_nodes:5 (naive_cfg ~n:2) in
  Alcotest.(check bool) "not exhausted" false r.Mcheck.Explore.exhausted;
  (match r.Mcheck.Explore.partial with
  | Some `Nodes -> ()
  | Some reason ->
      Alcotest.failf "wrong partial reason: %s"
        (Mcheck.Explore.partial_reason_name reason)
  | None -> Alcotest.fail "partial reason missing");
  (* exhausted searches carry no partial reason *)
  let full = Mcheck.Explore.explore ~max_nodes:500_000 (rtas_cfg ~n:2) in
  Alcotest.(check bool) "exhausted" true full.Mcheck.Explore.exhausted;
  Alcotest.(check bool) "no partial reason" true
    (full.Mcheck.Explore.partial = None)

let test_time_budget_partial () =
  (* a zero-millisecond deadline trips at the first poll *)
  let r =
    Mcheck.Explore.explore ~max_nodes:10_000_000 ~max_millis:0
      ~max_crashes:2 (naive_cfg ~n:2)
  in
  Alcotest.(check bool) "not exhausted" false r.Mcheck.Explore.exhausted;
  match r.Mcheck.Explore.partial with
  | Some `Millis -> ()
  | Some reason ->
      Alcotest.failf "wrong partial reason: %s"
        (Mcheck.Explore.partial_reason_name reason)
  | None -> Alcotest.fail "partial reason missing"

(* --- replay hardening --------------------------------------------------- *)

let test_replay_bad_pid () =
  let schedule = [ Mcheck.Explore.Step 0; Mcheck.Explore.Crash (5, 0) ] in
  let m, outcome = Mcheck.Explore.replay (rtas_cfg ~n:2) schedule in
  (match outcome with
  | Mcheck.Explore.R_bad_pid (1, 5) -> ()
  | Mcheck.Explore.R_bad_pid (i, p) ->
      Alcotest.failf "wrong position: move %d, p%d" i p
  | _ -> Alcotest.fail "bad pid not detected");
  (* detected by pre-scan: no move was applied *)
  Alcotest.(check int) "machine untouched"
    (Mcheck.Explore.fingerprint (Machine.create (rtas_cfg ~n:2)))
    (Mcheck.Explore.fingerprint m)

let test_replay_illegal_crash_stuck () =
  (* recovering a process that never crashed is R_stuck, not an escape *)
  let schedule = [ Mcheck.Explore.Recover 0 ] in
  let _, outcome = Mcheck.Explore.replay (rtas_cfg ~n:2) schedule in
  match outcome with
  | Mcheck.Explore.R_stuck (0, _) -> ()
  | _ -> Alcotest.fail "illegal recover not reported as stuck"

(* --- qcheck: explorer-found crash schedules replay bit-identically ------ *)

(* Random straight-line programs (reused from the POR differential suite)
   explored under a crash budget; every reported violation's schedule
   must replay twice to the same outcome and the same final-state
   fingerprint. *)
let prop_crash_replay_deterministic =
  QCheck.Test.make ~count:40
    ~name:"crash schedules replay bit-identically (verdict + fingerprint)"
    Suite_mcheck_equiv.arb_prog2 (fun progs ->
      let r =
        Mcheck.Explore.explore ~max_nodes:200_000 ~max_violations:8
          ~on_spin:`Violation ~max_crashes:1
          (Suite_mcheck_equiv.config_of_rops progs)
      in
      List.for_all
        (fun v ->
          let m1, o1 =
            Mcheck.Explore.replay
              (Suite_mcheck_equiv.config_of_rops progs)
              v.Mcheck.Explore.schedule
          in
          let m2, o2 =
            Mcheck.Explore.replay
              (Suite_mcheck_equiv.config_of_rops progs)
              v.Mcheck.Explore.schedule
          in
          let violated = function
            | Mcheck.Explore.R_completed | Mcheck.Explore.R_bad_pid _
            | Mcheck.Explore.R_bad_abort _ | Mcheck.Explore.R_stuck _ ->
                false
            | Mcheck.Explore.R_exclusion _ | Mcheck.Explore.R_spin _ -> true
          in
          o1 = o2
          && Mcheck.Explore.fingerprint m1 = Mcheck.Explore.fingerprint m2
          && violated o1)
        r.Mcheck.Explore.violations)

let suite =
  [
    Alcotest.test_case "drop-buffer crash wipes the buffer" `Quick
      test_drop_buffer;
    Alcotest.test_case "flush-buffer crash commits the buffer" `Quick
      test_flush_buffer;
    Alcotest.test_case "atomic-prefix crash commits a chosen prefix" `Quick
      test_atomic_prefix;
    Alcotest.test_case "recovery section runs before re-entry" `Quick
      test_recovery_section_runs;
    Alcotest.test_case "illegal crashes rejected" `Quick
      test_crash_illegal_states;
    Alcotest.test_case "TAS lost release found under one crash" `Quick
      test_tas_lost_release;
    Alcotest.test_case "recoverable TAS verified under one crash" `Quick
      test_recoverable_tas_safe;
    Alcotest.test_case "naive recovery exclusion found" `Quick
      test_naive_recovery_exclusion;
    Alcotest.test_case "atomic-prefix also finds the naive exclusion" `Quick
      test_atomic_prefix_finds_naive_exclusion;
    Alcotest.test_case "node budget yields a typed partial verdict" `Quick
      test_node_budget_partial;
    Alcotest.test_case "time budget yields a typed partial verdict" `Quick
      test_time_budget_partial;
    Alcotest.test_case "replay pre-scans for unknown pids" `Quick
      test_replay_bad_pid;
    Alcotest.test_case "illegal recover replays as stuck" `Quick
      test_replay_illegal_crash_stuck;
    QCheck_alcotest.to_alcotest prop_crash_replay_deterministic;
  ]
