(* The shared fingerprint store (Fpstore) and the work-stealing deque
   (Deque) — the two lock-free structures under the parallel explorer.

   Sequential tests pin the visit protocol (claim, mask-aware cover
   accounting, the fp=0 remap); concurrent tests hammer the structures
   from real domains and assert the invariants the explorer's soundness
   rests on: per-fingerprint granted covers union to the requested
   covers (no interleaving is ever lost — grants may overlap, that is
   re-exploration, which is sound), occupancy counts distinct
   fingerprints, and the deque neither duplicates nor loses items.

   The memory-bounded modes are then exercised end to end: a bitstate
   search over a space larger than its bit array must still verify and
   must confess a nonzero omission probability; a bounded store smaller
   than the space must evict, re-explore, and reach the exact verdict. *)

open Tsim
open Tsim.Prog
module F = Mcheck.Fpstore
module D = Mcheck.Deque

(* --- sequential visit protocol ---------------------------------------- *)

let exact () = F.create ~mode:Config.Store_exact ~expected:10_000

let test_exact_claim () =
  let s = exact () in
  (match F.visit s ~fp:42 ~cover:(-1) with
  | F.New -> ()
  | _ -> Alcotest.fail "first visit must be New");
  (match F.visit s ~fp:42 ~cover:(-1) with
  | F.Covered -> ()
  | _ -> Alcotest.fail "revisit with same cover must be Covered");
  Alcotest.(check int) "one entry" 1 (F.entries s);
  Alcotest.(check int) "no drops" 0 (F.drops s);
  Alcotest.(check int) "no evictions" 0 (F.evictions s)

let test_exact_mask_widening () =
  let s = exact () in
  (* claim under a narrow cover: only moves {0,1} will be explored *)
  (match F.visit s ~fp:7 ~cover:0b0011 with
  | F.New -> ()
  | _ -> Alcotest.fail "first visit must be New");
  (* same cover again: fully covered *)
  (match F.visit s ~fp:7 ~cover:0b0011 with
  | F.Covered -> ()
  | _ -> Alcotest.fail "subset revisit must be Covered");
  (* widened cover: owed exactly the new bits *)
  (match F.visit s ~fp:7 ~cover:0b0111 with
  | F.Partial fresh -> Alcotest.(check int) "fresh bits" 0b0100 fresh
  | _ -> Alcotest.fail "widened revisit must be Partial");
  (* and now that too is covered *)
  (match F.visit s ~fp:7 ~cover:0b0111 with
  | F.Covered -> ()
  | _ -> Alcotest.fail "re-revisit must be Covered");
  Alcotest.(check int) "still one entry" 1 (F.entries s)

let test_exact_zero_fp () =
  (* a genuine fingerprint of 0 must behave like any other value, not
     alias the empty-slot sentinel *)
  let s = exact () in
  (match F.visit s ~fp:0 ~cover:(-1) with
  | F.New -> ()
  | _ -> Alcotest.fail "fp=0 first visit must be New");
  (match F.visit s ~fp:0 ~cover:(-1) with
  | F.Covered -> ()
  | _ -> Alcotest.fail "fp=0 revisit must be Covered");
  Alcotest.(check int) "fp=0 occupies one slot" 1 (F.entries s)

let test_exact_distinct_fps () =
  let s = exact () in
  for i = 1 to 1000 do
    match F.visit s ~fp:(i * 0x1E3779B97F4A7C15) ~cover:(-1) with
    | F.New -> ()
    | _ -> Alcotest.fail "distinct fps must all be New"
  done;
  Alcotest.(check int) "1000 entries" 1000 (F.entries s);
  Alcotest.(check (float 0.0)) "exact mode never omits" 0.0
    (F.omission_prob s)

(* --- concurrent hammer -------------------------------------------------

   4 domains visit a shared pool of fingerprints, each visit carrying a
   per-visitor cover. Afterwards, for every fingerprint the union of
   granted move sets (New grants the full cover; Partial grants the
   fresh bits) must equal the union of all requested covers: every move
   some visitor offered to explore was handed to someone. Overlapping
   grants are legal (races resurrect bits — re-exploration), lost bits
   are not. *)

let test_concurrent_no_lost_cover () =
  let n_domains = 4 and n_fps = 512 and rounds = 50 in
  let s = F.create ~mode:Config.Store_exact ~expected:(4 * n_fps) in
  let fp_of i = ((i + 1) * 0x2545F4914F6CDD1D) land max_int in
  (* per-domain grant log: grants.(d).(i) accumulates the move bits domain
     d was told to explore for fingerprint i *)
  let grants = Array.init n_domains (fun _ -> Array.make n_fps 0) in
  let covers = Array.init n_domains (fun d -> 1 lsl (d * 2 mod 6)) in
  let worker d () =
    let mine = grants.(d) in
    for _ = 1 to rounds do
      for i = 0 to n_fps - 1 do
        (* each domain offers its own cover bit plus a shared bit *)
        let cover = covers.(d) lor 0b1000000 in
        match F.visit s ~fp:(fp_of i) ~cover with
        | F.New -> mine.(i) <- mine.(i) lor cover
        | F.Partial fresh -> mine.(i) <- mine.(i) lor fresh
        | F.Covered -> ()
      done
    done
  in
  let ds = Array.init n_domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join ds;
  let want =
    Array.fold_left (fun acc c -> acc lor c) 0b1000000 covers
  in
  for i = 0 to n_fps - 1 do
    let got =
      Array.fold_left (fun acc g -> acc lor g.(i)) 0 grants
    in
    if got <> want then
      Alcotest.failf "fp %d: granted cover %x <> requested union %x" i got
        want
  done;
  Alcotest.(check int) "entries = distinct fingerprints" n_fps (F.entries s);
  Alcotest.(check int) "no drops at this load" 0 (F.drops s)

(* A bounded store under deterministic (sequential) eviction pressure:
   256 slots = 4 shards of 64; fingerprints below 2^60 all land in shard
   0, so 64 of them fill it exactly and the 65th must evict. The victim
   is gone — re-visiting the original 64 re-inserts every missing one
   (each a counted eviction, answered New = re-explore), and never
   invents coverage: every answer is New or Covered, no drops. *)
let test_bounded_evict_sequential () =
  let s = F.create ~mode:(Config.Store_bounded { log2_slots = 8 }) ~expected:0 in
  for i = 1 to 64 do
    match F.visit s ~fp:i ~cover:(-1) with
    | F.New -> ()
    | _ -> Alcotest.failf "fp %d: first visit must be New" i
  done;
  Alcotest.(check int) "shard full, no evictions yet" 0 (F.evictions s);
  (match F.visit s ~fp:65 ~cover:(-1) with
  | F.New -> ()
  | _ -> Alcotest.fail "overflowing insert must still be New");
  Alcotest.(check int) "one eviction" 1 (F.evictions s);
  Alcotest.(check int) "occupancy unchanged by eviction" 64 (F.entries s);
  (match F.visit s ~fp:65 ~cover:(-1) with
  | F.Covered -> ()
  | _ -> Alcotest.fail "evicting insert must be remembered");
  let news = ref 0 in
  for i = 1 to 64 do
    match F.visit s ~fp:i ~cover:(-1) with
    | F.New -> incr news
    | F.Covered -> ()
    | F.Partial _ -> Alcotest.failf "fp %d: unexpected Partial" i
  done;
  Alcotest.(check bool)
    (Printf.sprintf "at least the victim re-explored (%d)" !news)
    true (!news >= 1);
  (* sequentially every re-insert evicts in one attempt: evictions track
     the re-explorations exactly *)
  Alcotest.(check int) "evictions = 1 + re-inserts" (1 + !news)
    (F.evictions s);
  Alcotest.(check int) "nothing dropped" 0 (F.drops s)

(* The no-lost-cover hammer against a store 8x smaller than the
   fingerprint set: eviction churn on every probe window, from 4 domains
   at once. This is the regression test for the eviction race the review
   caught — a single-CAS eviction let bits claimed for the victim leak
   into the new occupant's remaining word, i.e. moves counted as granted
   that nobody was ever handed; the union check below fails in that
   world. With the two-phase tombstone + shard seqlock, grants may
   duplicate (re-exploration) but must still union to every requested
   cover. *)
let test_concurrent_bounded_no_lost_cover () =
  let n_domains = 4 and n_fps = 2048 and rounds = 50 in
  let s = F.create ~mode:(Config.Store_bounded { log2_slots = 8 }) ~expected:0 in
  let fp_of i = ((i + 1) * 0x2545F4914F6CDD1D) land max_int in
  let grants = Array.init n_domains (fun _ -> Array.make n_fps 0) in
  let covers = Array.init n_domains (fun d -> 1 lsl (d * 2 mod 6)) in
  let worker d () =
    let mine = grants.(d) in
    for _ = 1 to rounds do
      for i = 0 to n_fps - 1 do
        let cover = covers.(d) lor 0b1000000 in
        match F.visit s ~fp:(fp_of i) ~cover with
        | F.New -> mine.(i) <- mine.(i) lor cover
        | F.Partial fresh -> mine.(i) <- mine.(i) lor fresh
        | F.Covered -> ()
      done
    done
  in
  let ds = Array.init n_domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join ds;
  let want = Array.fold_left (fun acc c -> acc lor c) 0b1000000 covers in
  for i = 0 to n_fps - 1 do
    let got = Array.fold_left (fun acc g -> acc lor g.(i)) 0 grants in
    if got <> want then
      Alcotest.failf "fp %d: granted cover %x <> requested union %x under \
                      eviction churn" i got want
  done;
  let ev = F.evictions s in
  Alcotest.(check bool)
    (Printf.sprintf "eviction churn really happened (%d)" ev)
    true (ev > 0)

(* --- deque ------------------------------------------------------------- *)

let test_deque_owner_lifo () =
  let q = D.create () in
  for i = 1 to 5 do D.push q i done;
  Alcotest.(check int) "size" 5 (D.size q);
  for i = 5 downto 1 do
    match D.pop q with
    | Some v -> Alcotest.(check int) "lifo pop" i v
    | None -> Alcotest.fail "premature empty"
  done;
  Alcotest.(check bool) "empty" true (D.pop q = None)

let test_deque_thief_fifo () =
  let q = D.create () in
  for i = 1 to 5 do D.push q i done;
  for i = 1 to 5 do
    match D.steal q with
    | Some v -> Alcotest.(check int) "fifo steal" i v
    | None -> Alcotest.fail "premature empty"
  done;
  Alcotest.(check bool) "empty after steals" true (D.steal q = None)

let test_deque_grow () =
  (* push far past the 16-cell initial ring; everything must survive *)
  let q = D.create () in
  for i = 1 to 1000 do D.push q i done;
  let seen = ref 0 in
  let rec drain () =
    match D.pop q with
    | Some v -> seen := !seen + v; drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "sum of 1..1000" (1000 * 1001 / 2) !seen

let test_deque_concurrent () =
  let q = D.create () in
  let n = 20_000 and n_thieves = 3 in
  let hits = Array.make (n + 1) 0 in
  let hits_mutex = Mutex.create () in
  let record lst =
    Mutex.lock hits_mutex;
    List.iter (fun v -> hits.(v) <- hits.(v) + 1) lst;
    Mutex.unlock hits_mutex
  in
  let stop = Atomic.make false in
  let thief () =
    let mine = ref [] in
    while not (Atomic.get stop) do
      match D.steal q with
      | Some v -> mine := v :: !mine
      | None -> Domain.cpu_relax ()
    done;
    (* final sweep after the owner is done *)
    let rec sweep () =
      match D.steal q with
      | Some v -> mine := v :: !mine; sweep ()
      | None -> ()
    in
    sweep ();
    record !mine
  in
  let thieves = Array.init n_thieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  for i = 1 to n do
    D.push q i;
    (* interleave pops to exercise the owner/thief last-element race *)
    if i land 3 = 0 then
      match D.pop q with Some v -> mine := v :: !mine | None -> ()
  done;
  let rec drain () =
    match D.pop q with
    | Some v -> mine := v :: !mine; drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  record !mine;
  for i = 1 to n do
    if hits.(i) <> 1 then
      Alcotest.failf "item %d seen %d times (want exactly 1)" i hits.(i)
  done

(* --- memory-bounded modes, end to end ---------------------------------- *)

let peterson ~passages () =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2
    ~max_passages:passages ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let* () = fence in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

let with_store store cfg = { cfg with Config.store }

(* Exact seen set: 3022 states at two passages (por off) — nearly 3x the
   1024-bit array, so bitstate MUST be omitting states it cannot tell
   apart, and must say so. The workload is violation-free, so pruning by
   alias cannot change the verdict here; what the test pins is that the
   search completes under genuine memory pressure and that the verdict
   arrives with a confession, not silently. *)
let test_bitstate_exceeds_bound () =
  let cfg =
    with_store
      (Config.Store_bitstate { log2_bits = 10; hashes = 2 })
      (peterson ~passages:2 ())
  in
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false cfg in
  Alcotest.(check bool) "verified" true r.Mcheck.Explore.verified;
  Alcotest.(check bool) "exhausted" true r.Mcheck.Explore.exhausted;
  let p = r.Mcheck.Explore.stats.Mcheck.Explore.omission_prob in
  Alcotest.(check bool)
    (Printf.sprintf "omission_prob %g > 0" p)
    true (p > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "omission_prob %g <= 1" p)
    true (p <= 1.0);
  (* the bit array is far smaller than the space: fewer distinct claims
     than the exact count proves states really were conflated *)
  Alcotest.(check bool) "fewer nodes than the exact space" true
    (r.Mcheck.Explore.nodes < 3022)

(* A 256-slot bounded store against the 706-state single-passage space:
   evictions must occur, re-exploration inflates the node count, and the
   verdict must still match the exact engine's (bounded mode never trades
   soundness, only time). *)
let test_bounded_evicts_and_agrees () =
  let exact_r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false
      (peterson ~passages:1 ())
  in
  let cfg =
    with_store
      (Config.Store_bounded { log2_slots = 8 })
      (peterson ~passages:1 ())
  in
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false cfg in
  Alcotest.(check bool) "verdicts agree" exact_r.Mcheck.Explore.verified
    r.Mcheck.Explore.verified;
  Alcotest.(check bool) "exhausted" true r.Mcheck.Explore.exhausted;
  let ev = r.Mcheck.Explore.stats.Mcheck.Explore.store_evictions in
  Alcotest.(check bool)
    (Printf.sprintf "evictions %d > 0" ev)
    true (ev > 0);
  Alcotest.(check bool) "re-exploration inflates nodes" true
    (r.Mcheck.Explore.nodes >= exact_r.Mcheck.Explore.nodes)

(* Bitstate under domains > 1: the same shared bit array serves all
   visitors; the search must still complete and confess. *)
let test_bitstate_parallel () =
  let cfg =
    with_store
      (Config.Store_bitstate { log2_bits = 10; hashes = 2 })
      (peterson ~passages:2 ())
  in
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false ~domains:4 cfg
  in
  Alcotest.(check bool) "verified" true r.Mcheck.Explore.verified;
  Alcotest.(check bool) "omission_prob > 0" true
    (r.Mcheck.Explore.stats.Mcheck.Explore.omission_prob > 0.0)

(* Unfenced Peterson: the classic TSO counterexample workload. *)
let unfenced_peterson () =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

(* Violations must survive the bitstate mode: aliasing only ever prunes
   states, and an unfenced Peterson violation is reachable along many
   schedules, so a generously-sized bit array still finds it. *)
let test_bitstate_finds_violation () =
  let cfg =
    with_store
      (Config.Store_bitstate { log2_bits = 20; hashes = 3 })
      (unfenced_peterson ())
  in
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false cfg in
  match r.Mcheck.Explore.violations with
  | { Mcheck.Explore.kind = `Exclusion _; _ } :: _ -> ()
  | _ -> Alcotest.fail "unfenced peterson violation lost under bitstate"

(* Bitstate composed with sleep-set POR. A one-bit store makes the first
   visit's coverage permanent, so the explorer must admit every state
   with the FULL move set (sleep mask zeroed on New) — otherwise a state
   first reached with a nonempty sleep mask hides its slept moves from
   every later path, an omission the (ones/m)^k estimate knows nothing
   about. With an array generously larger than the space, aliasing is
   negligible and bitstate+POR must reproduce the exact verdicts: the
   fenced lock verifies, the unfenced one still yields its violation. *)
let test_bitstate_por_matches_exact () =
  let bits = Config.Store_bitstate { log2_bits = 20; hashes = 3 } in
  let exact_r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:true
      (peterson ~passages:1 ())
  in
  Alcotest.(check bool) "exact+por verifies" true
    exact_r.Mcheck.Explore.verified;
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:true
      (with_store bits (peterson ~passages:1 ()))
  in
  Alcotest.(check bool) "bitstate+por verifies too" true
    r.Mcheck.Explore.verified;
  Alcotest.(check bool) "exhausted" true r.Mcheck.Explore.exhausted;
  let v =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:true
      (with_store bits (unfenced_peterson ()))
  in
  match v.Mcheck.Explore.violations with
  | { Mcheck.Explore.kind = `Exclusion _; _ } :: _ -> ()
  | _ ->
      Alcotest.fail "unfenced peterson violation lost under bitstate + por"

let suite =
  [
    Alcotest.test_case "exact: claim then covered" `Quick test_exact_claim;
    Alcotest.test_case "exact: mask widening grants fresh bits" `Quick
      test_exact_mask_widening;
    Alcotest.test_case "exact: fp=0 does not alias empty" `Quick
      test_exact_zero_fp;
    Alcotest.test_case "exact: 1000 distinct fps" `Quick
      test_exact_distinct_fps;
    Alcotest.test_case "concurrent: no cover bit lost across 4 domains"
      `Quick test_concurrent_no_lost_cover;
    Alcotest.test_case "bounded: deterministic eviction accounting" `Quick
      test_bounded_evict_sequential;
    Alcotest.test_case
      "concurrent: no cover bit lost under bounded eviction churn" `Quick
      test_concurrent_bounded_no_lost_cover;
    Alcotest.test_case "deque: owner pops LIFO" `Quick test_deque_owner_lifo;
    Alcotest.test_case "deque: thief steals FIFO" `Quick
      test_deque_thief_fifo;
    Alcotest.test_case "deque: grow preserves items" `Quick test_deque_grow;
    Alcotest.test_case "deque: concurrent exactly-once" `Quick
      test_deque_concurrent;
    Alcotest.test_case "bitstate: verifies past the memory bound" `Quick
      test_bitstate_exceeds_bound;
    Alcotest.test_case "bounded: evicts and agrees with exact" `Quick
      test_bounded_evicts_and_agrees;
    Alcotest.test_case "bitstate: parallel domains share the bit array"
      `Quick test_bitstate_parallel;
    Alcotest.test_case "bitstate: violations survive aliasing" `Quick
      test_bitstate_finds_violation;
    Alcotest.test_case "bitstate: full cover on admit keeps POR sound"
      `Quick test_bitstate_por_matches_exact;
  ]
