(* The mutation journal (Machine.Journal) and the in-place DFS engine.

   Three layers of evidence that stepping-in-place is equivalent to
   cloning:

   - a random-walk property: from any reachable state, apply one enabled
     move (including crash/recover and PSO out-of-order commits) and roll
     it back through the journal — the machine must be structurally
     [Machine.equal] to a clone taken before the move, with the same
     fingerprint, and the incrementally-maintained fingerprint must agree
     with the full recompute at every visited state;

   - a differential check over the golden workloads: the clone and
     journal engines, at 1 and 4 domains, with and without the reduction,
     produce identical verdicts (node counts and depths too at one
     domain; at 4 the shared store makes those timing-dependent), and
     sequentially, via [~on_fingerprint], identical fingerprint
     multisets;

   - byte-level invisibility: replaying the corpus fixture with trace
     recording on under either engine produces the byte-identical Chrome
     export pinned by test/corpus/peterson_unfenced_tso.trace.json. *)

open Tsim
open Tsim.Prog
module E = Mcheck.Explore

(* --- workloads (duplicated on purpose, like suite_corpus) --------------- *)

let peterson_unfenced () =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~pure_programs:true
    ~n:2 ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

let mp_pso () =
  let layout = Layout.create () in
  let data = Layout.var layout "data" in
  let flag = Layout.var layout "flag" in
  let blocked = Layout.var layout "blocked" in
  Config.make ~model:Config.Cc_wb ~ordering:Config.Pso ~check_exclusion:true
    ~n:2 ~layout
    ~entry:(fun p ->
      if p = 0 then
        let* () = write data 1 in
        let* () = write flag 1 in
        unit
      else
        let* f = read flag in
        let* d = read data in
        if f = 1 && d = 0 then unit
        else
          let* _ = spin_until ~fuel:1 blocked (fun x -> x = 1) in
          unit)
    ~exit_section:(fun _ -> Prog.unit)
    ()

let rtas ~crash_semantics () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb ~crash_semantics
    (Locks.Recoverable_tas.make ~n:2) ~n:2

(* --- random walk: step; undo_to restores the state exactly ------------- *)

(* One walk: journal on, repeatedly pick a random enabled move; before
   applying it, snapshot (clone + full fingerprint + mark); apply (the
   move may raise Exclusion_violation / Spin_exhausted mid-mutation —
   exactly the exception paths the DFS engine must roll back from); undo;
   check the machine is structurally identical to the snapshot with both
   fingerprints agreeing; then re-apply the move to advance. *)
let walk_restores cfg seed =
  let rng = Random.State.make [| seed |] in
  let m = Machine.create cfg in
  Machine.Journal.enable m;
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < 60 do
    incr steps;
    match E.enabled_moves ~max_crashes:2 m with
    | [] -> continue := false
    | moves ->
        let mv = List.nth moves (Random.State.int rng (List.length moves)) in
        let snap = Machine.clone m in
        let fp_before = Machine.fingerprint m in
        if Machine.fingerprint_fast m <> fp_before then
          Alcotest.failf "incremental fingerprint drifted before %s"
            (E.move_to_string mv);
        let mark = Machine.Journal.mark m in
        let raised =
          try
            E.apply m mv;
            false
          with Machine.Exclusion_violation _ | Prog.Spin_exhausted _ -> true
        in
        Machine.Journal.undo_to m mark;
        if not (Machine.equal m snap) then
          Alcotest.failf "undo after %s did not restore the state (step %d)"
            (E.move_to_string mv) !steps;
        Alcotest.(check int) "full fingerprint restored" fp_before
          (Machine.fingerprint m);
        Alcotest.(check int) "incremental fingerprint restored" fp_before
          (Machine.fingerprint_fast m);
        (* advance: exception-raising moves end the walk (the machine was
           rolled back, so the exploration frontier ends here too) *)
        if raised then continue := false else E.apply m mv
  done;
  true

let prop_walk name cfg =
  QCheck.Test.make ~count:60 ~name QCheck.small_nat (fun seed ->
      walk_restores cfg seed)

let walk_props =
  [
    prop_walk "walk/undo: peterson unfenced TSO" (peterson_unfenced ());
    prop_walk "walk/undo: mp PSO" (mp_pso ());
    prop_walk "walk/undo: rtas drop-buffer"
      (rtas ~crash_semantics:Config.Drop_buffer ());
    prop_walk "walk/undo: rtas flush-buffer"
      (rtas ~crash_semantics:Config.Flush_buffer ());
    prop_walk "walk/undo: rtas atomic-prefix"
      (rtas ~crash_semantics:Config.Atomic_prefix ());
    prop_walk "walk/undo: peterson with trace recording"
      { (peterson_unfenced ()) with Config.record_trace = true };
    prop_walk "walk/undo: rtas atomic-prefix with trace recording"
      {
        (rtas ~crash_semantics:Config.Atomic_prefix ()) with
        Config.record_trace = true;
      };
  ]

(* --- engine differential ------------------------------------------------ *)

let kind_name = function
  | `Exclusion (a, b) -> Printf.sprintf "exclusion(%d,%d)" a b
  | `Deadlock -> "deadlock"
  | `Spin_exhausted -> "spin"

let explore_with ~engine ~domains ~por ?on_fingerprint ?max_crashes cfg =
  E.explore ~max_nodes:200_000 ~domains ~por ?on_fingerprint ?max_crashes
    { cfg with Config.engine }

(* Clone vs journal at the same (domains, por): same verdict, same
   violation kinds, same exhaustion. Node counts and max depth are only
   compared sequentially: with the shared fingerprint store, which
   domain claims a state first decides the depth it is recorded at (and,
   under nontrivial sleep masks, how much mask-aware re-exploration
   happens), so those tallies are timing-dependent at domains > 1 —
   deliberately outside the determinism contract (explore.mli). *)
let check_engines name ?max_crashes cfg =
  List.iter
    (fun (domains, por) ->
      let rc = explore_with ~engine:`Clone ~domains ~por ?max_crashes cfg in
      let rj = explore_with ~engine:`Journal ~domains ~por ?max_crashes cfg in
      let tag =
        Printf.sprintf "%s domains=%d por=%b" name domains por
      in
      Alcotest.(check bool) (tag ^ ": verified") rc.E.verified rj.E.verified;
      Alcotest.(check bool)
        (tag ^ ": exhausted") rc.E.exhausted rj.E.exhausted;
      if domains = 1 then begin
        Alcotest.(check int) (tag ^ ": nodes") rc.E.nodes rj.E.nodes;
        Alcotest.(check int)
          (tag ^ ": max depth") rc.E.max_depth rj.E.max_depth
      end;
      Alcotest.(check (list string))
        (tag ^ ": violation kinds")
        (List.map (fun v -> kind_name v.E.kind) rc.E.violations)
        (List.map (fun v -> kind_name v.E.kind) rj.E.violations))
    [ (1, true); (1, false); (4, true); (4, false) ]

let test_engines_peterson () = check_engines "peterson" (peterson_unfenced ())
let test_engines_mp_pso () = check_engines "mp_pso" (mp_pso ())

let test_engines_rtas () =
  check_engines "rtas" ~max_crashes:1
    (rtas ~crash_semantics:Config.Drop_buffer ())

(* Sequentially the two engines must visit the same fingerprint multiset,
   not just the same number of nodes. *)
let fp_multiset ~engine ?max_crashes cfg =
  let tbl = Hashtbl.create 1024 in
  let r =
    explore_with ~engine ~domains:1 ~por:true ?max_crashes
      ~on_fingerprint:(fun fp ->
        Hashtbl.replace tbl fp
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
      cfg
  in
  (r, tbl)

let check_fp_sets name ?max_crashes cfg =
  let rc, tc = fp_multiset ~engine:`Clone ?max_crashes cfg in
  let rj, tj = fp_multiset ~engine:`Journal ?max_crashes cfg in
  Alcotest.(check int) (name ^ ": nodes") rc.E.nodes rj.E.nodes;
  Alcotest.(check int)
    (name ^ ": distinct fingerprints")
    (Hashtbl.length tc) (Hashtbl.length tj);
  Hashtbl.iter
    (fun fp n ->
      match Hashtbl.find_opt tj fp with
      | Some n' when n = n' -> ()
      | Some n' ->
          Alcotest.failf "%s: fingerprint %#x visited %d (clone) vs %d \
                          (journal) times"
            name fp n n'
      | None ->
          Alcotest.failf "%s: fingerprint %#x visited by clone only" name fp)
    tc

let test_fp_sets_peterson () = check_fp_sets "peterson" (peterson_unfenced ())

let test_fp_sets_rtas () =
  check_fp_sets "rtas" ~max_crashes:1
    (rtas ~crash_semantics:Config.Atomic_prefix ())

(* Paranoid mode recomputes the full fingerprint at every node and fails
   on drift — a whole-space version of the walk property. *)
let test_paranoid () =
  List.iter
    (fun (name, max_crashes, cfg) ->
      let r =
        E.explore ~max_nodes:200_000 ~max_crashes ~paranoid_fp:true cfg
      in
      Alcotest.(check bool) (name ^ ": explored") true (r.E.nodes > 0))
    [
      ("peterson", 0, peterson_unfenced ());
      ("mp_pso", 0, mp_pso ());
      ("rtas", 1, rtas ~crash_semantics:Config.Atomic_prefix ());
    ]

(* Journal gauges surface in stats under the journal engine only. *)
let test_journal_stats () =
  (* pin the engine: the config default bends to PA_ENGINE, and this
     test is specifically about the journal gauges *)
  let cfg = { (peterson_unfenced ()) with Config.engine = `Journal } in
  let rj = E.explore ~max_nodes:200_000 cfg in
  let rc = E.explore ~max_nodes:200_000 { cfg with Config.engine = `Clone } in
  Alcotest.(check bool) "journal pushes records" true
    (rj.E.stats.E.undo_records > 0);
  Alcotest.(check bool) "journal has a peak" true
    (rj.E.stats.E.journal_peak > 0);
  Alcotest.(check int) "clone pushes none" 0 rc.E.stats.E.undo_records;
  Alcotest.(check int) "clone has no peak" 0 rc.E.stats.E.journal_peak

(* --- byte-identical Chrome export under the journal engine ------------- *)

let test_chrome_byte_identical () =
  let schedule =
    match
      E.load_schedule (Filename.concat "corpus" "peterson_unfenced_tso.sched")
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "fixture schedule: %s" e
  in
  let export engine =
    let cfg =
      { (peterson_unfenced ()) with Config.record_trace = true; engine }
    in
    let m, outcome = E.replay cfg schedule in
    (match outcome with
    | E.R_exclusion _ -> ()
    | _ -> Alcotest.fail "fixture replay should end in the exclusion");
    Execution.Chrome.to_string (Execution.Trace.of_machine m)
  in
  let golden =
    In_channel.with_open_bin
      (Filename.concat "corpus" "peterson_unfenced_tso.trace.json")
      In_channel.input_all
  in
  Alcotest.(check string) "journal replay matches the golden bytes" golden
    (export `Journal);
  Alcotest.(check string) "clone replay matches the golden bytes" golden
    (export `Clone);
  Alcotest.(check string) "compiled replay matches the golden bytes" golden
    (export `Compiled)

let suite =
  List.map QCheck_alcotest.to_alcotest walk_props
  @ [
      Alcotest.test_case "engines agree: peterson" `Quick
        test_engines_peterson;
      Alcotest.test_case "engines agree: mp PSO" `Quick test_engines_mp_pso;
      Alcotest.test_case "engines agree: rtas crashes<=1" `Quick
        test_engines_rtas;
      Alcotest.test_case "fingerprint sets agree: peterson" `Quick
        test_fp_sets_peterson;
      Alcotest.test_case "fingerprint sets agree: rtas" `Quick
        test_fp_sets_rtas;
      Alcotest.test_case "paranoid fingerprint cross-check" `Quick
        test_paranoid;
      Alcotest.test_case "journal gauges in stats" `Quick test_journal_stats;
      Alcotest.test_case "chrome export byte-identical across engines"
        `Quick test_chrome_byte_identical;
    ]
