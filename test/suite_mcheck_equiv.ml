(* Cross-engine equivalence: the throughput-tuned explorer configurations
   (trace recording off, packed FNV fingerprints, bitset awareness sets,
   and the domain-parallel driver) must report the same verdicts as the
   reference configuration (trace recording on, single domain — the seed
   engine's operating point).

   Node counts are NOT compared: per-domain seen tables lose cross-domain
   deduplication, so [nodes] legitimately differs. What must agree is the
   semantics — [verified], [exhausted] (for verifying configurations) and
   the kind of violation found (for violating ones). *)

open Tsim
open Tsim.Prog

let peterson ~fenced =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let* () = if fenced then fence else unit in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

let dekker () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    (Locks.Dekker.make ~n:2) ~n:2

(* Message-passing litmus encoded as exclusion reachability (cf.
   suite_mcheck): under PSO the out-of-order commit reaches the anomaly,
   reported as an exclusion violation. *)
let mp_pso () =
  let layout = Layout.create () in
  let data = Layout.var layout "data" in
  let flag = Layout.var layout "flag" in
  let blocked = Layout.var layout "blocked" in
  Config.make ~model:Config.Cc_wb ~ordering:Config.Pso ~check_exclusion:true
    ~n:2 ~layout
    ~entry:(fun p ->
      if p = 0 then
        let* () = write data 1 in
        let* () = write flag 1 in
        unit
      else
        let* f = read flag in
        let* d = read data in
        if f = 1 && d = 0 then unit
        else
          let* _ = spin_until ~fuel:1 blocked (fun x -> x = 1) in
          unit)
    ~exit_section:(fun _ -> Prog.unit)
    ()

type verdict = Verified | Violation of string | Inconclusive

let verdict_to_string = function
  | Verified -> "verified"
  | Violation k -> "violation:" ^ k
  | Inconclusive -> "inconclusive"

let verdict_of (r : Mcheck.Explore.result) =
  match r.Mcheck.Explore.violations with
  | [] -> if r.Mcheck.Explore.verified then Verified else Inconclusive
  | v :: _ ->
      Violation
        (match v.Mcheck.Explore.kind with
        | `Exclusion _ -> "exclusion"
        | `Deadlock -> "deadlock"
        | `Spin_exhausted -> "spin")

let verdict = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (verdict_to_string v))
    ( = )

(* The three engine configurations under comparison. *)
let engines =
  [
    ("reference (trace on, d=1)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~record_trace:true cfg);
    ("fast (trace off, d=1)",
     fun cfg -> Mcheck.Explore.explore ~max_nodes:2_000_000 cfg);
    ("parallel (trace off, d=4)",
     fun cfg -> Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:4 cfg);
  ]

let check_equiv name mk_cfg expected =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun (engine, run) ->
          let r = run (mk_cfg ()) in
          Alcotest.check verdict
            (Printf.sprintf "%s on %s" engine name)
            expected (verdict_of r);
          (* verifying configurations must actually exhaust the space *)
          if expected = Verified then
            Alcotest.(check bool)
              (Printf.sprintf "%s exhausted on %s" engine name)
              true r.Mcheck.Explore.exhausted;
          (* reported exclusion schedules always replay *)
          match r.Mcheck.Explore.violations with
          | { Mcheck.Explore.kind = `Exclusion _; schedule } :: _ ->
              ignore (Mcheck.Explore.replay_schedule (mk_cfg ()) schedule)
          | _ -> ())
        engines)

(* Determinism of the parallel driver: same configuration, same k, same
   result — including node counts, which are fixed by the per-domain
   budget split. *)
let test_parallel_deterministic () =
  let run () =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:4
      (peterson ~fenced:true)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same nodes" a.Mcheck.Explore.nodes
    b.Mcheck.Explore.nodes;
  Alcotest.(check int) "same depth" a.Mcheck.Explore.max_depth
    b.Mcheck.Explore.max_depth;
  Alcotest.(check bool) "same verdict" a.Mcheck.Explore.verified
    b.Mcheck.Explore.verified

(* Trace recording must not change what the explorer can see: with it on,
   the machine trace grows, but verdict, node count and depth agree with
   the trace-off engine (the fingerprint never covers the trace). *)
let test_trace_flag_invisible () =
  let on =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~record_trace:true
      (peterson ~fenced:true)
  in
  let off =
    Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced:true)
  in
  Alcotest.(check int) "same nodes" on.Mcheck.Explore.nodes
    off.Mcheck.Explore.nodes;
  Alcotest.(check int) "same depth" on.Mcheck.Explore.max_depth
    off.Mcheck.Explore.max_depth

let suite =
  [
    check_equiv "peterson fenced" (fun () -> peterson ~fenced:true) Verified;
    check_equiv "peterson unfenced"
      (fun () -> peterson ~fenced:false)
      (Violation "exclusion");
    check_equiv "dekker" dekker Verified;
    check_equiv "mp litmus under PSO" mp_pso (Violation "exclusion");
    Alcotest.test_case "parallel driver is deterministic" `Quick
      test_parallel_deterministic;
    Alcotest.test_case "record_trace does not affect the search" `Quick
      test_trace_flag_invisible;
  ]
