(* Cross-engine equivalence: the throughput-tuned explorer configurations
   (trace recording off, packed FNV fingerprints, bitset awareness sets,
   and the domain-parallel driver) must report the same verdicts as the
   reference configuration (trace recording on, single domain — the seed
   engine's operating point).

   Node counts are NOT compared across engines: the reduction exists to
   change them, and under nontrivial sleep masks the shared-store claim
   races make parallel counts timing-dependent. What must agree is the
   semantics — [verified], [exhausted] (for verifying configurations) and
   the kind of violation found (for violating ones). *)

open Tsim
open Tsim.Prog

let peterson ~fenced =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~pure_programs:true
    ~n:2 ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let* () = if fenced then fence else unit in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

let dekker () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    (Locks.Dekker.make ~n:2) ~n:2

(* Message-passing litmus encoded as exclusion reachability (cf.
   suite_mcheck): under PSO the out-of-order commit reaches the anomaly,
   reported as an exclusion violation. *)
let mp_pso () =
  let layout = Layout.create () in
  let data = Layout.var layout "data" in
  let flag = Layout.var layout "flag" in
  let blocked = Layout.var layout "blocked" in
  Config.make ~model:Config.Cc_wb ~ordering:Config.Pso ~check_exclusion:true
    ~pure_programs:true ~n:2 ~layout
    ~entry:(fun p ->
      if p = 0 then
        let* () = write data 1 in
        let* () = write flag 1 in
        unit
      else
        let* f = read flag in
        let* d = read data in
        if f = 1 && d = 0 then unit
        else
          let* _ = spin_until ~fuel:1 blocked (fun x -> x = 1) in
          unit)
    ~exit_section:(fun _ -> Prog.unit)
    ()

type verdict = Verified | Violation of string | Inconclusive

let verdict_to_string = function
  | Verified -> "verified"
  | Violation k -> "violation:" ^ k
  | Inconclusive -> "inconclusive"

let verdict_of (r : Mcheck.Explore.result) =
  match r.Mcheck.Explore.violations with
  | [] -> if r.Mcheck.Explore.verified then Verified else Inconclusive
  | v :: _ ->
      Violation
        (match v.Mcheck.Explore.kind with
        | `Exclusion _ -> "exclusion"
        | `Deadlock -> "deadlock"
        | `Spin_exhausted -> "spin")

let verdict = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (verdict_to_string v))
    ( = )

let kind_set (r : Mcheck.Explore.result) =
  List.sort_uniq compare
    (List.map
       (fun v ->
         match v.Mcheck.Explore.kind with
         | `Exclusion _ -> "exclusion"
         | `Deadlock -> "deadlock"
         | `Spin_exhausted -> "spin")
       r.Mcheck.Explore.violations)

(* The engine configurations under comparison: the reference point (trace
   on, no reduction, single domain — the seed engine), then the
   throughput features and the partial-order reduction in every
   combination of domains, under all three child-expansion engines
   (clone, journal and compiled) now that all domain counts share one
   fingerprint store. POR must be verdict-invisible everywhere. *)
let with_engine engine cfg = { cfg with Config.engine }

let engines =
  [
    ("reference (trace on, por off, d=1)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~record_trace:true
         ~por:false cfg);
    ("fast (por on, d=1)",
     fun cfg -> Mcheck.Explore.explore ~max_nodes:2_000_000 cfg);
    ("fast (por off, d=1)",
     fun cfg -> Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false cfg);
    ("parallel (por on, d=4)",
     fun cfg -> Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:4 cfg);
    ("parallel (por off, d=4)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:4 ~por:false cfg);
    ("parallel (por on, d=8)",
     fun cfg -> Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:8 cfg);
    ("parallel clone (por on, d=4)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:4
         (with_engine `Clone cfg));
    ("parallel clone (por off, d=8)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:8 ~por:false
         (with_engine `Clone cfg));
    ("compiled (por on, d=1)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000
         (with_engine `Compiled cfg));
    ("compiled (por off, d=1)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false
         (with_engine `Compiled cfg));
    ("parallel compiled (por on, d=4)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:4
         (with_engine `Compiled cfg));
    ("parallel compiled (por off, d=8)",
     fun cfg ->
       Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:8 ~por:false
         (with_engine `Compiled cfg));
  ]

let check_equiv name mk_cfg expected =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun (engine, run) ->
          let r = run (mk_cfg ()) in
          Alcotest.check verdict
            (Printf.sprintf "%s on %s" engine name)
            expected (verdict_of r);
          (* verifying configurations must actually exhaust the space *)
          if expected = Verified then
            Alcotest.(check bool)
              (Printf.sprintf "%s exhausted on %s" engine name)
              true r.Mcheck.Explore.exhausted;
          (* reported exclusion schedules always replay *)
          match r.Mcheck.Explore.violations with
          | { Mcheck.Explore.kind = `Exclusion _; schedule } :: _ ->
              ignore (Mcheck.Explore.replay_schedule (mk_cfg ()) schedule)
          | _ -> ())
        engines)

(* Determinism of the parallel driver, per the explore.mli contract:
   [verified]/[exhausted] and the violation set are always deterministic;
   node counts additionally so when sleep masks are trivial ([por:false])
   and no cap cuts the search — each state is then claimed exactly once
   in the shared store, so [nodes] equals the state-space size regardless
   of domain timing. [max_depth] records the first-arrival depth of each
   claimed state and is deliberately NOT compared: which path wins the
   claim race varies run to run. *)
let test_parallel_deterministic () =
  let run ~por () =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:4 ~por
      (peterson ~fenced:true)
  in
  let a = run ~por:false () and b = run ~por:false () in
  Alcotest.(check int) "por off: same nodes" a.Mcheck.Explore.nodes
    b.Mcheck.Explore.nodes;
  Alcotest.(check bool) "por off: same verdict" a.Mcheck.Explore.verified
    b.Mcheck.Explore.verified;
  let a = run ~por:true () and b = run ~por:true () in
  Alcotest.(check bool) "por on: same verdict" a.Mcheck.Explore.verified
    b.Mcheck.Explore.verified;
  Alcotest.(check bool) "por on: same exhausted" a.Mcheck.Explore.exhausted
    b.Mcheck.Explore.exhausted

(* Under a widened violation cap, every engine must surface the same SET
   of violation kinds — the cap no longer truncates the interesting part
   of the space, so the kind set is part of the determinism contract. *)
let test_kind_set_equiv () =
  List.iter
    (fun (name, mk_cfg) ->
      let expected =
        kind_set
          (Mcheck.Explore.explore ~max_nodes:2_000_000 ~max_violations:8
             ~por:false (mk_cfg ()))
      in
      List.iter
        (fun (engine, domains, por) ->
          let r =
            Mcheck.Explore.explore ~max_nodes:2_000_000 ~max_violations:8
              ~domains ~por
              (with_engine engine (mk_cfg ()))
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s kinds (%s d=%d por=%b)" name
               (Tsim.Config.engine_name engine)
               domains por)
            expected (kind_set r))
        [ (`Journal, 1, true); (`Journal, 4, true); (`Journal, 8, false);
          (`Clone, 4, false); (`Compiled, 1, true); (`Compiled, 4, true);
          (`Compiled, 8, false) ])
    [ ("peterson unfenced", fun () -> peterson ~fenced:false);
      ("mp pso", mp_pso) ]

(* The ~on_fingerprint hook is a single closure that cannot be shared by
   concurrent domains; combining it with domains > 1 must be rejected
   loudly rather than racing (documented in explore.mli). *)
let test_on_fingerprint_rejects_domains () =
  Alcotest.check_raises "on_fingerprint + domains=4 rejected"
    (Invalid_argument "Explore.explore: on_fingerprint requires domains = 1")
    (fun () ->
      ignore
        (Mcheck.Explore.explore ~max_nodes:1000 ~domains:4
           ~on_fingerprint:(fun _ -> ())
           (peterson ~fenced:true)));
  (* and at domains = 1 it still works, duplicates included *)
  let n = ref 0 in
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000
      ~on_fingerprint:(fun _ -> incr n)
      (peterson ~fenced:true)
  in
  Alcotest.(check bool) "d=1 hook fired" true (!n >= r.Mcheck.Explore.nodes)

(* Trace recording must not change what the explorer can see: with it on,
   the machine trace grows, but verdict, node count and depth agree with
   the trace-off engine (the fingerprint never covers the trace). *)
let test_trace_flag_invisible () =
  let on =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~record_trace:true
      (peterson ~fenced:true)
  in
  let off =
    Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced:true)
  in
  Alcotest.(check int) "same nodes" on.Mcheck.Explore.nodes
    off.Mcheck.Explore.nodes;
  Alcotest.(check int) "same depth" on.Mcheck.Explore.max_depth
    off.Mcheck.Explore.max_depth

(* The reduction must earn its keep: on the fenced Peterson exhaustive
   check, POR explores at least 2x fewer nodes (the bench rows in
   BENCH_PR2.json record the measured counts). *)
let test_por_reduces_nodes () =
  let on = Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced:true)
  and off =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~por:false
      (peterson ~fenced:true)
  in
  Alcotest.(check bool) "por on: exhausted" true on.Mcheck.Explore.exhausted;
  Alcotest.(check bool) "por off: exhausted" true off.Mcheck.Explore.exhausted;
  Alcotest.(check bool)
    (Printf.sprintf "por-on nodes (%d) <= por-off nodes (%d) / 2"
       on.Mcheck.Explore.nodes off.Mcheck.Explore.nodes)
    true
    (2 * on.Mcheck.Explore.nodes <= off.Mcheck.Explore.nodes)

(* Sequentially (d=1) the determinism contract is total: the compiled
   engine is the journal engine on top of compile-ahead execution, so on
   identical configurations it must visit the same states in the same
   order — equal node counts, equal max depth, and equal fingerprint
   MULTISETS (state identity plus revisit counts), por on and off. *)
let fp_multiset ~engine ~por cfg =
  let tbl = Hashtbl.create 256 in
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~por
      ~on_fingerprint:(fun fp ->
        Hashtbl.replace tbl fp
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
      (with_engine engine cfg)
  in
  (r, tbl)

let check_fp_multisets name tj tc =
  Alcotest.(check int)
    (name ^ ": distinct fingerprints")
    (Hashtbl.length tj) (Hashtbl.length tc);
  Hashtbl.iter
    (fun fp n ->
      Alcotest.(check int)
        (Printf.sprintf "%s: multiplicity of %x" name fp)
        n
        (Option.value ~default:0 (Hashtbl.find_opt tc fp)))
    tj

let test_compiled_sequential_deterministic () =
  List.iter
    (fun (name, mk_cfg) ->
      List.iter
        (fun por ->
          let tag = Printf.sprintf "%s por=%b" name por in
          let rj, tj = fp_multiset ~engine:`Journal ~por (mk_cfg ()) in
          let rc, tc = fp_multiset ~engine:`Compiled ~por (mk_cfg ()) in
          Alcotest.(check bool) (tag ^ ": verified") rj.Mcheck.Explore.verified
            rc.Mcheck.Explore.verified;
          Alcotest.(check int) (tag ^ ": nodes") rj.Mcheck.Explore.nodes
            rc.Mcheck.Explore.nodes;
          Alcotest.(check int) (tag ^ ": max depth")
            rj.Mcheck.Explore.max_depth rc.Mcheck.Explore.max_depth;
          check_fp_multisets tag tj tc)
        [ true; false ])
    [ ("peterson fenced", fun () -> peterson ~fenced:true);
      ("peterson unfenced", fun () -> peterson ~fenced:false);
      ("dekker", dekker); ("mp pso", mp_pso) ]

(* --- differential property: POR is verdict-invisible ------------------- *)

(* Random 2-process straight-line entry sections over three shared
   variables (plus a never-set park variable for conditional spins),
   explored exhaustively with and without the reduction under both
   orderings. No mutual exclusion is attempted, so exclusion violations
   abound; conditional spins make some programs spin-exhaust and some
   verify. The engines must agree on [verified], [exhausted] and the SET
   of violation kinds, and the reduced run's visited states must be a
   subset of the full run's (fused chain intermediates are skipped, so
   containment — not equality — is the invariant). *)

type rop =
  | Rwrite of int * int
  | Rread of int
  | Rfence
  | Rcas of int * int * int
  | Rguard of int * int  (* read v; park (bounded spin) if it equals x *)

let rop_to_string = function
  | Rwrite (v, x) -> Printf.sprintf "w v%d %d" v x
  | Rread v -> Printf.sprintf "r v%d" v
  | Rfence -> "f"
  | Rcas (v, e, d) -> Printf.sprintf "cas v%d %d->%d" v e d
  | Rguard (v, x) -> Printf.sprintf "guard v%d=%d" v x

let gen_rop =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun v x -> Rwrite (v, x)) (int_range 0 2) (int_range 1 3));
        (3, map (fun v -> Rread v) (int_range 0 2));
        (2, return Rfence);
        (2,
         map3
           (fun v e d -> Rcas (v, e, d))
           (int_range 0 2) (int_range 0 2) (int_range 1 3));
        (2, map2 (fun v x -> Rguard (v, x)) (int_range 0 2) (int_range 0 1));
      ])

let gen_prog2 =
  QCheck.Gen.(
    triple
      (list_size (int_range 1 5) gen_rop)
      (list_size (int_range 1 5) gen_rop)
      bool)

let arb_prog2 =
  QCheck.make
    ~print:(fun (a, b, pso) ->
      Printf.sprintf "p0:[%s] p1:[%s] %s"
        (String.concat "; " (List.map rop_to_string a))
        (String.concat "; " (List.map rop_to_string b))
        (if pso then "PSO" else "TSO"))
    gen_prog2

let config_of_rops ?recovery ?crash_semantics (ops0, ops1, pso) =
  let layout = Layout.create () in
  let vars = Layout.array layout ~init:0 "v" 3 in
  let park = Layout.var layout ~init:0 "park" in
  let rec prog = function
    | [] -> unit
    | Rwrite (v, x) :: rest ->
        let* () = write vars.(v) x in
        prog rest
    | Rread v :: rest ->
        let* _ = read vars.(v) in
        prog rest
    | Rfence :: rest ->
        let* () = fence in
        prog rest
    | Rcas (v, e, d) :: rest ->
        let* _ = cas vars.(v) ~expected:e ~desired:d in
        prog rest
    | Rguard (v, x) :: rest ->
        let* y = read vars.(v) in
        if y = x then
          let* _ = spin_until ~fuel:1 park (fun b -> b = 1) in
          prog rest
        else prog rest
  in
  Config.make ~model:Config.Cc_wb
    ~ordering:(if pso then Config.Pso else Config.Tso)
    ?recovery:(Option.map (fun ops _p -> prog ops) recovery)
    ?crash_semantics ~check_exclusion:true ~pure_programs:true ~n:2 ~layout
    ~entry:(fun p -> prog (if p = 0 then ops0 else ops1))
    ~exit_section:(fun _ -> Prog.unit)
    ()

let prop_por_differential =
  QCheck.Test.make ~count:120 ~name:"por on/off: same verdict, subset states"
    arb_prog2 (fun progs ->
      let run ~por sink =
        Mcheck.Explore.explore ~max_nodes:500_000 ~max_violations:max_int
          ~on_spin:`Violation ~por ~on_fingerprint:sink
          (config_of_rops progs)
      in
      let fps_off = Hashtbl.create 256 and fps_on = Hashtbl.create 256 in
      let off = run ~por:false (fun fp -> Hashtbl.replace fps_off fp ()) in
      let on = run ~por:true (fun fp -> Hashtbl.replace fps_on fp ()) in
      if not off.Mcheck.Explore.exhausted then
        QCheck.Test.fail_report "full run did not exhaust";
      if on.Mcheck.Explore.exhausted <> off.Mcheck.Explore.exhausted then
        QCheck.Test.fail_report "exhausted disagrees";
      if on.Mcheck.Explore.verified <> off.Mcheck.Explore.verified then
        QCheck.Test.fail_report "verified disagrees";
      if kind_set on <> kind_set off then
        QCheck.Test.fail_report
          (Printf.sprintf "violation kinds disagree: por-on {%s} vs por-off {%s}"
             (String.concat "," (kind_set on))
             (String.concat "," (kind_set off)));
      Hashtbl.iter
        (fun fp () ->
          if not (Hashtbl.mem fps_off fp) then
            QCheck.Test.fail_report
              "por-on visited a state the full exploration never saw")
        fps_on;
      true)

(* Same differential under a one-crash budget: crash moves are pairwise
   dependent (shared budget) and suspend singleton-ample fusion, so the
   reduced crash exploration must still agree with the full one on every
   verdict and visit only states the full run visits. *)
let prop_por_differential_crashes =
  QCheck.Test.make ~count:60
    ~name:"por on/off with max_crashes=1: same verdict, subset states"
    arb_prog2 (fun progs ->
      let run ~por sink =
        Mcheck.Explore.explore ~max_nodes:500_000 ~max_violations:max_int
          ~on_spin:`Violation ~por ~max_crashes:1 ~on_fingerprint:sink
          (config_of_rops progs)
      in
      let fps_off = Hashtbl.create 256 and fps_on = Hashtbl.create 256 in
      let off = run ~por:false (fun fp -> Hashtbl.replace fps_off fp ()) in
      let on = run ~por:true (fun fp -> Hashtbl.replace fps_on fp ()) in
      if not off.Mcheck.Explore.exhausted then
        QCheck.Test.fail_report "full run did not exhaust";
      if on.Mcheck.Explore.exhausted <> off.Mcheck.Explore.exhausted then
        QCheck.Test.fail_report "exhausted disagrees";
      if on.Mcheck.Explore.verified <> off.Mcheck.Explore.verified then
        QCheck.Test.fail_report "verified disagrees";
      if kind_set on <> kind_set off then
        QCheck.Test.fail_report
          (Printf.sprintf
             "violation kinds disagree: por-on {%s} vs por-off {%s}"
             (String.concat "," (kind_set on))
             (String.concat "," (kind_set off)));
      Hashtbl.iter
        (fun fp () ->
          if not (Hashtbl.mem fps_off fp) then
            QCheck.Test.fail_report
              "por-on visited a state the full exploration never saw")
        fps_on;
      true)

(* --- differential property: engines agree on random programs ----------- *)

(* Crash-capable extension of the generator: the same straight-line
   sections, plus an optional recovery section and a drawn crash
   semantics, so the compiled engine's crash lowering (buffer fate,
   recovery-section re-entry, interpreter fallback at the recovery root)
   is differentially fuzzed rather than hand-tested. *)
type crashy = {
  c_progs : rop list * rop list * bool;
  c_recovery : rop list option;
  c_sem : Config.crash_semantics;
  c_crashes : int;  (* adversary crash budget for the exploration *)
}

let gen_crashy =
  QCheck.Gen.(
    gen_prog2 >>= fun progs ->
    option (list_size (int_range 1 3) gen_rop) >>= fun c_recovery ->
    oneofl [ Config.Drop_buffer; Config.Flush_buffer; Config.Atomic_prefix ]
    >>= fun c_sem ->
    int_range 1 2 >>= fun c_crashes ->
    return { c_progs = progs; c_recovery; c_sem; c_crashes })

let arb_crashy =
  QCheck.make
    ~print:(fun c ->
      let a, b, pso = c.c_progs in
      Printf.sprintf "p0:[%s] p1:[%s] %s rec:[%s] %s crashes<=%d"
        (String.concat "; " (List.map rop_to_string a))
        (String.concat "; " (List.map rop_to_string b))
        (if pso then "PSO" else "TSO")
        (match c.c_recovery with
        | None -> "-"
        | Some r -> String.concat "; " (List.map rop_to_string r))
        (Config.crash_semantics_name c.c_sem)
        c.c_crashes)
    gen_crashy

let config_of_crashy c =
  config_of_rops ?recovery:c.c_recovery ~crash_semantics:c.c_sem c.c_progs

(* Compiled vs journal on a random program: sequentially the contract is
   total, so the two runs must agree on verdict, exhaustion, kind set,
   node count, max depth and the fingerprint MULTISET, por on and off. *)
let multisets_agree tj tc =
  Hashtbl.length tj = Hashtbl.length tc
  && Hashtbl.fold
       (fun fp n ok ->
         ok && Option.value ~default:0 (Hashtbl.find_opt tc fp) = n)
       tj true

let check_engine_pair ~max_crashes ~por cfg_of () =
  let run engine sink =
    Mcheck.Explore.explore ~max_nodes:500_000 ~max_violations:max_int
      ~on_spin:`Violation ~por ~max_crashes ~on_fingerprint:sink
      (with_engine engine (cfg_of ()))
  in
  let count tbl fp =
    Hashtbl.replace tbl fp
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp))
  in
  let tj = Hashtbl.create 256 and tc = Hashtbl.create 256 in
  let rj = run `Journal (count tj) in
  let rc = run `Compiled (count tc) in
  if rj.Mcheck.Explore.verified <> rc.Mcheck.Explore.verified then
    QCheck.Test.fail_report "verified disagrees";
  if rj.Mcheck.Explore.exhausted <> rc.Mcheck.Explore.exhausted then
    QCheck.Test.fail_report "exhausted disagrees";
  if rj.Mcheck.Explore.nodes <> rc.Mcheck.Explore.nodes then
    QCheck.Test.fail_report
      (Printf.sprintf "node counts disagree: journal %d vs compiled %d"
         rj.Mcheck.Explore.nodes rc.Mcheck.Explore.nodes);
  if rj.Mcheck.Explore.max_depth <> rc.Mcheck.Explore.max_depth then
    QCheck.Test.fail_report "max depth disagrees";
  if kind_set rj <> kind_set rc then
    QCheck.Test.fail_report
      (Printf.sprintf "violation kinds disagree: journal {%s} vs compiled {%s}"
         (String.concat "," (kind_set rj))
         (String.concat "," (kind_set rc)));
  if not (multisets_agree tj tc) then
    QCheck.Test.fail_report "fingerprint multisets disagree";
  (* at d=4 only the verdict contract survives (claim races move node
     counts; the fingerprint hook is sequential-only) *)
  let par engine =
    Mcheck.Explore.explore ~max_nodes:500_000 ~max_violations:max_int
      ~on_spin:`Violation ~por ~max_crashes ~domains:4
      (with_engine engine (cfg_of ()))
  in
  let pj = par `Journal and pc = par `Compiled in
  if pj.Mcheck.Explore.verified <> pc.Mcheck.Explore.verified then
    QCheck.Test.fail_report "d=4 verified disagrees";
  if kind_set pj <> kind_set pc then
    QCheck.Test.fail_report "d=4 violation kinds disagree";
  true

let prop_engine_differential =
  QCheck.Test.make ~count:120
    ~name:"compiled vs journal: identical search on random programs"
    arb_prog2 (fun progs ->
      List.for_all
        (fun por ->
          check_engine_pair ~max_crashes:0 ~por
            (fun () -> config_of_rops progs)
            ())
        [ true; false ])

let prop_engine_differential_crashes =
  QCheck.Test.make ~count:120
    ~name:
      "compiled vs journal: identical search on random crash/recovery \
       programs"
    arb_crashy (fun c ->
      List.for_all
        (fun por ->
          check_engine_pair ~max_crashes:c.c_crashes ~por
            (fun () -> config_of_crashy c)
            ())
        [ true; false ])

let suite =
  [
    check_equiv "peterson fenced" (fun () -> peterson ~fenced:true) Verified;
    check_equiv "peterson unfenced"
      (fun () -> peterson ~fenced:false)
      (Violation "exclusion");
    check_equiv "dekker" dekker Verified;
    check_equiv "mp litmus under PSO" mp_pso (Violation "exclusion");
    Alcotest.test_case "parallel driver is deterministic" `Quick
      test_parallel_deterministic;
    Alcotest.test_case "violation kind sets agree at max_violations=8" `Quick
      test_kind_set_equiv;
    Alcotest.test_case "on_fingerprint requires domains=1" `Quick
      test_on_fingerprint_rejects_domains;
    Alcotest.test_case "record_trace does not affect the search" `Quick
      test_trace_flag_invisible;
    Alcotest.test_case "por reduces fenced-peterson nodes >= 2x" `Quick
      test_por_reduces_nodes;
    Alcotest.test_case "compiled engine: sequential determinism contract"
      `Quick test_compiled_sequential_deterministic;
    QCheck_alcotest.to_alcotest prop_por_differential;
    QCheck_alcotest.to_alcotest prop_por_differential_crashes;
    QCheck_alcotest.to_alcotest prop_engine_differential;
    QCheck_alcotest.to_alcotest prop_engine_differential_crashes;
  ]
