(* Campaign orchestrator: cache-key stability, cache corruption
   tolerance, bracketing, budget escalation, warm-run determinism and
   the adaptive-vs-dense job-count guarantee. *)

module Cell = Campaign.Cell
module Cache = Campaign.Cache
module Bracket = Campaign.Bracket
module Runner = Campaign.Runner
module Driver = Campaign.Driver

let report_string r = Obs.Json.to_string (Driver.report_json r)

let tmpfile =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pa_campaign_test_%d_%d.ndjson" (Unix.getpid ()) !n)

(* --- key stability ------------------------------------------------------ *)

(* Golden keys: these exact bytes are persistent-cache identities. If
   this test fails, the key format changed — bump Cell.code_salt and
   update the goldens deliberately, never silently. *)
let test_golden_keys () =
  Alcotest.(check string)
    "default verify key"
    "verify lock=tas n=2 model=cc-wb ord=tso pass=1 crashes=0 aborts=0 \
     csem=drop store=exact por=on"
    (Cell.key (Cell.make ~lock:"tas" ~n:2 ()));
  Alcotest.(check string)
    "every field off-default"
    "adversary lock=ticket n=7 model=dsm ord=pso pass=3 crashes=2 aborts=1 \
     csem=prefix store=bitstate:20:4 por=off"
    (Cell.key
       (Cell.make ~kind:Cell.Adversary ~model:Tsim.Config.Dsm
          ~ordering:Tsim.Config.Pso ~passages:3 ~max_crashes:2 ~max_aborts:1
          ~crash_semantics:Tsim.Config.Atomic_prefix
          ~store:(Tsim.Config.Store_bitstate { log2_bits = 20; hashes = 4 })
          ~por:false ~lock:"ticket" ~n:7 ()));
  Alcotest.(check string)
    "bounded store rendering"
    "verify lock=mcs n=3 model=cc-wt ord=tso pass=1 crashes=0 aborts=0 \
     csem=flush store=bounded:12 por=on"
    (Cell.key
       (Cell.make ~model:Tsim.Config.Cc_wt
          ~crash_semantics:Tsim.Config.Flush_buffer
          ~store:(Tsim.Config.Store_bounded { log2_slots = 12 })
          ~lock:"mcs" ~n:3 ()))

let cell_gen =
  let open QCheck.Gen in
  let* kind = oneofl [ Cell.Verify; Cell.Adversary ] in
  let* lock = oneofl [ "tas"; "ticket"; "mcs"; "weird-name"; "x" ] in
  let* n = int_range 2 64 in
  let* model =
    oneofl [ Tsim.Config.Dsm; Tsim.Config.Cc_wt; Tsim.Config.Cc_wb ]
  in
  let* ordering = oneofl [ Tsim.Config.Tso; Tsim.Config.Pso ] in
  let* passages = int_range 1 9 in
  let* max_crashes = int_range 0 5 in
  let* max_aborts = int_range 0 5 in
  let* crash_semantics =
    oneofl
      [ Tsim.Config.Drop_buffer; Tsim.Config.Flush_buffer;
        Tsim.Config.Atomic_prefix ]
  in
  let* store =
    oneof
      [
        return Tsim.Config.Store_exact;
        (let* b = int_range 10 36 in
         let* h = int_range 1 8 in
         return (Tsim.Config.Store_bitstate { log2_bits = b; hashes = h }));
        (let* s = int_range 8 30 in
         return (Tsim.Config.Store_bounded { log2_slots = s }));
      ]
  in
  let* por = bool in
  return
    (Cell.make ~kind ~model ~ordering ~passages ~max_crashes ~max_aborts
       ~crash_semantics ~store ~por ~lock ~n ())

let prop_key_roundtrip =
  QCheck.Test.make ~name:"of_key inverts key (canonical, injective)"
    ~count:500
    (QCheck.make cell_gen)
    (fun c ->
      match Cell.of_key (Cell.key c) with
      | Ok c' -> Cell.equal c c' && Cell.key c = Cell.key c'
      | Error _ -> false)

let prop_outcome_json_roundtrip =
  let open QCheck.Gen in
  let outcome_gen =
    let* verdict =
      oneof
        [
          return Cell.Verified;
          (let* ks =
             oneofl
               [ [ "deadlock" ]; [ "exclusion" ];
                 [ "deadlock"; "exclusion"; "spin-exhausted" ] ]
           in
           return (Cell.Violation ks));
          (let* r = oneofl [ "nodes"; "millis"; "interrupted" ] in
           return (Cell.Partial r));
          (let* k = int_range 0 40 in
           return (Cell.Fences k));
        ]
    in
    let* nodes = int_range 0 1_000_000 in
    let* max_depth = int_range 0 10_000 in
    let* budget_nodes = int_range 1 2_000_000 in
    return { Cell.verdict; nodes; max_depth; budget_nodes }
  in
  QCheck.Test.make ~name:"outcome JSON round-trips" ~count:300
    (QCheck.make outcome_gen)
    (fun o ->
      match Cell.outcome_of_json (Cell.outcome_to_json o) with
      | Ok o' -> o = o'
      | Error _ -> false)

(* --- bracketing --------------------------------------------------------- *)

let test_bracket_least_exhaustive () =
  (* every threshold position over modest ranges must match the dense
     scan exactly, and never evaluate a point twice *)
  for hi = 1 to 24 do
    for t = 1 to hi + 1 do
      let stats = Bracket.new_stats () in
      let p x = x >= t in
      let got = Bracket.least ~stats ~lo:1 ~hi p in
      let want = if t <= hi then Some t else None in
      if got <> want then
        Alcotest.failf "least hi=%d t=%d: got %s want %s" hi t
          (match got with Some v -> string_of_int v | None -> "none")
          (match want with Some v -> string_of_int v | None -> "none");
      let pts = List.map fst stats.Bracket.probed in
      if List.length pts <> List.length (List.sort_uniq compare pts) then
        Alcotest.failf "least hi=%d t=%d re-evaluated a point" hi t
    done
  done

let test_bracket_greatest_exhaustive () =
  for hi = 1 to 24 do
    for t = 0 to hi + 1 do
      let stats = Bracket.new_stats () in
      let p x = x <= t in
      let got = Bracket.greatest ~stats ~lo:1 ~hi p in
      let want = if t >= 1 then Some (min t hi) else None in
      if got <> want then
        Alcotest.failf "greatest hi=%d t=%d: got %s want %s" hi t
          (match got with Some v -> string_of_int v | None -> "none")
          (match want with Some v -> string_of_int v | None -> "none")
    done
  done

let prop_bracket_logarithmic =
  QCheck.Test.make ~name:"bracket evals are logarithmic, not linear"
    ~count:300
    QCheck.(pair (QCheck.make QCheck.Gen.(int_range 2 100_000))
              (QCheck.make QCheck.Gen.(int_range 1 100_000)))
    (fun (hi, t) ->
      let t = min t hi in
      let stats = Bracket.new_stats () in
      let got = Bracket.least ~stats ~lo:1 ~hi (fun x -> x >= t) in
      let log2 = int_of_float (ceil (log (float_of_int hi) /. log 2.0)) in
      got = Some t && stats.Bracket.evals <= (3 * log2) + 4)

(* --- cache persistence and tolerance ------------------------------------ *)

let o1 = { Cell.verdict = Cell.Verified; nodes = 10; max_depth = 3;
           budget_nodes = 4096 }
let o2 = { Cell.verdict = Cell.Partial "nodes"; nodes = 4096; max_depth = 9;
           budget_nodes = 4096 }

let test_cache_resume_and_supersede () =
  let path = tmpfile () in
  let c, _ = Cache.open_file ~resume:false path in
  Cache.add c "k1" o1;
  Cache.add c "k2" o2;
  Cache.add c "k2" { o2 with Cell.verdict = Cell.Verified };
  Cache.close c;
  let c2, stats = Cache.open_file ~resume:true path in
  Alcotest.(check int) "loaded" 2 stats.Cache.loaded;
  Alcotest.(check int) "skipped" 0 stats.Cache.skipped;
  Alcotest.(check bool) "header ok" false stats.Cache.invalid_header;
  (match Cache.find c2 "k2" with
  | Some o -> Alcotest.(check bool) "last write wins" true
                (o.Cell.verdict = Cell.Verified)
  | None -> Alcotest.fail "k2 missing after resume");
  Cache.close c2;
  Sys.remove path

let test_cache_torn_tail () =
  let path = tmpfile () in
  let c, _ = Cache.open_file ~resume:false path in
  Cache.add c "k1" o1;
  Cache.add c "k2" o2;
  Cache.close c;
  (* simulate a kill mid-write: truncate the file inside the last line *)
  let full = In_channel.with_open_text path In_channel.input_all in
  let cut = String.length full - 7 in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 cut));
  let c2, stats = Cache.open_file ~resume:true path in
  Alcotest.(check int) "survivors loaded" 1 stats.Cache.loaded;
  Alcotest.(check int) "torn line skipped" 1 stats.Cache.skipped;
  Alcotest.(check bool) "k1 intact" true (Cache.find c2 "k1" = Some o1);
  Alcotest.(check bool) "k2 dropped" true (Cache.find c2 "k2" = None);
  (* the reopened cache must still be appendable *)
  Cache.add c2 "k3" o1;
  Cache.close c2;
  let c3, stats3 = Cache.open_file ~resume:true path in
  Alcotest.(check int) "append after torn tail" 2 stats3.Cache.loaded;
  Cache.close c3;
  Sys.remove path

let test_cache_version_mismatch () =
  let path = tmpfile () in
  let c, _ = Cache.open_file ~resume:false path in
  Cache.add c "k1" o1;
  Cache.close c;
  (* rewrite the header with a different salt: every entry must be
     discarded, never silently trusted *)
  let lines =
    String.split_on_char '\n'
      (In_channel.with_open_text path In_channel.input_all)
  in
  let entries = List.tl lines in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        "{\"format\":\"price_adaptive.campaign.cache\",\"version\":1,\
         \"salt\":\"some-other-build\"}\n";
      List.iter
        (fun l -> if l <> "" then (Out_channel.output_string oc l;
                                   Out_channel.output_char oc '\n'))
        entries);
  let c2, stats = Cache.open_file ~resume:true path in
  Alcotest.(check bool) "header rejected" true stats.Cache.invalid_header;
  Alcotest.(check int) "nothing loaded" 0 stats.Cache.loaded;
  Alcotest.(check bool) "entry gone" true (Cache.find c2 "k1" = None);
  (* the file was rewritten with a fresh valid header *)
  Cache.add c2 "k2" o2;
  Cache.close c2;
  let c3, stats3 = Cache.open_file ~resume:true path in
  Alcotest.(check bool) "fresh header valid" false
    stats3.Cache.invalid_header;
  Alcotest.(check int) "fresh entries" 1 stats3.Cache.loaded;
  Cache.close c3;
  Sys.remove path

let test_cache_garbage_file () =
  let path = tmpfile () in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "not json at all\n\x00\x01garbage\n");
  let c, stats = Cache.open_file ~resume:true path in
  Alcotest.(check bool) "garbage header rejected" true
    stats.Cache.invalid_header;
  Alcotest.(check int) "nothing loaded" 0 stats.Cache.loaded;
  Cache.close c;
  Sys.remove path

(* --- the usable/cacheable contract -------------------------------------- *)

let test_usable_rule () =
  Alcotest.(check bool) "definitive always usable" true
    (Cell.usable o1 ~budget_nodes:1_000_000);
  Alcotest.(check bool) "partial at >= budget usable" true
    (Cell.usable o2 ~budget_nodes:4096);
  Alcotest.(check bool) "partial below budget not usable" false
    (Cell.usable o2 ~budget_nodes:8192)

(* --- driver: escalation, determinism, warm re-runs ----------------------- *)

let small_grid = "lock=tas,ticket,mcs,clh,bakery,filter n=2-3"

let parse_grid_exn s =
  match Driver.parse_grid s with
  | Ok g -> g
  | Error m -> Alcotest.failf "parse_grid %S: %s" s m

let parse_bracket_exn s =
  match Driver.parse_bracket s with
  | Ok b -> b
  | Error m -> Alcotest.failf "parse_bracket %S: %s" s m

let test_grid_product () =
  let g = parse_grid_exn "lock=tas,ticket n=2-4 crashes=0,1" in
  Alcotest.(check int) "2 locks x 3 n x 2 crashes" 12 (List.length g);
  (* duplicates collapse in the schedule *)
  let p = Driver.planned (g @ g) in
  Alcotest.(check int) "planned dedups" 12 (List.length p);
  (* cheap-first: costs are non-decreasing along the schedule *)
  let costs = List.map Cell.cost_hint p in
  Alcotest.(check bool) "cheap first" true
    (List.for_all2 ( <= ) costs (List.tl costs @ [ infinity ]))

let test_grid_rejects () =
  (match Driver.parse_grid "n=2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "grid without lock accepted");
  (match Driver.parse_grid "lock=tas banana=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown field accepted");
  (match Driver.parse_grid "lock=tas n=5-2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted range accepted");
  match Driver.parse_bracket "min-n-fences lock=tas" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "min-n-fences without k accepted"

let test_bad_cell_rejected_up_front () =
  (* unknown lock, and aborts on a non-abortable lock: both must raise
     before anything runs *)
  let cache = Cache.in_memory () in
  (try
     ignore
       (Driver.run ~cache
          { Driver.grid = parse_grid_exn "lock=nosuchlock"; brackets = [] });
     Alcotest.fail "unknown lock not rejected"
   with Runner.Bad_cell _ -> ());
  try
    ignore
      (Driver.run ~cache
         { Driver.grid = parse_grid_exn "lock=tas aborts=1"; brackets = [] });
    Alcotest.fail "aborts on non-abortable lock not rejected"
  with Runner.Bad_cell _ -> ()

let test_budget_escalation () =
  (* tas n=4 needs more nodes than the first 4096-node rung but fits the
     cap: the driver must escalate and come back verified, with the
     final (escalated) budget recorded *)
  let cache = Cache.in_memory () in
  let r =
    Driver.run ~max_nodes:500_000 ~cache
      { Driver.grid = parse_grid_exn "lock=tas n=4"; brackets = [] }
  in
  match r.Driver.cells with
  | [ { outcome; _ } ] ->
      Alcotest.(check bool) "verified after escalation" true
        (outcome.Cell.verdict = Cell.Verified);
      Alcotest.(check bool)
        (Printf.sprintf "needed more than one rung (nodes=%d budget=%d)"
           outcome.Cell.nodes outcome.Cell.budget_nodes)
        true
        (outcome.Cell.budget_nodes > 4096 && outcome.Cell.nodes > 4096)
  | _ -> Alcotest.fail "expected exactly one cell"

let test_partial_at_cap_cached_and_reused () =
  (* a cell that cannot finish under the cap must end as a nodes-partial
     at the full cap, be cached, and be reused by a warm run at the same
     cap but re-run under a larger one *)
  let cache = Cache.in_memory () in
  let plan = { Driver.grid = parse_grid_exn "lock=ticket n=4"; brackets = [] } in
  let r = Driver.run ~max_nodes:10_000 ~cache plan in
  (match r.Driver.cells with
  | [ { outcome; _ } ] ->
      Alcotest.(check bool) "partial at cap" true
        (outcome.Cell.verdict = Cell.Partial "nodes"
        && outcome.Cell.budget_nodes = 10_000)
  | _ -> Alcotest.fail "expected one cell");
  let r2 = Driver.run ~max_nodes:10_000 ~cache plan in
  Alcotest.(check int) "same cap: cache hit" 1 r2.Driver.hits;
  Alcotest.(check int) "same cap: nothing executed" 0 r2.Driver.executed;
  let r3 = Driver.run ~max_nodes:40_000 ~cache plan in
  Alcotest.(check int) "bigger cap: partial not reused" 1 r3.Driver.executed

let test_millis_partial_never_cached () =
  let cache = Cache.in_memory () in
  let plan = { Driver.grid = parse_grid_exn "lock=ticket n=4"; brackets = [] } in
  let r = Driver.run ~max_nodes:5_000_000 ~max_millis:0 ~cache plan in
  (match r.Driver.cells with
  | [ { outcome; _ } ] ->
      Alcotest.(check bool) "time-limited partial" true
        (outcome.Cell.verdict = Cell.Partial "millis")
  | _ -> Alcotest.fail "expected one cell");
  Alcotest.(check int) "wall-clock outcomes never cached" 0
    (Cache.entries cache)

let test_stop_flag_interrupts () =
  let cache = Cache.in_memory () in
  let stop = Atomic.make true in
  let r =
    Driver.run ~stop ~cache
      { Driver.grid = parse_grid_exn small_grid; brackets = [] }
  in
  Alcotest.(check bool) "interrupted" true r.Driver.interrupted;
  Alcotest.(check int) "nothing ran" 0 r.Driver.executed;
  (match Obs.Json.member "complete" (Driver.report_json r) with
  | Some (Obs.Json.Bool false) -> ()
  | _ -> Alcotest.fail "partial report must carry complete=false");
  match Driver.validate_report (Driver.report_json r) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "partial report fails schema: %s" m

let test_jobs_report_identical () =
  let plan =
    {
      Driver.grid = parse_grid_exn small_grid;
      brackets = [ parse_bracket_exn "min-crashes-refute lock=recoverable-tas-naive lo=0 hi=3" ];
    }
  in
  let run jobs =
    let cache = Cache.in_memory () in
    report_string (Driver.run ~jobs ~max_nodes:100_000 ~cache plan)
  in
  let seq = run 1 in
  Alcotest.(check string) "jobs=3 report byte-equal to jobs=1" seq (run 3);
  Alcotest.(check string) "jobs=8 report byte-equal to jobs=1" seq (run 8)

let test_warm_rerun_fast_hits_identical () =
  let path = tmpfile () in
  let plan =
    {
      Driver.grid = parse_grid_exn small_grid;
      brackets = [ parse_bracket_exn "min-n-fences lock=tournament k=6 lo=2 hi=17" ];
    }
  in
  let cold_cache, _ = Cache.open_file ~resume:false path in
  let t0 = Unix.gettimeofday () in
  let cold = Driver.run ~max_nodes:100_000 ~cache:cold_cache plan in
  let cold_dt = Unix.gettimeofday () -. t0 in
  Cache.close cold_cache;
  Alcotest.(check int) "cold run hit nothing" 0 cold.Driver.hits;
  let warm_cache, stats = Cache.open_file ~resume:true path in
  Alcotest.(check int) "all outcomes persisted"
    (cold.Driver.executed) stats.Cache.loaded;
  let t1 = Unix.gettimeofday () in
  let warm = Driver.run ~max_nodes:100_000 ~cache:warm_cache plan in
  let warm_dt = Unix.gettimeofday () -. t1 in
  Cache.close warm_cache;
  Sys.remove path;
  Alcotest.(check int) "warm run executes nothing" 0 warm.Driver.executed;
  let total = warm.Driver.hits + warm.Driver.executed in
  Alcotest.(check bool)
    (Printf.sprintf "warm hit rate >= 95%% (%d/%d)" warm.Driver.hits total)
    true
    (float_of_int warm.Driver.hits >= 0.95 *. float_of_int total);
  Alcotest.(check string) "warm report byte-identical"
    (report_string cold) (report_string warm);
  (* the headline contract: a fully warm cache makes the re-run at
     least 10x faster end-to-end *)
  Alcotest.(check bool)
    (Printf.sprintf "warm (%.4fs) at least 10x faster than cold (%.4fs)"
       warm_dt cold_dt)
    true
    (warm_dt *. 10.0 <= cold_dt)

let test_bracket_beats_dense_sweep () =
  (* the acceptance bound: bracketing the smallest n forcing k fences
     must cost at most half the explorer jobs of the dense sweep over
     the same range — and agree with it *)
  let lo = 2 and hi = 17 and k = 6 in
  let dense_answer =
    (* ground truth by dense sweep, outside the campaign *)
    let rec scan n =
      if n > hi then None
      else
        let o =
          Runner.run ~budget_nodes:1
            (Cell.make ~kind:Cell.Adversary ~lock:"tournament" ~n ())
        in
        match o.Cell.verdict with
        | Cell.Fences f when f >= k -> Some n
        | _ -> scan (n + 1)
    in
    scan lo
  in
  let cache = Cache.in_memory () in
  let spec =
    parse_bracket_exn
      (Printf.sprintf "min-n-fences lock=tournament k=%d lo=%d hi=%d" k lo hi)
  in
  let r = Driver.run ~cache { Driver.grid = []; brackets = [ spec ] } in
  let dense_jobs = hi - lo + 1 in
  match r.Driver.brackets with
  | [ br ] ->
      Alcotest.(check bool)
        (Printf.sprintf "answer %s agrees with dense sweep %s"
           (match br.Driver.answer with
            | Some a -> string_of_int a | None -> "none")
           (match dense_answer with
            | Some a -> string_of_int a | None -> "none"))
        true
        (br.Driver.answer = dense_answer);
      Alcotest.(check bool)
        (Printf.sprintf "%d probe jobs <= half of %d dense jobs"
           r.Driver.executed dense_jobs)
        true
        (2 * r.Driver.executed <= dense_jobs)
  | _ -> Alcotest.fail "expected one bracket result"

let test_refute_brackets () =
  (* the fault-budget frontiers seen end-to-end: the naive recoverable
     lock falls at one crash, the buggy abortable lock at one abort, and
     the sound recoverable lock never falls in range *)
  let cache = Cache.in_memory () in
  let plan =
    {
      Driver.grid = [];
      brackets =
        [
          parse_bracket_exn "min-crashes-refute lock=recoverable-tas-naive lo=0 hi=3";
          parse_bracket_exn "min-aborts-refute lock=abortable-tas-buggy lo=0 hi=3";
          parse_bracket_exn "min-crashes-refute lock=recoverable-tas lo=0 hi=2";
          parse_bracket_exn "max-exhaustive-n lock=ticket lo=2 hi=6";
        ];
    }
  in
  let r = Driver.run ~max_nodes:50_000 ~cache plan in
  match r.Driver.brackets with
  | [ crash_naive; abort_buggy; crash_sound; exhaust ] ->
      Alcotest.(check (option int)) "naive recoverable falls at 1 crash"
        (Some 1) crash_naive.Driver.answer;
      Alcotest.(check (option int)) "buggy abortable falls at 1 abort"
        (Some 1) abort_buggy.Driver.answer;
      Alcotest.(check (option int)) "sound recoverable never falls"
        None crash_sound.Driver.answer;
      Alcotest.(check (option int)) "ticket exhaustible to n=3 at 50k"
        (Some 3) exhaust.Driver.answer
  | _ -> Alcotest.fail "expected four bracket results"

let test_validate_report_rejects () =
  let open Obs.Json in
  let good =
    let cache = Cache.in_memory () in
    Driver.report_json
      (Driver.run ~cache
         { Driver.grid = parse_grid_exn "lock=tas n=2"; brackets = [] })
  in
  (match Driver.validate_report good with
  | Ok () -> ()
  | Error m -> Alcotest.failf "good report rejected: %s" m);
  let mangle f =
    match good with
    | Obj kvs -> Obj (List.map f kvs)
    | _ -> assert false
  in
  let cases =
    [
      ("wrong format", mangle (function
         | "format", _ -> ("format", String "nope")
         | kv -> kv));
      ("future version", mangle (function
         | "version", _ -> ("version", Int 99)
         | kv -> kv));
      ("bad cell key", mangle (function
         | "cells", List [ Obj kvs ] ->
             ( "cells",
               List [ Obj (List.map (function
                   | "key", _ -> ("key", String "garbage")
                   | kv -> kv) kvs) ] )
         | kv -> kv));
      ("cells out of order", mangle (function
         | "cells", List [ c ] -> ("cells", List [ c; c ])
         | kv -> kv));
    ]
  in
  List.iter
    (fun (name, bad) ->
      match Driver.validate_report bad with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s accepted" name)
    cases

let suite =
  [
    Alcotest.test_case "golden cache keys" `Quick test_golden_keys;
    QCheck_alcotest.to_alcotest prop_key_roundtrip;
    QCheck_alcotest.to_alcotest prop_outcome_json_roundtrip;
    Alcotest.test_case "bracket least = dense scan" `Quick
      test_bracket_least_exhaustive;
    Alcotest.test_case "bracket greatest = dense scan" `Quick
      test_bracket_greatest_exhaustive;
    QCheck_alcotest.to_alcotest prop_bracket_logarithmic;
    Alcotest.test_case "cache resume, last write wins" `Quick
      test_cache_resume_and_supersede;
    Alcotest.test_case "cache tolerates a torn tail" `Quick
      test_cache_torn_tail;
    Alcotest.test_case "cache rejects salt mismatch wholesale" `Quick
      test_cache_version_mismatch;
    Alcotest.test_case "cache survives a garbage file" `Quick
      test_cache_garbage_file;
    Alcotest.test_case "cached-outcome reuse rule" `Quick test_usable_rule;
    Alcotest.test_case "grid product and schedule" `Quick test_grid_product;
    Alcotest.test_case "bad specs rejected" `Quick test_grid_rejects;
    Alcotest.test_case "bad cells rejected before running" `Quick
      test_bad_cell_rejected_up_front;
    Alcotest.test_case "budget escalation" `Quick test_budget_escalation;
    Alcotest.test_case "cap-partial cached and reused by budget" `Quick
      test_partial_at_cap_cached_and_reused;
    Alcotest.test_case "time-limited partials never cached" `Quick
      test_millis_partial_never_cached;
    Alcotest.test_case "stop flag: partial report, nothing poisoned" `Quick
      test_stop_flag_interrupts;
    Alcotest.test_case "report identical across job counts" `Quick
      test_jobs_report_identical;
    Alcotest.test_case "warm re-run: >=95% hits, 10x faster, identical"
      `Quick test_warm_rerun_fast_hits_identical;
    Alcotest.test_case "bracket beats the dense sweep" `Quick
      test_bracket_beats_dense_sweep;
    Alcotest.test_case "fault-budget and exhaustion frontiers" `Quick
      test_refute_brackets;
    Alcotest.test_case "report schema validation" `Quick
      test_validate_report_rejects;
  ]
