(* Bounded exhaustive schedule exploration: locks verified over their full
   (deduplicated) schedule space at n = 2, and the Laws-of-Order premise —
   a read/write mutex with its fence removed has a reachable exclusion
   violation under TSO, which the explorer exhibits as a schedule.

   Test configurations use small spin fuels: every spin iteration is a
   distinct continuation state, so unbounded spins blow up the DFS; small
   fuel with the explorer's [`Prune] policy keeps the space exact for
   exclusion checking (spin re-reads cannot change shared state). *)

open Tsim
open Tsim.Prog

(* Peterson's 2-process algorithm, with or without the fence after the
   flag/turn writes. On TSO the fence is what forbids both processes
   reading each other's un-committed flag (store buffering). *)
let peterson ~fenced =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let* () = if fenced then fence else unit in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

(* Inline ticket lock with a small spin fuel. *)
let small_ticket () =
  let layout = Layout.create () in
  let next = Layout.var layout "next" in
  let serving = Layout.var layout "serving" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
    ~entry:(fun _ ->
      let* t = faa next 1 in
      let* _ = spin_until ~fuel:6 serving (fun s -> s = t) in
      unit)
    ~exit_section:(fun _ ->
      let* s = read serving in
      let* () = write serving (s + 1) in
      fence)
    ()

(* Inline test-and-set with small retry budget. *)
let small_tas () =
  let layout = Layout.create () in
  let lockw = Layout.var layout "lock" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
    ~entry:(fun _ ->
      let rec acquire fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted lockw)
        else
          let* ok = cas lockw ~expected:0 ~desired:1 in
          if ok then unit else acquire (fuel - 1)
      in
      acquire 4)
    ~exit_section:(fun _ ->
      let* () = write lockw 0 in
      fence)
    ()

let test_fenced_peterson_verified () =
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced:true) in
  Alcotest.(check bool)
    (Printf.sprintf "exhausted (%d nodes)" r.Mcheck.Explore.nodes)
    true r.Mcheck.Explore.exhausted;
  Alcotest.(check bool) "no violations" true r.Mcheck.Explore.verified

let test_unfenced_peterson_broken () =
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced:false)
  in
  Alcotest.(check bool) "violation found" true
    (r.Mcheck.Explore.violations <> []);
  match r.Mcheck.Explore.violations with
  | { kind = `Exclusion _; schedule } :: _ ->
      (* the schedule replays to the violation on a fresh machine *)
      Alcotest.(check bool) "schedule nonempty" true (schedule <> []);
      let m = Mcheck.Explore.replay_schedule (peterson ~fenced:false) schedule in
      ignore m
  | _ -> Alcotest.fail "expected an exclusion violation"

let test_ticket_verified () =
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 (small_ticket ()) in
  Alcotest.(check bool)
    (Printf.sprintf "exhausted (%d nodes, depth %d)" r.Mcheck.Explore.nodes
       r.Mcheck.Explore.max_depth)
    true r.Mcheck.Explore.exhausted;
  Alcotest.(check bool) "no violations" true r.Mcheck.Explore.verified

let test_tas_verified () =
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 (small_tas ()) in
  Alcotest.(check bool) "no violations" true r.Mcheck.Explore.verified

(* A deliberately broken "flag lock" (test then set, no atomicity). *)
let test_flag_lock_broken () =
  let layout = Layout.create () in
  let flag = Layout.var layout "flag" in
  let cfg =
    Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
      ~entry:(fun _ ->
        let* _ = spin_until ~fuel:4 flag (fun x -> x = 0) in
        let* () = write flag 1 in
        fence)
      ~exit_section:(fun _ ->
        let* () = write flag 0 in
        fence)
      ()
  in
  let r = Mcheck.Explore.explore ~max_nodes:500_000 cfg in
  Alcotest.(check bool) "violation found" true
    (List.exists
       (fun v ->
         match v.Mcheck.Explore.kind with `Exclusion _ -> true | _ -> false)
       r.Mcheck.Explore.violations)

(* Cross-check the fingerprint-based pruning against raw search: raw
   bounded search reports no spurious violation on the fenced algorithm
   (soundness of the violations the dedup'd search reports is separately
   established by replaying their schedules). The raw space neither
   exhausts nor reaches the deep violating interleavings within budget —
   deduplication is what makes the search effective, not merely faster.
   POR is off: with the reduction the raw space does exhaust, which is
   exactly what this test is not about. *)
let test_nodedup_crosscheck () =
  let good =
    Mcheck.Explore.explore ~dedup:false ~por:false ~max_nodes:200_000
      (peterson ~fenced:true)
  in
  Alcotest.(check bool) "fenced: no violation (no dedup, bounded)" true
    (good.Mcheck.Explore.violations = []);
  Alcotest.(check bool) "raw space does not exhaust" false
    good.Mcheck.Explore.exhausted

(* Exhaustive litmus reachability via exclusion encoding: p1 completes
   its entry section ONLY when it observes the message-passing anomaly
   (flag = 1 but data = 0); p0 always completes. The anomaly is reachable
   iff the explorer finds an exclusion violation. Under TSO the FIFO
   buffer forbids it (verified over the full space); under PSO the
   out-of-order Commit_var moves reach it. *)
let mp_reachability ~ordering =
  let layout = Layout.create () in
  let data = Layout.var layout "data" in
  let flag = Layout.var layout "flag" in
  let blocked = Layout.var layout "blocked" in
  Config.make ~model:Config.Cc_wb ~ordering ~check_exclusion:true ~n:2
    ~layout
    ~entry:(fun p ->
      if p = 0 then
        let* () = write data 1 in
        let* () = write flag 1 in
        unit
      else
        let* f = read flag in
        let* d = read data in
        if f = 1 && d = 0 then unit (* anomaly: complete entry *)
        else
          (* otherwise block forever (pruned) *)
          let* _ = spin_until ~fuel:1 blocked (fun x -> x = 1) in
          unit)
    ~exit_section:(fun _ -> Prog.unit)
    ()

let test_mp_exhaustive_tso_vs_pso () =
  let tso =
    Mcheck.Explore.explore ~max_nodes:500_000 (mp_reachability ~ordering:Config.Tso)
  in
  Alcotest.(check bool)
    (Printf.sprintf "TSO: anomaly unreachable over full space (%d states)"
       tso.Mcheck.Explore.nodes)
    true tso.Mcheck.Explore.exhausted;
  Alcotest.(check bool) "TSO: no violation" true
    (tso.Mcheck.Explore.violations = []);
  let pso =
    Mcheck.Explore.explore ~max_nodes:500_000 (mp_reachability ~ordering:Config.Pso)
  in
  Alcotest.(check bool) "PSO: anomaly reachable" true
    (List.exists
       (fun v ->
         match v.Mcheck.Explore.kind with `Exclusion _ -> true | _ -> false)
       pso.Mcheck.Explore.violations);
  (* the schedule uses an out-of-order commit *)
  match pso.Mcheck.Explore.violations with
  | { schedule; _ } :: _ ->
      Alcotest.(check bool) "schedule contains Commit_var" true
        (List.exists
           (function Mcheck.Explore.Commit_var _ -> true | _ -> false)
           schedule)
  | [] -> Alcotest.fail "expected violation"

let suite =
  [
    Alcotest.test_case "MP litmus: exhaustive TSO vs PSO" `Quick
      test_mp_exhaustive_tso_vs_pso;
    Alcotest.test_case "Peterson (fenced): verified" `Quick
      test_fenced_peterson_verified;
    Alcotest.test_case "Peterson (unfenced): TSO breaks it" `Quick
      test_unfenced_peterson_broken;
    Alcotest.test_case "ticket n=2: verified" `Quick test_ticket_verified;
    Alcotest.test_case "tas n=2: verified" `Quick test_tas_verified;
    Alcotest.test_case "flag lock: race found" `Quick test_flag_lock_broken;
    Alcotest.test_case "no-dedup cross-check" `Quick test_nodedup_crosscheck;
  ]
