(* Linearizability checking: the checker itself on hand-built histories,
   and end-to-end checks of the objects substrate under many random
   schedules — including a deliberately broken counter the checker must
   reject. *)

open Tsim
open Tsim.Prog
open Lincheck

let mkop ?arg ?result ?(aborted = false) ~pid ~label ~inv ~res uid =
  { History.pid; label; arg; result; inv; res; uid; aborted }

(* --- checker unit tests on synthetic histories ------------------------- *)

let test_sequential_counter_ok () =
  let h =
    History.of_list
      [
        mkop ~pid:0 ~label:"faa" ~result:0 ~inv:0 ~res:1 0;
        mkop ~pid:1 ~label:"faa" ~result:1 ~inv:2 ~res:3 0;
      ]
  in
  let v = Checker.check Spec.counter h in
  Alcotest.(check bool) "linearizable" true v.Checker.linearizable

let test_sequential_counter_gap_rejected () =
  (* two sequential faa both returning 0: impossible *)
  let h =
    History.of_list
      [
        mkop ~pid:0 ~label:"faa" ~result:0 ~inv:0 ~res:1 0;
        mkop ~pid:1 ~label:"faa" ~result:0 ~inv:2 ~res:3 0;
      ]
  in
  let v = Checker.check Spec.counter h in
  Alcotest.(check bool) "not linearizable" false v.Checker.linearizable

let test_concurrent_reorder_ok () =
  (* overlapping ops may commute to a legal order *)
  let h =
    History.of_list
      [
        mkop ~pid:0 ~label:"faa" ~result:1 ~inv:0 ~res:10 0;
        mkop ~pid:1 ~label:"faa" ~result:0 ~inv:0 ~res:10 0;
      ]
  in
  let v = Checker.check Spec.counter h in
  Alcotest.(check bool) "linearizable via reordering" true
    v.Checker.linearizable;
  Alcotest.(check int) "witness length" 2 (List.length v.Checker.witness);
  (* witness must start with the op returning 0 *)
  (match v.Checker.witness with
  | first :: _ ->
      Alcotest.(check (option int)) "first result" (Some 0)
        first.History.result
  | [] -> Alcotest.fail "no witness")

let test_real_time_order_respected () =
  (* op returning 1 strictly precedes op returning 0: must be rejected
     even though a reordering would be legal *)
  let h =
    History.of_list
      [
        mkop ~pid:0 ~label:"faa" ~result:1 ~inv:0 ~res:1 0;
        mkop ~pid:1 ~label:"faa" ~result:0 ~inv:5 ~res:6 0;
      ]
  in
  let v = Checker.check Spec.counter h in
  Alcotest.(check bool) "real-time order enforced" false
    v.Checker.linearizable

let test_stack_spec () =
  let h =
    History.of_list
      [
        mkop ~pid:0 ~label:"push" ~arg:7 ~result:0 ~inv:0 ~res:1 0;
        mkop ~pid:0 ~label:"pop" ~result:7 ~inv:2 ~res:3 0;
        mkop ~pid:0 ~label:"pop" ~result:(-1) ~inv:4 ~res:5 0;
      ]
  in
  Alcotest.(check bool) "stack LIFO + empty" true
    (Checker.check Spec.stack h).Checker.linearizable;
  let bad =
    History.of_list
      [
        mkop ~pid:0 ~label:"push" ~arg:7 ~result:0 ~inv:0 ~res:1 0;
        mkop ~pid:0 ~label:"pop" ~result:9 ~inv:2 ~res:3 0;
      ]
  in
  Alcotest.(check bool) "wrong pop rejected" false
    (Checker.check Spec.stack bad).Checker.linearizable

let test_queue_spec () =
  let h =
    History.of_list
      [
        mkop ~pid:0 ~label:"enq" ~arg:1 ~result:0 ~inv:0 ~res:1 0;
        mkop ~pid:0 ~label:"enq" ~arg:2 ~result:0 ~inv:2 ~res:3 0;
        mkop ~pid:1 ~label:"deq" ~result:1 ~inv:4 ~res:5 0;
        mkop ~pid:1 ~label:"deq" ~result:2 ~inv:6 ~res:7 0;
      ]
  in
  Alcotest.(check bool) "queue FIFO" true
    (Checker.check Spec.queue h).Checker.linearizable;
  let bad =
    History.of_list
      [
        mkop ~pid:0 ~label:"enq" ~arg:1 ~result:0 ~inv:0 ~res:1 0;
        mkop ~pid:0 ~label:"enq" ~arg:2 ~result:0 ~inv:2 ~res:3 0;
        mkop ~pid:1 ~label:"deq" ~result:2 ~inv:4 ~res:5 0;
      ]
  in
  Alcotest.(check bool) "LIFO order rejected" false
    (Checker.check Spec.queue bad).Checker.linearizable

(* --- strict linearizability (crashed operations) ----------------------- *)

(* A crashed faa that nobody observed: legal only by dropping it. *)
let test_aborted_op_droppable () =
  let h =
    History.of_list
      [
        mkop ~aborted:true ~pid:0 ~label:"faa" ~inv:0 ~res:5 0;
        mkop ~pid:1 ~label:"faa" ~result:0 ~inv:6 ~res:7 0;
        mkop ~pid:2 ~label:"faa" ~result:1 ~inv:8 ~res:9 0;
      ]
  in
  let v = Checker.check Spec.counter h in
  Alcotest.(check bool) "strictly linearizable" true v.Checker.linearizable;
  Alcotest.(check int) "aborted op dropped" 1 (List.length v.Checker.dropped);
  Alcotest.(check int) "two ops linearized" 2 (List.length v.Checker.witness)

(* A crashed faa whose effect WAS observed: legal only by committing it
   before the crash. *)
let test_aborted_op_committed () =
  let h =
    History.of_list
      [
        mkop ~aborted:true ~pid:0 ~label:"faa" ~inv:0 ~res:5 0;
        mkop ~pid:1 ~label:"faa" ~result:1 ~inv:6 ~res:7 0;
      ]
  in
  let v = Checker.check Spec.counter h in
  Alcotest.(check bool) "strictly linearizable" true v.Checker.linearizable;
  Alcotest.(check int) "nothing dropped" 0 (List.length v.Checker.dropped);
  Alcotest.(check int) "both ops linearized" 2 (List.length v.Checker.witness)

(* The strictness itself: plain linearizability would let the crashed op
   take effect after the crash (between the faa=0 and the faa=2), but
   strict linearizability pins its effect before the crash point, where
   it contradicts the later faa=0. Must be rejected. *)
let test_aborted_op_cannot_commit_late () =
  let h =
    History.of_list
      [
        mkop ~aborted:true ~pid:0 ~label:"faa" ~inv:0 ~res:3 0;
        mkop ~pid:1 ~label:"faa" ~result:0 ~inv:4 ~res:5 0;
        mkop ~pid:2 ~label:"faa" ~result:2 ~inv:6 ~res:7 0;
      ]
  in
  let v = Checker.check Spec.counter h in
  Alcotest.(check bool) "late commit rejected" false v.Checker.linearizable

(* End-to-end: atomic FAA under crash injection stays strictly
   linearizable — a crash either lands the increment before the crash
   point or the op drops out; both are covered by the checker. *)
let test_faa_strictly_linearizable_under_crashes () =
  let saw_abort = ref false in
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let c = Objects.Counter.make_faa layout in
      let h, v =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~crash_prob:0.1
          ~max_crashes:2 ~layout ~n:3 ~ops_per_proc:2
          (fun p _ -> Workload.op "faa" (c.Objects.Counter.fetch_inc p))
          Spec.counter
      in
      if Array.exists (fun o -> o.History.aborted) h then saw_abort := true;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d (%d ops)" seed (History.length h))
        true v.Checker.linearizable)
    (List.init 20 (fun i -> (i * 13) + 1));
  Alcotest.(check bool) "some schedule actually crashed mid-op" true
    !saw_abort

(* --- end-to-end: simulator objects are linearizable -------------------- *)

let faa_workload seed =
  let layout = Layout.create () in
  let c = Objects.Counter.make_faa layout in
  Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:4
    ~ops_per_proc:3
    (fun p _ -> Workload.op "faa" (c.Objects.Counter.fetch_inc p))
    Spec.counter

let test_faa_counter_linearizable () =
  List.iter
    (fun seed ->
      let h, v = faa_workload seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d (%d ops)" seed (History.length h))
        true v.Checker.linearizable)
    [ 1; 2; 3; 42; 1000 ]

let test_cas_counter_linearizable () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let c = Objects.Counter.make_cas layout in
      let _, v =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:3
          ~ops_per_proc:3
          (fun p _ -> Workload.op "faa" (c.Objects.Counter.fetch_inc p))
          Spec.counter
      in
      Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true
        v.Checker.linearizable)
    [ 5; 17; 23 ]

let test_stack_linearizable () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let st = Objects.Ostack.make layout ~n:4 ~ops_per_proc:4 in
      let _, v =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:4
          ~ops_per_proc:3
          (fun p i ->
            if p < 2 then
              let value = (p * 100) + i in
              Workload.op ~arg:value "push"
                (let* () = Objects.Ostack.push st p value in
                 return 0)
            else Workload.op "pop" (Objects.Ostack.pop st p))
          Spec.stack
      in
      Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true
        v.Checker.linearizable)
    [ 7; 11; 13; 77 ]

let test_queue_linearizable () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let q = Objects.Oqueue.make layout ~capacity:32 in
      let _, v =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:4
          ~ops_per_proc:3
          (fun p i ->
            if p < 3 then
              let value = (p * 100) + i in
              Workload.op ~arg:value "enq"
                (let* () = Objects.Oqueue.enqueue q value in
                 return 0)
            else Workload.op "deq" (Objects.Oqueue.dequeue_nonempty q))
          Spec.queue
      in
      Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true
        v.Checker.linearizable)
    [ 3; 9; 21 ]

(* A deliberately broken counter (read then write, no atomicity): the
   checker must find a non-linearizable schedule. *)
let test_broken_counter_caught () =
  let violations = ref 0 in
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let v = Layout.var layout "broken" in
      let broken_faa _p =
        let* x = read v in
        let* () = write v (x + 1) in
        let* () = fence in
        return x
      in
      let _, verdict =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:3
          ~ops_per_proc:2
          (fun p _ -> Workload.op "faa" (broken_faa p))
          Spec.counter
      in
      if not verdict.Checker.linearizable then incr violations)
    (List.init 30 (fun i -> i * 7));
  Alcotest.(check bool)
    (Printf.sprintf "broken counter caught (%d/30 schedules)" !violations)
    true (!violations > 0)

(* Lock-based objects (Section 5's converse direction: objects FROM
   mutex) are linearizable by construction — verified on random
   schedules across all three object types. *)
let test_locked_objects_linearizable () =
  List.iter
    (fun seed ->
      (* counter *)
      let layout = Layout.create () in
      let c = Objects.Monitor.locked_counter layout "lc" in
      let _, v =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:3
          ~ops_per_proc:3
          (fun _ _ -> Workload.op "faa" (Objects.Monitor.locked_fetch_inc c))
          Spec.counter
      in
      Alcotest.(check bool)
        (Printf.sprintf "locked counter (seed %d)" seed)
        true v.Checker.linearizable;
      (* stack *)
      let layout = Layout.create () in
      let st = Objects.Monitor.locked_stack layout "ls" ~capacity:16 in
      let _, v =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:4
          ~ops_per_proc:3
          (fun p i ->
            if p < 2 then
              let value = (p * 100) + i in
              Workload.op ~arg:value "push"
                (Objects.Monitor.locked_push st value)
            else Workload.op "pop" (Objects.Monitor.locked_pop st))
          Spec.stack
      in
      Alcotest.(check bool)
        (Printf.sprintf "locked stack (seed %d)" seed)
        true v.Checker.linearizable;
      (* queue *)
      let layout = Layout.create () in
      let q = Objects.Monitor.locked_queue layout "lq" ~capacity:16 in
      let _, v =
        Workload.run_and_check ~schedule:(Workload.Rand seed) ~layout ~n:4
          ~ops_per_proc:3
          (fun p i ->
            if p < 2 then
              let value = (p * 100) + i in
              Workload.op ~arg:value "enq"
                (Objects.Monitor.locked_enqueue q value)
            else Workload.op "deq" (Objects.Monitor.locked_dequeue q))
          Spec.queue
      in
      Alcotest.(check bool)
        (Printf.sprintf "locked queue (seed %d)" seed)
        true v.Checker.linearizable)
    [ 2; 13; 47; 88 ]

(* Monitor.exec serializes arbitrary bodies: concurrent read-modify-write
   bodies never lose updates. *)
let test_monitor_no_lost_updates () =
  List.iter
    (fun seed ->
      let layout = Layout.create () in
      let mon = Objects.Monitor.make layout "m" in
      let cell = Layout.var layout "cell" in
      let n = 4 and per = 3 in
      let cfg =
        Config.make ~model:Config.Cc_wb ~check_exclusion:false ~n ~layout
          ~entry:(fun _ ->
            seq
              (List.init per (fun _ ->
                   bind
                     (Objects.Monitor.exec mon
                        (let* v = read cell in
                         let* () = write cell (v + 1) in
                         return v))
                     (fun _ -> unit))))
          ~exit_section:(fun _ -> Prog.unit)
          ()
      in
      let m = Machine.create cfg in
      let out = Sched.random ~seed m in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d finished" seed)
        true out.Sched.all_finished;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: no lost updates" seed)
        (n * per) (Machine.mem_value m cell))
    [ 5; 21; 404 ]

(* Shared registers on TSO are NOT linearizable without fences: a process
   reads its own buffered write "early" (store-to-load forwarding) while
   others still see the old value — the essence of why the paper's model
   distinguishes issuing a write from committing it. With a fence after
   the write, register histories linearize again. *)
let register_scenario ~fenced =
  let layout = Layout.create () in
  let x = Layout.var layout "x" in
  let h =
    Workload.run ~layout ~n:2 ~ops_per_proc:2 (fun p i ->
        match (p, i) with
        | 0, 0 ->
            Workload.op ~arg:1 "write"
              (let* () = write x 1 in
               let* () = if fenced then fence else unit in
               return 0)
        | 0, 1 -> Workload.op "read" (read x)
        | _ -> Workload.op "read" (read x))
  in
  (* drive p0 through write (+fence) and its read FIRST, then p1's reads:
     the workload scheduler is round robin, which interleaves exactly so
     when unfenced (p0's write stays buffered across p1's reads). *)
  (h, Checker.check Spec.register h)

let test_tso_register_not_linearizable () =
  let _, v = register_scenario ~fenced:false in
  Alcotest.(check bool) "unfenced register history rejected" false
    v.Checker.linearizable;
  let _, v = register_scenario ~fenced:true in
  Alcotest.(check bool) "fenced register history accepted" true
    v.Checker.linearizable

(* Property: FAA histories are linearizable under arbitrary seeds. *)
let prop_faa_always_linearizable =
  QCheck.Test.make ~name:"faa counter linearizable (any schedule)" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let _, v = faa_workload seed in
      v.Checker.linearizable)

let suite =
  [
    Alcotest.test_case "sequential counter ok" `Quick
      test_sequential_counter_ok;
    Alcotest.test_case "sequential gap rejected" `Quick
      test_sequential_counter_gap_rejected;
    Alcotest.test_case "concurrent reorder ok" `Quick
      test_concurrent_reorder_ok;
    Alcotest.test_case "real-time order respected" `Quick
      test_real_time_order_respected;
    Alcotest.test_case "stack spec" `Quick test_stack_spec;
    Alcotest.test_case "queue spec" `Quick test_queue_spec;
    Alcotest.test_case "aborted op droppable" `Quick test_aborted_op_droppable;
    Alcotest.test_case "aborted op committed" `Quick test_aborted_op_committed;
    Alcotest.test_case "aborted op cannot commit late" `Quick
      test_aborted_op_cannot_commit_late;
    Alcotest.test_case "faa strictly linearizable under crashes" `Quick
      test_faa_strictly_linearizable_under_crashes;
    Alcotest.test_case "faa counter linearizable" `Quick
      test_faa_counter_linearizable;
    Alcotest.test_case "cas counter linearizable" `Quick
      test_cas_counter_linearizable;
    Alcotest.test_case "stack linearizable" `Quick test_stack_linearizable;
    Alcotest.test_case "queue linearizable" `Quick test_queue_linearizable;
    Alcotest.test_case "broken counter caught" `Quick
      test_broken_counter_caught;
    Alcotest.test_case "TSO registers not linearizable (unfenced)" `Quick
      test_tso_register_not_linearizable;
    Alcotest.test_case "locked objects linearizable" `Quick
      test_locked_objects_linearizable;
    Alcotest.test_case "monitor: no lost updates" `Quick
      test_monitor_no_lost_updates;
    QCheck_alcotest.to_alcotest prop_faa_always_linearizable;
  ]
