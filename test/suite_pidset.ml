(* QCheck properties: the bitset [Pidset] agrees with [Set.Make (Int)] on
   every operation the codebase uses, across both representations — ids
   below [small_capacity] (one-word bitset) and above it (the widened
   multi-word fallback). *)

open Tsim.Ids

module Iset = Set.Make (Int)

(* Ids are drawn from [0, 150]: comfortably straddles the 62-id boundary
   of the one-word representation. *)
let gen_pid = QCheck.Gen.int_range 0 150
let gen_pids = QCheck.Gen.(list_size (int_range 0 40) gen_pid)

let arb_pids = QCheck.make ~print:QCheck.Print.(list int) gen_pids

let arb_pids2 =
  QCheck.make
    ~print:QCheck.Print.(pair (list int) (list int))
    QCheck.Gen.(pair gen_pids gen_pids)

let to_ref ps = Iset.of_list ps
let to_bit ps = Pidset.of_list ps
let agrees b r = Pidset.elements b = Iset.elements r

let prop name arb f = QCheck.Test.make ~count:500 ~name arb f

let tests =
  [
    prop "of_list/elements" arb_pids (fun ps ->
        agrees (to_bit ps) (to_ref ps));
    prop "add" arb_pids (fun ps ->
        match ps with
        | [] -> true
        | p :: rest ->
            agrees (Pidset.add p (to_bit rest)) (Iset.add p (to_ref rest)));
    prop "remove" arb_pids (fun ps ->
        match ps with
        | [] -> true
        | p :: rest ->
            agrees
              (Pidset.remove p (to_bit ps))
              (Iset.remove p (to_ref ps))
            && agrees
                 (Pidset.remove p (to_bit rest))
                 (Iset.remove p (to_ref rest)));
    prop "mem" arb_pids (fun ps ->
        List.for_all (fun p -> Pidset.mem p (to_bit ps)) ps
        && not (Pidset.mem 151 (to_bit ps)));
    prop "cardinal" arb_pids (fun ps ->
        Pidset.cardinal (to_bit ps) = Iset.cardinal (to_ref ps));
    prop "union" arb_pids2 (fun (a, b) ->
        agrees
          (Pidset.union (to_bit a) (to_bit b))
          (Iset.union (to_ref a) (to_ref b)));
    prop "inter" arb_pids2 (fun (a, b) ->
        agrees
          (Pidset.inter (to_bit a) (to_bit b))
          (Iset.inter (to_ref a) (to_ref b)));
    prop "diff" arb_pids2 (fun (a, b) ->
        agrees
          (Pidset.diff (to_bit a) (to_bit b))
          (Iset.diff (to_ref a) (to_ref b)));
    prop "subset" arb_pids2 (fun (a, b) ->
        Pidset.subset (to_bit a) (to_bit b)
        = Iset.subset (to_ref a) (to_ref b)
        && Pidset.subset (to_bit a) (Pidset.union (to_bit a) (to_bit b)));
    prop "equal respects set semantics" arb_pids2 (fun (a, b) ->
        Pidset.equal (to_bit a) (to_bit b) = Iset.equal (to_ref a) (to_ref b));
    prop "fold accumulates in ascending order" arb_pids (fun ps ->
        Pidset.fold (fun p acc -> p :: acc) (to_bit ps) []
        = Iset.fold (fun p acc -> p :: acc) (to_ref ps) []);
    prop "iter visits each element once, ascending" arb_pids (fun ps ->
        let seen = ref [] in
        Pidset.iter (fun p -> seen := p :: !seen) (to_bit ps);
        List.rev !seen = Iset.elements (to_ref ps));
    prop "min/max/choose" arb_pids (fun ps ->
        let b = to_bit ps and r = to_ref ps in
        Pidset.min_elt_opt b = Iset.min_elt_opt r
        && Pidset.max_elt_opt b = Iset.max_elt_opt r
        && Pidset.choose_opt b = Iset.min_elt_opt r);
    prop "filter" arb_pids (fun ps ->
        agrees
          (Pidset.filter (fun p -> p mod 3 = 0) (to_bit ps))
          (Iset.filter (fun p -> p mod 3 = 0) (to_ref ps)));
    prop "for_all/exists" arb_pids (fun ps ->
        let b = to_bit ps and r = to_ref ps in
        Pidset.for_all (fun p -> p < 100) b = Iset.for_all (fun p -> p < 100) r
        && Pidset.exists (fun p -> p > 70) b
           = Iset.exists (fun p -> p > 70) r);
    prop "disjoint" arb_pids2 (fun (a, b) ->
        Pidset.disjoint (to_bit a) (to_bit b)
        = Iset.disjoint (to_ref a) (to_ref b));
    prop "widening round-trip stays canonical" arb_pids (fun ps ->
        (* removing every large id from a widened set must compare equal
           to the set built from small ids only *)
        let small = List.filter (fun p -> p < Pidset.small_capacity) ps in
        let widened =
          List.fold_left
            (fun s p -> Pidset.remove p s)
            (to_bit ps)
            (List.filter (fun p -> p >= Pidset.small_capacity) ps)
        in
        Pidset.equal widened (to_bit small));
  ]

let test_negative_pid_rejected () =
  Alcotest.check_raises "negative pid" (Invalid_argument "Pidset: negative pid -1")
    (fun () -> ignore (Pidset.add (-1) Pidset.empty))

let suite =
  List.map QCheck_alcotest.to_alcotest tests
  @ [ Alcotest.test_case "negative pid rejected" `Quick
        test_negative_pid_rejected ]
