(* The profiling layer (PR9): the Knuth online tree-size estimator
   (exactness on perfect trees, unbiasedness against exhaustively-counted
   spaces under every engine and POR setting, progress mass accounting),
   the per-depth/class/section/location profile accumulator (exactly-once
   node attribution, deterministic shard merge laws, folded-stack export,
   JSON round-trip) and the profile diff (pinned fixture verdict). The
   load-bearing property throughout: profiling must never perturb the
   search — verdict, node count and fingerprint multiset are compared
   with instrumentation on and off. *)

open Tsim
open Tsim.Prog

(* --- estimator core math ------------------------------------------------ *)

(* On a perfect b-ary tree every probe path contributes exactly
   (b^{d+1}-1)/(b-1): the estimate is exact for EVERY seed, not just in
   expectation — a deterministic check of the weight accounting. *)
let test_estimator_perfect_tree () =
  List.iter
    (fun (b, depth, seed) ->
      let e =
        Obs.Estimator.create ~cfg:{ Obs.Estimator.probes = 8; seed } ()
      in
      let rec walk d =
        if d = depth then begin
          Obs.Estimator.enter e ~children:0;
          Obs.Estimator.leave e
        end
        else begin
          Obs.Estimator.enter e ~children:b;
          for _ = 1 to b do
            walk (d + 1)
          done;
          Obs.Estimator.leave e
        end
      in
      walk 0;
      let truth =
        let rec go d acc = if d > depth then acc else go (d + 1) (acc + (int_of_float (float_of_int b ** float_of_int d))) in
        go 0 0
      in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "b=%d depth=%d seed=%d exact" b depth seed)
        (float_of_int truth)
        (Obs.Estimator.estimate e);
      Alcotest.(check (float 1e-9)) "progress 1.0" 1.0
        (Obs.Estimator.progress e))
    [ (2, 4, 0); (2, 6, 7); (3, 3, 1); (4, 2, 42) ]

(* Unbalanced tree: the estimate varies per seed but its mean over many
   seeds converges to the true node count (Knuth 1975). Deterministic:
   fixed seed set. *)
let test_estimator_unbalanced_mean () =
  (* root -> [chain of 4] and [leaf]: 6 nodes *)
  let walk e =
    let open Obs.Estimator in
    enter e ~children:2;
    enter e ~children:1;
    enter e ~children:1;
    enter e ~children:1;
    enter e ~children:0;
    leave e;
    leave e;
    leave e;
    leave e;
    enter e ~children:0;
    leave e;
    leave e
  in
  let n = 400 in
  let sum = ref 0.0 in
  for seed = 0 to n - 1 do
    let e = Obs.Estimator.create ~cfg:{ Obs.Estimator.probes = 4; seed } () in
    walk e;
    Alcotest.(check (float 1e-9)) "progress 1.0" 1.0
      (Obs.Estimator.progress e);
    sum := !sum +. Obs.Estimator.estimate e
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 6.0) > 0.5 then
    Alcotest.failf "mean estimate %.3f too far from 6.0" mean

(* --- estimator woven into the explorer --------------------------------- *)

let peterson ?engine () =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~pure_programs:true
    ?engine ~n:2 ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let* () = fence in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

(* Small DSM-model ticket lock: gives the profiler nonzero RMR cells. *)
let ticket_dsm ?engine () =
  let layout = Layout.create () in
  let next = Layout.var layout "next" in
  let serving = Layout.var layout "serving" in
  Config.make ~model:Config.Dsm ~check_exclusion:true ~pure_programs:true
    ?engine ~n:2 ~layout
    ~entry:(fun _ ->
      let* t = faa next 1 in
      let* _ = spin_until ~fuel:4 serving (fun s -> s = t) in
      unit)
    ~exit_section:(fun _ ->
      let* s = read serving in
      let* () = write serving (s + 1) in
      fence)
    ()

(* The estimator's mean over >= 100 fixed seeds must land within
   tolerance of the exhaustively-counted node total, under every engine
   and both POR settings; every run must report progress exactly 1.0
   (the mass accounting retires the whole space) and an unchanged node
   count (the probes never perturb the search).

   With POR off the full-interleaving space is heavily dedup-pruned and
   the probe-weight distribution is heavy-tailed (Knuth's classic
   caveat), so the sample mean needs deeper probes and more seeds to
   concentrate; the ample-chain space under POR is benign. The budgets
   below keep the slow combination around a second while giving the
   mean comfortable margin against its measured sampling noise. *)
let test_estimator_unbiased_in_search () =
  List.iter
    (fun (engine, por) ->
      let cfg = peterson ~engine () in
      let truth =
        (Mcheck.Explore.explore ~max_nodes:2_000_000 ~por cfg)
          .Mcheck.Explore.nodes
      in
      let probes, nseeds, tol =
        if por then (16, 100, 0.10) else (256, 400, 0.15)
      in
      let sum = ref 0.0 in
      for seed = 0 to nseeds - 1 do
        let r =
          Mcheck.Explore.explore ~max_nodes:2_000_000 ~por
            ~estimator:{ Obs.Estimator.probes; seed }
            cfg
        in
        Alcotest.(check int)
          (Printf.sprintf "%s por=%b seed=%d nodes unperturbed"
             (Config.engine_name engine) por seed)
          truth r.Mcheck.Explore.nodes;
        Alcotest.(check bool) "exhausted" true r.Mcheck.Explore.exhausted;
        Alcotest.(check (float 1e-9)) "progress 1.0" 1.0
          r.Mcheck.Explore.stats.Mcheck.Explore.est_progress;
        sum := !sum +. r.Mcheck.Explore.stats.Mcheck.Explore.est_nodes
      done;
      let mean = !sum /. float_of_int nseeds in
      let rel = Float.abs (mean -. float_of_int truth) /. float_of_int truth in
      if rel > tol then
        Alcotest.failf "%s por=%b: mean estimate %.1f vs true %d (%.1f%% off)"
          (Config.engine_name engine) por mean truth (100. *. rel))
    [
      (`Clone, true); (`Clone, false);
      (`Journal, true); (`Journal, false);
      (`Compiled, true); (`Compiled, false);
    ]

(* --- profiling does not perturb the search ------------------------------ *)

let test_profile_no_perturbation () =
  List.iter
    (fun engine ->
      let cfg = ticket_dsm ~engine () in
      let fps_of ?estimator ?profile () =
        let acc = ref [] in
        let r =
          Mcheck.Explore.explore ~max_nodes:2_000_000 ?estimator ?profile
            ~on_fingerprint:(fun fp -> acc := fp :: !acc)
            cfg
        in
        (r, List.sort compare !acc)
      in
      let r0, fp0 = fps_of () in
      let p = Mcheck.Explore.new_profile () in
      let r1, fp1 =
        fps_of ~estimator:{ Obs.Estimator.probes = 32; seed = 3 } ~profile:p ()
      in
      Alcotest.(check bool) "verdict" r0.Mcheck.Explore.verified
        r1.Mcheck.Explore.verified;
      Alcotest.(check int) "nodes" r0.Mcheck.Explore.nodes
        r1.Mcheck.Explore.nodes;
      Alcotest.(check bool)
        (Printf.sprintf "%s fingerprint multiset identical"
           (Config.engine_name engine))
        true (fp0 = fp1))
    [ `Clone; `Journal; `Compiled ]

(* --- exactly-once attribution ------------------------------------------- *)

let test_profile_totals_match_nodes () =
  List.iter
    (fun engine ->
      let cfg = peterson ~engine () in
      let p = Mcheck.Explore.new_profile () in
      let r = Mcheck.Explore.explore ~max_nodes:2_000_000 ~profile:p cfg in
      Alcotest.(check bool) "exhausted" true r.Mcheck.Explore.exhausted;
      Alcotest.(check int)
        (Printf.sprintf "%s profile nodes = search nodes"
           (Config.engine_name engine))
        r.Mcheck.Explore.nodes (Obs.Profile.total_nodes p))
    [ `Clone; `Journal; `Compiled ]

(* Strided sampling: with [~every:k] the gate fires on the first record
   and every k-th after, and each armed record books k nodes — so the
   scaled node total is exactly [k * ceil(nodes / k)], deterministic
   for a deterministic search. Time and undo totals stay exact-ish
   (whole windows are attributed; only the tail after the last armed
   record is dropped), which we bound rather than pin. *)
let test_profile_strided_totals () =
  List.iter
    (fun every ->
      let cfg = peterson ~engine:`Journal () in
      let p = Mcheck.Explore.new_profile ~every () in
      let r = Mcheck.Explore.explore ~max_nodes:2_000_000 ~profile:p cfg in
      Alcotest.(check bool) "exhausted" true r.Mcheck.Explore.exhausted;
      let n = r.Mcheck.Explore.nodes in
      Alcotest.(check int)
        (Printf.sprintf "every=%d scaled nodes = every * ceil(nodes/every)"
           every)
        (every * ((n + every - 1) / every))
        (Obs.Profile.total_nodes p);
      (* exact run of the same space: undo totals of the strided run
         can only miss the tail window, never exceed the exact count *)
      let q = Mcheck.Explore.new_profile () in
      let r' = Mcheck.Explore.explore ~max_nodes:2_000_000 ~profile:q cfg in
      Alcotest.(check int) "same space" n r'.Mcheck.Explore.nodes;
      let undo p =
        match Obs.Profile.to_json p with
        | Obs.Json.Obj kvs -> (
            match List.assoc "totals" kvs with
            | Obs.Json.Obj t -> (
                match List.assoc "undo" t with
                | Obs.Json.Int u -> u
                | _ -> Alcotest.fail "undo total not an int")
            | _ -> Alcotest.fail "totals not an object")
        | _ -> Alcotest.fail "profile json not an object"
      in
      let exact = undo q and strided = undo p in
      if strided > exact then
        Alcotest.failf "every=%d strided undo %d > exact %d" every strided
          exact)
    [ 4; 16 ]

let test_profile_totals_match_nodes_parallel () =
  let cfg = peterson () in
  let p = Mcheck.Explore.new_profile () in
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:2 ~profile:p
      ~estimator:{ Obs.Estimator.probes = 16; seed = 0 }
      cfg
  in
  Alcotest.(check bool) "exhausted" true r.Mcheck.Explore.exhausted;
  Alcotest.(check int) "profile nodes = search nodes" r.Mcheck.Explore.nodes
    (Obs.Profile.total_nodes p);
  let est = r.Mcheck.Explore.stats.Mcheck.Explore.est_nodes in
  if est <= 0.0 then Alcotest.failf "parallel estimate %.1f not positive" est;
  let pr = r.Mcheck.Explore.stats.Mcheck.Explore.est_progress in
  if pr <= 0.0 || pr > 1.0 +. 1e-9 then
    Alcotest.failf "parallel progress %.3f outside (0,1]" pr

let test_profile_schema_guard () =
  let alien =
    Obs.Profile.create ~classes:[| "x" |] ~sections:[| "y" |] ()
  in
  match
    Mcheck.Explore.explore ~max_nodes:100 ~profile:alien (peterson ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign-schema profile accepted"

(* --- shard merge laws --------------------------------------------------- *)

(* Random profiles as value lists; the laws are checked on the rendered
   JSON (sorted cells, summed counters), the same representation the
   parallel driver's deterministic merge must agree on. *)
let gen_records =
  QCheck.Gen.(
    list_size (int_bound 30)
      (map
         (fun (((depth, cls), (section, loc)), (is_pc, (rmr, undo))) ->
           (depth, cls, section, loc, is_pc, rmr, undo))
         (pair
            (pair (pair (int_bound 40) (int_bound 5))
               (pair (int_bound 5) (int_bound 1000)))
            (pair bool (pair (int_bound 3) (int_bound 12))))))

let profile_of_records rs =
  let t =
    Obs.Profile.create
      ~classes:[| "step"; "commit"; "crash"; "recover"; "abort"; "root" |]
      ~sections:[| "ncs"; "entry"; "exit"; "finished"; "crashed"; "aborting" |]
      ()
  in
  List.iter
    (fun (depth, cls, section, loc, is_pc, rmr, undo) ->
      Obs.Profile.record t ~depth ~cls ~section ~loc ~is_pc ~rmr ~undo)
    rs;
  t

(* Tick deltas are wall-clock noise; compare the deterministic columns
   only (drop "ns" everywhere). *)
let rec strip_ns (j : Obs.Json.t) =
  match j with
  | Obs.Json.Obj kvs ->
      Obs.Json.Obj
        (List.filter_map
           (fun (k, v) -> if k = "ns" then None else Some (k, strip_ns v))
           kvs)
  | Obs.Json.List l -> Obs.Json.List (List.map strip_ns l)
  | j -> j

let stable t = strip_ns (Obs.Profile.to_json t)

let arb_records =
  QCheck.make
    ~print:(fun rs -> string_of_int (List.length rs) ^ " records")
    gen_records

let prop_merge_commutes =
  QCheck.Test.make ~count:100 ~name:"Profile.merge commutes"
    (QCheck.pair arb_records arb_records)
    (fun (ra, rb) ->
      let a = profile_of_records ra and b = profile_of_records rb in
      Obs.Json.equal
        (stable (Obs.Profile.merge a b))
        (stable (Obs.Profile.merge b a)))

let prop_merge_assoc =
  QCheck.Test.make ~count:100 ~name:"Profile.merge associates"
    (QCheck.triple arb_records arb_records arb_records)
    (fun (ra, rb, rc) ->
      let a = profile_of_records ra
      and b = profile_of_records rb
      and c = profile_of_records rc in
      Obs.Json.equal
        (stable (Obs.Profile.merge (Obs.Profile.merge a b) c))
        (stable (Obs.Profile.merge a (Obs.Profile.merge b c))))

let prop_merge_identity =
  QCheck.Test.make ~count:100 ~name:"Profile.merge identity"
    arb_records
    (fun ra ->
      let a = profile_of_records ra and z = profile_of_records [] in
      Obs.Json.equal (stable a) (stable (Obs.Profile.merge a z)))

(* --- folded export ------------------------------------------------------ *)

let folded_line_re line =
  (* depth:<band>;<section>;<class>;<loc> <count> *)
  match String.index_opt line ' ' with
  | None -> false
  | Some sp ->
      let stack = String.sub line 0 sp in
      let count = String.sub line (sp + 1) (String.length line - sp - 1) in
      String.length stack > 6
      && String.sub stack 0 6 = "depth:"
      && List.length (String.split_on_char ';' stack) = 4
      && (match int_of_string_opt count with
         | Some c -> c > 0
         | None -> false)

let test_folded_well_formed () =
  let p = Mcheck.Explore.new_profile () in
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 ~profile:p (ticket_dsm ()) in
  let out = Obs.Profile.folded ~weight:`Nodes p in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check bool) "nonempty" true (lines <> []);
  List.iter
    (fun l ->
      if not (folded_line_re l) then Alcotest.failf "malformed line %S" l)
    lines;
  let total =
    List.fold_left
      (fun acc l ->
        let sp = String.index l ' ' in
        acc + int_of_string (String.sub l (sp + 1) (String.length l - sp - 1)))
      0 lines
  in
  Alcotest.(check int) "folded counts sum to node total"
    r.Mcheck.Explore.nodes total;
  (* sorted, no duplicate stacks *)
  let stacks = List.map (fun l -> String.sub l 0 (String.index l ' ')) lines in
  Alcotest.(check bool) "sorted unique" true
    (stacks = List.sort_uniq compare stacks)

(* --- JSON round-trip ---------------------------------------------------- *)

let test_profile_json_roundtrip () =
  let p = Mcheck.Explore.new_profile () in
  ignore (Mcheck.Explore.explore ~max_nodes:2_000_000 ~profile:p (peterson ()));
  let j1 = Obs.Profile.to_json p in
  match Obs.Profile.of_json j1 with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok p2 -> (
      let j2 = Obs.Profile.to_json p2 in
      (* cells are bit-stable across the round trip (ns re-export under
         the unit calibration reproduces the stored integers) *)
      Alcotest.(check bool) "cells stable" true
        (Obs.Json.equal
           (Option.get (Obs.Json.member "cells" j1))
           (Option.get (Obs.Json.member "cells" j2)));
      Alcotest.(check int) "node total stable" (Obs.Profile.total_nodes p)
        (Obs.Profile.total_nodes p2);
      (* and the normalized form is a fixed point *)
      match Obs.Profile.of_json j2 with
      | Error e -> Alcotest.failf "second of_json: %s" e
      | Ok p3 ->
          Alcotest.(check bool) "normalized fixed point" true
            (Obs.Json.equal j2 (Obs.Profile.to_json p3)))

(* --- diff on the committed fixtures ------------------------------------- *)

let load_fixture name =
  let ic = open_in (Filename.concat "corpus" name) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Obs.Json.parse s with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok j -> (
      match Obs.Profile.of_json j with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok p -> p)

let test_diff_fixtures () =
  let a = load_fixture "profile_a.json" in
  let b = load_fixture "profile_b.json" in
  let report, verdict = Obs.Profile.diff a b in
  Alcotest.(check string) "pinned fixture verdict"
    "regressed +20.0% (333.3 -> 400.0 ns/node); top: entry/step +66.7 \
     ns/node"
    verdict;
  (* deterministic: a second diff renders byte-identically *)
  let report2, verdict2 = Obs.Profile.diff a b in
  Alcotest.(check string) "verdict deterministic" verdict verdict2;
  Alcotest.(check bool) "report deterministic" true
    (Obs.Json.equal report report2);
  (* self-diff is ~unchanged with no movers *)
  let _, self = Obs.Profile.diff a a in
  Alcotest.(check string) "self diff" "~unchanged +0.0% (333.3 -> 333.3 \
                                       ns/node)" self;
  (* the reverse direction improves by the same wall amount *)
  let _, back = Obs.Profile.diff b a in
  Alcotest.(check bool) "reverse improves" true
    (String.length back >= 8 && String.sub back 0 8 = "improved")

(* --- shared JSON renderers (CLI table unification) ---------------------- *)

let test_json_tables () =
  let kv =
    Obs.Json.pp_kv_table
      [ ("nodes", Obs.Json.Int 1500);
        ("verified", Obs.Json.Bool true);
        ("ns_per_node", Obs.Json.Float 411.25) ]
  in
  List.iter
    (fun needle ->
      if not (List.exists (fun l ->
          String.length l >= String.length needle
          && String.sub (String.trim l) 0 (min (String.length (String.trim l)) (String.length needle)) = needle)
          (String.split_on_char '\n' kv))
      then Alcotest.failf "kv table missing %S in %s" needle kv)
    [ "nodes"; "verified"; "ns_per_node" ];
  let rows =
    Obs.Json.pp_rows
      [ [ ("name", Obs.Json.String "a"); ("v", Obs.Json.Int 1) ];
        [ ("name", Obs.Json.String "b"); ("v", Obs.Json.Int 22) ];
      ]
  in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' rows)
  in
  (* header + 2 rows *)
  Alcotest.(check int) "row count" 3 (List.length lines)

let suite =
  [
    Alcotest.test_case "estimator exact on perfect trees" `Quick
      test_estimator_perfect_tree;
    Alcotest.test_case "estimator mean on an unbalanced tree" `Quick
      test_estimator_unbalanced_mean;
    Alcotest.test_case
      "estimator unbiased in-search (3 engines x por on/off)" `Slow
      test_estimator_unbiased_in_search;
    Alcotest.test_case "profiling does not perturb the search" `Quick
      test_profile_no_perturbation;
    Alcotest.test_case "profile totals = node count (sequential)" `Quick
      test_profile_totals_match_nodes;
    Alcotest.test_case "strided profile: scaled totals, bounded undo" `Quick
      test_profile_strided_totals;
    Alcotest.test_case "profile totals = node count (parallel)" `Quick
      test_profile_totals_match_nodes_parallel;
    Alcotest.test_case "foreign profile schema rejected" `Quick
      test_profile_schema_guard;
    QCheck_alcotest.to_alcotest prop_merge_commutes;
    QCheck_alcotest.to_alcotest prop_merge_assoc;
    QCheck_alcotest.to_alcotest prop_merge_identity;
    Alcotest.test_case "folded export well-formed" `Quick
      test_folded_well_formed;
    Alcotest.test_case "profile JSON round-trip" `Quick
      test_profile_json_roundtrip;
    Alcotest.test_case "profile diff fixtures" `Quick test_diff_fixtures;
    Alcotest.test_case "shared JSON table renderers" `Quick test_json_tables;
  ]
