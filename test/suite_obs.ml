(* The telemetry layer (lib/obs) and its consumers: histogram laws,
   NDJSON round-trips, the JSON codec, hub/sink plumbing, the Chrome
   trace exporter (pinned by a golden file), the explorer's search
   stats + verdict contract, and the online/offline metrics
   cross-check (Machine counters vs Trace.Metrics.compute). *)

open Tsim
open Tsim.Prog

(* --- JSON codec --------------------------------------------------------- *)

let rec gen_json depth =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) small_signed_int;
        (* floats from ints: finite, and exact under %.17g round-trip *)
        map (fun i -> Obs.Json.Float (float_of_int i /. 8.)) small_signed_int;
        map (fun s -> Obs.Json.String s) string_printable;
      ]
  in
  if depth = 0 then scalar
  else
    frequency
      [
        (3, scalar);
        (1, map (fun l -> Obs.Json.List l)
              (list_size (int_bound 4) (gen_json (depth - 1))));
        (1,
         map
           (fun kvs -> Obs.Json.Obj kvs)
           (list_size (int_bound 4)
              (pair string_printable (gen_json (depth - 1)))));
      ]

let arb_json =
  QCheck.make ~print:Obs.Json.to_string (gen_json 3)

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Json.parse inverts Json.to_string"
    arb_json (fun j ->
      match Obs.Json.parse (Obs.Json.to_string j) with
      | Ok j' -> Obs.Json.equal j j'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_json_parse_strict () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" s)
    [ ""; "{"; "[1,"; "tru"; "1 2"; "{\"a\":}"; "\"\\q\""; "[1,]"; "nan";
      "01" ];
  List.iter
    (fun (s, expect) ->
      match Obs.Json.parse s with
      | Ok j ->
          Alcotest.(check bool) (Printf.sprintf "parse %S" s) true
            (Obs.Json.equal j expect)
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    [
      ("  null ", Obs.Json.Null);
      ("-12", Obs.Json.Int (-12));
      ("1.5e2", Obs.Json.Float 150.);
      ("\"a\\u00e9\\n\"", Obs.Json.String "a\xc3\xa9\n");
      ("[1,[true,{}]]",
       Obs.Json.(List [ Int 1; List [ Bool true; Obj [] ] ]));
      ("{\"k\":\"v\",\"n\":{}}",
       Obs.Json.(Obj [ ("k", String "v"); ("n", Obj []) ]));
    ]

(* --- histogram laws ----------------------------------------------------- *)

let hist_of_list vs =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.add h) vs;
  h

let arb_values =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_bound 60) (int_bound 100_000))

let prop_merge_commutes =
  QCheck.Test.make ~count:300 ~name:"Histogram.merge commutes"
    (QCheck.pair arb_values arb_values) (fun (a, b) ->
      let ha = hist_of_list a and hb = hist_of_list b in
      Obs.Histogram.equal
        (Obs.Histogram.merge ha hb)
        (Obs.Histogram.merge hb ha))

let prop_merge_assoc =
  QCheck.Test.make ~count:300 ~name:"Histogram.merge associates"
    (QCheck.triple arb_values arb_values arb_values) (fun (a, b, c) ->
      let ha = hist_of_list a
      and hb = hist_of_list b
      and hc = hist_of_list c in
      Obs.Histogram.equal
        (Obs.Histogram.merge (Obs.Histogram.merge ha hb) hc)
        (Obs.Histogram.merge ha (Obs.Histogram.merge hb hc)))

let prop_merge_identity =
  QCheck.Test.make ~count:200 ~name:"empty histogram is a merge identity"
    arb_values (fun a ->
      let ha = hist_of_list a in
      Obs.Histogram.equal ha
        (Obs.Histogram.merge ha (Obs.Histogram.create ())))

let prop_add_monotone =
  QCheck.Test.make ~count:300 ~name:"add bumps count and sum"
    (QCheck.pair arb_values (QCheck.int_range (-5) 100_000))
    (fun (a, v) ->
      let h = hist_of_list a in
      let n0 = Obs.Histogram.count h and s0 = Obs.Histogram.sum h in
      Obs.Histogram.add h v;
      Obs.Histogram.count h = n0 + 1
      && Obs.Histogram.sum h = s0 + max 0 v)

let prop_quantile_monotone =
  QCheck.Test.make ~count:300
    ~name:"quantile is monotone and bounded by max"
    (QCheck.triple arb_values (QCheck.float_bound_inclusive 1.)
       (QCheck.float_bound_inclusive 1.))
    (fun (a, q1, q2) ->
      let h = hist_of_list a in
      let lo = min q1 q2 and hi = max q1 q2 in
      Obs.Histogram.quantile h lo <= Obs.Histogram.quantile h hi
      && Obs.Histogram.quantile h hi <= Obs.Histogram.max_value h
         + (if Obs.Histogram.count h = 0 then 0 else 0))

let prop_hist_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Histogram json codec round-trips"
    arb_values (fun a ->
      let h = hist_of_list a in
      match Obs.Histogram.of_json (Obs.Histogram.to_json h) with
      | Ok h' -> Obs.Histogram.equal h h'
      | Error e -> QCheck.Test.fail_reportf "of_json: %s" e)

(* --- event NDJSON round-trip -------------------------------------------- *)

let gen_args =
  QCheck.Gen.(list_size (int_bound 3) (pair string_printable (gen_json 1)))

let gen_payload =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun n v -> Obs.Event.Counter (n, v)) string_printable
        small_signed_int;
      map2
        (fun n v -> Obs.Event.Gauge (n, float_of_int v /. 4.))
        string_printable small_signed_int;
      map2 (fun n a -> Obs.Event.Span_begin (n, a)) string_printable
        gen_args;
      map (fun n -> Obs.Event.Span_end n) string_printable;
      map2 (fun n a -> Obs.Event.Instant (n, a)) string_printable gen_args;
      map2
        (fun n vs -> Obs.Event.Hist (n, hist_of_list vs))
        string_printable
        (list_size (int_bound 20) (int_bound 10_000));
    ]

let gen_event =
  QCheck.Gen.(
    map
      (fun (ts, pid, tid, payload) ->
        { Obs.Event.ts_us = ts; pid; tid; payload })
      (quad (int_bound 1_000_000) (int_bound 8) (int_bound 32) gen_payload))

let payload_equal a b =
  match (a, b) with
  | Obs.Event.Counter (n, v), Obs.Event.Counter (n', v') -> n = n' && v = v'
  | Obs.Event.Gauge (n, v), Obs.Event.Gauge (n', v') -> n = n' && v = v'
  | Obs.Event.Span_begin (n, a), Obs.Event.Span_begin (n', a')
  | Obs.Event.Instant (n, a), Obs.Event.Instant (n', a') ->
      n = n' && Obs.Json.equal (Obs.Json.Obj a) (Obs.Json.Obj a')
  | Obs.Event.Span_end n, Obs.Event.Span_end n' -> n = n'
  | Obs.Event.Hist (n, h), Obs.Event.Hist (n', h') ->
      n = n' && Obs.Histogram.equal h h'
  | _ -> false

let event_equal (a : Obs.Event.t) (b : Obs.Event.t) =
  a.Obs.Event.ts_us = b.Obs.Event.ts_us
  && a.Obs.Event.pid = b.Obs.Event.pid
  && a.Obs.Event.tid = b.Obs.Event.tid
  && payload_equal a.Obs.Event.payload b.Obs.Event.payload

let prop_event_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Event NDJSON codec round-trips"
    (QCheck.make ~print:Obs.Event.to_ndjson_line gen_event) (fun e ->
      match Obs.Event.of_ndjson_line (Obs.Event.to_ndjson_line e) with
      | Ok e' -> event_equal e e'
      | Error err -> QCheck.Test.fail_reportf "decode: %s" err)

(* --- hub and sinks ------------------------------------------------------ *)

let test_hub_plumbing () =
  let sink, events = Obs.Sink.memory () in
  let clock, advance = Obs.Telemetry.manual_clock () in
  let t = Obs.Telemetry.create ~clock ~pid:7 ~sinks:[ sink ] () in
  Alcotest.(check bool) "enabled" true (Obs.Telemetry.enabled t);
  Alcotest.(check bool) "null disabled" false
    (Obs.Telemetry.enabled Obs.Telemetry.null);
  let c = Obs.Telemetry.counter t "nodes" in
  Obs.Telemetry.incr c;
  Obs.Telemetry.add c 41;
  Alcotest.(check int) "counter local" 42 (Obs.Telemetry.value c);
  Alcotest.(check int) "bumps don't emit" 0 (List.length (events ()));
  advance 5;
  Obs.Telemetry.emit_counter t c;
  let x = Obs.Telemetry.span t "phase" (fun () -> advance 3; 17) in
  Alcotest.(check int) "span passes result" 17 x;
  Obs.Telemetry.gauge t "rate" 2.5;
  Obs.Telemetry.close t;
  let evs = events () in
  let names = List.map Obs.Event.name evs in
  Alcotest.(check (list string)) "event order"
    [ "nodes"; "phase"; "phase"; "rate"; "nodes" ]
    names;
  (match evs with
  | { Obs.Event.ts_us = 5; pid = 7; payload = Obs.Event.Counter ("nodes", 42); _ }
    :: _ ->
      ()
  | _ -> Alcotest.fail "first event should be the ts=5 counter snapshot");
  (* span begin/end carry the advanced clock *)
  match List.filteri (fun i _ -> i = 1 || i = 2) evs with
  | [ { Obs.Event.ts_us = 5; payload = Obs.Event.Span_begin _; _ };
      { Obs.Event.ts_us = 8; payload = Obs.Event.Span_end _; _ } ] ->
      ()
  | _ -> Alcotest.fail "span timestamps wrong"

let test_span_ends_on_exception () =
  let sink, events = Obs.Sink.memory () in
  let t = Obs.Telemetry.create ~sinks:[ sink ] () in
  (try Obs.Telemetry.span t "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match List.map (fun e -> e.Obs.Event.payload) (events ()) with
  | [ Obs.Event.Span_begin ("boom", _); Obs.Event.Span_end "boom" ] -> ()
  | _ -> Alcotest.fail "span not closed on exception"

let test_console_sink_smoke () =
  let oc = open_out Filename.null in
  let t =
    Obs.Telemetry.create ~sinks:[ Obs.Sink.console ~oc () ] ()
  in
  let c = Obs.Telemetry.counter t "n" in
  Obs.Telemetry.add c 3;
  Obs.Telemetry.span t "s" (fun () -> ());
  let h = hist_of_list [ 1; 2; 3 ] in
  Obs.Telemetry.hist t "h" h;
  Obs.Telemetry.close t;
  close_out oc

let test_chrome_sink_valid_json () =
  let buf = Filename.temp_file "obs" ".json" in
  let oc = open_out buf in
  let clock, advance = Obs.Telemetry.manual_clock () in
  let t =
    Obs.Telemetry.create ~clock ~sinks:[ Obs.Sink.chrome_trace oc ] ()
  in
  Obs.Telemetry.span t "outer" (fun () ->
      advance 10;
      Obs.Telemetry.gauge t "g" 1.5;
      Obs.Telemetry.instant t "i";
      advance 5);
  (* an unbalanced begin must be closed by the sink epilogue *)
  let c = Obs.Telemetry.counter t "n" in
  Obs.Telemetry.add c 2;
  Obs.Telemetry.emit_counter t c;
  Obs.Telemetry.close t;
  close_out oc;
  let s = In_channel.with_open_text buf In_channel.input_all in
  Sys.remove buf;
  match Obs.Json.parse s with
  | Error e -> Alcotest.failf "chrome sink output not JSON: %s" e
  | Ok (Obs.Json.List evs) ->
      Alcotest.(check bool) "nonempty" true (evs <> []);
      List.iter
        (fun ev ->
          match
            ( Obs.Json.member "ph" ev,
              Obs.Json.member "ts" ev,
              Obs.Json.member "pid" ev )
          with
          | Some (Obs.Json.String _), Some (Obs.Json.Int _),
            Some (Obs.Json.Int _) ->
              ()
          | _ -> Alcotest.failf "malformed trace event: %s"
                   (Obs.Json.to_string ev))
        evs;
      let phs =
        List.filter_map
          (fun ev ->
            match Obs.Json.member "ph" ev with
            | Some (Obs.Json.String p) -> Some p
            | _ -> None)
          evs
      in
      Alcotest.(check int) "begins balance ends"
        (List.length (List.filter (( = ) "B") phs))
        (List.length (List.filter (( = ) "E") phs))
  | Ok _ -> Alcotest.fail "chrome sink output is not a JSON array"

(* --- Chrome export of a machine trace: golden file ---------------------- *)

(* Must match suite_corpus.peterson (the fixture's provenance), with
   trace recording on. *)
let peterson_unfenced () =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~n:2 ~layout
    ~record_trace:true
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

let golden_file = Filename.concat "corpus" "peterson_unfenced_tso.trace.json"

let exported_fixture () =
  let schedule =
    match
      Mcheck.Explore.load_schedule
        (Filename.concat "corpus" "peterson_unfenced_tso.sched")
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "fixture schedule: %s" e
  in
  let m, outcome = Mcheck.Explore.replay (peterson_unfenced ()) schedule in
  (match outcome with
  | Mcheck.Explore.R_exclusion _ -> ()
  | _ -> Alcotest.fail "fixture replay should end in the exclusion");
  Execution.Chrome.to_string (Execution.Trace.of_machine m)

let test_chrome_golden () =
  let got = exported_fixture () in
  (* bless mode: OBS_BLESS holds an absolute path to (re)write *)
  (match Sys.getenv_opt "OBS_BLESS" with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc got)
  | None -> ());
  if not (Sys.file_exists golden_file) then
    Alcotest.fail
      "golden file missing - regenerate with \
       OBS_BLESS=<abs path to test/corpus/peterson_unfenced_tso.trace.json>";
  let want = In_channel.with_open_bin golden_file In_channel.input_all in
  Alcotest.(check string) "byte-stable Chrome export" want got

let test_chrome_golden_is_valid_trace () =
  let got = exported_fixture () in
  match Obs.Json.parse got with
  | Error e -> Alcotest.failf "export is not valid JSON: %s" e
  | Ok (Obs.Json.List evs) ->
      Alcotest.(check bool) "nonempty" true (evs <> []);
      List.iter
        (fun ev ->
          match
            ( Obs.Json.member "ph" ev,
              Obs.Json.member "ts" ev,
              Obs.Json.member "pid" ev,
              Obs.Json.member "tid" ev )
          with
          | Some (Obs.Json.String _), Some (Obs.Json.Int _),
            Some (Obs.Json.Int _), Some (Obs.Json.Int _) ->
              ()
          | _ ->
              Alcotest.failf "malformed trace event: %s"
                (Obs.Json.to_string ev))
        evs;
      (* per-lane B/E nesting balances (the exporter closes dangling
         spans), and both simulated processes got a lane *)
      let lanes = Hashtbl.create 4 in
      List.iter
        (fun ev ->
          match (Obs.Json.member "ph" ev, Obs.Json.member "tid" ev) with
          | Some (Obs.Json.String ph), Some (Obs.Json.Int tid) ->
              let d = try Hashtbl.find lanes tid with Not_found -> 0 in
              if ph = "B" then Hashtbl.replace lanes tid (d + 1)
              else if ph = "E" then begin
                Alcotest.(check bool) "E under B" true (d > 0);
                Hashtbl.replace lanes tid (d - 1)
              end
          | _ -> ())
        evs;
      Hashtbl.iter
        (fun tid d ->
          Alcotest.(check int) (Printf.sprintf "lane %d balanced" tid) 0 d)
        lanes;
      Alcotest.(check bool) "two process lanes" true
        (Hashtbl.length lanes >= 2)
  | Ok _ -> Alcotest.fail "export is not a JSON array"

(* --- explorer: stats and verdicts --------------------------------------- *)

let dekker () =
  (Locks.Zoo.find "dekker" |> Option.get).Locks.Lock_intf.instantiate ~n:2

let dekker_cfg () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb (dekker ()) ~n:2

let test_explorer_stats () =
  let r = Mcheck.Explore.explore ~max_nodes:2_000_000 (dekker_cfg ()) in
  let s = r.Mcheck.Explore.stats in
  Alcotest.(check bool) "verified" true r.Mcheck.Explore.verified;
  Alcotest.(check bool) "dedup hits counted" true
    (s.Mcheck.Explore.dedup_hits > 0);
  Alcotest.(check bool) "sleep prunes counted" true
    (s.Mcheck.Explore.sleep_prunes > 0);
  Alcotest.(check bool) "ample chains counted" true
    (s.Mcheck.Explore.ample_chains > 0);
  Alcotest.(check bool) "table occupancy positive" true
    (s.Mcheck.Explore.seen_entries > 0
    && s.Mcheck.Explore.seen_entries <= r.Mcheck.Explore.nodes);
  Alcotest.(check int) "crash-free" 0 s.Mcheck.Explore.crashes_applied;
  Alcotest.(check int) "one domain" 1 s.Mcheck.Explore.domains_used;
  Alcotest.(check (list int)) "domain nodes"
    [ r.Mcheck.Explore.nodes ]
    s.Mcheck.Explore.domain_nodes

let test_explorer_stats_parallel () =
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~domains:2 (dekker_cfg ())
  in
  let s = r.Mcheck.Explore.stats in
  Alcotest.(check bool) "verified" true r.Mcheck.Explore.verified;
  Alcotest.(check int) "two domains" 2 s.Mcheck.Explore.domains_used;
  Alcotest.(check int) "one node share per domain" 2
    (List.length s.Mcheck.Explore.domain_nodes);
  (* coordinator BFS nodes + per-domain nodes account for the total *)
  Alcotest.(check int) "node accounting" r.Mcheck.Explore.nodes
    (List.fold_left ( + )
       (r.Mcheck.Explore.nodes
       - List.fold_left ( + ) 0 s.Mcheck.Explore.domain_nodes)
       s.Mcheck.Explore.domain_nodes)

(* The CLI bug this release fixes: partial results must not share exit
   code 0 with verification. *)
let test_verdict_mapping () =
  let verified = Mcheck.Explore.explore ~max_nodes:2_000_000 (dekker_cfg ()) in
  let msg, code = Mcheck.Explore.render_verdict verified in
  Alcotest.(check int) "verified exit 0" 0 code;
  Alcotest.(check bool) "verified message" true
    (String.length msg >= 8 && String.sub msg 0 8 = "VERIFIED");
  let violated =
    Mcheck.Explore.explore ~max_nodes:2_000_000
      { (peterson_unfenced ()) with Config.record_trace = false }
  in
  let msg, code = Mcheck.Explore.render_verdict violated in
  Alcotest.(check int) "violation exit 1" 1 code;
  Alcotest.(check bool) "violation message" true
    (String.length msg >= 9 && String.sub msg 0 9 = "VIOLATION");
  let partial = Mcheck.Explore.explore ~max_nodes:40 (dekker_cfg ()) in
  Alcotest.(check bool) "partial, nothing found" true
    (partial.Mcheck.Explore.partial = Some `Nodes
    && partial.Mcheck.Explore.violations = []);
  let msg, code = Mcheck.Explore.render_verdict partial in
  Alcotest.(check int) "partial exit 3" 3 code;
  Alcotest.(check bool) "partial message" true
    (String.length msg >= 7 && String.sub msg 0 7 = "PARTIAL");
  Alcotest.(check bool) "partial names the budget" true
    (String.length msg > 0
    &&
    let re = "node budget" in
    let rec contains i =
      i + String.length re <= String.length msg
      && (String.sub msg i (String.length re) = re || contains (i + 1))
    in
    contains 0)

(* Attaching a hub must not change the search, and must emit heartbeat
   counters whose final snapshot matches the result. *)
let test_explorer_telemetry_agrees () =
  let bare = Mcheck.Explore.explore ~max_nodes:2_000_000 (dekker_cfg ()) in
  let sink, events = Obs.Sink.memory () in
  let obs = Obs.Telemetry.create ~sinks:[ sink ] () in
  let instrumented =
    Mcheck.Explore.explore ~max_nodes:2_000_000 ~obs (dekker_cfg ())
  in
  Obs.Telemetry.close obs;
  Alcotest.(check int) "same node count" bare.Mcheck.Explore.nodes
    instrumented.Mcheck.Explore.nodes;
  Alcotest.(check bool) "same verdict" bare.Mcheck.Explore.verified
    instrumented.Mcheck.Explore.verified;
  let final name =
    List.fold_left
      (fun acc e ->
        match e.Obs.Event.payload with
        | Obs.Event.Counter (n, v) when n = name -> Some v
        | _ -> acc)
      None (events ())
  in
  Alcotest.(check (option int)) "final nodes counter"
    (Some instrumented.Mcheck.Explore.nodes)
    (final "explore.nodes");
  Alcotest.(check (option int)) "final dedup counter"
    (Some instrumented.Mcheck.Explore.stats.Mcheck.Explore.dedup_hits)
    (final "explore.dedup_hits")

(* --- adversary telemetry ------------------------------------------------ *)

let test_adversary_telemetry () =
  let sink, events = Obs.Sink.memory () in
  let obs = Obs.Telemetry.create ~sinks:[ sink ] () in
  let n = 8 in
  let lock =
    (Locks.Zoo.find "tas" |> Option.get).Locks.Lock_intf.instantiate ~n
  in
  let c = Adversary.Construction.create ~obs lock ~n in
  let report = Adversary.Construction.run ~min_act:1 c in
  Obs.Telemetry.close obs;
  let evs = events () in
  let has name =
    List.exists (fun e -> Obs.Event.name e = name) evs
  in
  Alcotest.(check bool) "run span" true (has "adversary.run");
  Alcotest.(check bool) "round spans" true (has "adversary.round");
  Alcotest.(check bool) "erased counter" true (has "adversary.erased");
  let spans_balanced =
    List.fold_left
      (fun d e ->
        match e.Obs.Event.payload with
        | Obs.Event.Span_begin _ -> d + 1
        | Obs.Event.Span_end _ -> d - 1
        | _ -> d)
      0 evs
  in
  Alcotest.(check int) "spans balanced" 0 spans_balanced;
  (* the erased counter's final value covers every erasure the report saw *)
  let final_erased =
    List.fold_left
      (fun acc e ->
        match e.Obs.Event.payload with
        | Obs.Event.Counter ("adversary.erased", v) -> v
        | _ -> acc)
      0 evs
  in
  let report_erased =
    List.fold_left
      (fun acc (s : Adversary.Report.step) ->
        List.fold_left
          (fun acc (r : Adversary.Report.round) ->
            acc + Tsim.Ids.Pidset.cardinal r.Adversary.Report.erased)
          acc s.Adversary.Report.rounds)
      0 report.Adversary.Report.steps
  in
  Alcotest.(check bool) "erased counter covers report rounds" true
    (final_erased >= report_erased)

(* --- metrics cross-check (satellite 1) ---------------------------------- *)

(* Random schedules over real locks, all three memory models: the
   machine's online fence/RMR/critical counters must agree exactly with
   Trace.Metrics.compute over the recorded trace. *)
let prop_metrics_cross_check =
  QCheck.Test.make ~count:60
    ~name:"online counters = Metrics.compute on random schedules"
    (QCheck.triple
       (QCheck.oneofl [ Config.Dsm; Config.Cc_wt; Config.Cc_wb ])
       (QCheck.oneofl [ "tas"; "ticket"; "mcs" ])
       (QCheck.pair (QCheck.int_range 2 4) (QCheck.int_bound 10_000)))
    (fun (model, lock_name, (n, seed)) ->
      let lock =
        (Locks.Zoo.find lock_name |> Option.get).Locks.Lock_intf.instantiate
          ~n
      in
      let cfg =
        Locks.Harness.config_of_lock ~model ~max_passages:2 lock ~n
      in
      let cfg = { cfg with Config.record_trace = true } in
      let m = Machine.create cfg in
      ignore (Sched.random ~seed ~commit_bias:0.3 ~max_steps:4_000 m);
      let metrics = Execution.Metrics.compute (Execution.Trace.of_machine m) in
      match Execution.Metrics.cross_check m metrics with
      | [] -> true
      | fails ->
          QCheck.Test.fail_reportf "%s/%s n=%d seed=%d:\n  %s"
            (Config.mem_model_name model)
            lock_name n seed
            (String.concat "\n  " fails))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "JSON parser is strict" `Quick test_json_parse_strict;
    QCheck_alcotest.to_alcotest prop_merge_commutes;
    QCheck_alcotest.to_alcotest prop_merge_assoc;
    QCheck_alcotest.to_alcotest prop_merge_identity;
    QCheck_alcotest.to_alcotest prop_add_monotone;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_hist_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_event_roundtrip;
    Alcotest.test_case "hub plumbing / manual clock" `Quick
      test_hub_plumbing;
    Alcotest.test_case "span closes on exception" `Quick
      test_span_ends_on_exception;
    Alcotest.test_case "console sink smoke" `Quick test_console_sink_smoke;
    Alcotest.test_case "chrome sink emits valid JSON" `Quick
      test_chrome_sink_valid_json;
    Alcotest.test_case "chrome export golden file" `Quick test_chrome_golden;
    Alcotest.test_case "chrome export well-formed" `Quick
      test_chrome_golden_is_valid_trace;
    Alcotest.test_case "explorer search stats" `Quick test_explorer_stats;
    Alcotest.test_case "explorer search stats (parallel)" `Quick
      test_explorer_stats_parallel;
    Alcotest.test_case "verdict/exit-code mapping" `Quick
      test_verdict_mapping;
    Alcotest.test_case "telemetry does not perturb the search" `Quick
      test_explorer_telemetry_agrees;
    Alcotest.test_case "adversary telemetry" `Quick
      test_adversary_telemetry;
    QCheck_alcotest.to_alcotest prop_metrics_cross_check;
  ]
