let () =
  Alcotest.run "price_adaptive"
    [
      ("vec", Suite_vec.suite);
      ("pidset", Suite_pidset.suite);
      ("layout", Suite_layout.suite);
      ("wbuf", Suite_wbuf.suite);
      ("machine", Suite_machine.suite);
      ("sched", Suite_sched.suite);
      ("trace", Suite_trace.suite);
      ("serial", Suite_serial.suite);
      ("analysis", Suite_analysis.suite);
      ("graphs", Suite_graphs.suite);
      ("locks", Suite_locks.suite);
      ("pso", Suite_pso.suite);
      ("contention", Suite_contention.suite);
      ("splitter", Suite_splitter.suite);
      ("adversary", Suite_adversary.suite);
      ("objects", Suite_objects.suite);
      ("bounds", Suite_bounds.suite);
      ("lincheck", Suite_lincheck.suite);
      ("coord", Suite_coord.suite);
      ("mcheck", Suite_mcheck.suite);
      ("mcheck_equiv", Suite_mcheck_equiv.suite);
      ("compile", Suite_compile.suite);
      ("journal", Suite_journal.suite);
      ("fpstore", Suite_fpstore.suite);
      ("crash", Suite_crash.suite);
      ("abort", Suite_abort.suite);
      ("corpus", Suite_corpus.suite);
      ("obs", Suite_obs.suite);
      ("profile", Suite_profile.suite);
      ("twoproc", Suite_twoproc.suite);
      ("campaign", Suite_campaign.suite);
    ]
