(* Golden schedule corpus: violating schedules checked into
   test/corpus/*.sched, replayed move-by-move against the configurations
   that produced them. The corpus pins down (a) the machine semantics the
   schedules were found under — a semantic change that breaks a replay
   here is a regression, not a re-run-the-explorer event — and (b) the
   schedule text format itself, whose round-trip with the move codec is
   property-tested below. *)

open Tsim
open Tsim.Prog

(* The corpus configurations. These must match the fixtures' provenance
   headers; they intentionally duplicate the definitions in
   suite_mcheck / suite_mcheck_equiv so a refactor over there cannot
   silently change what the fixtures mean. *)

let peterson ~fenced =
  let layout = Layout.create () in
  let flag = Layout.array layout ~init:0 "flag" 2 in
  let turn = Layout.var layout ~init:0 "turn" in
  Config.make ~model:Config.Cc_wb ~check_exclusion:true ~pure_programs:true
    ~n:2 ~layout
    ~entry:(fun p ->
      let* () = write flag.(p) 1 in
      let* () = write turn p in
      let* () = if fenced then fence else unit in
      let rec await fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted turn)
        else
          let* f = read flag.(1 - p) in
          if f = 0 then unit
          else
            let* t = read turn in
            if t <> p then unit else await (fuel - 1)
      in
      await 4)
    ~exit_section:(fun p ->
      let* () = write flag.(p) 0 in
      fence)
    ()

let mp_pso () =
  let layout = Layout.create () in
  let data = Layout.var layout "data" in
  let flag = Layout.var layout "flag" in
  let blocked = Layout.var layout "blocked" in
  Config.make ~model:Config.Cc_wb ~ordering:Config.Pso ~check_exclusion:true
    ~pure_programs:true ~n:2 ~layout
    ~entry:(fun p ->
      if p = 0 then
        let* () = write data 1 in
        let* () = write flag 1 in
        unit
      else
        let* f = read flag in
        let* d = read data in
        if f = 1 && d = 0 then unit
        else
          let* _ = spin_until ~fuel:1 blocked (fun x -> x = 1) in
          unit)
    ~exit_section:(fun _ -> Prog.unit)
    ()

let load file =
  match Mcheck.Explore.load_schedule (Filename.concat "corpus" file) with
  | Ok schedule -> schedule
  | Error msg -> Alcotest.failf "%s: %s" file msg

(* Replay a fixture under every engine and check: the expected exclusion
   fires, with the expected holder/intruder; and the replay is
   deterministic AND engine-invariant — each run stops at the same
   outcome with fingerprint-identical machines (the corpus pins the
   compiled engine's execution semantics, not just the interpreter's). *)
let check_fixture file mk_cfg =
  let schedule = load file in
  let replay engine =
    Mcheck.Explore.replay { (mk_cfg ()) with Config.engine } schedule
  in
  let m1, o1 = replay `Journal in
  (match o1 with
  | Mcheck.Explore.R_exclusion (h, i) ->
      Alcotest.(check int) "holder p0" 0 h;
      Alcotest.(check int) "intruder p1" 1 i
  | Mcheck.Explore.R_completed -> Alcotest.failf "%s: replay completed" file
  | Mcheck.Explore.R_spin v -> Alcotest.failf "%s: spin on v%d" file v
  | Mcheck.Explore.R_bad_pid (i, p) ->
      Alcotest.failf "%s: move %d references unknown p%d" file i p
  | Mcheck.Explore.R_bad_abort (i, p) ->
      Alcotest.failf "%s: move %d aborts p%d outside a wait point" file i p
  | Mcheck.Explore.R_stuck (i, msg) ->
      Alcotest.failf "%s: stuck at move %d: %s" file i msg);
  List.iter
    (fun engine ->
      let m2, o2 = replay engine in
      Alcotest.(check bool)
        (Config.engine_name engine ^ " replay: same outcome")
        true (o1 = o2);
      Alcotest.(check int)
        (Config.engine_name engine ^ " replay: same final state")
        (Mcheck.Explore.fingerprint m1)
        (Mcheck.Explore.fingerprint m2))
    [ `Journal; `Clone; `Compiled ]

let test_peterson_fixture () =
  check_fixture "peterson_unfenced_tso.sched" (fun () ->
      peterson ~fenced:false)

let test_mp_fixture () =
  check_fixture "mp_pso.sched" mp_pso;
  (* the anomaly needs PSO's out-of-order commit: the schedule must use a
     Commit_var move, which TSO replay rejects *)
  let schedule = load "mp_pso.sched" in
  Alcotest.(check bool) "uses an out-of-order commit" true
    (List.exists
       (function Mcheck.Explore.Commit_var _ -> true | _ -> false)
       schedule)

(* Crash-injection fixture: a crashed p0 whose naive recovery section
   frees p1's lock. Pins the crash/recover schedule text, the crash
   semantics of replay, and its determinism. *)
let naive_rtas () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    ~crash_semantics:Config.Drop_buffer
    (Locks.Recoverable_tas.make_naive ~n:2) ~n:2

let test_crash_fixture () =
  check_fixture "recoverable_tas_crash.sched" naive_rtas;
  let schedule = load "recoverable_tas_crash.sched" in
  Alcotest.(check bool) "injects a crash" true
    (List.exists
       (function Mcheck.Explore.Crash _ -> true | _ -> false)
       schedule);
  Alcotest.(check bool) "recovers the crashed process" true
    (List.exists
       (function Mcheck.Explore.Recover _ -> true | _ -> false)
       schedule);
  (* the non-naive recovery section survives the same move sequence:
     replaying it against recoverable-tas must NOT reach the exclusion
     (the recovery read sees p1's stamp and backs off, after which the
     schedule's remaining moves no longer line up — stuck or spin are
     both acceptable, an exclusion is not) *)
  let cfg =
    Locks.Harness.config_of_lock ~model:Config.Cc_wb
      ~crash_semantics:Config.Drop_buffer
      (Locks.Recoverable_tas.make ~n:2) ~n:2
  in
  match Mcheck.Explore.replay cfg schedule with
  | _, Mcheck.Explore.R_exclusion _ ->
      Alcotest.fail "proper recovery reached the exclusion"
  | _ -> ()

(* Abort-injection fixture: p1's abort runs the buggy cleanup, which
   unconditionally frees the lock p0 holds; p1's next attempt then walks
   into p0's critical section. Pins the abort schedule text, the abort
   semantics of replay, and its determinism. *)
let buggy_atas () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    (Locks.Abortable_tas.make_buggy ~n:2) ~n:2

let test_abort_fixture () =
  check_fixture "abortable_tas_abort.sched" buggy_atas;
  let schedule = load "abortable_tas_abort.sched" in
  Alcotest.(check bool) "injects an abort" true
    (List.exists
       (function Mcheck.Explore.Abort _ -> true | _ -> false)
       schedule);
  (* the properly-stamped cleanup survives the same move sequence:
     replaying it against the safe abortable TAS must NOT reach the
     exclusion (the cleanup read sees p0's stamp and leaves the lock
     alone; the remaining moves then stop lining up — stuck or spin are
     both acceptable, an exclusion is not) *)
  let cfg =
    Locks.Harness.config_of_lock ~model:Config.Cc_wb
      (Locks.Abortable_tas.make ~n:2) ~n:2
  in
  match Mcheck.Explore.replay cfg schedule with
  | _, Mcheck.Explore.R_exclusion _ ->
      Alcotest.fail "proper cleanup reached the exclusion"
  | _ -> ()

(* Byte-level invisibility of compile-ahead execution: replaying the
   pinned schedule with trace recording on must produce the exact Chrome
   export golden-filed for the interpreter engines — same events, same
   sequence numbers, same rendering, to the byte. *)
let test_chrome_compiled_identical () =
  let schedule = load "peterson_unfenced_tso.sched" in
  let export engine =
    let cfg =
      { (peterson ~fenced:false) with Config.record_trace = true; engine }
    in
    let m, outcome = Mcheck.Explore.replay cfg schedule in
    (match outcome with
    | Mcheck.Explore.R_exclusion _ -> ()
    | _ -> Alcotest.fail "fixture replay should end in the exclusion");
    Execution.Chrome.to_string (Execution.Trace.of_machine m)
  in
  let golden =
    In_channel.with_open_bin
      (Filename.concat "corpus" "peterson_unfenced_tso.trace.json")
      In_channel.input_all
  in
  Alcotest.(check string) "compiled replay matches the golden bytes" golden
    (export `Compiled)

(* A freshly explored violation on the same configuration still finds an
   exclusion (the fixture is not the only witness, just a pinned one). *)
let test_fixture_still_reachable () =
  let r =
    Mcheck.Explore.explore ~max_nodes:2_000_000 (peterson ~fenced:false)
  in
  Alcotest.(check bool) "explorer still finds an exclusion" true
    (List.exists
       (fun v ->
         match v.Mcheck.Explore.kind with `Exclusion _ -> true | _ -> false)
       r.Mcheck.Explore.violations)

(* --- serialization round-trips ----------------------------------------- *)

let gen_move =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun p -> Mcheck.Explore.Step p) (int_range 0 127));
        (2, map (fun p -> Mcheck.Explore.Commit p) (int_range 0 127));
        (2,
         map2
           (fun p v -> Mcheck.Explore.Commit_var (p, v))
           (int_range 0 127) (int_range 0 200));
        (2,
         map2
           (fun p k -> Mcheck.Explore.Crash (p, k))
           (int_range 0 127) (int_range 0 8));
        (1, map (fun p -> Mcheck.Explore.Recover p) (int_range 0 127));
        (1, map (fun p -> Mcheck.Explore.Abort p) (int_range 0 127));
      ])

let arb_move = QCheck.make ~print:Mcheck.Explore.move_to_string gen_move

let arb_schedule =
  QCheck.make
    ~print:(fun s -> Mcheck.Explore.schedule_to_string s)
    QCheck.Gen.(list_size (int_range 0 40) gen_move)

let prop_move_roundtrip =
  QCheck.Test.make ~count:500 ~name:"move_of_string inverts move_to_string"
    arb_move (fun mv ->
      Mcheck.Explore.move_of_string (Mcheck.Explore.move_to_string mv)
      = Some mv)

let prop_schedule_roundtrip =
  QCheck.Test.make ~count:200 ~name:"schedule text round-trips" arb_schedule
    (fun s ->
      Mcheck.Explore.schedule_of_string (Mcheck.Explore.schedule_to_string s)
      = Ok s)

let test_parse_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (Mcheck.Explore.move_of_string s = None))
    [ ""; "step"; "step q1"; "step p-1"; "commit p0 w3"; "step p0 v1";
      "commit p0 v1 extra"; "step pp0"; "commit p0 v"; "crash";
      "crash q0"; "crash p0 -1"; "crash p0 1 2"; "recover";
      "recover p0 1"; "abort"; "abort q0"; "abort p0 3"; "abort p-1" ];
  match Mcheck.Explore.schedule_of_string "step p0\nnonsense\n" with
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (String.length msg > 0
        && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "parsed nonsense"

(* Comments and blank lines are fixture affordances, not accidents. *)
let test_parse_comments () =
  match
    Mcheck.Explore.schedule_of_string
      "# header\n\nstep p0 # trailing\n  \ncommit p1 v2\n"
  with
  | Ok [ Mcheck.Explore.Step 0; Mcheck.Explore.Commit_var (1, 2) ] -> ()
  | Ok s ->
      Alcotest.failf "wrong parse: %s" (Mcheck.Explore.schedule_to_string s)
  | Error msg -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "peterson unfenced TSO fixture replays" `Quick
      test_peterson_fixture;
    Alcotest.test_case "mp PSO fixture replays" `Quick test_mp_fixture;
    Alcotest.test_case "recoverable-tas crash fixture replays" `Quick
      test_crash_fixture;
    Alcotest.test_case "abortable-tas abort fixture replays" `Quick
      test_abort_fixture;
    Alcotest.test_case "compiled chrome export matches golden bytes" `Quick
      test_chrome_compiled_identical;
    Alcotest.test_case "fixture violation still reachable" `Quick
      test_fixture_still_reachable;
    Alcotest.test_case "parser rejects malformed moves" `Quick
      test_parse_rejects;
    Alcotest.test_case "parser handles comments and blanks" `Quick
      test_parse_comments;
    QCheck_alcotest.to_alcotest prop_move_roundtrip;
    QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
  ]
