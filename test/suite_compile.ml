(* The compile-ahead engine (Tsim.Compile), locked down three ways:

   - a lockstep single-step oracle: qcheck random walks drive one
     interpretive machine and one compiled machine through the SAME move
     sequence, comparing enabled-move lists, observable state,
     footprints and both fingerprints after every event — the compiled
     analogue of suite_journal's step;undo law;

   - the step;undo law itself on compiled machines: journal rollback
     must restore an interned continuation (the pc >= 0 representative)
     exactly, Machine.equal included;

   - typed compile-time failures: a section root that unrolls past the
     instruction budget reports Program_too_large, a root whose register
     frame cannot be interned structurally reports Opaque_continuation —
     errors, never crashes or wrong answers — while runtime-only limits
     (value-edge fanout) degrade to the interpreter path silently. *)

open Tsim
open Tsim.Prog
module E = Mcheck.Explore

(* --- lockstep oracle --------------------------------------------------- *)

(* Everything the explorer can observe of a machine state, compared
   field by field. Continuations are compared through the fingerprint
   (which hashes them structurally) rather than [==]: the interpretive
   machine rebuilds closures the compiled machine interns. *)
let check_observables ~tag cfg mi mc =
  Alcotest.(check int) (tag ^ ": full fingerprint") (Machine.fingerprint mi)
    (Machine.fingerprint mc);
  Alcotest.(check int)
    (tag ^ ": incremental fingerprint")
    (Machine.fingerprint_fast mi)
    (Machine.fingerprint_fast mc);
  for v = 0 to Layout.size cfg.Config.layout - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: mem v%d" tag v)
      (Machine.mem_value mi v) (Machine.mem_value mc v)
  done;
  for p = 0 to cfg.Config.n - 1 do
    let pi = Machine.proc mi p and pc = Machine.proc mc p in
    Alcotest.(check string)
      (Printf.sprintf "%s: section p%d" tag p)
      (Machine.section_name pi.Machine.sec)
      (Machine.section_name pc.Machine.sec);
    Alcotest.(check string)
      (Printf.sprintf "%s: pending p%d" tag p)
      (Machine.pending_to_string (Machine.pending mi p))
      (Machine.pending_to_string (Machine.pending mc p));
    Alcotest.(check int)
      (Printf.sprintf "%s: packed footprint p%d" tag p)
      (Machine.step_footprint_packed mi p)
      (Machine.step_footprint_packed mc p);
    Alcotest.(check bool)
      (Printf.sprintf "%s: may_enable_cs p%d" tag p)
      (Machine.step_may_enable_cs mi p)
      (Machine.step_may_enable_cs mc p);
    Alcotest.(check int)
      (Printf.sprintf "%s: buffered writes p%d" tag p)
      (Wbuf.size pi.Machine.buf) (Wbuf.size pc.Machine.buf)
  done

let exn_class = function
  | Machine.Exclusion_violation _ -> "exclusion"
  | Prog.Spin_exhausted _ -> "spin"
  | e -> Printexc.to_string e

(* Drive both machines through the same randomly chosen enabled moves,
   checking the full observable projection after every event. An
   exception must surface from both engines with the same class; it may
   leave partial mutations behind, so it ends the walk. *)
let lockstep_walk ?(max_crashes = 0) cfg seed =
  let rng = Random.State.make [| seed |] in
  let mi = Machine.create { cfg with Config.engine = `Journal } in
  let mc = Machine.create { cfg with Config.engine = `Compiled } in
  Machine.Journal.enable mi;
  Machine.Journal.enable mc;
  let steps = ref 0 and continue = ref true in
  while !continue && !steps < 80 do
    incr steps;
    let tag = Printf.sprintf "step %d" !steps in
    check_observables ~tag cfg mi mc;
    let movesi = E.enabled_moves ~max_crashes mi in
    let movesc = E.enabled_moves ~max_crashes mc in
    if
      List.map E.move_to_string movesi <> List.map E.move_to_string movesc
    then
      Alcotest.failf "%s: enabled moves disagree: [%s] vs [%s]" tag
        (String.concat "; " (List.map E.move_to_string movesi))
        (String.concat "; " (List.map E.move_to_string movesc));
    match movesi with
    | [] -> continue := false
    | moves -> (
        let mv = List.nth moves (Random.State.int rng (List.length moves)) in
        let go m = try Ok (E.apply m mv) with e -> Error (exn_class e) in
        match (go mi, go mc) with
        | Ok (), Ok () -> ()
        | Error a, Error b ->
            Alcotest.(check string)
              (tag ^ ": same exception from " ^ E.move_to_string mv)
              a b;
            continue := false
        | Ok (), Error e | Error e, Ok () ->
            Alcotest.failf "%s: engines disagree on raising %s from %s" tag e
              (E.move_to_string mv))
  done;
  true

let prop_lockstep name ?max_crashes mk_cfg arb =
  QCheck.Test.make ~count:60 ~name
    QCheck.(pair arb small_nat)
    (fun (x, seed) -> lockstep_walk ?max_crashes (mk_cfg x) seed)

(* --- step;undo on compiled machines ------------------------------------ *)

(* suite_journal's walk_restores law, on a machine whose continuations
   are interned pcs: undo must re-derive the canonical representative,
   so even the physical-identity comparison in Machine.equal holds. *)
let compiled_walk_restores ?(max_crashes = 0) cfg seed =
  let rng = Random.State.make [| seed |] in
  let m = Machine.create { cfg with Config.engine = `Compiled } in
  Machine.Journal.enable m;
  let steps = ref 0 and continue = ref true in
  while !continue && !steps < 60 do
    incr steps;
    match E.enabled_moves ~max_crashes m with
    | [] -> continue := false
    | moves ->
        let mv = List.nth moves (Random.State.int rng (List.length moves)) in
        let snap = Machine.clone m in
        let fp_before = Machine.fingerprint m in
        let mark = Machine.Journal.mark m in
        let raised =
          try
            E.apply m mv;
            false
          with Machine.Exclusion_violation _ | Prog.Spin_exhausted _ -> true
        in
        Machine.Journal.undo_to m mark;
        if not (Machine.equal m snap) then
          Alcotest.failf "undo after %s did not restore the compiled state"
            (E.move_to_string mv);
        Alcotest.(check int) "full fingerprint restored" fp_before
          (Machine.fingerprint m);
        Alcotest.(check int) "incremental fingerprint restored" fp_before
          (Machine.fingerprint_fast m);
        if raised then continue := false else E.apply m mv
  done;
  true

(* --- typed compile-time errors ----------------------------------------- *)

let one_proc entry =
  let layout = Layout.create () in
  let v = Layout.var layout ~init:0 "v" in
  ( v,
    fun () ->
      Config.make ~pure_programs:true ~n:1 ~layout ~entry:(fun _ -> entry v)
        ~exit_section:(fun _ -> Prog.unit)
        () )

let test_program_too_large () =
  let _, mk_cfg =
    one_proc (fun v ->
        (* 64 distinct straight-line continuations: eager unit-edge
           closing must overflow a 16-instruction budget *)
        let rec chain n =
          if n = 0 then unit
          else
            let* () = write v n in
            chain (n - 1)
        in
        chain 64)
  in
  match Compile.make ~max_instrs:16 (mk_cfg ()) with
  | _ -> Alcotest.fail "expected Program_too_large"
  | exception Compile.Error (Compile.Program_too_large { limit; _ }) ->
      Alcotest.(check int) "reports the budget it overflowed" 16 limit
  | exception Compile.Error e ->
      Alcotest.failf "wrong error: %s" (Compile.error_to_string e)

let test_opaque_continuation () =
  let ch = stdin in
  let _, mk_cfg =
    one_proc (fun v ->
        let* x = read v in
        (* the continuation's register frame captures a channel, which
           structural interning cannot serialize *)
        if x = 12345 then (
          ignore (input_char ch);
          unit)
        else unit)
  in
  match Compile.make (mk_cfg ()) with
  | _ -> Alcotest.fail "expected Opaque_continuation"
  | exception Compile.Error (Compile.Opaque_continuation { reason; _ }) ->
      Alcotest.(check bool) "reason is non-empty" true
        (String.length reason > 0)
  | exception Compile.Error e ->
      Alcotest.failf "wrong error: %s" (Compile.error_to_string e)

(* Run-time limits are budgets, not errors: new read results intern new
   instructions on demand (memoized up to [max_fanout]); once the code
   store fills, further value edges return -1 — the caller parks that
   process on the interpreter path — and execution stays correct. *)
let test_fanout_degrades () =
  let _, mk_cfg =
    one_proc (fun v ->
        let* x = read v in
        write v (x + 1))
  in
  (* distinct continuation per read result: each new value interns one *)
  let c = Compile.make (mk_cfg ()) in
  let base = Compile.size c in
  let pc = Compile.entry_pc c 0 in
  Alcotest.(check bool) "entry section compiled" true (pc >= 0);
  (match Compile.rep c pc with
  | Prog.Bind (Prog.Read _, k) ->
      let a = Compile.advance_val c pc k 0 in
      Alcotest.(check bool) "first value edge compiles" true (a >= 0);
      Alcotest.(check int) "it interned a new instruction" (base + 1)
        (Compile.size c);
      let b = Compile.advance_val c pc k 1 in
      Alcotest.(check bool) "distinct value, distinct edge" true
        (b >= 0 && b <> a);
      Alcotest.(check int) "memoized edge is stable" a
        (Compile.advance_val c pc k 0)
  | _ -> Alcotest.fail "entry root should be a read");
  (* a full code store degrades new value edges to the interpreter *)
  let c' = Compile.make ~max_instrs:base (mk_cfg ()) in
  let pc' = Compile.entry_pc c' 0 in
  Alcotest.(check bool) "roots still fit exactly" true (pc' >= 0);
  match Compile.rep c' pc' with
  | Prog.Bind (Prog.Read _, k) ->
      Alcotest.(check int) "value edge past the budget degrades" (-1)
        (Compile.advance_val c' pc' k 7)
  | _ -> Alcotest.fail "entry root should be a read"

(* Impure configurations must degrade [`Compiled] to the journal
   interpreter wholesale rather than compile a lying cache: same
   verdict, same node count, same fingerprint multiset. *)
let test_impure_degrades () =
  let mk_cfg engine =
    {
      (Locks.Harness.config_of_lock ~model:Config.Cc_wb
         (Locks.Ticket.make ~n:2) ~n:2)
      with
      Config.engine;
    }
  in
  let run engine =
    let tbl = Hashtbl.create 256 in
    let r =
      E.explore ~max_nodes:500_000
        ~on_fingerprint:(fun fp ->
          Hashtbl.replace tbl fp
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
        (mk_cfg engine)
    in
    (r, tbl)
  in
  Alcotest.(check bool) "ticket lock is declared impure" false
    (mk_cfg `Journal).Config.pure_programs;
  let rj, tj = run `Journal and rc, tc = run `Compiled in
  Alcotest.(check bool) "verified agrees" rj.E.verified rc.E.verified;
  Alcotest.(check int) "nodes agree" rj.E.nodes rc.E.nodes;
  Alcotest.(check int) "distinct fingerprints agree" (Hashtbl.length tj)
    (Hashtbl.length tc);
  Hashtbl.iter
    (fun fp n ->
      Alcotest.(check int)
        (Printf.sprintf "multiplicity of %x" fp)
        n
        (Option.value ~default:0 (Hashtbl.find_opt tc fp)))
    tj

(* --- workloads for the walks ------------------------------------------- *)

let rtas () =
  Locks.Harness.config_of_lock ~model:Config.Cc_wb
    ~crash_semantics:Config.Atomic_prefix
    (Locks.Recoverable_tas.make ~n:2) ~n:2

let suite =
  [
    QCheck_alcotest.to_alcotest
      (prop_lockstep "lockstep: compiled = interpreter on random programs"
         (fun progs -> Suite_mcheck_equiv.config_of_rops progs)
         Suite_mcheck_equiv.arb_prog2);
    QCheck_alcotest.to_alcotest
      (prop_lockstep
         "lockstep: compiled = interpreter on random crash/recovery programs"
         ~max_crashes:2
         (fun c -> Suite_mcheck_equiv.config_of_crashy c)
         Suite_mcheck_equiv.arb_crashy);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:60 ~name:"step;undo law on compiled machines"
         QCheck.small_nat
         (fun seed ->
           compiled_walk_restores ~max_crashes:1 (rtas ()) seed));
    Alcotest.test_case "instruction-budget overflow is a typed error" `Quick
      test_program_too_large;
    Alcotest.test_case "unserializable register frame is a typed error"
      `Quick test_opaque_continuation;
    Alcotest.test_case "value-edge fanout degrades, never errors" `Quick
      test_fanout_degrades;
    Alcotest.test_case "impure configuration degrades to the interpreter"
      `Quick test_impure_degrades;
  ]
