(* Generic schedulers over the machine.

   The lower-bound adversary (lib/adversary) drives the machine directly;
   the schedulers here serve the rest of the system: correctness testing
   (random interleavings), throughput measurement (round robin), and the
   paper's canonical schedule that delays commits as long as possible. *)

open Ids

type outcome = {
  steps_taken : int;
  all_finished : bool;
  livelocked : Pid.t option;  (* a process whose spin fuel ran out *)
}

let runnable m p =
  match Machine.pending m p with Machine.P_done -> false | _ -> true

let live_pids m =
  let n = Machine.n_procs m in
  let rec go p acc = if p < 0 then acc else go (p - 1) (if runnable m p then p :: acc else acc) in
  go (n - 1) []

(* Round-robin over live processes; each quantum executes up to
   [quantum] events of one process. *)
let round_robin ?(quantum = 1) ?(max_steps = 10_000_000) m =
  let n = Machine.n_procs m in
  let steps = ref 0 in
  let live = ref n in
  (try
     while !live > 0 && !steps < max_steps do
       live := 0;
       for p = 0 to n - 1 do
         if runnable m p then begin
           incr live;
           let q = ref 0 in
           while !q < quantum && runnable m p && !steps < max_steps do
             ignore (Machine.step m p);
             incr steps;
             incr q
           done
         end
       done
     done;
     ()
   with Prog.Spin_exhausted _ -> ());
  { steps_taken = !steps; all_finished = live_pids m = []; livelocked = None }

(* Uniformly random scheduling; with probability [commit_bias] prefer to
   commit a buffered write of the chosen process even outside fences,
   exercising TSO's delayed-visibility behaviours. Under PSO ordering the
   committed write is chosen uniformly from the buffer (out-of-order
   commits), not just the oldest.

   With [crash_prob > 0] and a [max_crashes] budget, the chosen process is
   instead crashed with that probability (when it is crashable and budget
   remains); under [Atomic_prefix] semantics the committed buffer prefix
   length is drawn uniformly. Crashed processes stay in the live set —
   stepping one executes its recovery transition. [abort_prob] works the
   same way against the [max_aborts] budget: when the chosen process sits
   at a declared wait point ([Machine.abort_deliverable]), its
   acquisition attempt is aborted instead of stepped. *)
let random ?(seed = 42) ?(commit_bias = 0.3) ?(crash_prob = 0.0)
    ?(max_crashes = 0) ?(abort_prob = 0.0) ?(max_aborts = 0)
    ?(max_steps = 10_000_000) m =
  let rng = Rng.create seed in
  let steps = ref 0 in
  let livelocked = ref None in
  let cfg = Machine.config m in
  let pso = cfg.Config.ordering = Config.Pso in
  let crashable p =
    match (Machine.proc m p).Machine.sec with
    | Machine.Ncs | Machine.Entry | Machine.Exiting | Machine.Aborting ->
        true
    | Machine.Crashed | Machine.Finished -> false
  in
  (try
     let rec loop () =
       if !steps >= max_steps then ()
       else
         match live_pids m with
         | [] -> ()
         | pids ->
             let p = Rng.pick rng pids in
             let buf = (Machine.proc m p).Machine.buf in
             (if
                crash_prob > 0.0
                && Machine.crashes_total m < max_crashes
                && crashable p
                && Rng.float rng < crash_prob
              then
                let commit_prefix =
                  match cfg.Config.crash_semantics with
                  | Config.Atomic_prefix ->
                      Some (Rng.int rng (Wbuf.size buf + 1))
                  | Config.Drop_buffer | Config.Flush_buffer -> None
                in
                ignore (Machine.crash ?commit_prefix m p)
              else if
                abort_prob > 0.0
                && Machine.aborts_total m < max_aborts
                && Machine.abort_deliverable m p
                && Rng.float rng < abort_prob
              then ignore (Machine.abort m p)
              else if
                (not (Wbuf.is_empty buf)) && Rng.float rng < commit_bias
              then
                if pso then
                  let v = Rng.pick rng (Wbuf.vars buf) in
                  ignore (Machine.commit_var m p v)
                else ignore (Machine.commit m p)
              else ignore (Machine.step m p));
             incr steps;
             loop ()
     in
     loop ()
   with Prog.Spin_exhausted _ -> livelocked := Some (-1));
  {
    steps_taken = !steps;
    all_finished = live_pids m = [];
    livelocked = !livelocked;
  }

(* The paper's canonical scheduling regime: whenever a process is picked
   and it is *not* executing a fence, it executes its next program event;
   commits happen only during fences. [Machine.step] already implements
   this policy, so the canonical scheduler is a random or round-robin
   driver that never calls [Machine.commit] explicitly. *)
let canonical_random ?(seed = 42) ?(max_steps = 10_000_000) m =
  random ~seed ~commit_bias:0.0 ~max_steps m

(* Run a single process solo until it finishes all its passages. *)
let solo ?(max_steps = 1_000_000) m p =
  let steps = ref 0 in
  while runnable m p && !steps < max_steps do
    ignore (Machine.step m p);
    incr steps
  done;
  { steps_taken = !steps; all_finished = not (runnable m p); livelocked = None }
