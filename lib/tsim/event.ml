(* Execution events.

   An execution is a sequence of these events (paper, Section 2). Each event
   records, besides its kind, the machine-model verdicts made at execution
   time: whether it accessed a variable remotely, whether it incurred an RMR
   under the configured memory model, and whether it was critical in the
   execution so far (Definition 2). Criticality is relative to the execution
   prefix, so analyses that erase processes recompute it from scratch
   (lib/analysis); the online flag is the fast path and is cross-checked in
   tests. *)

open Ids

type read_src = From_buffer | From_cache | From_memory

type kind =
  | Enter
  | Cs
  | Exit
  | Read of { var : Var.t; value : Value.t; src : read_src }
  | Issue_write of { var : Var.t; value : Value.t }
  | Commit_write of { var : Var.t; value : Value.t }
  | Begin_fence of { implicit : bool }
      (* [implicit] fences model the store-buffer drain of an atomic
         read-modify-write instruction (x86 LOCK prefix). *)
  | End_fence of { implicit : bool }
  | Cas_ev of { var : Var.t; expected : Value.t; desired : Value.t;
                observed : Value.t; success : bool }
  | Faa_ev of { var : Var.t; delta : Value.t; observed : Value.t }
  | Swap_ev of { var : Var.t; stored : Value.t; observed : Value.t }
  | Crash of { committed : int; dropped : int }
      (* crash fault: [committed] buffered writes reached memory (their
         Commit_write events precede this one), [dropped] were lost *)
  | Recover  (* the crashed process restarts at its recovery label *)
  | Abort
      (* abort fault: the adversary timed the process out at a declared
         wait point; its write buffer survives and it runs its abort
         cleanup section next *)
  | Abort_done  (* abort cleanup completed; the process returns to NCS *)

type t = {
  seq : int;  (* position in the trace *)
  pid : Pid.t;
  kind : kind;
  remote : bool;  (* accessed a variable remote to [pid] *)
  rmr : bool;  (* incurred an RMR under the configured memory model *)
  critical : bool;  (* critical in the execution prefix (Definition 2) *)
}

let dummy =
  { seq = -1; pid = -1; kind = Enter; remote = false; rmr = false;
    critical = false }

(* The variable a given event *accesses*, in the paper's sense: commits and
   non-buffered reads access their variable; issued writes and buffer-
   forwarded reads do not. RMW events access their variable. *)
let accessed_var e =
  match e.kind with
  | Read { var; src = From_cache | From_memory; _ } -> Some var
  | Read { src = From_buffer; _ } -> None
  | Commit_write { var; _ } -> Some var
  | Cas_ev { var; _ } | Faa_ev { var; _ } | Swap_ev { var; _ } -> Some var
  | Issue_write _ | Enter | Cs | Exit | Begin_fence _ | End_fence _
  | Crash _ | Recover | Abort | Abort_done ->
      None

(* The variable an event *mentions* (including issued writes), for
   congruence checks during replay. *)
let mentioned_var e =
  match e.kind with
  | Read { var; _ } | Issue_write { var; _ } | Commit_write { var; _ }
  | Cas_ev { var; _ } | Faa_ev { var; _ } | Swap_ev { var; _ } ->
      Some var
  | Enter | Cs | Exit | Begin_fence _ | End_fence _ | Crash _ | Recover
  | Abort | Abort_done ->
      None

let is_transition e =
  match e.kind with
  | Enter | Cs | Exit | Crash _ | Recover | Abort | Abort_done -> true
  | _ -> false

let is_fence_event e =
  match e.kind with Begin_fence _ | End_fence _ -> true | _ -> false

let is_commit e = match e.kind with Commit_write _ -> true | _ -> false

let is_rmw e =
  match e.kind with Cas_ev _ | Faa_ev _ | Swap_ev _ -> true | _ -> false

(* Special events (Definition 3): critical, transition or fence events. *)
let is_special e = e.critical || is_transition e || is_fence_event e

(* Writes-to-shared-memory view: which (var, value, writer) does the event
   publish? RMWs publish directly (they bypass the buffer). *)
let published e =
  match e.kind with
  | Commit_write { var; value } -> Some (var, value)
  | Cas_ev { var; desired; success = true; _ } -> Some (var, desired)
  | Cas_ev { success = false; _ } -> None
  | Faa_ev { var; delta; observed } -> Some (var, observed + delta)
  | Swap_ev { var; stored; _ } -> Some (var, stored)
  | Read _ | Issue_write _ | Enter | Cs | Exit | Begin_fence _ | End_fence _
  | Crash _ | Recover | Abort | Abort_done ->
      None

(* Does the event read the shared (non-buffer) copy of a variable, and if so
   which one? Used by awareness-set reconstruction. *)
let shared_read e =
  match e.kind with
  | Read { var; src = From_cache | From_memory; _ } -> Some var
  | Cas_ev { var; _ } | Faa_ev { var; _ } | Swap_ev { var; _ } -> Some var
  | Read { src = From_buffer; _ } | Issue_write _ | Commit_write _ | Enter
  | Cs | Exit | Begin_fence _ | End_fence _ | Crash _ | Recover | Abort
  | Abort_done ->
      None

let kind_tag = function
  | Enter -> "enter"
  | Cs -> "cs"
  | Exit -> "exit"
  | Read _ -> "read"
  | Issue_write _ -> "issue"
  | Commit_write _ -> "commit"
  | Begin_fence _ -> "begin-fence"
  | End_fence _ -> "end-fence"
  | Cas_ev _ -> "cas"
  | Faa_ev _ -> "faa"
  | Swap_ev _ -> "swap"
  | Crash _ -> "crash"
  | Recover -> "recover"
  | Abort -> "abort"
  | Abort_done -> "abort-done"

(* Congruence (paper, Section 2): same process and either the same
   transition/fence event or the same operation on the same variable.
   Values are allowed to differ. *)
let congruent a b =
  Pid.equal a.pid b.pid
  && String.equal (kind_tag a.kind) (kind_tag b.kind)
  && (match (mentioned_var a, mentioned_var b) with
     | Some u, Some v -> Var.equal u v
     | None, None -> true
     | _ -> false)

let pp_kind fmt = function
  | Enter -> Format.pp_print_string fmt "Enter"
  | Cs -> Format.pp_print_string fmt "CS"
  | Exit -> Format.pp_print_string fmt "Exit"
  | Read { var; value; src } ->
      Format.fprintf fmt "read v%d=%d%s" var value
        (match src with
        | From_buffer -> "(buf)"
        | From_cache -> "(cache)"
        | From_memory -> "")
  | Issue_write { var; value } -> Format.fprintf fmt "issue v%d:=%d" var value
  | Commit_write { var; value } -> Format.fprintf fmt "commit v%d:=%d" var value
  | Begin_fence { implicit } ->
      Format.fprintf fmt "begin-fence%s" (if implicit then "(rmw)" else "")
  | End_fence { implicit } ->
      Format.fprintf fmt "end-fence%s" (if implicit then "(rmw)" else "")
  | Cas_ev { var; expected; desired; observed; success } ->
      Format.fprintf fmt "cas v%d %d->%d saw %d %s" var expected desired
        observed
        (if success then "ok" else "fail")
  | Faa_ev { var; delta; observed } ->
      Format.fprintf fmt "faa v%d +%d saw %d" var delta observed
  | Swap_ev { var; stored; observed } ->
      Format.fprintf fmt "swap v%d:=%d saw %d" var stored observed
  | Crash { committed; dropped } ->
      Format.fprintf fmt "crash committed=%d dropped=%d" committed dropped
  | Recover -> Format.pp_print_string fmt "recover"
  | Abort -> Format.pp_print_string fmt "abort"
  | Abort_done -> Format.pp_print_string fmt "abort-done"

let pp fmt e =
  Format.fprintf fmt "#%d %a %a%s%s%s" e.seq Pid.pp e.pid pp_kind e.kind
    (if e.remote then " R" else "")
    (if e.rmr then " $" else "")
    (if e.critical then " !" else "")
