(* The TSO machine: processes with write buffers, an adversary-driven
   scheduler interface, transition events, and online RMR / fence /
   critical-event accounting.

   The scheduler (an adversary, a random tester, or the lower-bound
   construction) drives the machine one event at a time:

   - [step m p]   lets process [p] execute its next enabled event;
   - [commit m p] commits the oldest write in [p]'s buffer (always allowed
     when the buffer is non-empty — the adversary may commit writes even
     when [p] is not executing a fence);
   - [pending m p] peeks at what [step] would do, without side effects.

   While a process is executing a fence (between BeginFence and EndFence),
   [step] only commits buffered writes, then emits EndFence — exactly the
   [mode(p,E) = write] regime of the paper. *)

open Ids

exception Exclusion_violation of { holder : Pid.t; intruder : Pid.t }
exception Process_finished of Pid.t

type section = Ncs | Entry | Exiting | Finished | Crashed

let section_name = function
  | Ncs -> "ncs"
  | Entry -> "entry"
  | Exiting -> "exit"
  | Finished -> "finished"
  | Crashed -> "crashed"

type passage_stats = {
  p_rmrs : int;
  p_fences : int;
  p_criticals : int;
  p_interval : int;  (* interval contention of the passage *)
  p_point : int;  (* point contention of the passage *)
}

let dummy_passage =
  { p_rmrs = 0; p_fences = 0; p_criticals = 0; p_interval = 0; p_point = 0 }

type proc = {
  pid : Pid.t;
  mutable sec : section;
  mutable cont : unit Prog.t;
  buf : Wbuf.t;
  mutable in_fence : bool;  (* issued BeginFence, not yet EndFence *)
  mutable fence_implicit : bool;  (* current fence is an RMW drain *)
  mutable rmw_fenced : bool;  (* the pending RMW's drain already completed *)
  mutable aw : Pidset.t;  (* awareness set (Definition 1) *)
  remote_reads : (Var.t, unit) Hashtbl.t;  (* vars remotely read so far *)
  mutable passages : int;  (* completed passages *)
  mutable rmrs : int;
  mutable fences : int;  (* completed fences (EndFence events) *)
  mutable criticals : int;
  mutable cur_rmrs : int;  (* same counters, current passage only *)
  mutable cur_fences : int;
  mutable cur_criticals : int;
  mutable interval_set : Pidset.t;
      (* processes active at some point during the current passage *)
  mutable point_max : int;
      (* max number of simultaneously active processes during the passage *)
  passage_log : passage_stats Vec.t;  (* one entry per completed passage *)
  mutable crashes : int;  (* crash faults injected into this process *)
  mutable needs_recovery : bool;
      (* the next passage must run the recovery section first *)
}

(* --- mutation journal: undo records ---------------------------------- *)

(* Snapshot of one process's scalar fields, taken at the head of every
   public mutator ([step] / [commit] / [commit_var] / [crash]). A single
   event only ever touches a handful of these, but snapshotting all ~17
   words in one record is cheaper than one tagged record per field and
   makes the undo path trivially exact. Aggregate state (write buffer,
   remote-read table, passage log) is journaled per-operation instead. *)
type psnap = {
  s_sec : section;
  s_cont : unit Prog.t;
  s_in_fence : bool;
  s_fence_implicit : bool;
  s_rmw_fenced : bool;
  s_aw : Pidset.t;
  s_passages : int;
  s_rmrs : int;
  s_fences : int;
  s_criticals : int;
  s_cur_rmrs : int;
  s_cur_fences : int;
  s_cur_criticals : int;
  s_interval_set : Pidset.t;
  s_point_max : int;
  s_crashes : int;
  s_needs_recovery : bool;
}

(* One undo record per individual state write. [Machine.undo_to] pops
   these in reverse order; each record restores the exact old value, so a
   rollback is byte-exact regardless of what the mutator did (including
   partial mutations before an exception). *)
type undo =
  | U_head of {
      hpid : Pid.t;
      snap : psnap;
      h_fp : int;  (* incremental fingerprint before the mutator *)
      h_fp_proc : int;  (* the stepping process's fingerprint term *)
      h_cs : int;
      h_active : int;
      h_crash : int;
    }  (* pushed at the head of each public mutator *)
  | U_mem of Var.t * Value.t  (* old shared-memory value *)
  | U_writer of Var.t * Pid.t option * Pidset.t
  | U_accessed of Var.t * Pidset.t
  | U_cache_packed of Var.t * int  (* cache column, <= 31 procs *)
  | U_cache_col of Var.t * string  (* cache column, wide machines *)
  | U_remote_read of Pid.t * Var.t  (* first remote read: undo removes *)
  | U_buf_set of Pid.t * int * Wbuf.entry  (* issue replaced a pending write *)
  | U_buf_drop_last of Pid.t  (* issue appended a pending write *)
  | U_buf_insert of Pid.t * int * Wbuf.entry  (* commit popped this entry *)
  | U_buf_restore of Pid.t * Wbuf.entry array  (* crash cleared the buffer *)
  | U_contention of Pid.t * Pidset.t * int
      (* do_enter touched another process's interval_set / point_max *)
  | U_trace_pop  (* emit pushed a trace event (record_trace only) *)
  | U_passage_pop of Pid.t  (* do_exit pushed a passage-log entry *)

type t = {
  cfg : Config.t;
  mem : Value.t array;
  writer : Pid.t option array;  (* writer(v, E) *)
  writer_aw : Pidset.t array;  (* awareness of writer(v) at issue time *)
  accessed : Pidset.t array;  (* Accessed(v, E) *)
  procs : proc array;
  cache : Cache.t;
  trace : Event.t Vec.t;
  mutable cs_entries : int;  (* total CS events executed *)
  mutable active_count : int;  (* processes currently outside their NCS *)
  mutable crash_count : int;  (* total crash faults injected *)
  (* journal / incremental-fingerprint state (see module Journal) *)
  jlog : undo Vec.t;
  mutable journaling : bool;
  fp_proc : int array;  (* per-process fingerprint terms (XOR fold) *)
  mutable fp : int;  (* incrementally-maintained state fingerprint *)
  mutable j_peak : int;  (* high-water journal depth *)
  mutable j_records : int;  (* undo records pushed since enable *)
}

type pending =
  | P_enter
  | P_cs
  | P_exit
  | P_done
  | P_read of Var.t
  | P_issue_write of Var.t * Value.t
  | P_begin_fence
  | P_end_fence
  | P_commit of Var.t
  | P_rmw_fence  (* implicit BeginFence that precedes a buffered RMW *)
  | P_cas of Var.t * Value.t * Value.t
  | P_faa of Var.t * Value.t
  | P_swap of Var.t * Value.t
  | P_recover  (* crashed process: the only enabled event is Recover *)

let pending_to_string = function
  | P_enter -> "Enter"
  | P_cs -> "CS"
  | P_exit -> "Exit"
  | P_done -> "done"
  | P_read v -> Printf.sprintf "read v%d" v
  | P_issue_write (v, x) -> Printf.sprintf "issue v%d:=%d" v x
  | P_begin_fence -> "begin-fence"
  | P_end_fence -> "end-fence"
  | P_commit v -> Printf.sprintf "commit v%d" v
  | P_rmw_fence -> "rmw-fence"
  | P_cas (v, _, _) -> Printf.sprintf "cas v%d" v
  | P_faa (v, _) -> Printf.sprintf "faa v%d" v
  | P_swap (v, _) -> Printf.sprintf "swap v%d" v
  | P_recover -> "recover"

let create (cfg : Config.t) =
  let nvars = Layout.size cfg.layout in
  let mem = Array.init nvars (fun v -> Layout.init cfg.layout v) in
  let procs =
    Array.init cfg.n (fun p ->
        {
          pid = p;
          sec = Ncs;
          cont = Prog.unit;
          buf = Wbuf.create ();
          in_fence = false;
          fence_implicit = false;
          rmw_fenced = false;
          aw = Pidset.singleton p;
          remote_reads = Hashtbl.create 8;
          passages = 0;
          rmrs = 0;
          fences = 0;
          criticals = 0;
          cur_rmrs = 0;
          cur_fences = 0;
          cur_criticals = 0;
          interval_set = Pidset.empty;
          point_max = 0;
          passage_log = Vec.create dummy_passage;
          crashes = 0;
          needs_recovery = false;
        })
  in
  {
    cfg;
    mem;
    writer = Array.make (max nvars 1) None;
    writer_aw = Array.make (max nvars 1) Pidset.empty;
    accessed = Array.make (max nvars 1) Pidset.empty;
    procs;
    cache = Cache.create ~n:cfg.n ~nvars;
    trace =
      Vec.create
        ~capacity:(if cfg.record_trace then 1024 else 1)
        Event.dummy;
    cs_entries = 0;
    active_count = 0;
    crash_count = 0;
    jlog = Vec.create ~capacity:1 U_trace_pop;
    journaling = false;
    fp_proc = Array.make cfg.n 0;
    fp = 0;
    j_peak = 0;
    j_records = 0;
  }

(* Deep copy for state-space exploration: all mutable state is duplicated;
   program continuations are immutable values and are shared. When the
   configuration disables trace recording, the trace and passage logs are
   provably empty and never mutated (emit and do_exit skip them), so the
   clone shares them instead of copying — per-clone cost drops from
   O(depth + state) to O(state). *)
let clone m =
  let record = m.cfg.Config.record_trace in
  {
    cfg = m.cfg;
    mem = Array.copy m.mem;
    writer = Array.copy m.writer;
    writer_aw = Array.copy m.writer_aw;
    accessed = Array.copy m.accessed;
    procs =
      Array.map
        (fun pr ->
          {
            pr with
            buf = Wbuf.copy pr.buf;
            remote_reads = Hashtbl.copy pr.remote_reads;
            passage_log =
              (if record then Vec.copy pr.passage_log else pr.passage_log);
          })
        m.procs;
    cache = Cache.copy m.cache;
    trace = (if record then Vec.copy m.trace else m.trace);
    cs_entries = m.cs_entries;
    active_count = m.active_count;
    crash_count = m.crash_count;
    (* clones never inherit an active journal: parallel frontier handoff
       and counterexample materialization want plain machines; a worker
       re-enables journaling on its own copy *)
    jlog = Vec.create ~capacity:1 U_trace_pop;
    journaling = false;
    fp_proc = Array.copy m.fp_proc;
    fp = m.fp;
    j_peak = 0;
    j_records = 0;
  }

let config m = m.cfg
let trace m = m.trace
let cache m = m.cache
let proc m p = m.procs.(p)
let n_procs m = m.cfg.n
let mem_value m v = m.mem.(v)
let writer_of m v = m.writer.(v)
let accessed_set m v = m.accessed.(v)
let awareness m p = m.procs.(p).aw
let section m p = m.procs.(p).sec
let is_remote m p v = Layout.is_remote m.cfg.layout p v

let passages m p = m.procs.(p).passages
let fences_completed m p = m.procs.(p).fences
let rmrs m p = m.procs.(p).rmrs
let criticals m p = m.procs.(p).criticals
let cur_fences m p = m.procs.(p).cur_fences
let cur_criticals m p = m.procs.(p).cur_criticals
let cur_rmrs m p = m.procs.(p).cur_rmrs
let passage_log m p = m.procs.(p).passage_log
let cs_entries m = m.cs_entries
let crashes m p = m.procs.(p).crashes
let crashes_total m = m.crash_count
let needs_recovery m p = m.procs.(p).needs_recovery

(* Contention accounting (paper, Introduction): interval contention of the
   current passage = processes active at some point during it; point
   contention = maximum simultaneously active. *)
let interval_contention m p = Pidset.cardinal m.procs.(p).interval_set
let point_contention m p = m.procs.(p).point_max
let active_now m = m.active_count

(* [mode p] per the paper: Write while executing a fence, Read otherwise. *)
let mode m p = if m.procs.(p).in_fence then `Write else `Read

let pending m p : pending =
  let pr = m.procs.(p) in
  match pr.sec with
  | Finished -> P_done
  | Crashed -> P_recover
  | _ when pr.in_fence -> (
      match Wbuf.peek pr.buf with
      | Some e -> P_commit e.var
      | None -> P_end_fence)
  | Ncs -> P_enter
  | Entry | Exiting -> (
      match pr.cont with
      | Prog.Return () -> if pr.sec = Entry then P_cs else P_exit
      | Prog.Bind (op, _) -> (
          let rmw_needs_fence = m.cfg.rmw_drains && not pr.rmw_fenced in
          match op with
          | Prog.Read v -> P_read v
          | Prog.Write (v, x) -> P_issue_write (v, x)
          | Prog.Fence -> P_begin_fence
          | Prog.Cas (v, e, d) ->
              if rmw_needs_fence then P_rmw_fence else P_cas (v, e, d)
          | Prog.Faa (v, d) ->
              if rmw_needs_fence then P_rmw_fence else P_faa (v, d)
          | Prog.Swap (v, x) ->
              if rmw_needs_fence then P_rmw_fence else P_swap (v, x)))

(* --- fingerprints ----------------------------------------------------- *)

(* Packed 63-bit state fingerprint, shared by both exploration engines.

   Structure: an XOR fold of independent terms — one Zobrist-style term
   per shared variable and one term per process —

     fp = basis  XOR  (XOR_v zmix v mem.(v))  XOR  (XOR_p proc_term p)

   XOR makes the fingerprint incrementally maintainable: when an event
   overwrites mem.(v) the journal applies
   [fp <- fp lxor zmix v old lxor zmix v new], and since each public
   mutator only ever changes the stepping process's own term (pending,
   section, continuation, buffer, ... are all process-local), one
   [proc_term] recomputation per event keeps fp exact. Every term is
   passed through a splitmix-style finalizer ([zfin]) before entering
   the fold so that the XOR of many terms stays well distributed.

   The state abstraction matches the previous sequential FNV-1a
   fingerprint: memory values, per-process pending event, fence flag,
   section, passage/crash counts, recovery flag, continuation structure
   and buffered writes. Cost counters, awareness sets and the cache are
   deliberately excluded — they are accounting, not behavior. *)

let fnv_prime = 0x100000001b3
let fnv_basis = 0x0bf29ce484222325 (* 64-bit FNV basis truncated to 63-bit int *)

let[@inline] mix h x = (h lxor x) * fnv_prime

(* splitmix64-style finalizer, truncated to OCaml's 63-bit int range. *)
let[@inline] zfin x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x369DEA0F31A53F85 in
  (x lxor (x lsr 31)) land max_int

(* Zobrist term for "variable [v] holds [x]". *)
let[@inline] zmix v x = zfin (mix (mix fnv_basis (v + 1)) x)

(* Continuations are hashed structurally. [Hashtbl.hash] stops after 10
   meaningful nodes, which conflates deep spin states; raise both the
   meaningful and total traversal bounds so distinct continuation shapes
   (different spin fuels, loop indices, captured reads) hash apart. *)
let hash_cont c = Hashtbl.hash_param 128 256 c

let pending_code (p : pending) h =
  match p with
  | P_enter -> mix h 1
  | P_cs -> mix h 2
  | P_exit -> mix h 3
  | P_done -> mix h 4
  | P_read v -> mix (mix h 5) v
  | P_issue_write (v, x) -> mix (mix (mix h 6) v) x
  | P_begin_fence -> mix h 7
  | P_end_fence -> mix h 8
  | P_commit v -> mix (mix h 9) v
  | P_rmw_fence -> mix h 10
  | P_cas (v, e, d) -> mix (mix (mix (mix h 11) v) e) d
  | P_faa (v, d) -> mix (mix (mix h 12) v) d
  | P_swap (v, x) -> mix (mix (mix h 13) v) x
  | P_recover -> mix h 14

let sec_code = function
  | Ncs -> 0
  | Entry -> 1
  | Exiting -> 2
  | Finished -> 3
  | Crashed -> 4

(* Fingerprint term of one process; depends only on that process's own
   state (pending inspects pr.sec / in_fence / buffer head / cont, all
   local), which is what makes the per-event refresh sound. *)
let proc_term m p =
  let pr = m.procs.(p) in
  let h = mix fnv_basis (p + 0x7f) in
  let h = pending_code (pending m p) h in
  let h = mix h (if pr.in_fence then 1 else 0) in
  let h = mix h (sec_code pr.sec) in
  let h = mix h pr.passages in
  let h = mix h pr.crashes in
  let h = mix h (if pr.needs_recovery then 1 else 0) in
  let h = mix h (hash_cont pr.cont) in
  let h = ref h in
  Wbuf.iter (fun e -> h := mix (mix !h e.Wbuf.var) e.Wbuf.value) pr.buf;
  zfin !h

(* Full recompute: the reference implementation for both engines and the
   paranoid cross-check for the incremental fold. *)
let fingerprint m =
  let h = ref (fnv_basis land max_int) in
  for v = 0 to Array.length m.mem - 1 do
    h := !h lxor zmix v m.mem.(v)
  done;
  for p = 0 to Array.length m.procs - 1 do
    h := !h lxor proc_term m p
  done;
  !h

let fingerprint_fast m = if m.journaling then m.fp else fingerprint m

(* --- journal bookkeeping --------------------------------------------- *)

let[@inline] jpush m u =
  Vec.push m.jlog u;
  m.j_records <- m.j_records + 1;
  let d = Vec.length m.jlog in
  if d > m.j_peak then m.j_peak <- d

let psnap_of (pr : proc) =
  {
    s_sec = pr.sec;
    s_cont = pr.cont;
    s_in_fence = pr.in_fence;
    s_fence_implicit = pr.fence_implicit;
    s_rmw_fenced = pr.rmw_fenced;
    s_aw = pr.aw;
    s_passages = pr.passages;
    s_rmrs = pr.rmrs;
    s_fences = pr.fences;
    s_criticals = pr.criticals;
    s_cur_rmrs = pr.cur_rmrs;
    s_cur_fences = pr.cur_fences;
    s_cur_criticals = pr.cur_criticals;
    s_interval_set = pr.interval_set;
    s_point_max = pr.point_max;
    s_crashes = pr.crashes;
    s_needs_recovery = pr.needs_recovery;
  }

(* Head of every public mutator: snapshot the stepping process and the
   machine-global scalars, including the fingerprint state, so undo can
   restore them wholesale. *)
let[@inline] j_head m (pr : proc) =
  if m.journaling then
    jpush m
      (U_head
         {
           hpid = pr.pid;
           snap = psnap_of pr;
           h_fp = m.fp;
           h_fp_proc = m.fp_proc.(pr.pid);
           h_cs = m.cs_entries;
           h_active = m.active_count;
           h_crash = m.crash_count;
         })

(* Tail of every public mutator: fold the stepping process's refreshed
   fingerprint term into fp (memory deltas were applied inline). *)
let[@inline] j_refresh m (pr : proc) =
  if m.journaling then begin
    let t = proc_term m pr.pid in
    m.fp <- m.fp lxor m.fp_proc.(pr.pid) lxor t;
    m.fp_proc.(pr.pid) <- t
  end

let[@inline] set_mem m v x =
  if m.journaling then begin
    let old = m.mem.(v) in
    jpush m (U_mem (v, old));
    m.fp <- m.fp lxor zmix v old lxor zmix v x
  end;
  m.mem.(v) <- x

let[@inline] j_writer m v =
  if m.journaling then jpush m (U_writer (v, m.writer.(v), m.writer_aw.(v)))

(* The CC protocols mutate one variable's cache column (invalidate /
   downgrade across every process); DSM never touches the cache. *)
let j_cache m v =
  if m.journaling && m.cfg.Config.model <> Config.Dsm then
    if m.cfg.Config.n <= Cache.pack_max_procs then
      jpush m (U_cache_packed (v, Cache.col_packed m.cache v))
    else jpush m (U_cache_col (v, Cache.col m.cache v))

let apply_undo m = function
  | U_head { hpid; snap; h_fp; h_fp_proc; h_cs; h_active; h_crash } ->
      let pr = m.procs.(hpid) in
      pr.sec <- snap.s_sec;
      pr.cont <- snap.s_cont;
      pr.in_fence <- snap.s_in_fence;
      pr.fence_implicit <- snap.s_fence_implicit;
      pr.rmw_fenced <- snap.s_rmw_fenced;
      pr.aw <- snap.s_aw;
      pr.passages <- snap.s_passages;
      pr.rmrs <- snap.s_rmrs;
      pr.fences <- snap.s_fences;
      pr.criticals <- snap.s_criticals;
      pr.cur_rmrs <- snap.s_cur_rmrs;
      pr.cur_fences <- snap.s_cur_fences;
      pr.cur_criticals <- snap.s_cur_criticals;
      pr.interval_set <- snap.s_interval_set;
      pr.point_max <- snap.s_point_max;
      pr.crashes <- snap.s_crashes;
      pr.needs_recovery <- snap.s_needs_recovery;
      m.cs_entries <- h_cs;
      m.active_count <- h_active;
      m.crash_count <- h_crash;
      m.fp <- h_fp;
      m.fp_proc.(hpid) <- h_fp_proc
  | U_mem (v, x) -> m.mem.(v) <- x
  | U_writer (v, w, aw) ->
      m.writer.(v) <- w;
      m.writer_aw.(v) <- aw
  | U_accessed (v, s) -> m.accessed.(v) <- s
  | U_cache_packed (v, w) -> Cache.restore_col_packed m.cache v w
  | U_cache_col (v, s) -> Cache.restore_col m.cache v s
  | U_remote_read (p, v) -> Hashtbl.remove m.procs.(p).remote_reads v
  | U_buf_set (p, i, e) -> Wbuf.set m.procs.(p).buf i e
  | U_buf_drop_last p -> Wbuf.drop_last m.procs.(p).buf
  | U_buf_insert (p, i, e) -> Wbuf.insert m.procs.(p).buf i e
  | U_buf_restore (p, es) ->
      let buf = m.procs.(p).buf in
      Array.iteri (fun i e -> Wbuf.insert buf i e) es
  | U_contention (p, iset, pmax) ->
      let pr = m.procs.(p) in
      pr.interval_set <- iset;
      pr.point_max <- pmax
  | U_trace_pop -> ignore (Vec.pop m.trace)
  | U_passage_pop p -> ignore (Vec.pop m.procs.(p).passage_log)

let undo_to m mark =
  if not m.journaling then
    invalid_arg "Machine.undo_to: journaling is not enabled";
  let len = Vec.length m.jlog in
  if mark < 0 || mark > len then invalid_arg "Machine.undo_to: bad mark";
  for i = len - 1 downto mark do
    apply_undo m (Vec.get m.jlog i)
  done;
  Vec.truncate m.jlog mark

(* --- event emission ------------------------------------------------- *)

let emit m pr kind ~remote ~rmr ~critical =
  let e =
    { Event.seq = Vec.length m.trace; pid = pr.pid; kind; remote; rmr;
      critical }
  in
  if m.cfg.Config.record_trace then begin
    Vec.push m.trace e;
    if m.journaling then jpush m U_trace_pop
  end;
  if rmr then begin
    pr.rmrs <- pr.rmrs + 1;
    pr.cur_rmrs <- pr.cur_rmrs + 1
  end;
  if critical then begin
    pr.criticals <- pr.criticals + 1;
    pr.cur_criticals <- pr.cur_criticals + 1
  end;
  e

(* Awareness propagation on a shared (non-buffer) read of [v]: the reader
   becomes aware of the last writer and of everything that writer was aware
   of when it issued the write. *)
let absorb_awareness m pr v =
  match m.writer.(v) with
  | None -> ()
  | Some q ->
      pr.aw <- Pidset.add q (Pidset.union pr.aw m.writer_aw.(v))

let note_access m pr v =
  if m.journaling then jpush m (U_accessed (v, m.accessed.(v)));
  m.accessed.(v) <- Pidset.add pr.pid m.accessed.(v)

(* A remote read is critical iff it is the process's first remote read of
   that variable (Definition 2). Only first insertions are journaled:
   replacing an existing binding is a no-op. *)
let read_criticality m pr v ~remote =
  let critical = remote && not (Hashtbl.mem pr.remote_reads v) in
  if remote then begin
    if critical && m.journaling then jpush m (U_remote_read (pr.pid, v));
    Hashtbl.replace pr.remote_reads v ()
  end;
  critical

(* --- executing events ------------------------------------------------ *)

let commit_entry m pr (entry : Wbuf.entry) =
  let v = entry.Wbuf.var in
  let remote = is_remote m pr.pid v in
  let critical = remote && m.writer.(v) <> Some pr.pid in
  j_cache m v;
  let rmr = Memmodel.write_rmr m.cfg.model m.cache pr.pid v ~remote in
  set_mem m v entry.Wbuf.value;
  j_writer m v;
  m.writer.(v) <- Some pr.pid;
  m.writer_aw.(v) <- entry.Wbuf.aw;
  note_access m pr v;
  emit m pr
    (Event.Commit_write { var = v; value = entry.Wbuf.value })
    ~remote ~rmr ~critical

let do_commit m pr =
  let entry = Wbuf.pop pr.buf in
  if m.journaling then jpush m (U_buf_insert (pr.pid, 0, entry));
  commit_entry m pr entry

let commit m p =
  let pr = m.procs.(p) in
  if Wbuf.is_empty pr.buf then invalid_arg "Machine.commit: empty buffer";
  j_head m pr;
  let e = do_commit m pr in
  j_refresh m pr;
  e

(* PSO only: commit the pending write to [v] out of order. Under TSO the
   write buffer is FIFO and only the oldest write may become visible. *)
let commit_var m p v =
  if m.cfg.ordering <> Config.Pso then
    invalid_arg "Machine.commit_var: only allowed under PSO ordering";
  let pr = m.procs.(p) in
  j_head m pr;
  let i, entry = Wbuf.pop_var' pr.buf v in
  if m.journaling then jpush m (U_buf_insert (pr.pid, i, entry));
  let e = commit_entry m pr entry in
  j_refresh m pr;
  e

let finish_fence m pr =
  let implicit = pr.fence_implicit in
  pr.in_fence <- false;
  pr.fence_implicit <- false;
  if implicit then pr.rmw_fenced <- true;
  pr.fences <- pr.fences + 1;
  pr.cur_fences <- pr.cur_fences + 1;
  (* the program continues past an explicit fence only once it completes:
     apply the continuation here, not at BeginFence, so op-boundary
     closures observe the drained buffer *)
  (match pr.cont with
  | Prog.Bind (Prog.Fence, k) -> pr.cont <- k ()
  | _ -> ());
  emit m pr (Event.End_fence { implicit }) ~remote:false ~rmr:false
    ~critical:false

let do_read m pr v k =
  match Wbuf.find pr.buf v with
  | Some x ->
      let e =
        emit m pr
          (Event.Read { var = v; value = x; src = Event.From_buffer })
          ~remote:false ~rmr:false ~critical:false
      in
      pr.cont <- k x;
      e
  | None ->
      let remote = is_remote m pr.pid v in
      j_cache m v;
      let rmr, src = Memmodel.read_rmr m.cfg.model m.cache pr.pid v ~remote in
      let critical = read_criticality m pr v ~remote in
      absorb_awareness m pr v;
      note_access m pr v;
      let x = m.mem.(v) in
      let e =
        emit m pr
          (Event.Read { var = v; value = x; src })
          ~remote ~rmr ~critical
      in
      pr.cont <- k x;
      e

let do_issue_write m pr v x k =
  (match Wbuf.push' pr.buf { Wbuf.var = v; value = x; aw = pr.aw } with
  | Some (i, old) -> if m.journaling then jpush m (U_buf_set (pr.pid, i, old))
  | None -> if m.journaling then jpush m (U_buf_drop_last pr.pid));
  let e =
    emit m pr
      (Event.Issue_write { var = v; value = x })
      ~remote:false ~rmr:false ~critical:false
  in
  pr.cont <- k ();
  e

(* Explicit fences leave the continuation in place (applied by
   [finish_fence]); implicit RMW drains leave the pending RMW in place. *)
let do_begin_fence m pr ~implicit =
  pr.in_fence <- true;
  pr.fence_implicit <- implicit;
  emit m pr (Event.Begin_fence { implicit }) ~remote:false ~rmr:false
    ~critical:false

(* Atomic RMWs access the variable directly in shared memory (their store
   buffer was drained first when [rmw_drains] is set). Criticality follows
   the same rules as a read followed by a write commit. *)
let rmw_criticality m pr v ~remote ~writes =
  let read_crit = read_criticality m pr v ~remote in
  let write_crit = writes && remote && m.writer.(v) <> Some pr.pid in
  read_crit || write_crit

let do_rmw m pr v ~kind_of ~result ~new_value =
  let remote = is_remote m pr.pid v in
  let observed = m.mem.(v) in
  let writes = match new_value observed with Some _ -> true | None -> false in
  let critical = rmw_criticality m pr v ~remote ~writes in
  j_cache m v;
  let rmr = Memmodel.rmw_rmr m.cfg.model m.cache pr.pid v ~remote in
  absorb_awareness m pr v;
  note_access m pr v;
  (match new_value observed with
  | Some x ->
      set_mem m v x;
      j_writer m v;
      m.writer.(v) <- Some pr.pid;
      m.writer_aw.(v) <- pr.aw
  | None -> ());
  pr.rmw_fenced <- false;
  let e = emit m pr (kind_of observed) ~remote ~rmr ~critical in
  pr.cont <- result observed;
  e

let is_active (pr : proc) = pr.sec = Entry || pr.sec = Exiting

(* --- crash faults ----------------------------------------------------- *)

(* Inject a crash fault into [p]. The process's private state — its
   continuation, fence flags and pending RMW bookkeeping — is wiped and it
   moves to the [Crashed] section, from which its only enabled event is
   [Recover]. The write buffer's fate follows [cfg.crash_semantics]:
   [commit_prefix] oldest entries reach shared memory as ordinary
   [Commit_write] events (so replay, RMR accounting and awareness stay
   exact), the rest are discarded. The prefix length defaults per
   semantics — 0 under [Drop_buffer], the full buffer under
   [Flush_buffer] — and is the adversary's choice under [Atomic_prefix].

   Crashing in the NCS is allowed and is the canonical lost-release
   scenario: after [Exit] the release write may still sit in the buffer. *)
let crash ?commit_prefix m p =
  let pr = m.procs.(p) in
  (match pr.sec with
  | Finished -> invalid_arg "Machine.crash: process already finished"
  | Crashed -> invalid_arg "Machine.crash: process already crashed"
  | Ncs | Entry | Exiting -> ());
  let size = Wbuf.size pr.buf in
  let k =
    match (m.cfg.Config.crash_semantics, commit_prefix) with
    | Config.Drop_buffer, (None | Some 0) -> 0
    | Config.Drop_buffer, Some _ ->
        invalid_arg "Machine.crash: Drop_buffer commits no prefix"
    | Config.Flush_buffer, None -> size
    | Config.Flush_buffer, Some k when k = size -> k
    | Config.Flush_buffer, Some _ ->
        invalid_arg "Machine.crash: Flush_buffer commits the whole buffer"
    | Config.Atomic_prefix, None -> 0
    | Config.Atomic_prefix, Some k when k >= 0 && k <= size -> k
    | Config.Atomic_prefix, Some _ ->
        invalid_arg "Machine.crash: prefix exceeds buffer size"
  in
  j_head m pr;
  for _ = 1 to k do
    ignore (do_commit m pr)
  done;
  let dropped = Wbuf.size pr.buf in
  if m.journaling && dropped > 0 then
    jpush m (U_buf_restore (pr.pid, Wbuf.entries pr.buf));
  Wbuf.clear pr.buf;
  if is_active pr then m.active_count <- m.active_count - 1;
  pr.sec <- Crashed;
  pr.cont <- Prog.unit;
  pr.in_fence <- false;
  pr.fence_implicit <- false;
  pr.rmw_fenced <- false;
  pr.needs_recovery <- true;
  pr.crashes <- pr.crashes + 1;
  m.crash_count <- m.crash_count + 1;
  let e =
    emit m pr
      (Event.Crash { committed = k; dropped })
      ~remote:false ~rmr:false ~critical:false
  in
  j_refresh m pr;
  e

let do_recover m pr =
  pr.sec <- Ncs;
  emit m pr Event.Recover ~remote:false ~rmr:false ~critical:false

let do_enter m pr =
  pr.sec <- Entry;
  (pr.cont <-
     (match m.cfg.Config.recovery with
     | Some r when pr.needs_recovery ->
         (* capture only immutable data: closing over [m] (or [pr]) here
            would make the continuation's structural hash — part of the
            state fingerprint — depend on the machine's mutable state *)
         let entry = m.cfg.entry and pid = pr.pid in
         Prog.bind (r pid) (fun () -> entry pid)
     | _ -> m.cfg.entry pr.pid));
  pr.needs_recovery <- false;
  pr.cur_rmrs <- 0;
  pr.cur_fences <- 0;
  pr.cur_criticals <- 0;
  m.active_count <- m.active_count + 1;
  (* contention accounting: the newcomer joins every in-flight passage's
     interval set, and its own interval set starts from the currently
     active processes *)
  pr.interval_set <- Pidset.singleton pr.pid;
  pr.point_max <- m.active_count;
  Array.iter
    (fun (q : proc) ->
      if is_active q && not (Pid.equal q.pid pr.pid) then begin
        if m.journaling then
          jpush m (U_contention (q.pid, q.interval_set, q.point_max));
        q.interval_set <- Pidset.add pr.pid q.interval_set;
        q.point_max <- max q.point_max m.active_count;
        pr.interval_set <- Pidset.add q.pid pr.interval_set
      end)
    m.procs;
  emit m pr Event.Enter ~remote:false ~rmr:false ~critical:false

let do_cs m pr =
  if m.cfg.check_exclusion then
    Array.iter
      (fun (q : proc) ->
        if
          (not (Pid.equal q.pid pr.pid))
          && q.sec = Entry && (not q.in_fence)
          && (match q.cont with Prog.Return () -> true | _ -> false)
        then raise (Exclusion_violation { holder = pr.pid; intruder = q.pid }))
      m.procs;
  pr.sec <- Exiting;
  pr.cont <- m.cfg.exit_section pr.pid;
  m.cs_entries <- m.cs_entries + 1;
  emit m pr Event.Cs ~remote:false ~rmr:false ~critical:false

let do_exit m pr =
  pr.passages <- pr.passages + 1;
  if m.cfg.Config.record_trace then begin
    Vec.push pr.passage_log
      { p_rmrs = pr.cur_rmrs; p_fences = pr.cur_fences;
        p_criticals = pr.cur_criticals;
        p_interval = Pidset.cardinal pr.interval_set;
        p_point = pr.point_max };
    if m.journaling then jpush m (U_passage_pop pr.pid)
  end;
  pr.sec <- (if pr.passages >= m.cfg.max_passages then Finished else Ncs);
  m.active_count <- m.active_count - 1;
  emit m pr Event.Exit ~remote:false ~rmr:false ~critical:false

let exec_pending m (pr : proc) (pd : pending) : Event.t =
  match pd with
  | P_done -> assert false (* filtered by [step] *)
  | P_recover -> do_recover m pr
  | P_commit _ -> do_commit m pr
  | P_end_fence -> finish_fence m pr
  | P_enter -> do_enter m pr
  | P_cs -> do_cs m pr
  | P_exit -> do_exit m pr
  | P_rmw_fence -> do_begin_fence m pr ~implicit:true
  | P_read _ | P_issue_write _ | P_begin_fence | P_cas _ | P_faa _ | P_swap _
    -> (
      match pr.cont with
      | Prog.Return () -> assert false
      | Prog.Bind (op, k) -> (
          match op with
          | Prog.Read v -> do_read m pr v k
          | Prog.Write (v, x) -> do_issue_write m pr v x k
          | Prog.Fence ->
              ignore k;
              do_begin_fence m pr ~implicit:false
          | Prog.Cas (v, expected, desired) ->
              do_rmw m pr v
                ~kind_of:(fun observed ->
                  Event.Cas_ev
                    { var = v; expected; desired; observed;
                      success = Value.equal observed expected })
                ~result:(fun observed -> k (Value.equal observed expected))
                ~new_value:(fun observed ->
                  if Value.equal observed expected then Some desired else None)
          | Prog.Faa (v, delta) ->
              do_rmw m pr v
                ~kind_of:(fun observed ->
                  Event.Faa_ev { var = v; delta; observed })
                ~result:(fun observed -> k observed)
                ~new_value:(fun observed -> Some (observed + delta))
          | Prog.Swap (v, x) ->
              do_rmw m pr v
                ~kind_of:(fun observed ->
                  Event.Swap_ev { var = v; stored = x; observed })
                ~result:(fun observed -> k observed)
                ~new_value:(fun _ -> Some x)))

(* The journal head is pushed after the [P_done] check (so a raising call
   leaves no record) but before execution: if the event itself raises
   mid-mutation (Exclusion_violation from [do_cs], or a lock program's
   spin-guard exception escaping a continuation), the caller's
   [undo_to mark] still restores the pre-step state exactly — the head
   snapshot plus the fine-grained records cover every partial write. *)
let step m p : Event.t =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> raise (Process_finished p)
  | pd ->
      j_head m pr;
      let e = exec_pending m pr pd in
      j_refresh m pr;
      e

(* --- footprints ------------------------------------------------------ *)

(* Shared-memory footprint of the event [step m p] would execute, decided
   from machine state without executing it. This is what lets the model
   checker's partial-order reduction (lib/mcheck) classify moves as
   commuting without trial execution. [F_local] means the event touches
   only process-local state: the process's own buffer, fence flags,
   section bookkeeping and continuation — including reads satisfied by
   store-to-load forwarding, which never reach shared memory. *)
type footprint =
  | F_none  (* finished process: step would raise *)
  | F_local  (* process-local only (buffer push, fence flags, sections) *)
  | F_read of Var.t  (* reads [v] from shared memory *)
  | F_write of Var.t  (* commits a buffered write to [v] *)
  | F_rmw of Var.t  (* atomically reads and writes [v] *)
  | F_cs  (* CS execution: reads every process's entry progress *)

let step_footprint m p : footprint =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> F_none
  | P_enter | P_exit | P_recover -> F_local
  | P_cs -> F_cs
  | P_begin_fence | P_end_fence | P_rmw_fence -> F_local
  | P_issue_write _ -> F_local
  | P_commit v -> F_write v
  | P_read v -> if Wbuf.find pr.buf v <> None then F_local else F_read v
  | P_cas (v, _, _) | P_faa (v, _) | P_swap (v, _) -> F_rmw v

(* Could [step m p] leave the process CS-enabled (in its entry section
   with a completed entry program, outside any fence)? Conservative: true
   whenever the event advances the continuation of a process that is (or
   becomes) in Entry — the continuation's remainder cannot be inspected
   without running its closures. An implicit RMW drain's EndFence leaves
   the pending RMW in place, so it never completes the section. *)
let step_may_enable_cs m p =
  let pr = m.procs.(p) in
  match pending m p with
  | P_enter -> true
  | P_end_fence -> pr.sec = Entry && not pr.fence_implicit
  | P_read _ | P_issue_write _ | P_cas _ | P_faa _ | P_swap _ ->
      pr.sec = Entry
  | P_done | P_cs | P_exit | P_begin_fence | P_rmw_fence | P_commit _
  | P_recover ->
      false

(* --- classification helpers for adversaries ------------------------- *)

(* Would the pending event of [p] be special (Definition 3) if executed now?
   Decided from machine state without executing it. *)
let pending_is_special m p =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> false
  | P_enter | P_cs | P_exit | P_recover -> true
  | P_begin_fence | P_end_fence | P_rmw_fence -> true
  | P_issue_write _ -> false
  | P_read v ->
      (match Wbuf.find pr.buf v with
      | Some _ -> false
      | None ->
          let remote = is_remote m p v in
          remote && not (Hashtbl.mem pr.remote_reads v))
  | P_commit v ->
      let remote = is_remote m p v in
      remote && m.writer.(v) <> Some p
  | P_cas (v, _, _) | P_faa (v, _) | P_swap (v, _) ->
      (* conservatively special: RMWs both read and write the variable *)
      let remote = is_remote m p v in
      remote
      && (m.writer.(v) <> Some p || not (Hashtbl.mem pr.remote_reads v))

(* Run [p] while its pending event is neither special nor [P_done], up to
   [fuel] events. Returns the number of events executed and the reason for
   stopping. *)
type stop_reason = At_special | Done_ | Out_of_fuel

let run_until_special ?(fuel = 100_000) m p =
  let rec go steps fuel =
    if fuel <= 0 then (steps, Out_of_fuel)
    else
      match pending m p with
      | P_done -> (steps, Done_)
      | _ when pending_is_special m p -> (steps, At_special)
      | _ ->
          ignore (step m p);
          go (steps + 1) (fuel - 1)
  in
  go 0 fuel

(* Run [p] until it has completed [k] passages or fuel runs out. *)
let run_until_passages ?(fuel = 1_000_000) m p ~target =
  let rec go fuel =
    if m.procs.(p).passages >= target then true
    else if fuel <= 0 then false
    else
      match pending m p with
      | P_done -> m.procs.(p).passages >= target
      | _ ->
          ignore (step m p);
          go (fuel - 1)
  in
  go fuel

(* --- journal public interface ---------------------------------------- *)

module Journal = struct
  type mark = int

  let enable m =
    if not m.journaling then begin
      Vec.clear m.jlog;
      m.journaling <- true;
      m.j_peak <- 0;
      m.j_records <- 0;
      for p = 0 to Array.length m.procs - 1 do
        m.fp_proc.(p) <- proc_term m p
      done;
      m.fp <- fingerprint m
    end

  let disable m =
    m.journaling <- false;
    Vec.clear m.jlog

  let enabled m = m.journaling
  let mark m = Vec.length m.jlog
  let undo_to m (mk : mark) = undo_to m mk
  let depth m = Vec.length m.jlog
  let peak m = m.j_peak
  let records m = m.j_records
end

(* --- structural equality ---------------------------------------------- *)

(* Structural equality of machine {e state} (journal bookkeeping and the
   configuration are excluded). Continuations are compared physically:
   closures have no structural equality, and both [clone] and the journal
   restore the very same continuation value, which is exactly the
   guarantee the journal tests need. *)
let entry_equal (a : Wbuf.entry) (b : Wbuf.entry) =
  Var.equal a.Wbuf.var b.Wbuf.var
  && Value.equal a.Wbuf.value b.Wbuf.value
  && Pidset.equal a.Wbuf.aw b.Wbuf.aw

let proc_equal (a : proc) (b : proc) =
  Pid.equal a.pid b.pid && a.sec = b.sec && a.cont == b.cont
  && a.in_fence = b.in_fence
  && a.fence_implicit = b.fence_implicit
  && a.rmw_fenced = b.rmw_fenced
  && Pidset.equal a.aw b.aw
  && a.passages = b.passages && a.rmrs = b.rmrs && a.fences = b.fences
  && a.criticals = b.criticals && a.cur_rmrs = b.cur_rmrs
  && a.cur_fences = b.cur_fences
  && a.cur_criticals = b.cur_criticals
  && Pidset.equal a.interval_set b.interval_set
  && a.point_max = b.point_max
  && a.crashes = b.crashes
  && a.needs_recovery = b.needs_recovery
  && (let ea = Wbuf.entries a.buf and eb = Wbuf.entries b.buf in
      Array.length ea = Array.length eb && Array.for_all2 entry_equal ea eb)
  && Hashtbl.length a.remote_reads = Hashtbl.length b.remote_reads
  && Hashtbl.fold
       (fun v () acc -> acc && Hashtbl.mem b.remote_reads v)
       a.remote_reads true
  && Vec.to_array a.passage_log = Vec.to_array b.passage_log

let equal a b =
  Array.length a.mem = Array.length b.mem
  && Array.length a.procs = Array.length b.procs
  && a.mem = b.mem && a.writer = b.writer
  && Array.for_all2 Pidset.equal a.writer_aw b.writer_aw
  && Array.for_all2 Pidset.equal a.accessed b.accessed
  && Array.for_all2 proc_equal a.procs b.procs
  && Cache.equal a.cache b.cache
  && a.cs_entries = b.cs_entries
  && a.active_count = b.active_count
  && a.crash_count = b.crash_count
  && Vec.to_array a.trace = Vec.to_array b.trace
