(* The TSO machine: processes with write buffers, an adversary-driven
   scheduler interface, transition events, and online RMR / fence /
   critical-event accounting.

   The scheduler (an adversary, a random tester, or the lower-bound
   construction) drives the machine one event at a time:

   - [step m p]   lets process [p] execute its next enabled event;
   - [commit m p] commits the oldest write in [p]'s buffer (always allowed
     when the buffer is non-empty — the adversary may commit writes even
     when [p] is not executing a fence);
   - [pending m p] peeks at what [step] would do, without side effects.

   While a process is executing a fence (between BeginFence and EndFence),
   [step] only commits buffered writes, then emits EndFence — exactly the
   [mode(p,E) = write] regime of the paper. *)

open Ids

exception Exclusion_violation of { holder : Pid.t; intruder : Pid.t }
exception Process_finished of Pid.t

type section = Ncs | Entry | Exiting | Finished | Crashed

let section_name = function
  | Ncs -> "ncs"
  | Entry -> "entry"
  | Exiting -> "exit"
  | Finished -> "finished"
  | Crashed -> "crashed"

type passage_stats = {
  p_rmrs : int;
  p_fences : int;
  p_criticals : int;
  p_interval : int;  (* interval contention of the passage *)
  p_point : int;  (* point contention of the passage *)
}

let dummy_passage =
  { p_rmrs = 0; p_fences = 0; p_criticals = 0; p_interval = 0; p_point = 0 }

type proc = {
  pid : Pid.t;
  mutable sec : section;
  mutable cont : unit Prog.t;
  buf : Wbuf.t;
  mutable in_fence : bool;  (* issued BeginFence, not yet EndFence *)
  mutable fence_implicit : bool;  (* current fence is an RMW drain *)
  mutable rmw_fenced : bool;  (* the pending RMW's drain already completed *)
  mutable aw : Pidset.t;  (* awareness set (Definition 1) *)
  remote_reads : (Var.t, unit) Hashtbl.t;  (* vars remotely read so far *)
  mutable passages : int;  (* completed passages *)
  mutable rmrs : int;
  mutable fences : int;  (* completed fences (EndFence events) *)
  mutable criticals : int;
  mutable cur_rmrs : int;  (* same counters, current passage only *)
  mutable cur_fences : int;
  mutable cur_criticals : int;
  mutable interval_set : Pidset.t;
      (* processes active at some point during the current passage *)
  mutable point_max : int;
      (* max number of simultaneously active processes during the passage *)
  passage_log : passage_stats Vec.t;  (* one entry per completed passage *)
  mutable crashes : int;  (* crash faults injected into this process *)
  mutable needs_recovery : bool;
      (* the next passage must run the recovery section first *)
}

type t = {
  cfg : Config.t;
  mem : Value.t array;
  writer : Pid.t option array;  (* writer(v, E) *)
  writer_aw : Pidset.t array;  (* awareness of writer(v) at issue time *)
  accessed : Pidset.t array;  (* Accessed(v, E) *)
  procs : proc array;
  cache : Cache.t;
  trace : Event.t Vec.t;
  mutable cs_entries : int;  (* total CS events executed *)
  mutable active_count : int;  (* processes currently outside their NCS *)
  mutable crash_count : int;  (* total crash faults injected *)
}

type pending =
  | P_enter
  | P_cs
  | P_exit
  | P_done
  | P_read of Var.t
  | P_issue_write of Var.t * Value.t
  | P_begin_fence
  | P_end_fence
  | P_commit of Var.t
  | P_rmw_fence  (* implicit BeginFence that precedes a buffered RMW *)
  | P_cas of Var.t * Value.t * Value.t
  | P_faa of Var.t * Value.t
  | P_swap of Var.t * Value.t
  | P_recover  (* crashed process: the only enabled event is Recover *)

let pending_to_string = function
  | P_enter -> "Enter"
  | P_cs -> "CS"
  | P_exit -> "Exit"
  | P_done -> "done"
  | P_read v -> Printf.sprintf "read v%d" v
  | P_issue_write (v, x) -> Printf.sprintf "issue v%d:=%d" v x
  | P_begin_fence -> "begin-fence"
  | P_end_fence -> "end-fence"
  | P_commit v -> Printf.sprintf "commit v%d" v
  | P_rmw_fence -> "rmw-fence"
  | P_cas (v, _, _) -> Printf.sprintf "cas v%d" v
  | P_faa (v, _) -> Printf.sprintf "faa v%d" v
  | P_swap (v, _) -> Printf.sprintf "swap v%d" v
  | P_recover -> "recover"

let create (cfg : Config.t) =
  let nvars = Layout.size cfg.layout in
  let mem = Array.init nvars (fun v -> Layout.init cfg.layout v) in
  let procs =
    Array.init cfg.n (fun p ->
        {
          pid = p;
          sec = Ncs;
          cont = Prog.unit;
          buf = Wbuf.create ();
          in_fence = false;
          fence_implicit = false;
          rmw_fenced = false;
          aw = Pidset.singleton p;
          remote_reads = Hashtbl.create 8;
          passages = 0;
          rmrs = 0;
          fences = 0;
          criticals = 0;
          cur_rmrs = 0;
          cur_fences = 0;
          cur_criticals = 0;
          interval_set = Pidset.empty;
          point_max = 0;
          passage_log = Vec.create dummy_passage;
          crashes = 0;
          needs_recovery = false;
        })
  in
  {
    cfg;
    mem;
    writer = Array.make (max nvars 1) None;
    writer_aw = Array.make (max nvars 1) Pidset.empty;
    accessed = Array.make (max nvars 1) Pidset.empty;
    procs;
    cache = Cache.create ~n:cfg.n ~nvars;
    trace =
      Vec.create
        ~capacity:(if cfg.record_trace then 1024 else 1)
        Event.dummy;
    cs_entries = 0;
    active_count = 0;
    crash_count = 0;
  }

(* Deep copy for state-space exploration: all mutable state is duplicated;
   program continuations are immutable values and are shared. When the
   configuration disables trace recording, the trace and passage logs are
   provably empty and never mutated (emit and do_exit skip them), so the
   clone shares them instead of copying — per-clone cost drops from
   O(depth + state) to O(state). *)
let clone m =
  let record = m.cfg.Config.record_trace in
  {
    cfg = m.cfg;
    mem = Array.copy m.mem;
    writer = Array.copy m.writer;
    writer_aw = Array.copy m.writer_aw;
    accessed = Array.copy m.accessed;
    procs =
      Array.map
        (fun pr ->
          {
            pr with
            buf = Wbuf.copy pr.buf;
            remote_reads = Hashtbl.copy pr.remote_reads;
            passage_log =
              (if record then Vec.copy pr.passage_log else pr.passage_log);
          })
        m.procs;
    cache = Cache.copy m.cache;
    trace = (if record then Vec.copy m.trace else m.trace);
    cs_entries = m.cs_entries;
    active_count = m.active_count;
    crash_count = m.crash_count;
  }

let config m = m.cfg
let trace m = m.trace
let cache m = m.cache
let proc m p = m.procs.(p)
let n_procs m = m.cfg.n
let mem_value m v = m.mem.(v)
let writer_of m v = m.writer.(v)
let accessed_set m v = m.accessed.(v)
let awareness m p = m.procs.(p).aw
let section m p = m.procs.(p).sec
let is_remote m p v = Layout.is_remote m.cfg.layout p v

let passages m p = m.procs.(p).passages
let fences_completed m p = m.procs.(p).fences
let rmrs m p = m.procs.(p).rmrs
let criticals m p = m.procs.(p).criticals
let cur_fences m p = m.procs.(p).cur_fences
let cur_criticals m p = m.procs.(p).cur_criticals
let cur_rmrs m p = m.procs.(p).cur_rmrs
let passage_log m p = m.procs.(p).passage_log
let cs_entries m = m.cs_entries
let crashes m p = m.procs.(p).crashes
let crashes_total m = m.crash_count
let needs_recovery m p = m.procs.(p).needs_recovery

(* Contention accounting (paper, Introduction): interval contention of the
   current passage = processes active at some point during it; point
   contention = maximum simultaneously active. *)
let interval_contention m p = Pidset.cardinal m.procs.(p).interval_set
let point_contention m p = m.procs.(p).point_max
let active_now m = m.active_count

(* [mode p] per the paper: Write while executing a fence, Read otherwise. *)
let mode m p = if m.procs.(p).in_fence then `Write else `Read

let pending m p : pending =
  let pr = m.procs.(p) in
  match pr.sec with
  | Finished -> P_done
  | Crashed -> P_recover
  | _ when pr.in_fence -> (
      match Wbuf.peek pr.buf with
      | Some e -> P_commit e.var
      | None -> P_end_fence)
  | Ncs -> P_enter
  | Entry | Exiting -> (
      match pr.cont with
      | Prog.Return () -> if pr.sec = Entry then P_cs else P_exit
      | Prog.Bind (op, _) -> (
          let rmw_needs_fence = m.cfg.rmw_drains && not pr.rmw_fenced in
          match op with
          | Prog.Read v -> P_read v
          | Prog.Write (v, x) -> P_issue_write (v, x)
          | Prog.Fence -> P_begin_fence
          | Prog.Cas (v, e, d) ->
              if rmw_needs_fence then P_rmw_fence else P_cas (v, e, d)
          | Prog.Faa (v, d) ->
              if rmw_needs_fence then P_rmw_fence else P_faa (v, d)
          | Prog.Swap (v, x) ->
              if rmw_needs_fence then P_rmw_fence else P_swap (v, x)))

(* --- event emission ------------------------------------------------- *)

let emit m pr kind ~remote ~rmr ~critical =
  let e =
    { Event.seq = Vec.length m.trace; pid = pr.pid; kind; remote; rmr;
      critical }
  in
  if m.cfg.Config.record_trace then Vec.push m.trace e;
  if rmr then begin
    pr.rmrs <- pr.rmrs + 1;
    pr.cur_rmrs <- pr.cur_rmrs + 1
  end;
  if critical then begin
    pr.criticals <- pr.criticals + 1;
    pr.cur_criticals <- pr.cur_criticals + 1
  end;
  e

(* Awareness propagation on a shared (non-buffer) read of [v]: the reader
   becomes aware of the last writer and of everything that writer was aware
   of when it issued the write. *)
let absorb_awareness m pr v =
  match m.writer.(v) with
  | None -> ()
  | Some q ->
      pr.aw <- Pidset.add q (Pidset.union pr.aw m.writer_aw.(v))

let note_access m pr v =
  m.accessed.(v) <- Pidset.add pr.pid m.accessed.(v)

(* A remote read is critical iff it is the process's first remote read of
   that variable (Definition 2). *)
let read_criticality pr v ~remote =
  let critical = remote && not (Hashtbl.mem pr.remote_reads v) in
  if remote then Hashtbl.replace pr.remote_reads v ();
  critical

(* --- executing events ------------------------------------------------ *)

let commit_entry m pr (entry : Wbuf.entry) =
  let v = entry.Wbuf.var in
  let remote = is_remote m pr.pid v in
  let critical = remote && m.writer.(v) <> Some pr.pid in
  let rmr = Memmodel.write_rmr m.cfg.model m.cache pr.pid v ~remote in
  m.mem.(v) <- entry.Wbuf.value;
  m.writer.(v) <- Some pr.pid;
  m.writer_aw.(v) <- entry.Wbuf.aw;
  note_access m pr v;
  emit m pr
    (Event.Commit_write { var = v; value = entry.Wbuf.value })
    ~remote ~rmr ~critical

let do_commit m pr = commit_entry m pr (Wbuf.pop pr.buf)

let commit m p =
  let pr = m.procs.(p) in
  if Wbuf.is_empty pr.buf then invalid_arg "Machine.commit: empty buffer";
  do_commit m pr

(* PSO only: commit the pending write to [v] out of order. Under TSO the
   write buffer is FIFO and only the oldest write may become visible. *)
let commit_var m p v =
  if m.cfg.ordering <> Config.Pso then
    invalid_arg "Machine.commit_var: only allowed under PSO ordering";
  let pr = m.procs.(p) in
  commit_entry m pr (Wbuf.pop_var pr.buf v)

let finish_fence m pr =
  let implicit = pr.fence_implicit in
  pr.in_fence <- false;
  pr.fence_implicit <- false;
  if implicit then pr.rmw_fenced <- true;
  pr.fences <- pr.fences + 1;
  pr.cur_fences <- pr.cur_fences + 1;
  (* the program continues past an explicit fence only once it completes:
     apply the continuation here, not at BeginFence, so op-boundary
     closures observe the drained buffer *)
  (match pr.cont with
  | Prog.Bind (Prog.Fence, k) -> pr.cont <- k ()
  | _ -> ());
  emit m pr (Event.End_fence { implicit }) ~remote:false ~rmr:false
    ~critical:false

let do_read m pr v k =
  match Wbuf.find pr.buf v with
  | Some x ->
      let e =
        emit m pr
          (Event.Read { var = v; value = x; src = Event.From_buffer })
          ~remote:false ~rmr:false ~critical:false
      in
      pr.cont <- k x;
      e
  | None ->
      let remote = is_remote m pr.pid v in
      let rmr, src = Memmodel.read_rmr m.cfg.model m.cache pr.pid v ~remote in
      let critical = read_criticality pr v ~remote in
      absorb_awareness m pr v;
      note_access m pr v;
      let x = m.mem.(v) in
      let e =
        emit m pr
          (Event.Read { var = v; value = x; src })
          ~remote ~rmr ~critical
      in
      pr.cont <- k x;
      e

let do_issue_write m pr v x k =
  Wbuf.push pr.buf { Wbuf.var = v; value = x; aw = pr.aw };
  let e =
    emit m pr
      (Event.Issue_write { var = v; value = x })
      ~remote:false ~rmr:false ~critical:false
  in
  pr.cont <- k ();
  e

(* Explicit fences leave the continuation in place (applied by
   [finish_fence]); implicit RMW drains leave the pending RMW in place. *)
let do_begin_fence m pr ~implicit =
  pr.in_fence <- true;
  pr.fence_implicit <- implicit;
  emit m pr (Event.Begin_fence { implicit }) ~remote:false ~rmr:false
    ~critical:false

(* Atomic RMWs access the variable directly in shared memory (their store
   buffer was drained first when [rmw_drains] is set). Criticality follows
   the same rules as a read followed by a write commit. *)
let rmw_criticality m pr v ~remote ~writes =
  let read_crit = read_criticality pr v ~remote in
  let write_crit = writes && remote && m.writer.(v) <> Some pr.pid in
  read_crit || write_crit

let do_rmw m pr v ~kind_of ~result ~new_value =
  let remote = is_remote m pr.pid v in
  let observed = m.mem.(v) in
  let writes = match new_value observed with Some _ -> true | None -> false in
  let critical = rmw_criticality m pr v ~remote ~writes in
  let rmr = Memmodel.rmw_rmr m.cfg.model m.cache pr.pid v ~remote in
  absorb_awareness m pr v;
  note_access m pr v;
  (match new_value observed with
  | Some x ->
      m.mem.(v) <- x;
      m.writer.(v) <- Some pr.pid;
      m.writer_aw.(v) <- pr.aw
  | None -> ());
  pr.rmw_fenced <- false;
  let e = emit m pr (kind_of observed) ~remote ~rmr ~critical in
  pr.cont <- result observed;
  e

let is_active (pr : proc) = pr.sec = Entry || pr.sec = Exiting

(* --- crash faults ----------------------------------------------------- *)

(* Inject a crash fault into [p]. The process's private state — its
   continuation, fence flags and pending RMW bookkeeping — is wiped and it
   moves to the [Crashed] section, from which its only enabled event is
   [Recover]. The write buffer's fate follows [cfg.crash_semantics]:
   [commit_prefix] oldest entries reach shared memory as ordinary
   [Commit_write] events (so replay, RMR accounting and awareness stay
   exact), the rest are discarded. The prefix length defaults per
   semantics — 0 under [Drop_buffer], the full buffer under
   [Flush_buffer] — and is the adversary's choice under [Atomic_prefix].

   Crashing in the NCS is allowed and is the canonical lost-release
   scenario: after [Exit] the release write may still sit in the buffer. *)
let crash ?commit_prefix m p =
  let pr = m.procs.(p) in
  (match pr.sec with
  | Finished -> invalid_arg "Machine.crash: process already finished"
  | Crashed -> invalid_arg "Machine.crash: process already crashed"
  | Ncs | Entry | Exiting -> ());
  let size = Wbuf.size pr.buf in
  let k =
    match (m.cfg.Config.crash_semantics, commit_prefix) with
    | Config.Drop_buffer, (None | Some 0) -> 0
    | Config.Drop_buffer, Some _ ->
        invalid_arg "Machine.crash: Drop_buffer commits no prefix"
    | Config.Flush_buffer, None -> size
    | Config.Flush_buffer, Some k when k = size -> k
    | Config.Flush_buffer, Some _ ->
        invalid_arg "Machine.crash: Flush_buffer commits the whole buffer"
    | Config.Atomic_prefix, None -> 0
    | Config.Atomic_prefix, Some k when k >= 0 && k <= size -> k
    | Config.Atomic_prefix, Some _ ->
        invalid_arg "Machine.crash: prefix exceeds buffer size"
  in
  for _ = 1 to k do
    ignore (do_commit m pr)
  done;
  let dropped = Wbuf.size pr.buf in
  Wbuf.clear pr.buf;
  if is_active pr then m.active_count <- m.active_count - 1;
  pr.sec <- Crashed;
  pr.cont <- Prog.unit;
  pr.in_fence <- false;
  pr.fence_implicit <- false;
  pr.rmw_fenced <- false;
  pr.needs_recovery <- true;
  pr.crashes <- pr.crashes + 1;
  m.crash_count <- m.crash_count + 1;
  emit m pr
    (Event.Crash { committed = k; dropped })
    ~remote:false ~rmr:false ~critical:false

let do_recover m pr =
  pr.sec <- Ncs;
  emit m pr Event.Recover ~remote:false ~rmr:false ~critical:false

let do_enter m pr =
  pr.sec <- Entry;
  (pr.cont <-
     (match m.cfg.Config.recovery with
     | Some r when pr.needs_recovery ->
         Prog.bind (r pr.pid) (fun () -> m.cfg.entry pr.pid)
     | _ -> m.cfg.entry pr.pid));
  pr.needs_recovery <- false;
  pr.cur_rmrs <- 0;
  pr.cur_fences <- 0;
  pr.cur_criticals <- 0;
  m.active_count <- m.active_count + 1;
  (* contention accounting: the newcomer joins every in-flight passage's
     interval set, and its own interval set starts from the currently
     active processes *)
  pr.interval_set <- Pidset.singleton pr.pid;
  pr.point_max <- m.active_count;
  Array.iter
    (fun (q : proc) ->
      if is_active q && not (Pid.equal q.pid pr.pid) then begin
        q.interval_set <- Pidset.add pr.pid q.interval_set;
        q.point_max <- max q.point_max m.active_count;
        pr.interval_set <- Pidset.add q.pid pr.interval_set
      end)
    m.procs;
  emit m pr Event.Enter ~remote:false ~rmr:false ~critical:false

let do_cs m pr =
  if m.cfg.check_exclusion then
    Array.iter
      (fun (q : proc) ->
        if
          (not (Pid.equal q.pid pr.pid))
          && q.sec = Entry && (not q.in_fence)
          && (match q.cont with Prog.Return () -> true | _ -> false)
        then raise (Exclusion_violation { holder = pr.pid; intruder = q.pid }))
      m.procs;
  pr.sec <- Exiting;
  pr.cont <- m.cfg.exit_section pr.pid;
  m.cs_entries <- m.cs_entries + 1;
  emit m pr Event.Cs ~remote:false ~rmr:false ~critical:false

let do_exit m pr =
  pr.passages <- pr.passages + 1;
  if m.cfg.Config.record_trace then
    Vec.push pr.passage_log
      { p_rmrs = pr.cur_rmrs; p_fences = pr.cur_fences;
        p_criticals = pr.cur_criticals;
        p_interval = Pidset.cardinal pr.interval_set;
        p_point = pr.point_max };
  pr.sec <- (if pr.passages >= m.cfg.max_passages then Finished else Ncs);
  m.active_count <- m.active_count - 1;
  emit m pr Event.Exit ~remote:false ~rmr:false ~critical:false

let step m p : Event.t =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> raise (Process_finished p)
  | P_recover -> do_recover m pr
  | P_commit _ -> do_commit m pr
  | P_end_fence -> finish_fence m pr
  | P_enter -> do_enter m pr
  | P_cs -> do_cs m pr
  | P_exit -> do_exit m pr
  | P_rmw_fence -> do_begin_fence m pr ~implicit:true
  | P_read _ | P_issue_write _ | P_begin_fence | P_cas _ | P_faa _ | P_swap _
    -> (
      match pr.cont with
      | Prog.Return () -> assert false
      | Prog.Bind (op, k) -> (
          match op with
          | Prog.Read v -> do_read m pr v k
          | Prog.Write (v, x) -> do_issue_write m pr v x k
          | Prog.Fence ->
              ignore k;
              do_begin_fence m pr ~implicit:false
          | Prog.Cas (v, expected, desired) ->
              do_rmw m pr v
                ~kind_of:(fun observed ->
                  Event.Cas_ev
                    { var = v; expected; desired; observed;
                      success = Value.equal observed expected })
                ~result:(fun observed -> k (Value.equal observed expected))
                ~new_value:(fun observed ->
                  if Value.equal observed expected then Some desired else None)
          | Prog.Faa (v, delta) ->
              do_rmw m pr v
                ~kind_of:(fun observed ->
                  Event.Faa_ev { var = v; delta; observed })
                ~result:(fun observed -> k observed)
                ~new_value:(fun observed -> Some (observed + delta))
          | Prog.Swap (v, x) ->
              do_rmw m pr v
                ~kind_of:(fun observed ->
                  Event.Swap_ev { var = v; stored = x; observed })
                ~result:(fun observed -> k observed)
                ~new_value:(fun _ -> Some x)))

(* --- footprints ------------------------------------------------------ *)

(* Shared-memory footprint of the event [step m p] would execute, decided
   from machine state without executing it. This is what lets the model
   checker's partial-order reduction (lib/mcheck) classify moves as
   commuting without trial execution. [F_local] means the event touches
   only process-local state: the process's own buffer, fence flags,
   section bookkeeping and continuation — including reads satisfied by
   store-to-load forwarding, which never reach shared memory. *)
type footprint =
  | F_none  (* finished process: step would raise *)
  | F_local  (* process-local only (buffer push, fence flags, sections) *)
  | F_read of Var.t  (* reads [v] from shared memory *)
  | F_write of Var.t  (* commits a buffered write to [v] *)
  | F_rmw of Var.t  (* atomically reads and writes [v] *)
  | F_cs  (* CS execution: reads every process's entry progress *)

let step_footprint m p : footprint =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> F_none
  | P_enter | P_exit | P_recover -> F_local
  | P_cs -> F_cs
  | P_begin_fence | P_end_fence | P_rmw_fence -> F_local
  | P_issue_write _ -> F_local
  | P_commit v -> F_write v
  | P_read v -> if Wbuf.find pr.buf v <> None then F_local else F_read v
  | P_cas (v, _, _) | P_faa (v, _) | P_swap (v, _) -> F_rmw v

(* Could [step m p] leave the process CS-enabled (in its entry section
   with a completed entry program, outside any fence)? Conservative: true
   whenever the event advances the continuation of a process that is (or
   becomes) in Entry — the continuation's remainder cannot be inspected
   without running its closures. An implicit RMW drain's EndFence leaves
   the pending RMW in place, so it never completes the section. *)
let step_may_enable_cs m p =
  let pr = m.procs.(p) in
  match pending m p with
  | P_enter -> true
  | P_end_fence -> pr.sec = Entry && not pr.fence_implicit
  | P_read _ | P_issue_write _ | P_cas _ | P_faa _ | P_swap _ ->
      pr.sec = Entry
  | P_done | P_cs | P_exit | P_begin_fence | P_rmw_fence | P_commit _
  | P_recover ->
      false

(* --- classification helpers for adversaries ------------------------- *)

(* Would the pending event of [p] be special (Definition 3) if executed now?
   Decided from machine state without executing it. *)
let pending_is_special m p =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> false
  | P_enter | P_cs | P_exit | P_recover -> true
  | P_begin_fence | P_end_fence | P_rmw_fence -> true
  | P_issue_write _ -> false
  | P_read v ->
      (match Wbuf.find pr.buf v with
      | Some _ -> false
      | None ->
          let remote = is_remote m p v in
          remote && not (Hashtbl.mem pr.remote_reads v))
  | P_commit v ->
      let remote = is_remote m p v in
      remote && m.writer.(v) <> Some p
  | P_cas (v, _, _) | P_faa (v, _) | P_swap (v, _) ->
      (* conservatively special: RMWs both read and write the variable *)
      let remote = is_remote m p v in
      remote
      && (m.writer.(v) <> Some p || not (Hashtbl.mem pr.remote_reads v))

(* Run [p] while its pending event is neither special nor [P_done], up to
   [fuel] events. Returns the number of events executed and the reason for
   stopping. *)
type stop_reason = At_special | Done_ | Out_of_fuel

let run_until_special ?(fuel = 100_000) m p =
  let rec go steps fuel =
    if fuel <= 0 then (steps, Out_of_fuel)
    else
      match pending m p with
      | P_done -> (steps, Done_)
      | _ when pending_is_special m p -> (steps, At_special)
      | _ ->
          ignore (step m p);
          go (steps + 1) (fuel - 1)
  in
  go 0 fuel

(* Run [p] until it has completed [k] passages or fuel runs out. *)
let run_until_passages ?(fuel = 1_000_000) m p ~target =
  let rec go fuel =
    if m.procs.(p).passages >= target then true
    else if fuel <= 0 then false
    else
      match pending m p with
      | P_done -> m.procs.(p).passages >= target
      | _ ->
          ignore (step m p);
          go (fuel - 1)
  in
  go fuel
