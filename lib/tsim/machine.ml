(* The TSO machine: processes with write buffers, an adversary-driven
   scheduler interface, transition events, and online RMR / fence /
   critical-event accounting.

   The scheduler (an adversary, a random tester, or the lower-bound
   construction) drives the machine one event at a time:

   - [step m p]   lets process [p] execute its next enabled event;
   - [commit m p] commits the oldest write in [p]'s buffer (always allowed
     when the buffer is non-empty — the adversary may commit writes even
     when [p] is not executing a fence);
   - [pending m p] peeks at what [step] would do, without side effects.

   While a process is executing a fence (between BeginFence and EndFence),
   [step] only commits buffered writes, then emits EndFence — exactly the
   [mode(p,E) = write] regime of the paper. *)

open Ids

exception Exclusion_violation of { holder : Pid.t; intruder : Pid.t }
exception Process_finished of Pid.t

type section = Ncs | Entry | Exiting | Finished | Crashed | Aborting

let section_name = function
  | Ncs -> "ncs"
  | Entry -> "entry"
  | Exiting -> "exit"
  | Finished -> "finished"
  | Crashed -> "crashed"
  | Aborting -> "aborting"

type passage_stats = {
  p_rmrs : int;
  p_fences : int;
  p_criticals : int;
  p_interval : int;  (* interval contention of the passage *)
  p_point : int;  (* point contention of the passage *)
}

let dummy_passage =
  { p_rmrs = 0; p_fences = 0; p_criticals = 0; p_interval = 0; p_point = 0 }

type proc = {
  pid : Pid.t;
  mutable sec : section;
  mutable cont : unit Prog.t;
  mutable pc : int;
      (* compiled engine: [Compile] pc of [cont], or -1 when this process
         is (temporarily) on the interpreter path. Invariant: [pc >= 0]
         implies [cont == Compile.rep code pc]. Always -1 under the
         interpreter engines. *)
  buf : Wbuf.t;
  mutable in_fence : bool;  (* issued BeginFence, not yet EndFence *)
  mutable fence_implicit : bool;  (* current fence is an RMW drain *)
  mutable rmw_fenced : bool;  (* the pending RMW's drain already completed *)
  mutable aw : Pidset.t;  (* awareness set (Definition 1) *)
  remote_reads : (Var.t, unit) Hashtbl.t;  (* vars remotely read so far *)
  mutable passages : int;  (* completed passages *)
  mutable rmrs : int;
  mutable fences : int;  (* completed fences (EndFence events) *)
  mutable criticals : int;
  mutable cur_rmrs : int;  (* same counters, current passage only *)
  mutable cur_fences : int;
  mutable cur_criticals : int;
  mutable interval_set : Pidset.t;
      (* processes active at some point during the current passage *)
  mutable point_max : int;
      (* max number of simultaneously active processes during the passage *)
  passage_log : passage_stats Vec.t;  (* one entry per completed passage *)
  mutable crashes : int;  (* crash faults injected into this process *)
  mutable needs_recovery : bool;
      (* the next passage must run the recovery section first *)
  mutable abortable : bool;
      (* the process is at a declared wait point ([Prog.Abortable] marker
         up): an adversary abort is deliverable *)
  mutable aborts : int;  (* abort faults injected into this process *)
}

(* --- mutation journal: flat undo records ------------------------------ *)

(* Undo records live in a Flatstate log: unboxed ints plus typed side
   stacks, pushed operands-first / header-last so [undo_to] pops the
   header and then the operands in reverse push order. One record per
   individual state write; each restores the exact old value, so a
   rollback is byte-exact regardless of what the mutator did (including
   partial mutations before an exception). The header word packs
   [tag lor (aux lsl 4)] where [aux] is the record's pid or variable.

   [t_head] is the per-mutator head snapshot: every public mutator
   ([step] / [commit] / [commit_var] / [crash]) opens with a full
   snapshot of the stepping process's scalar fields plus the machine
   scalars — a single event only touches a handful, but one 18-word
   flat record is cheaper than tagged records per field and keeps the
   undo path trivially exact. Aggregate state (write buffer, remote-read
   table, passage log) is journaled per-operation instead. *)
let t_head = 0
let t_mem = 1  (* aux=v; int: old value *)
let t_writer = 2  (* aux=v; int: old writer (-1 none); set: old writer_aw *)
let t_accessed = 3  (* aux=v; set: old accessed *)
let t_cache_packed = 4  (* aux=v; int: old cache column word *)
let t_cache_col = 5  (* aux=v; col: old cache column (wide machines) *)
let t_remote_read = 6  (* aux=p; int: v — first remote read, undo removes *)
let t_buf_set = 7  (* aux=p; int: i; entry: old — issue replaced a write *)
let t_buf_drop_last = 8  (* aux=p — issue appended a write *)
let t_buf_insert = 9  (* aux=p; int: i; entry — commit popped this entry *)
let t_buf_restore = 10  (* aux=p; entries — crash cleared the buffer *)
let t_contention = 11  (* aux=p; int: old point_max; set: old interval_set *)
let t_trace_pop = 12  (* emit pushed a trace event (record_trace only) *)
let t_passage_pop = 13  (* aux=p — do_exit pushed a passage-log entry *)

let t_head_lean = 14
(* lean-mode head: the accounting state (awareness, interval/point
   contention, RMR / fence / critical counters) is frozen while [lean]
   is set, so the snapshot omits it — about half the words of [t_head] *)

let t_head_mini = 15
(* lean-mode head for events that cannot touch the passage / crash /
   CS-entry / activity counters (reads, issues, commits, fences, RMWs):
   pc, fp, fp_proc and the flag word only *)

type t = {
  cfg : Config.t;
  mem : Value.t array;
  writer : Pid.t option array;  (* writer(v, E) *)
  writer_aw : Pidset.t array;  (* awareness of writer(v) at issue time *)
  accessed : Pidset.t array;  (* Accessed(v, E) *)
  procs : proc array;
  cache : Cache.t;
  trace : Event.t Vec.t;
  mutable cs_entries : int;  (* total CS events executed *)
  mutable active_count : int;  (* processes currently outside their NCS *)
  mutable crash_count : int;  (* total crash faults injected *)
  mutable abort_count : int;  (* total abort faults injected *)
  code : Compile.t option;  (* compiled programs ([`Compiled] engine) *)
  mutable quiet : bool;
      (* [`Compiled] with trace recording off, or [lean]: emission skips
         even the event-record allocation and returns [Event.dummy] (the
         RMR / critical counters are still maintained) *)
  mutable lean : bool;
      (* exploration mode: skip every piece of accounting the explorer
         never reads — cache-directory transitions, awareness sets,
         access sets, remote-read criticality, RMR / fence / critical
         counters, contention tracking. All of it is excluded from the
         fingerprint and from verdicts (exclusion, deadlock, footprints),
         so verdicts, node counts and fingerprints are identical with the
         flag on or off — see [set_lean] *)
  (* journal / incremental-fingerprint state (see module Journal) *)
  flog : Flatstate.t;
  mutable journaling : bool;
  fp_proc : int array;  (* per-process fingerprint terms (XOR fold) *)
  mutable fp : int;  (* incrementally-maintained state fingerprint *)
  mutable j_peak : int;  (* high-water journal depth *)
  mutable j_records : int;  (* undo records pushed since enable *)
}

type pending =
  | P_enter
  | P_cs
  | P_exit
  | P_done
  | P_read of Var.t
  | P_issue_write of Var.t * Value.t
  | P_begin_fence
  | P_end_fence
  | P_commit of Var.t
  | P_rmw_fence  (* implicit BeginFence that precedes a buffered RMW *)
  | P_cas of Var.t * Value.t * Value.t
  | P_faa of Var.t * Value.t
  | P_swap of Var.t * Value.t
  | P_recover  (* crashed process: the only enabled event is Recover *)
  | P_marker of bool  (* abortable-waiting marker, a purely local step *)
  | P_abort_done  (* cleanup section completed: Abort_done back to NCS *)

let pending_to_string = function
  | P_enter -> "Enter"
  | P_cs -> "CS"
  | P_exit -> "Exit"
  | P_done -> "done"
  | P_read v -> Printf.sprintf "read v%d" v
  | P_issue_write (v, x) -> Printf.sprintf "issue v%d:=%d" v x
  | P_begin_fence -> "begin-fence"
  | P_end_fence -> "end-fence"
  | P_commit v -> Printf.sprintf "commit v%d" v
  | P_rmw_fence -> "rmw-fence"
  | P_cas (v, _, _) -> Printf.sprintf "cas v%d" v
  | P_faa (v, _) -> Printf.sprintf "faa v%d" v
  | P_swap (v, _) -> Printf.sprintf "swap v%d" v
  | P_recover -> "recover"
  | P_marker b -> if b then "abortable-on" else "abortable-off"
  | P_abort_done -> "abort-done"

let create (cfg : Config.t) =
  let nvars = Layout.size cfg.layout in
  let mem = Array.init nvars (fun v -> Layout.init cfg.layout v) in
  let code =
    (* compile-ahead caches continuations and applies each at most once,
       which is only faithful to the interpreter for declared-pure
       programs; without the declaration [`Compiled] runs the journal
       interpreter *)
    match cfg.engine with
    | `Compiled when cfg.pure_programs -> Some (Compile.get cfg)
    | `Compiled | `Clone | `Journal -> None
  in
  let pc0 = match code with Some c -> Compile.unit_pc c | None -> -1 in
  let procs =
    Array.init cfg.n (fun p ->
        {
          pid = p;
          sec = Ncs;
          cont = Prog.unit;
          pc = pc0;
          buf = Wbuf.create ();
          in_fence = false;
          fence_implicit = false;
          rmw_fenced = false;
          aw = Pidset.singleton p;
          remote_reads = Hashtbl.create 8;
          passages = 0;
          rmrs = 0;
          fences = 0;
          criticals = 0;
          cur_rmrs = 0;
          cur_fences = 0;
          cur_criticals = 0;
          interval_set = Pidset.empty;
          point_max = 0;
          passage_log = Vec.create dummy_passage;
          crashes = 0;
          needs_recovery = false;
          abortable = false;
          aborts = 0;
        })
  in
  {
    cfg;
    mem;
    writer = Array.make (max nvars 1) None;
    writer_aw = Array.make (max nvars 1) Pidset.empty;
    accessed = Array.make (max nvars 1) Pidset.empty;
    procs;
    cache = Cache.create ~n:cfg.n ~nvars;
    trace =
      Vec.create
        ~capacity:(if cfg.record_trace then 1024 else 1)
        Event.dummy;
    cs_entries = 0;
    active_count = 0;
    crash_count = 0;
    abort_count = 0;
    code;
    quiet = Option.is_some code && not cfg.record_trace;
    lean = false;
    flog = Flatstate.create ();
    journaling = false;
    fp_proc = Array.make cfg.n 0;
    fp = 0;
    j_peak = 0;
    j_records = 0;
  }

(* Deep copy for state-space exploration: all mutable state is duplicated;
   program continuations are immutable values and are shared. When the
   configuration disables trace recording, the trace and passage logs are
   provably empty and never mutated (emit and do_exit skip them), so the
   clone shares them instead of copying — per-clone cost drops from
   O(depth + state) to O(state). *)
let clone m =
  let record = m.cfg.Config.record_trace in
  {
    cfg = m.cfg;
    mem = Array.copy m.mem;
    writer = Array.copy m.writer;
    writer_aw = Array.copy m.writer_aw;
    accessed = Array.copy m.accessed;
    procs =
      Array.map
        (fun pr ->
          {
            pr with
            buf = Wbuf.copy pr.buf;
            remote_reads = Hashtbl.copy pr.remote_reads;
            passage_log =
              (if record then Vec.copy pr.passage_log else pr.passage_log);
          })
        m.procs;
    cache = Cache.copy m.cache;
    trace = (if record then Vec.copy m.trace else m.trace);
    cs_entries = m.cs_entries;
    active_count = m.active_count;
    crash_count = m.crash_count;
    abort_count = m.abort_count;
    code = m.code;  (* compiled code is immutable-shaped and shared *)
    quiet = m.quiet;
    lean = m.lean;
    (* clones never inherit an active journal: parallel frontier handoff
       and counterexample materialization want plain machines; a worker
       re-enables journaling on its own copy *)
    flog = Flatstate.create ();
    journaling = false;
    fp_proc = Array.copy m.fp_proc;
    fp = m.fp;
    j_peak = 0;
    j_records = 0;
  }

(* Lean exploration mode. While set, [step] / [commit] / [crash] freeze
   every accounting channel the explorer never reads: cache-directory
   transitions, awareness propagation, access sets, remote-read
   criticality, the RMR / fence / critical counters, contention tracking
   and the passage log. None of that state enters the fingerprint, the
   footprints or the verdict checks, so verdicts, node counts and
   fingerprints are bit-identical with the flag on or off — but a step
   sheds roughly half its journal volume and all of its per-event side
   structure maintenance. Lean machines also emit quietly ([Event.dummy]);
   they cannot record traces. *)
let set_lean m b =
  if b && m.cfg.Config.record_trace then
    invalid_arg "Machine.set_lean: incompatible with record_trace";
  m.lean <- b;
  m.quiet <- (b || Option.is_some m.code) && not m.cfg.Config.record_trace

let lean m = m.lean
let config m = m.cfg
let trace m = m.trace
let cache m = m.cache
let proc m p = m.procs.(p)
let n_procs m = m.cfg.n
let mem_value m v = m.mem.(v)
let writer_of m v = m.writer.(v)
let accessed_set m v = m.accessed.(v)
let awareness m p = m.procs.(p).aw
let section m p = m.procs.(p).sec
let is_remote m p v = Layout.is_remote m.cfg.layout p v

let passages m p = m.procs.(p).passages
let fences_completed m p = m.procs.(p).fences
let rmrs m p = m.procs.(p).rmrs
let criticals m p = m.procs.(p).criticals
let cur_fences m p = m.procs.(p).cur_fences
let cur_criticals m p = m.procs.(p).cur_criticals
let cur_rmrs m p = m.procs.(p).cur_rmrs
let passage_log m p = m.procs.(p).passage_log
let cs_entries m = m.cs_entries
let crashes m p = m.procs.(p).crashes
let crashes_total m = m.crash_count
let needs_recovery m p = m.procs.(p).needs_recovery
let aborts m p = m.procs.(p).aborts
let aborts_total m = m.abort_count
let abortable m p = m.procs.(p).abortable

(* An abort move is deliverable iff the configuration declares a cleanup
   section and the process stands at a declared wait point of its entry
   section (marker up). Exiting processes are past the point of giving
   up; crashed / aborting / finished ones have nothing to abort. *)
let abort_deliverable m p =
  let pr = m.procs.(p) in
  pr.sec = Entry && pr.abortable
  && Option.is_some m.cfg.Config.abort_section

(* Contention accounting (paper, Introduction): interval contention of the
   current passage = processes active at some point during it; point
   contention = maximum simultaneously active. *)
let interval_contention m p = Pidset.cardinal m.procs.(p).interval_set
let point_contention m p = m.procs.(p).point_max
let active_now m = m.active_count

(* [mode p] per the paper: Write while executing a fence, Read otherwise. *)
let mode m p = if m.procs.(p).in_fence then `Write else `Read

let pending m p : pending =
  let pr = m.procs.(p) in
  match pr.sec with
  | Finished -> P_done
  | Crashed -> P_recover
  | _ when pr.in_fence -> (
      match Wbuf.peek pr.buf with
      | Some e -> P_commit e.var
      | None -> P_end_fence)
  | Ncs -> P_enter
  | Entry | Exiting | Aborting -> (
      match pr.cont with
      | Prog.Return () ->
          if pr.sec = Entry then P_cs
          else if pr.sec = Exiting then P_exit
          else P_abort_done
      | Prog.Bind (op, _) -> (
          let rmw_needs_fence = m.cfg.rmw_drains && not pr.rmw_fenced in
          match op with
          | Prog.Read v -> P_read v
          | Prog.Write (v, x) -> P_issue_write (v, x)
          | Prog.Fence -> P_begin_fence
          | Prog.Cas (v, e, d) ->
              if rmw_needs_fence then P_rmw_fence else P_cas (v, e, d)
          | Prog.Faa (v, d) ->
              if rmw_needs_fence then P_rmw_fence else P_faa (v, d)
          | Prog.Swap (v, x) ->
              if rmw_needs_fence then P_rmw_fence else P_swap (v, x)
          | Prog.Abortable b -> P_marker b))

(* Allocation-free projection of [pending]: constant constructors only,
   for the explorer's per-node classification loops where materializing
   [P_read v] / [P_issue_write (v, x)] payloads was measurable. Must
   discriminate exactly like [pending]; [pending_var] recovers the
   variable for the classes that carry one. *)
type pending_class =
  | K_enter
  | K_cs
  | K_exit
  | K_done
  | K_read
  | K_issue_write
  | K_begin_fence
  | K_end_fence
  | K_commit
  | K_rmw_fence
  | K_cas
  | K_faa
  | K_swap
  | K_recover
  | K_marker
  | K_abort_done

let pending_class m p : pending_class =
  let pr = m.procs.(p) in
  match pr.sec with
  | Finished -> K_done
  | Crashed -> K_recover
  | _ when pr.in_fence -> if Wbuf.is_empty pr.buf then K_end_fence else K_commit
  | Ncs -> K_enter
  | Entry | Exiting | Aborting -> (
      match pr.cont with
      | Prog.Return () ->
          if pr.sec = Entry then K_cs
          else if pr.sec = Exiting then K_exit
          else K_abort_done
      | Prog.Bind (op, _) -> (
          let rmw_needs_fence = m.cfg.rmw_drains && not pr.rmw_fenced in
          match op with
          | Prog.Read _ -> K_read
          | Prog.Write _ -> K_issue_write
          | Prog.Fence -> K_begin_fence
          | Prog.Cas _ -> if rmw_needs_fence then K_rmw_fence else K_cas
          | Prog.Faa _ -> if rmw_needs_fence then K_rmw_fence else K_faa
          | Prog.Swap _ -> if rmw_needs_fence then K_rmw_fence else K_swap
          | Prog.Abortable _ -> K_marker))

(* The variable of the pending event, for the classes that have one
   ([K_read], [K_issue_write], [K_cas]/[K_faa]/[K_swap], [K_commit]). *)
let pending_var m p : Var.t =
  let pr = m.procs.(p) in
  if pr.in_fence then Wbuf.peek_var pr.buf
  else
    match pr.cont with
    | Prog.Bind (Prog.Read v, _)
    | Prog.Bind (Prog.Write (v, _), _)
    | Prog.Bind (Prog.Cas (v, _, _), _)
    | Prog.Bind (Prog.Faa (v, _), _)
    | Prog.Bind (Prog.Swap (v, _), _) ->
        v
    | _ -> invalid_arg "Machine.pending_var: pending event has no variable"

(* --- fingerprints ----------------------------------------------------- *)

(* Packed 63-bit state fingerprint, shared by both exploration engines.

   Structure: an XOR fold of independent terms — one Zobrist-style term
   per shared variable and one term per process —

     fp = basis  XOR  (XOR_v zmix v mem.(v))  XOR  (XOR_p proc_term p)

   XOR makes the fingerprint incrementally maintainable: when an event
   overwrites mem.(v) the journal applies
   [fp <- fp lxor zmix v old lxor zmix v new], and since each public
   mutator only ever changes the stepping process's own term (pending,
   section, continuation, buffer, ... are all process-local), one
   [proc_term] recomputation per event keeps fp exact. Every term is
   passed through a splitmix-style finalizer ([zfin]) before entering
   the fold so that the XOR of many terms stays well distributed.

   The state abstraction matches the previous sequential FNV-1a
   fingerprint: memory values, per-process pending event, fence flag,
   section, passage/crash counts, recovery flag, continuation structure
   and buffered writes. Cost counters, awareness sets and the cache are
   deliberately excluded — they are accounting, not behavior. *)

let fnv_prime = 0x100000001b3
let fnv_basis = 0x0bf29ce484222325 (* 64-bit FNV basis truncated to 63-bit int *)

let[@inline] mix h x = (h lxor x) * fnv_prime

(* splitmix64-style finalizer, truncated to OCaml's 63-bit int range. *)
let[@inline] zfin x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x369DEA0F31A53F85 in
  (x lxor (x lsr 31)) land max_int

(* Zobrist term for "variable [v] holds [x]". *)
let[@inline] zmix v x = zfin (mix (mix fnv_basis (v + 1)) x)

(* Continuations are hashed structurally (see Compile.hash_cont: raised
   traversal bounds so distinct continuation shapes hash apart). The
   compiled engine reads the hash from the instruction array instead of
   re-traversing the continuation — same value, cached at interning. *)
let hash_cont = Compile.hash_cont

let sec_code = function
  | Ncs -> 0
  | Entry -> 1
  | Exiting -> 2
  | Finished -> 3
  | Crashed -> 4
  | Aborting -> 5

let sec_of_code = function
  | 0 -> Ncs
  | 1 -> Entry
  | 2 -> Exiting
  | 3 -> Finished
  | 4 -> Crashed
  | _ -> Aborting

let section_code = sec_code

(* moved below pending_hash: the interpreter fallback reuses it *)

(* Pending-event term of the fingerprint. Folds one code per event shape
   (Enter=1, CS=2, Exit=3, done=4, read=5·v, issue=6·v·x, begin-fence=7,
   end-fence=8, commit=9·v, rmw-fence=10, cas=11·v·e·d, faa=12·v·d,
   swap=13·v·x, recover=14, abort-done=15, marker=16·b) directly instead
   of materializing the
   {!pending} variant — this runs once per journaled event
   ([j_refresh]), where the variant allocation was measurable. Must
   classify exactly like {!pending}. *)
let pending_hash m p h =
  let pr = m.procs.(p) in
  match pr.sec with
  | Finished -> mix h 4
  | Crashed -> mix h 14
  | _ when pr.in_fence ->
      if Wbuf.is_empty pr.buf then mix h 8
      else mix (mix h 9) (Wbuf.peek_var pr.buf)
  | Ncs -> mix h 1
  | Entry | Exiting | Aborting -> (
      match pr.cont with
      | Prog.Return () ->
          if pr.sec = Entry then mix h 2
          else if pr.sec = Exiting then mix h 3
          else mix h 15
      | Prog.Bind (op, _) -> (
          let rmw_needs_fence = m.cfg.Config.rmw_drains && not pr.rmw_fenced in
          match op with
          | Prog.Read v -> mix (mix h 5) v
          | Prog.Write (v, x) -> mix (mix (mix h 6) v) x
          | Prog.Fence -> mix h 7
          | Prog.Cas (v, e, d) ->
              if rmw_needs_fence then mix h 10
              else mix (mix (mix (mix h 11) v) e) d
          | Prog.Faa (v, d) ->
              if rmw_needs_fence then mix h 10
              else mix (mix (mix h 12) v) d
          | Prog.Swap (v, x) ->
              if rmw_needs_fence then mix h 10
              else mix (mix (mix h 13) v) x
          | Prog.Abortable b -> mix (mix h 16) (if b then 1 else 0)))

(* Profiling location digest. The compiled engine's pc is exact; the
   interpreter fallback digests the {e pending operation} (op kind,
   variable, static operands — exactly [pending_hash]'s classification)
   rather than hashing the continuation structurally: a handful of
   integer mixes instead of a heap traversal, which matters on a hook
   that runs once per search node (the structural hash alone measured
   ~25% of the whole search). The granularity is that of a sampling
   profiler — "about to read flag[1] in entry" — so distinct program
   points issuing the identical operation share a cell, which costs
   label resolution, never correctness. *)
let loc_key m p =
  let pr = m.procs.(p) in
  if pr.pc >= 0 then pr.pc
  else zfin (pending_hash m p fnv_basis)

(* Non-capturing buffer fold (a closure over [Wbuf.iter] would allocate
   per call). *)
let rec buf_hash buf h i n =
  if i >= n then h
  else
    let e = Wbuf.get buf i in
    buf_hash buf (mix (mix h e.Wbuf.var) e.Wbuf.value) (i + 1) n

(* Fingerprint term of one process; depends only on that process's own
   state (pending inspects pr.sec / in_fence / buffer head / cont, all
   local), which is what makes the per-event refresh sound. *)
let proc_term m p =
  let pr = m.procs.(p) in
  let h = mix fnv_basis (p + 0x7f) in
  let h = pending_hash m p h in
  (* the scalar fields pack into one word (passage / crash / abort counts
     are budget-bounded, far below their fields): one mix instead of
     seven on the per-event refresh path *)
  let h =
    mix h
      (sec_code pr.sec
      lor (if pr.in_fence then 8 else 0)
      lor (if pr.needs_recovery then 16 else 0)
      lor (if pr.abortable then 32 else 0)
      lor (pr.passages lsl 6)
      lor (pr.crashes lsl 34)
      lor (pr.aborts lsl 46))
  in
  let h =
    mix h
      (match m.code with
      | Some code when pr.pc >= 0 -> Compile.key code pr.pc
      | _ -> hash_cont pr.cont)
  in
  zfin (buf_hash pr.buf h 0 (Wbuf.size pr.buf))

(* Full recompute: the reference implementation for both engines and the
   paranoid cross-check for the incremental fold. *)
let fingerprint m =
  let h = ref (fnv_basis land max_int) in
  for v = 0 to Array.length m.mem - 1 do
    h := !h lxor zmix v m.mem.(v)
  done;
  for p = 0 to Array.length m.procs - 1 do
    h := !h lxor proc_term m p
  done;
  !h

let fingerprint_fast m = if m.journaling then m.fp else fingerprint m

(* --- journal bookkeeping --------------------------------------------- *)

(* Record accounting: bump the record count and the high-water mark
   (in log words) after each completed record. *)
let[@inline] jdone m =
  m.j_records <- m.j_records + 1;
  let d = Flatstate.length m.flog in
  if d > m.j_peak then m.j_peak <- d

(* Process scalar flags packed into one log word. *)
let[@inline] flags_of (pr : proc) =
  sec_code pr.sec
  lor (if pr.in_fence then 8 else 0)
  lor (if pr.fence_implicit then 16 else 0)
  lor (if pr.rmw_fenced then 32 else 0)
  lor (if pr.needs_recovery then 64 else 0)
  lor if pr.abortable then 128 else 0

(* Head of every public mutator: snapshot the stepping process and the
   machine-global scalars, including the fingerprint state, so undo can
   restore them wholesale. Operands first, header last; the decoder in
   [undo_to] mirrors this order exactly.

   The continuation is snapshotted only on the interpreter path
   ([pc < 0]): every site that sets [pc >= 0] pairs it with
   [cont <- Compile.rep code pc], so undo re-derives the continuation
   from the popped pc instead — keeping the hot compiled path out of the
   cont side-log entirely (and the side-log itself small). *)
let j_head ?(force_full = false) m (pr : proc) =
  if m.journaling then
    if m.lean then begin
      (* aw / interval_set / point_max / RMR / fence / critical counters
         are frozen in lean mode — the snapshot omits them. Steps that
         cannot touch the passage / crash / CS-entry / activity counters
         — reads, issues, commits, fence begin/end, RMWs: everything
         except enter, CS, exit, crash and recovery, i.e. a process in
         Entry/Exiting with an uncompleted program, or inside a fence —
         get the 5-word mini head ([t_head_mini]); the rest snapshot the
         counters too ([t_head_lean]). *)
      let f = m.flog in
      if pr.pc < 0 then Flatstate.push_cont f pr.cont;
      let mini =
        (not force_full)
        && (pr.in_fence
           ||
           match pr.sec with
           | Entry | Exiting | Aborting -> (
               match pr.cont with
               | Prog.Return () -> false
               | Prog.Bind _ -> true)
           | Ncs | Crashed | Finished -> false)
      in
      if mini then begin
        Flatstate.reserve f 5;
        Flatstate.push_unsafe f pr.pc;
        Flatstate.push_unsafe f m.fp;
        Flatstate.push_unsafe f m.fp_proc.(pr.pid);
        Flatstate.push_unsafe f (flags_of pr);
        Flatstate.push_unsafe f (t_head_mini lor (pr.pid lsl 4))
      end
      else begin
        Flatstate.reserve f 12;
        Flatstate.push_unsafe f pr.pc;
        Flatstate.push_unsafe f pr.passages;
        Flatstate.push_unsafe f pr.crashes;
        Flatstate.push_unsafe f pr.aborts;
        Flatstate.push_unsafe f m.fp;
        Flatstate.push_unsafe f m.fp_proc.(pr.pid);
        Flatstate.push_unsafe f m.cs_entries;
        Flatstate.push_unsafe f m.active_count;
        Flatstate.push_unsafe f m.crash_count;
        Flatstate.push_unsafe f m.abort_count;
        Flatstate.push_unsafe f (flags_of pr);
        Flatstate.push_unsafe f (t_head_lean lor (pr.pid lsl 4))
      end;
      jdone m
    end
    else begin
      let f = m.flog in
      if pr.pc < 0 then Flatstate.push_cont f pr.cont;
      Flatstate.push_set f pr.aw;
      Flatstate.push_set f pr.interval_set;
      Flatstate.reserve f 20;
      Flatstate.push_unsafe f pr.pc;
    Flatstate.push_unsafe f pr.passages;
    Flatstate.push_unsafe f pr.rmrs;
    Flatstate.push_unsafe f pr.fences;
    Flatstate.push_unsafe f pr.criticals;
    Flatstate.push_unsafe f pr.cur_rmrs;
    Flatstate.push_unsafe f pr.cur_fences;
    Flatstate.push_unsafe f pr.cur_criticals;
    Flatstate.push_unsafe f pr.point_max;
    Flatstate.push_unsafe f pr.crashes;
    Flatstate.push_unsafe f pr.aborts;
    Flatstate.push_unsafe f m.fp;
    Flatstate.push_unsafe f m.fp_proc.(pr.pid);
    Flatstate.push_unsafe f m.cs_entries;
    Flatstate.push_unsafe f m.active_count;
    Flatstate.push_unsafe f m.crash_count;
    Flatstate.push_unsafe f m.abort_count;
    Flatstate.push_unsafe f (flags_of pr);
    Flatstate.push_unsafe f (t_head lor (pr.pid lsl 4));
    jdone m
  end

(* Tail of every public mutator: fold the stepping process's refreshed
   fingerprint term into fp (memory deltas were applied inline). *)
let[@inline] j_refresh m (pr : proc) =
  if m.journaling then begin
    let t = proc_term m pr.pid in
    m.fp <- m.fp lxor m.fp_proc.(pr.pid) lxor t;
    m.fp_proc.(pr.pid) <- t
  end

let[@inline] set_mem m v x =
  if m.journaling then begin
    let old = m.mem.(v) in
    let f = m.flog in
    Flatstate.reserve f 2;
    Flatstate.push_unsafe f old;
    Flatstate.push_unsafe f (t_mem lor (v lsl 4));
    jdone m;
    m.fp <- m.fp lxor zmix v old lxor zmix v x
  end;
  m.mem.(v) <- x

let[@inline] j_writer m v =
  if m.journaling then begin
    let f = m.flog in
    Flatstate.push_set f m.writer_aw.(v);
    Flatstate.reserve f 2;
    Flatstate.push_unsafe f
      (match m.writer.(v) with None -> -1 | Some p -> p);
    Flatstate.push_unsafe f (t_writer lor (v lsl 4));
    jdone m
  end

(* The CC protocols mutate one variable's cache column (invalidate /
   downgrade across every process); DSM never touches the cache. *)
let j_cache m v =
  if m.journaling && m.cfg.Config.model <> Config.Dsm then begin
    let f = m.flog in
    if m.cfg.Config.n <= Cache.pack_max_procs then begin
      Flatstate.reserve f 2;
      Flatstate.push_unsafe f (Cache.col_packed m.cache v);
      Flatstate.push_unsafe f (t_cache_packed lor (v lsl 4))
    end
    else begin
      Flatstate.push_col f (Cache.col m.cache v);
      Flatstate.push f (t_cache_col lor (v lsl 4))
    end;
    jdone m
  end

(* Pop one record (header word, then operands in reverse push order) and
   restore the exact old values. *)
let undo_record m =
  let f = m.flog in
  let header = Flatstate.pop f in
  let tag = header land 15 and aux = header lsr 4 in
  if tag = t_head then begin
    let pr = m.procs.(aux) in
    let flags = Flatstate.pop f in
    m.abort_count <- Flatstate.pop f;
    m.crash_count <- Flatstate.pop f;
    m.active_count <- Flatstate.pop f;
    m.cs_entries <- Flatstate.pop f;
    m.fp_proc.(aux) <- Flatstate.pop f;
    m.fp <- Flatstate.pop f;
    pr.aborts <- Flatstate.pop f;
    pr.crashes <- Flatstate.pop f;
    pr.point_max <- Flatstate.pop f;
    pr.cur_criticals <- Flatstate.pop f;
    pr.cur_fences <- Flatstate.pop f;
    pr.cur_rmrs <- Flatstate.pop f;
    pr.criticals <- Flatstate.pop f;
    pr.fences <- Flatstate.pop f;
    pr.rmrs <- Flatstate.pop f;
    pr.passages <- Flatstate.pop f;
    pr.pc <- Flatstate.pop f;
    pr.interval_set <- Flatstate.pop_set f;
    pr.aw <- Flatstate.pop_set f;
    (match m.code with
    | Some code when pr.pc >= 0 -> pr.cont <- Compile.rep code pr.pc
    | _ -> pr.cont <- Flatstate.pop_cont f);
    pr.sec <- sec_of_code (flags land 7);
    pr.in_fence <- flags land 8 <> 0;
    pr.fence_implicit <- flags land 16 <> 0;
    pr.rmw_fenced <- flags land 32 <> 0;
    pr.needs_recovery <- flags land 64 <> 0;
    pr.abortable <- flags land 128 <> 0
  end
  else if tag = t_head_lean then begin
    let pr = m.procs.(aux) in
    let flags = Flatstate.pop f in
    m.abort_count <- Flatstate.pop f;
    m.crash_count <- Flatstate.pop f;
    m.active_count <- Flatstate.pop f;
    m.cs_entries <- Flatstate.pop f;
    m.fp_proc.(aux) <- Flatstate.pop f;
    m.fp <- Flatstate.pop f;
    pr.aborts <- Flatstate.pop f;
    pr.crashes <- Flatstate.pop f;
    pr.passages <- Flatstate.pop f;
    pr.pc <- Flatstate.pop f;
    (match m.code with
    | Some code when pr.pc >= 0 -> pr.cont <- Compile.rep code pr.pc
    | _ -> pr.cont <- Flatstate.pop_cont f);
    pr.sec <- sec_of_code (flags land 7);
    pr.in_fence <- flags land 8 <> 0;
    pr.fence_implicit <- flags land 16 <> 0;
    pr.rmw_fenced <- flags land 32 <> 0;
    pr.needs_recovery <- flags land 64 <> 0;
    pr.abortable <- flags land 128 <> 0
  end
  else if tag = t_head_mini then begin
    let pr = m.procs.(aux) in
    let flags = Flatstate.pop f in
    m.fp_proc.(aux) <- Flatstate.pop f;
    m.fp <- Flatstate.pop f;
    pr.pc <- Flatstate.pop f;
    (match m.code with
    | Some code when pr.pc >= 0 -> pr.cont <- Compile.rep code pr.pc
    | _ -> pr.cont <- Flatstate.pop_cont f);
    pr.sec <- sec_of_code (flags land 7);
    pr.in_fence <- flags land 8 <> 0;
    pr.fence_implicit <- flags land 16 <> 0;
    pr.rmw_fenced <- flags land 32 <> 0;
    pr.needs_recovery <- flags land 64 <> 0;
    pr.abortable <- flags land 128 <> 0
  end
  else if tag = t_mem then m.mem.(aux) <- Flatstate.pop f
  else if tag = t_writer then begin
    let w = Flatstate.pop f in
    m.writer.(aux) <- (if w < 0 then None else Some w);
    m.writer_aw.(aux) <- Flatstate.pop_set f
  end
  else if tag = t_accessed then m.accessed.(aux) <- Flatstate.pop_set f
  else if tag = t_cache_packed then
    Cache.restore_col_packed m.cache aux (Flatstate.pop f)
  else if tag = t_cache_col then
    Cache.restore_col m.cache aux (Flatstate.pop_col f)
  else if tag = t_remote_read then
    Hashtbl.remove m.procs.(aux).remote_reads (Flatstate.pop f)
  else if tag = t_buf_set then begin
    let i = Flatstate.pop f in
    Wbuf.set m.procs.(aux).buf i (Flatstate.pop_entry f)
  end
  else if tag = t_buf_drop_last then Wbuf.drop_last m.procs.(aux).buf
  else if tag = t_buf_insert then begin
    let i = Flatstate.pop f in
    Wbuf.insert m.procs.(aux).buf i (Flatstate.pop_entry f)
  end
  else if tag = t_buf_restore then begin
    let buf = m.procs.(aux).buf in
    Array.iteri (fun i e -> Wbuf.insert buf i e) (Flatstate.pop_entries f)
  end
  else if tag = t_contention then begin
    let pr = m.procs.(aux) in
    pr.point_max <- Flatstate.pop f;
    pr.interval_set <- Flatstate.pop_set f
  end
  else if tag = t_trace_pop then ignore (Vec.pop m.trace)
  else if tag = t_passage_pop then ignore (Vec.pop m.procs.(aux).passage_log)
  else invalid_arg "Machine.undo: corrupt journal record"

let undo_to m mark =
  if not m.journaling then
    invalid_arg "Machine.undo_to: journaling is not enabled";
  let len = Flatstate.length m.flog in
  if mark < 0 || mark > len then invalid_arg "Machine.undo_to: bad mark";
  while Flatstate.length m.flog > mark do
    undo_record m
  done;
  (* every record pops exactly what it pushed, so a walk that lands
     anywhere but the mark means the log was corrupted *)
  if Flatstate.length m.flog <> mark then
    invalid_arg "Machine.undo_to: misaligned journal mark"

(* --- event emission ------------------------------------------------- *)

let emit m pr kind ~remote ~rmr ~critical =
  let e =
    { Event.seq = Vec.length m.trace; pid = pr.pid; kind; remote; rmr;
      critical }
  in
  if m.cfg.Config.record_trace then begin
    Vec.push m.trace e;
    if m.journaling then begin
      Flatstate.push m.flog t_trace_pop;
      jdone m
    end
  end;
  if rmr then begin
    pr.rmrs <- pr.rmrs + 1;
    pr.cur_rmrs <- pr.cur_rmrs + 1
  end;
  if critical then begin
    pr.criticals <- pr.criticals + 1;
    pr.cur_criticals <- pr.cur_criticals + 1
  end;
  e

(* Quiet emission ([`Compiled] with trace recording off): skip even the
   event-record allocation — callers guard the kind construction too —
   but keep the RMR / critical counters exact. The returned event is
   [Event.dummy]; exploration never reads it. *)
let[@inline] emit_q (pr : proc) ~rmr ~critical =
  if rmr then begin
    pr.rmrs <- pr.rmrs + 1;
    pr.cur_rmrs <- pr.cur_rmrs + 1
  end;
  if critical then begin
    pr.criticals <- pr.criticals + 1;
    pr.cur_criticals <- pr.cur_criticals + 1
  end;
  Event.dummy

(* Emission of constant-constructor kinds: quiet-aware without needing a
   guard at the call site (the kind itself allocates nothing). *)
let[@inline] emit_k m pr kind ~remote ~rmr ~critical =
  if m.quiet then emit_q pr ~rmr ~critical
  else emit m pr kind ~remote ~rmr ~critical

(* Awareness propagation on a shared (non-buffer) read of [v]: the reader
   becomes aware of the last writer and of everything that writer was aware
   of when it issued the write. *)
let absorb_awareness m pr v =
  match m.writer.(v) with
  | None -> ()
  | Some q ->
      pr.aw <- Pidset.add q (Pidset.union pr.aw m.writer_aw.(v))

let note_access m pr v =
  if m.journaling then begin
    Flatstate.push_set m.flog m.accessed.(v);
    Flatstate.push m.flog (t_accessed lor (v lsl 4));
    jdone m
  end;
  m.accessed.(v) <- Pidset.add pr.pid m.accessed.(v)

(* A remote read is critical iff it is the process's first remote read of
   that variable (Definition 2). Only first insertions are journaled:
   replacing an existing binding is a no-op. *)
let read_criticality m pr v ~remote =
  let critical = remote && not (Hashtbl.mem pr.remote_reads v) in
  if remote then begin
    if critical && m.journaling then begin
      let f = m.flog in
      Flatstate.reserve f 2;
      Flatstate.push_unsafe f v;
      Flatstate.push_unsafe f (t_remote_read lor (pr.pid lsl 4));
      jdone m
    end;
    Hashtbl.replace pr.remote_reads v ()
  end;
  critical

(* --- compiled-program advance ----------------------------------------- *)

(* Advance a process across its pending operation. On the compiled path
   ([pc >= 0]) this follows (and on first use, memoizes) an instruction
   edge — no closure application, no fresh continuation. When the edge
   cannot be compiled the process parks on the interpreter path
   ([pc <- -1]) until the next section root; [k]'s exceptions
   (Prog.Spin_exhausted) propagate identically on both paths. *)
let[@inline] adv_unit m (pr : proc) (k : unit -> unit Prog.t) =
  match m.code with
  | Some code when pr.pc >= 0 ->
      let pc = Compile.advance_unit code pr.pc k in
      if pc >= 0 then begin
        pr.pc <- pc;
        pr.cont <- Compile.rep code pc
      end
      else begin
        pr.pc <- -1;
        pr.cont <- k ()
      end
  | _ -> pr.cont <- k ()

let[@inline] adv_bool m (pr : proc) (k : bool -> unit Prog.t) b =
  match m.code with
  | Some code when pr.pc >= 0 ->
      let pc = Compile.advance_bool code pr.pc k b in
      if pc >= 0 then begin
        pr.pc <- pc;
        pr.cont <- Compile.rep code pc
      end
      else begin
        pr.pc <- -1;
        pr.cont <- k b
      end
  | _ -> pr.cont <- k b

let[@inline] adv_val m (pr : proc) (k : Value.t -> unit Prog.t) x =
  match m.code with
  | Some code when pr.pc >= 0 ->
      let pc = Compile.advance_val code pr.pc k x in
      if pc >= 0 then begin
        pr.pc <- pc;
        pr.cont <- Compile.rep code pc
      end
      else begin
        pr.pc <- -1;
        pr.cont <- k x
      end
  | _ -> pr.cont <- k x

let[@inline] unit_pc_of m =
  match m.code with Some code -> Compile.unit_pc code | None -> -1

(* --- executing events ------------------------------------------------ *)

let commit_entry_full m pr (entry : Wbuf.entry) =
  let v = entry.Wbuf.var in
  let remote = is_remote m pr.pid v in
  let critical = remote && m.writer.(v) <> Some pr.pid in
  j_cache m v;
  let rmr = Memmodel.write_rmr m.cfg.model m.cache pr.pid v ~remote in
  set_mem m v entry.Wbuf.value;
  j_writer m v;
  m.writer.(v) <- Some pr.pid;
  m.writer_aw.(v) <- entry.Wbuf.aw;
  note_access m pr v;
  if m.quiet then emit_q pr ~rmr ~critical
  else
    emit m pr
      (Event.Commit_write { var = v; value = entry.Wbuf.value })
      ~remote ~rmr ~critical

let commit_entry m pr (entry : Wbuf.entry) =
  if m.lean then begin
    (* writer / awareness / cache / access accounting is frozen *)
    set_mem m entry.Wbuf.var entry.Wbuf.value;
    Event.dummy
  end
  else commit_entry_full m pr entry

let j_buf_insert m (pr : proc) i entry =
  let f = m.flog in
  Flatstate.push_entry f entry;
  Flatstate.reserve f 2;
  Flatstate.push_unsafe f i;
  Flatstate.push_unsafe f (t_buf_insert lor (pr.pid lsl 4));
  jdone m

let do_commit m pr =
  let entry = Wbuf.pop pr.buf in
  if m.journaling then j_buf_insert m pr 0 entry;
  commit_entry m pr entry

let commit m p =
  let pr = m.procs.(p) in
  if Wbuf.is_empty pr.buf then invalid_arg "Machine.commit: empty buffer";
  j_head m pr;
  let e = do_commit m pr in
  j_refresh m pr;
  e

(* PSO only: commit the pending write to [v] out of order. Under TSO the
   write buffer is FIFO and only the oldest write may become visible. *)
let commit_var m p v =
  if m.cfg.ordering <> Config.Pso then
    invalid_arg "Machine.commit_var: only allowed under PSO ordering";
  let pr = m.procs.(p) in
  j_head m pr;
  let i, entry = Wbuf.pop_var' pr.buf v in
  if m.journaling then j_buf_insert m pr i entry;
  let e = commit_entry m pr entry in
  j_refresh m pr;
  e

let finish_fence m pr =
  let implicit = pr.fence_implicit in
  pr.in_fence <- false;
  pr.fence_implicit <- false;
  if implicit then pr.rmw_fenced <- true;
  if not m.lean then begin
    pr.fences <- pr.fences + 1;
    pr.cur_fences <- pr.cur_fences + 1
  end;
  (* the program continues past an explicit fence only once it completes:
     apply the continuation here, not at BeginFence, so op-boundary
     closures observe the drained buffer *)
  (match pr.cont with
  | Prog.Bind (Prog.Fence, k) -> adv_unit m pr k
  | _ -> ());
  emit_k m pr (Event.End_fence { implicit }) ~remote:false ~rmr:false
    ~critical:false

let do_read m pr v k =
  match Wbuf.find pr.buf v with
  | Some x ->
      let e =
        if m.quiet then emit_q pr ~rmr:false ~critical:false
        else
          emit m pr
            (Event.Read { var = v; value = x; src = Event.From_buffer })
            ~remote:false ~rmr:false ~critical:false
      in
      adv_val m pr k x;
      e
  | None when m.lean ->
      (* cache / awareness / criticality accounting is frozen *)
      adv_val m pr k m.mem.(v);
      Event.dummy
  | None ->
      let remote = is_remote m pr.pid v in
      j_cache m v;
      let rmr, src = Memmodel.read_rmr m.cfg.model m.cache pr.pid v ~remote in
      let critical = read_criticality m pr v ~remote in
      absorb_awareness m pr v;
      note_access m pr v;
      let x = m.mem.(v) in
      let e =
        if m.quiet then emit_q pr ~rmr ~critical
        else
          emit m pr
            (Event.Read { var = v; value = x; src })
            ~remote ~rmr ~critical
      in
      adv_val m pr k x;
      e

let do_issue_write m pr v x k =
  (match Wbuf.push' pr.buf { Wbuf.var = v; value = x; aw = pr.aw } with
  | Some (i, old) ->
      if m.journaling then begin
        let f = m.flog in
        Flatstate.push_entry f old;
        Flatstate.reserve f 2;
        Flatstate.push_unsafe f i;
        Flatstate.push_unsafe f (t_buf_set lor (pr.pid lsl 4));
        jdone m
      end
  | None ->
      if m.journaling then begin
        Flatstate.push m.flog (t_buf_drop_last lor (pr.pid lsl 4));
        jdone m
      end);
  let e =
    if m.quiet then emit_q pr ~rmr:false ~critical:false
    else
      emit m pr
        (Event.Issue_write { var = v; value = x })
        ~remote:false ~rmr:false ~critical:false
  in
  adv_unit m pr k;
  e

(* Explicit fences leave the continuation in place (applied by
   [finish_fence]); implicit RMW drains leave the pending RMW in place. *)
let do_begin_fence m pr ~implicit =
  pr.in_fence <- true;
  pr.fence_implicit <- implicit;
  emit_k m pr (Event.Begin_fence { implicit }) ~remote:false ~rmr:false
    ~critical:false

(* Atomic RMWs access the variable directly in shared memory (their store
   buffer was drained first when [rmw_drains] is set). Criticality follows
   the same rules as a read followed by a write commit. The three
   primitives are specialized — the generic closure-parameterized
   [do_rmw] of the interpreter-only machine allocated three closures per
   RMW step. *)
let rmw_criticality m pr v ~remote ~writes =
  let read_crit = read_criticality m pr v ~remote in
  let write_crit = writes && remote && m.writer.(v) <> Some pr.pid in
  read_crit || write_crit

let[@inline] rmw_install m (pr : proc) v x =
  set_mem m v x;
  j_writer m v;
  m.writer.(v) <- Some pr.pid;
  m.writer_aw.(v) <- pr.aw

let do_cas_full m pr v expected desired (k : bool -> unit Prog.t) =
  let remote = is_remote m pr.pid v in
  let observed = m.mem.(v) in
  let success = Value.equal observed expected in
  let critical = rmw_criticality m pr v ~remote ~writes:success in
  j_cache m v;
  let rmr = Memmodel.rmw_rmr m.cfg.model m.cache pr.pid v ~remote in
  absorb_awareness m pr v;
  note_access m pr v;
  if success then rmw_install m pr v desired;
  pr.rmw_fenced <- false;
  let e =
    if m.quiet then emit_q pr ~rmr ~critical
    else
      emit m pr
        (Event.Cas_ev { var = v; expected; desired; observed; success })
        ~remote ~rmr ~critical
  in
  adv_bool m pr k success;
  e

(* Lean counterparts: memory effect and continuation advance only. *)
let do_cas m pr v expected desired (k : bool -> unit Prog.t) =
  if not m.lean then do_cas_full m pr v expected desired k
  else begin
    let success = Value.equal m.mem.(v) expected in
    if success then set_mem m v desired;
    pr.rmw_fenced <- false;
    adv_bool m pr k success;
    Event.dummy
  end

let do_faa_full m pr v delta (k : Value.t -> unit Prog.t) =
  let remote = is_remote m pr.pid v in
  let observed = m.mem.(v) in
  let critical = rmw_criticality m pr v ~remote ~writes:true in
  j_cache m v;
  let rmr = Memmodel.rmw_rmr m.cfg.model m.cache pr.pid v ~remote in
  absorb_awareness m pr v;
  note_access m pr v;
  rmw_install m pr v (observed + delta);
  pr.rmw_fenced <- false;
  let e =
    if m.quiet then emit_q pr ~rmr ~critical
    else
      emit m pr
        (Event.Faa_ev { var = v; delta; observed })
        ~remote ~rmr ~critical
  in
  adv_val m pr k observed;
  e

let do_faa m pr v delta (k : Value.t -> unit Prog.t) =
  if not m.lean then do_faa_full m pr v delta k
  else begin
    let observed = m.mem.(v) in
    set_mem m v (observed + delta);
    pr.rmw_fenced <- false;
    adv_val m pr k observed;
    Event.dummy
  end

let do_swap_full m pr v x (k : Value.t -> unit Prog.t) =
  let remote = is_remote m pr.pid v in
  let observed = m.mem.(v) in
  let critical = rmw_criticality m pr v ~remote ~writes:true in
  j_cache m v;
  let rmr = Memmodel.rmw_rmr m.cfg.model m.cache pr.pid v ~remote in
  absorb_awareness m pr v;
  note_access m pr v;
  rmw_install m pr v x;
  pr.rmw_fenced <- false;
  let e =
    if m.quiet then emit_q pr ~rmr ~critical
    else
      emit m pr
        (Event.Swap_ev { var = v; stored = x; observed })
        ~remote ~rmr ~critical
  in
  adv_val m pr k observed;
  e

let do_swap m pr v x (k : Value.t -> unit Prog.t) =
  if not m.lean then do_swap_full m pr v x k
  else begin
    let observed = m.mem.(v) in
    set_mem m v x;
    pr.rmw_fenced <- false;
    adv_val m pr k observed;
    Event.dummy
  end

(* Aborting processes are still active: they hold lock-related state and
   contend for shared memory until their cleanup completes. *)
let is_active (pr : proc) =
  pr.sec = Entry || pr.sec = Exiting || pr.sec = Aborting

(* Execute the abortable-waiting marker: a purely local step that moves
   only the per-process flag and the continuation. Emits no trace event
   (the marker is bookkeeping, not a memory operation), so the returned
   event is [Event.dummy] even with recording on. *)
let do_marker m (pr : proc) b (k : unit -> unit Prog.t) =
  pr.abortable <- b;
  adv_unit m pr k;
  Event.dummy

(* --- crash faults ----------------------------------------------------- *)

(* Inject a crash fault into [p]. The process's private state — its
   continuation, fence flags and pending RMW bookkeeping — is wiped and it
   moves to the [Crashed] section, from which its only enabled event is
   [Recover]. The write buffer's fate follows [cfg.crash_semantics]:
   [commit_prefix] oldest entries reach shared memory as ordinary
   [Commit_write] events (so replay, RMR accounting and awareness stay
   exact), the rest are discarded. The prefix length defaults per
   semantics — 0 under [Drop_buffer], the full buffer under
   [Flush_buffer] — and is the adversary's choice under [Atomic_prefix].

   Crashing in the NCS is allowed and is the canonical lost-release
   scenario: after [Exit] the release write may still sit in the buffer. *)
let crash ?commit_prefix m p =
  let pr = m.procs.(p) in
  (match pr.sec with
  | Finished -> invalid_arg "Machine.crash: process already finished"
  | Crashed -> invalid_arg "Machine.crash: process already crashed"
  (* crashing inside the abort cleanup section is explicitly allowed:
     recoverable-abortable locks must tolerate the composition *)
  | Ncs | Entry | Exiting | Aborting -> ());
  let size = Wbuf.size pr.buf in
  let k =
    match (m.cfg.Config.crash_semantics, commit_prefix) with
    | Config.Drop_buffer, (None | Some 0) -> 0
    | Config.Drop_buffer, Some _ ->
        invalid_arg "Machine.crash: Drop_buffer commits no prefix"
    | Config.Flush_buffer, None -> size
    | Config.Flush_buffer, Some k when k = size -> k
    | Config.Flush_buffer, Some _ ->
        invalid_arg "Machine.crash: Flush_buffer commits the whole buffer"
    | Config.Atomic_prefix, None -> 0
    | Config.Atomic_prefix, Some k when k >= 0 && k <= size -> k
    | Config.Atomic_prefix, Some _ ->
        invalid_arg "Machine.crash: prefix exceeds buffer size"
  in
  (* a crash bumps the crash / activity counters regardless of the
     pre-state's pending shape, so it never takes the mini head *)
  j_head ~force_full:true m pr;
  for _ = 1 to k do
    ignore (do_commit m pr)
  done;
  let dropped = Wbuf.size pr.buf in
  if m.journaling && dropped > 0 then begin
    Flatstate.push_entries m.flog (Wbuf.entries pr.buf);
    Flatstate.push m.flog (t_buf_restore lor (pr.pid lsl 4));
    jdone m
  end;
  Wbuf.clear pr.buf;
  if is_active pr then m.active_count <- m.active_count - 1;
  pr.sec <- Crashed;
  pr.cont <- Prog.unit;
  pr.pc <- unit_pc_of m;
  pr.in_fence <- false;
  pr.fence_implicit <- false;
  pr.rmw_fenced <- false;
  pr.needs_recovery <- true;
  pr.abortable <- false;
  pr.crashes <- pr.crashes + 1;
  m.crash_count <- m.crash_count + 1;
  let e =
    if m.quiet then emit_q pr ~rmr:false ~critical:false
    else
      emit m pr
        (Event.Crash { committed = k; dropped })
        ~remote:false ~rmr:false ~critical:false
  in
  j_refresh m pr;
  e

(* --- abort faults ------------------------------------------------------ *)

(* Inject an abort fault into [p]: the adversary times the process out at
   a declared wait point ([abort_deliverable]). Unlike a crash the
   process does not lose state — its write buffer survives untouched and
   it transitions to [Aborting], where its continuation is the
   configuration's abort cleanup section; reaching the cleanup's
   [Return ()] is the [Abort_done] transition back to NCS (no passage is
   counted). An in-progress fence drain is cut short (the cleanup may
   fence again if it needs the drain); the pending RMW it guarded is
   abandoned with the rest of the entry section. *)
let abort m p =
  let pr = m.procs.(p) in
  if Option.is_none m.cfg.Config.abort_section then
    invalid_arg "Machine.abort: configuration has no abort section";
  (match pr.sec with
  | Entry when pr.abortable -> ()
  | Entry -> invalid_arg "Machine.abort: process is not at a wait point"
  | Ncs | Exiting | Finished | Crashed | Aborting ->
      invalid_arg "Machine.abort: process is not in its entry section");
  (* an abort bumps the abort counters regardless of the pre-state's
     pending shape, so it never takes the mini head *)
  j_head ~force_full:true m pr;
  pr.sec <- Aborting;
  pr.abortable <- false;
  pr.in_fence <- false;
  pr.fence_implicit <- false;
  pr.rmw_fenced <- false;
  (* the cleanup continuation is built by Compile.abort_cont on both
     paths — capturing only immutable data — so the structural hash (part
     of the state fingerprint) matches across engines *)
  (match m.code with
  | Some code ->
      let root = Compile.abort_pc code pr.pid in
      if root >= 0 then begin
        pr.pc <- root;
        pr.cont <- Compile.rep code root
      end
      else begin
        pr.pc <- -1;
        pr.cont <- Compile.abort_cont m.cfg pr.pid
      end
  | None -> pr.cont <- Compile.abort_cont m.cfg pr.pid);
  pr.aborts <- pr.aborts + 1;
  m.abort_count <- m.abort_count + 1;
  let e =
    emit_k m pr Event.Abort ~remote:false ~rmr:false ~critical:false
  in
  j_refresh m pr;
  e

let do_abort_done m pr =
  pr.sec <- Ncs;
  pr.cont <- Prog.unit;
  pr.pc <- unit_pc_of m;
  m.active_count <- m.active_count - 1;
  emit_k m pr Event.Abort_done ~remote:false ~rmr:false ~critical:false

let do_recover m pr =
  pr.sec <- Ncs;
  emit_k m pr Event.Recover ~remote:false ~rmr:false ~critical:false

let do_enter m pr =
  pr.sec <- Entry;
  (* The recovering continuation is built by Compile.recovery_cont on
     both paths — capturing only immutable data — so the structural hash
     (part of the state fingerprint) matches across engines. *)
  (match m.code with
  | Some code ->
      let root =
        if pr.needs_recovery && Option.is_some m.cfg.Config.recovery then
          Compile.recover_pc code pr.pid
        else Compile.entry_pc code pr.pid
      in
      if root >= 0 then begin
        pr.pc <- root;
        pr.cont <- Compile.rep code root
      end
      else begin
        pr.pc <- -1;
        pr.cont <-
          (if pr.needs_recovery then Compile.recovery_cont m.cfg pr.pid
           else m.cfg.entry pr.pid)
      end
  | None ->
      pr.cont <-
        (if pr.needs_recovery then Compile.recovery_cont m.cfg pr.pid
         else m.cfg.entry pr.pid));
  pr.needs_recovery <- false;
  m.active_count <- m.active_count + 1;
  if not m.lean then begin
    pr.cur_rmrs <- 0;
    pr.cur_fences <- 0;
    pr.cur_criticals <- 0;
    (* contention accounting: the newcomer joins every in-flight passage's
       interval set, and its own interval set starts from the currently
       active processes *)
    pr.interval_set <- Pidset.singleton pr.pid;
    pr.point_max <- m.active_count;
    Array.iter
      (fun (q : proc) ->
        if is_active q && not (Pid.equal q.pid pr.pid) then begin
          if m.journaling then begin
            let f = m.flog in
            Flatstate.push_set f q.interval_set;
            Flatstate.reserve f 2;
            Flatstate.push_unsafe f q.point_max;
            Flatstate.push_unsafe f (t_contention lor (q.pid lsl 4));
            jdone m
          end;
          q.interval_set <- Pidset.add pr.pid q.interval_set;
          q.point_max <- max q.point_max m.active_count;
          pr.interval_set <- Pidset.add q.pid pr.interval_set
        end)
      m.procs
  end;
  emit_k m pr Event.Enter ~remote:false ~rmr:false ~critical:false

let do_cs m pr =
  if m.cfg.check_exclusion then
    Array.iter
      (fun (q : proc) ->
        if
          (not (Pid.equal q.pid pr.pid))
          && q.sec = Entry && (not q.in_fence)
          && (match q.cont with Prog.Return () -> true | _ -> false)
        then raise (Exclusion_violation { holder = pr.pid; intruder = q.pid }))
      m.procs;
  pr.sec <- Exiting;
  (match m.code with
  | Some code when Compile.exit_pc code pr.pid >= 0 ->
      let pc = Compile.exit_pc code pr.pid in
      pr.pc <- pc;
      pr.cont <- Compile.rep code pc
  | Some _ ->
      pr.pc <- -1;
      pr.cont <- m.cfg.exit_section pr.pid
  | None -> pr.cont <- m.cfg.exit_section pr.pid);
  m.cs_entries <- m.cs_entries + 1;
  emit_k m pr Event.Cs ~remote:false ~rmr:false ~critical:false

let do_exit m pr =
  pr.passages <- pr.passages + 1;
  if m.cfg.Config.record_trace then begin
    Vec.push pr.passage_log
      { p_rmrs = pr.cur_rmrs; p_fences = pr.cur_fences;
        p_criticals = pr.cur_criticals;
        p_interval = Pidset.cardinal pr.interval_set;
        p_point = pr.point_max };
    if m.journaling then begin
      Flatstate.push m.flog (t_passage_pop lor (pr.pid lsl 4));
      jdone m
    end
  end;
  pr.sec <- (if pr.passages >= m.cfg.max_passages then Finished else Ncs);
  m.active_count <- m.active_count - 1;
  emit_k m pr Event.Exit ~remote:false ~rmr:false ~critical:false

(* Execute the process's pending event. This is {!pending} fused with the
   dispatch — classification and execution in one pass over the same
   machine state, without materializing the [pending] variant. *)
let exec_cur m (pr : proc) : Event.t =
  match pr.sec with
  | Finished -> assert false (* filtered by [step] *)
  | Crashed -> do_recover m pr
  | _ when pr.in_fence ->
      if Wbuf.is_empty pr.buf then finish_fence m pr else do_commit m pr
  | Ncs -> do_enter m pr
  | Entry | Exiting | Aborting -> (
      match pr.cont with
      | Prog.Return () ->
          if pr.sec = Entry then do_cs m pr
          else if pr.sec = Exiting then do_exit m pr
          else do_abort_done m pr
      | Prog.Bind (op, k) -> (
          let rmw_needs_fence = m.cfg.rmw_drains && not pr.rmw_fenced in
          match op with
          | Prog.Read v -> do_read m pr v k
          | Prog.Write (v, x) -> do_issue_write m pr v x k
          | Prog.Fence -> do_begin_fence m pr ~implicit:false
          | Prog.Cas (v, expected, desired) ->
              if rmw_needs_fence then do_begin_fence m pr ~implicit:true
              else do_cas m pr v expected desired k
          | Prog.Faa (v, delta) ->
              if rmw_needs_fence then do_begin_fence m pr ~implicit:true
              else do_faa m pr v delta k
          | Prog.Swap (v, x) ->
              if rmw_needs_fence then do_begin_fence m pr ~implicit:true
              else do_swap m pr v x k
          | Prog.Abortable b -> do_marker m pr b k))

(* The journal head is pushed after the finished check (so a raising call
   leaves no record) but before execution: if the event itself raises
   mid-mutation (Exclusion_violation from [do_cs], or a lock program's
   spin-guard exception escaping a continuation), the caller's
   [undo_to mark] still restores the pre-step state exactly — the head
   snapshot plus the fine-grained records cover every partial write. *)
let step m p : Event.t =
  let pr = m.procs.(p) in
  if pr.sec = Finished then raise (Process_finished p);
  j_head m pr;
  let e = exec_cur m pr in
  j_refresh m pr;
  e

(* --- footprints ------------------------------------------------------ *)

(* Shared-memory footprint of the event [step m p] would execute, decided
   from machine state without executing it. This is what lets the model
   checker's partial-order reduction (lib/mcheck) classify moves as
   commuting without trial execution. [F_local] means the event touches
   only process-local state: the process's own buffer, fence flags,
   section bookkeeping and continuation — including reads satisfied by
   store-to-load forwarding, which never reach shared memory. *)
type footprint =
  | F_none  (* finished process: step would raise *)
  | F_local  (* process-local only (buffer push, fence flags, sections) *)
  | F_read of Var.t  (* reads [v] from shared memory *)
  | F_write of Var.t  (* commits a buffered write to [v] *)
  | F_rmw of Var.t  (* atomically reads and writes [v] *)
  | F_cs  (* CS execution: reads every process's entry progress *)

let step_footprint m p : footprint =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> F_none
  | P_enter | P_exit | P_recover | P_marker _ | P_abort_done -> F_local
  | P_cs -> F_cs
  | P_begin_fence | P_end_fence | P_rmw_fence -> F_local
  | P_issue_write _ -> F_local
  | P_commit v -> F_write v
  | P_read v -> if Wbuf.find pr.buf v <> None then F_local else F_read v
  | P_cas (v, _, _) | P_faa (v, _) | P_swap (v, _) -> F_rmw v

(* Packed [step_footprint]: the constructor tag in the low 3 bits
   (0 = none, 1 = local, 2 = read, 3 = write, 4 = rmw, 5 = cs) and the
   variable — when the class carries one — in the bits above. Same
   discrimination as [step_footprint], but no [pending] payload or
   footprint constructor is allocated: the explorer's scratch-footprint
   path ({!Footprint.of_move_into}) calls this for every enabled move of
   every node. *)
let step_footprint_packed m p =
  let pr = m.procs.(p) in
  match pr.sec with
  | Finished -> 0
  | Crashed -> 1
  | _ when pr.in_fence ->
      if Wbuf.is_empty pr.buf then 1 else 3 lor (Wbuf.peek_var pr.buf lsl 3)
  | Ncs -> 1
  | Entry | Exiting | Aborting -> (
      match pr.cont with
      | Prog.Return () -> if pr.sec = Entry then 5 else 1
      | Prog.Bind (op, _) -> (
          let rmw_needs_fence = m.cfg.rmw_drains && not pr.rmw_fenced in
          match op with
          | Prog.Read v -> if Wbuf.mem pr.buf v then 1 else 2 lor (v lsl 3)
          | Prog.Write _ | Prog.Fence | Prog.Abortable _ -> 1
          | Prog.Cas (v, _, _) | Prog.Faa (v, _) | Prog.Swap (v, _) ->
              if rmw_needs_fence then 1 else 4 lor (v lsl 3)))

(* Could [step m p] leave the process CS-enabled (in its entry section
   with a completed entry program, outside any fence)? Conservative: true
   whenever the event advances the continuation of a process that is (or
   becomes) in Entry — the continuation's remainder cannot be inspected
   without running its closures. An implicit RMW drain's EndFence leaves
   the pending RMW in place, so it never completes the section. *)
let step_may_enable_cs m p =
  let pr = m.procs.(p) in
  match pending_class m p with
  | K_enter -> true
  | K_end_fence -> pr.sec = Entry && not pr.fence_implicit
  | K_read | K_issue_write | K_cas | K_faa | K_swap -> pr.sec = Entry
  | K_marker -> pr.sec = Entry
  | K_done | K_cs | K_exit | K_begin_fence | K_rmw_fence | K_commit
  | K_recover | K_abort_done ->
      false

(* --- classification helpers for adversaries ------------------------- *)

(* Would the pending event of [p] be special (Definition 3) if executed now?
   Decided from machine state without executing it. *)
let pending_is_special m p =
  let pr = m.procs.(p) in
  match pending m p with
  | P_done -> false
  | P_enter | P_cs | P_exit | P_recover | P_abort_done -> true
  | P_begin_fence | P_end_fence | P_rmw_fence -> true
  | P_issue_write _ | P_marker _ -> false
  | P_read v ->
      (match Wbuf.find pr.buf v with
      | Some _ -> false
      | None ->
          let remote = is_remote m p v in
          remote && not (Hashtbl.mem pr.remote_reads v))
  | P_commit v ->
      let remote = is_remote m p v in
      remote && m.writer.(v) <> Some p
  | P_cas (v, _, _) | P_faa (v, _) | P_swap (v, _) ->
      (* conservatively special: RMWs both read and write the variable *)
      let remote = is_remote m p v in
      remote
      && (m.writer.(v) <> Some p || not (Hashtbl.mem pr.remote_reads v))

(* Run [p] while its pending event is neither special nor [P_done], up to
   [fuel] events. Returns the number of events executed and the reason for
   stopping. *)
type stop_reason = At_special | Done_ | Out_of_fuel

let run_until_special ?(fuel = 100_000) m p =
  let rec go steps fuel =
    if fuel <= 0 then (steps, Out_of_fuel)
    else
      match pending m p with
      | P_done -> (steps, Done_)
      | _ when pending_is_special m p -> (steps, At_special)
      | _ ->
          ignore (step m p);
          go (steps + 1) (fuel - 1)
  in
  go 0 fuel

(* Run [p] until it has completed [k] passages or fuel runs out. *)
let run_until_passages ?(fuel = 1_000_000) m p ~target =
  let rec go fuel =
    if m.procs.(p).passages >= target then true
    else if fuel <= 0 then false
    else
      match pending m p with
      | P_done -> m.procs.(p).passages >= target
      | _ ->
          ignore (step m p);
          go (fuel - 1)
  in
  go fuel

(* --- journal public interface ---------------------------------------- *)

module Journal = struct
  type mark = int

  let enable m =
    if not m.journaling then begin
      Flatstate.clear m.flog;
      m.journaling <- true;
      m.j_peak <- 0;
      m.j_records <- 0;
      for p = 0 to Array.length m.procs - 1 do
        m.fp_proc.(p) <- proc_term m p
      done;
      m.fp <- fingerprint m
    end

  let disable m =
    m.journaling <- false;
    Flatstate.clear m.flog

  let enabled m = m.journaling
  let mark m = Flatstate.length m.flog
  let undo_to m (mk : mark) = undo_to m mk
  let depth m = Flatstate.length m.flog
  let peak m = m.j_peak
  let records m = m.j_records
end

(* --- structural equality ---------------------------------------------- *)

(* Structural equality of machine {e state} (journal bookkeeping and the
   configuration are excluded). Continuations are compared physically:
   closures have no structural equality, and both [clone] and the journal
   restore the very same continuation value, which is exactly the
   guarantee the journal tests need. *)
let entry_equal (a : Wbuf.entry) (b : Wbuf.entry) =
  Var.equal a.Wbuf.var b.Wbuf.var
  && Value.equal a.Wbuf.value b.Wbuf.value
  && Pidset.equal a.Wbuf.aw b.Wbuf.aw

let proc_equal (a : proc) (b : proc) =
  Pid.equal a.pid b.pid && a.sec = b.sec && a.cont == b.cont
  && a.pc = b.pc
  && a.in_fence = b.in_fence
  && a.fence_implicit = b.fence_implicit
  && a.rmw_fenced = b.rmw_fenced
  && Pidset.equal a.aw b.aw
  && a.passages = b.passages && a.rmrs = b.rmrs && a.fences = b.fences
  && a.criticals = b.criticals && a.cur_rmrs = b.cur_rmrs
  && a.cur_fences = b.cur_fences
  && a.cur_criticals = b.cur_criticals
  && Pidset.equal a.interval_set b.interval_set
  && a.point_max = b.point_max
  && a.crashes = b.crashes
  && a.needs_recovery = b.needs_recovery
  && a.abortable = b.abortable
  && a.aborts = b.aborts
  && (let ea = Wbuf.entries a.buf and eb = Wbuf.entries b.buf in
      Array.length ea = Array.length eb && Array.for_all2 entry_equal ea eb)
  && Hashtbl.length a.remote_reads = Hashtbl.length b.remote_reads
  && Hashtbl.fold
       (fun v () acc -> acc && Hashtbl.mem b.remote_reads v)
       a.remote_reads true
  && Vec.to_array a.passage_log = Vec.to_array b.passage_log

let equal a b =
  Array.length a.mem = Array.length b.mem
  && Array.length a.procs = Array.length b.procs
  && a.mem = b.mem && a.writer = b.writer
  && Array.for_all2 Pidset.equal a.writer_aw b.writer_aw
  && Array.for_all2 Pidset.equal a.accessed b.accessed
  && Array.for_all2 proc_equal a.procs b.procs
  && Cache.equal a.cache b.cache
  && a.cs_entries = b.cs_entries
  && a.active_count = b.active_count
  && a.crash_count = b.crash_count
  && a.abort_count = b.abort_count
  && Vec.to_array a.trace = Vec.to_array b.trace
