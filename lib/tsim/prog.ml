(* Process programs as a free monad over shared-memory operations.

   A program is a deterministic description of what a process does between
   transition events: it reads and writes shared variables, issues fences,
   and may use comparison primitives (CAS / fetch-and-add / swap), which the
   paper's tradeoff explicitly covers. Determinism given read values is what
   makes the trace-erasure machinery of the lower-bound construction
   (Lemmas 1 and 4) executable: erasing a set of processes re-runs the
   remaining programs against the filtered trace. *)

open Ids

type _ op =
  | Read : Var.t -> Value.t op
  | Write : Var.t * Value.t -> unit op
  | Fence : unit op
  | Cas : Var.t * Value.t * Value.t -> bool op
      (* [Cas (v, expected, desired)] *)
  | Faa : Var.t * Value.t -> Value.t op
      (* [Faa (v, delta)] returns the previous value *)
  | Swap : Var.t * Value.t -> Value.t op
      (* [Swap (v, x)] atomically stores [x], returns the previous value *)
  | Abortable : bool -> unit op
      (* abortable-waiting marker: a purely local step that declares (true)
         or retracts (false) that the process is at a wait point where an
         adversary-injected abort may be delivered. Touches no shared
         memory and emits no trace event; it only moves the per-process
         abortable flag, which gates [Machine.abort]. *)

type 'a t =
  | Return : 'a -> 'a t
  | Bind : 'b op * ('b -> 'a t) -> 'a t

let return x = Return x

let rec bind m f =
  match m with
  | Return x -> f x
  | Bind (op, k) -> Bind (op, fun x -> bind (k x) f)

let ( let* ) = bind
let ( >>= ) = bind
let map m f = bind m (fun x -> Return (f x))
let ( let+ ) = map

let read v = Bind (Read v, return)
let write v x = Bind (Write (v, x), return)
let fence = Bind (Fence, return)
let cas v ~expected ~desired = Bind (Cas (v, expected, desired), return)
let faa v delta = Bind (Faa (v, delta), return)
let swap v x = Bind (Swap (v, x), return)

let unit = Return ()

(* Sequencing helpers used all over the lock implementations. *)

let rec seq = function
  | [] -> Return ()
  | m :: ms -> bind m (fun () -> seq ms)

let rec for_ lo hi body =
  if lo > hi then Return () else bind (body lo) (fun () -> for_ (lo + 1) hi body)

(* Bounded busy-wait: spin reading [v] until [cond] holds on the value read.
   Unbounded spinning would make the simulator diverge under schedules that
   never satisfy the condition, so every spin carries a fuel bound; exceeding
   it raises [Spin_exhausted], which the harnesses surface as a liveness
   diagnosis rather than an infinite loop. *)

exception Spin_exhausted of Var.t

(* Default fuel for busy-waits. The model checker (lib/mcheck) shrinks it
   during state-space exploration, since every spin iteration is a
   distinct continuation state. *)
let default_spin_fuel = ref 1_000_000

let spin_until ?fuel v cond =
  let fuel = match fuel with Some f -> f | None -> !default_spin_fuel in
  let rec go n =
    if n <= 0 then raise (Spin_exhausted v)
    else
      let* x = read v in
      if cond x then Return x else go (n - 1)
  in
  go fuel

let rec repeat_until body cond =
  let* x = body in
  if cond x then Return x else repeat_until body cond

(* Abortable-waiting markers. While the flag is up, the adversary may
   deliver an abort at any scheduling point; lock code brackets exactly
   its declared wait loops with it so cleanup sections only ever observe
   well-defined intermediate states. *)

let abortable b = Bind (Abortable b, return)

let abortably body =
  let* () = abortable true in
  let* x = body in
  let* () = abortable false in
  Return x

let abortable_spin_until ?fuel v cond = abortably (spin_until ?fuel v cond)

(* Retry/backoff idiom: run an optimistic [attempt] (true = success);
   on failure, wait politely by re-reading [v] — the backoff knob, an
   exponentially growing number of local cache re-reads — and retry.
   The wait is the abortable window: acquiring code that loses the race
   can be aborted while backing off, never mid-attempt. Fuel bounds the
   number of attempts exactly like [spin_until] bounds reads. *)
let retry_backoff ?fuel ?(delay = 1) v attempt =
  let fuel = match fuel with Some f -> f | None -> !default_spin_fuel in
  let rec go n delay =
    let* ok = attempt in
    if ok then unit
    else if n <= 1 then raise (Spin_exhausted v)
    else
      let rec wait k =
        if k <= 0 then go (n - 1) (2 * delay)
        else
          let* _ = read v in
          wait (k - 1)
      in
      abortably (wait delay)
  in
  go fuel delay

(* Shared-memory footprint of the head operation, decided without running
   it. [`Write] covers the *issue* of a write (buffer insertion); whether
   the issue or the eventual commit touches shared memory is the
   machine's business ([Machine.step_footprint] refines this with buffer
   and fence state). *)
let head_footprint : type a. a t -> [ `Return | `Read of Var.t | `Write of Var.t | `Fence | `Rmw of Var.t | `Marker ]
    = function
  | Return _ -> `Return
  | Bind (Read v, _) -> `Read v
  | Bind (Write (v, _), _) -> `Write v
  | Bind (Fence, _) -> `Fence
  | Bind (Cas (v, _, _), _) -> `Rmw v
  | Bind (Faa (v, _), _) -> `Rmw v
  | Bind (Swap (v, _), _) -> `Rmw v
  | Bind (Abortable _, _) -> `Marker

(* Describe the head operation of a program, for debugging output. *)
let head_to_string : type a. a t -> string = function
  | Return _ -> "return"
  | Bind (Read v, _) -> Printf.sprintf "read v%d" (Var.to_int v)
  | Bind (Write (v, x), _) -> Printf.sprintf "write v%d:=%d" (Var.to_int v) x
  | Bind (Fence, _) -> "fence"
  | Bind (Cas (v, e, d), _) -> Printf.sprintf "cas v%d %d->%d" (Var.to_int v) e d
  | Bind (Faa (v, d), _) -> Printf.sprintf "faa v%d +%d" (Var.to_int v) d
  | Bind (Swap (v, x), _) -> Printf.sprintf "swap v%d %d" (Var.to_int v) x
  | Bind (Abortable b, _) -> if b then "abortable on" else "abortable off"
