(* Process, variable and value identifiers.

   Processes and variables are dense integers so that machine state can live
   in flat arrays. Values are plain integers; the model only needs equality
   and arithmetic (for fetch-and-add). *)

module Pid = struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let hash = Fun.id
  let to_int = Fun.id
  let of_int i = i
  let to_string p = "p" ^ string_of_int p
  let pp fmt p = Format.fprintf fmt "p%d" p
end

module Var = struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let hash = Fun.id
  let to_int = Fun.id
  let of_int i = i
  let pp fmt v = Format.fprintf fmt "v%d" v
end

module Value = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let zero = 0
  let pp fmt v = Format.fprintf fmt "%d" v
end

(* Immutable bitset over process ids.

   Awareness propagation, Accessed(v,E) updates and contention accounting
   touch process sets on nearly every machine event, so the representation
   matters: sets over pids < [small_capacity] (= 62) are a single OCaml
   int, and union/add/mem/diff are one ALU op each versus O(log n) pointer
   chasing for [Set.Make(Int)]. That covers every model-checking workload
   (n <= 4) and the paper's small-n experiments.

   Guard and fallback: ids must be non-negative ([Invalid_argument]
   otherwise), and a set that ever receives an id >= 62 transparently
   widens to a multi-word bitset ([Large], 62 bits per word so word 0
   coincides with the small form) — correct at any n, just not
   allocation-free. Representations are kept canonical (a set whose
   elements all fit one word is always [Small], and [Large] arrays carry
   no trailing zero words), so structural equality coincides with set
   equality. *)
module Pidset = struct
  type elt = int

  type t =
    | Small of int  (* bit p <=> pid p, for pids 0..61 *)
    | Large of int array
        (* bit i of word w <=> pid (62*w + i); length >= 2, no trailing
           zero word *)

  let small_capacity = 62
  let word p = p / small_capacity
  let bit p = p mod small_capacity

  let check p =
    if p < 0 then invalid_arg (Printf.sprintf "Pidset: negative pid %d" p)

  (* Canonicalize a word array into Small when it fits. *)
  let of_words ws =
    let n = Array.length ws in
    let last = ref (n - 1) in
    while !last > 0 && ws.(!last) = 0 do
      decr last
    done;
    if !last = 0 then Small ws.(0)
    else if !last = n - 1 then Large ws
    else Large (Array.sub ws 0 (!last + 1))

  let words = function Small b -> [| b |] | Large ws -> ws

  let empty = Small 0
  let is_empty = function Small 0 -> true | _ -> false

  let mem p s =
    p >= 0
    &&
    match s with
    | Small b -> p < small_capacity && b land (1 lsl p) <> 0
    | Large ws ->
        let w = word p in
        w < Array.length ws && ws.(w) land (1 lsl bit p) <> 0

  let add p s =
    check p;
    match s with
    | Small b when p < small_capacity -> Small (b lor (1 lsl p))
    | _ ->
        let ws = words s in
        let n = max (Array.length ws) (word p + 1) in
        let out = Array.make n 0 in
        Array.blit ws 0 out 0 (Array.length ws);
        out.(word p) <- out.(word p) lor (1 lsl bit p);
        of_words out

  let singleton p =
    check p;
    if p < small_capacity then Small (1 lsl p)
    else add p empty

  let remove p s =
    if p < 0 then s
    else
      match s with
      | Small b ->
          if p < small_capacity then Small (b land lnot (1 lsl p)) else s
      | Large ws ->
          let w = word p in
          if w >= Array.length ws then s
          else begin
            let out = Array.copy ws in
            out.(w) <- out.(w) land lnot (1 lsl bit p);
            of_words out
          end

  let union a b =
    match (a, b) with
    | Small x, Small y -> Small (x lor y)
    | _ ->
        let wa = words a and wb = words b in
        let la = Array.length wa and lb = Array.length wb in
        let out = Array.make (max la lb) 0 in
        for i = 0 to Array.length out - 1 do
          out.(i) <-
            (if i < la then wa.(i) else 0) lor (if i < lb then wb.(i) else 0)
        done;
        of_words out

  let inter a b =
    match (a, b) with
    | Small x, Small y -> Small (x land y)
    | _ ->
        let wa = words a and wb = words b in
        let n = min (Array.length wa) (Array.length wb) in
        of_words (Array.init (max n 1) (fun i ->
            if i < n then wa.(i) land wb.(i) else 0))

  let diff a b =
    match (a, b) with
    | Small x, Small y -> Small (x land lnot y)
    | _ ->
        let wa = words a and wb = words b in
        let lb = Array.length wb in
        of_words
          (Array.mapi
             (fun i x -> if i < lb then x land lnot wb.(i) else x)
             wa)

  (* canonical representations: structural comparison is set comparison *)
  let equal (a : t) b = a = b
  let compare (a : t) b = Stdlib.compare a b

  let subset a b =
    match (a, b) with
    | Small x, Small y -> x land lnot y = 0
    | _ ->
        let wa = words a and wb = words b in
        let lb = Array.length wb in
        let rec go i =
          i >= Array.length wa
          || (wa.(i) land lnot (if i < lb then wb.(i) else 0) = 0
             && go (i + 1))
        in
        go 0

  let disjoint a b = is_empty (inter a b)

  (* Kernighan popcount: one iteration per set bit. *)
  let popcount b =
    let rec go b acc = if b = 0 then acc else go (b land (b - 1)) (acc + 1) in
    go b 0

  let cardinal = function
    | Small b -> popcount b
    | Large ws -> Array.fold_left (fun acc w -> acc + popcount w) 0 ws

  (* Index of the lowest set bit of [b], where [b = x land (-x)]. *)
  let lowest_index b =
    let rec go i b = if b land 1 = 1 then i else go (i + 1) (b lsr 1) in
    go 0 b

  (* Fold set bits of one word in ascending pid order. *)
  let fold_word f base w acc =
    let rec go b acc =
      if b = 0 then acc
      else go (b land (b - 1)) (f (base + lowest_index (b land -b)) acc)
    in
    go w acc

  let fold f s acc =
    match s with
    | Small b -> fold_word f 0 b acc
    | Large ws ->
        let acc = ref acc in
        Array.iteri
          (fun i w -> acc := fold_word f (i * small_capacity) w !acc)
          ws;
        !acc

  let iter f s = fold (fun p () -> f p) s ()
  let elements s = List.rev (fold (fun p acc -> p :: acc) s [])
  let to_list = elements
  let of_list ps = List.fold_left (fun s p -> add p s) empty ps
  let to_seq s = List.to_seq (elements s)

  let min_elt_opt = function
    | Small 0 -> None
    | Small b -> Some (lowest_index (b land -b))
    | Large ws ->
        let rec go i =
          if i >= Array.length ws then None
          else if ws.(i) = 0 then go (i + 1)
          else
            Some
              ((i * small_capacity) + lowest_index (ws.(i) land -ws.(i)))
        in
        go 0

  let min_elt s =
    match min_elt_opt s with Some p -> p | None -> raise Not_found

  let highest_index w =
    let rec go i w = if w = 1 then i else go (i + 1) (w lsr 1) in
    go 0 w

  let max_elt_opt = function
    | Small 0 -> None
    | Small b -> Some (highest_index b)
    | Large ws ->
        (* canonical: the last word is non-zero *)
        let i = Array.length ws - 1 in
        Some ((i * small_capacity) + highest_index ws.(i))

  let max_elt s =
    match max_elt_opt s with Some p -> p | None -> raise Not_found

  let choose = min_elt
  let choose_opt = min_elt_opt
  let for_all pred s = fold (fun p acc -> acc && pred p) s true
  let exists pred s = fold (fun p acc -> acc || pred p) s false

  let filter pred s =
    fold (fun p acc -> if pred p then add p acc else acc) s empty

  let partition pred s = (filter pred s, filter (fun p -> not (pred p)) s)
  let map f s = fold (fun p acc -> add (f p) acc) s empty

  let pp fmt s =
    Format.fprintf fmt "{%s}"
      (String.concat "," (List.map Pid.to_string (elements s)))
end

module Varset = Set.Make (Int)
module Pidmap = Map.Make (Int)
module Varmap = Map.Make (Int)
