(** Generic schedulers over the machine: round robin, seeded random, the
    paper's canonical commit-delaying schedule, and solo runs. The
    lower-bound adversary drives the machine directly instead. *)

open Ids

type outcome = {
  steps_taken : int;
  all_finished : bool;
  livelocked : Pid.t option;  (** a process whose spin fuel ran out *)
}

val runnable : Machine.t -> Pid.t -> bool
val live_pids : Machine.t -> Pid.t list

val round_robin : ?quantum:int -> ?max_steps:int -> Machine.t -> outcome
(** Cycle over live processes, [quantum] events each. *)

val random :
  ?seed:int ->
  ?commit_bias:float ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  ?abort_prob:float ->
  ?max_aborts:int ->
  ?max_steps:int ->
  Machine.t ->
  outcome
(** Uniformly random process choice; with probability [commit_bias] commit
    a buffered write of the chosen process even outside fences. With
    [crash_prob > 0] the chosen process is instead crashed with that
    probability while fewer than [max_crashes] (default 0) crashes have
    happened; crashed processes are stepped back through recovery like
    any other live process. [abort_prob] does the same against
    [max_aborts]: a process sitting at a declared wait point
    ({!Machine.abort_deliverable}) is aborted instead of stepped. *)

val canonical_random : ?seed:int -> ?max_steps:int -> Machine.t -> outcome
(** The paper's canonical regime: commits happen only inside fences. *)

val solo : ?max_steps:int -> Machine.t -> Pid.t -> outcome
(** Run one process alone to completion (weak obstruction-freedom says it
    must finish). *)
