(* Machine configuration.

   A configuration fixes everything a deterministic replay needs: the number
   of processes, the memory/cost model, the shared-variable layout, the
   per-process entry and exit section programs, and the RMW-fencing
   convention. Erasure (lib/trace) re-creates machines from the same
   configuration, which is why programs live here rather than being fed to
   the machine imperatively. *)

open Ids

type mem_model =
  | Dsm  (* distributed shared memory: remote accesses are RMRs *)
  | Cc_wt  (* cache-coherent, write-through protocol *)
  | Cc_wb  (* cache-coherent, write-back protocol *)

let mem_model_name = function
  | Dsm -> "DSM"
  | Cc_wt -> "CC-WT"
  | Cc_wb -> "CC-WB"

(* Store ordering. TSO (the paper's model) commits buffered writes in issue
   order; PSO (Section 6 / SPARC PSO) additionally lets writes to different
   variables commit out of order — the scheduler may commit any buffered
   write, not just the oldest. *)
type ordering = Tso | Pso

let ordering_name = function Tso -> "TSO" | Pso -> "PSO"

(* What happens to a crashed process's write buffer (recoverable mutual
   exclusion literature; cf. Chan & Woelfel and Golab & Ramaraju):

   - [Drop_buffer]: pending writes vanish — crashes erase everything that
     had not reached shared memory (the strictest model; a buffered lock
     release is simply lost).
   - [Flush_buffer]: the whole buffer commits atomically at the crash —
     the hardware drains the store buffer as part of failure containment.
   - [Atomic_prefix]: an adversary-chosen FIFO prefix of the buffer
     commits and the rest is dropped — the general "the machine died
     partway through the drain" model. The surviving prefix length is a
     scheduler choice ([Machine.crash ~commit_prefix]); the explorer
     branches over every prefix. *)
type crash_semantics = Drop_buffer | Flush_buffer | Atomic_prefix

let crash_semantics_name = function
  | Drop_buffer -> "drop-buffer"
  | Flush_buffer -> "flush-buffer"
  | Atomic_prefix -> "atomic-prefix"

(* How the explorer expands children:

   - [`Journal]: step the node's machine in place, recurse, then roll it
     back through the mutation journal (Machine.Journal) — O(touched
     words) per node instead of O(state), with incrementally-maintained
     fingerprints. The default.
   - [`Clone]: copy the machine per child (the pre-PR5 engine); kept
     selectable for differential testing and as a fallback.
   - [`Compiled]: journal engine on top of compile-ahead program
     execution (Compile): continuations interned into a flat instruction
     array, cached structural hashes, allocation-free steps. Verdicts,
     node counts and fingerprints are identical to [`Journal]. *)
type engine = [ `Clone | `Journal | `Compiled ]

let engine_name = function
  | `Clone -> "clone"
  | `Journal -> "journal"
  | `Compiled -> "compiled"

(* Default engine for configurations that do not pick one explicitly.
   The PA_ENGINE environment variable overrides it ("journal", "clone",
   "compiled") so CI can run every existing suite under another engine
   without touching the suites; unknown values fall back to the
   journal engine. *)
let default_engine () : engine =
  match Sys.getenv_opt "PA_ENGINE" with
  | Some "compiled" -> `Compiled
  | Some "clone" -> `Clone
  | Some _ | None -> `Journal

(* How the explorer remembers visited states:

   - [Store_exact]: every distinct fingerprint is kept (a hash table at
     one domain, the shared lock-free store in parallel mode). Exact
     dedup; memory grows with the reachable space. The default. The
     shared store caps at 2^23 slots: past ~8M states parallel exact
     mode drops (counts, confesses in the verdict) overflowing states
     and re-explores them, where the sequential hash table just grows —
     prefer [Store_bounded] for spaces that big.
   - [Store_bitstate]: SPIN-style bitstate/supertrace hashing — [hashes]
     hash functions into a bit array of 2^[log2_bits] bits. Memory is
     fixed; distinct states may alias (the search then under-approximates
     coverage), and the explorer reports a measured omission-probability
     estimate in its stats. Sleep-set pruning is suspended at admitted
     states under this mode, so aliasing is the only omission source.
   - [Store_bounded]: exact fingerprints in a fixed table of
     2^[log2_slots] slots with eviction on collision-window overflow.
     Memory is fixed and the search stays exhaustive: an evicted state
     reached again is simply re-explored (the cost is time, counted as
     [store_evictions], never soundness). *)
type store_mode =
  | Store_exact
  | Store_bitstate of { log2_bits : int; hashes : int }
  | Store_bounded of { log2_slots : int }

let store_mode_name = function
  | Store_exact -> "exact"
  | Store_bitstate { log2_bits; hashes } ->
      Printf.sprintf "bitstate(2^%d bits, k=%d)" log2_bits hashes
  | Store_bounded { log2_slots } ->
      Printf.sprintf "bounded(2^%d slots)" log2_slots

type t = {
  n : int;  (* number of processes *)
  model : mem_model;
  ordering : ordering;
  layout : Layout.t;
  entry : Pid.t -> unit Prog.t;  (* entry-section program for one passage *)
  exit_section : Pid.t -> unit Prog.t;
  max_passages : int;  (* passages per process before it finishes *)
  rmw_drains : bool;
      (* atomic RMWs drain the store buffer and count one fence, as on x86;
         the paper's tradeoff covers comparison primitives either way *)
  check_exclusion : bool;  (* detect two simultaneously-enabled CS events *)
  record_trace : bool;
      (* emit events into the machine trace and passage log; exploration
         turns this off so Machine.clone is O(state), not O(depth) *)
  crash_semantics : crash_semantics;
      (* fate of the write buffer when a process crashes *)
  recovery : (Pid.t -> unit Prog.t) option;
      (* recovery section run before the entry section on the first
         passage after a crash; [None] restarts at the entry label with
         no repair step (the non-recoverable baseline) *)
  abort_section : (Pid.t -> unit Prog.t) option;
      (* cleanup section run when the adversary aborts the process at a
         declared wait point ([Machine.abort]); must leave the lock
         reusable in a statically bounded number of own-steps. [None]
         means the lock is not abortable: abort moves are never
         deliverable *)
  engine : engine;
      (* exploration child-expansion strategy (journal vs clone) *)
  pure_programs : bool;
      (* declared promise that [entry]/[exit_section]/[recovery] and every
         continuation they build are effect-free: constructing a program
         twice yields structurally identical terms and applying a
         continuation has no observable effect besides its result. The
         compile-ahead engine ([`Compiled]) caches interned continuations
         and applies them at most once each, which is only faithful under
         this promise — locks that pass per-passage scratch through
         mutable OCaml arrays (ticket, CLH, the adaptive tree) must leave
         it false, and [`Compiled] then degrades to the journal
         interpreter for them *)
  store : store_mode;
      (* exploration seen-state memory policy (exact vs memory-bounded) *)
}

let make ?(model = Cc_wb) ?(ordering = Tso) ?(max_passages = 1)
    ?(rmw_drains = true) ?(check_exclusion = true) ?(record_trace = true)
    ?(crash_semantics = Drop_buffer) ?recovery ?abort_section ?engine
    ?(pure_programs = false) ?(store = Store_exact) ~n ~layout ~entry
    ~exit_section () =
  if n <= 0 then invalid_arg "Config.make: n must be positive";
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  (match store with
  | Store_exact -> ()
  | Store_bitstate { log2_bits; hashes } ->
      if log2_bits < 10 || log2_bits > 36 then
        invalid_arg "Config.make: bitstate log2_bits must be in [10, 36]";
      if hashes < 1 || hashes > 8 then
        invalid_arg "Config.make: bitstate hashes must be in [1, 8]"
  | Store_bounded { log2_slots } ->
      if log2_slots < 8 || log2_slots > 30 then
        invalid_arg "Config.make: bounded log2_slots must be in [8, 30]");
  { n; model; ordering; layout; entry; exit_section; max_passages;
    rmw_drains; check_exclusion; record_trace; crash_semantics; recovery;
    abort_section; engine; pure_programs; store }

let summary c =
  Printf.sprintf
    "n=%d model=%s ordering=%s passages=%d engine=%s store=%s crash=%s%s%s"
    c.n (mem_model_name c.model) (ordering_name c.ordering) c.max_passages
    (engine_name c.engine) (store_mode_name c.store)
    (crash_semantics_name c.crash_semantics)
    (if c.recovery = None then "" else " recovery")
    (if c.abort_section = None then "" else " abortable")
