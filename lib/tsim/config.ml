(* Machine configuration.

   A configuration fixes everything a deterministic replay needs: the number
   of processes, the memory/cost model, the shared-variable layout, the
   per-process entry and exit section programs, and the RMW-fencing
   convention. Erasure (lib/trace) re-creates machines from the same
   configuration, which is why programs live here rather than being fed to
   the machine imperatively. *)

open Ids

type mem_model =
  | Dsm  (* distributed shared memory: remote accesses are RMRs *)
  | Cc_wt  (* cache-coherent, write-through protocol *)
  | Cc_wb  (* cache-coherent, write-back protocol *)

let mem_model_name = function
  | Dsm -> "DSM"
  | Cc_wt -> "CC-WT"
  | Cc_wb -> "CC-WB"

(* Store ordering. TSO (the paper's model) commits buffered writes in issue
   order; PSO (Section 6 / SPARC PSO) additionally lets writes to different
   variables commit out of order — the scheduler may commit any buffered
   write, not just the oldest. *)
type ordering = Tso | Pso

let ordering_name = function Tso -> "TSO" | Pso -> "PSO"

type t = {
  n : int;  (* number of processes *)
  model : mem_model;
  ordering : ordering;
  layout : Layout.t;
  entry : Pid.t -> unit Prog.t;  (* entry-section program for one passage *)
  exit_section : Pid.t -> unit Prog.t;
  max_passages : int;  (* passages per process before it finishes *)
  rmw_drains : bool;
      (* atomic RMWs drain the store buffer and count one fence, as on x86;
         the paper's tradeoff covers comparison primitives either way *)
  check_exclusion : bool;  (* detect two simultaneously-enabled CS events *)
  record_trace : bool;
      (* emit events into the machine trace and passage log; exploration
         turns this off so Machine.clone is O(state), not O(depth) *)
}

let make ?(model = Cc_wb) ?(ordering = Tso) ?(max_passages = 1)
    ?(rmw_drains = true) ?(check_exclusion = true) ?(record_trace = true) ~n
    ~layout ~entry ~exit_section () =
  if n <= 0 then invalid_arg "Config.make: n must be positive";
  { n; model; ordering; layout; entry; exit_section; max_passages;
    rmw_drains; check_exclusion; record_trace }
