(** Compile-ahead execution of process programs (the [`Compiled] engine).

    Lowers the free-monad programs of a {!Config.t} into a flat
    instruction array by {e interning} continuations: an instruction is
    one reachable continuation, identified by a program counter, with its
    structural hash cached and its control-flow edges resolved at most
    once (eagerly for unit/bool-result operations, on demand for
    value-result ones). The machine advances processes by following
    edges — no closure application, no structural hashing — and falls
    back to the interpreter per process ([pc = -1]) whenever an edge
    cannot be compiled, so compilation never makes a runnable program
    fail and fingerprints stay bit-identical across engines.

    Thread-safe: one compiled program is shared by every machine (and
    every domain) exploring the same configuration. *)

type error =
  | Program_too_large of { pid : Ids.Pid.t; limit : int }
      (** A section root unrolls into more distinct continuations than the
          instruction budget — an unboundedly growing operation chain. *)
  | Opaque_continuation of { pid : Ids.Pid.t; reason : string }
      (** A section root captures values that cannot be interned
          structurally (e.g. a channel or mutex in its register frame). *)

exception Error of error

val error_to_string : error -> string

type t

val make : ?max_instrs:int -> ?max_fanout:int -> Config.t -> t
(** Compile a configuration's programs. [max_instrs] bounds the code
    store (default 65536); [max_fanout] bounds the per-instruction
    value-edge table (default 64), past which new read results fall back
    to the interpreter for that process.

    @raise Error when a section root is broken ahead of execution; see
    {!error}. Runtime-only conditions (an exotic continuation deep in a
    program) degrade silently instead. *)

val get : Config.t -> t
(** [make] behind a bounded cache keyed on the configuration's program
    sources (physical identity of entry/exit/recovery, process count)
    and the current [!Prog.default_spin_fuel]. Use this on hot paths:
    exploration re-creates machines from the same configuration
    constantly. *)

val hash_cont : unit Prog.t -> int
(** Structural hash of a continuation — the fingerprint term shared by
    the compiled and interpreter paths. *)

val recovery_cont : Config.t -> Ids.Pid.t -> unit Prog.t
(** The canonical continuation of a recovering process (recovery section
    then entry section; just the entry section when the configuration has
    no recovery). Both the compiler and the machine's interpreter path
    build it here so the closure — and hence the state fingerprint — is
    identical across engines. *)

val abort_cont : Config.t -> Ids.Pid.t -> unit Prog.t
(** The canonical continuation of an aborted process: its abort cleanup
    section alone ([Return ()] is the abort-done transition). Same
    engine-agreement contract as {!recovery_cont}.
    @raise Invalid_argument when the configuration has no abort
    section. *)

val rep : t -> int -> unit Prog.t
(** The interned continuation at a pc. *)

val key : t -> int -> int
(** Cached [hash_cont (rep t pc)]. *)

val unit_pc : t -> int
(** The pc of [Return ()] (always 0). *)

val entry_pc : t -> Ids.Pid.t -> int
(** Section roots per process; -1 means "not compiled, use the
    interpreter path". *)

val exit_pc : t -> Ids.Pid.t -> int
val recover_pc : t -> Ids.Pid.t -> int
val abort_pc : t -> Ids.Pid.t -> int

val size : t -> int
(** Number of interned instructions. *)

val advance_unit : t -> int -> (unit -> unit Prog.t) -> int
(** [advance_unit t pc k]: the pc after the unit-result operation at
    [pc], resolving and memoizing the edge on first use ([k] is only
    applied then; exceptions it raises propagate so raise timing matches
    the interpreter). Returns -1 when the edge cannot be compiled — the
    caller parks the process on the interpreter path. *)

val advance_bool : t -> int -> (bool -> unit Prog.t) -> bool -> int
val advance_val : t -> int -> (Ids.Value.t -> unit Prog.t) -> Ids.Value.t -> int
