(** Process, variable and value identifiers.

    Processes and variables are dense non-negative integers so machine
    state can live in flat arrays; values are plain integers (the model
    needs only equality and addition, for fetch-and-add). *)

(** Process identifiers. *)
module Pid : sig
  type t = int

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val to_int : t -> int
  val of_int : int -> t

  val to_string : t -> string
  (** ["p<i>"] *)

  val pp : Format.formatter -> t -> unit
end

(** Shared-variable identifiers (indices into a {!Layout.t}). *)
module Var : sig
  type t = int

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val to_int : t -> int
  val of_int : int -> t
  val pp : Format.formatter -> t -> unit
end

(** Values stored in shared variables. *)
module Value : sig
  type t = int

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val zero : t
  val pp : Format.formatter -> t -> unit
end

(** Sets of process ids, with a printer.

    Implemented as an immutable bitset: sets whose elements are all below
    {!small_capacity} (= 62) pack into a single OCaml int, making
    union/add/mem/diff single ALU operations — which matters because
    awareness propagation, [Accessed(v,E)] updates and contention
    accounting touch process sets on nearly every machine event, and
    model-checking workloads always sit in this range.

    Guard and fallback: ids must be non-negative ({!add} raises
    [Invalid_argument] otherwise), and a set that receives an id [>= 62]
    transparently widens to a multi-word bitset — correct at any [n]
    (the lock zoo runs up to n = 128), just no longer allocation-free.
    The function signatures follow [Set.S], so call sites are
    representation-agnostic. *)
module Pidset : sig
  type elt = int
  type t

  val small_capacity : int
  (** Ids [0 .. small_capacity - 1] (= [0..61]) stay in the one-word,
      allocation-free representation. *)

  val empty : t
  val is_empty : t -> bool
  val mem : elt -> t -> bool

  val add : elt -> t -> t
  (** @raise Invalid_argument on a negative id. *)

  val singleton : elt -> t
  val remove : elt -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val subset : t -> t -> bool
  val disjoint : t -> t -> bool
  val cardinal : t -> int
  val min_elt : t -> elt
  val min_elt_opt : t -> elt option
  val max_elt : t -> elt
  val max_elt_opt : t -> elt option
  val choose : t -> elt
  val choose_opt : t -> elt option
  val iter : (elt -> unit) -> t -> unit
  val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
  val for_all : (elt -> bool) -> t -> bool
  val exists : (elt -> bool) -> t -> bool
  val filter : (elt -> bool) -> t -> t
  val partition : (elt -> bool) -> t -> t * t
  val elements : t -> elt list
  val to_list : t -> elt list
  val of_list : elt list -> t
  val to_seq : t -> elt Seq.t
  val map : (elt -> elt) -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Varset : Set.S with type elt = int
module Pidmap : Map.S with type key = int
module Varmap : Map.S with type key = int
