(** Per-process cache directory for the CC cost models.

    The simulator keeps one authoritative value per variable (coherence
    never serves stale data), so the cache tracks only {e line states} for
    RMR accounting: write-through uses Invalid/Shared (valid), write-back
    uses Invalid/Shared/Exclusive. *)

open Ids

type state = Invalid | Shared | Exclusive

type t

val create : n:int -> nvars:int -> t
val get : t -> Pid.t -> Var.t -> state
val set : t -> Pid.t -> Var.t -> state -> unit

val invalidate_others : t -> Pid.t -> Var.t -> unit
(** Invalidate every copy of the line except the writer's. *)

val downgrade_exclusive : t -> Var.t -> unit
(** Demote any Exclusive holder of the line to Shared (read miss). *)

val copy : t -> t
val equal : t -> t -> bool

(** Column snapshots for the mutation journal: the CC protocols mutate the
    line states of one variable across every process, so undo records
    capture that column. *)

val pack_max_procs : int
(** Largest process count for which a column fits one immediate int. *)

val col_packed : t -> Var.t -> int
(** Pack variable [v]'s column (2 bits per process); requires
    [n <= pack_max_procs]. *)

val restore_col_packed : t -> Var.t -> int -> unit

val col : t -> Var.t -> string
(** String snapshot of [v]'s column (any process count). *)

val restore_col : t -> Var.t -> string -> unit

val holders : t -> Var.t -> (Pid.t * state) list
(** Non-invalid holders of the line, with their states. *)

val coherent : t -> Var.t -> bool
(** An Exclusive holder excludes every other copy. *)

val coherence_ok : t -> bool
(** {!coherent} for every line. *)
