(** Process programs as a free monad over shared-memory operations.

    A program deterministically describes what a process does between the
    Enter/CS/Exit transition events: reads, writes, fences, and comparison
    primitives (which the paper's tradeoff explicitly covers). Determinism
    given read values is what makes trace erasure (Lemmas 1 and 4)
    executable by replay. *)

open Ids

(** One shared-memory operation, indexed by its result type. *)
type _ op =
  | Read : Var.t -> Value.t op
  | Write : Var.t * Value.t -> unit op
  | Fence : unit op
  | Cas : Var.t * Value.t * Value.t -> bool op
      (** [Cas (v, expected, desired)] returns whether it installed
          [desired]. *)
  | Faa : Var.t * Value.t -> Value.t op
      (** [Faa (v, delta)] returns the previous value. *)
  | Swap : Var.t * Value.t -> Value.t op
      (** [Swap (v, x)] stores [x] and returns the previous value. *)
  | Abortable : bool -> unit op
      (** Abortable-waiting marker: declares (true) / retracts (false)
          that the process is at a wait point where an adversary abort
          ({!Machine.abort}) may be delivered. Purely local — no shared
          memory, no trace event. *)

(** A program returning ['a]. *)
type 'a t =
  | Return : 'a -> 'a t
  | Bind : 'b op * ('b -> 'a t) -> 'a t

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
val map : 'a t -> ('a -> 'b) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t

val read : Var.t -> Value.t t
val write : Var.t -> Value.t -> unit t

val fence : unit t
(** A full memory fence: drains the process's write buffer. The machine
    models it as a [BeginFence]/[EndFence] pair with the buffered commits
    in between (paper, Section 2). *)

val cas : Var.t -> expected:Value.t -> desired:Value.t -> bool t
val faa : Var.t -> Value.t -> Value.t t
val swap : Var.t -> Value.t -> Value.t t

val unit : unit t

val seq : unit t list -> unit t
(** Sequence a list of unit programs. *)

val for_ : int -> int -> (int -> unit t) -> unit t
(** [for_ lo hi body] runs [body i] for [i = lo..hi]. *)

exception Spin_exhausted of Var.t
(** Raised when a bounded busy-wait exceeds its fuel; harnesses surface it
    as a liveness diagnosis rather than diverging. *)

val default_spin_fuel : int ref
(** Fuel used by {!spin_until} when none is given (default 1_000_000).
    The model checker shrinks it during state-space exploration. *)

val spin_until : ?fuel:int -> Var.t -> (Value.t -> bool) -> Value.t t
(** [spin_until v cond] reads [v] until [cond] holds on the value read and
    returns that value.

    @raise Spin_exhausted (at simulation time) after [fuel] (default
    [!default_spin_fuel]) reads. *)

val repeat_until : 'a t -> ('a -> bool) -> 'a t
(** Re-run a program until its result satisfies the predicate. *)

val abortable : bool -> unit t
(** Raise (true) or lower (false) the abortable-waiting marker. *)

val abortably : 'a t -> 'a t
(** Bracket a wait: marker up, run the body, marker down. Aborts are
    deliverable at every scheduling point inside the bracket. *)

val abortable_spin_until : ?fuel:int -> Var.t -> (Value.t -> bool) -> Value.t t
(** {!spin_until} declared as an abortable wait point. *)

val retry_backoff : ?fuel:int -> ?delay:int -> Var.t -> bool t -> unit t
(** [retry_backoff v attempt] runs the optimistic [attempt] until it
    returns true; between failures it backs off by re-reading [v] an
    exponentially growing number of times ([delay] initial re-reads,
    doubling), and that polite wait is an abortable window. Exhausting
    [fuel] attempts raises {!Spin_exhausted}[ v] at simulation time. *)

val head_to_string : 'a t -> string
(** Describe the next operation of a program, for diagnostics. *)

val head_footprint :
  'a t ->
  [ `Return | `Read of Var.t | `Write of Var.t | `Fence | `Rmw of Var.t
  | `Marker ]
(** Shared-memory footprint of the next operation, decided without
    executing it. [`Write] is the footprint of the {e issue} (a buffer
    insertion); see {!Machine.step_footprint} for the machine-level
    refinement that accounts for store-to-load forwarding, fences and
    buffered commits. *)
