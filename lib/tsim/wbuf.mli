(** Per-process TSO write buffer.

    Issued writes become visible only when committed (oldest first under
    TSO). Issuing a write to a variable with a pending write {e replaces}
    the older entry in place, so the buffer holds at most one write per
    variable — which is why a process can commit at most one write to any
    variable during a single fence execution (used by the write phase of
    the construction). *)

open Ids

type entry = {
  var : Var.t;
  value : Value.t;
  aw : Pidset.t;
      (** the writer's awareness set at issue time (Definition 1) *)
}

type t

val create : unit -> t
val is_empty : t -> bool
val size : t -> int

val find : t -> Var.t -> Value.t option
(** Store-to-load forwarding: the pending value for [var], if any. *)

val mem : t -> Var.t -> bool
(** [find t v <> None] without the option allocation (explorer hot
    path). *)

val push : t -> entry -> unit
(** Issue a write (replacing any pending write to the same variable). *)

val push' : t -> entry -> (int * entry) option
(** Journal-aware {!push}: [Some (i, old)] when the write replaced the
    pending entry [old] at index [i] (undo restores it with {!set}),
    [None] when it was appended (undo is {!drop_last}). *)

val peek : t -> entry option
(** The oldest pending write. *)

val peek_var : t -> Var.t
(** Variable of the oldest pending write, without allocating an option
    (fingerprint hot path). @raise Invalid_argument if empty. *)

val get : t -> int -> entry
(** The [i]-th oldest pending entry (fingerprint hot path). *)

val pop : t -> entry
(** Remove and return the oldest pending write.
    @raise Invalid_argument if empty. *)

val pop_var : t -> Var.t -> entry
(** Remove the pending write to a specific variable (PSO out-of-order
    commits). @raise Invalid_argument if there is none. *)

val pop_var' : t -> Var.t -> int * entry
(** Journal-aware {!pop_var}: also reports the index the entry occupied,
    so undo can {!insert} it back in order. *)

val set : t -> int -> entry -> unit
(** Undo primitive: overwrite the entry at an index (restores a replaced
    write journaled by {!push'}). *)

val insert : t -> int -> entry -> unit
(** Undo primitive: re-insert an entry at the index it was popped from. *)

val drop_last : t -> unit
(** Undo primitive: drop the newest entry (reverts an appending
    {!push'}). *)

val entries : t -> entry array
(** Snapshot of the pending entries, oldest first (crash undo, equality,
    fingerprints). *)

val clear : t -> unit
(** Discard every pending write (crash support: {!Config.Drop_buffer}). *)

val iter : (entry -> unit) -> t -> unit
val vars : t -> Var.t list
(** Pending variables, oldest first. *)

val copy : t -> t
