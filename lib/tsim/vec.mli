(** Growable vector (OCaml 5.1 has no [Dynarray]): amortized O(1) push,
    O(1) random access, used for traces, write buffers and logs. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy]: the dummy fills unused slots (never observable). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current size of the backing array (for shrink tests / introspection). *)

val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val last : 'a t -> 'a option
val pop : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option
val filter : ('a -> bool) -> 'a t -> 'a t
val map : ('a -> 'b) -> 'a t -> dummy:'b -> 'b t
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a -> 'a list -> 'a t
val copy : 'a t -> 'a t
(** Independent copy, trimmed to the live prefix (capacity = length). *)

val remove : 'a t -> int -> 'a
(** Remove index [i], shifting the tail left (O(n)). *)

val insert : 'a t -> int -> 'a -> unit
(** Insert at index [i], shifting the tail right (O(n)); undo partner of
    {!remove}. [i] may equal [length t] (append). *)

val truncate : 'a t -> int -> unit
(** Drop every element at index [n] and beyond (bulk journal rollback). *)

(** Shrinking: [pop], [remove], [truncate] and [clear] release backing
    storage once the live prefix drops below a quarter of capacity (new
    capacity [max (2 * length) 16]), so long-lived journal/frontier
    vectors do not pin their peak memory. *)
