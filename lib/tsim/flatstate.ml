(* Flat mutation journal.

   PR5's undo journal was a [Vec.t] of one boxed variant per undo record:
   every journaled mutation allocated a record (and the per-step head
   snapshot allocated a 17-field one), which dominated the minor-heap
   traffic of journal-engine DFS. This container replaces it with a
   struct-of-arrays log:

   - the main log is an unboxed [int array]: operand words are pushed
     first, then one header word [tag lor (aux lsl 4)] per record, so
     rollback pops the header and then the operands in reverse push
     order without any decoding state;
   - pointer-sized operands that cannot live in an int (pid sets,
     program continuations, buffer entries, cache columns) go to small
     typed side stacks. Pushing an existing pointer allocates nothing,
     and each record pops exactly what it pushed, so side-stack lengths
     never need journaling themselves.

   The container is generic bookkeeping: record tags and their
   encode/decode live with the machine (machine.ml), which is the only
   writer. *)

type t = {
  mutable ints : int array;
  mutable len : int;
  psets : Ids.Pidset.t Vec.t;
  conts : unit Prog.t Vec.t;
  entries : Wbuf.entry Vec.t;
  entry_arrays : Wbuf.entry array Vec.t;
  cols : string Vec.t;
}

let dummy_entry =
  { Wbuf.var = 0; Wbuf.value = 0; Wbuf.aw = Ids.Pidset.empty }

let create () =
  {
    (* start tiny: every Machine carries one of these, and most (clones,
       replay machines) never journal *)
    ints = Array.make 8 0;
    len = 0;
    psets = Vec.create Ids.Pidset.empty;
    conts = Vec.create Prog.unit;
    entries = Vec.create dummy_entry;
    entry_arrays = Vec.create [||];
    cols = Vec.create "";
  }

let length t = t.len

let clear t =
  t.len <- 0;
  (* long searches can leave a big backing array behind; release it the
     same way Vec's shrink policy does *)
  if Array.length t.ints > 65536 then t.ints <- Array.make 8 0;
  Vec.clear t.psets;
  Vec.clear t.conts;
  Vec.clear t.entries;
  Vec.clear t.entry_arrays;
  Vec.clear t.cols

let[@inline never] grow t need =
  let cap = Array.length t.ints in
  let cap' = max need (2 * cap) in
  let a = Array.make cap' 0 in
  Array.blit t.ints 0 a 0 t.len;
  t.ints <- a

(* [reserve t n] then [n] [push_unsafe]s lets a multi-word record pay the
   capacity check once (the per-step head record is 18 words). *)
let[@inline] reserve t n = if t.len + n > Array.length t.ints then grow t (t.len + n)

let[@inline] push_unsafe t x =
  Array.unsafe_set t.ints t.len x;
  t.len <- t.len + 1

let[@inline] push t x =
  reserve t 1;
  push_unsafe t x

let[@inline] pop t =
  let i = t.len - 1 in
  t.len <- i;
  t.ints.(i)

let push_set t s = Vec.push t.psets s
let pop_set t = Vec.pop t.psets
let push_cont t c = Vec.push t.conts c
let pop_cont t = Vec.pop t.conts
let push_entry t e = Vec.push t.entries e
let pop_entry t = Vec.pop t.entries
let push_entries t es = Vec.push t.entry_arrays es
let pop_entries t = Vec.pop t.entry_arrays
let push_col t s = Vec.push t.cols s
let pop_col t = Vec.pop t.cols
