(* Per-process cache directory for the CC cost models.

   The simulator keeps a single authoritative value per variable (coherence
   guarantees caches never serve stale data), so the cache only tracks *line
   states* for RMR accounting, exactly as in the protocol description the
   paper quotes from Golab et al.:

   - write-through: a line is either Invalid or Valid;
   - write-back: Invalid, Shared or Exclusive. *)

open Ids

type state = Invalid | Shared | Exclusive

type t = {
  nvars : int;
  lines : Bytes.t array;  (* lines.(p) holds one byte per variable *)
}

let state_to_char = function Invalid -> '\000' | Shared -> '\001' | Exclusive -> '\002'

let state_of_char = function
  | '\000' -> Invalid
  | '\001' -> Shared
  | '\002' -> Exclusive
  | _ -> assert false

let create ~n ~nvars =
  { nvars; lines = Array.init n (fun _ -> Bytes.make (max nvars 1) '\000') }

let get t p v = state_of_char (Bytes.get t.lines.(p) v)
let set t p v s = Bytes.set t.lines.(p) v (state_to_char s)

let invalidate_others t p v =
  Array.iteri
    (fun q line -> if not (Pid.equal q p) then Bytes.set line v '\000')
    t.lines

let downgrade_exclusive t v =
  Array.iter
    (fun line ->
      if Char.equal (Bytes.get line v) '\002' then Bytes.set line v '\001')
    t.lines

let copy t = { nvars = t.nvars; lines = Array.map Bytes.copy t.lines }

let equal a b =
  a.nvars = b.nvars
  && Array.length a.lines = Array.length b.lines
  && Array.for_all2 Bytes.equal a.lines b.lines

(* Column snapshots for the mutation journal: the CC protocols mutate the
   line states of a single variable across every process (invalidate /
   downgrade), so undo records capture that one column. With at most 31
   processes the column packs into one immediate int (2 bits per line);
   beyond that a string snapshot is used. *)
let pack_max_procs = 31

let col_packed t v =
  let w = ref 0 in
  Array.iteri
    (fun p line -> w := !w lor (Char.code (Bytes.get line v) lsl (2 * p)))
    t.lines;
  !w

let restore_col_packed t v w =
  Array.iteri
    (fun p line -> Bytes.set line v (Char.chr ((w lsr (2 * p)) land 3)))
    t.lines

let col t v = String.init (Array.length t.lines) (fun p -> Bytes.get t.lines.(p) v)

let restore_col t v s =
  Array.iteri (fun p line -> Bytes.set line v s.[p]) t.lines

let holders t v =
  let out = ref [] in
  Array.iteri
    (fun p line ->
      match state_of_char (Bytes.get line v) with
      | Invalid -> ()
      | s -> out := (p, s) :: !out)
    t.lines;
  List.rev !out

(* MESI-style coherence: a variable held Exclusive anywhere is held by
   exactly one process and by nobody else in any state. *)
let coherent t v =
  let hs = holders t v in
  let exclusive = List.filter (fun (_, s) -> s = Exclusive) hs in
  match exclusive with [] -> true | [ _ ] -> List.length hs = 1 | _ -> false

let coherence_ok t =
  let rec go v = v >= t.nvars || (coherent t v && go (v + 1)) in
  go 0
