(* Per-process TSO write buffer.

   Writes are issued into the buffer and become visible only when committed
   (oldest first). Following the paper's operational model, issuing a write
   to a variable that already has a pending write *replaces* the older entry
   in place, so the buffer holds at most one write per variable — this is
   what lets a process commit at most one write per variable during a single
   fence execution, a fact the write phase of the construction relies on. *)

open Ids

type entry = {
  var : Var.t;
  value : Value.t;
  aw : Pidset.t;
      (* awareness set of the writer at issue time (Definition 1, case 2) *)
}

type t = entry Vec.t

let dummy_entry = { var = -1; value = 0; aw = Pidset.empty }

let create () : t = Vec.create ~capacity:4 dummy_entry

let is_empty = Vec.is_empty
let size = Vec.length

let index_of (t : t) var =
  let rec go i =
    if i >= Vec.length t then None
    else if Var.equal (Vec.get t i).var var then Some i
    else go (i + 1)
  in
  go 0

(* Store-to-load forwarding: a read sees its own pending write. *)
let find (t : t) var =
  match index_of t var with None -> None | Some i -> Some (Vec.get t i).value

(* Allocation-free membership test (the explorer's hot path). *)
let mem (t : t) var =
  let rec go i =
    i < Vec.length t && (Var.equal (Vec.get t i).var var || go (i + 1))
  in
  go 0

(* Journal-aware issue: reports the replaced entry (and its index) so the
   mutation journal can restore it on undo, or [None] when the write was
   appended (undo = drop the last entry). *)
let push' (t : t) entry =
  match index_of t entry.var with
  | Some i ->
      let old = Vec.get t i in
      Vec.set t i entry;
      Some (i, old)
  | None ->
      Vec.push t entry;
      None

let push (t : t) entry = ignore (push' t entry)

let peek (t : t) = if Vec.is_empty t then None else Some (Vec.get t 0)

(* Allocation-free variants for the fingerprint hot path. *)
let peek_var (t : t) = (Vec.get t 0).var
let get (t : t) i = Vec.get t i

let pop (t : t) =
  if Vec.is_empty t then invalid_arg "Wbuf.pop: empty buffer";
  Vec.remove t 0

(* Journal-aware PSO commit: also reports the index the entry occupied, so
   undo can re-insert it in order. *)
let pop_var' (t : t) var =
  match index_of t var with
  | None -> invalid_arg "Wbuf.pop_var: no pending write to that variable"
  | Some i -> (i, Vec.remove t i)

(* Remove the pending write to [var] out of order (PSO commits). *)
let pop_var (t : t) var = snd (pop_var' t var)

(* Undo primitives: raw positional restore of journaled mutations. *)
let set (t : t) i entry = Vec.set t i entry
let insert (t : t) i entry = Vec.insert t i entry
let drop_last (t : t) = ignore (Vec.pop t)
let entries (t : t) = Vec.to_array t

(* Crash support: discard every pending write (Config.Drop_buffer, or the
   suffix beyond a committed prefix under Atomic_prefix). *)
let clear (t : t) = Vec.clear t

let iter f (t : t) = Vec.iter f t
let vars (t : t) = Vec.fold (fun acc e -> e.var :: acc) [] t |> List.rev
let copy (t : t) : t = Vec.copy t
