(* Compile-ahead execution of process programs.

   The free-monad front-end (Prog) is a pleasant authoring surface but an
   expensive execution one: [bind] rewraps every continuation in a fresh
   closure, so each simulated event allocates, and the state fingerprint
   has to structurally hash the live continuation ([Hashtbl.hash_param])
   on every step. This module lowers each process's program into a flat
   instruction array *by interning continuations*:

   - an instruction is one reachable continuation value, identified by a
     program counter (its index). [rep] keeps the original monadic value,
     so the machine's pending/footprint/step logic needs no second
     instruction language and crash/recovery lowering is just "which pc
     is the root"; [key] caches its structural hash, which is what makes
     compiled fingerprints bit-identical to the interpreter's;
   - control-flow edges are resolved at most once: unit-result operations
     (write, fence) and the two CAS branches live in single atomic edge
     slots closed eagerly at compile time; value-result operations
     (read, FAA, swap) memoize observed [value -> pc] pairs on demand in
     small immutable fan-out tables;
   - interning is keyed on [Marshal] bytes (with [Closures]), an exact
     structural memo: equal bytes means structurally identical
     continuations, so following an edge is guaranteed to land on a
     continuation the interpreter would have built afresh.

   Degradation contract: compilation never makes a runnable program fail
   at run time. If an edge cannot be resolved (code-store budget, a
   continuation capturing an unmarshalable value, fan-out overflow) the
   machine simply parks that process back on the interpreter path
   ([pc = -1]) until the next section root; fingerprints stay exact
   because [key] equals the structural hash the interpreter would use.
   Typed {!Error} failures are raised at compile time only, for programs
   that are wrong ahead of execution: section roots that exceed the
   instruction budget (an unbounded non-repeating operation chain — the
   moral equivalent of an unresolvable branch target) or roots that are
   opaque to structural interning (register frames we cannot capture). *)

type error =
  | Program_too_large of { pid : Ids.Pid.t; limit : int }
      (* interning a section root overflowed the instruction budget: the
         program unrolls into unboundedly many distinct continuations *)
  | Opaque_continuation of { pid : Ids.Pid.t; reason : string }
      (* a section root captures values Marshal cannot serialize, so its
         continuations cannot be interned (e.g. a channel or mutex in the
         register frame) *)

exception Error of error

let error_to_string = function
  | Program_too_large { pid; limit } ->
      Printf.sprintf
        "Compile: program of process %d exceeds the instruction budget (%d)"
        pid limit
  | Opaque_continuation { pid; reason } ->
      Printf.sprintf "Compile: process %d has an opaque continuation (%s)"
        pid reason

(* Structural hash of a continuation, shared with the interpreter path
   (Machine). [Hashtbl.hash] stops after 10 meaningful nodes, which
   conflates deep spin states; raise both traversal bounds so distinct
   continuation shapes (spin fuels, loop indices, captured reads) hash
   apart. The runtime hashes a closure's environment and skips its code
   pointers, so structurally equal continuations hash equal no matter
   where they were built. *)
let hash_cont (c : unit Prog.t) = Hashtbl.hash_param 128 256 c

(* The canonical continuation of a recovering process: recovery section,
   then the regular entry section. Lives here — used both by the
   compiler (root interning) and by the machine's interpreter path — so
   the two build the *same* closure and fingerprints agree across
   engines. Captures only immutable data: closing over the machine would
   make the structural hash depend on mutable state. *)
let recovery_cont (cfg : Config.t) pid =
  match cfg.Config.recovery with
  | Some r ->
      let entry = cfg.Config.entry in
      Prog.bind (r pid) (fun () -> entry pid)
  | None -> cfg.Config.entry pid

(* The canonical continuation of an aborted process: its cleanup section,
   alone — reaching [Return ()] is the abort-done transition back to NCS.
   Same engine-agreement contract as [recovery_cont]: both the compiler
   and the machine's interpreter path must build the closure here.
   Calling it without an abort section is a programming error; the
   machine refuses to abort such processes. *)
let abort_cont (cfg : Config.t) pid =
  match cfg.Config.abort_section with
  | Some a -> a pid
  | None -> invalid_arg "Compile.abort_cont: configuration is not abortable"

type instr = {
  rep : unit Prog.t;  (* the interned continuation itself *)
  key : int;  (* cached [hash_cont rep] *)
  next_u : int Atomic.t;  (* unit-result edge (write, fence); -1 unresolved *)
  next_t : int Atomic.t;  (* CAS success edge *)
  next_f : int Atomic.t;  (* CAS failure edge *)
  vals : int array Atomic.t;
      (* value-result fan-out: immutable [v0; pc0; v1; pc1; ...] pairs,
         replaced copy-on-append under [lock] *)
}

type t = {
  lock : Mutex.t;  (* guards tbl / count / growth / edge publication *)
  tbl : (string, int) Hashtbl.t;  (* Marshal bytes -> pc *)
  instrs : instr array Atomic.t;
      (* copy-on-grow; a pc read from an atomic edge or root is always a
         valid index of the array fetched after it (publication order:
         slot write, then array swap if grown, then edge store) *)
  mutable count : int;
  max_instrs : int;
  max_fanout : int;
  entry_pc : int array;  (* per-pid section roots; -1 = interpreter *)
  exit_pc : int array;
  recover_pc : int array;
  abort_pc : int array;
  unit_pc : int;  (* pc of [Return ()]: interned first, always 0 *)
}

let dummy_instr =
  {
    rep = Prog.unit;
    key = 0;
    next_u = Atomic.make (-1);
    next_t = Atomic.make (-1);
    next_f = Atomic.make (-1);
    vals = Atomic.make [||];
  }

exception Full

(* Intern a continuation; caller holds [lock] (or has exclusive access
   during [make]). Raises [Full] past the budget and lets Marshal's
   [Failure]/[Invalid_argument] escape for the caller to classify. *)
let intern_locked c (cont : unit Prog.t) =
  let bytes = Marshal.to_string cont [ Marshal.Closures ] in
  match Hashtbl.find_opt c.tbl bytes with
  | Some pc -> pc
  | None ->
      if c.count >= c.max_instrs then raise Full;
      let pc = c.count in
      let a = Atomic.get c.instrs in
      let a =
        if pc >= Array.length a then begin
          let b = Array.make (max 64 (2 * Array.length a)) dummy_instr in
          Array.blit a 0 b 0 (Array.length a);
          Atomic.set c.instrs b;
          b
        end
        else a
      in
      a.(pc) <-
        {
          rep = cont;
          key = hash_cont cont;
          next_u = Atomic.make (-1);
          next_t = Atomic.make (-1);
          next_f = Atomic.make (-1);
          vals = Atomic.make [||];
        };
      c.count <- pc + 1;
      Hashtbl.replace c.tbl bytes pc;
      pc

let[@inline] instr_at c pc = (Atomic.get c.instrs).(pc)
let[@inline] rep c pc = (instr_at c pc).rep
let[@inline] key c pc = (instr_at c pc).key
let unit_pc c = c.unit_pc
let entry_pc c pid = c.entry_pc.(pid)
let exit_pc c pid = c.exit_pc.(pid)
let recover_pc c pid = c.recover_pc.(pid)
let abort_pc c pid = c.abort_pc.(pid)
let size c = c.count

let with_lock c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* Slow path of the advance functions: intern [cont] and publish it on
   [edge]. Returns -1 on budget/marshal failure — the caller parks the
   process on the interpreter path; never raises for those, so a running
   search cannot die on an exotic continuation. *)
let close_edge c (edge : int Atomic.t) cont =
  with_lock c (fun () ->
      let n = Atomic.get edge in
      if n >= 0 then n
      else
        match intern_locked c cont with
        | pc ->
            Atomic.set edge pc;
            pc
        | exception Full -> -1
        | exception Failure _ | exception Invalid_argument _ -> -1)

(* Advance across a unit-result operation. [k] is only applied on a cache
   miss; exceptions it raises (Prog.Spin_exhausted) propagate so raise
   timing matches the interpreter exactly. Returns the next pc, or -1
   when the edge cannot be compiled. *)
let advance_unit c pc (k : unit -> unit Prog.t) =
  let i = instr_at c pc in
  let n = Atomic.get i.next_u in
  if n >= 0 then n else close_edge c i.next_u (k ())

let advance_bool c pc (k : bool -> unit Prog.t) b =
  let i = instr_at c pc in
  let edge = if b then i.next_t else i.next_f in
  let n = Atomic.get edge in
  if n >= 0 then n else close_edge c edge (k b)

let advance_val c pc (k : Ids.Value.t -> unit Prog.t) x =
  let i = instr_at c pc in
  let vs = Atomic.get i.vals in
  let len = Array.length vs in
  let rec scan j =
    if j >= len then -1
    else if Array.unsafe_get vs j = x then Array.unsafe_get vs (j + 1)
    else scan (j + 2)
  in
  let n = scan 0 in
  if n >= 0 then n
  else
    let cont = k x in
    (* apply [k] outside the lock-held rescan so its exceptions can never
       be confused with interning failures *)
    with_lock c (fun () ->
        let vs = Atomic.get i.vals in
        let len = Array.length vs in
        let rec rescan j =
          if j >= len then -1
          else if vs.(j) = x then vs.(j + 1)
          else rescan (j + 2)
        in
        let hit = rescan 0 in
        if hit >= 0 then hit
        else
          match intern_locked c cont with
          | pc' ->
              if len / 2 < c.max_fanout then begin
                let vs' = Array.make (len + 2) 0 in
                Array.blit vs 0 vs' 0 len;
                vs'.(len) <- x;
                vs'.(len + 1) <- pc';
                Atomic.set i.vals vs'
              end;
              pc'
          | exception Full -> -1
          | exception Failure _ | exception Invalid_argument _ -> -1)

(* --- ahead-of-time compilation --------------------------------------- *)

let make ?(max_instrs = 65536) ?(max_fanout = 64) (cfg : Config.t) =
  let n = cfg.Config.n in
  let c =
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 256;
      instrs = Atomic.make (Array.make 64 dummy_instr);
      count = 0;
      max_instrs = max 1 max_instrs;
      max_fanout = max 0 max_fanout;
      entry_pc = Array.make n (-1);
      exit_pc = Array.make n (-1);
      recover_pc = Array.make n (-1);
      abort_pc = Array.make n (-1);
      unit_pc = 0;
    }
  in
  (* Root interning: failures here are typed errors — the program is
     broken ahead of execution, not merely exotic. *)
  let strict ~pid cont =
    match intern_locked c cont with
    | pc -> pc
    | exception Full ->
        raise (Error (Program_too_large { pid; limit = c.max_instrs }))
    | exception Failure msg | exception Invalid_argument msg ->
        raise (Error (Opaque_continuation { pid; reason = msg }))
  in
  let up = strict ~pid:(-1) Prog.unit in
  assert (up = 0);
  (* Eagerly close every control-flow edge reachable through unit and
     bool continuations (straight-line writes/fences and CAS branches);
     value edges (read/FAA/swap results) are demand-filled at run time.
     Budget overflow during the walk is still a typed error (this is
     where an unbounded write chain is caught); an individual
     continuation that raises while being built, or that Marshal cannot
     serialize, just leaves its edge unresolved for the runtime
     fallback. *)
  let visited = Hashtbl.create 64 in
  let rec close_from ~pid pc =
    if not (Hashtbl.mem visited pc) then begin
      Hashtbl.add visited pc ();
      let i = instr_at c pc in
      match i.rep with
      | Prog.Return _ -> ()
      | Prog.Bind (Prog.Write _, k) ->
          (* local aliases pin the GADT equation ('b = unit / bool) before
             the call: the mutually-recursive close_* types are not yet
             generalized here, so passing [k] directly would let the
             existential escape *)
          let k : unit -> unit Prog.t = k in
          close_u ~pid i.next_u k
      | Prog.Bind (Prog.Fence, k) ->
          let k : unit -> unit Prog.t = k in
          close_u ~pid i.next_u k
      | Prog.Bind (Prog.Abortable _, k) ->
          let k : unit -> unit Prog.t = k in
          close_u ~pid i.next_u k
      | Prog.Bind (Prog.Cas _, k) ->
          let k : bool -> unit Prog.t = k in
          close_b ~pid i.next_t k true;
          close_b ~pid i.next_f k false
      | Prog.Bind (Prog.Read _, _)
      | Prog.Bind (Prog.Faa _, _)
      | Prog.Bind (Prog.Swap _, _) ->
          ()
    end
  and close_u ~pid (edge : int Atomic.t) (k : unit -> unit Prog.t) =
    if Atomic.get edge < 0 then
      match k () with
      | exception _ -> ()
      | cont -> close_cont ~pid edge cont
  and close_b ~pid (edge : int Atomic.t) (k : bool -> unit Prog.t) b =
    if Atomic.get edge < 0 then
      match k b with
      | exception _ -> ()
      | cont -> close_cont ~pid edge cont
  and close_cont ~pid edge cont =
    match intern_locked c cont with
    | pc ->
        Atomic.set edge pc;
        close_from ~pid pc
    | exception Full ->
        raise (Error (Program_too_large { pid; limit = c.max_instrs }))
    | exception Failure _ | exception Invalid_argument _ -> ()
  in
  let root ~pid arr p prog_thunk =
    match prog_thunk () with
    | (prog : unit Prog.t) ->
        let pc = strict ~pid prog in
        arr.(p) <- pc;
        close_from ~pid pc
    | exception _ ->
        (* building the program itself raised (e.g. a zero-fuel spin):
           defer to the runtime so the raise happens at step time, where
           the interpreter raises it *)
        ()
  in
  for p = 0 to n - 1 do
    root ~pid:p c.entry_pc p (fun () -> cfg.Config.entry p);
    root ~pid:p c.exit_pc p (fun () -> cfg.Config.exit_section p);
    if Option.is_some cfg.Config.recovery then
      root ~pid:p c.recover_pc p (fun () -> recovery_cont cfg p);
    if Option.is_some cfg.Config.abort_section then
      root ~pid:p c.abort_pc p (fun () -> abort_cont cfg p)
  done;
  c

(* --- compilation cache ------------------------------------------------ *)

(* Machines are created in droves during exploration and benchmarking
   ([Explore.explore] re-creates one per run from the same configuration,
   and every [{cfg with ...}] copy shares the same program closures), so
   cache compiled code keyed on the *program sources*: the physical
   identity of the entry/exit/recovery functions plus the process count.
   Spin fuel is part of the key — continuations embed the fuel they were
   built with, so code compiled under the explorer's small fuel must not
   leak into a full-fuel replay. Bounded: newest 16 entries. *)
let memo : (Config.t * int * t) list ref = ref []
let memo_lock = Mutex.create ()

let same_src (a : Config.t) (b : Config.t) =
  a.Config.entry == b.Config.entry
  && a.Config.exit_section == b.Config.exit_section
  && (match (a.Config.recovery, b.Config.recovery) with
     | None, None -> true
     | Some r, Some r' -> r == r'
     | _ -> false)
  && (match (a.Config.abort_section, b.Config.abort_section) with
     | None, None -> true
     | Some r, Some r' -> r == r'
     | _ -> false)
  && a.Config.n = b.Config.n

let get cfg =
  let fuel = !Prog.default_spin_fuel in
  Mutex.lock memo_lock;
  let hit =
    List.find_opt (fun (src, f, _) -> f = fuel && same_src src cfg) !memo
  in
  Mutex.unlock memo_lock;
  match hit with
  | Some (_, _, t) -> t
  | None ->
      let t = make cfg in
      Mutex.lock memo_lock;
      memo := (cfg, fuel, t) :: List.filteri (fun i _ -> i < 15) !memo;
      Mutex.unlock memo_lock;
      t
