(** Flat mutation journal: an unboxed [int array] log plus typed side
    stacks for pointer-sized operands (pid sets, continuations, buffer
    entries, cache columns).

    The machine (machine.ml) is the only writer; record tags and their
    encode/decode live there. The push discipline is: operands first,
    one header word last, so rollback pops the header and then the
    operands in reverse push order. Pushing an existing pointer onto a
    side stack allocates nothing — this is what makes journal-engine
    steps allocation-free in steady state. *)

type t

val create : unit -> t
val length : t -> int
(** Length of the main int log — the journal mark unit. *)

val clear : t -> unit

val reserve : t -> int -> unit
(** [reserve t n]: ensure capacity for [n] more ints, so a multi-word
    record can use {!push_unsafe} and pay the capacity check once. *)

val push_unsafe : t -> int -> unit
(** Push without a capacity check: only after a covering {!reserve}. *)

val push : t -> int -> unit
val pop : t -> int

val push_set : t -> Ids.Pidset.t -> unit
val pop_set : t -> Ids.Pidset.t
val push_cont : t -> unit Prog.t -> unit
val pop_cont : t -> unit Prog.t
val push_entry : t -> Wbuf.entry -> unit
val pop_entry : t -> Wbuf.entry
val push_entries : t -> Wbuf.entry array -> unit
val pop_entries : t -> Wbuf.entry array
val push_col : t -> string -> unit
val pop_col : t -> string
