(** The TSO/PSO machine: processes with write buffers, adversary-driven
    scheduling, and online RMR / fence / critical-event / contention
    accounting.

    A scheduler drives the machine one event at a time with {!step} and
    {!commit}; {!pending} peeks at what [step] would do. While a process
    is executing a fence (between BeginFence and EndFence), [step] only
    commits buffered writes and then emits EndFence — the
    [mode(p,E) = write] regime of the paper. *)

open Ids

exception Exclusion_violation of { holder : Pid.t; intruder : Pid.t }
(** Two critical-section events were simultaneously enabled. *)

exception Process_finished of Pid.t
(** [step] was called on a process that completed all its passages. *)

type section =
  | Ncs
  | Entry
  | Exiting
  | Finished
  | Crashed  (** crash fault injected; only {!pending} event is Recover *)
  | Aborting
      (** abort fault delivered at a declared wait point; the process is
          running its {!Config.t.abort_section} cleanup and returns to
          {!Ncs} (no passage counted) when it completes *)

val section_name : section -> string

val section_code : section -> int
(** Dense code in the order of the constructors above ([Ncs] = 0 ...
    [Aborting] = 5); the fingerprint and the profiler share it. *)

(** Per-passage cost summary, logged at each Exit. *)
type passage_stats = {
  p_rmrs : int;
  p_fences : int;
  p_criticals : int;
  p_interval : int;  (** interval contention of the passage *)
  p_point : int;  (** point contention of the passage *)
}

(** Per-process state. Mutable and exposed for the adversary's benefit;
    treat as read-only outside this module. *)
type proc = {
  pid : Pid.t;
  mutable sec : section;
  mutable cont : unit Prog.t;
  mutable pc : int;
      (** compiled-engine program counter: when [>= 0], [cont] is the
          interned representative {!Compile.rep} of this pc; [-1] on
          interpreter engines or when the compiled program degraded to
          the interpreter path for this section *)
  buf : Wbuf.t;
  mutable in_fence : bool;
  mutable fence_implicit : bool;
  mutable rmw_fenced : bool;
  mutable aw : Pidset.t;  (** awareness set (Definition 1) *)
  remote_reads : (Var.t, unit) Hashtbl.t;
  mutable passages : int;
  mutable rmrs : int;
  mutable fences : int;
  mutable criticals : int;
  mutable cur_rmrs : int;
  mutable cur_fences : int;
  mutable cur_criticals : int;
  mutable interval_set : Pidset.t;
  mutable point_max : int;
  passage_log : passage_stats Vec.t;
  mutable crashes : int;
  mutable needs_recovery : bool;
  mutable abortable : bool;
      (** inside an [Prog.abortable true .. false] window: an adversary
          abort ({!abort}) is deliverable here and nowhere else *)
  mutable aborts : int;
}

type t

(** What a process would do next. *)
type pending =
  | P_enter
  | P_cs
  | P_exit
  | P_done
  | P_read of Var.t
  | P_issue_write of Var.t * Value.t
  | P_begin_fence
  | P_end_fence
  | P_commit of Var.t
  | P_rmw_fence  (** implicit BeginFence preceding a buffered RMW *)
  | P_cas of Var.t * Value.t * Value.t
  | P_faa of Var.t * Value.t
  | P_swap of Var.t * Value.t
  | P_recover  (** crashed process: its only enabled event is Recover *)
  | P_marker of bool
      (** local abortable-window marker ([Prog.abortable b]); advances the
          continuation without touching shared state or emitting a trace
          event *)
  | P_abort_done
      (** aborting process with a completed cleanup section: the next
          step returns it to its NCS *)

val pending_to_string : pending -> string

(** Allocation-free projection of {!pending}: constant constructors only
    (no variable / value payloads), for per-node classification loops in
    the explorer. [K_cas]/[K_faa]/[K_swap] are only reported once any
    required RMW drain fence has run, mirroring {!pending}. *)
type pending_class =
  | K_enter
  | K_cs
  | K_exit
  | K_done
  | K_read
  | K_issue_write
  | K_begin_fence
  | K_end_fence
  | K_commit
  | K_rmw_fence
  | K_cas
  | K_faa
  | K_swap
  | K_recover
  | K_marker
  | K_abort_done

val pending_class : t -> Pid.t -> pending_class

val pending_var : t -> Pid.t -> Var.t
(** The variable of the pending event, for the classes that carry one
    ([K_read], [K_issue_write], [K_cas], [K_faa], [K_swap], [K_commit]).
    @raise Invalid_argument otherwise. *)

val create : Config.t -> t
(** A fresh machine in the initial configuration (all processes in their
    NCS, buffers empty, variables at their initial values). *)

val clone : t -> t
(** Deep copy for state-space exploration (continuations are immutable
    and shared). When the configuration has [record_trace = false], the
    trace and passage logs are empty and never written, so they are
    shared rather than copied: the clone costs O(state) instead of
    O(depth + state). A clone never inherits an active journal
    ({!Journal.enabled} is false on the copy). *)

val set_lean : t -> bool -> unit
(** Lean exploration mode. While set, {!step} / {!commit} / {!crash}
    freeze every accounting channel the explorer never reads:
    cache-directory transitions, awareness propagation, access sets,
    remote-read criticality, the RMR / fence / critical counters,
    contention tracking and the passage log — none of which enters the
    fingerprint, the footprints or the verdict checks. Verdicts, node
    counts and fingerprints are identical with the flag on or off, but a
    step sheds roughly half its journal volume and all of its side
    structure maintenance. Lean machines emit {!Event.dummy} (quiet);
    the accounting accessors ({!rmrs}, {!awareness}, contention, the
    passage log) read as of the moment the flag was set. Clones inherit
    the flag. @raise Invalid_argument if the configuration records
    traces. *)

val lean : t -> bool

val equal : t -> t -> bool
(** Structural equality of machine state: memory, writers, awareness,
    access sets, cache lines, every process's scalars, buffer, remote
    reads, passage log, and the trace. Continuations are compared
    physically ([==]) — both {!clone} and {!Journal} rollback preserve
    the continuation value itself. Journal bookkeeping and the
    configuration are not compared. *)

(** {1 Inspection} *)

val config : t -> Config.t
val trace : t -> Event.t Vec.t

val cache : t -> Cache.t
(** The cache directory (CC models; empty states under DSM). *)

val proc : t -> Pid.t -> proc
val n_procs : t -> int
val mem_value : t -> Var.t -> Value.t
val writer_of : t -> Var.t -> Pid.t option
(** [writer(v, E)]: last process to commit a write to [v]. *)

val accessed_set : t -> Var.t -> Pidset.t
(** [Accessed(v, E)]. *)

val awareness : t -> Pid.t -> Pidset.t
val section : t -> Pid.t -> section
val is_remote : t -> Pid.t -> Var.t -> bool

val loc_key : t -> Pid.t -> int
(** Stable program-location key of the process: the compiled pc when
    the process is on the compiled path ([proc.pc >= 0]), otherwise the
    structural continuation digest ({!Compile.hash_cont} — the same
    value the compiled engine caches at interning, so a location keys
    identically across engines). The profiler's location axis. *)

val passages : t -> Pid.t -> int
val fences_completed : t -> Pid.t -> int
(** EndFence events executed by the process. *)

val rmrs : t -> Pid.t -> int
val criticals : t -> Pid.t -> int
val cur_fences : t -> Pid.t -> int
val cur_criticals : t -> Pid.t -> int
val cur_rmrs : t -> Pid.t -> int
val passage_log : t -> Pid.t -> passage_stats Vec.t
val cs_entries : t -> int

val crashes : t -> Pid.t -> int
(** Crash faults injected into the process so far. *)

val crashes_total : t -> int
(** Crash faults injected into the machine so far (the explorer's crash
    budget is checked against this). *)

val needs_recovery : t -> Pid.t -> bool
(** The process's next passage will run the recovery section first. *)

val aborts : t -> Pid.t -> int
(** Abort faults delivered to the process so far. *)

val aborts_total : t -> int
(** Abort faults delivered to the machine so far (the explorer's abort
    budget is checked against this). *)

val abortable : t -> Pid.t -> bool
(** The process is inside an abortable window ([Prog.abortable true]
    executed, the matching [false] not yet). *)

val abort_deliverable : t -> Pid.t -> bool
(** An {!abort} would be legal right now: the process is in its entry
    section, inside an abortable window, and the configuration declares
    an abort section. The explorer's abort moves are gated on this. *)

val interval_contention : t -> Pid.t -> int
(** Processes active at some point during the current passage. *)

val point_contention : t -> Pid.t -> int
(** Max simultaneously-active processes during the current passage. *)

val active_now : t -> int

val mode : t -> Pid.t -> [ `Read | `Write ]
(** [`Write] iff the process is executing a fence (paper, Section 2). *)

val pending : t -> Pid.t -> pending

(** Shared-memory footprint of the event {!step} would execute, decided
    from machine state without executing it (cf. {!Prog.head_footprint}
    for the raw program-level classification). Drives the model checker's
    partial-order reduction. *)
type footprint =
  | F_none  (** finished process: {!step} would raise *)
  | F_local
      (** touches only process-local state: the process's buffer, fence
          flags, section bookkeeping and continuation — including reads
          satisfied by store-to-load forwarding *)
  | F_read of Var.t  (** reads [v] from shared memory *)
  | F_write of Var.t  (** commits a buffered write to [v] *)
  | F_rmw of Var.t  (** atomically reads and writes [v] *)
  | F_cs  (** CS execution: reads every process's entry progress *)

val step_footprint : t -> Pid.t -> footprint

val step_footprint_packed : t -> Pid.t -> int
(** {!step_footprint} without the constructor allocation: the tag in the
    low 3 bits (0 = [F_none], 1 = [F_local], 2 = [F_read], 3 = [F_write],
    4 = [F_rmw], 5 = [F_cs]) and, for the classes that carry one, the
    variable in the bits above. Explorer hot path (the model checker's
    scratch-footprint fill). *)

val step_may_enable_cs : t -> Pid.t -> bool
(** Could {!step} leave the process CS-enabled (in Entry with a completed
    entry program, outside any fence)? Conservatively [true] whenever the
    event advances the continuation of a process in (or entering) its
    entry section; exact [false] answers are guaranteed sound — the CS
    check of {!step} on {e other} processes cannot change across such an
    event. *)

(** {1 Execution} *)

val commit : t -> Pid.t -> Event.t
(** Commit the oldest buffered write of the process (the adversary may do
    this even outside fences). @raise Invalid_argument if empty. *)

val commit_var : t -> Pid.t -> Var.t -> Event.t
(** PSO only: commit the pending write to [v] out of order.
    @raise Invalid_argument under TSO or if there is no such write. *)

val step : t -> Pid.t -> Event.t
(** Execute the process's next enabled event ({!pending}).
    @raise Process_finished if it has completed all passages.
    @raise Exclusion_violation per {!Config.t.check_exclusion}. *)

val crash : ?commit_prefix:int -> t -> Pid.t -> Event.t
(** Inject a crash fault: wipe the process's continuation and fence
    state, move it to {!section.Crashed}, and apply
    {!Config.t.crash_semantics} to its write buffer — [commit_prefix]
    oldest entries reach shared memory as ordinary [Commit_write] events,
    the rest are discarded. The prefix defaults to 0 under [Drop_buffer],
    the whole buffer under [Flush_buffer], and 0 under [Atomic_prefix]
    (where any [0 <= commit_prefix <= Wbuf.size] is legal — the prefix
    length is the adversary's choice). The process subsequently recovers
    via {!step} (its pending event is [P_recover]) and, on its next
    passage, runs {!Config.t.recovery} before the entry section.
    @raise Invalid_argument if the process is finished, already crashed,
    or the prefix is illegal for the configured semantics. Crashing a
    process that is {!section.Aborting} is legal — the cleanup section
    is abandoned like any other continuation (abort × crash
    composition). *)

val abort : t -> Pid.t -> Event.t
(** Inject an abort fault: the adversary cancels the process's current
    acquisition attempt at a declared wait point. Legal only when
    {!abort_deliverable} — the process must be in its entry section with
    {!abortable} set, and the configuration must declare an
    {!Config.t.abort_section}. The process keeps its write buffer
    (unlike {!crash}), drops its fence flags, moves to
    {!section.Aborting} and runs the cleanup section; when the cleanup
    completes ([P_abort_done]), the process returns to its NCS without
    counting a passage. @raise Invalid_argument otherwise. *)

(** {1 Fingerprints and the mutation journal}

    The packed 63-bit state fingerprint is an XOR fold of one Zobrist
    term per shared variable plus one term per process (pending event,
    section, fence flag, passage/crash counts, continuation structure,
    buffered writes — the behavioral state; cost counters, awareness and
    the cache are excluded). Because the fold is XOR and each event only
    changes the stepping process's own term plus some memory cells, the
    journal maintains it incrementally: O(1) XOR deltas per memory write
    and one term recomputation per event. *)

val fingerprint : t -> int
(** Full recompute from the current state. Engine-independent: journal
    and clone exploration see identical fingerprint sets. *)

val fingerprint_fast : t -> int
(** The incrementally-maintained fingerprint when journaling is enabled
    (O(1)); falls back to {!fingerprint} otherwise. Always equal to
    {!fingerprint} — the [~paranoid_fp] explorer mode asserts this per
    node. *)

(** Speculative execution support: with journaling enabled, every state
    write performed by {!step} / {!commit} / {!commit_var} / {!crash}
    pushes an undo record onto a reusable log, and {!Journal.undo_to}
    rolls the machine back to a previously-taken mark exactly — including
    after an exception escaped mid-event (e.g. {!Exclusion_violation}).
    The in-place DFS engine expands children as step → recurse → undo on
    a single machine instead of cloning per node. *)
module Journal : sig
  type mark

  val enable : t -> unit
  (** Start journaling on this machine (clears any stale log, initializes
      the incremental fingerprint). Idempotent. *)

  val disable : t -> unit
  (** Stop journaling and drop the log. *)

  val enabled : t -> bool

  val mark : t -> mark
  (** The current log position; pass to {!undo_to} to roll back. O(1). *)

  val undo_to : t -> mark -> unit
  (** Pop and apply undo records down to [mark], restoring the machine —
      state, trace, and fingerprint — to what it was when the mark was
      taken. @raise Invalid_argument if journaling is disabled or the
      mark is beyond the current log. *)

  val depth : t -> int
  (** Current log length (in log words since PR7's flat journal, not
      records; still monotone within a step and exact for {!mark}). *)

  val peak : t -> int
  (** High-water log depth since {!enable}. *)

  val records : t -> int
  (** Total undo records pushed since {!enable} (monotone; not reduced
      by {!undo_to}). *)
end

(** {1 Adversary helpers} *)

val pending_is_special : t -> Pid.t -> bool
(** Would the pending event be special (Definition 3) if executed now? *)

type stop_reason = At_special | Done_ | Out_of_fuel

val run_until_special : ?fuel:int -> t -> Pid.t -> int * stop_reason
(** Step the process through non-special events; returns the number of
    events executed and why it stopped. *)

val run_until_passages : ?fuel:int -> t -> Pid.t -> target:int -> bool
(** Step the process until it has completed [target] passages; [false] on
    fuel exhaustion. *)
