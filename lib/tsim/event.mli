(** Execution events.

    An execution is a sequence of events (paper, Section 2). Each event
    records the machine-model verdicts made at execution time: remoteness,
    RMR accounting under the configured memory model, and criticality in
    the execution prefix (Definition 2). Criticality is relative to the
    containing execution, so analyses over erased executions recompute it
    ({!Analysis.Flow}); the flag stored here is the online fast path. *)

open Ids

type read_src =
  | From_buffer  (** store-to-load forwarding; not a variable access *)
  | From_cache
  | From_memory

type kind =
  | Enter
  | Cs
  | Exit
  | Read of { var : Var.t; value : Value.t; src : read_src }
  | Issue_write of { var : Var.t; value : Value.t }
      (** placed in the write buffer; not yet visible, not an access *)
  | Commit_write of { var : Var.t; value : Value.t }
  | Begin_fence of { implicit : bool }
      (** [implicit] = the store-buffer drain of an atomic RMW *)
  | End_fence of { implicit : bool }
  | Cas_ev of { var : Var.t; expected : Value.t; desired : Value.t;
                observed : Value.t; success : bool }
  | Faa_ev of { var : Var.t; delta : Value.t; observed : Value.t }
  | Swap_ev of { var : Var.t; stored : Value.t; observed : Value.t }
  | Crash of { committed : int; dropped : int }
      (** crash fault ({!Machine.crash}): [committed] buffered writes
          reached memory before the wipe (their [Commit_write] events
          immediately precede this one in the trace), [dropped] were
          lost *)
  | Recover
      (** the crashed process leaves the [Crashed] section and will run
          its recovery section (if any) before re-entering *)
  | Abort
      (** abort fault ({!Machine.abort}): the adversary timed the process
          out at a declared wait point; its write buffer survives and it
          runs its abort cleanup section next *)
  | Abort_done
      (** abort cleanup completed; the process returns to NCS without a
          passage *)

type t = {
  seq : int;  (** position in the trace it was produced in *)
  pid : Pid.t;
  kind : kind;
  remote : bool;
  rmr : bool;
  critical : bool;
}

val dummy : t

val accessed_var : t -> Var.t option
(** The variable the event {e accesses} in the paper's sense (commits and
    non-forwarded reads; issued writes and forwarded reads access
    nothing). *)

val mentioned_var : t -> Var.t option
(** Like {!accessed_var} but including issued writes — used by replay
    congruence. *)

val is_transition : t -> bool
val is_fence_event : t -> bool
val is_commit : t -> bool
val is_rmw : t -> bool

val is_special : t -> bool
(** Definition 3: critical, transition or fence events. *)

val published : t -> (Var.t * Value.t) option
(** The (variable, value) the event makes visible in shared memory, if
    any. *)

val shared_read : t -> Var.t option
(** The variable whose shared (non-buffer) copy the event reads, if any. *)

val kind_tag : kind -> string

val congruent : t -> t -> bool
(** Congruence (paper, Section 2): same process, same operation on the
    same variable (values may differ), or the same transition/fence. *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
