(* Growable vector. OCaml 5.1 has no [Dynarray]; this is the small subset the
   simulator needs: amortized O(1) push, O(1) random access, snapshots. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let capacity t = Array.length t.data

let grow t =
  let data = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

(* Shrink the backing array once the live prefix drops below a quarter of
   capacity, so long-lived vectors (journal logs, frontier queues) stop
   pinning their peak memory. The new capacity is twice the live length
   (with a small floor), which keeps both grow and shrink amortized O(1):
   after a shrink the vector must double before growing or quarter before
   shrinking again. *)
let min_capacity = 16

let maybe_shrink t =
  let cap = Array.length t.data in
  if cap > min_capacity && 4 * t.len < cap then begin
    let data = Array.make (max (2 * t.len) min_capacity) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  maybe_shrink t;
  x

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0;
  maybe_shrink t

(* Drop everything at index [n] and beyond: O(len - n). Bulk rollback for
   the mutation journal ([Machine.undo_to] truncates to the mark). *)
let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  Array.fill t.data n (t.len - n) t.dummy;
  t.len <- n;
  maybe_shrink t

(* Insert [x] at index [i], shifting the tail right: O(n). Undo partner of
   [remove]; only used on tiny vectors (write buffers). *)
let insert t i x =
  if i < 0 || i > t.len then invalid_arg "Vec.insert";
  if t.len = Array.length t.data then grow t;
  Array.blit t.data i t.data (i + 1) (t.len - i);
  t.data.(i) <- x;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let for_all p t = not (exists (fun x -> not (p x)) t)

let find_opt p t =
  let rec go i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else go (i + 1)
  in
  go 0

let filter p t =
  let out = create ~capacity:(max 1 t.len) t.dummy in
  iter (fun x -> if p x then push out x) t;
  out

let map f t ~dummy =
  let out = create ~capacity:(max 1 t.len) dummy in
  iter (fun x -> push out (f x)) t;
  out

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_list dummy xs =
  let t = create ~capacity:(max 1 (List.length xs)) dummy in
  List.iter (push t) xs;
  t

(* Copies trim to the live prefix: a clone should pay for its contents,
   not for the source's slack capacity (the machine trace starts at 1024
   slots — exploration clones must not copy 1024 slots per node). *)
let copy t =
  let data = Array.make (max t.len 1) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  { data; len = t.len; dummy = t.dummy }

(* Remove the element at [i], shifting the tail left: O(n). The write buffer
   is tiny in practice, so this is fine there. *)
let remove t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.remove";
  let x = t.data.(i) in
  Array.blit t.data (i + 1) t.data i (t.len - i - 1);
  t.len <- t.len - 1;
  t.data.(t.len) <- t.dummy;
  maybe_shrink t;
  x
