(** Machine configuration.

    A configuration fixes everything a deterministic replay needs: process
    count, memory/cost model, store ordering, variable layout, and the
    per-process entry/exit programs. Erasure re-creates machines from the
    same configuration, which is why programs live here. *)

open Ids

(** Memory cost model (paper, Section 2). *)
type mem_model =
  | Dsm  (** distributed shared memory: remote accesses are RMRs *)
  | Cc_wt  (** cache-coherent, write-through protocol *)
  | Cc_wb  (** cache-coherent, write-back protocol *)

val mem_model_name : mem_model -> string

(** Store ordering: TSO (the paper's model, FIFO write buffers) or PSO
    (Section 6; writes to different variables may commit out of order). *)
type ordering = Tso | Pso

val ordering_name : ordering -> string

(** Fate of a crashed process's write buffer ({!Machine.crash}); the
    three models bracket the recoverable-mutual-exclusion literature:
    [Drop_buffer] loses every pending write, [Flush_buffer] commits them
    all atomically, [Atomic_prefix] commits an adversary-chosen FIFO
    prefix and drops the rest. *)
type crash_semantics = Drop_buffer | Flush_buffer | Atomic_prefix

val crash_semantics_name : crash_semantics -> string

(** Exploration child-expansion strategy: [`Journal] steps one machine in
    place and rolls back through the mutation journal ({!Machine.Journal},
    the default — O(touched words) per node); [`Clone] copies the machine
    per child (the legacy engine, kept selectable for differential
    testing); [`Compiled] is the journal engine on top of compile-ahead
    program execution ({!Compile}: continuations interned into a flat
    instruction array, cached structural hashes, allocation-free steps).
    The three engines visit identical state spaces with identical
    verdicts and fingerprints. *)
type engine = [ `Clone | `Journal | `Compiled ]

val engine_name : engine -> string

val default_engine : unit -> engine
(** The engine {!make} uses when [?engine] is omitted: [`Journal], unless
    the [PA_ENGINE] environment variable selects another ("journal",
    "clone", "compiled") — the hook CI uses to run every suite under a
    different engine. *)

(** Exploration seen-state memory policy:

    - [Store_exact]: every distinct fingerprint is remembered (the
      default). Exact dedup; memory grows with the reachable space.
    - [Store_bitstate { log2_bits; hashes }]: SPIN-style
      bitstate/supertrace hashing — [hashes] hash functions into a bit
      array of [2^log2_bits] bits. Fixed memory; distinct states may
      alias, so the search under-approximates coverage and the explorer
      reports an omission-probability estimate
      ({!Mcheck.Explore.stats.omission_prob} in lib/mcheck). The
      explorer suspends sleep-set pruning at each newly-admitted state
      under this mode (a one-bit store cannot remember slept moves), so
      aliasing is the only omission source the estimate must cover.
    - [Store_bounded { log2_slots }]: exact fingerprints in a fixed
      table of [2^log2_slots] slots with eviction under collision
      pressure. Fixed memory, still exhaustive — evicted states reached
      again are re-explored (time, never soundness). *)
type store_mode =
  | Store_exact
  | Store_bitstate of { log2_bits : int; hashes : int }
  | Store_bounded of { log2_slots : int }

val store_mode_name : store_mode -> string

type t = {
  n : int;
  model : mem_model;
  ordering : ordering;
  layout : Layout.t;
  entry : Pid.t -> unit Prog.t;  (** entry-section program, per passage *)
  exit_section : Pid.t -> unit Prog.t;
  max_passages : int;
  rmw_drains : bool;
      (** atomic RMWs drain the store buffer and count one fence, as on
          x86 (LOCK prefix) *)
  check_exclusion : bool;
      (** raise when two CS events are simultaneously enabled *)
  record_trace : bool;
      (** emit events into {!Machine.trace} and the per-process passage
          logs. On by default; state-space exploration turns it off so
          that {!Machine.clone} costs O(state) instead of O(depth +
          state). With recording off the trace stays empty (erasure,
          rendering and passage statistics are unavailable) and
          [Event.seq] numbers are all 0. *)
  crash_semantics : crash_semantics;
      (** what {!Machine.crash} does to the pending write buffer *)
  recovery : (Pid.t -> unit Prog.t) option;
      (** recovery section prepended to the entry section on the first
          passage a process starts after a crash; [None] means the
          process simply restarts at the entry label *)
  abort_section : (Pid.t -> unit Prog.t) option;
      (** cleanup section run after the adversary aborts the process at a
          declared wait point ({!Machine.abort}); must leave the lock
          reusable. [None] = not abortable, abort moves never apply *)
  engine : engine;  (** exploration child-expansion strategy *)
  pure_programs : bool;
      (** declared promise that the program constructors and every
          continuation they build are effect-free (constructing a program
          twice yields structurally identical terms; applying a
          continuation has no observable effect besides its result). The
          [`Compiled] engine caches interned continuations and applies
          each at most once, which is faithful only under this promise;
          configurations that do not declare it degrade [`Compiled] to
          the journal interpreter. Locks passing per-passage scratch
          through mutable OCaml arrays must leave it [false]. *)
  store : store_mode;  (** exploration seen-state memory policy *)
}

val make :
  ?model:mem_model ->
  ?ordering:ordering ->
  ?max_passages:int ->
  ?rmw_drains:bool ->
  ?check_exclusion:bool ->
  ?record_trace:bool ->
  ?crash_semantics:crash_semantics ->
  ?recovery:(Pid.t -> unit Prog.t) ->
  ?abort_section:(Pid.t -> unit Prog.t) ->
  ?engine:engine ->
  ?pure_programs:bool ->
  ?store:store_mode ->
  n:int ->
  layout:Layout.t ->
  entry:(Pid.t -> unit Prog.t) ->
  exit_section:(Pid.t -> unit Prog.t) ->
  unit ->
  t
(** Defaults: [Cc_wb], [Tso], one passage, RMWs drain, exclusion checked,
    trace recorded, [Drop_buffer] crash semantics, no recovery section,
    {!default_engine} (journal unless [PA_ENGINE] overrides it), programs
    not declared pure, [Store_exact] seen-state store.
    @raise Invalid_argument if [n <= 0] or a [store] parameter is out of
    range ([log2_bits] outside [10, 36], [hashes] outside [1, 8],
    [log2_slots] outside [8, 30]). *)

val summary : t -> string
(** One-line human identity of a configuration
    (["n=2 model=CC-WB ordering=TSO passages=1 engine=journal ..."]):
    what a profile or report should record so two artifacts can be
    checked for comparability. Programs and layout are not rendered —
    two configs with equal summaries may still differ in code. *)
