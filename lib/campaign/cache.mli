(** Persistent campaign result cache.

    One append-only NDJSON file: a header line carrying the format
    version and the {!Cell.code_salt}, then one line per completed cell
    [{"key": <canonical cell key>, "outcome": {...}}]. Append-only is
    what makes a killed campaign resumable — every completed cell was
    flushed when it finished, so the next run picks up exactly where
    the previous one died.

    Loading is tolerant and never trusts silently: a missing file is an
    empty cache; a header that fails to parse or disagrees on
    version/salt invalidates {e every} entry (the file is rewritten
    fresh on the next append); an individual line that fails to parse —
    the torn tail of a killed write, hand-edited corruption — is
    counted and skipped, losing only that cell. Duplicate keys keep the
    last occurrence, which is how budget-escalated re-runs supersede
    their earlier partial outcomes without rewriting the file. *)

type stats = {
  loaded : int;  (** entries accepted *)
  skipped : int;  (** unparseable or malformed lines dropped *)
  invalid_header : bool;
      (** the header was missing, unparseable, or version/salt
          mismatched — every prior entry was discarded *)
}

type t

val in_memory : unit -> t
(** No backing file: a cache that lives for one campaign run (tests,
    benches). *)

val open_file : resume:bool -> string -> t * stats
(** File-backed cache. With [~resume:false] the file is truncated and a
    fresh header written — a cold run. With [~resume:true] existing
    entries are loaded per the tolerance rules above and subsequent
    adds append. A nonexistent file is created either way.
    @raise Sys_error if the path cannot be opened for writing. *)

val find : t -> string -> Cell.outcome option
(** Latest outcome recorded for a cell key. Apply {!Cell.usable} before
    trusting it for a given budget. *)

val add : t -> string -> Cell.outcome -> unit
(** Record (or supersede) an outcome; file-backed caches append the
    line and flush immediately, so a kill after [add] never loses the
    cell. *)

val entries : t -> int

val close : t -> unit
(** Flush and close the backing file, if any. Idempotent. *)
