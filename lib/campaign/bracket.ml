(* Doubling to bracket, three-division refinement — the CloudNetworking
   search shape applied to integer threshold finding. Probes are
   memoized so analysing the interval endpoints twice costs nothing and
   [stats.evals] counts distinct explorer jobs. *)

type stats = { mutable evals : int; mutable probed : (int * bool) list }

let new_stats () = { evals = 0; probed = [] }

let memoized ?stats p =
  let seen = Hashtbl.create 16 in
  fun x ->
    match Hashtbl.find_opt seen x with
    | Some v -> v
    | None ->
        let v = p x in
        Hashtbl.add seen x v;
        (match stats with
        | Some s ->
            s.evals <- s.evals + 1;
            s.probed <- (x, v) :: s.probed
        | None -> ());
        v

let least ?stats ~lo ~hi p =
  if lo > hi then invalid_arg "Bracket.least: lo > hi";
  let p = memoized ?stats p in
  if p lo then Some lo
  else if not (p hi) then None
  else begin
    (* bracket: double the distance from the known-false end until the
       predicate flips. Invariant after the loop: not (p !l) && p !h. *)
    let l = ref lo and h = ref hi in
    let span = ref 1 in
    (try
       while true do
         let x = min hi (lo + !span) in
         if p x then begin
           h := x;
           raise Exit
         end
         else l := x;
         if x = hi then raise Exit (* cannot happen: p hi holds *)
         else span := !span * 2
       done
     with Exit -> ());
    (* three-division refinement: evaluate the third-points m1 < m2 of
       (l, h) and keep the sub-interval the flip is in. Each round
       shrinks the interval to at most ~2/3 (often 1/3), so the probe
       count stays logarithmic. *)
    while !h - !l > 1 do
      let w = !h - !l in
      let m1 = !l + max 1 (w / 3) in
      let m2 = min (!h - 1) (!l + max 2 (2 * w / 3)) in
      if p m1 then h := m1
      else if m2 > m1 && m2 < !h then
        if p m2 then begin
          l := m1;
          h := m2
        end
        else l := m2
      else l := m1
    done;
    Some !h
  end

let greatest ?stats ~lo ~hi p =
  if lo > hi then invalid_arg "Bracket.greatest: lo > hi";
  (* the greatest x with p x (true then false) sits one below the least
     x with (not (p x)); share the memo through the same closure so the
     complement costs no extra evaluations *)
  let p = memoized ?stats p in
  if not (p lo) then None
  else
    match least ~lo ~hi (fun x -> not (p x)) with
    | None -> Some hi
    | Some first_false -> Some (first_false - 1)
