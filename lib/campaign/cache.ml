(* Append-only NDJSON result cache; see the interface for the
   tolerance contract. The writer keeps the channel open in append mode
   and flushes after every line, so completed cells survive any kill. *)

type stats = { loaded : int; skipped : int; invalid_header : bool }

type t = {
  table : (string, Cell.outcome) Hashtbl.t;
  oc : out_channel option;
}

let format_name = "price_adaptive.campaign.cache"
let version = 1

let header_json () =
  Obs.Json.Obj
    [
      ("format", Obs.Json.String format_name);
      ("version", Obs.Json.Int version);
      ("salt", Obs.Json.String Cell.code_salt);
    ]

let header_ok line =
  match Obs.Json.parse line with
  | Error _ -> false
  | Ok j ->
      Obs.Json.member "format" j = Some (Obs.Json.String format_name)
      && Obs.Json.member "version" j = Some (Obs.Json.Int version)
      && Obs.Json.member "salt" j = Some (Obs.Json.String Cell.code_salt)

let in_memory () = { table = Hashtbl.create 64; oc = None }

let entry_of_line line =
  match Obs.Json.parse line with
  | Error _ -> None
  | Ok j -> (
      match (Obs.Json.member "key" j, Obs.Json.member "outcome" j) with
      | Some (Obs.Json.String key), Some oj -> (
          match Cell.outcome_of_json oj with
          | Ok o -> Some (key, o)
          | Error _ -> None)
      | _ -> None)

let read_lines path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !lines

let open_file ~resume path =
  let table = Hashtbl.create 64 in
  let fresh () =
    (* truncate and start over: cold run, or an untrusted header *)
    let oc = open_out path in
    output_string oc (Obs.Json.to_string (header_json ()));
    output_char oc '\n';
    flush oc;
    oc
  in
  if not resume then
    ({ table; oc = Some (fresh ()) }, { loaded = 0; skipped = 0;
                                        invalid_header = false })
  else
    match read_lines path with
    | [] ->
        (* nonexistent or empty: indistinguishable from a cold start *)
        ( { table; oc = Some (fresh ()) },
          { loaded = 0; skipped = 0; invalid_header = false } )
    | header :: rest when header_ok header ->
        let skipped = ref 0 in
        List.iter
          (fun line ->
            if String.trim line <> "" then
              match entry_of_line line with
              | Some (key, o) -> Hashtbl.replace table key o
              | None -> incr skipped)
          rest;
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
        in
        (* heal a torn tail: a kill mid-write leaves the file without a
           trailing newline, and appending straight after it would glue
           the next entry onto the torn line, losing both *)
        (try
           let ic = open_in_bin path in
           let len = in_channel_length ic in
           let torn =
             len > 0
             && (seek_in ic (len - 1);
                 input_char ic <> '\n')
           in
           close_in ic;
           if torn then begin
             output_char oc '\n';
             flush oc
           end
         with Sys_error _ -> ());
        ( { table; oc = Some oc },
          { loaded = Hashtbl.length table; skipped = !skipped;
            invalid_header = false } )
    | _ ->
        (* wrong format, version or salt: never trust a single entry *)
        ( { table; oc = Some (fresh ()) },
          { loaded = 0; skipped = 0; invalid_header = true } )

let find t key = Hashtbl.find_opt t.table key

let add t key outcome =
  Hashtbl.replace t.table key outcome;
  match t.oc with
  | None -> ()
  | Some oc ->
      output_string oc
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("key", Obs.Json.String key);
                ("outcome", Cell.outcome_to_json outcome);
              ]));
      output_char oc '\n';
      flush oc

let entries t = Hashtbl.length t.table

let close t =
  match t.oc with
  | None -> ()
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
