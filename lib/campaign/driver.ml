(* The campaign orchestrator. Scheduling policy and determinism
   contract live here; single-cell mechanics are in Runner, persistence
   in Cache, frontier search in Bracket.

   Determinism: a cell's outcome is the sequential explorer's, so the
   only sources of run-to-run variation are scheduling (which worker ran
   what, in which order) and wall-clock. Both are kept out of the
   report: cells are emitted in canonical key order with outcomes only,
   and timings go to telemetry. That is what makes "warm re-run is
   byte-identical" a testable contract rather than a hope. *)

exception Interrupted

(* --- spec parsing ------------------------------------------------------ *)

exception Spec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

let tokens_of s =
  String.map (function ';' | '\t' | '\n' -> ' ' | c -> c) s
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let split_kv tok =
  match String.index_opt tok '=' with
  | Some i when i > 0 ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  | _ -> None

(* "0,2-4" -> [0;2;3;4] *)
let ints_of field v =
  let range p =
    match String.index_opt p '-' with
    | Some i when i > 0 -> (
        let a = int_of_string_opt (String.sub p 0 i)
        and b =
          int_of_string_opt (String.sub p (i + 1) (String.length p - i - 1))
        in
        match (a, b) with
        | Some a, Some b when a <= b -> List.init (b - a + 1) (fun k -> a + k)
        | _ -> fail "%s: bad range %S" field p)
    | _ -> (
        match int_of_string_opt p with
        | Some x -> [ x ]
        | None -> fail "%s: bad integer %S" field p)
  in
  List.concat_map range (String.split_on_char ',' v)

let enums_of field of_code v =
  List.map
    (fun p ->
      match of_code p with
      | Some x -> x
      | None -> fail "%s: unknown value %S" field p)
    (String.split_on_char ',' v)

let kind_of_code = function
  | "verify" -> Some Cell.Verify
  | "adversary" -> Some Cell.Adversary
  | _ -> None

let por_of_code = function
  | "on" -> Some true
  | "off" -> Some false
  | _ -> None

let parse_grid_exn spec =
  let kinds = ref [ Cell.Verify ]
  and locks = ref []
  and ns = ref [ 2 ]
  and models = ref [ Tsim.Config.Cc_wb ]
  and ords = ref [ Tsim.Config.Tso ]
  and passes = ref [ 1 ]
  and crashes = ref [ 0 ]
  and aborts = ref [ 0 ]
  and csems = ref [ Tsim.Config.Drop_buffer ]
  and stores = ref [ Tsim.Config.Store_exact ]
  and pors = ref [ true ] in
  List.iter
    (fun tok ->
      match split_kv tok with
      | None -> fail "expected field=values, got %S" tok
      | Some (k, v) -> (
          match k with
          | "kind" -> kinds := enums_of k kind_of_code v
          | "lock" -> locks := String.split_on_char ',' v
          | "n" -> ns := ints_of k v
          | "model" -> models := enums_of k Cell.model_of_code v
          | "ord" -> ords := enums_of k Cell.ordering_of_code v
          | "pass" -> passes := ints_of k v
          | "crashes" -> crashes := ints_of k v
          | "aborts" -> aborts := ints_of k v
          | "csem" -> csems := enums_of k Cell.csem_of_code v
          | "store" -> stores := enums_of k Cell.store_of_code v
          | "por" -> pors := enums_of k por_of_code v
          | k -> fail "unknown grid field %S" k))
    (tokens_of spec);
  if !locks = [] then fail "grid needs at least one lock=...";
  (* cartesian product over every dimension *)
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun lock ->
          List.concat_map
            (fun n ->
              List.concat_map
                (fun model ->
                  List.concat_map
                    (fun ordering ->
                      List.concat_map
                        (fun passages ->
                          List.concat_map
                            (fun max_crashes ->
                              List.concat_map
                                (fun max_aborts ->
                                  List.concat_map
                                    (fun crash_semantics ->
                                      List.concat_map
                                        (fun store ->
                                          List.map
                                            (fun por ->
                                              Cell.make ~kind ~model ~ordering
                                                ~passages ~max_crashes
                                                ~max_aborts ~crash_semantics
                                                ~store ~por ~lock ~n ())
                                            !pors)
                                        !stores)
                                    !csems)
                                !aborts)
                            !crashes)
                        !passes)
                    !ords)
                !models)
            !ns)
        !locks)
    !kinds

let parse_grid spec =
  match parse_grid_exn spec with
  | cells -> Ok cells
  | exception Spec_error m -> Error m

(* --- bracket specs ----------------------------------------------------- *)

type bracket_goal =
  | Min_n_fences of int
  | Max_exhaustive_n
  | Min_crashes_refute
  | Min_aborts_refute

let goal_name = function
  | Min_n_fences _ -> "min-n-fences"
  | Max_exhaustive_n -> "max-exhaustive-n"
  | Min_crashes_refute -> "min-crashes-refute"
  | Min_aborts_refute -> "min-aborts-refute"

type bracket_spec = {
  goal : bracket_goal;
  base : Cell.t;
  lo : int;
  hi : int;
}

let parse_bracket_exn spec =
  match tokens_of spec with
  | [] -> fail "empty bracket spec"
  | goal_tok :: fields ->
      let kv = List.map (fun t ->
          match split_kv t with
          | Some kv -> kv
          | None -> fail "expected field=value, got %S" t)
          fields
      in
      let get k = List.assoc_opt k kv in
      let int_f k =
        Option.map
          (fun v ->
            match int_of_string_opt v with
            | Some x -> x
            | None -> fail "%s: bad integer %S" k v)
          (get k)
      in
      let enum_f k of_code =
        Option.map
          (fun v ->
            match of_code v with
            | Some x -> x
            | None -> fail "%s: unknown value %S" k v)
          (get k)
      in
      List.iter
        (fun (k, _) ->
          match k with
          | "lock" | "n" | "model" | "ord" | "pass" | "crashes" | "aborts"
          | "csem" | "store" | "por" | "k" | "lo" | "hi" ->
              ()
          | k -> fail "unknown bracket field %S" k)
        kv;
      let goal, kind, default_lo, default_hi =
        match goal_tok with
        | "min-n-fences" -> (
            match int_f "k" with
            | Some k when k >= 1 -> (Min_n_fences k, Cell.Adversary, 2, 8)
            | Some _ -> fail "min-n-fences: k must be >= 1"
            | None -> fail "min-n-fences needs k=<fences>")
        | "max-exhaustive-n" -> (Max_exhaustive_n, Cell.Verify, 2, 8)
        | "min-crashes-refute" -> (Min_crashes_refute, Cell.Verify, 0, 4)
        | "min-aborts-refute" -> (Min_aborts_refute, Cell.Verify, 0, 4)
        | g -> fail "unknown bracket goal %S" g
      in
      let lock =
        match get "lock" with
        | Some l -> l
        | None -> fail "bracket needs lock=..."
      in
      let base =
        Cell.make ~kind
          ?model:(enum_f "model" Cell.model_of_code)
          ?ordering:(enum_f "ord" Cell.ordering_of_code)
          ?passages:(int_f "pass") ?max_crashes:(int_f "crashes")
          ?max_aborts:(int_f "aborts")
          ?crash_semantics:(enum_f "csem" Cell.csem_of_code)
          ?store:(enum_f "store" Cell.store_of_code)
          ?por:(enum_f "por" por_of_code) ~lock
          ~n:(Option.value (int_f "n") ~default:2)
          ()
      in
      let lo = Option.value (int_f "lo") ~default:default_lo in
      let hi = Option.value (int_f "hi") ~default:default_hi in
      if lo > hi then fail "bracket has lo=%d > hi=%d" lo hi;
      { goal; base; lo; hi }

let parse_bracket spec =
  match parse_bracket_exn spec with
  | b -> Ok b
  | exception Spec_error m -> Error m

type plan = { grid : Cell.t list; brackets : bracket_spec list }

(* the cell a bracket evaluates at probe point [x] *)
let cell_at spec x =
  match spec.goal with
  | Min_n_fences _ | Max_exhaustive_n -> { spec.base with Cell.n = x }
  | Min_crashes_refute -> { spec.base with Cell.max_crashes = x }
  | Min_aborts_refute -> { spec.base with Cell.max_aborts = x }

let predicate spec (o : Cell.outcome) =
  match (spec.goal, o.Cell.verdict) with
  | Min_n_fences k, Cell.Fences f -> f >= k
  | Max_exhaustive_n, Cell.Partial _ -> false
  | Max_exhaustive_n, _ -> true
  | (Min_crashes_refute | Min_aborts_refute), Cell.Violation _ -> true
  | _ -> false

(* --- scheduling -------------------------------------------------------- *)

let planned cells =
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun c ->
        let k = Cell.key c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      cells
  in
  List.sort
    (fun a b ->
      let c = Float.compare (Cell.cost_hint a) (Cell.cost_hint b) in
      if c <> 0 then c else Cell.compare a b)
    uniq

type cell_result = {
  cell : Cell.t;
  outcome : Cell.outcome;
  from_cache : bool;
}

type bracket_result = {
  spec : bracket_spec;
  answer : int option;
  evals : int;
  probed : (int * bool) list;
}

type result = {
  cells : cell_result list;
  brackets : bracket_result list;
  interrupted : bool;
  executed : int;
  hits : int;
}

(* Start each verify cell at a slice of the cap and escalate by 4x on
   budget-limited partials: cheap cells resolve in the first rung, and
   geometric growth bounds total rung work at 4/3 of the final rung. *)
let initial_budget cap = min cap (max 4096 (cap / 64))

let execute ?stop ?max_millis ?spin_fuel ~cap cell =
  match cell.Cell.kind with
  | Cell.Adversary ->
      Runner.run ?stop ?max_millis ?spin_fuel ~budget_nodes:cap cell
  | Cell.Verify ->
      let rec go budget =
        let o =
          Runner.run ?stop ?max_millis ?spin_fuel ~budget_nodes:budget cell
        in
        match o.Cell.verdict with
        | Cell.Partial "nodes" when budget < cap -> go (min cap (budget * 4))
        | _ -> o
      in
      go (initial_budget cap)

(* Never cache a time-limited or interrupt-limited partial — both are
   wall-clock accidents and would poison warm-run determinism. A node
   partial is only produced at the full cap (the ladder above), which is
   exactly what [Cell.usable] wants recorded. *)
let cacheable (o : Cell.outcome) =
  match o.Cell.verdict with
  | Cell.Partial "nodes" -> true
  | Cell.Partial _ -> false
  | _ -> true

let run ?(jobs = 1) ?(max_nodes = 200_000) ?max_millis ?(spin_fuel = 6)
    ?stop ?(obs = Obs.Telemetry.null) ~cache plan =
  let stop =
    match stop with Some s -> s | None -> Atomic.make false
  in
  (* Pin the process-global spin fuel for the whole campaign. Each
     explore call saves/sets/restores this ref itself; with concurrent
     cells the first finisher would restore the pre-campaign value
     (1e6 at startup) under the feet of still-running searches and blow
     their busy-wait bound. Pinning here makes every save/set/restore
     write the same value, so the race is value-free. This is also why
     spin fuel is campaign-level and not a cell axis. *)
  let saved_fuel = !Tsim.Prog.default_spin_fuel in
  Tsim.Prog.default_spin_fuel := spin_fuel;
  Fun.protect
    ~finally:(fun () -> Tsim.Prog.default_spin_fuel := saved_fuel)
  @@ fun () ->
  let cap = max_nodes in
  (* validate everything before spending any budget *)
  List.iter Runner.resolve plan.grid;
  List.iter
    (fun spec ->
      Runner.resolve (cell_at spec spec.lo);
      Runner.resolve (cell_at spec spec.hi))
    plan.brackets;
  let grid = planned plan.grid in
  let executed = ref 0 and hits = ref 0 in
  let est = Obs.Estimator.create () in
  let t_start = Unix.gettimeofday () in
  let last_beat = ref t_start in
  let done_cells = ref 0 in
  let total_cells = List.length grid in
  let cell_done () =
    incr done_cells;
    Obs.Estimator.enter est ~children:0;
    Obs.Estimator.leave est
  in
  let heartbeat () =
    let now = Unix.gettimeofday () in
    if Obs.Telemetry.enabled obs && now -. !last_beat >= 1.0 then begin
      last_beat := now;
      let p = Obs.Estimator.progress est in
      Obs.Telemetry.gauge obs "campaign.progress" p;
      if p > 0.0 then
        Obs.Telemetry.gauge obs "campaign.eta_s"
          ((now -. t_start) *. (1.0 -. p) /. p);
      Obs.Telemetry.instant obs "campaign.heartbeat"
        ~args:
          [
            ("done", Obs.Json.Int !done_cells);
            ("total", Obs.Json.Int total_cells);
            ("executed", Obs.Json.Int !executed);
            ("hits", Obs.Json.Int !hits);
          ]
    end
  in
  let emit_cell cell (o : Cell.outcome) ~cached ~dur_us =
    if Obs.Telemetry.enabled obs then begin
      let args =
        [
          ("key", Obs.Json.String (Cell.key cell));
          ("verdict", Obs.Json.String (Cell.verdict_to_string o.Cell.verdict));
          ("nodes", Obs.Json.Int o.Cell.nodes);
          ("cached", Obs.Json.Bool cached);
        ]
      in
      if cached then Obs.Telemetry.instant obs "campaign.cell" ~args
      else
        let ts1 = Obs.Telemetry.now_us obs in
        Obs.Telemetry.span_at obs ~ts0:(max 0 (ts1 - dur_us)) ~ts1
          ~args "campaign.cell"
    end
  in
  (* cache-aware execution used by probes and the sequential path; the
     parallel path reproduces its pieces around the worker pool *)
  let exec_cached cell =
    let k = Cell.key cell in
    match Cache.find cache k with
    | Some o when Cell.usable o ~budget_nodes:cap ->
        incr hits;
        emit_cell cell o ~cached:true ~dur_us:0;
        { cell; outcome = o; from_cache = true }
    | _ ->
        let t0 = Unix.gettimeofday () in
        let o = execute ~stop ?max_millis ~spin_fuel ~cap cell in
        let dur_us =
          int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
        in
        incr executed;
        if cacheable o then Cache.add cache k o;
        emit_cell cell o ~cached:false ~dur_us;
        { cell; outcome = o; from_cache = false }
  in
  Obs.Estimator.enter est ~children:total_cells;
  if Obs.Telemetry.enabled obs then
    Obs.Telemetry.instant obs "campaign.plan"
      ~args:
        [
          ("cells", Obs.Json.Int total_cells);
          ("brackets", Obs.Json.Int (List.length plan.brackets));
          ("jobs", Obs.Json.Int jobs);
          ("max_nodes", Obs.Json.Int cap);
        ];
  let interrupted = ref false in
  let results = ref [] in
  (* grid cells: hits answered inline, misses executed (possibly on a
     worker pool) *)
  let misses =
    List.filter
      (fun cell ->
        let k = Cell.key cell in
        match Cache.find cache k with
        | Some o when Cell.usable o ~budget_nodes:cap ->
            incr hits;
            emit_cell cell o ~cached:true ~dur_us:0;
            results := { cell; outcome = o; from_cache = true } :: !results;
            cell_done ();
            false
        | _ -> true)
      grid
  in
  let record_executed cell o dur_us =
    incr executed;
    if cacheable o then Cache.add cache Cell.(key cell) o;
    emit_cell cell o ~cached:false ~dur_us;
    results := { cell; outcome = o; from_cache = false } :: !results;
    cell_done ()
  in
  (if misses <> [] then
     let todo = Array.of_list misses in
     let n_todo = Array.length todo in
     let nw = max 1 (min jobs n_todo) in
     if nw <= 1 then
       (* sequential: no domains, no queue — the common small case *)
       Array.iter
         (fun cell ->
           if not (Atomic.get stop) then begin
             let t0 = Unix.gettimeofday () in
             let o = execute ~stop ?max_millis ~spin_fuel ~cap cell in
             let dur_us =
               int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
             in
             record_executed cell o dur_us;
             heartbeat ()
           end)
         todo
     else begin
       (* deal cells round-robin onto per-worker deques; idle workers
          steal. Workers never touch the cache, the telemetry hub or
          the results list — they push raw outcomes through a mutexed
          queue the coordinator drains. *)
       let deques = Array.init nw (fun _ -> Mcheck.Deque.create ()) in
       Array.iteri
         (fun i _ -> Mcheck.Deque.push deques.(i mod nw) i)
         todo;
       let q = Queue.create () in
       let qm = Mutex.create () in
       let exited = Atomic.make 0 in
       let worker w () =
         let next () =
           match Mcheck.Deque.pop deques.(w) with
           | Some i -> Some i
           | None ->
               (* no worker produces new work, so one failed sweep over
                  every deque means the pool is drained *)
               let rec sweep k =
                 if k = nw then None
                 else
                   match Mcheck.Deque.steal deques.((w + k) mod nw) with
                   | Some i -> Some i
                   | None -> sweep (k + 1)
               in
               sweep 1
         in
         let rec loop () =
           if not (Atomic.get stop) then
             match next () with
             | None -> ()
             | Some i ->
                 let cell = todo.(i) in
                 let t0 = Unix.gettimeofday () in
                 let o = execute ~stop ?max_millis ~spin_fuel ~cap cell in
                 let dur_us =
                   int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
                 in
                 Mutex.protect qm (fun () -> Queue.add (i, o, dur_us) q);
                 loop ()
         in
         loop ();
         Atomic.incr exited
       in
       let domains =
         Array.init nw (fun w -> Domain.spawn (worker w))
       in
       let received = ref 0 in
       let drain () =
         let batch =
           Mutex.protect qm (fun () ->
               let b = List.of_seq (Queue.to_seq q) in
               Queue.clear q;
               b)
         in
         List.iter
           (fun (i, o, dur_us) ->
             incr received;
             record_executed todo.(i) o dur_us)
           batch
       in
       while !received < n_todo && Atomic.get exited < nw do
         Unix.sleepf 0.02;
         drain ();
         heartbeat ()
       done;
       Array.iter Domain.join domains;
       drain ()
     end);
  if Atomic.get stop then interrupted := true;
  if not !interrupted then begin
    Obs.Estimator.leave est;
    heartbeat ()
  end;
  (* frontier brackets: sequential, every probe lands in the cache *)
  let brackets =
    List.map
      (fun spec ->
        if !interrupted then
          { spec; answer = None; evals = 0; probed = [] }
        else begin
          let stats = Bracket.new_stats () in
          let p x =
            if Atomic.get stop then raise Interrupted;
            let r = exec_cached (cell_at spec x) in
            if Atomic.get stop && not (Cell.definitive r.outcome) then
              raise Interrupted;
            predicate spec r.outcome
          in
          let answer =
            try
              match spec.goal with
              | Max_exhaustive_n ->
                  Bracket.greatest ~stats ~lo:spec.lo ~hi:spec.hi p
              | Min_n_fences _ | Min_crashes_refute | Min_aborts_refute ->
                  Bracket.least ~stats ~lo:spec.lo ~hi:spec.hi p
            with Interrupted ->
              interrupted := true;
              None
          in
          if Obs.Telemetry.enabled obs then
            Obs.Telemetry.instant obs "campaign.bracket"
              ~args:
                [
                  ("goal", Obs.Json.String (goal_name spec.goal));
                  ("base", Obs.Json.String (Cell.key spec.base));
                  ( "answer",
                    match answer with
                    | Some a -> Obs.Json.Int a
                    | None -> Obs.Json.Null );
                  ("evals", Obs.Json.Int stats.Bracket.evals);
                ];
          {
            spec;
            answer;
            evals = stats.Bracket.evals;
            probed =
              List.sort
                (fun (a, _) (b, _) -> Stdlib.compare a b)
                stats.Bracket.probed;
          }
        end)
      plan.brackets
  in
  {
    cells =
      List.sort (fun a b -> Cell.compare a.cell b.cell) !results;
    brackets;
    interrupted = !interrupted;
    executed = !executed;
    hits = !hits;
  }

(* --- report ------------------------------------------------------------ *)

let report_version = 1

let report_json r =
  let open Obs.Json in
  let cell_json cr =
    Obj
      [
        ("key", String (Cell.key cr.cell));
        ("outcome", Cell.outcome_to_json cr.outcome);
      ]
  in
  let bracket_json br =
    let target =
      match br.spec.goal with
      | Min_n_fences k -> [ ("k", Int k) ]
      | _ -> []
    in
    Obj
      ([ ("goal", String (goal_name br.spec.goal)) ]
      @ target
      @ [
          ("base", String (Cell.key br.spec.base));
          ("lo", Int br.spec.lo);
          ("hi", Int br.spec.hi);
          ( "answer",
            match br.answer with Some a -> Int a | None -> Null );
          ("evals", Int br.evals);
          ( "probed",
            List
              (Stdlib.List.map
                 (fun (x, v) -> List [ Int x; Bool v ])
                 br.probed) );
        ])
  in
  Obj
    [
      ("format", String "price_adaptive.campaign.report");
      ("version", Int report_version);
      ("complete", Bool (not r.interrupted));
      ("cells", List (Stdlib.List.map cell_json r.cells));
      ("brackets", List (Stdlib.List.map bracket_json r.brackets));
    ]

let validate_report j =
  let open Obs.Json in
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Stdlib.Result.bind in
  let* () =
    check
      (member "format" j = Some (String "price_adaptive.campaign.report"))
      "missing or wrong format field"
  in
  let* () =
    match member "version" j with
    | Some (Int v) when v >= 1 && v <= report_version -> Ok ()
    | Some (Int v) -> Error (Printf.sprintf "unsupported version %d" v)
    | _ -> Error "missing version field"
  in
  let* () =
    match member "complete" j with
    | Some (Bool _) -> Ok ()
    | _ -> Error "missing complete field"
  in
  let* cells =
    match member "cells" j with
    | Some (List cs) -> Ok cs
    | _ -> Error "missing cells list"
  in
  let* keys =
    Stdlib.List.fold_left
      (fun acc c ->
        let* acc = acc in
        match (member "key" c, member "outcome" c) with
        | Some (String k), Some oj -> (
            match Cell.of_key k with
            | Error m -> Error (Printf.sprintf "bad cell key %S: %s" k m)
            | Ok cell -> (
                let* () =
                  check
                    (Cell.key cell = k)
                    (Printf.sprintf "non-canonical cell key %S" k)
                in
                match Cell.outcome_of_json oj with
                | Error m ->
                    Error (Printf.sprintf "bad outcome for %S: %s" k m)
                | Ok _ -> Ok (k :: acc)))
        | _ -> Error "cell entry missing key/outcome")
      (Ok []) cells
  in
  let* () =
    (* keys accumulated newest-first, so ascending input reads as a
       strictly descending list here *)
    let rec descending = function
      | a :: (b :: _ as rest) ->
          if Stdlib.String.compare b a < 0 then descending rest
          else Error "cells not in strictly ascending key order"
      | _ -> Ok ()
    in
    descending keys
  in
  let* brackets =
    match member "brackets" j with
    | Some (List bs) -> Ok bs
    | _ -> Error "missing brackets list"
  in
  Stdlib.List.fold_left
    (fun acc b ->
      let* () = acc in
      let* () =
        match member "goal" b with
        | Some
            (String
               ( "min-n-fences" | "max-exhaustive-n" | "min-crashes-refute"
               | "min-aborts-refute" )) ->
            Ok ()
        | _ -> Error "bracket entry with unknown goal"
      in
      let* () =
        match member "base" b with
        | Some (String k) -> (
            match Cell.of_key k with
            | Ok _ -> Ok ()
            | Error m -> Error (Printf.sprintf "bad bracket base %S: %s" k m))
        | _ -> Error "bracket entry missing base"
      in
      let* () =
        match (member "lo" b, member "hi" b, member "evals" b) with
        | Some (Int _), Some (Int _), Some (Int _) -> Ok ()
        | _ -> Error "bracket entry missing lo/hi/evals"
      in
      let* () =
        match member "answer" b with
        | Some (Int _) | Some Null -> Ok ()
        | _ -> Error "bracket entry missing answer"
      in
      match member "probed" b with
      | Some (List ps) ->
          Stdlib.List.fold_left
            (fun acc p ->
              let* () = acc in
              match p with
              | List [ Int _; Bool _ ] -> Ok ()
              | _ -> Error "bracket probed entry must be [point, bool]")
            (Ok ()) ps
      | _ -> Error "bracket entry missing probed")
    (Ok ()) brackets
