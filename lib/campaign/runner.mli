(** Execution of a single campaign cell.

    Every cell runs at one domain — the campaign parallelizes across
    whole searches, one level above the explorer, so each cell's result
    is the deterministic sequential one and campaign reports are
    byte-stable regardless of [--jobs]. *)

exception Bad_cell of string
(** A cell that no CLI invocation could express: unknown lock, aborts
    requested on a non-abortable lock, multi-passage schedule on a
    one-time lock, store parameters out of range. *)

val resolve : Cell.t -> unit
(** Validate a cell without running it.
    @raise Bad_cell with a one-line diagnostic. Called for the whole
    plan up front so a campaign rejects bad input before spending any
    explorer budget. *)

val run :
  ?stop:bool Atomic.t ->
  ?max_millis:int ->
  ?spin_fuel:int ->
  budget_nodes:int ->
  Cell.t ->
  Cell.outcome
(** Run one cell to an outcome. [Verify] cells invoke the bounded
    explorer under [budget_nodes] with [spin_fuel] (default 6) bounding
    busy-wait iterations; [Adversary] cells run the Section 4
    construction to [min_act:1] ([budget_nodes] is recorded but not
    enforced — the construction terminates on its own). Violation kinds
    are canonicalized to a sorted, deduplicated list of names so equal
    searches yield byte-equal outcomes.

    Callers running cells concurrently must pin
    [Tsim.Prog.default_spin_fuel] to the same [spin_fuel] for the whole
    batch (as {!Driver.run} does): each explore saves, sets and restores
    that global itself, and with differing values the first finisher
    would clobber its siblings' bound mid-search.
    @raise Bad_cell as {!resolve}. *)
