(* Campaign grid cells and their canonical, byte-stable identity.

   The key is the contract here: it feeds the persistent result cache,
   so it is rendered field by field in a fixed order with hand-written
   enum names. No Marshal, no Hashtbl.hash, no hash-table iteration —
   all three are unstable across builds or process restarts, and a key
   that drifts silently would make the cache return stale results for
   new semantics (or recompute everything forever). *)

open Tsim

type kind = Verify | Adversary

let kind_name = function Verify -> "verify" | Adversary -> "adversary"

type t = {
  kind : kind;
  lock : string;
  n : int;
  model : Config.mem_model;
  ordering : Config.ordering;
  passages : int;
  max_crashes : int;
  max_aborts : int;
  crash_semantics : Config.crash_semantics;
  store : Config.store_mode;
  por : bool;
}

let make ?(kind = Verify) ?(model = Config.Cc_wb) ?(ordering = Config.Tso)
    ?(passages = 1) ?(max_crashes = 0) ?(max_aborts = 0)
    ?(crash_semantics = Config.Drop_buffer) ?(store = Config.Store_exact)
    ?(por = true) ~lock ~n () =
  { kind; lock; n; model; ordering; passages; max_crashes; max_aborts;
    crash_semantics; store; por }

(* Bump on any change that can alter a cell's verdict, node count or
   fence count (explorer semantics, POR, adversary construction, cache
   line format). Old caches are then recomputed wholesale. *)
let code_salt = "pa-campaign-1"

(* --- canonical renderings (stable by construction) --------------------- *)

let model_code = function
  | Config.Dsm -> "dsm"
  | Config.Cc_wt -> "cc-wt"
  | Config.Cc_wb -> "cc-wb"

let model_of_code = function
  | "dsm" -> Some Config.Dsm
  | "cc-wt" -> Some Config.Cc_wt
  | "cc-wb" -> Some Config.Cc_wb
  | _ -> None

let ordering_code = function Config.Tso -> "tso" | Config.Pso -> "pso"

let ordering_of_code = function
  | "tso" -> Some Config.Tso
  | "pso" -> Some Config.Pso
  | _ -> None

let csem_code = function
  | Config.Drop_buffer -> "drop"
  | Config.Flush_buffer -> "flush"
  | Config.Atomic_prefix -> "prefix"

let csem_of_code = function
  | "drop" -> Some Config.Drop_buffer
  | "flush" -> Some Config.Flush_buffer
  | "prefix" -> Some Config.Atomic_prefix
  | _ -> None

let store_code = function
  | Config.Store_exact -> "exact"
  | Config.Store_bitstate { log2_bits; hashes } ->
      Printf.sprintf "bitstate:%d:%d" log2_bits hashes
  | Config.Store_bounded { log2_slots } ->
      Printf.sprintf "bounded:%d" log2_slots

let store_of_code s =
  match String.split_on_char ':' s with
  | [ "exact" ] -> Some Config.Store_exact
  | [ "bitstate"; b; h ] -> (
      match (int_of_string_opt b, int_of_string_opt h) with
      | Some log2_bits, Some hashes ->
          Some (Config.Store_bitstate { log2_bits; hashes })
      | _ -> None)
  | [ "bounded"; b ] -> (
      match int_of_string_opt b with
      | Some log2_slots -> Some (Config.Store_bounded { log2_slots })
      | None -> None)
  | _ -> None

let key c =
  Printf.sprintf
    "%s lock=%s n=%d model=%s ord=%s pass=%d crashes=%d aborts=%d csem=%s \
     store=%s por=%s"
    (kind_name c.kind) c.lock c.n (model_code c.model)
    (ordering_code c.ordering)
    c.passages c.max_crashes c.max_aborts
    (csem_code c.crash_semantics)
    (store_code c.store)
    (if c.por then "on" else "off")

let of_key s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ' ' s |> List.filter (fun t -> t <> "") with
  | [] -> err "empty key"
  | kind_tok :: fields -> (
      let kind =
        match kind_tok with
        | "verify" -> Some Verify
        | "adversary" -> Some Adversary
        | _ -> None
      in
      match kind with
      | None -> err "unknown cell kind %S" kind_tok
      | Some kind -> (
          let tbl = ref [] in
          let bad = ref None in
          List.iter
            (fun f ->
              match String.index_opt f '=' with
              | Some i ->
                  tbl :=
                    ( String.sub f 0 i,
                      String.sub f (i + 1) (String.length f - i - 1) )
                    :: !tbl
              | None -> if !bad = None then bad := Some f)
            fields;
          match !bad with
          | Some f -> err "malformed field %S" f
          | None -> (
              let get k = List.assoc_opt k !tbl in
              let int k = Option.bind (get k) int_of_string_opt in
              match
                ( get "lock",
                  int "n",
                  Option.bind (get "model") model_of_code,
                  Option.bind (get "ord") ordering_of_code,
                  int "pass",
                  int "crashes",
                  int "aborts",
                  Option.bind (get "csem") csem_of_code,
                  Option.bind (get "store") store_of_code,
                  get "por" )
              with
              | ( Some lock,
                  Some n,
                  Some model,
                  Some ordering,
                  Some passages,
                  Some max_crashes,
                  Some max_aborts,
                  Some crash_semantics,
                  Some store,
                  Some por )
                when por = "on" || por = "off" ->
                  Ok
                    { kind; lock; n; model; ordering; passages; max_crashes;
                      max_aborts; crash_semantics; store; por = por = "on" }
              | _ -> err "missing or malformed field in key %S" s)))

let compare a b = String.compare (key a) (key b)
let equal a b = key a = key b

(* Relative cost for cheap-first scheduling. State spaces grow roughly
   exponentially in the number of concurrently-scheduled activities:
   each live process contributes ~n alternatives per step, each unit of
   fault budget multiplies the branching again, extra passages deepen
   the tree, and disabling the reduction forfeits the ~2.4x node cut.
   Only the ordering of the values matters. *)
let cost_hint c =
  match c.kind with
  | Adversary ->
      (* the construction is polynomial in n, far cheaper than search *)
      float_of_int (c.n * c.n)
  | Verify ->
      let n = float_of_int c.n in
      let faults = float_of_int (c.max_crashes + c.max_aborts) in
      let base = n ** (2.0 +. n) in
      base
      *. (4.0 ** faults)
      *. float_of_int c.passages
      *. (if c.por then 1.0 else 3.0)
      *. if c.ordering = Config.Pso then 2.0 else 1.0

(* --- outcomes ---------------------------------------------------------- *)

type verdict =
  | Verified
  | Violation of string list
  | Partial of string
  | Fences of int

let verdict_to_string = function
  | Verified -> "verified"
  | Violation kinds -> "violation:" ^ String.concat "," kinds
  | Partial reason -> "partial:" ^ reason
  | Fences k -> Printf.sprintf "fences=%d" k

type outcome = {
  verdict : verdict;
  nodes : int;
  max_depth : int;
  budget_nodes : int;
}

let definitive o = match o.verdict with Partial _ -> false | _ -> true

let usable o ~budget_nodes =
  definitive o || o.budget_nodes >= budget_nodes

let outcome_to_json o =
  let open Obs.Json in
  let verdict_fields =
    match o.verdict with
    | Verified -> [ ("verdict", String "verified") ]
    | Violation kinds ->
        [ ("verdict", String "violation");
          ("kinds", List (List.map (fun k -> String k) kinds)) ]
    | Partial reason ->
        [ ("verdict", String "partial"); ("reason", String reason) ]
    | Fences k -> [ ("verdict", String "fences"); ("fences", Int k) ]
  in
  Obj
    (verdict_fields
    @ [
        ("nodes", Int o.nodes);
        ("max_depth", Int o.max_depth);
        ("budget_nodes", Int o.budget_nodes);
      ])

let outcome_of_json j =
  let open Obs.Json in
  let str = function String s -> Some s | _ -> None in
  let num = function Int i -> Some i | _ -> None in
  let field k = member k j in
  match
    ( Option.bind (field "verdict") str,
      Option.bind (field "nodes") num,
      Option.bind (field "max_depth") num,
      Option.bind (field "budget_nodes") num )
  with
  | Some v, Some nodes, Some max_depth, Some budget_nodes -> (
      let mk verdict = Ok { verdict; nodes; max_depth; budget_nodes } in
      match v with
      | "verified" -> mk Verified
      | "violation" -> (
          match field "kinds" with
          | Some (List ks) ->
              let kinds = List.filter_map str ks in
              if List.length kinds = List.length ks then
                mk (Violation kinds)
              else Error "violation kinds must be strings"
          | _ -> Error "violation outcome missing kinds")
      | "partial" -> (
          match Option.bind (field "reason") str with
          | Some reason -> mk (Partial reason)
          | None -> Error "partial outcome missing reason")
      | "fences" -> (
          match Option.bind (field "fences") num with
          | Some k -> mk (Fences k)
          | None -> Error "fences outcome missing count")
      | v -> Error (Printf.sprintf "unknown verdict %S" v))
  | _ -> Error "outcome missing verdict/nodes/max_depth/budget_nodes"
