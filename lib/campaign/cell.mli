(** One cell of the campaign scenario grid, and its canonical identity.

    A cell names one complete verification (or adversary) job: lock ×
    machine model × ordering × process count × passage count × fault
    budgets × crash semantics × seen-store mode × reduction switch. The
    campaign layer schedules cells as whole searches, caches their
    outcomes persistently, and brackets phase transitions by probing
    synthetic cells along one axis.

    {2 Key stability}

    [key] is the persistent-cache identity, so it must be byte-stable
    across process restarts, compiler versions and architectures. It is
    therefore built {e only} from explicit field-by-field rendering in a
    fixed order — never from [Marshal] (closure digests differ between
    builds), never from [Hashtbl.hash] (unspecified across versions),
    and never from iterating a hash table (iteration order is seeded).
    The test suite pins golden keys and round-trips random cells through
    [of_key] to keep this contract honest. Budgets are deliberately not
    part of the key: a cell's identity is {e what} is being checked;
    how many nodes the search was allowed is recorded in the cached
    {!outcome} and consulted by the reuse rule ({!usable}). *)

open Tsim

(** [Verify]: bounded exhaustive exploration ({!Mcheck.Explore}).
    [Adversary]: the Section 4 lower-bound construction
    ({!Adversary.Construction}) — its outcome is the number of fences
    the adversary forced, the quantity the fence-transition bracketing
    sweeps. *)
type kind = Verify | Adversary

val kind_name : kind -> string

type t = {
  kind : kind;
  lock : string;  (** zoo family name ({!Locks.Zoo.find}) *)
  n : int;
  model : Config.mem_model;
  ordering : Config.ordering;
  passages : int;
  max_crashes : int;
  max_aborts : int;
  crash_semantics : Config.crash_semantics;
  store : Config.store_mode;
  por : bool;
}

val make :
  ?kind:kind ->
  ?model:Config.mem_model ->
  ?ordering:Config.ordering ->
  ?passages:int ->
  ?max_crashes:int ->
  ?max_aborts:int ->
  ?crash_semantics:Config.crash_semantics ->
  ?store:Config.store_mode ->
  ?por:bool ->
  lock:string ->
  n:int ->
  unit ->
  t
(** Defaults: [Verify], [Cc_wb], [Tso], one passage, no faults,
    [Drop_buffer], [Store_exact], reduction on. *)

val code_salt : string
(** Version salt of the campaign cache format {e and} of the explorer
    semantics the cached outcomes depend on. Bump it whenever a change
    could alter any cell's verdict, node count or fence count — every
    cache written under the old salt is then recomputed rather than
    silently trusted. *)

val key : t -> string
(** Canonical identity, e.g.
    ["verify lock=peterson n=2 model=cc-wb ord=tso pass=1 crashes=0 aborts=0 csem=drop store=exact por=on"].
    Fields in fixed order; pure string rendering (see the module
    comment). Distinct cells have distinct keys. *)

val of_key : string -> (t, string) result
(** Inverse of {!key} — the cache never needs it (keys are opaque
    there), but the round-trip keeps the rendering canonical and
    injective under test. *)

val compare : t -> t -> int
(** Total order by {!key} — the deterministic report order. *)

val equal : t -> t -> bool

val cost_hint : t -> float
(** Deterministic relative cost estimate used to schedule cheap cells
    first (state spaces grow with [n], passages and fault budgets, and
    shrink under the reduction). Heuristic only: ties and misorderings
    cost scheduling quality, never correctness. *)

(** {1 Outcomes} *)

(** What a completed cell reported. [Fences k]: an adversary cell whose
    construction forced [k] fences on some process. *)
type verdict =
  | Verified
  | Violation of string list  (** sorted, deduplicated kind names *)
  | Partial of string  (** {!Mcheck.Explore.partial_reason_name} *)
  | Fences of int

val verdict_to_string : verdict -> string

type outcome = {
  verdict : verdict;
  nodes : int;
      (** states expanded (adversary cells: total contention of the
          final execution) *)
  max_depth : int;  (** adversary cells: induction steps completed *)
  budget_nodes : int;  (** node budget the run was given *)
}

val definitive : outcome -> bool
(** The outcome cannot change under a larger budget: anything but
    [Partial]. *)

val usable : outcome -> budget_nodes:int -> bool
(** Cache-reuse rule: a cached outcome answers a request with budget
    [budget_nodes] iff it is definitive, or it was itself computed
    under at least that node budget (a partial search at budget [B]
    stays partial at any [B' <= B]). *)

val outcome_to_json : outcome -> Obs.Json.t
val outcome_of_json : Obs.Json.t -> (outcome, string) result

(** {1 Field codecs}

    The canonical enum renderings {!key} is built from, exposed so the
    grid-spec parser one layer up accepts exactly the spellings the
    cache keys use. *)

val model_of_code : string -> Config.mem_model option
val ordering_of_code : string -> Config.ordering option
val csem_of_code : string -> Config.crash_semantics option
val store_of_code : string -> Config.store_mode option
