(* Executing one grid cell.

   Verify cells run the bounded explorer at one domain — the campaign
   parallelizes across whole searches, not inside them, so every cell
   result is the deterministic sequential one and reports are
   byte-stable. Adversary cells run the Section 4 construction, whose
   outcome (fences forced) is what the fence-frontier bracketing
   sweeps. *)

exception Bad_cell of string

let find_family name =
  match Locks.Zoo.find name with
  | Some fam -> fam
  | None ->
      raise
        (Bad_cell
           (Printf.sprintf "unknown lock %S; try one of: %s" name
              (String.concat ", "
                 (List.map
                    (fun f -> f.Locks.Lock_intf.family_name)
                    (Locks.Zoo.all @ Locks.Zoo.two_process
                   @ Locks.Zoo.recoverable @ Locks.Zoo.abortable)))))

(* Build the machine configuration a cell describes, validating every
   cross-field constraint the CLI would reject (unknown lock, aborts on
   a non-abortable lock, multi-passage one-time locks, store parameters
   out of range). Raises [Bad_cell]; called at plan time so a campaign
   fails on bad input before running anything. *)
let config_of (c : Cell.t) =
  let fam = find_family c.Cell.lock in
  let lock =
    try fam.Locks.Lock_intf.instantiate ~n:c.Cell.n
    with Invalid_argument m | Failure m ->
      raise (Bad_cell (Printf.sprintf "%s n=%d: %s" c.Cell.lock c.Cell.n m))
  in
  if c.Cell.max_aborts > 0 && lock.Locks.Lock_intf.abort = None then
    raise
      (Bad_cell
         (Printf.sprintf "%s has no abort cleanup section" c.Cell.lock));
  if c.Cell.kind = Cell.Adversary then None
  else
    let cfg =
      try
        Locks.Harness.config_of_lock ~model:c.Cell.model
          ~ordering:c.Cell.ordering ~max_passages:c.Cell.passages
          ~crash_semantics:c.Cell.crash_semantics lock ~n:c.Cell.n
      with Invalid_argument m | Failure m ->
        raise (Bad_cell (Printf.sprintf "%s: %s" c.Cell.lock m))
    in
    (* the store mode bypasses Config.make, so re-validate its ranges *)
    (match c.Cell.store with
    | Tsim.Config.Store_exact -> ()
    | Tsim.Config.Store_bitstate { log2_bits; hashes } ->
        if log2_bits < 10 || log2_bits > 36 || hashes < 1 || hashes > 8 then
          raise (Bad_cell "bitstate store parameters out of range")
    | Tsim.Config.Store_bounded { log2_slots } ->
        if log2_slots < 8 || log2_slots > 30 then
          raise (Bad_cell "bounded store slots out of range"));
    Some { cfg with Tsim.Config.store = c.Cell.store }

let resolve c = ignore (config_of c)

let violation_kind_name = function
  | `Exclusion _ -> "exclusion"
  | `Deadlock -> "deadlock"
  | `Spin_exhausted -> "spin-exhausted"

let run ?stop ?max_millis ?(spin_fuel = 6) ~budget_nodes (c : Cell.t) :
    Cell.outcome =
  match c.Cell.kind with
  | Cell.Adversary ->
      let fam = find_family c.Cell.lock in
      let lock = fam.Locks.Lock_intf.instantiate ~n:c.Cell.n in
      let con =
        Adversary.Construction.create ~model:c.Cell.model lock ~n:c.Cell.n
      in
      let report = Adversary.Construction.run ~min_act:1 con in
      {
        Cell.verdict = Cell.Fences report.Adversary.Report.best_fences;
        nodes = report.Adversary.Report.total_contention;
        max_depth = List.length report.Adversary.Report.steps;
        budget_nodes;
      }
  | Cell.Verify ->
      let cfg =
        match config_of c with
        | Some cfg -> cfg
        | None -> assert false
      in
      let r =
        Mcheck.Explore.explore ~max_nodes:budget_nodes ?max_millis ?stop
          ~spin_fuel ~por:c.Cell.por ~max_crashes:c.Cell.max_crashes
          ~max_aborts:c.Cell.max_aborts cfg
      in
      let verdict =
        if r.Mcheck.Explore.verified then Cell.Verified
        else if r.Mcheck.Explore.violations <> [] then
          Cell.Violation
            (List.sort_uniq String.compare
               (List.map
                  (fun v -> violation_kind_name v.Mcheck.Explore.kind)
                  r.Mcheck.Explore.violations))
        else
          match r.Mcheck.Explore.partial with
          | Some `Nodes -> Cell.Partial "nodes"
          | Some `Millis -> Cell.Partial "millis"
          | Some `Violations -> Cell.Partial "violations"
          | Some `Aborts -> Cell.Partial "interrupted"
          | None ->
              (* exhausted, unverified, no violations: exclusion was not
                 checked — count it verified-as-explored *)
              Cell.Verified
      in
      {
        Cell.verdict;
        nodes = r.Mcheck.Explore.nodes;
        max_depth = r.Mcheck.Explore.max_depth;
        budget_nodes;
      }
