(** The campaign orchestrator: a batch verification run at full-machine
    throughput.

    A campaign is a {e plan} — a scenario grid of {!Cell.t}s plus a list
    of {!bracket_spec} frontier searches — executed against a persistent
    {!Cache.t}. Cells are scheduled cheapest-first across [jobs] domains
    as whole searches (the campaign parallelizes one level above the
    explorer, so every cell's outcome is the deterministic sequential
    one); node budgets start small and escalate on budget-limited
    partial verdicts; completed outcomes land in the cache immediately,
    so a killed campaign resumes where it died and a warm re-run skips
    every cell.

    Reports are deliberately free of timings, cache-hit flags and job
    counts, and cells are emitted in canonical key order — the same plan
    over the same code produces a byte-identical report whether it ran
    cold or warm, at [--jobs 1] or [--jobs 16]. *)

(** A frontier question over one integer axis of a base cell. All four
    are monotone-threshold searches answered by {!Bracket} probes, each
    probe being an ordinary cell execution that lands in the cache. *)
type bracket_goal =
  | Min_n_fences of int
      (** least [n] whose adversary run forces at least [k] fences *)
  | Max_exhaustive_n
      (** greatest [n] the explorer exhausts within the node cap *)
  | Min_crashes_refute
      (** least crash budget under which a violation is found; a
          budget-limited partial counts as not-refuted *)
  | Min_aborts_refute  (** least abort budget likewise *)

val goal_name : bracket_goal -> string

type bracket_spec = {
  goal : bracket_goal;
  base : Cell.t;  (** the swept axis field of [base] is ignored *)
  lo : int;
  hi : int;
}

type plan = { grid : Cell.t list; brackets : bracket_spec list }

val parse_grid : string -> (Cell.t list, string) result
(** Grid spec: whitespace- or [';']-separated [field=v1,v2,...] tokens,
    integer fields accepting ranges [a-b]. Fields: [kind] (verify,
    adversary), [lock], [n], [model] (dsm, cc-wt, cc-wb), [ord] (tso,
    pso), [pass], [crashes], [aborts], [csem] (drop, flush, prefix),
    [store] (exact, bitstate:B:H, bounded:S), [por] (on, off). [lock]
    is required; every other field defaults to the {!Cell.make}
    default. The grid is the cartesian product of all dimensions:
    ["lock=peterson,ticket n=2-4 crashes=0,1"] is 12 cells. *)

val parse_bracket : string -> (bracket_spec, string) result
(** Bracket spec: a goal name — [min-n-fences] (requires [k=]),
    [max-exhaustive-n], [min-crashes-refute], [min-aborts-refute] —
    followed by single-valued [field=v] tokens for the base cell plus
    optional [lo=]/[hi=] range bounds (defaults 2..8 for the [n] goals,
    0..4 for the fault-budget goals). [lock] is required. *)

val planned : Cell.t list -> Cell.t list
(** Deduplicate by key and order cheapest-first ({!Cell.cost_hint},
    ties by key) — the execution schedule, also what [--dry-run]
    prints. *)

type cell_result = {
  cell : Cell.t;
  outcome : Cell.outcome;
  from_cache : bool;
}

type bracket_result = {
  spec : bracket_spec;
  answer : int option;
  evals : int;  (** distinct probe points evaluated (cache hits count) *)
  probed : (int * bool) list;  (** ascending by probe point *)
}

type result = {
  cells : cell_result list;  (** canonical key order *)
  brackets : bracket_result list;  (** in plan order *)
  interrupted : bool;
  executed : int;  (** cells actually run, grid and probes together *)
  hits : int;  (** cells answered from the cache *)
}

exception Interrupted
(** Never escapes {!run} — internal control flow for the stop flag. *)

val run :
  ?jobs:int ->
  ?max_nodes:int ->
  ?max_millis:int ->
  ?spin_fuel:int ->
  ?stop:bool Atomic.t ->
  ?obs:Obs.Telemetry.t ->
  cache:Cache.t ->
  plan ->
  result
(** Execute a plan. Every cell of the grid and both endpoints of every
    bracket are validated up front ({!Runner.resolve}), so a bad plan
    raises {!Runner.Bad_cell} before any budget is spent. [max_nodes]
    (default 200_000) caps the per-cell node budget; execution starts
    each verify cell at a small slice of the cap and escalates by 4x on
    budget-limited partials, so cheap cells never pay for deep ones.
    [spin_fuel] (default 6) bounds busy-wait iterations in every cell's
    search; it is pinned process-globally for the duration of the run —
    which is exactly what makes concurrent explores safe — so it is a
    campaign parameter, not a cell axis.
    Outcomes are recorded in [cache] as they complete — definitive ones
    and full-cap node-budget partials only; time-limited or interrupted
    partials are never cached. With [jobs > 1], pending cells are dealt
    round-robin onto per-worker Chase-Lev deques and idle workers steal
    (coordinator-only cache and telemetry access; workers only record).
    Setting [stop] finishes the cells in flight, flushes the cache, and
    returns with [interrupted = true].

    [obs] receives per-cell spans ([campaign.cell]), ~1 Hz
    [campaign.heartbeat] instants with progress and ETA from a
    campaign-level {!Obs.Estimator}, and one [campaign.bracket] instant
    per frontier answered. *)

val report_version : int

val report_json : result -> Obs.Json.t
(** The versioned machine-readable report. Deterministic: cells in key
    order, no timings, no cache provenance, no job counts — byte-equal
    across cold/warm and any [jobs]. *)

val validate_report : Obs.Json.t -> (unit, string) Stdlib.result
(** Schema check for a report produced by {!report_json} (any producer
    version up to {!report_version}): format/version header, every cell
    key parses back through {!Cell.of_key}, every outcome through
    {!Cell.outcome_of_json}, cells in strictly ascending key order,
    bracket records carrying goal/base/lo/hi/answer/evals/probed. Used
    by the CI smoke step and [campaign --validate-report]. *)
