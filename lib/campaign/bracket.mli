(** Adaptive frontier bracketing over monotone predicates.

    Phase-transition questions — smallest [n] forcing [k] fences,
    largest exhaustively-checkable [n] under a node budget, smallest
    crash budget refuting a lock — are threshold searches over a
    monotone predicate: [p] is false up to some frontier and true from
    it on (or vice versa). A dense sweep answers them in O(range)
    explorer jobs; this module answers in O(log range) probes with the
    shape of the CloudNetworking exemplar (SNIPPETS.md 1–2): {b double}
    the distance from the known-false end until the predicate flips
    (bracketing the frontier in an interval), then {b three-division
    refinement} — split the interval at its two third-points and keep
    the third (or two-thirds) the flip is in — until the interval is a
    single step wide.

    {b Soundness.} The result equals the dense sweep's exactly when [p]
    is monotone over [[lo, hi]]. For a non-monotone [p] the search
    still terminates and returns {e some} point where [p] flips from
    false to true, but not necessarily the least one — campaign reports
    record which probes were actually evaluated so a claimed frontier
    can be audited. Probes are memoized per call (each point is
    evaluated at most once) and every evaluation lands in the campaign
    cache one layer up, so re-bracketing after a crash replays the
    probe sequence for free. *)

type stats = {
  mutable evals : int;
      (** distinct points the predicate was evaluated at *)
  mutable probed : (int * bool) list;
      (** (point, value) pairs in evaluation order, newest first *)
}

val new_stats : unit -> stats

val least :
  ?stats:stats -> lo:int -> hi:int -> (int -> bool) -> int option
(** Least [x] in [[lo, hi]] with [p x], assuming [p] monotone
    (false then true). [None] when [p] never holds on the range.
    @raise Invalid_argument if [lo > hi]. *)

val greatest :
  ?stats:stats -> lo:int -> hi:int -> (int -> bool) -> int option
(** Greatest [x] in [[lo, hi]] with [p x], assuming [p] monotone the
    other way (true then false). [None] when [p lo] is already
    false. *)
