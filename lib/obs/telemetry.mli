(** The telemetry hub: named monotonic counters, histograms and spans,
    fanned out to attached {!Sink}s.

    Overhead contract (DESIGN.md §5d): instrumented hot paths keep their
    raw tallies in plain mutable ints/records and only talk to a hub at
    coarse intervals (heartbeats, phase boundaries). A disabled hub
    ({!null}, or [create ~sinks:[]]) makes every emission a single
    [enabled] branch, so the instrumentation costs nothing measurable
    when no sink is attached — the explorer's ns/node budget is guarded
    by BENCH_PR4.json. *)

type t

val null : t
(** The disabled hub: no sinks, clock pinned to 0. *)

val create : ?clock:(unit -> int) -> ?pid:int -> sinks:Sink.t list -> unit -> t
(** [clock] returns the event timestamp in integer microseconds; the
    default is wall-clock microseconds since hub creation. [pid] tags
    every event (default 0) — use distinct pids to separate runs in one
    stream. *)

val manual_clock : unit -> (unit -> int) * (int -> unit)
(** A deterministic clock for replay exports and tests:
    [(clock, advance)] where [advance d] moves virtual time forward by
    [d] microseconds. *)

val enabled : t -> bool
(** True iff at least one sink is attached. Instrumented code uses this
    to skip whole blocks of emission work. *)

val now_us : t -> int

(** {1 Counters}

    Counters are registered by name (idempotent: same name, same
    counter) and carry their value locally; {!emit_counter} or
    {!flush_counters} pushes snapshots to the sinks. Bumping a counter
    never allocates or touches a sink. *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
val value : counter -> int

val emit_counter : ?tid:int -> t -> counter -> unit
val flush_counters : ?tid:int -> t -> unit
(** Snapshot every registered counter, in registration order. *)

(** {1 Events} *)

val gauge : ?tid:int -> t -> string -> float -> unit
val instant : ?tid:int -> ?args:(string * Json.t) list -> t -> string -> unit
val hist : ?tid:int -> t -> string -> Histogram.t -> unit

val span : ?tid:int -> ?args:(string * Json.t) list -> t -> string
  -> (unit -> 'a) -> 'a
(** [span t name f] brackets [f ()] in begin/end events (ends on
    exceptions too). When the hub is disabled this is exactly [f ()]. *)

val span_at : ?tid:int -> ?args:(string * Json.t) list -> t
  -> ts0:int -> ts1:int -> string -> unit
(** Emit a complete span with explicit timestamps — used to report work
    measured elsewhere (e.g. a search domain's wall-clock window,
    recorded by the worker and emitted by the coordinator after join). *)

val flush : t -> unit
val close : t -> unit
(** Flush counters, then flush and close every sink. Idempotent. *)
