(* Flat open-addressing cell table. The hot path — [record] — is one
   tick read, one packed-key computation, one linear probe and four
   integer bumps; no allocation, no boxing (keys and counters live in
   int arrays).

   Packed cell key (fits a 63-bit immediate, always >= 0):

     bit 0        is_pc        (1 = loc is a compiled pc)
     bits 1..3    move class   (<= 8 classes)
     bits 4..6    section      (<= 8 sections)
     bits 7..12   depth band   (log2 bucket, < 64)
     bits 13..60  loc          (pc or continuation digest, low 48 bits)
*)

external ticks : unit -> int = "pa_obs_ticks" [@@noalloc]

type t = {
  classes : string array;
  sections : string array;
  every : int; (* record 1 in [every] nodes; 1 = exact attribution *)
  mutable arm : int; (* countdown to the next armed record *)
  mutable keys : int array; (* -1 = empty slot *)
  mutable vals : int array; (* 4 per slot: nodes, ticks, undo, rmrs *)
  mutable mask : int;
  mutable count : int;
  mutable last_ticks : int; (* -1 until the first record *)
  (* summable calibration: total wall ns and total raw ticks observed
     across start/stop windows; merge adds both sides *)
  mutable cal_ns : float;
  mutable cal_ticks : float;
  mutable t0_wall : float;
  mutable t0_ticks : int;
  mutable running : bool;
}

let create ?(every = 1) ~classes ~sections () =
  if Array.length classes > 8 then
    invalid_arg "Profile.create: more than 8 classes";
  if Array.length sections > 8 then
    invalid_arg "Profile.create: more than 8 sections";
  let cap = 256 in
  {
    classes = Array.copy classes;
    sections = Array.copy sections;
    every = max 1 every;
    arm = 1;
    keys = Array.make cap (-1);
    vals = Array.make (4 * cap) 0;
    mask = cap - 1;
    count = 0;
    last_ticks = -1;
    cal_ns = 0.;
    cal_ticks = 0.;
    t0_wall = 0.;
    t0_ticks = 0;
    running = false;
  }

let classes t = Array.copy t.classes
let sections t = Array.copy t.sections
let every t = t.every

(* Sampling gate, called once per candidate node: fires on the first
   call and then once per [every] calls. The caller skips the whole
   attribution read (location digest, RMR footprint, tick read) for
   un-armed nodes, which is what makes strided profiling cheap — the
   per-node cost of a disarmed node is this decrement. *)
let[@inline] armed t =
  let a = t.arm - 1 in
  if a = 0 then begin
    t.arm <- t.every;
    true
  end
  else begin
    t.arm <- a;
    false
  end

(* True when the NEXT [armed] call will fire: pre-state reads that feed
   the next record (move class, RMR footprint) are gated on this. *)
let[@inline] next_armed t = t.arm = 1

let band_of_depth d =
  let rec go b d = if d = 0 then b else go (b + 1) (d lsr 1) in
  if d <= 0 then 0 else go 0 d

let band_label i =
  if i = 0 then "0"
  else if i = 1 then "1"
  else Printf.sprintf "%d-%d" (1 lsl (i - 1)) ((1 lsl i) - 1)

let pack ~band ~cls ~section ~loc ~is_pc =
  ((loc land 0xFFFFFFFFFFFF) lsl 13)
  lor ((band land 63) lsl 7)
  lor ((section land 7) lsl 4)
  lor ((cls land 7) lsl 1)
  lor (if is_pc then 1 else 0)

let key_band k = (k lsr 7) land 63
let key_section k = (k lsr 4) land 7
let key_cls k = (k lsr 1) land 7
let key_loc k = k lsr 13
let key_is_pc k = k land 1 = 1

let hash_key k =
  let h = k lxor (k lsr 33) in
  h * 0x2545F4914F6CDD1D

let rec grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make (4 * cap) 0;
  t.mask <- cap - 1;
  t.count <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 then
        add_cell t k ~nodes:old_vals.((4 * i) + 0) ~tk:old_vals.((4 * i) + 1)
          ~undo:old_vals.((4 * i) + 2) ~rmr:old_vals.((4 * i) + 3))
    old_keys

and find_slot t key =
  let i = ref (hash_key key land t.mask) in
  while
    let k = t.keys.(!i) in
    k >= 0 && k <> key
  do
    i := (!i + 1) land t.mask
  done;
  if t.keys.(!i) >= 0 then !i
  else if 2 * (t.count + 1) > t.mask + 1 then begin
    (* load factor 1/2: double and retry; the rehash leaves the new
       table at most 1/4 full, so this recursion terminates at once *)
    grow t;
    find_slot t key
  end
  else begin
    t.keys.(!i) <- key;
    t.count <- t.count + 1;
    !i
  end

and add_cell t key ~nodes ~tk ~undo ~rmr =
  let i = find_slot t key in
  let b = 4 * i in
  t.vals.(b) <- t.vals.(b) + nodes;
  t.vals.(b + 1) <- t.vals.(b + 1) + tk;
  t.vals.(b + 2) <- t.vals.(b + 2) + undo;
  t.vals.(b + 3) <- t.vals.(b + 3) + rmr

(* One armed record stands for the [every] nodes of its window: the
   node count and the (sampled) RMR charge scale by the stride, elapsed
   ticks and the undo-record delta are window totals already — the
   caller accumulates them across disarmed nodes — so the profile's
   tick and undo totals stay exact at any stride. With [every = 1]
   (the default) everything is exact. *)
let record t ~depth ~cls ~section ~loc ~is_pc ~rmr ~undo =
  let now = ticks () in
  let dt =
    if t.last_ticks < 0 then 0
    else
      let d = now - t.last_ticks in
      if d < 0 then 0 else d
  in
  t.last_ticks <- now;
  let key = pack ~band:(band_of_depth depth) ~cls ~section ~loc ~is_pc in
  let i = find_slot t key in
  let b = 4 * i in
  t.vals.(b) <- t.vals.(b) + t.every;
  t.vals.(b + 1) <- t.vals.(b + 1) + dt;
  t.vals.(b + 2) <- t.vals.(b + 2) + undo;
  t.vals.(b + 3) <- t.vals.(b + 3) + (rmr * t.every)

let start t =
  t.t0_wall <- Unix.gettimeofday ();
  t.t0_ticks <- ticks ();
  t.last_ticks <- t.t0_ticks;
  t.running <- true

let stop t =
  if t.running then begin
    t.running <- false;
    let wall = Unix.gettimeofday () -. t.t0_wall in
    let tk = ticks () - t.t0_ticks in
    if wall > 0. && tk > 0 then begin
      t.cal_ns <- t.cal_ns +. (wall *. 1e9);
      t.cal_ticks <- t.cal_ticks +. float_of_int tk
    end
  end

let ns_per_tick t = if t.cal_ticks > 0. then t.cal_ns /. t.cal_ticks else 1.

let fold_cells t f acc =
  let acc = ref acc in
  Array.iteri
    (fun i k ->
      if k >= 0 then
        acc :=
          f !acc k ~nodes:t.vals.(4 * i)
            ~tk:t.vals.((4 * i) + 1)
            ~undo:t.vals.((4 * i) + 2)
            ~rmr:t.vals.((4 * i) + 3))
    t.keys;
  !acc

let total_nodes t = fold_cells t (fun a _ ~nodes ~tk:_ ~undo:_ ~rmr:_ -> a + nodes) 0

let total_ns t =
  let r = ns_per_tick t in
  fold_cells t
    (fun a _ ~nodes:_ ~tk ~undo:_ ~rmr:_ -> a +. (float_of_int tk *. r))
    0.

let same_schema a b = a.classes = b.classes && a.sections = b.sections

let absorb ~into src =
  if not (same_schema into src) then
    invalid_arg "Profile.absorb: schema mismatch";
  Array.iteri
    (fun i k ->
      if k >= 0 then
        add_cell into k ~nodes:src.vals.(4 * i)
          ~tk:src.vals.((4 * i) + 1)
          ~undo:src.vals.((4 * i) + 2)
          ~rmr:src.vals.((4 * i) + 3))
    src.keys;
  into.cal_ns <- into.cal_ns +. src.cal_ns;
  into.cal_ticks <- into.cal_ticks +. src.cal_ticks

let merge a b =
  if not (same_schema a b) then invalid_arg "Profile.merge: schema mismatch";
  let t = create ~classes:a.classes ~sections:a.sections () in
  absorb ~into:t a;
  absorb ~into:t b;
  t

(* ---- exports ------------------------------------------------------ *)

let sorted_cells t =
  let cells =
    fold_cells t
      (fun acc k ~nodes ~tk ~undo ~rmr -> (k, nodes, tk, undo, rmr) :: acc)
      []
  in
  List.sort (fun (k1, _, _, _, _) (k2, _, _, _, _) -> compare k1 k2) cells

let name arr i = if i < Array.length arr then arr.(i) else string_of_int i

let to_json ?(meta = []) t =
  let r = ns_per_tick t in
  let ns_of tk = Float.round (float_of_int tk *. r) in
  let cells = sorted_cells t in
  let tot_n, tot_tk, tot_u, tot_r =
    List.fold_left
      (fun (n, k, u, rr) (_, nodes, tk, undo, rmr) ->
        (n + nodes, k + tk, u + undo, rr + rmr))
      (0, 0, 0, 0) cells
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("meta", Json.Obj meta);
      ( "classes",
        Json.List (Array.to_list (Array.map (fun s -> Json.String s) t.classes))
      );
      ( "sections",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.String s) t.sections)) );
      ( "totals",
        Json.Obj
          [
            ("nodes", Json.Int tot_n);
            ("ns", Json.Float (ns_of tot_tk));
            ("undo", Json.Int tot_u);
            ("rmrs", Json.Int tot_r);
          ] );
      ( "cells",
        Json.List
          (List.map
             (fun (k, nodes, tk, undo, rmr) ->
               Json.Obj
                 [
                   ("band", Json.Int (key_band k));
                   ("depth", Json.String (band_label (key_band k)));
                   ("class", Json.String (name t.classes (key_cls k)));
                   ("section", Json.String (name t.sections (key_section k)));
                   ("loc", Json.Int (key_loc k));
                   ("pc", Json.Bool (key_is_pc k));
                   ("nodes", Json.Int nodes);
                   ("ns", Json.Float (ns_of tk));
                   ("undo", Json.Int undo);
                   ("rmrs", Json.Int rmr);
                 ])
             cells) );
    ]

let of_json j =
  let open Json in
  let strings = function
    | Some (List l) ->
        Ok
          (Array.of_list
             (List.map (function String s -> s | _ -> "") l))
    | _ -> Error "missing schema array"
  in
  let index arr s =
    let r = ref (-1) in
    Array.iteri (fun i x -> if x = s && !r < 0 then r := i) arr;
    !r
  in
  match j with
  | Obj _ -> (
      match (strings (member "classes" j), strings (member "sections" j)) with
      | Error e, _ | _, Error e -> Error e
      | Ok classes, Ok sections -> (
          match member "cells" j with
          | Some (List cells) -> (
              let t = create ~classes ~sections () in
              let bad = ref None in
              List.iter
                (fun c ->
                  if !bad = None then
                    let geti f =
                      match member f c with
                      | Some (Int i) -> i
                      | Some (Float x) -> int_of_float x
                      | _ -> -1
                    in
                    let gets f =
                      match member f c with Some (String s) -> s | _ -> ""
                    in
                    let band = geti "band"
                    and loc = geti "loc"
                    and nodes = geti "nodes"
                    and undo = geti "undo"
                    and rmr = geti "rmrs" in
                    let ns =
                      match member "ns" c with
                      | Some (Float x) -> int_of_float x
                      | Some (Int i) -> i
                      | _ -> -1
                    in
                    let cls = index classes (gets "class")
                    and section = index sections (gets "section") in
                    let is_pc = member "pc" c = Some (Bool true) in
                    if
                      band < 0 || band > 63 || loc < 0 || nodes < 0 || undo < 0
                      || rmr < 0 || ns < 0 || cls < 0 || section < 0
                    then bad := Some "malformed cell"
                    else
                      add_cell t
                        (pack ~band ~cls ~section ~loc ~is_pc)
                        ~nodes ~tk:ns ~undo ~rmr)
                cells;
              match !bad with
              | Some e -> Error e
              | None ->
                  (* ticks were stored as calibrated ns: unit calibration *)
                  let tot = fold_cells t (fun a _ ~nodes:_ ~tk ~undo:_ ~rmr:_ -> a + tk) 0 in
                  let c = float_of_int (max 1 tot) in
                  t.cal_ns <- c;
                  t.cal_ticks <- c;
                  Ok t)
          | _ -> Error "missing cells array"))
  | _ -> Error "expected a profile object"

let loc_label k =
  if key_is_pc k then Printf.sprintf "pc:%d" (key_loc k)
  else Printf.sprintf "k:%x" (key_loc k)

let folded ?(weight = `Nodes) t =
  let r = ns_per_tick t in
  let lines =
    fold_cells t
      (fun acc k ~nodes ~tk ~undo:_ ~rmr:_ ->
        let count =
          match weight with
          | `Nodes -> nodes
          | `Ns -> int_of_float (Float.round (float_of_int tk *. r))
        in
        if count <= 0 then acc
        else
          Printf.sprintf "depth:%s;%s;%s;%s %d"
            (band_label (key_band k))
            (name t.sections (key_section k))
            (name t.classes (key_cls k))
            (loc_label k) count
          :: acc)
      []
  in
  String.concat "" (List.map (fun l -> l ^ "\n") (List.sort compare lines))

(* ---- diff --------------------------------------------------------- *)

let group_contribs t =
  (* (section, class) -> (ns, nodes), plus overall totals *)
  let tbl = Hashtbl.create 16 in
  let r = ns_per_tick t in
  let tot_n, tot_ns =
    fold_cells t
      (fun (n, ns) k ~nodes ~tk ~undo:_ ~rmr:_ ->
        let g = (key_section k, key_cls k) in
        let gns, gn = try Hashtbl.find tbl g with Not_found -> (0., 0) in
        Hashtbl.replace tbl g
          (gns +. (float_of_int tk *. r), gn + nodes);
        (n + nodes, ns +. (float_of_int tk *. r)))
      (0, 0.)
  in
  (tbl, tot_n, tot_ns)

let diff a b =
  if not (same_schema a b) then invalid_arg "Profile.diff: schema mismatch";
  let ga, na, nsa = group_contribs a in
  let gb, nb, nsb = group_contribs b in
  if na = 0 || nb = 0 then invalid_arg "Profile.diff: empty profile";
  let pna = nsa /. float_of_int na and pnb = nsb /. float_of_int nb in
  let delta_pct = (pnb -. pna) /. pna *. 100. in
  let gname (s, c) =
    Printf.sprintf "%s/%s" (name a.sections s) (name a.classes c)
  in
  let keys =
    let add tbl acc = Hashtbl.fold (fun g _ acc -> if List.mem g acc then acc else g :: acc) tbl acc in
    List.sort compare (add gb (add ga []))
  in
  let groups =
    List.map
      (fun g ->
        let cna, ca_nodes = try Hashtbl.find ga g with Not_found -> (0., 0) in
        let cnb, cb_nodes = try Hashtbl.find gb g with Not_found -> (0., 0) in
        let pa = cna /. float_of_int na and pb = cnb /. float_of_int nb in
        ( g,
          pa,
          pb,
          pb -. pa,
          float_of_int ca_nodes /. float_of_int na,
          float_of_int cb_nodes /. float_of_int nb ))
      keys
  in
  (* regressions first when b is slower, improvements first otherwise;
     ties on the group name keep the order deterministic *)
  let sign = if delta_pct >= 0. then -1. else 1. in
  let groups =
    List.sort
      (fun (g1, _, _, d1, _, _) (g2, _, _, d2, _, _) ->
        match compare (sign *. d1) (sign *. d2) with
        | 0 -> compare g1 g2
        | c -> c)
      groups
  in
  let movers =
    List.filteri (fun i _ -> i < 3) (List.filter (fun (_, _, _, d, _, _) -> Float.abs d >= 0.05) groups)
  in
  let verdict =
    let head =
      if Float.abs delta_pct < 1. then
        Printf.sprintf "~unchanged %+.1f%% (%.1f -> %.1f ns/node)" delta_pct
          pna pnb
      else if delta_pct > 0. then
        Printf.sprintf "regressed %+.1f%% (%.1f -> %.1f ns/node)" delta_pct pna
          pnb
      else
        Printf.sprintf "improved %+.1f%% (%.1f -> %.1f ns/node)" delta_pct pna
          pnb
    in
    match movers with
    | [] -> head
    | ms ->
        head ^ "; top: "
        ^ String.concat ", "
            (List.map
               (fun (g, _, _, d, _, _) ->
                 Printf.sprintf "%s %+.1f ns/node" (gname g) d)
               ms)
  in
  let report =
    Json.Obj
      [
        ( "a",
          Json.Obj
            [ ("nodes", Json.Int na); ("ns_per_node", Json.Float pna) ] );
        ( "b",
          Json.Obj
            [ ("nodes", Json.Int nb); ("ns_per_node", Json.Float pnb) ] );
        ("delta_pct", Json.Float delta_pct);
        ("verdict", Json.String verdict);
        ( "groups",
          Json.List
            (List.map
               (fun (g, pa, pb, d, sa, sb) ->
                 Json.Obj
                   [
                     ("group", Json.String (gname g));
                     ("a_ns_per_node", Json.Float pa);
                     ("b_ns_per_node", Json.Float pb);
                     ("delta_ns_per_node", Json.Float d);
                     ("a_node_share", Json.Float sa);
                     ("b_node_share", Json.Float sb);
                   ])
               groups) );
      ]
  in
  (report, verdict)
