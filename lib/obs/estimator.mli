(** Online Knuth–Chen tree-size estimation for depth-first searches.

    A depth-first search of an unknown tree gives no progress signal:
    the node counter grows but nothing says what fraction of the tree it
    represents. Knuth's 1975 estimator fixes that with random
    root-to-leaf probes: walk down from the root choosing a uniformly
    random child at each node, and multiply the branching factors seen
    on the way. The product [b1*b2*...*bk] summed over the probe's
    nodes is an unbiased estimate of the number of tree nodes, because
    a node at depth [k] is reached with probability [1/(b1*...*bk)]
    and contributes exactly the inverse weight when it is.

    This module runs the estimator {e online, woven into the search}
    rather than as separate random walks: [probes] notional probes are
    seeded at the root, and probability mass flows down with them. When
    a child {e enters} while its parent still has [r] undistributed
    child slots, it takes the share [m/r] of the parent's remaining
    mass [m] and a balanced probe allotment with matching expectation
    [alive/r] (floor plus a Bernoulli remainder — far lower variance
    than per-probe coin flips). A slot retired with [leaf] — the child
    was dedup-pruned, delegated, or raised — consumes {e no} probes and
    {e no} mass: its implicit share stays with the parent and flows to
    later entered children, which keeps the probe flow concentrated on
    the surviving tree under heavy pruning. Since the search order is
    deterministic, each entered node's reach probability is a fixed
    quantity and [E[alive at v] = probes * mass(v)] exactly; a node
    entered with [a > 0] probes alive adds [a / mass(v)] to the running
    sum and the estimate [sum / probes] is unbiased for the number of
    entered nodes. The partition is decided with the module's own
    deterministic PRNG, so the search itself is never perturbed — same
    nodes, same order, with or without the estimator.

    The module also tracks {e exact} progress mass: when a node's
    expansion completes ([leave]), whatever mass it never handed to an
    entered child — its own share for childless nodes, plus every
    pruned slot's implicit share — retires as explored. The retired
    masses of a finished tree telescope to exactly 1. [progress] is
    therefore a true "fraction of the tree fully explored (in
    probability mass)" — it reaches 1.0 when the search exhausts, and
    [elapsed * (1 - progress) / progress] is a live ETA.

    Client contract (mirrors the DFS call tree):
    - [enter t ~children:k] when the search expands a node that will
      offer [k] child slots. Slots must then be consumed: each slot is
      either retired with [leaf t] (the child was pruned, delegated,
      raised, or was never materialised) or implicitly consumed by the
      next [enter] of the recursive child expansion.
    - [leave t] when the node's expansion completes (all slots
      consumed). Strict stack discipline: enters/leaves must nest like
      the DFS recursion.
    - [enter] at depth 0 starts a new probe root (all [probes] probes
      alive, weight 1); several roots may be run in sequence (the
      parallel explorer estimates each stolen work item as its own
      root and sums the estimates).

    Abandoning mid-tree (exception, budget) simply leaves [progress]
    partial and the estimate reflecting the probes spent so far —
    exactly what a partial verdict wants to report. *)

type cfg = { probes : int; seed : int }
(** [probes] notional probes per root (more probes, lower variance —
    the cost is O(1) per node while any probe is alive and zero after
    all die, so 32–256 is cheap); [seed] for the deterministic PRNG. *)

val default_cfg : cfg
(** [{ probes = 64; seed = 0 }] *)

type t

val create : ?cfg:cfg -> unit -> t

val enter : t -> children:int -> unit
(** Enter a node that declares [children] child slots. At depth 0 this
    starts a new probe root. Raises nothing; [children = 0] is a node
    whose expansion offers no slots (deadlock / all-asleep). *)

val leaf : t -> unit
(** Retire one child slot of the current node as a leaf (pruned child,
    delegated child, violation raised under it, sleep-abandoned chase).
    Consumes the slot only — its probe and mass share stays with the
    node (flowing to later entered children, or retiring as explored
    mass at [leave]). A no-op if the current node has no unconsumed
    slots. *)

val leave : t -> unit
(** Pop the current node: its expansion is complete. *)

val estimate : t -> float
(** Unbiased estimate of the number of {e entered} nodes of the
    explored tree(s), summed across roots. 0 until the first enter. *)

val progress : t -> float
(** Exact probability mass of fully-explored leaves, averaged over the
    roots started so far; reaches 1.0 (up to float rounding) when every
    root's tree has been exhausted. In [0, 1]. *)

val roots : t -> int
(** Number of probe roots started (sequential search: 1). *)

val probes : t -> int
(** The per-root probe count this estimator was created with. *)
