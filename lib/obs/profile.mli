(** Search profiles: where the nodes, nanoseconds, undo records and RMR
    events of an exploration went.

    A profile is a flat table of {e cells}. A cell is keyed by

    - the {b depth band} (power-of-two bucket of the node's depth),
    - the {b move class} (the kind of transition that produced the
      node — step / commit / crash / recover / abort, plus a synthetic
      root class),
    - the {b section} the moving process was in (NCS, entry, exit, ...),
    - the {b program location} of the moving process: the compiled
      engine's pc when available, otherwise a structural digest of the
      interpreter continuation.

    and accumulates four counters: nodes, elapsed ticks, undo records
    appended, and RMR events charged. Time is attributed by a
    free-running tick counter (RDTSC where available) read once per
    recorded node — the delta since the previous record on the same
    shard is charged to the new node's cell, so the whole wall time of
    a search lands somewhere and the per-node cost stays a single
    counter read plus one hash-table bump (no allocation).

    Ticks are calibrated against wall time over [start]/[stop] windows
    and converted to nanoseconds at export. The calibration is stored
    as a summable (ns, ticks) pair so that {!merge} stays associative
    and commutative — the parallel explorer gives each domain its own
    shard and merges after join, deterministically.

    Exports: canonical JSON ({!to_json} / {!of_json} round-trip), a
    folded-stack rendering compatible with flamegraph.pl /
    speedscope ({!folded}), and a structured diff that attributes a
    per-node regression between two profiles to the cell groups that
    moved ({!diff}). *)

type t

val create :
  ?every:int -> classes:string array -> sections:string array -> unit -> t
(** A fresh, empty profile. [classes] and [sections] name the small
    enum axes; {!record} takes indices into them. Both must have at
    most 8 entries (the packed cell key gives each axis 3 bits).

    [every] (default 1) is the sampling stride of the {!armed} gate:
    1 records every node ({e exact} attribution — per-cell node counts
    are exact, time windows are per-node), [k > 1] records one node in
    [k]. A strided profile is a statistical profile: node and RMR
    counts scale by the stride (so totals estimate the true totals to
    within one stride), while tick and undo totals remain {e exact} —
    the skipped nodes' elapsed time and undo records accumulate into
    the next armed record's window. Striding is what makes profiling
    cheap enough to leave on: a disarmed node costs one counter
    decrement. *)

val classes : t -> string array

val sections : t -> string array

val every : t -> int
(** The sampling stride this profile was created with. *)

val armed : t -> bool
(** The sampling gate. Call once per candidate node; it fires on the
    first call and then once every {!every} calls. Only an armed node
    should pay for attribution reads (location digest, RMR footprint)
    and {!record}. With [every = 1] it always fires. *)

val next_armed : t -> bool
(** True when the next {!armed} call will fire — for pre-state reads
    that must happen before the node's {!record} (the explorer reads
    move class and RMR footprint in the parent state). *)

val record :
  t ->
  depth:int ->
  cls:int ->
  section:int ->
  loc:int ->
  is_pc:bool ->
  rmr:int ->
  undo:int ->
  unit
(** Charge one (armed) node to the cell
    [(band depth, cls, section, loc, is_pc)]: nodes += {!every},
    ticks += time since the previous [record] on this shard,
    rmrs += [rmr]·{!every}, undo += [undo]. [loc] is truncated to its
    low 48 bits. The first record after [create]/[start] charges 0
    ticks. *)

val start : t -> unit
(** Open a calibration window: snapshot wall clock and ticks. Call
    right before the profiled search starts on this shard. *)

val stop : t -> unit
(** Close the calibration window and fold (wall ns, ticks elapsed)
    into the summable calibration pair. Idempotent until the next
    [start]. *)

val total_nodes : t -> int

val total_ns : t -> float
(** Calibrated total attributed time. *)

val merge : t -> t -> t
(** Pointwise sum of cells and calibrations; pure. Associative and
    commutative, with the empty profile as identity (see the qcheck
    laws in the test suite). Raises [Invalid_argument] if the two
    profiles disagree on [classes]/[sections]. *)

val absorb : into:t -> t -> unit
(** In-place [merge]: add every cell and calibration of the second
    profile into [into]. What the parallel explorer uses to fold its
    per-domain shards in a fixed order after join. *)

val band_label : int -> string
(** Human label of a depth band index: ["0"], ["1"], ["2-3"],
    ["4-7"], ... *)

val to_json : ?meta:(string * Json.t) list -> t -> Json.t
(** Canonical JSON: schema arrays, caller metadata, totals, and the
    cell list sorted by packed key — byte-stable for a given profile
    (ticks are converted to calibrated ns and rounded). *)

val of_json : Json.t -> (t, string) result
(** Parse a profile written by {!to_json}. The round-trip
    [of_json (to_json p)] preserves every cell (with ticks already in
    ns and a unit calibration). *)

val folded : ?weight:[ `Nodes | `Ns ] -> t -> string
(** Folded-stack export, one line per non-empty cell:
    ["depth:<band>;<section>;<class>;<loc> <count>\n"], sorted by
    frame string. [weight] selects the count column (default
    [`Nodes]; [`Ns] uses calibrated nanoseconds, rounded). Feed to
    flamegraph.pl or paste into speedscope. *)

val diff : t -> t -> Json.t * string
(** [diff a b] compares per-node cost and attributes the movement:
    groups cells by (section, class), computes each group's
    contribution in ns-per-node (group ns / total nodes) in both
    profiles, and sorts by the contribution delta. Returns a
    structured report and a one-line human verdict such as
    ["regressed +8.1% (411.2 -> 444.5 ns/node); top: entry/step +21.4 ns/node, crashed/crash +9.2"].
    Deterministic: ties break on group name. Raises
    [Invalid_argument] on schema mismatch or empty profiles. *)
