(** Telemetry events: the typed stream flowing from instrumented code to
    sinks, with an NDJSON codec.

    Timestamps are integer microseconds from whatever clock the emitting
    {!Telemetry} hub was built with — wall clock for live runs, a manual
    (virtual) clock for deterministic replay exports. [pid]/[tid] are
    trace lanes, not OS ids: the hub's pid groups a run, the tid usually
    carries a simulated process id or search-domain index. *)

type payload =
  | Counter of string * int  (** absolute (monotonic) counter value *)
  | Gauge of string * float  (** instantaneous measurement *)
  | Span_begin of string * (string * Json.t) list
  | Span_end of string
  | Instant of string * (string * Json.t) list
  | Hist of string * Histogram.t  (** histogram snapshot *)

type t = { ts_us : int; pid : int; tid : int; payload : payload }

val name : t -> string

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val to_ndjson_line : t -> string
(** One-line JSON rendering, no trailing newline. *)

val of_ndjson_line : string -> (t, string) result
(** Inverse of {!to_ndjson_line} (property-tested in suite_obs). *)
