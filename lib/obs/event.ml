(* Telemetry events and their NDJSON codec.

   The wire shape is one flat JSON object per event — "ts"/"pid"/"tid"
   plus a "type" discriminator — so downstream tooling (jq, pandas,
   Perfetto preprocessing) needs no schema beyond field names. *)

type payload =
  | Counter of string * int
  | Gauge of string * float
  | Span_begin of string * (string * Json.t) list
  | Span_end of string
  | Instant of string * (string * Json.t) list
  | Hist of string * Histogram.t

type t = { ts_us : int; pid : int; tid : int; payload : payload }

let name t =
  match t.payload with
  | Counter (n, _)
  | Gauge (n, _)
  | Span_begin (n, _)
  | Span_end n
  | Instant (n, _)
  | Hist (n, _) ->
      n

let to_json (e : t) : Json.t =
  let base ty n rest =
    Json.Obj
      ([
         ("ts", Json.Int e.ts_us);
         ("pid", Json.Int e.pid);
         ("tid", Json.Int e.tid);
         ("type", Json.String ty);
         ("name", Json.String n);
       ]
      @ rest)
  in
  match e.payload with
  | Counter (n, v) -> base "counter" n [ ("value", Json.Int v) ]
  | Gauge (n, v) -> base "gauge" n [ ("value", Json.Float v) ]
  | Span_begin (n, args) -> base "span_begin" n [ ("args", Json.Obj args) ]
  | Span_end n -> base "span_end" n []
  | Instant (n, args) -> base "instant" n [ ("args", Json.Obj args) ]
  | Hist (n, h) -> base "hist" n [ ("hist", Histogram.to_json h) ]

let of_json (j : Json.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let int_field k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "event: missing int field %S" k)
  in
  let str_field k =
    match Json.member k j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "event: missing string field %S" k)
  in
  let args_field () =
    match Json.member "args" j with
    | Some (Json.Obj fields) -> Ok fields
    | _ -> Error "event: missing args object"
  in
  let* ts_us = int_field "ts" in
  let* pid = int_field "pid" in
  let* tid = int_field "tid" in
  let* ty = str_field "type" in
  let* nm = str_field "name" in
  let* payload =
    match ty with
    | "counter" ->
        let* v = int_field "value" in
        Ok (Counter (nm, v))
    | "gauge" -> (
        match Json.member "value" j with
        | Some (Json.Float v) -> Ok (Gauge (nm, v))
        | Some (Json.Int v) -> Ok (Gauge (nm, float_of_int v))
        | _ -> Error "event: gauge without numeric value")
    | "span_begin" ->
        let* args = args_field () in
        Ok (Span_begin (nm, args))
    | "span_end" -> Ok (Span_end nm)
    | "instant" ->
        let* args = args_field () in
        Ok (Instant (nm, args))
    | "hist" -> (
        match Json.member "hist" j with
        | Some h ->
            let* h = Histogram.of_json h in
            Ok (Hist (nm, h))
        | None -> Error "event: hist without histogram")
    | other -> Error (Printf.sprintf "event: unknown type %S" other)
  in
  Ok { ts_us; pid; tid; payload }

let to_ndjson_line e = Json.to_string (to_json e)

let of_ndjson_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> of_json j
