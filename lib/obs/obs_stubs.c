/* Cheap monotonic tick source for the profiler's per-node time
   attribution.

   On x86-64 this is one unserialized RDTSC (~10ns including the C call
   — cycle counts, not nanoseconds; the profiler calibrates ticks
   against gettimeofday over the whole run window and converts at
   export time). Elsewhere it falls back to clock_gettime(MONOTONIC),
   in which case ticks already ARE nanoseconds and the calibration
   factor comes out ~1.0.

   The value is masked to 62 bits so it always fits an OCaml immediate
   int (no allocation, [@@noalloc] on the external). */

#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

CAMLprim value pa_obs_ticks(value unit)
{
  (void)unit;
#if defined(__x86_64__) || defined(_M_X64)
  return Val_long((long)(__rdtsc() & 0x3fffffffffffffffULL));
#else
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long(((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec) &
                  0x3fffffffffffffffLL);
#endif
}
