(* Sink implementations: null, in-memory, NDJSON stream, console
   reporter, Chrome trace-event exporter. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; flush = ignore; close = ignore }

let memory () =
  let events = ref [] in
  ( {
      emit = (fun e -> events := e :: !events);
      flush = ignore;
      close = ignore;
    },
    fun () -> List.rev !events )

let ndjson oc =
  {
    emit =
      (fun e ->
        output_string oc (Event.to_ndjson_line e);
        output_char oc '\n');
    flush = (fun () -> flush oc);
    close = (fun () -> flush oc);
  }

(* --- console ----------------------------------------------------------- *)

let console ?(oc = stderr) () =
  let counters : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let counter_order = ref [] in
  (* span aggregation: per name, (count, total_us, max_us); open spans
     per (pid, tid) as a stack *)
  let spans : (string, int * int * int) Hashtbl.t = Hashtbl.create 32 in
  let span_order = ref [] in
  let open_spans : (int * int, (string * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let hists : (string, Histogram.t) Hashtbl.t = Hashtbl.create 8 in
  let hist_order = ref [] in
  let remember order name tbl =
    if not (Hashtbl.mem tbl name) then order := name :: !order
  in
  let emit (e : Event.t) =
    match e.Event.payload with
    | Event.Counter (n, v) ->
        remember counter_order n counters;
        Hashtbl.replace counters n v
    | Event.Gauge (n, v) ->
        remember counter_order n counters;
        Hashtbl.replace counters n (int_of_float v)
    | Event.Span_begin (n, _) ->
        let key = (e.Event.pid, e.Event.tid) in
        let stack =
          Option.value ~default:[] (Hashtbl.find_opt open_spans key)
        in
        Hashtbl.replace open_spans key ((n, e.Event.ts_us) :: stack)
    | Event.Span_end n -> (
        let key = (e.Event.pid, e.Event.tid) in
        match Hashtbl.find_opt open_spans key with
        | Some ((n', t0) :: rest) when n' = n ->
            Hashtbl.replace open_spans key rest;
            let dur = e.Event.ts_us - t0 in
            remember span_order n spans;
            let c, tot, mx =
              Option.value ~default:(0, 0, 0) (Hashtbl.find_opt spans n)
            in
            Hashtbl.replace spans n (c + 1, tot + dur, max mx dur)
        | _ -> () (* unmatched end: drop *))
    | Event.Instant _ -> ()
    | Event.Hist (n, h) ->
        remember hist_order n hists;
        Hashtbl.replace hists n h
  in
  let close () =
    let pr fmt = Printf.fprintf oc fmt in
    if Hashtbl.length counters > 0 then begin
      pr "-- telemetry: counters --\n";
      List.iter
        (fun n -> pr "  %-40s %12d\n" n (Hashtbl.find counters n))
        (List.rev !counter_order)
    end;
    if Hashtbl.length spans > 0 then begin
      pr "-- telemetry: spans (count / total / max) --\n";
      List.iter
        (fun n ->
          let c, tot, mx = Hashtbl.find spans n in
          pr "  %-40s %6dx %9.3fms %9.3fms\n" n c
            (float_of_int tot /. 1000.)
            (float_of_int mx /. 1000.))
        (List.rev !span_order)
    end;
    if Hashtbl.length hists > 0 then begin
      pr "-- telemetry: histograms --\n";
      List.iter
        (fun n ->
          let h = Hashtbl.find hists n in
          pr "  %-40s %s\n" n (Format.asprintf "%a" Histogram.pp h))
        (List.rev !hist_order)
    end;
    Stdlib.flush oc
  in
  { emit; flush = (fun () -> Stdlib.flush oc); close }

(* --- live progress line ------------------------------------------------ *)

let progress ?(oc = stdout) ?(tty = true) () =
  let nodes = ref 0 in
  let nps = ref nan in
  let pct = ref nan in
  let eta = ref nan in
  let est = ref nan in
  let painted = ref false in
  let render () =
    let b = Buffer.create 96 in
    Buffer.add_string b (Printf.sprintf "search: %d nodes" !nodes);
    if not (Float.is_nan !nps) then
      Buffer.add_string b
        (if !nps >= 1e6 then Printf.sprintf " | %.1fM nodes/s" (!nps /. 1e6)
         else Printf.sprintf " | %.0f nodes/s" !nps);
    if not (Float.is_nan !pct) then
      Buffer.add_string b (Printf.sprintf " | %5.1f%%" (100. *. !pct));
    if not (Float.is_nan !eta) then
      Buffer.add_string b
        (if !eta >= 3600. then Printf.sprintf " | eta %.1fh" (!eta /. 3600.)
         else if !eta >= 60. then Printf.sprintf " | eta %.1fm" (!eta /. 60.)
         else Printf.sprintf " | eta %.0fs" !eta);
    if not (Float.is_nan !est) then
      Buffer.add_string b (Printf.sprintf " | ~%.0f states" !est);
    Buffer.contents b
  in
  let repaint () =
    let line = render () in
    if tty then begin
      (* rewrite in place, padded so a shrinking line leaves no tail *)
      let w = max (String.length line) 78 in
      Printf.fprintf oc "\r%-*s" w line;
      Stdlib.flush oc
    end
    else begin
      output_string oc line;
      output_char oc '\n';
      Stdlib.flush oc
    end;
    painted := true
  in
  let emit (e : Event.t) =
    match e.Event.payload with
    | Event.Counter ("explore.nodes", v) -> nodes := v
    | Event.Gauge ("explore.nodes_per_sec", v) -> nps := v
    | Event.Gauge ("explore.progress", v) -> pct := v
    | Event.Gauge ("explore.eta_s", v) -> eta := v
    | Event.Gauge ("explore.est_total", v) -> est := v
    | Event.Instant ("explore.heartbeat", _) -> repaint ()
    | _ -> ()
  in
  let close () =
    if !painted then begin
      if tty then output_char oc '\n';
      Stdlib.flush oc
    end
  in
  { emit; flush = (fun () -> Stdlib.flush oc); close }

(* --- chrome trace ------------------------------------------------------ *)

(* Shared by this sink and Execution.Chrome: render one trace event.
   Field order is fixed (name, cat, ph, ts, pid, tid, extras) so exports
   are byte-stable. *)
let chrome_event ~name ~cat ~ph ~ts ~pid ~tid extras =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ extras)

let chrome_trace oc =
  let first = ref true in
  let last_ts = ref 0 in
  let open_spans : (int * int, (string * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let put j =
    if !first then begin
      output_string oc "[\n";
      first := false
    end
    else output_string oc ",\n";
    output_string oc (Json.to_string j)
  in
  let emit (e : Event.t) =
    if e.Event.ts_us > !last_ts then last_ts := e.Event.ts_us;
    let ts = e.Event.ts_us and pid = e.Event.pid and tid = e.Event.tid in
    match e.Event.payload with
    | Event.Counter (n, v) ->
        put
          (chrome_event ~name:n ~cat:"counter" ~ph:"C" ~ts ~pid ~tid
             [ ("args", Json.Obj [ ("value", Json.Int v) ]) ])
    | Event.Gauge (n, v) ->
        put
          (chrome_event ~name:n ~cat:"gauge" ~ph:"C" ~ts ~pid ~tid
             [ ("args", Json.Obj [ ("value", Json.Float v) ]) ])
    | Event.Span_begin (n, args) ->
        let key = (pid, tid) in
        let stack =
          Option.value ~default:[] (Hashtbl.find_opt open_spans key)
        in
        Hashtbl.replace open_spans key ((n, ts) :: stack);
        put
          (chrome_event ~name:n ~cat:"span" ~ph:"B" ~ts ~pid ~tid
             [ ("args", Json.Obj args) ])
    | Event.Span_end n ->
        (let key = (pid, tid) in
         match Hashtbl.find_opt open_spans key with
         | Some ((n', _) :: rest) when n' = n ->
             Hashtbl.replace open_spans key rest
         | _ -> ());
        put (chrome_event ~name:n ~cat:"span" ~ph:"E" ~ts ~pid ~tid [])
    | Event.Instant (n, args) ->
        put
          (chrome_event ~name:n ~cat:"instant" ~ph:"i" ~ts ~pid ~tid
             [ ("s", Json.String "t"); ("args", Json.Obj args) ])
    | Event.Hist (n, h) ->
        put
          (chrome_event ~name:n ~cat:"hist" ~ph:"C" ~ts ~pid ~tid
             [
               ( "args",
                 Json.Obj
                   [
                     ("p50", Json.Int (Histogram.quantile h 0.5));
                     ("p90", Json.Int (Histogram.quantile h 0.9));
                     ("p99", Json.Int (Histogram.quantile h 0.99));
                     ("max", Json.Int (Histogram.max_value h));
                   ] );
             ])
  in
  let close () =
    (* balance any spans left open so the file loads cleanly *)
    Hashtbl.iter
      (fun (pid, tid) stack ->
        List.iter
          (fun (n, _) ->
            put
              (chrome_event ~name:n ~cat:"span" ~ph:"E" ~ts:!last_ts ~pid
                 ~tid []))
          stack)
      open_spans;
    Hashtbl.reset open_spans;
    if !first then output_string oc "[\n";
    output_string oc "\n]\n";
    Stdlib.flush oc
  in
  { emit; flush = (fun () -> Stdlib.flush oc); close }
