(** Minimal JSON values with a deterministic printer and a strict parser.

    The telemetry layer cannot pull in an external JSON library (the
    repository is zero-dependency beyond the compiler distribution), and
    its exporters need byte-stable output for golden-file tests — object
    fields are printed in the order given, numbers deterministically. The
    parser exists so NDJSON streams and Chrome-trace files can be
    round-tripped and validated in-tree. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering: no insignificant whitespace, object fields in the
    order given, [Float] via ["%.17g"] (round-trips every finite float);
    non-finite floats render as [null]. Strings are escaped per RFC 8259
    (two-character escapes for the common controls, [\uXXXX] otherwise);
    non-ASCII bytes pass through untouched. *)

val parse : string -> (t, string) result
(** Strict parse of a single JSON value (surrounding whitespace allowed).
    Numbers with a fraction or exponent decode as [Float], others as
    [Int] (falling back to [Float] when they exceed the native range).
    [\uXXXX] escapes decode to UTF-8, including surrogate pairs. Errors
    carry a character offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] (first match); [None] otherwise. *)

val scalar : t -> string
(** Human rendering of a scalar value: strings bare (no quotes), floats
    trimmed, [Null] as ["-"]; lists/objects fall back to {!to_string}.
    The cell renderer behind {!pp_kv_table} and {!pp_rows}. *)

val pp_kv_table : ?indent:int -> (string * t) list -> string
(** Aligned ["key  value"] lines (one per field, [indent] leading
    spaces, default 2). The CLI's human-readable face for report data
    whose machine face is [to_string] of the same fields — one codec,
    two renderings. *)

val pp_rows : ?indent:int -> (string * t) list list -> string
(** Aligned columnar table: header from the first row's keys, then one
    line per row, columns padded to fit. Rows missing a column render
    ["-"]. Empty input renders the empty string. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare order-insensitively. *)
