(* Log2-bucketed histograms. Bucket 0 holds the value 0; bucket i >= 1
   holds [2^(i-1), 2^i). 64 buckets cover the whole native int range, so
   [add] is branch-light and allocation-free. *)

type t = {
  mutable n : int;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;  (* 64 slots *)
}

let create () =
  { n = 0; total = 0; vmin = max_int; vmax = 0; buckets = Array.make 64 0 }

let copy t = { t with buckets = Array.copy t.buckets }

let[@inline] bucket_of v =
  (* number of significant bits of v: v in [2^(b-1), 2^b) -> bucket b *)
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let add t v =
  let v = if v < 0 then 0 else v in
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.n
let sum t = t.total
let min_value t = if t.n = 0 then 0 else t.vmin
let max_value t = t.vmax
let mean t = if t.n = 0 then 0.0 else float_of_int t.total /. float_of_int t.n

let merge a b =
  let t = copy a in
  let t =
    {
      t with
      n = a.n + b.n;
      total = a.total + b.total;
      vmin = min a.vmin b.vmin;
      vmax = max a.vmax b.vmax;
    }
  in
  Array.iteri (fun i c -> t.buckets.(i) <- t.buckets.(i) + c) b.buckets;
  t

let bucket_hi = function 0 -> 0 | i -> (1 lsl i) - 1
let bucket_lo = function 0 -> 0 | i -> 1 lsl (i - 1)

let quantile t q =
  if t.n = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target =
      let x = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if x < 1 then 1 else if x > t.n then t.n else x
    in
    let rec walk i cum =
      let cum = cum + t.buckets.(i) in
      if cum >= target then min (bucket_hi i) t.vmax else walk (i + 1) cum
    in
    walk 0 0
  end

let iter_buckets f t =
  Array.iteri
    (fun i c -> if c > 0 then f ~lo:(bucket_lo i) ~hi:(bucket_hi i) ~count:c)
    t.buckets

let equal a b =
  a.n = b.n && a.total = b.total
  && (a.n = 0 || (a.vmin = b.vmin && a.vmax = b.vmax))
  && a.buckets = b.buckets

(* Serialized as sparse [bucket index, count] pairs: histograms of hot
   counters are usually concentrated in a few buckets. *)
let to_json t =
  let pairs = ref [] in
  Array.iteri
    (fun i c -> if c > 0 then pairs := Json.List [ Json.Int i; Json.Int c ] :: !pairs)
    t.buckets;
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Int t.total);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.vmax);
      ("buckets", Json.List (List.rev !pairs));
    ]

let of_json j =
  let int_field k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "histogram: missing int field %S" k)
  in
  let ( let* ) = Result.bind in
  let* n = int_field "count" in
  let* total = int_field "sum" in
  let* vmin = int_field "min" in
  let* vmax = int_field "max" in
  let* pairs =
    match Json.member "buckets" j with
    | Some (Json.List xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match x with
            | Json.List [ Json.Int i; Json.Int c ]
              when i >= 0 && i < 64 && c >= 0 ->
                Ok ((i, c) :: acc)
            | _ -> Error "histogram: malformed bucket pair")
          (Ok []) xs
    | _ -> Error "histogram: missing buckets"
  in
  let t = create () in
  t.n <- n;
  t.total <- total;
  t.vmin <- (if n = 0 then max_int else vmin);
  t.vmax <- vmax;
  List.iter (fun (i, c) -> t.buckets.(i) <- c) pairs;
  Ok t

let pp fmt t =
  if t.n = 0 then Format.fprintf fmt "(empty)"
  else begin
    Format.fprintf fmt "n=%d sum=%d min=%d max=%d p50=%d p90=%d p99=%d" t.n
      t.total (min_value t) t.vmax (quantile t 0.5) (quantile t 0.9)
      (quantile t 0.99)
  end
